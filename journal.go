package dsmnc

// The sweep journal: a crash-safe write-ahead log of finished
// (experiment, benchmark, system) cells. Each completed cell is
// appended as one fsync'd JSON line before the sweep counts it as done,
// so a killed multi-hour run can be resumed with `dsmfig -resume`
// re-executing only the cells the journal is missing. An options
// fingerprint stored with every record keeps a resume from silently
// mixing results computed under different machine parameters.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dsmnc/internal/fsdir"
)

// ErrBadJournal marks a sweep journal with a corrupt record body: a
// terminated line that is not a valid cell record. (An *unterminated*
// final line is not corruption but the signature of a crash mid-append;
// it is dropped and overwritten.)
var ErrBadJournal = errors.New("dsmnc: malformed sweep journal")

// ErrJournalMismatch marks a resume whose options fingerprint differs
// from the one a journaled cell was computed under; mixing the two
// would corrupt the experiment.
var ErrJournalMismatch = errors.New("dsmnc: journal does not match the sweep being resumed")

// journalRecord is one line of the journal: the cell's identity, the
// fingerprint of the options that produced it, and its full result.
type journalRecord struct {
	Exp         string `json:"exp"`
	Bench       string `json:"bench"`
	System      string `json:"system"`
	Fingerprint string `json:"fingerprint"`
	Result      Result `json:"result"`
}

// journalKey identifies a cell within a journal.
type journalKey struct{ exp, bench, system string }

// Journal is the write-ahead log handle. It is safe for the concurrent
// appends of a parallel sweep.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[journalKey]journalRecord
}

// OpenJournal opens (creating if needed) the journal at path. With
// resume, existing records are replayed so Options.Journal-driven
// sweeps skip the cells already done: a torn final record — the
// leftover of a crash mid-append — is dropped, while terminated garbage
// fails with ErrBadJournal. Without resume the journal is truncated and
// the sweep starts from nothing.
func OpenJournal(path string, resume bool) (*Journal, error) {
	flags := os.O_CREATE | os.O_RDWR
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	// A freshly created journal is only durable once the directory entry
	// naming it is synced too; without this, a machine crash after the
	// first fsync'd append could lose the whole file.
	if err := fsdir.Sync(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, path: path, done: map[journalKey]journalRecord{}}
	if resume {
		if err := j.load(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load replays the journal into the completed-cell index and positions
// the file for appending, truncating away a torn final record.
func (j *Journal) load() error {
	br := bufio.NewReaderSize(j.f, 1<<16)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err == nil {
			var rec journalRecord
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				return fmt.Errorf("%w: %s: record at byte %d: %v", ErrBadJournal, j.path, off, jerr)
			}
			if rec.Exp == "" || rec.Bench == "" || rec.System == "" || rec.Fingerprint == "" {
				return fmt.Errorf("%w: %s: record at byte %d is missing its cell key", ErrBadJournal, j.path, off)
			}
			j.done[journalKey{rec.Exp, rec.Bench, rec.System}] = rec
			off += int64(len(line))
			continue
		}
		if err != io.EOF {
			return err
		}
		if len(line) > 0 {
			// Unterminated tail: the previous run died inside an append.
			// Drop the fragment so the next append starts on a record
			// boundary; the cell it described simply re-runs.
			if terr := j.f.Truncate(off); terr != nil {
				return terr
			}
		}
		_, err = j.f.Seek(off, io.SeekStart)
		return err
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Completed returns how many finished cells the journal holds.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// lookup returns the journaled result for a cell. A record whose
// fingerprint differs from the current options fails with
// ErrJournalMismatch: the journal belongs to a different sweep.
func (j *Journal) lookup(exp, bench, system, fingerprint string) (Result, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.done[journalKey{exp, bench, system}]
	if !ok {
		return Result{}, false, nil
	}
	if rec.Fingerprint != fingerprint {
		return Result{}, false, fmt.Errorf(
			"%w: cell %s/%s/%s was journaled under options fingerprint %s, this sweep runs %s",
			ErrJournalMismatch, exp, bench, system, rec.Fingerprint, fingerprint)
	}
	return rec.Result, true, nil
}

// append durably records one finished cell: a single JSON line, fsync'd
// before the cell counts as done. A torn append (crash between write
// and sync) leaves an unterminated tail that the next resume drops.
func (j *Journal) append(rec journalRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done[journalKey{rec.Exp, rec.Bench, rec.System}] = rec
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// fingerprint condenses the result-determining options — geometry,
// processor caches, workload scale, interleaving grain, latency table,
// checking — into an FNV-64a hex token stored with every journal
// record. Runtime-only knobs (KeepGoing, CellTimeout, Journal, Retries,
// RetryBackoff, CheckpointEvery, CheckpointDir, Progress) are excluded:
// they change how a sweep runs, not what its cells compute.
func (o Options) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "geo=%dx%d l1=%d/%d scale=%d q=%d lat=%+v check=%t",
		o.Geometry.Clusters, o.Geometry.ProcsPerCluster,
		o.L1Bytes, o.L1Ways, o.Scale, o.Quantum, o.Latencies, o.Check)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint returns the options fingerprint journaled sweeps store
// with every cell record: a stable token over the result-determining
// parameters. The serving layer keys its idempotent job IDs and result
// cache on it, so two submissions only coalesce when they would compute
// the same thing. Shards is deliberately absent: the sharded engine is
// bit-identical to the sequential one, so runs differing only in shard
// count compute the same result and may share journal entries and
// cached jobs.
func (o Options) Fingerprint() string { return o.fingerprint() }
