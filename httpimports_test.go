package dsmnc

// The simulation library must stay free of networking concerns: only
// the telemetry package (which owns the metrics endpoint) and the CLIs
// under cmd/ may import net/http and friends. This lint walks every
// non-test source file in the module and fails on a net/http-prefixed
// import anywhere else, so the boundary cannot erode silently.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestHTTPImportsConfinedToTelemetryAndCmd(t *testing.T) {
	fset := token.NewFileSet()
	checked := 0
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		allowed := strings.HasPrefix(path, "telemetry"+string(filepath.Separator)) ||
			strings.HasPrefix(path, "cmd"+string(filepath.Separator))
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		checked++
		for _, imp := range f.Imports {
			val, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if val == "net/http" || strings.HasPrefix(val, "net/http/") {
				if !allowed {
					t.Errorf("%s: imports %s (net/http is confined to telemetry/ and cmd/)",
						fset.Position(imp.Pos()), val)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	if checked < 40 {
		t.Fatalf("only %d source files scanned; the walk is broken", checked)
	}
}
