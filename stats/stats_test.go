package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	// Table 2 of the paper, verbatim.
	if l.DRAMAccess != 10 || l.TagCheck != 3 || l.CacheToCache != 1 ||
		l.RemoteAccess != 30 || l.PageRelocation != 225 {
		t.Fatalf("latencies %+v do not match Table 2", l)
	}
	if f := l.RelocationCostFactor(); math.Abs(f-7.5) > 1e-12 {
		t.Fatalf("relocation cost factor = %v, want 7.5 (225/30)", f)
	}
}

func TestMissClass(t *testing.T) {
	if !Cold.Necessary() || !Coherence.Necessary() || Capacity.Necessary() {
		t.Fatal("Necessary() wrong")
	}
	for c, want := range map[MissClass]string{Cold: "cold", Coherence: "coherence", Capacity: "capacity"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if MissClass(9).String() == "" {
		t.Error("unknown class empty string")
	}
}

func TestOpCount(t *testing.T) {
	var o OpCount
	o.Inc(false)
	o.Inc(true)
	o.Inc(true)
	if o.Read != 1 || o.Write != 2 || o.Total() != 3 {
		t.Fatalf("OpCount = %+v", o)
	}
	var sum OpCount
	sum.Add(o)
	sum.Add(o)
	if sum.Total() != 6 {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestCountersRemoteAndAdd(t *testing.T) {
	var c Counters
	c.RemoteByClass[Cold] = OpCount{Read: 2, Write: 1}
	c.RemoteByClass[Coherence] = OpCount{Read: 3}
	c.RemoteByClass[Capacity] = OpCount{Read: 5, Write: 4}
	if r := c.Remote(); r.Read != 10 || r.Write != 5 {
		t.Fatalf("Remote() = %+v", r)
	}
	if n := c.RemoteNecessary(); n.Read != 5 || n.Write != 1 {
		t.Fatalf("RemoteNecessary() = %+v", n)
	}
	if cap := c.RemoteCapacity(); cap.Read != 5 || cap.Write != 4 {
		t.Fatalf("RemoteCapacity() = %+v", cap)
	}
	var sum Counters
	sum.Add(&c)
	sum.Add(&c)
	if sum.Remote().Read != 20 {
		t.Fatalf("Add did not accumulate: %+v", sum.Remote())
	}
}

func TestRemoteReadStallSRAM(t *testing.T) {
	m := DefaultModel(NCTechSRAM)
	var c Counters
	c.C2C = OpCount{Read: 4}
	c.NCHits = OpCount{Read: 10, Write: 99} // writes must not count
	c.PCHits = OpCount{Read: 7}
	c.RemoteByClass[Capacity] = OpCount{Read: 3}
	c.RemoteByClass[Cold] = OpCount{Read: 2}
	c.Relocations = 2
	s := m.RemoteReadStall(&c)
	wantMem := int64(4*1 + 10*1 + 7*10 + 5*30)
	if s.Memory != wantMem {
		t.Fatalf("Memory = %d, want %d", s.Memory, wantMem)
	}
	if s.Relocation != 2*225 {
		t.Fatalf("Relocation = %d, want 450", s.Relocation)
	}
	if s.Total() != wantMem+450 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestRemoteReadStallDRAM(t *testing.T) {
	m := DefaultModel(NCTechDRAM)
	var c Counters
	c.NCHits = OpCount{Read: 10}
	c.RemoteByClass[Cold] = OpCount{Read: 5}
	s := m.RemoteReadStall(&c)
	want := int64(10*(10+3) + 5*(30+3))
	if s.Memory != want {
		t.Fatalf("DRAM stall = %d, want %d (tag-check penalty on hits and misses)", s.Memory, want)
	}
}

func TestRemoteReadStallNoNC(t *testing.T) {
	m := DefaultModel(NCTechNone)
	var c Counters
	c.RemoteByClass[Cold] = OpCount{Read: 7}
	if s := m.RemoteReadStall(&c); s.Memory != 7*30 {
		t.Fatalf("no-NC stall = %d, want 210", s.Memory)
	}
}

func TestRemoteTraffic(t *testing.T) {
	m := DefaultModel(NCTechSRAM)
	var c Counters
	c.RemoteByClass[Capacity] = OpCount{Read: 3, Write: 2}
	c.Upgrades = OpCount{Write: 4}
	c.WritebacksHome = 6
	tr := m.RemoteTraffic(&c)
	if tr.ReadMisses != 3 || tr.WriteMisses != 6 || tr.Writebacks != 6 {
		t.Fatalf("traffic = %+v", tr)
	}
	if tr.Total() != 15 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestMissRatios(t *testing.T) {
	m := DefaultModel(NCTechSRAM)
	var c Counters
	if r := m.MissRatios(&c); r.Total() != 0 {
		t.Fatal("zero refs must yield zero ratios, not NaN")
	}
	c.Refs = OpCount{Read: 700, Write: 300}
	c.RemoteByClass[Capacity] = OpCount{Read: 10, Write: 5}
	c.Relocations = 4
	r := m.MissRatios(&c)
	if math.Abs(r.ReadMissPct-1.0) > 1e-9 {
		t.Fatalf("ReadMissPct = %v, want 1.0", r.ReadMissPct)
	}
	if math.Abs(r.WriteMissPct-0.5) > 1e-9 {
		t.Fatalf("WriteMissPct = %v, want 0.5", r.WriteMissPct)
	}
	// 4 relocations * 7.5 equivalent misses / 1000 refs = 3%.
	if math.Abs(r.RelocPct-3.0) > 1e-9 {
		t.Fatalf("RelocPct = %v, want 3.0", r.RelocPct)
	}
	if math.Abs(r.Total()-4.5) > 1e-9 {
		t.Fatalf("Total = %v, want 4.5", r.Total())
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(DefaultLatencies())
	if len(rows) != 9 {
		t.Fatalf("Table1 has %d rows, want 9", len(rows))
	}
	want := map[string]int64{
		"PC hit/SRAM NC & PC":  10,
		"NC hit/DRAM NC":       13,
		"NC hit/SRAM NC":       1,
		"NC miss/No NC":        30,
		"NC miss/DRAM NC":      33,
		"NC miss/SRAM NC & PC": 30,
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r.Event+"/"+r.System] = r.Cycles
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Table1[%s] = %d, want %d", k, got[k], v)
		}
	}
}

// Property: stall and traffic are monotone in every counter — adding
// events never reduces modeled cost.
func TestModelMonotonicity(t *testing.T) {
	f := func(ncr, rem, pc, rel uint16) bool {
		m := DefaultModel(NCTechSRAM)
		var a, b Counters
		a.NCHits.Read = int64(ncr)
		a.RemoteByClass[Capacity].Read = int64(rem)
		a.PCHits.Read = int64(pc)
		a.Relocations = int64(rel)
		b = a
		b.NCHits.Read++
		b.RemoteByClass[Capacity].Read++
		b.Relocations++
		return m.RemoteReadStall(&b).Total() > m.RemoteReadStall(&a).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopModel(t *testing.T) {
	hl := DefaultHopLatencies()
	if hl.Remote2Hop != 30 || hl.Remote3Hop != 45 {
		t.Fatalf("hop latencies %+v", hl)
	}
	m := HopModel{Lat: hl, Tech: NCTechSRAM}
	var c Counters
	c.RemoteByClass[Cold] = OpCount{Read: 10}
	c.Remote3Hop = OpCount{Read: 4}
	s := m.RemoteReadStall(&c)
	want := int64(6*30 + 4*45)
	if s.Memory != want {
		t.Fatalf("hop stall = %d, want %d", s.Memory, want)
	}
	// Equivalent constant latency: (6*30+4*45)/10 = 36.
	if eq := m.ConstantEquivalent(&c); eq != 36 {
		t.Fatalf("ConstantEquivalent = %v, want 36", eq)
	}
	// No remote reads: falls back to the 2-hop figure.
	var empty Counters
	if eq := m.ConstantEquivalent(&empty); eq != 30 {
		t.Fatalf("empty ConstantEquivalent = %v", eq)
	}
	// 3-hop count clamped to total (defensive).
	c.Remote3Hop.Read = 99
	s = m.RemoteReadStall(&c)
	if s.Memory != 10*45 {
		t.Fatalf("clamped stall = %d, want %d", s.Memory, 10*45)
	}
	// DRAM tech adds the tag check to both hop classes.
	c.Remote3Hop.Read = 4
	md := HopModel{Lat: hl, Tech: NCTechDRAM}
	if s := md.RemoteReadStall(&c); s.Memory != 6*33+4*48 {
		t.Fatalf("DRAM hop stall = %d", s.Memory)
	}
}

func TestContentionModelIdleSystem(t *testing.T) {
	m := ContentionModel{Lat: DefaultLatencies(), Tech: NCTechSRAM}
	var c Counters
	r := m.Evaluate(&c)
	if r.Inflation != 1 || r.Stall.Total() != 0 {
		t.Fatalf("empty counters inflated: %+v", r)
	}
	// A lightly loaded system barely inflates.
	c.Refs = OpCount{Read: 1_000_000}
	c.L1Hits = OpCount{Read: 999_000}
	c.RemoteByClass[Cold] = OpCount{Read: 1_000}
	r = m.Evaluate(&c)
	if r.Inflation > 1.15 {
		t.Fatalf("light load inflated %.3f", r.Inflation)
	}
	if r.BusRho <= 0 || r.NetRho <= 0 {
		t.Fatal("utilizations not computed")
	}
}

func TestContentionModelHeavyLoadInflates(t *testing.T) {
	m := ContentionModel{Lat: DefaultLatencies(), Tech: NCTechSRAM}
	var c Counters
	c.Refs = OpCount{Read: 1_000_000}
	// Half the references go remote: the network interface saturates.
	c.RemoteByClass[Capacity] = OpCount{Read: 500_000}
	c.L1Hits = OpCount{Read: 500_000}
	r := m.Evaluate(&c)
	if r.Inflation <= 1.2 {
		t.Fatalf("heavy load inflation %.3f, want > 1.2", r.Inflation)
	}
	if r.NetRho < 0.3 {
		t.Fatalf("NetRho = %.3f under heavy remote load", r.NetRho)
	}
	if r.Iterations < 2 {
		t.Fatal("fixed point did not iterate")
	}
	// The utilization cap keeps the result finite.
	if r.NetRho > 0.95+1e-9 {
		t.Fatalf("rho exceeded cap: %v", r.NetRho)
	}
}

func TestContentionModelNoConverge(t *testing.T) {
	// One iteration cannot settle a heavily loaded system: Converge must
	// surface ErrNoConverge while still returning its best iterate, and
	// Evaluate must keep its always-answer contract on the same input.
	m := ContentionModel{Lat: DefaultLatencies(), Tech: NCTechSRAM, MaxIter: 1}
	var c Counters
	c.Refs = OpCount{Read: 1_000_000}
	c.RemoteByClass[Capacity] = OpCount{Read: 500_000}
	c.L1Hits = OpCount{Read: 500_000}
	res, err := m.Converge(&c)
	if !errors.Is(err, ErrNoConverge) {
		t.Fatalf("Converge with MaxIter 1: err %v, want ErrNoConverge", err)
	}
	if res.Iterations != 1 || res.Inflation <= 1 {
		t.Fatalf("non-converged result not the best iterate: %+v", res)
	}
	if ev := m.Evaluate(&c); ev.Inflation != res.Inflation {
		t.Fatalf("Evaluate %v disagrees with Converge's iterate %v", ev.Inflation, res.Inflation)
	}
	// A loose tolerance converges the same input within the budget.
	m.Tol = 1 << 20
	if _, err := m.Converge(&c); err != nil {
		t.Fatalf("loose tolerance still failed: %v", err)
	}
}

func TestContentionMonotoneInLoad(t *testing.T) {
	m := ContentionModel{Lat: DefaultLatencies(), Tech: NCTechSRAM}
	prev := 0.0
	for _, remote := range []int64{1000, 10_000, 100_000, 400_000} {
		var c Counters
		c.Refs = OpCount{Read: 1_000_000}
		c.RemoteByClass[Capacity] = OpCount{Read: remote}
		c.L1Hits = OpCount{Read: 1_000_000 - remote}
		r := m.Evaluate(&c)
		if r.Inflation < prev {
			t.Fatalf("inflation not monotone: %v after %v", r.Inflation, prev)
		}
		prev = r.Inflation
	}
}
