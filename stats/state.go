package stats

import "dsmnc/internal/snapshot"

const tagCounters = 0x0A

func saveOp(w *snapshot.Writer, o OpCount) {
	w.I64(o.Read)
	w.I64(o.Write)
}

func loadOp(r *snapshot.Reader) OpCount {
	return OpCount{Read: r.I64(), Write: r.I64()}
}

// SaveState serializes the full event account in fixed field order.
func (c *Counters) SaveState(w *snapshot.Writer) {
	w.Section(tagCounters)
	saveOp(w, c.Refs)
	saveOp(w, c.L1Hits)
	saveOp(w, c.C2C)
	saveOp(w, c.LocalC2C)
	saveOp(w, c.NCHits)
	saveOp(w, c.PCHits)
	saveOp(w, c.LocalMem)
	for i := range c.RemoteByClass {
		saveOp(w, c.RemoteByClass[i])
	}
	saveOp(w, c.Remote3Hop)
	saveOp(w, c.Upgrades)
	w.I64(c.LocalDirtyFetch)
	w.I64(c.WritebacksHome)
	w.I64(c.DowngradeWB)
	w.I64(c.NCInserts)
	w.I64(c.NCEvictions)
	w.I64(c.NCForcedL1Evict)
	w.I64(c.MastershipXfer)
	w.I64(c.Relocations)
	w.I64(c.PageEvictions)
	w.I64(c.PCFlushedDirty)
	w.I64(c.ThresholdRaises)
	w.I64(c.Migrations)
	w.I64(c.Replications)
	saveOp(w, c.ReplicaHits)
	w.I64(c.ReplicaFlushes)
}

// LoadState restores the event account in place.
func (c *Counters) LoadState(r *snapshot.Reader) {
	r.Section(tagCounters)
	var n Counters
	n.Refs = loadOp(r)
	n.L1Hits = loadOp(r)
	n.C2C = loadOp(r)
	n.LocalC2C = loadOp(r)
	n.NCHits = loadOp(r)
	n.PCHits = loadOp(r)
	n.LocalMem = loadOp(r)
	for i := range n.RemoteByClass {
		n.RemoteByClass[i] = loadOp(r)
	}
	n.Remote3Hop = loadOp(r)
	n.Upgrades = loadOp(r)
	n.LocalDirtyFetch = r.I64()
	n.WritebacksHome = r.I64()
	n.DowngradeWB = r.I64()
	n.NCInserts = r.I64()
	n.NCEvictions = r.I64()
	n.NCForcedL1Evict = r.I64()
	n.MastershipXfer = r.I64()
	n.Relocations = r.I64()
	n.PageEvictions = r.I64()
	n.PCFlushedDirty = r.I64()
	n.ThresholdRaises = r.I64()
	n.Migrations = r.I64()
	n.Replications = r.I64()
	n.ReplicaHits = loadOp(r)
	n.ReplicaFlushes = r.I64()
	if r.Err() == nil {
		*c = n
	}
}
