package stats

import "dsmnc/memsys"

// NCTech is the technology of the network cache, which determines the
// latency components of Table 1: an SRAM NC is snooped at bus speed and
// supplies data cache-to-cache; a DRAM NC costs a DRAM access on hits and
// adds a tag-check penalty to every cache miss to remote data.
type NCTech uint8

// Network cache technologies.
const (
	NCTechNone NCTech = iota // no NC: remote misses go straight to the network
	NCTechSRAM               // small fast NC, peer of the processor caches
	NCTechDRAM               // large slow NC in the remote-access critical path
)

// Model evaluates the paper's constant-latency performance model over a
// set of counters.
type Model struct {
	Lat  Latencies
	Tech NCTech
}

// DefaultModel uses Table 2 latencies.
func DefaultModel(tech NCTech) Model {
	return Model{Lat: DefaultLatencies(), Tech: tech}
}

// Stall is the remote read stall of Equation (1), split into the memory
// component and the page-relocation overhead the figures stack on top.
type Stall struct {
	Memory     int64 // N_hit*L_hit + N_miss*L_miss terms, reads only
	Relocation int64 // N_rel * T_rel
}

// Total returns the full remote read stall.
func (s Stall) Total() int64 { return s.Memory + s.Relocation }

// RemoteReadStall applies Equation (1) to the counters. Only read events
// contribute to the memory term: under release consistency the remote
// read stall dominates processor stalls (paper §6.3); relocations are
// counted whatever triggered them.
func (m Model) RemoteReadStall(c *Counters) Stall {
	var s Stall
	l := m.Lat
	s.Memory += c.C2C.Read * l.CacheToCache
	switch m.Tech {
	case NCTechDRAM:
		// Every cache miss to remote data checks the DRAM NC tags.
		s.Memory += c.NCHits.Read * (l.DRAMAccess + l.TagCheck)
		s.Memory += c.Remote().Read * (l.RemoteAccess + l.TagCheck)
	default:
		s.Memory += c.NCHits.Read * l.CacheToCache
		s.Memory += c.Remote().Read * l.RemoteAccess
	}
	s.Memory += c.PCHits.Read * l.DRAMAccess
	// Page relocations into the page cache and OS migration/replication
	// events all cost one software page operation (interrupt + handler
	// + TLB shootdown).
	s.Relocation = (c.Relocations + c.Migrations + c.Replications) * l.PageRelocation
	return s
}

// Traffic is the remote data traffic of Figure 10, in block transfers.
type Traffic struct {
	ReadMisses  int64 // data blocks fetched for reads
	WriteMisses int64 // data blocks fetched for writes, plus ownership upgrades
	Writebacks  int64 // dirty blocks sent home
	PageCopies  int64 // whole-page transfers for OS migration/replication
}

// Total returns the total number of network block transfers.
func (t Traffic) Total() int64 {
	return t.ReadMisses + t.WriteMisses + t.Writebacks + t.PageCopies
}

// RemoteTraffic extracts the Figure 10 traffic account from the counters.
func (m Model) RemoteTraffic(c *Counters) Traffic {
	r := c.Remote()
	return Traffic{
		ReadMisses:  r.Read,
		WriteMisses: r.Write + c.Upgrades.Write,
		Writebacks:  c.WritebacksHome,
		PageCopies:  (c.Migrations + c.Replications) * memsys.BlocksPerPage,
	}
}

// Ratios are the per-reference percentages plotted in Figures 3-8.
type Ratios struct {
	ReadMissPct  float64 // remote read misses per shared reference, %
	WriteMissPct float64 // remote write misses per shared reference, %
	RelocPct     float64 // relocation overhead as equivalent misses, %
}

// Total returns the stacked bar height as plotted in the paper.
func (r Ratios) Total() float64 { return r.ReadMissPct + r.WriteMissPct + r.RelocPct }

// MissRatios computes cluster miss ratios as a percentage of all shared
// references, with the relocation overhead scaled by 225/30 into an
// equivalent amount of remote misses (Figure 7 caption).
func (m Model) MissRatios(c *Counters) Ratios {
	refs := float64(c.Refs.Total())
	if refs == 0 {
		return Ratios{}
	}
	r := c.Remote()
	pageOps := c.Relocations + c.Migrations + c.Replications
	return Ratios{
		ReadMissPct:  100 * float64(r.Read) / refs,
		WriteMissPct: 100 * float64(r.Write) / refs,
		RelocPct:     100 * float64(pageOps) * m.Lat.RelocationCostFactor() / refs,
	}
}
