package stats

// Table 1 of the paper: the latency components of a remote data reference
// for each system organization. This file encodes that table so it can be
// printed by the harness and cross-checked against the model in tests.

// Table1Row describes how one event class completes in one system class.
type Table1Row struct {
	Event  string // "PC hit", "PC miss", "NC hit", "NC miss"
	System string // "No NC", "DRAM NC", "SRAM NC", "SRAM NC & PC"
	Desc   string // prose description from the paper
	Cycles int64  // cost under DefaultLatencies
}

// Table1 returns the latency-component table for the given latency set.
func Table1(l Latencies) []Table1Row {
	return []Table1Row{
		{"PC hit", "SRAM NC & PC", "DRAM access", l.DRAMAccess},
		{"PC miss", "SRAM NC & PC", "Remote access", l.RemoteAccess},
		{"NC hit", "DRAM NC", "DRAM access + tag checking", l.DRAMAccess + l.TagCheck},
		{"NC hit", "SRAM NC", "cache-to-cache transfer", l.CacheToCache},
		{"NC hit", "SRAM NC & PC", "cache-to-cache transfer", l.CacheToCache},
		{"NC miss", "No NC", "Remote access", l.RemoteAccess},
		{"NC miss", "DRAM NC", "Remote access + tag checking", l.RemoteAccess + l.TagCheck},
		{"NC miss", "SRAM NC", "Remote access", l.RemoteAccess},
		{"NC miss", "SRAM NC & PC", "Remote access", l.RemoteAccess},
	}
}
