package stats

// Field-level counter comparison, shared by the golden-stats gate and
// the serving determinism suite: a drift failure should point straight
// at the affected event class, not just say "counters differ".

import (
	"fmt"
	"reflect"
)

// FieldDiff is one Counters field whose values differ.
type FieldDiff struct {
	Field string
	Got   any
	Want  any
}

// String formats the drift for test output.
func (d FieldDiff) String() string {
	return fmt.Sprintf("Counters.%s drifted: got %v, want %v", d.Field, d.Got, d.Want)
}

// DiffCounters compares two counter sets field by field and returns
// every difference by name; an empty slice means the sets are
// identical.
func DiffCounters(got, want Counters) []FieldDiff {
	var diffs []FieldDiff
	gv := reflect.ValueOf(got)
	wv := reflect.ValueOf(want)
	typ := gv.Type()
	for i := 0; i < typ.NumField(); i++ {
		g := gv.Field(i).Interface()
		w := wv.Field(i).Interface()
		if !reflect.DeepEqual(g, w) {
			diffs = append(diffs, FieldDiff{Field: typ.Field(i).Name, Got: g, Want: w})
		}
	}
	return diffs
}
