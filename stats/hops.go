package stats

// Hop-aware latency extension. The paper's model (§4) deliberately uses
// one constant for every remote access and notes that "in fact, two- and
// three-hop transactions have different latencies". This file supplies
// the refinement: remote accesses satisfied by home memory are two-hop
// (requester → home → requester); those requiring a dirty intervention
// at a third cluster are three-hop. The simulator counts both, so the
// stall can be evaluated under either model and the constant-latency
// simplification quantified.

// HopLatencies extends Latencies with distinct two- and three-hop
// remote-access costs.
type HopLatencies struct {
	Latencies
	Remote2Hop int64 // clean-at-home remote access
	Remote3Hop int64 // dirty-intervention remote access
}

// DefaultHopLatencies keeps the paper's 30-cycle figure as the two-hop
// cost and charges 50% more for the third hop (the ratio of DASH-class
// machines).
func DefaultHopLatencies() HopLatencies {
	return HopLatencies{
		Latencies:  DefaultLatencies(),
		Remote2Hop: 30,
		Remote3Hop: 45,
	}
}

// HopModel evaluates the remote read stall under hop-aware latencies.
type HopModel struct {
	Lat  HopLatencies
	Tech NCTech
}

// RemoteReadStall applies Equation (1) with the remote term split by hop
// count: N_2hop*L_2hop + N_3hop*L_3hop instead of N_remote*L_remote.
func (m HopModel) RemoteReadStall(c *Counters) Stall {
	var s Stall
	l := m.Lat
	s.Memory += c.C2C.Read * l.CacheToCache
	tag := int64(0)
	if m.Tech == NCTechDRAM {
		tag = l.TagCheck
		s.Memory += c.NCHits.Read * (l.DRAMAccess + l.TagCheck)
	} else {
		s.Memory += c.NCHits.Read * l.CacheToCache
	}
	r := c.Remote()
	three := c.Remote3Hop.Read
	if three > r.Read {
		three = r.Read
	}
	two := r.Read - three
	s.Memory += two*(l.Remote2Hop+tag) + three*(l.Remote3Hop+tag)
	s.Memory += c.PCHits.Read * l.DRAMAccess
	s.Relocation = c.Relocations * l.PageRelocation
	return s
}

// ConstantEquivalent returns the single remote latency that would make
// the paper's constant model agree with the hop-aware stall for these
// counters — a measure of how far off the constant-30 assumption is.
func (m HopModel) ConstantEquivalent(c *Counters) float64 {
	r := c.Remote()
	if r.Read == 0 {
		return float64(m.Lat.Remote2Hop)
	}
	three := c.Remote3Hop.Read
	if three > r.Read {
		three = r.Read
	}
	two := r.Read - three
	return (float64(two)*float64(m.Lat.Remote2Hop) + float64(three)*float64(m.Lat.Remote3Hop)) /
		float64(r.Read)
}
