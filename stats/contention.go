package stats

import (
	"errors"
	"fmt"
)

// Contention extension. The paper's model deliberately ignores
// contention (§4). This file adds the standard trace-driven remedy: an
// analytic queueing correction. From the event counts we estimate the
// utilization of the two shared resources — the cluster bus and the
// node's network/directory interface — and inflate each service time by
// the M/M/1 residence factor 1/(1-rho). Because the inflated latencies
// lengthen execution and thereby *lower* utilization, the model iterates
// to a fixed point.
//
// The absolute numbers are approximations; the value of the model is
// comparative, answering the question the paper leaves open: does
// contention change the ranking of the systems? (ablate-contention runs
// it over the design space.)

// ContentionModel evaluates the stall under queueing-inflated latencies.
type ContentionModel struct {
	Lat  Latencies
	Tech NCTech
	// CPI0 is the baseline cycles per reference absent memory stalls
	// (issue width, private-data hits); 1.0 if zero.
	CPI0 float64
	// BusOccupancy is the bus cycles consumed per bus transaction
	// (arbitration + transfer); 2.0 if zero.
	BusOccupancy float64
	// NetOccupancy is the interface cycles consumed per network event;
	// 4.0 if zero.
	NetOccupancy float64
	// Clusters divides the global event counts into per-node load;
	// 8 if zero.
	Clusters int
	// ProcsPerCluster relates wall-clock time to the aggregate
	// instruction stream (processors run in parallel); 4 if zero.
	ProcsPerCluster int
	// MaxRho caps the utilization estimate to keep the fixed point
	// finite; 0.95 if zero.
	MaxRho float64
	// MaxIter bounds the fixed-point iteration; 50 if zero. Converge
	// returns ErrNoConverge when the bound is exhausted first.
	MaxIter int
	// Tol is the convergence tolerance on the inflated latencies, in
	// cycles: the fixed point has converged when no latency component
	// moves by more than Tol between rounds. The latencies are integral,
	// so the default 0 demands exact equality — the historical behavior.
	Tol int64
}

func (m ContentionModel) defaults() ContentionModel {
	if m.CPI0 == 0 {
		m.CPI0 = 1.0
	}
	if m.BusOccupancy == 0 {
		m.BusOccupancy = 2.0
	}
	if m.NetOccupancy == 0 {
		m.NetOccupancy = 4.0
	}
	if m.Clusters == 0 {
		m.Clusters = 8
	}
	if m.ProcsPerCluster == 0 {
		m.ProcsPerCluster = 4
	}
	if m.MaxRho == 0 {
		m.MaxRho = 0.95
	}
	if m.MaxIter == 0 {
		m.MaxIter = 50
	}
	return m
}

// ErrNoConverge reports that the contention fixed point failed to settle
// within MaxIter rounds to within Tol cycles. The result alongside it is
// the last iterate — usable for a bound, not for a converged estimate.
var ErrNoConverge = errors.New("stats: contention model did not converge")

// ContentionResult is the converged evaluation.
type ContentionResult struct {
	Stall      Stall   // remote read stall under inflated latencies
	BusRho     float64 // converged bus utilization per cluster
	NetRho     float64 // converged network-interface utilization per cluster
	Inflation  float64 // stall relative to the contention-free model
	Iterations int
}

// Evaluate runs the fixed point over the counters. It is the tolerant
// wrapper around Converge: a non-converging input yields the last
// iterate, matching the historical best-effort behavior.
func (m ContentionModel) Evaluate(c *Counters) ContentionResult {
	res, _ := m.Converge(c)
	return res
}

// Converge runs the fixed point over the counters under the explicit
// iteration cap (MaxIter) and convergence tolerance (Tol). If the
// latencies are still moving by more than Tol cycles when the cap is
// exhausted it returns the last iterate together with ErrNoConverge.
func (m ContentionModel) Converge(c *Counters) (ContentionResult, error) {
	m = m.defaults()
	base := Model{Lat: m.Lat, Tech: m.Tech}
	flat := base.RemoteReadStall(c)
	if c.Refs.Total() == 0 {
		return ContentionResult{Stall: flat, Inflation: 1}, nil
	}

	// Per-cluster event loads (events are spread across the clusters).
	div := float64(m.Clusters)
	busTx := float64(c.C2C.Total()+c.LocalC2C.Total()+c.NCHits.Total()+
		c.PCHits.Total()+c.LocalMem.Total()+c.Remote().Total()+
		c.Upgrades.Total()+c.NCInserts) / div
	netTx := float64(c.Remote().Total()+c.Upgrades.Total()+c.WritebacksHome) / div
	procs := div * float64(m.ProcsPerCluster)

	lat := m.Lat
	var res ContentionResult
	res.Inflation = 1
	converged := false
	for iter := 0; iter < m.MaxIter && !converged; iter++ {
		res.Iterations = iter + 1
		stall := Model{Lat: lat, Tech: m.Tech}.RemoteReadStall(c)
		// Wall-clock time in bus cycles: the per-processor share of the
		// aggregate compute and stall (processors run in parallel; the
		// cluster's resources serve all of them during that window).
		t := (float64(c.Refs.Total())*m.CPI0 + float64(stall.Total())) / procs
		if t <= 0 {
			t = 1
		}
		busRho := min(busTx*m.BusOccupancy/t, m.MaxRho)
		netRho := min(netTx*m.NetOccupancy/t, m.MaxRho)
		next := m.Lat
		next.CacheToCache = inflate(m.Lat.CacheToCache, busRho)
		next.DRAMAccess = inflate(m.Lat.DRAMAccess, busRho)
		next.RemoteAccess = inflate(m.Lat.RemoteAccess, netRho)
		converged = within(next.CacheToCache, lat.CacheToCache, m.Tol) &&
			within(next.DRAMAccess, lat.DRAMAccess, m.Tol) &&
			within(next.RemoteAccess, lat.RemoteAccess, m.Tol)
		lat = next
		res.Stall = Model{Lat: lat, Tech: m.Tech}.RemoteReadStall(c)
		res.BusRho, res.NetRho = busRho, netRho
	}
	if flat.Total() > 0 {
		res.Inflation = float64(res.Stall.Total()) / float64(flat.Total())
	}
	if !converged {
		return res, fmt.Errorf("%w after %d iterations (tol %d cycles)",
			ErrNoConverge, res.Iterations, m.Tol)
	}
	return res, nil
}

// within reports whether two latency iterates agree to the tolerance.
func within(a, b, tol int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// inflate applies the M/M/1 residence-time factor to a service time.
func inflate(serviceTime int64, rho float64) int64 {
	return int64(float64(serviceTime)/(1-rho) + 0.5)
}
