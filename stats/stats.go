// Package stats holds the event counters collected by the simulator and
// the paper's constant-latency performance model (§4, Tables 1 and 2):
// the remote read stall of Equation (1), the page-relocation overhead
// scaling, and the remote data-traffic account used in Figure 10.
package stats

import "fmt"

// Latencies are the per-event costs of Table 2, in 10 ns bus cycles.
type Latencies struct {
	DRAMAccess     int64 // page-cache hit or DRAM NC array access
	TagCheck       int64 // DRAM NC tag check, added to every remote miss
	CacheToCache   int64 // SRAM NC or sibling-cache transfer
	RemoteAccess   int64 // full network round trip to the home node
	PageRelocation int64 // software relocation handler + TLB shootdown
}

// DefaultLatencies is Table 2 of the paper.
func DefaultLatencies() Latencies {
	return Latencies{
		DRAMAccess:     10,
		TagCheck:       3,
		CacheToCache:   1,
		RemoteAccess:   30,
		PageRelocation: 225,
	}
}

// RelocationCostFactor is the factor the paper uses to express relocation
// overhead as an equivalent number of remote misses (225/30, Figure 7).
func (l Latencies) RelocationCostFactor() float64 {
	return float64(l.PageRelocation) / float64(l.RemoteAccess)
}

// MissClass classifies a cluster miss at the directory (paper §2: remote
// coherence and cold misses are "necessary"; the rest are capacity).
type MissClass uint8

// Miss classes.
const (
	Cold MissClass = iota
	Coherence
	Capacity
	NumMissClasses
)

// String names the class.
func (m MissClass) String() string {
	switch m {
	case Cold:
		return "cold"
	case Coherence:
		return "coherence"
	case Capacity:
		return "capacity"
	}
	return fmt.Sprintf("MissClass(%d)", uint8(m))
}

// Necessary reports whether the miss could not have been avoided by any
// amount of remote-data caching.
func (m MissClass) Necessary() bool { return m == Cold || m == Coherence }

// OpCount is a read/write pair of counters.
type OpCount struct {
	Read  int64
	Write int64
}

// Total returns reads plus writes.
func (o OpCount) Total() int64 { return o.Read + o.Write }

// Add accumulates other into o.
func (o *OpCount) Add(other OpCount) {
	o.Read += other.Read
	o.Write += other.Write
}

// Inc bumps the counter for a read (write=false) or write.
func (o *OpCount) Inc(write bool) {
	if write {
		o.Write++
	} else {
		o.Read++
	}
}

// Counters is the full event account of one simulation (or one cluster).
// All counts are in events (block transfers for traffic counters).
type Counters struct {
	Refs OpCount // shared references issued

	// Where misses were satisfied, inside the cluster.
	L1Hits        OpCount                 // processor-cache hits (includes upgrades on write hits)
	C2C           OpCount                 // supplied by a sibling cache on the bus (remote-home blocks)
	LocalC2C      OpCount                 // sibling-cache supply for local-home blocks
	NCHits        OpCount                 // supplied by the network cache
	PCHits        OpCount                 // supplied by the page cache (mapped + valid block)
	LocalMem      OpCount                 // home is local: satisfied by local memory
	RemoteByClass [NumMissClasses]OpCount // left the cluster, by miss class
	Remote3Hop    OpCount                 // remote accesses that needed a dirty intervention

	Upgrades        OpCount // write upgrades needing the directory (remote home)
	LocalDirtyFetch int64   // local-home fetches that retrieved a remote dirty copy
	WritebacksHome  int64   // dirty blocks sent over the network to home
	DowngradeWB     int64   // M->S downgrades (captured or sent home)
	NCInserts       int64   // victims accepted by the NC
	NCEvictions     int64   // NC frames recycled
	NCForcedL1Evict int64   // L1 lines invalidated to keep NC inclusion
	MastershipXfer  int64   // R-state handoffs between sibling caches

	Relocations     int64 // pages relocated into the page cache
	PageEvictions   int64 // page-cache frames recycled
	PCFlushedDirty  int64 // dirty blocks written home during page eviction
	ThresholdRaises int64 // adaptive-policy threshold increments

	// OS page migration/replication (the SGI-Origin alternative).
	Migrations     int64 // pages re-homed to this cluster
	Replications   int64 // read-only replicas granted to this cluster
	ReplicaHits    OpCount
	ReplicaFlushes int64 // replica pages shot down in this cluster
}

// Remote returns total cluster misses that left the cluster, by op.
func (c *Counters) Remote() OpCount {
	var o OpCount
	for i := range c.RemoteByClass {
		o.Add(c.RemoteByClass[i])
	}
	return o
}

// RemoteNecessary returns the cold+coherence remote misses.
func (c *Counters) RemoteNecessary() OpCount {
	var o OpCount
	o.Add(c.RemoteByClass[Cold])
	o.Add(c.RemoteByClass[Coherence])
	return o
}

// RemoteCapacity returns the capacity remote misses.
func (c *Counters) RemoteCapacity() OpCount { return c.RemoteByClass[Capacity] }

// BusTransactions approximates the cluster-bus load: every reference
// that missed its own processor cache issued a bus transaction. Snoop
// upgrades and write-back traffic are not included, so this is a lower
// bound — good enough for the relative utilization trends telemetry
// plots.
func (c *Counters) BusTransactions() int64 { return c.Refs.Total() - c.L1Hits.Total() }

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Refs.Add(other.Refs)
	c.L1Hits.Add(other.L1Hits)
	c.C2C.Add(other.C2C)
	c.LocalC2C.Add(other.LocalC2C)
	c.NCHits.Add(other.NCHits)
	c.PCHits.Add(other.PCHits)
	c.LocalMem.Add(other.LocalMem)
	for i := range c.RemoteByClass {
		c.RemoteByClass[i].Add(other.RemoteByClass[i])
	}
	c.Remote3Hop.Add(other.Remote3Hop)
	c.Upgrades.Add(other.Upgrades)
	c.LocalDirtyFetch += other.LocalDirtyFetch
	c.WritebacksHome += other.WritebacksHome
	c.DowngradeWB += other.DowngradeWB
	c.NCInserts += other.NCInserts
	c.NCEvictions += other.NCEvictions
	c.NCForcedL1Evict += other.NCForcedL1Evict
	c.MastershipXfer += other.MastershipXfer
	c.Relocations += other.Relocations
	c.PageEvictions += other.PageEvictions
	c.PCFlushedDirty += other.PCFlushedDirty
	c.ThresholdRaises += other.ThresholdRaises
	c.Migrations += other.Migrations
	c.Replications += other.Replications
	c.ReplicaHits.Add(other.ReplicaHits)
	c.ReplicaFlushes += other.ReplicaFlushes
}
