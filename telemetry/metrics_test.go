package telemetry

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	if err := r.Counter("zz_total", "Last alphabetically.", func() float64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Gauge("aa_gauge", "First alphabetically.", func() float64 { return 2.5 }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP aa_gauge First alphabetically.\n" +
		"# TYPE aa_gauge gauge\n" +
		"aa_gauge 2.5\n" +
		"# HELP zz_total Last alphabetically.\n" +
		"# TYPE zz_total counter\n" +
		"zz_total 7\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryLabeledSeries(t *testing.T) {
	r := NewRegistry()
	if err := r.CounterWith("jobs_total", "Jobs per queue.", Labels{"queue": "a"}, func() float64 { return 3 }); err != nil {
		t.Fatal(err)
	}
	if err := r.CounterWith("jobs_total", "Jobs per queue.", Labels{"queue": "b"}, func() float64 { return 5 }); err != nil {
		t.Fatalf("second label set on the same name: %v", err)
	}
	if err := r.GaugeWith("depth", "", Labels{"b": "2", "a": "1"}, func() float64 { return 9 }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`jobs_total{queue="a"} 3`,
		`jobs_total{queue="b"} 5`,
		`depth{a="1",b="2"} 9`, // keys sorted
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// HELP/TYPE appear once per name, not once per series.
	if n := strings.Count(got, "# TYPE jobs_total counter"); n != 1 {
		t.Errorf("TYPE jobs_total emitted %d times, want 1:\n%s", n, got)
	}
}

func TestRegistryLabeledRejections(t *testing.T) {
	r := NewRegistry()
	if err := r.CounterWith("x_total", "", Labels{"job": "a"}, func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	cases := []error{
		r.CounterWith("x_total", "", Labels{"job": "a"}, func() float64 { return 0 }),  // duplicate series
		r.CounterWith("x_total", "", Labels{"1bad": "v"}, func() float64 { return 0 }), // bad label name
		r.GaugeWith("x_total", "", Labels{"job": "b"}, func() float64 { return 0 }),    // type clash
	}
	for i, err := range cases {
		if !errors.Is(err, ErrMetric) {
			t.Errorf("case %d: err = %v, want ErrMetric", i, err)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	h, err := NewHistogram(0.1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	r := NewRegistry()
	if err := r.RegisterHistogram("lat_seconds", "Latency.", Labels{"job": "a"}, h); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{job="a",le="0.1"} 1`,
		`lat_seconds_bucket{job="a",le="1"} 3`,
		`lat_seconds_bucket{job="a",le="10"} 4`,
		`lat_seconds_bucket{job="a",le="+Inf"} 5`,
		`lat_seconds_sum{job="a"} 56.05`,
		`lat_seconds_count{job="a"} 5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for i, mk := range []func() (*Histogram, error){
		func() (*Histogram, error) { return NewHistogram() },
		func() (*Histogram, error) { return NewHistogram(1, 1) },
		func() (*Histogram, error) { return NewHistogram(2, 1) },
		func() (*Histogram, error) { return NewHistogram(math.NaN()) },
		func() (*Histogram, error) { return NewHistogram(math.Inf(1)) },
	} {
		if _, err := mk(); !errors.Is(err, ErrMetric) {
			t.Errorf("case %d: err = %v, want ErrMetric", i, err)
		}
	}
	r := NewRegistry()
	if err := r.RegisterHistogram("h", "", nil, nil); !errors.Is(err, ErrMetric) {
		t.Errorf("nil histogram: err = %v, want ErrMetric", err)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	if err := r.Counter("ok_total", "", func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	cases := []error{
		r.Counter("ok_total", "", func() float64 { return 0 }), // duplicate
		r.Gauge("1bad", "", func() float64 { return 0 }),       // leading digit
		r.Gauge("has space", "", func() float64 { return 0 }),  // bad char
		r.Gauge("", "", func() float64 { return 0 }),           // empty
		r.Gauge("nil_fn", "", nil),                             // no callback
	}
	for i, err := range cases {
		if !errors.Is(err, ErrMetric) {
			t.Errorf("case %d: err = %v, want ErrMetric", i, err)
		}
	}
}

// checkExposition asserts text parses as Prometheus exposition format:
// comment lines or `name value` pairs with finite float values.
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	vals := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		vals[name] = f
	}
	return vals
}

func TestSamplerMetricsTrackLatestSample(t *testing.T) {
	s := NewSampler(100, 8)
	r := NewRegistry()
	if err := RegisterSamplerMetrics(r, s); err != nil {
		t.Fatal(err)
	}
	s.Record(mkSample(100))
	s.Record(mkSample(200))
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	vals := checkExposition(t, buf.String())
	if vals["dsmnc_sample_refs"] != 200 {
		t.Fatalf("dsmnc_sample_refs = %v, want 200", vals["dsmnc_sample_refs"])
	}
	if vals["dsmnc_samples_recorded_total"] != 2 {
		t.Fatalf("dsmnc_samples_recorded_total = %v, want 2", vals["dsmnc_samples_recorded_total"])
	}
	if vals["dsmnc_sample_miss_pct"] != 4 {
		t.Fatalf("dsmnc_sample_miss_pct = %v, want 4", vals["dsmnc_sample_miss_pct"])
	}
}

func TestRuntimeMetricsRegister(t *testing.T) {
	r := NewRegistry()
	if err := RegisterRuntimeMetrics(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	vals := checkExposition(t, buf.String())
	if vals["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", vals["go_goroutines"])
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Gauge("test_gauge", "A test value.", func() float64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL())
	if err != nil {
		t.Fatalf("GET %s: %v", srv.URL(), err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want exposition format 0.0.4", ct)
	}
	vals := checkExposition(t, string(body))
	if vals["test_gauge"] != 42 {
		t.Fatalf("test_gauge = %v, want 42", vals["test_gauge"])
	}

	base := strings.TrimSuffix(srv.URL(), "/metrics")
	pprofResp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	io.Copy(io.Discard, pprofResp.Body)
	pprofResp.Body.Close()
	if pprofResp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pprofResp.StatusCode)
	}

	missing, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missing.Body)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", missing.StatusCode)
	}
}
