package telemetry

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	if err := r.Counter("zz_total", "Last alphabetically.", func() float64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Gauge("aa_gauge", "First alphabetically.", func() float64 { return 2.5 }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP aa_gauge First alphabetically.\n" +
		"# TYPE aa_gauge gauge\n" +
		"aa_gauge 2.5\n" +
		"# HELP zz_total Last alphabetically.\n" +
		"# TYPE zz_total counter\n" +
		"zz_total 7\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	if err := r.Counter("ok_total", "", func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	cases := []error{
		r.Counter("ok_total", "", func() float64 { return 0 }), // duplicate
		r.Gauge("1bad", "", func() float64 { return 0 }),       // leading digit
		r.Gauge("has space", "", func() float64 { return 0 }),  // bad char
		r.Gauge("", "", func() float64 { return 0 }),           // empty
		r.Gauge("nil_fn", "", nil),                             // no callback
	}
	for i, err := range cases {
		if !errors.Is(err, ErrMetric) {
			t.Errorf("case %d: err = %v, want ErrMetric", i, err)
		}
	}
}

// checkExposition asserts text parses as Prometheus exposition format:
// comment lines or `name value` pairs with finite float values.
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	vals := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %q: bad value: %v", line, err)
		}
		vals[name] = f
	}
	return vals
}

func TestSamplerMetricsTrackLatestSample(t *testing.T) {
	s := NewSampler(100, 8)
	r := NewRegistry()
	if err := RegisterSamplerMetrics(r, s); err != nil {
		t.Fatal(err)
	}
	s.Record(mkSample(100))
	s.Record(mkSample(200))
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	vals := checkExposition(t, buf.String())
	if vals["dsmnc_sample_refs"] != 200 {
		t.Fatalf("dsmnc_sample_refs = %v, want 200", vals["dsmnc_sample_refs"])
	}
	if vals["dsmnc_samples_recorded_total"] != 2 {
		t.Fatalf("dsmnc_samples_recorded_total = %v, want 2", vals["dsmnc_samples_recorded_total"])
	}
	if vals["dsmnc_sample_miss_pct"] != 4 {
		t.Fatalf("dsmnc_sample_miss_pct = %v, want 4", vals["dsmnc_sample_miss_pct"])
	}
}

func TestRuntimeMetricsRegister(t *testing.T) {
	r := NewRegistry()
	if err := RegisterRuntimeMetrics(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	vals := checkExposition(t, buf.String())
	if vals["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", vals["go_goroutines"])
	}
}

func TestServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Gauge("test_gauge", "A test value.", func() float64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL())
	if err != nil {
		t.Fatalf("GET %s: %v", srv.URL(), err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want exposition format 0.0.4", ct)
	}
	vals := checkExposition(t, string(body))
	if vals["test_gauge"] != 42 {
		t.Fatalf("test_gauge = %v, want 42", vals["test_gauge"])
	}

	base := strings.TrimSuffix(srv.URL(), "/metrics")
	pprofResp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	io.Copy(io.Discard, pprofResp.Body)
	pprofResp.Body.Close()
	if pprofResp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pprofResp.StatusCode)
	}

	missing, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missing.Body)
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", missing.StatusCode)
	}
}
