// Package telemetry gives every simulation live observability: a
// time-series sampler that records per-interval gauges into a bounded
// ring buffer (exportable as JSONL or CSV), a structured coherence
// event trace with a compact binary codec (renderable to Perfetto by
// cmd/dsmtrace), and a Prometheus-style metrics registry served over
// HTTP alongside the Go pprof handlers.
//
// The paper's evaluation (§6) — and package stats — only see end-of-run
// aggregates, which hide warm-up transients, NC/PC thrashing phases and
// the moment adaptive thresholds kick in. The sampler exposes exactly
// those: `dsmsim -sample-every 100000 -sample-out run.jsonl` records the
// NC hit-rate and miss-ratio trajectory of a run, and `-metrics :9090`
// serves the same gauges live while a sweep is still going.
//
// Everything here is race-safe (samplers and tracers may be read by a
// metrics scrape while the simulation writes them) and panic-free by
// the repository's AST-enforced contract: malformed event traces land
// on ErrBadEventTrace, never on a panic.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sample is one point of a run's time series. The producer (the
// simulator) fills the cumulative counters and occupancy gauges; the
// Sampler stamps the sequence number and wall clock and derives the
// interval rates from the previous sample.
type Sample struct {
	// Seq numbers samples from 0 in recording order.
	Seq int64 `json:"seq"`
	// Refs is the cumulative count of applied references — the
	// simulated clock every other field is sampled at.
	Refs int64 `json:"refs"`

	// WallNanos and RefsPerSec are wall-clock annotations, present only
	// when the sampler was given a clock; they stay zero otherwise so
	// that clockless series are fully deterministic (and snapshot
	// round-trips bit-identically).
	WallNanos  int64   `json:"wall_ns,omitempty"`
	RefsPerSec float64 `json:"refs_per_sec,omitempty"`

	// Cumulative event counters, mirroring stats.Counters.
	Reads          int64 `json:"reads"`
	Writes         int64 `json:"writes"`
	L1Hits         int64 `json:"l1_hits"`
	NCHits         int64 `json:"nc_hits"`
	PCHits         int64 `json:"pc_hits"`
	RemoteMisses   int64 `json:"remote_misses"`
	RemoteCapacity int64 `json:"remote_capacity"`
	NCInserts      int64 `json:"nc_inserts"`
	NCEvictions    int64 `json:"nc_evictions"`
	Relocations    int64 `json:"relocations"`
	PageEvictions  int64 `json:"page_evictions"`
	WritebacksHome int64 `json:"writebacks_home"`

	// Occupancy gauges, summed over the machine's clusters.
	NCUsed   int64 `json:"nc_used"`
	NCFrames int64 `json:"nc_frames"` // 0 means unbounded (infinite NCs)
	PCUsed   int64 `json:"pc_used"`
	PCFrames int64 `json:"pc_frames"`

	// Cumulative derived rates, in percent of shared references.
	MissPct  float64 `json:"miss_pct"`
	NCHitPct float64 `json:"nc_hit_pct"`

	// Interval derived rates: the same ratios over just the references
	// applied since the previous sample. These are the transients the
	// end-of-run aggregates hide.
	IntervalRefs     int64   `json:"interval_refs"`
	IntervalMissPct  float64 `json:"interval_miss_pct"`
	IntervalNCHitPct float64 `json:"interval_nc_hit_pct"`
	// BusUtilPct approximates snooping-bus pressure over the interval:
	// the fraction of references that issued a bus transaction (every
	// reference that did not hit in its own processor cache), percent.
	BusUtilPct float64 `json:"bus_util_pct"`
}

// pct returns 100*num/den, or 0 for an empty denominator.
func pct(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// derive fills the interval fields of s from the previous sample (zero
// for the first) and returns it.
func derive(s, prev Sample) Sample {
	dRefs := s.Refs - prev.Refs
	if dRefs < 0 { // defensive: a producer rewinding its clock
		dRefs = 0
	}
	s.IntervalRefs = dRefs
	s.IntervalMissPct = pct(s.RemoteMisses-prev.RemoteMisses, dRefs)
	s.IntervalNCHitPct = pct(s.NCHits-prev.NCHits, dRefs)
	s.BusUtilPct = pct(dRefs-(s.L1Hits-prev.L1Hits), dRefs)
	s.MissPct = pct(s.RemoteMisses, s.Refs)
	s.NCHitPct = pct(s.NCHits, s.Refs)
	return s
}

// DefaultCapacity bounds the sample ring buffer when the caller does
// not: at the dsmsim default of one sample per 100k references this
// retains the most recent ~400M simulated references of history.
const DefaultCapacity = 4096

// Sampler records the time series of one simulated machine. It is safe
// for concurrent use: the simulator records while a metrics scrape or a
// heartbeat reads. Create one with NewSampler and attach it through
// dsmnc.Options.Sampler (single runs only — a sweep's cells would
// interleave their series).
type Sampler struct {
	mu       sync.Mutex
	every    int64
	ring     []Sample
	start    int // index of the oldest retained sample
	n        int // retained count
	seq      int64
	dropped  int64
	prev     Sample // last recorded sample (raw basis for intervals)
	hasPrev  bool
	now      func() time.Time
	lastWall time.Time
}

// NewSampler builds a sampler that expects one sample every `every`
// applied references, retaining at most capacity samples (oldest
// dropped first). Non-positive arguments take the minimum interval of 1
// and DefaultCapacity respectively.
func NewSampler(every int64, capacity int) *Sampler {
	if every < 1 {
		every = 1
	}
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Sampler{every: every, ring: make([]Sample, 0, capacity)}
}

// WithClock attaches a wall-clock source (normally time.Now) so samples
// carry WallNanos and RefsPerSec. Without one the series is fully
// deterministic. Returns the sampler for chaining.
func (s *Sampler) WithClock(now func() time.Time) *Sampler {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
	if now != nil {
		s.lastWall = now()
	}
	return s
}

// Every returns the sampling interval in applied references.
func (s *Sampler) Every() int64 { return s.every }

// Record stamps and appends one sample. The caller fills the cumulative
// counters and occupancy gauges; Record assigns Seq, the wall-clock
// annotations, and the interval rates derived from the previous sample.
func (s *Sampler) Record(raw Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	smp := derive(raw, s.prev)
	smp.Seq = s.seq
	s.seq++
	if s.now != nil {
		t := s.now()
		smp.WallNanos = t.UnixNano()
		if dt := t.Sub(s.lastWall).Seconds(); dt > 0 {
			smp.RefsPerSec = float64(smp.IntervalRefs) / dt
		}
		s.lastWall = t
	}
	s.prev = smp
	s.hasPrev = true
	s.append(smp)
}

// append adds to the ring, recycling the oldest slot when full.
func (s *Sampler) append(smp Sample) {
	if s.n < cap(s.ring) {
		s.ring = append(s.ring, Sample{})
		s.ring[(s.start+s.n)%cap(s.ring)] = smp
		s.n++
		return
	}
	s.ring[s.start] = smp
	s.start = (s.start + 1) % cap(s.ring)
	s.dropped++
}

// Len returns how many samples are retained.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Recorded returns how many samples were ever recorded, including ones
// the bounded ring has since dropped.
func (s *Sampler) Recorded() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Dropped returns how many samples the bounded ring discarded.
func (s *Sampler) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Latest returns the most recent sample, if any.
func (s *Sampler) Latest() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasPrev {
		return Sample{}, false
	}
	return s.prev, true
}

// Samples returns a copy of the retained series, oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(s.start+i)%cap(s.ring)]
	}
	return out
}

// WriteJSONL writes the retained series as one JSON object per line —
// the `-sample-out run.jsonl` format.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, smp := range s.Samples() {
		if err := enc.Encode(smp); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader names the CSV columns, in the order csvRow emits them.
var csvHeader = []string{
	"seq", "refs", "wall_ns", "refs_per_sec",
	"reads", "writes", "l1_hits", "nc_hits", "pc_hits",
	"remote_misses", "remote_capacity", "nc_inserts", "nc_evictions",
	"relocations", "page_evictions", "writebacks_home",
	"nc_used", "nc_frames", "pc_used", "pc_frames",
	"miss_pct", "nc_hit_pct",
	"interval_refs", "interval_miss_pct", "interval_nc_hit_pct", "bus_util_pct",
}

// WriteCSV writes the retained series as CSV with a header row — the
// `-sample-out run.csv` format.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for i, h := range csvHeader {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, smp := range s.Samples() {
		if _, err := fmt.Fprintf(w,
			"%d,%d,%d,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d,%g,%g,%g\n",
			smp.Seq, smp.Refs, smp.WallNanos, smp.RefsPerSec,
			smp.Reads, smp.Writes, smp.L1Hits, smp.NCHits, smp.PCHits,
			smp.RemoteMisses, smp.RemoteCapacity, smp.NCInserts, smp.NCEvictions,
			smp.Relocations, smp.PageEvictions, smp.WritebacksHome,
			smp.NCUsed, smp.NCFrames, smp.PCUsed, smp.PCFrames,
			smp.MissPct, smp.NCHitPct,
			smp.IntervalRefs, smp.IntervalMissPct, smp.IntervalNCHitPct, smp.BusUtilPct,
		); err != nil {
			return err
		}
	}
	return nil
}
