package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dsmnc/internal/snapshot"
)

// mkSample builds a raw cumulative sample at the given reference count.
func mkSample(refs int64) Sample {
	return Sample{
		Refs:         refs,
		Reads:        refs * 3 / 4,
		Writes:       refs / 4,
		L1Hits:       refs * 9 / 10,
		NCHits:       refs / 20,
		RemoteMisses: refs / 25,
		Relocations:  refs / 1000,
		NCUsed:       128,
		NCFrames:     256,
		PCUsed:       3,
		PCFrames:     8,
	}
}

func TestSamplerDerivesIntervalRates(t *testing.T) {
	s := NewSampler(100, 16)
	s.Record(mkSample(100))
	s.Record(mkSample(200))
	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("retained %d samples, want 2", len(got))
	}
	first, second := got[0], got[1]
	if first.Seq != 0 || second.Seq != 1 {
		t.Fatalf("sequence numbers %d, %d", first.Seq, second.Seq)
	}
	if first.IntervalRefs != 100 || second.IntervalRefs != 100 {
		t.Fatalf("interval refs %d, %d, want 100, 100", first.IntervalRefs, second.IntervalRefs)
	}
	// Cumulative miss ratio at 200 refs: 8/200 = 4%.
	if second.MissPct != 4 {
		t.Fatalf("MissPct = %v, want 4", second.MissPct)
	}
	// Interval misses: 8-4 over 100 refs = 4%.
	if second.IntervalMissPct != 4 {
		t.Fatalf("IntervalMissPct = %v, want 4", second.IntervalMissPct)
	}
	// Bus: 100 interval refs minus 90 L1 hits = 10%.
	if second.BusUtilPct != 10 {
		t.Fatalf("BusUtilPct = %v, want 10", second.BusUtilPct)
	}
	if first.WallNanos != 0 || first.RefsPerSec != 0 {
		t.Fatalf("clockless sampler stamped wall fields: %+v", first)
	}
}

func TestSamplerRingBound(t *testing.T) {
	s := NewSampler(1, 4)
	for i := int64(1); i <= 10; i++ {
		s.Record(mkSample(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped())
	}
	if s.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", s.Recorded())
	}
	got := s.Samples()
	for i, smp := range got {
		if want := int64(7 + i); smp.Refs != want {
			t.Fatalf("sample %d has Refs %d, want %d (oldest must be dropped first)", i, smp.Refs, want)
		}
	}
	latest, ok := s.Latest()
	if !ok || latest.Refs != 10 {
		t.Fatalf("Latest = %+v, %t", latest, ok)
	}
}

func TestSamplerClock(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	s := NewSampler(10, 8).WithClock(func() time.Time { return now })
	now = now.Add(2 * time.Second)
	s.Record(mkSample(10))
	latest, _ := s.Latest()
	if latest.WallNanos != now.UnixNano() {
		t.Fatalf("WallNanos = %d, want %d", latest.WallNanos, now.UnixNano())
	}
	if latest.RefsPerSec != 5 { // 10 refs over 2 s
		t.Fatalf("RefsPerSec = %v, want 5", latest.RefsPerSec)
	}
}

func TestSamplerJSONLAndCSV(t *testing.T) {
	s := NewSampler(50, 8)
	s.Record(mkSample(50))
	s.Record(mkSample(100))

	var jsonl bytes.Buffer
	if err := s.WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&jsonl)
	var decoded []Sample
	for sc.Scan() {
		var smp Sample
		if err := json.Unmarshal(sc.Bytes(), &smp); err != nil {
			t.Fatalf("line %d does not parse: %v", len(decoded), err)
		}
		decoded = append(decoded, smp)
	}
	if !reflect.DeepEqual(decoded, s.Samples()) {
		t.Fatalf("JSONL round trip diverges:\n%+v\n%+v", decoded, s.Samples())
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	cols := len(strings.Split(lines[0], ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != cols {
			t.Fatalf("CSV line %d has %d columns, header has %d", i, got, cols)
		}
	}
}

func TestSamplerSnapshotRoundTrip(t *testing.T) {
	s := NewSampler(25, 4)
	for i := int64(1); i <= 6; i++ { // overflows the ring: dropped > 0
		s.Record(mkSample(25 * i))
	}
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	s.SaveState(w)
	if err := w.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}

	restored := NewSampler(25, 4)
	r := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	restored.LoadState(r)
	if err := r.Finish(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(restored.Samples(), s.Samples()) {
		t.Fatalf("series diverges after round trip")
	}
	if restored.Recorded() != s.Recorded() || restored.Dropped() != s.Dropped() {
		t.Fatalf("counters diverge: recorded %d/%d dropped %d/%d",
			restored.Recorded(), s.Recorded(), restored.Dropped(), s.Dropped())
	}
	// The restored sampler must keep deriving intervals from the same
	// basis: record the same next sample on both and compare.
	s.Record(mkSample(175))
	restored.Record(mkSample(175))
	a, _ := s.Latest()
	b, _ := restored.Latest()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("post-restore sample diverges:\n%+v\n%+v", a, b)
	}
}

func TestSamplerLoadRejectsIntervalMismatch(t *testing.T) {
	s := NewSampler(25, 4)
	s.Record(mkSample(25))
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	s.SaveState(w)
	if err := w.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}
	other := NewSampler(50, 4)
	r := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	other.LoadState(r)
	if err := r.Finish(); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("interval mismatch: err = %v, want ErrBadSnapshot", err)
	}
}

// TestSamplerConcurrentAccess exercises Record against readers under
// the race detector.
func TestSamplerConcurrentAccess(t *testing.T) {
	s := NewSampler(1, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Latest()
				s.Samples()
				s.Dropped()
				_ = s.WriteJSONL(discardWriter{})
			}
		}()
	}
	for i := int64(1); i <= 500; i++ {
		s.Record(mkSample(i))
	}
	close(stop)
	wg.Wait()
	if s.Recorded() != 500 {
		t.Fatalf("Recorded = %d, want 500", s.Recorded())
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
