package telemetry

// The live metrics endpoint: a small Prometheus-style registry of
// callback-backed counters and gauges, rendered in text exposition
// format (version 0.0.4) and served over HTTP together with the Go
// pprof handlers. This file (and cmd/) are the only places in the
// repository allowed to import net/http — an AST lint enforces it.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrMetric marks an invalid metric registration: a malformed name or
// label, or a duplicate series.
var ErrMetric = errors.New("telemetry: invalid metric registration")

// Labels is one series' label set. Two registrations of the same metric
// name may coexist as long as their label sets differ — that is how
// concurrent jobs each get their own dsmnc_* series on one registry.
type Labels map[string]string

// metric is one registered time series: a metric name, a rendered label
// set (possibly empty), and either a value callback (counter/gauge) or
// a histogram.
type metric struct {
	name   string
	labels string // rendered `{k="v",...}`, or ""
	help   string
	typ    string // "counter", "gauge" or "histogram"
	fn     func() float64
	hist   *Histogram
}

// Registry holds callback-backed metrics and renders them in Prometheus
// text exposition format. The zero value is ready to use; it is safe
// for concurrent registration and scraping.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// validMetricName enforces the Prometheus data-model charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName enforces the Prometheus label charset
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelValueEscaper escapes label values per the text exposition format.
var labelValueEscaper = strings.NewReplacer("\\", `\\`, "\n", `\n`, `"`, `\"`)

// renderLabels turns a label set into its canonical `{k="v",...}` form,
// keys sorted so the same set always renders (and deduplicates) the
// same way.
func renderLabels(ls Labels) (string, error) {
	if len(ls) == 0 {
		return "", nil
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		if !validLabelName(k) {
			return "", fmt.Errorf("%w: bad label name %q", ErrMetric, k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labelValueEscaper.Replace(ls[k]))
	}
	b.WriteByte('}')
	return b.String(), nil
}

// register adds one series, rejecting bad names, bad labels, duplicate
// (name, labels) pairs, and a name reused under a different type.
func (r *Registry) register(name, help, typ string, labels Labels, fn func() float64, h *Histogram) error {
	if !validMetricName(name) {
		return fmt.Errorf("%w: bad metric name %q", ErrMetric, name)
	}
	if fn == nil && h == nil {
		return fmt.Errorf("%w: metric %q has no value function", ErrMetric, name)
	}
	rendered, err := renderLabels(labels)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = map[string]metric{}
	}
	key := name + rendered
	if _, dup := r.metrics[key]; dup {
		return fmt.Errorf("%w: series %s registered twice", ErrMetric, key)
	}
	for _, m := range r.metrics {
		if m.name == name && m.typ != typ {
			return fmt.Errorf("%w: metric %q registered as both %s and %s", ErrMetric, name, m.typ, typ)
		}
	}
	r.metrics[key] = metric{name: name, labels: rendered, help: help, typ: typ, fn: fn, hist: h}
	return nil
}

// Counter registers a monotonically-increasing metric backed by fn.
func (r *Registry) Counter(name, help string, fn func() float64) error {
	return r.register(name, help, "counter", nil, fn, nil)
}

// Gauge registers a point-in-time metric backed by fn.
func (r *Registry) Gauge(name, help string, fn func() float64) error {
	return r.register(name, help, "gauge", nil, fn, nil)
}

// CounterWith registers a labeled counter series; the same name may be
// registered many times under distinct label sets.
func (r *Registry) CounterWith(name, help string, labels Labels, fn func() float64) error {
	return r.register(name, help, "counter", labels, fn, nil)
}

// GaugeWith registers a labeled gauge series.
func (r *Registry) GaugeWith(name, help string, labels Labels, fn func() float64) error {
	return r.register(name, help, "gauge", labels, fn, nil)
}

// RegisterHistogram exposes a Histogram as a Prometheus histogram
// (name_bucket cumulative counts plus name_sum / name_count).
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) error {
	if h == nil {
		return fmt.Errorf("%w: metric %q has a nil histogram", ErrMetric, name)
	}
	return r.register(name, help, "histogram", labels, nil, h)
}

// WriteText renders every registered series in Prometheus text
// exposition format, sorted by (name, labels) for stable scrapes. The
// HELP and TYPE headers are emitted once per metric name, ahead of its
// first series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for key := range r.metrics {
		keys = append(keys, key)
	}
	ms := make([]metric, 0, len(keys))
	sort.Strings(keys)
	for _, key := range keys {
		ms = append(ms, r.metrics[key])
	}
	r.mu.Unlock() // value callbacks run unlocked: they may take other locks
	sort.SliceStable(ms, func(i, k int) bool {
		if ms[i].name != ms[k].name {
			return ms[i].name < ms[k].name
		}
		return ms[i].labels < ms[k].labels
	})

	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			lastName = m.name
			if m.help != "" {
				help := strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(m.help)
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
				return err
			}
		}
		if m.hist != nil {
			if err := m.hist.writeText(w, m.name, m.labels); err != nil {
				return err
			}
			continue
		}
		v := m.fn()
		if math.IsNaN(v) {
			v = 0 // NaN would poison sum/rate queries downstream
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			m.name, m.labels, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// DefaultLatencyBuckets are the upper bounds (seconds) of the stock
// latency histogram: 1ms to 60s, roughly logarithmic.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe and
// scraping. Register it on a Registry with RegisterHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []uint64  // len(bounds)+1, the last is the overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds; at least one finite bound is required.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("%w: histogram needs at least one bucket bound", ErrMetric)
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: histogram bound %v is not finite", ErrMetric, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("%w: histogram bounds must ascend (%v after %v)", ErrMetric, b, bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// Observe records one value. NaN observations are dropped — they would
// poison the sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the observed values, or 0 before
// anything has been observed. The serving layer's Retry-After estimate
// is built on it.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// writeText renders the histogram's bucket/sum/count series with the
// le label merged into the series labels.
func (h *Histogram) writeText(w io.Writer, name, labels string) error {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	withLE := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(le), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels,
		strconv.FormatFloat(sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors mean the client hung up; nothing to do about it.
		_ = r.WriteText(w)
	})
}

// RegisterRuntimeMetrics adds the Go runtime gauges every endpoint
// should have: goroutines, heap in use, and GC totals.
func RegisterRuntimeMetrics(r *Registry) error {
	read := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	regs := []error{
		r.Gauge("go_goroutines", "Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) }),
		r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
			read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) })),
		r.Counter("go_gc_cycles_total", "Completed GC cycles.",
			read(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) })),
	}
	return errors.Join(regs...)
}

// RegisterSamplerMetrics exposes the sampler's latest sample and ring
// health as dsmnc_sample_* series.
func RegisterSamplerMetrics(r *Registry, s *Sampler) error {
	latest := func(pick func(Sample) float64) func() float64 {
		return func() float64 {
			smp, ok := s.Latest()
			if !ok {
				return 0
			}
			return pick(smp)
		}
	}
	regs := []error{
		r.Counter("dsmnc_sample_refs", "Applied references at the latest sample.",
			latest(func(s Sample) float64 { return float64(s.Refs) })),
		r.Gauge("dsmnc_sample_miss_pct", "Cumulative remote miss ratio at the latest sample, percent.",
			latest(func(s Sample) float64 { return s.MissPct })),
		r.Gauge("dsmnc_sample_interval_miss_pct", "Remote miss ratio over the latest sampling interval, percent.",
			latest(func(s Sample) float64 { return s.IntervalMissPct })),
		r.Gauge("dsmnc_sample_nc_hit_pct", "Cumulative NC hit rate at the latest sample, percent of references.",
			latest(func(s Sample) float64 { return s.NCHitPct })),
		r.Gauge("dsmnc_sample_nc_used_frames", "NC frames in use at the latest sample, machine-wide.",
			latest(func(s Sample) float64 { return float64(s.NCUsed) })),
		r.Gauge("dsmnc_sample_pc_used_frames", "Page-cache frames in use at the latest sample, machine-wide.",
			latest(func(s Sample) float64 { return float64(s.PCUsed) })),
		r.Counter("dsmnc_sample_relocations_total", "Cumulative page relocations at the latest sample.",
			latest(func(s Sample) float64 { return float64(s.Relocations) })),
		r.Gauge("dsmnc_sample_bus_util_pct", "Bus transactions per reference over the latest interval, percent.",
			latest(func(s Sample) float64 { return s.BusUtilPct })),
		r.Gauge("dsmnc_sample_refs_per_second", "Simulation throughput over the latest interval.",
			latest(func(s Sample) float64 { return s.RefsPerSec })),
		r.Counter("dsmnc_samples_recorded_total", "Samples ever recorded.",
			func() float64 { return float64(s.Recorded()) }),
		r.Counter("dsmnc_samples_dropped_total", "Samples the bounded ring discarded.",
			func() float64 { return float64(s.Dropped()) }),
	}
	return errors.Join(regs...)
}

// Server is a live metrics endpoint: /metrics plus the Go pprof
// handlers under /debug/pprof/.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the endpoint on addr (e.g. ":9090"; ":0" picks a free
// port — read it back from Addr). The server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "dsmnc metrics endpoint: /metrics, /debug/pprof/")
	})
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// http.Serve always returns a non-nil error on Close; that is
		// the normal shutdown path, not a failure to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the listening address, with the real port when the
// server was started on ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the scrape URL of the /metrics handler.
func (s *Server) URL() string {
	host := s.Addr()
	if strings.HasPrefix(host, "[::]:") {
		host = "localhost:" + strings.TrimPrefix(host, "[::]:")
	} else if strings.HasPrefix(host, "0.0.0.0:") {
		host = "localhost:" + strings.TrimPrefix(host, "0.0.0.0:")
	}
	return "http://" + host + "/metrics"
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
