package telemetry

// The live metrics endpoint: a small Prometheus-style registry of
// callback-backed counters and gauges, rendered in text exposition
// format (version 0.0.4) and served over HTTP together with the Go
// pprof handlers. This file (and cmd/) are the only places in the
// repository allowed to import net/http — an AST lint enforces it.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrMetric marks an invalid metric registration: a malformed name or a
// duplicate.
var ErrMetric = errors.New("telemetry: invalid metric registration")

// metric is one registered time series.
type metric struct {
	name string
	help string
	typ  string // "counter" or "gauge"
	fn   func() float64
}

// Registry holds callback-backed metrics and renders them in Prometheus
// text exposition format. The zero value is ready to use; it is safe
// for concurrent registration and scraping.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// validMetricName enforces the Prometheus data-model charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds one metric, rejecting bad names and duplicates.
func (r *Registry) register(name, help, typ string, fn func() float64) error {
	if !validMetricName(name) {
		return fmt.Errorf("%w: bad metric name %q", ErrMetric, name)
	}
	if fn == nil {
		return fmt.Errorf("%w: metric %q has no value function", ErrMetric, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = map[string]metric{}
	}
	if _, dup := r.metrics[name]; dup {
		return fmt.Errorf("%w: metric %q registered twice", ErrMetric, name)
	}
	r.metrics[name] = metric{name: name, help: help, typ: typ, fn: fn}
	return nil
}

// Counter registers a monotonically-increasing metric backed by fn.
func (r *Registry) Counter(name, help string, fn func() float64) error {
	return r.register(name, help, "counter", fn)
}

// Gauge registers a point-in-time metric backed by fn.
func (r *Registry) Gauge(name, help string, fn func() float64) error {
	return r.register(name, help, "gauge", fn)
}

// WriteText renders every registered metric in Prometheus text
// exposition format, sorted by name for stable scrapes.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock() // value callbacks run unlocked: they may take other locks

	for _, m := range ms {
		v := m.fn()
		if math.IsNaN(v) {
			v = 0 // NaN would poison sum/rate queries downstream
		}
		if m.help != "" {
			help := strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(m.help)
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
			m.name, m.typ, m.name, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors mean the client hung up; nothing to do about it.
		_ = r.WriteText(w)
	})
}

// RegisterRuntimeMetrics adds the Go runtime gauges every endpoint
// should have: goroutines, heap in use, and GC totals.
func RegisterRuntimeMetrics(r *Registry) error {
	read := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	regs := []error{
		r.Gauge("go_goroutines", "Number of live goroutines.",
			func() float64 { return float64(runtime.NumGoroutine()) }),
		r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
			read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) })),
		r.Counter("go_gc_cycles_total", "Completed GC cycles.",
			read(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) })),
	}
	return errors.Join(regs...)
}

// RegisterSamplerMetrics exposes the sampler's latest sample and ring
// health as dsmnc_sample_* series.
func RegisterSamplerMetrics(r *Registry, s *Sampler) error {
	latest := func(pick func(Sample) float64) func() float64 {
		return func() float64 {
			smp, ok := s.Latest()
			if !ok {
				return 0
			}
			return pick(smp)
		}
	}
	regs := []error{
		r.Counter("dsmnc_sample_refs", "Applied references at the latest sample.",
			latest(func(s Sample) float64 { return float64(s.Refs) })),
		r.Gauge("dsmnc_sample_miss_pct", "Cumulative remote miss ratio at the latest sample, percent.",
			latest(func(s Sample) float64 { return s.MissPct })),
		r.Gauge("dsmnc_sample_interval_miss_pct", "Remote miss ratio over the latest sampling interval, percent.",
			latest(func(s Sample) float64 { return s.IntervalMissPct })),
		r.Gauge("dsmnc_sample_nc_hit_pct", "Cumulative NC hit rate at the latest sample, percent of references.",
			latest(func(s Sample) float64 { return s.NCHitPct })),
		r.Gauge("dsmnc_sample_nc_used_frames", "NC frames in use at the latest sample, machine-wide.",
			latest(func(s Sample) float64 { return float64(s.NCUsed) })),
		r.Gauge("dsmnc_sample_pc_used_frames", "Page-cache frames in use at the latest sample, machine-wide.",
			latest(func(s Sample) float64 { return float64(s.PCUsed) })),
		r.Counter("dsmnc_sample_relocations_total", "Cumulative page relocations at the latest sample.",
			latest(func(s Sample) float64 { return float64(s.Relocations) })),
		r.Gauge("dsmnc_sample_bus_util_pct", "Bus transactions per reference over the latest interval, percent.",
			latest(func(s Sample) float64 { return s.BusUtilPct })),
		r.Gauge("dsmnc_sample_refs_per_second", "Simulation throughput over the latest interval.",
			latest(func(s Sample) float64 { return s.RefsPerSec })),
		r.Counter("dsmnc_samples_recorded_total", "Samples ever recorded.",
			func() float64 { return float64(s.Recorded()) }),
		r.Counter("dsmnc_samples_dropped_total", "Samples the bounded ring discarded.",
			func() float64 { return float64(s.Dropped()) }),
	}
	return errors.Join(regs...)
}

// Server is a live metrics endpoint: /metrics plus the Go pprof
// handlers under /debug/pprof/.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the endpoint on addr (e.g. ":9090"; ":0" picks a free
// port — read it back from Addr). The server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "dsmnc metrics endpoint: /metrics, /debug/pprof/")
	})
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// http.Serve always returns a non-nil error on Close; that is
		// the normal shutdown path, not a failure to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the listening address, with the real port when the
// server was started on ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the scrape URL of the /metrics handler.
func (s *Server) URL() string {
	host := s.Addr()
	if strings.HasPrefix(host, "[::]:") {
		host = "localhost:" + strings.TrimPrefix(host, "[::]:")
	} else if strings.HasPrefix(host, "0.0.0.0:") {
		host = "localhost:" + strings.TrimPrefix(host, "0.0.0.0:")
	}
	return "http://" + host + "/metrics"
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
