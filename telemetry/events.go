package telemetry

// The structured coherence event trace: state transitions,
// victimizations, relocations, invalidations and write-backs, stamped
// with the applied-reference clock, deterministically sampled and
// written through a compact varint binary codec. cmd/dsmtrace renders
// the format to Chrome/Perfetto trace_event JSON.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// ErrBadEventTrace is the sentinel wrapped by every event-trace decode
// failure: truncation, an unknown event kind, or varint overflow —
// tagged with the byte offset of the first inconsistency, and never a
// panic.
var ErrBadEventTrace = errors.New("telemetry: malformed event trace")

// EventKind classifies one coherence event.
type EventKind uint8

// Event kinds. Arg carries the kind-specific detail byte documented on
// each constant.
const (
	// EvFill: a block entered a processor cache; Arg is the resulting
	// cache state (internal/cache.State) — the observable half of every
	// state transition.
	EvFill EventKind = iota + 1
	// EvUpgrade: the cluster acquired system-level write ownership; Arg
	// is 1 for a local-home block, 0 for remote.
	EvUpgrade
	// EvVictimize: a processor-cache victim was accepted by the network
	// cache; Arg bit0 = dirty, bit1 = write-through.
	EvVictimize
	// EvNCEvict: the NC recycled a frame; Arg bit0 = dirty, bit1 =
	// forced L1 invalidation (inclusion).
	EvNCEvict
	// EvInvalidate: a system-level invalidation was applied to the
	// cluster; Arg is 1 if the cluster still held a copy (0 marks a
	// false invalidation, the §3.4 counter-decrement case).
	EvInvalidate
	// EvWriteback: a dirty block crossed the network to its home.
	EvWriteback
	// EvRelocate: a page was relocated into the page cache; Arg is 1
	// when the adaptive policy raised its threshold on this relocation.
	EvRelocate
	// EvPageEvict: a page-cache frame was recycled to make room.
	EvPageEvict
	// EvFlushDirty: a read intervention downgraded the cluster's dirty
	// copy; Arg is 1 if dirty data actually crossed the network.
	EvFlushDirty
	// EvRemoteMiss: a reference left the cluster; Arg bits 0-1 are the
	// stats.MissClass, bit6 = dirty intervention (3-hop), bit7 = write.
	EvRemoteMiss

	numEventKinds
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvFill:
		return "fill"
	case EvUpgrade:
		return "upgrade"
	case EvVictimize:
		return "victimize"
	case EvNCEvict:
		return "nc-evict"
	case EvInvalidate:
		return "invalidate"
	case EvWriteback:
		return "writeback"
	case EvRelocate:
		return "relocate"
	case EvPageEvict:
		return "page-evict"
	case EvFlushDirty:
		return "flush-dirty"
	case EvRemoteMiss:
		return "remote-miss"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind.
func (k EventKind) Valid() bool { return k >= EvFill && k < numEventKinds }

// Event is one decoded coherence event.
type Event struct {
	Kind EventKind
	// Refs is the applied-reference timestamp: how many references the
	// machine had completed when the event occurred.
	Refs int64
	// Cluster is the cluster the event happened in.
	Cluster int
	// Addr is the block number for block-grained events and the page
	// number for EvRelocate/EvPageEvict.
	Addr uint64
	// Arg is the kind-specific detail byte (see the kind constants).
	Arg uint8
}

// Event-trace format constants.
const (
	eventMagic   = "DEVT"
	eventVersion = 1
)

// Tracer records coherence events through a streaming encoder with
// deterministic sampling: with SampleEvery = n, every n-th event (by
// the global event ordinal, starting with the first) is kept, so two
// runs of the same trace keep exactly the same events. It is safe for
// concurrent use; encoding errors are sticky and surfaced by Close.
type Tracer struct {
	refs atomic.Int64 // current applied-reference clock

	mu       sync.Mutex
	w        *bufio.Writer
	every    int64
	seen     int64
	kept     int64
	lastRefs int64 // timestamp of the last written event (delta basis)
	err      error
	buf      [2 + 3*binary.MaxVarintLen64]byte
}

// NewTracer starts an event trace on w with the given sampling stride
// (n ≤ 1 keeps every event). The header is written immediately.
func NewTracer(w io.Writer, sampleEvery int64) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &Tracer{w: bufio.NewWriter(w), every: sampleEvery}
	if _, err := t.w.WriteString(eventMagic); err != nil {
		t.err = err
	}
	if err := t.w.WriteByte(eventVersion); err != nil && t.err == nil {
		t.err = err
	}
	return t
}

// Tick advances the tracer's applied-reference clock; the simulator
// calls it once per reference.
func (t *Tracer) Tick(refs int64) { t.refs.Store(refs) }

// Emit records one event at the current clock, subject to the sampling
// stride.
func (t *Tracer) Emit(kind EventKind, cluster int, addr uint64, arg uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if (t.seen-1)%t.every != 0 {
		return
	}
	if t.err != nil {
		return
	}
	refs := t.refs.Load()
	delta := refs - t.lastRefs
	if delta < 0 {
		delta = 0
		refs = t.lastRefs
	}
	b := t.buf[:0]
	b = append(b, byte(kind))
	b = binary.AppendUvarint(b, uint64(delta))
	b = binary.AppendUvarint(b, uint64(cluster))
	b = binary.AppendUvarint(b, addr)
	b = append(b, arg)
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.lastRefs = refs
	t.kept++
}

// Seen returns how many events were offered to the tracer.
func (t *Tracer) Seen() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// Kept returns how many events passed the sampling stride and were
// encoded.
func (t *Tracer) Kept() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kept
}

// Close flushes the encoder and returns the first error encountered
// while writing the trace.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// EventReader decodes an event trace, mirroring trace.Reader's
// discipline: Next streams events until the input ends or the first
// inconsistency, which Err reports as an offset-tagged
// ErrBadEventTrace.
type EventReader struct {
	r    *bufio.Reader
	off  int64
	refs int64
	err  error
	eof  bool
}

// NewEventReader opens an event trace, consuming and validating the
// header; header problems surface from Err and the first Next.
func NewEventReader(r io.Reader) *EventReader {
	er := &EventReader{r: bufio.NewReader(r)}
	var hdr [len(eventMagic) + 1]byte
	n, err := io.ReadFull(er.r, hdr[:])
	er.off = int64(n)
	if err != nil {
		er.failf("truncated header (%v)", err)
		return er
	}
	if string(hdr[:len(eventMagic)]) != eventMagic {
		er.off = 0
		er.failf("bad magic %q", hdr[:len(eventMagic)])
		return er
	}
	if v := hdr[len(eventMagic)]; v != eventVersion {
		er.failf("unsupported version %d (want %d)", v, eventVersion)
	}
	return er
}

// failf records the first decode failure at the current offset.
func (r *EventReader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d",
			ErrBadEventTrace, fmt.Sprintf(format, args...), r.off)
	}
}

// uvarint reads one varint, tracking the offset and failing on
// truncation or overflow.
func (r *EventReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(countingByteReader{r})
	if err != nil {
		r.failf("%s: %v", what, err)
		return 0
	}
	return v
}

// countingByteReader forwards single-byte reads while tracking the
// stream offset for error messages.
type countingByteReader struct{ r *EventReader }

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.r.ReadByte()
	if err == nil {
		c.r.off++
	}
	return b, err
}

// Next returns the next event. ok=false marks the end of the stream —
// clean EOF or the first malformed byte; check Err to distinguish.
func (r *EventReader) Next() (Event, bool) {
	if r.err != nil || r.eof {
		return Event{}, false
	}
	kindByte, err := r.r.ReadByte()
	if err == io.EOF {
		r.eof = true
		return Event{}, false
	}
	if err != nil {
		r.failf("reading event kind: %v", err)
		return Event{}, false
	}
	r.off++
	kind := EventKind(kindByte)
	if !kind.Valid() {
		r.off--
		r.failf("unknown event kind %d", kindByte)
		return Event{}, false
	}
	delta := r.uvarint("refs delta")
	cluster := r.uvarint("cluster")
	addr := r.uvarint("address")
	if r.err != nil {
		return Event{}, false
	}
	arg, err := r.r.ReadByte()
	if err != nil {
		r.failf("truncated arg byte (%v)", err)
		return Event{}, false
	}
	r.off++
	if delta > uint64(1)<<62 || uint64(r.refs)+delta > uint64(1)<<62 {
		r.failf("refs delta %d overflows the clock", delta)
		return Event{}, false
	}
	if cluster > 1<<20 {
		r.failf("cluster %d out of any plausible range", cluster)
		return Event{}, false
	}
	r.refs += int64(delta)
	return Event{
		Kind:    kind,
		Refs:    r.refs,
		Cluster: int(cluster),
		Addr:    addr,
		Arg:     arg,
	}, true
}

// Err returns the decode error that ended the stream, nil after a clean
// EOF.
func (r *EventReader) Err() error { return r.err }

// Offset returns how many bytes have been consumed.
func (r *EventReader) Offset() int64 { return r.off }
