package telemetry

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// emitAll writes n synthetic events through tr, ticking the clock
// between emissions, and returns what an unsampled reader should see.
func emitAll(tr *Tracer, n int) []Event {
	var want []Event
	refs := int64(0)
	for i := 0; i < n; i++ {
		refs += int64(1 + i%3)
		tr.Tick(refs)
		kind := EventKind(1 + i%int(numEventKinds-1))
		ev := Event{
			Kind:    kind,
			Refs:    refs,
			Cluster: i % 5,
			Addr:    uint64(i * 37),
			Arg:     uint8(i % 4),
		}
		tr.Emit(ev.Kind, ev.Cluster, ev.Addr, ev.Arg)
		want = append(want, ev)
	}
	return want
}

func readAll(t *testing.T, data []byte) []Event {
	t.Helper()
	r := NewEventReader(bytes.NewReader(data))
	var got []Event
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestEventTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 1)
	want := emitAll(tr, 40)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if tr.Seen() != 40 || tr.Kept() != 40 {
		t.Fatalf("seen %d kept %d, want 40/40", tr.Seen(), tr.Kept())
	}
	got := readAll(t, buf.Bytes())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestEventTraceSamplingStride(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 3)
	want := emitAll(tr, 10)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if tr.Kept() != 4 { // ordinals 1, 4, 7, 10
		t.Fatalf("kept %d, want 4", tr.Kept())
	}
	got := readAll(t, buf.Bytes())
	kept := []Event{want[0], want[3], want[6], want[9]}
	if !reflect.DeepEqual(got, kept) {
		t.Fatalf("stride sampling diverges:\ngot  %+v\nwant %+v", got, kept)
	}
}

func TestEventReaderRejectsMalformed(t *testing.T) {
	var valid bytes.Buffer
	tr := NewTracer(&valid, 1)
	emitAll(tr, 3)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	cases := map[string][]byte{
		"empty":          nil,
		"short header":   []byte("DEV"),
		"bad magic":      []byte("XEVT\x01"),
		"bad version":    []byte("DEVT\x07"),
		"unknown kind":   append([]byte("DEVT\x01"), 0xEE, 0, 0, 0, 0),
		"zero kind":      append([]byte("DEVT\x01"), 0, 0, 0, 0, 0),
		"truncated body": valid.Bytes()[:valid.Len()-2],
	}
	for name, data := range cases {
		r := NewEventReader(bytes.NewReader(data))
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if err := r.Err(); !errors.Is(err, ErrBadEventTrace) {
			t.Errorf("%s: err = %v, want ErrBadEventTrace", name, err)
		}
	}
}

func TestEventReaderCleanEOF(t *testing.T) {
	r := NewEventReader(bytes.NewReader([]byte("DEVT\x01")))
	if _, ok := r.Next(); ok {
		t.Fatal("Next returned an event from an empty trace")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean EOF reported error: %v", err)
	}
}

func TestTracerSwallowsWriteErrors(t *testing.T) {
	tr := NewTracer(failingWriter{}, 1)
	tr.Tick(1)
	tr.Emit(EvFill, 0, 0, 0) // must not panic
	if err := tr.Close(); err == nil {
		t.Fatal("Close after write failure returned nil")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// FuzzEventTrace feeds arbitrary bytes to the decoder: it must never
// panic, always terminate, and classify every failure as
// ErrBadEventTrace.
func FuzzEventTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DEVT\x01"))
	f.Add([]byte("DEVT\x02"))
	f.Add([]byte("XXXX\x01"))
	f.Add(append([]byte("DEVT\x01"), 1, 5, 2, 200, 1, 3))
	f.Add(append([]byte("DEVT\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))
	var seed bytes.Buffer
	tr := NewTracer(&seed, 1)
	emitAll(tr, 8)
	if err := tr.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewEventReader(bytes.NewReader(data))
		prevRefs := int64(-1)
		for i := 0; ; i++ {
			ev, ok := r.Next()
			if !ok {
				break
			}
			if !ev.Kind.Valid() {
				t.Fatalf("decoder produced invalid kind %d", ev.Kind)
			}
			if ev.Refs < prevRefs {
				t.Fatalf("clock went backwards: %d after %d", ev.Refs, prevRefs)
			}
			prevRefs = ev.Refs
			if i > len(data) {
				t.Fatalf("decoded more events (%d) than input bytes (%d)", i, len(data))
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, ErrBadEventTrace) {
			t.Fatalf("error not wrapping ErrBadEventTrace: %v", err)
		}
		if r.Offset() > int64(len(data)) {
			t.Fatalf("offset %d past input length %d", r.Offset(), len(data))
		}
	})
}
