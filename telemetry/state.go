package telemetry

// Snapshot codec for the sampler, so a checkpointed cell resumes with
// its time series intact: the retained ring, the sequence and drop
// counters, and the previous-sample basis the next interval derives
// from all round-trip bit-identically through internal/snapshot.
// Wall-clock state (the `now` hook and its last reading) is
// configuration, not series state, and is re-attached by the caller.

import (
	"math"

	"dsmnc/internal/snapshot"
)

const tagSampler = 0x0D

// saveSample writes one sample in fixed field order.
func saveSample(w *snapshot.Writer, s Sample) {
	w.I64(s.Seq)
	w.I64(s.Refs)
	w.I64(s.WallNanos)
	w.U64(math.Float64bits(s.RefsPerSec))
	w.I64(s.Reads)
	w.I64(s.Writes)
	w.I64(s.L1Hits)
	w.I64(s.NCHits)
	w.I64(s.PCHits)
	w.I64(s.RemoteMisses)
	w.I64(s.RemoteCapacity)
	w.I64(s.NCInserts)
	w.I64(s.NCEvictions)
	w.I64(s.Relocations)
	w.I64(s.PageEvictions)
	w.I64(s.WritebacksHome)
	w.I64(s.NCUsed)
	w.I64(s.NCFrames)
	w.I64(s.PCUsed)
	w.I64(s.PCFrames)
	w.U64(math.Float64bits(s.MissPct))
	w.U64(math.Float64bits(s.NCHitPct))
	w.I64(s.IntervalRefs)
	w.U64(math.Float64bits(s.IntervalMissPct))
	w.U64(math.Float64bits(s.IntervalNCHitPct))
	w.U64(math.Float64bits(s.BusUtilPct))
}

// loadSample reads one sample in the saveSample field order.
func loadSample(r *snapshot.Reader) Sample {
	return Sample{
		Seq:              r.I64(),
		Refs:             r.I64(),
		WallNanos:        r.I64(),
		RefsPerSec:       math.Float64frombits(r.U64()),
		Reads:            r.I64(),
		Writes:           r.I64(),
		L1Hits:           r.I64(),
		NCHits:           r.I64(),
		PCHits:           r.I64(),
		RemoteMisses:     r.I64(),
		RemoteCapacity:   r.I64(),
		NCInserts:        r.I64(),
		NCEvictions:      r.I64(),
		Relocations:      r.I64(),
		PageEvictions:    r.I64(),
		WritebacksHome:   r.I64(),
		NCUsed:           r.I64(),
		NCFrames:         r.I64(),
		PCUsed:           r.I64(),
		PCFrames:         r.I64(),
		MissPct:          math.Float64frombits(r.U64()),
		NCHitPct:         math.Float64frombits(r.U64()),
		IntervalRefs:     r.I64(),
		IntervalMissPct:  math.Float64frombits(r.U64()),
		IntervalNCHitPct: math.Float64frombits(r.U64()),
		BusUtilPct:       math.Float64frombits(r.U64()),
	}
}

// SaveState serializes the sampler's series state.
func (s *Sampler) SaveState(w *snapshot.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Section(tagSampler)
	w.I64(s.every)
	w.I64(s.seq)
	w.I64(s.dropped)
	w.Bool(s.hasPrev)
	if s.hasPrev {
		saveSample(w, s.prev)
	}
	w.U64(uint64(s.n))
	for i := 0; i < s.n; i++ {
		saveSample(w, s.ring[(s.start+i)%cap(s.ring)])
	}
}

// maxSnapshotSamples bounds how many samples a snapshot may claim, so a
// corrupt header cannot drive a huge allocation. Generous relative to
// DefaultCapacity; real snapshots are bounded by their ring capacity.
const maxSnapshotSamples = 1 << 20

// LoadState restores the series state saved by SaveState. The sampler
// must be configured with the same interval the snapshot was taken
// under; a mismatch is recorded on r as a decode failure, because a
// resumed series with a different cadence would silently lie. If the
// restoring sampler's capacity is smaller than the snapshot's retained
// count, the oldest samples are dropped (and counted).
func (s *Sampler) LoadState(r *snapshot.Reader) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Section(tagSampler)
	every := r.I64()
	seq := r.I64()
	dropped := r.I64()
	hasPrev := r.Bool()
	var prev Sample
	if hasPrev {
		prev = loadSample(r)
	}
	n := r.Len(maxSnapshotSamples)
	if r.Err() != nil {
		return
	}
	if every != s.every {
		r.Failf("snapshot sampling interval %d, sampler configured with %d", every, s.every)
		return
	}
	if seq < 0 || dropped < 0 || int64(n) > seq {
		r.Failf("inconsistent sampler counts (seq %d, dropped %d, retained %d)", seq, dropped, n)
		return
	}
	s.ring = s.ring[:0]
	s.start, s.n = 0, 0
	s.seq, s.dropped = seq, dropped
	s.prev, s.hasPrev = prev, hasPrev
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		s.append(loadSample(r))
	}
}
