// Package dsmnc reproduces "The Effectiveness of SRAM Network Caches in
// Clustered DSMs" (Moga & Dubois, USC CENG TR 97-11 / HPCA 1998): a
// trace-driven simulation study of remote data caches in clustered
// CC-NUMA machines.
//
// The package is a facade over the internal simulator. It names the
// paper's systems (base, NCS, NCD, nc, vb, vp, ncp, vbp, vpp, vxp),
// runs the paper's eight SPLASH-2-style workloads through them, and
// regenerates every table and figure of the evaluation section; see
// EXPERIMENTS.md for the index.
//
// Quick start:
//
//	res, err := dsmnc.Run(workload.FFT(workload.ScaleSmall), dsmnc.VB(16<<10), dsmnc.DefaultOptions())
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.MissRatios())
package dsmnc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/internal/migration"
	"dsmnc/internal/pagecache"
	"dsmnc/internal/sim"
	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/telemetry"
	"dsmnc/trace"
	"dsmnc/workload"
)

// ErrConfig marks an invalid system or options configuration caught by
// Build/BuildFor before any simulation runs.
var ErrConfig = errors.New("dsmnc: invalid configuration")

// CounterMode selects what drives page relocation; it re-exports the
// cluster package's type so callers outside the module can configure it.
type CounterMode = cluster.CounterMode

// Relocation counter modes.
const (
	// CountersNone disables page relocation.
	CountersNone = cluster.CountersNone
	// CountersDirectory uses R-NUMA's per-(page,cluster) capacity-miss
	// counters at the directory (ncp/vbp/vpp).
	CountersDirectory = cluster.CountersDirectory
	// CountersNCSet uses the per-set victimization counters integrated
	// into the network victim cache (vxp).
	CountersNCSet = cluster.CountersNCSet
)

// NCKind selects the network-cache organization (paper §3, §5.1).
type NCKind int

// Network cache organizations.
const (
	NCNone          NCKind = iota // no network cache
	NCRelaxed                     // nc: allocate on miss, inclusion for dirty blocks only
	NCVictimBlock                 // vb: victim cache, block-address indexed
	NCVictimPage                  // vp: victim cache, page-address indexed
	NCInclusiveDRAM               // NCD: large DRAM NC with full inclusion
	NCInfiniteSRAM                // NCS: infinite fast NC
	NCInfiniteDRAM                // normalization baseline of Figures 9-11
)

// System is one system configuration of the design space.
type System struct {
	Name string

	NC      NCKind
	NCBytes int
	NCWays  int

	// PCBytes sizes the page cache in bytes; PCFraction sizes it as
	// 1/PCFraction of the workload's data set (the paper's ncp5 etc.).
	// Both zero means no page cache.
	PCBytes    int64
	PCFraction int

	// Counters selects the relocation trigger; Threshold and Adaptive
	// configure the relocation-threshold policy.
	Counters  cluster.CounterMode
	Threshold uint32
	Adaptive  bool

	// MOESI enables the dirty-shared O state, the protocol option the
	// paper evaluated and rejected in §3.2 (kept for ablation).
	MOESI bool
	// DecrementCounters enables the §3.4 refinement: false
	// invalidations decrement the relocation counters.
	DecrementCounters bool
	// DirPointers, when positive, replaces the full-map directory with
	// a Dir_iB limited-pointer directory of that many pointers — the
	// organization under which the paper argues only vxp's counters
	// stay usable (§3.4).
	DirPointers int
	// Migration enables SGI-Origin-style OS page migration and
	// replication (the alternative the paper contrasts in §1/§7).
	Migration bool
}

// Tech returns the latency class of the system's NC.
func (s System) Tech() stats.NCTech {
	switch s.NC {
	case NCNone:
		return stats.NCTechNone
	case NCInclusiveDRAM, NCInfiniteDRAM:
		return stats.NCTechDRAM
	default:
		return stats.NCTechSRAM
	}
}

// The paper's fixed NC geometry: four-way set-associative (§5.1).
const ncWays = 4

// Base is the system with no NC and no page cache.
func Base() System { return System{Name: "base", NC: NCNone} }

// NCS is the infinite, fast SRAM NC reference system.
func NCS() System { return System{Name: "NCS", NC: NCInfiniteSRAM} }

// InfiniteDRAM is the infinite, slow NC that Figures 9-11 normalize
// against.
func InfiniteDRAM() System { return System{Name: "infDRAM", NC: NCInfiniteDRAM} }

// NCD is the 512 KB DRAM NC with full inclusion (NUMA-Q style).
func NCD() System {
	return System{Name: "NCD", NC: NCInclusiveDRAM, NCBytes: 512 << 10, NCWays: ncWays}
}

// Origin is the SGI-Origin philosophy (paper §1/§7): no remote data
// cache at all, relying on OS page migration and replication.
func Origin() System {
	s := Base()
	s.Name = "origin"
	s.Migration = true
	return s
}

// NC is the nc organization: an SRAM NC of the given size that allocates
// on misses, with inclusion relaxed for clean blocks.
func NC(bytes int) System {
	return System{Name: "nc", NC: NCRelaxed, NCBytes: bytes, NCWays: ncWays}
}

// VB is the block-address-indexed network victim cache.
func VB(bytes int) System {
	return System{Name: "vb", NC: NCVictimBlock, NCBytes: bytes, NCWays: ncWays}
}

// VP is the page-address-indexed network victim cache.
func VP(bytes int) System {
	return System{Name: "vp", NC: NCVictimPage, NCBytes: bytes, NCWays: ncWays}
}

// withPC attaches a page cache driven by directory (R-NUMA) relocation
// counters with the paper's adaptive threshold policy.
func withPC(s System, name string, pcBytes int64, pcFraction int) System {
	s.Name = name
	s.PCBytes = pcBytes
	s.PCFraction = pcFraction
	s.Counters = cluster.CountersDirectory
	s.Threshold = pagecache.DefaultThreshold
	s.Adaptive = true
	return s
}

// NCP is nc plus a page cache of pcBytes (R-NUMA).
func NCP(bytes int, pcBytes int64) System { return withPC(NC(bytes), "ncp", pcBytes, 0) }

// VBP is vb plus a page cache of pcBytes.
func VBP(bytes int, pcBytes int64) System { return withPC(VB(bytes), "vbp", pcBytes, 0) }

// VPP is vp plus a page cache of pcBytes.
func VPP(bytes int, pcBytes int64) System { return withPC(VP(bytes), "vpp", pcBytes, 0) }

// NCPFrac is ncp with a page cache sized 1/frac of the data set (ncp5...).
func NCPFrac(bytes, frac int) System {
	return withPC(NC(bytes), fmt.Sprintf("ncp%d", frac), 0, frac)
}

// VBPFrac is vbp with a proportional page cache.
func VBPFrac(bytes, frac int) System {
	return withPC(VB(bytes), fmt.Sprintf("vbp%d", frac), 0, frac)
}

// VPPFrac is vpp with a proportional page cache.
func VPPFrac(bytes, frac int) System {
	return withPC(VP(bytes), fmt.Sprintf("vpp%d", frac), 0, frac)
}

// PCOnly is a page cache with no NC (the left bars of Figure 7).
func PCOnly(frac int) System {
	return withPC(Base(), fmt.Sprintf("pc%d", frac), 0, frac)
}

// VXPFrac is the paper's vxp: a page-address-indexed victim cache whose
// per-set victimization counters drive relocation, with a proportional
// page cache and an adaptive threshold starting at threshold.
func VXPFrac(bytes, frac int, threshold uint32) System {
	s := VP(bytes)
	s.Name = fmt.Sprintf("vxp%d(t%d)", frac, threshold)
	s.PCFraction = frac
	s.Counters = cluster.CountersNCSet
	s.Threshold = threshold
	s.Adaptive = true
	return s
}

// Options are the machine and run parameters shared by all systems.
type Options struct {
	Geometry  memsys.Geometry
	L1Bytes   int
	L1Ways    int
	Scale     workload.Scale
	Quantum   int // trace interleaving grain
	Latencies stats.Latencies

	// Check attaches the coherence invariant checker to every built
	// machine: runs validate protocol invariants after each reference
	// and fail with sim.ErrProtocol on the first violation.
	Check bool
	// Shards enables the deterministic parallel engine: the machine's
	// clusters split into that many contiguous shards that execute
	// windowed reference batches concurrently, bit-identical to the
	// sequential engine at every shard count (see
	// docs/performance.md). 0 (the default) keeps the sequential
	// engine; a negative value picks GOMAXPROCS, capped by the
	// cluster count. Order-serial configurations — Check, EventTrace,
	// migration, limited directories — ignore the setting and run
	// sequentially.
	Shards int
	// KeepGoing makes sweeps record per-cell failures in
	// Experiment.Failed and carry on, instead of failing the whole
	// experiment on the first bad cell.
	KeepGoing bool
	// CellTimeout bounds each (workload, system) cell of a sweep; zero
	// means no bound. Timed-out cells fail with context.DeadlineExceeded.
	CellTimeout time.Duration

	// Journal, when set, makes sweeps durable: every finished cell is
	// appended to the journal (one fsync'd JSON line), and cells the
	// journal already holds — from an earlier run that crashed or was
	// killed — are restored instead of re-run. See OpenJournal.
	Journal *Journal
	// Retries re-runs transiently-failed cells (timeouts, recovered
	// panics) up to this many extra attempts; permanent failures —
	// ErrConfig, protocol violations, bad references or traces,
	// deliberate cancellation — never retry.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on
	// each subsequent one (bounded); zero means a 250ms default.
	RetryBackoff time.Duration
	// CheckpointEvery, when positive, snapshots each in-flight cell
	// every N applied references so a killed run resumes mid-cell from
	// its last checkpoint instead of from reference zero.
	CheckpointEvery int64
	// CheckpointDir is where mid-cell checkpoints live; empty means
	// next to the journal, or the system temp directory.
	CheckpointDir string
	// Progress, when set, receives live counters (references applied,
	// cells done, journal writes) that Progress.Heartbeat can report.
	Progress *Progress

	// Sampler, when set, records the run's time series: one sample
	// every Sampler.Every() applied references (see telemetry.Sampler).
	// Single runs only — sweeps reject it with ErrConfig, because the
	// cells of a matrix would interleave their series.
	Sampler *telemetry.Sampler
	// EventTrace, when set, receives a structured coherence event
	// stream (fills, victimizations, invalidations, relocations,
	// write-backs) renderable by cmd/dsmtrace. Single runs only, like
	// Sampler.
	EventTrace *telemetry.Tracer

	// cellGate, when set, is consulted at the start of every cell
	// attempt; a non-nil return fails the cell with that error. Test
	// hook for killing and fault-injecting sweeps deterministically.
	cellGate func(exp, bench, system string) error
}

// DefaultOptions is the paper's base configuration: 8 clusters x 4
// processors, 16 KB two-way processor caches, Table 2 latencies.
func DefaultOptions() Options {
	return Options{
		Geometry:  memsys.DefaultGeometry(),
		L1Bytes:   16 << 10,
		L1Ways:    2,
		Scale:     workload.ScaleMedium,
		Quantum:   4,
		Latencies: stats.DefaultLatencies(),
	}
}

// Result is the outcome of one (workload, system) simulation.
type Result struct {
	System   string
	Bench    string
	Refs     int64
	Counters stats.Counters
	Model    stats.Model
	// PerCluster holds each node's own event account (the aggregate is
	// Counters); useful for load-balance and home-placement analysis.
	PerCluster []stats.Counters
}

// MissRatios returns the cluster miss ratios (Figures 3-8).
func (r Result) MissRatios() stats.Ratios { return r.Model.MissRatios(&r.Counters) }

// Stall returns the remote read stall (Figures 9, 11).
func (r Result) Stall() stats.Stall { return r.Model.RemoteReadStall(&r.Counters) }

// Traffic returns the remote data traffic (Figure 10).
func (r Result) Traffic() stats.Traffic { return r.Model.RemoteTraffic(&r.Counters) }

// Build constructs the simulator for one (bench, system) pair. Most
// callers want Run; Build is exposed for custom drivers.
func Build(b *workload.Bench, s System, opt Options) (*sim.System, error) {
	return BuildFor(b.SharedBytes, s, opt)
}

// BuildFor constructs the simulator for a system and a workload of the
// given shared-data size (used to size fractional page caches). Use it
// when driving the machine from a trace file rather than a generator.
// Invalid configurations — unknown NC kinds, a fractional page cache
// with no data-set size to take the fraction of — fail with an
// ErrConfig-wrapped error.
func BuildFor(sharedBytes int64, s System, opt Options) (*sim.System, error) {
	cfg, err := configFor(sharedBytes, s, opt)
	if err != nil {
		return nil, err
	}
	machine, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrConfig, err)
	}
	return machine, nil
}

// configFor translates a system description into the simulator
// configuration; BuildFor and RestoreFor share it so a restored machine
// is constructed exactly like a fresh one.
func configFor(sharedBytes int64, s System, opt Options) (sim.Config, error) {
	cfg := sim.Config{
		Geometry:          opt.Geometry,
		L1:                cache.Config{Bytes: opt.L1Bytes, Ways: opt.L1Ways},
		Counters:          s.Counters,
		MOESI:             s.MOESI,
		DecrementCounters: s.DecrementCounters,
		Check:             opt.Check,
		Shards:            opt.Shards,
		Sampler:           opt.Sampler,
		Tracer:            opt.EventTrace,
	}
	if cfg.Shards < 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if s.DirPointers > 0 {
		ptrs := s.DirPointers
		cfg.NewDirectory = func(clusters int) (directory.Protocol, error) {
			return directory.NewLimited(clusters, ptrs)
		}
	}
	if s.Migration {
		mc := migration.DefaultConfig()
		cfg.Migration = &mc
	}
	switch s.NC {
	case NCNone:
	case NCRelaxed:
		cfg.NewNC = func() (core.NC, error) { return core.NewRelaxed(s.NCBytes, s.NCWays) }
	case NCVictimBlock:
		cfg.NewNC = func() (core.NC, error) {
			return core.NewVictim(core.VictimConfig{Bytes: s.NCBytes, Ways: s.NCWays})
		}
	case NCVictimPage:
		cfg.NewNC = func() (core.NC, error) {
			return core.NewVictim(core.VictimConfig{
				Bytes: s.NCBytes, Ways: s.NCWays,
				Indexing:    cache.ByPage,
				SetCounters: s.Counters == cluster.CountersNCSet,
			})
		}
	case NCInclusiveDRAM:
		cfg.NewNC = func() (core.NC, error) { return core.NewInclusive(s.NCBytes, s.NCWays) }
	case NCInfiniteSRAM:
		cfg.NewNC = func() (core.NC, error) { return core.NewInfinite(stats.NCTechSRAM), nil }
	case NCInfiniteDRAM:
		cfg.NewNC = func() (core.NC, error) { return core.NewInfinite(stats.NCTechDRAM), nil }
	default:
		return sim.Config{}, fmt.Errorf("%w: unknown NC kind %d in system %q", ErrConfig, s.NC, s.Name)
	}

	pcBytes := s.PCBytes
	if s.PCFraction < 0 {
		return sim.Config{}, fmt.Errorf("%w: system %q has negative page-cache fraction %d",
			ErrConfig, s.Name, s.PCFraction)
	}
	if s.PCFraction > 0 {
		if sharedBytes <= 0 {
			// Without a data-set size, a fractional page cache would
			// silently degenerate to a single frame and thrash.
			return sim.Config{}, fmt.Errorf("%w: system %q sizes its page cache as 1/%d of the data set, but the shared-data size is %d",
				ErrConfig, s.Name, s.PCFraction, sharedBytes)
		}
		pcBytes = sharedBytes / int64(s.PCFraction)
	}
	if pcBytes > 0 {
		frames := int(pcBytes / memsys.PageBytes)
		if frames < 1 {
			frames = 1
		}
		threshold := s.Threshold
		adaptive := s.Adaptive
		cfg.NewPC = func() (*pagecache.PageCache, error) {
			var pol *pagecache.Policy
			if adaptive {
				pol = pagecache.NewAdaptivePolicy(threshold)
			} else {
				pol = pagecache.NewFixedPolicy(threshold)
			}
			return pagecache.New(frames, pol)
		}
	}
	return cfg, nil
}

// Run simulates workload b on system s and returns the event account.
func Run(b *workload.Bench, s System, opt Options) (Result, error) {
	return RunContext(context.Background(), b, s, opt)
}

// RunContext is Run with cancellation: the simulation stops with ctx's
// error shortly after the context ends (cancellation is polled off the
// hot loop). Sweeps use it to bound runaway cells. It honors the
// checkpoint/resume and progress options the same way sweep cells do.
func RunContext(ctx context.Context, b *workload.Bench, s System, opt Options) (Result, error) {
	return runCell(ctx, "", runJob{bench: b, sys: s, opt: opt})
}

func finish(machine *sim.System, s System, bench string, refs int64, opt Options) Result {
	// The series always ends on the exact end-of-run counters, even when
	// the run length is not a multiple of the sampling interval.
	machine.FlushSample()
	res := Result{
		System:   s.Name,
		Bench:    bench,
		Refs:     refs,
		Counters: machine.Totals(),
		Model:    stats.Model{Lat: opt.Latencies, Tech: s.Tech()},
	}
	res.PerCluster = make([]stats.Counters, opt.Geometry.Clusters)
	for i := range res.PerCluster {
		res.PerCluster[i] = machine.Cluster(i).C
	}
	return res
}

// RunTrace simulates an arbitrary trace source on system s. sharedBytes
// sizes fractional page caches (pass the trace's data-set footprint, or
// 0 if the system uses an absolute PCBytes). Decode errors from sources
// exposing Err() — like trace.Reader or the fault injector — surface
// once the stream ends.
func RunTrace(src trace.Source, name string, sharedBytes int64, s System, opt Options) (Result, error) {
	machine, err := BuildFor(sharedBytes, s, opt)
	if err != nil {
		return Result{}, err
	}
	if opt.Progress != nil {
		src = progressSource{src: src, p: opt.Progress}
	}
	n, err := machine.Run(src)
	if err != nil {
		return Result{}, err
	}
	return finish(machine, s, name, n, opt), nil
}
