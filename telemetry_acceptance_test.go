package dsmnc

// The ISSUE 3 acceptance run, as a test: a checked simulation with a
// sampler, an event tracer, and a live metrics endpoint attached must
// (a) produce a JSONL series whose final cumulative counters equal the
// run's stats.Counters exactly, (b) serve valid Prometheus text
// exposition while the simulation is still running, and (c) write an
// event trace that decodes cleanly back to exactly the kept events.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dsmnc/telemetry"
	"dsmnc/workload"
)

func TestTelemetryEndToEnd(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleTest
	opt.Check = true

	sampler := telemetry.NewSampler(2000, telemetry.DefaultCapacity)
	opt.Sampler = sampler
	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf, 2)
	opt.EventTrace = tracer

	reg := telemetry.NewRegistry()
	if err := telemetry.RegisterRuntimeMetrics(reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.RegisterSamplerMetrics(reg, sampler); err != nil {
		t.Fatal(err)
	}
	prog := &Progress{}
	opt.Progress = prog
	if err := prog.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrape the endpoint continuously while the simulation runs, so at
	// least one exposition is captured genuinely mid-run.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var scrapeMu sync.Mutex
	var scrapes int
	var lastBody string
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			resp, err := http.Get(srv.URL())
			if err == nil {
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK {
					scrapeMu.Lock()
					scrapes++
					lastBody = string(body)
					scrapeMu.Unlock()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	res, err := Run(workload.ByName("FFT", opt.Scale), VB(16<<10), opt)
	close(stopScrape)
	scrapeWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	// (a) JSONL series: parseable, final sample == stats exactly.
	var jsonl bytes.Buffer
	if err := sampler.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("only %d JSONL samples; want a series", len(lines))
	}
	var final map[string]float64
	for _, line := range lines {
		final = nil
		if err := json.Unmarshal([]byte(line), &final); err != nil {
			t.Fatalf("unparseable sample line %q: %v", line, err)
		}
	}
	c := &res.Counters
	for name, want := range map[string]int64{
		"refs":            res.Refs,
		"reads":           c.Refs.Read,
		"writes":          c.Refs.Write,
		"l1_hits":         c.L1Hits.Total(),
		"nc_hits":         c.NCHits.Total(),
		"pc_hits":         c.PCHits.Total(),
		"remote_misses":   c.Remote().Total(),
		"nc_inserts":      c.NCInserts,
		"nc_evictions":    c.NCEvictions,
		"relocations":     c.Relocations,
		"page_evictions":  c.PageEvictions,
		"writebacks_home": c.WritebacksHome,
	} {
		if got := int64(final[name]); got != want {
			t.Errorf("final sample %s = %d, want %d (stats)", name, got, want)
		}
	}

	// (b) The endpoint answered mid-run with well-formed exposition.
	scrapeMu.Lock()
	gotScrapes, body := scrapes, lastBody
	scrapeMu.Unlock()
	if gotScrapes == 0 {
		t.Fatal("metrics endpoint never answered during the run")
	}
	for _, want := range []string{
		"# TYPE dsmnc_sample_refs counter",
		"dsmnc_samples_recorded_total",
		"dsmnc_refs_applied_total",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// (c) The event trace decodes back to exactly the kept events.
	er := telemetry.NewEventReader(&traceBuf)
	var decoded int64
	for {
		ev, ok := er.Next()
		if !ok {
			break
		}
		if !ev.Kind.Valid() {
			t.Fatalf("decoded invalid kind %d", ev.Kind)
		}
		decoded++
	}
	if err := er.Err(); err != nil {
		t.Fatalf("event trace decode: %v", err)
	}
	if decoded != tracer.Kept() {
		t.Fatalf("decoded %d events, tracer kept %d", decoded, tracer.Kept())
	}
	if tracer.Seen() <= tracer.Kept() {
		t.Fatalf("sampling kept everything (seen %d, kept %d); stride not applied",
			tracer.Seen(), tracer.Kept())
	}
}
