package dsmnc

// The robustness acceptance suite (docs/robustness.md): the invariant
// checker is green across the paper's system organizations on every
// workload, every fault-injection class is rejected with a typed error
// (never a panic), and a poisoned sweep cell is contained by the
// keep-going harness instead of sinking the experiment.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"dsmnc/internal/fault"
	"dsmnc/internal/sim"
	"dsmnc/trace"
	"dsmnc/workload"
)

// TestCheckedMatrixHasNoViolations runs every workload under the checked
// simulator for each of the paper's principal organizations: one
// invariant violation anywhere fails with the full protocol state dump.
func TestCheckedMatrixHasNoViolations(t *testing.T) {
	opt := testOptions()
	opt.Check = true
	systems := []System{
		Base(), NC(16 << 10), VB(16 << 10), VP(16 << 10), VXPFrac(16<<10, 5, 32),
	}
	for _, b := range workload.All(opt.Scale) {
		for _, sys := range systems {
			res, err := Run(b, sys, opt)
			if err != nil {
				t.Errorf("%s/%s: %v", b.Name, sys.Name, err)
				continue
			}
			if res.Refs == 0 {
				t.Errorf("%s/%s: checked run produced no refs", b.Name, sys.Name)
			}
		}
	}
}

// inject wraps bench's reference stream with a fault injector and runs
// the checked simulator over it.
func inject(t *testing.T, cfg fault.Config, sys System) error {
	t.Helper()
	opt := testOptions()
	opt.Check = true
	if cfg.MaxPIDs == 0 {
		cfg.MaxPIDs = opt.Geometry.Procs()
	}
	b := workload.FFT(opt.Scale)
	src := fault.Wrap(b.Source(opt.Geometry, opt.Quantum), cfg)
	_, err := RunTrace(src, "fault:"+cfg.Kind.String(), b.SharedBytes, sys, opt)
	return err
}

func TestFaultBitFlipAddrRejected(t *testing.T) {
	err := inject(t, fault.Config{Kind: fault.BitFlipAddr, Seed: 11, EveryN: 500}, VB(16<<10))
	if !errors.Is(err, sim.ErrBadRef) {
		t.Fatalf("flipped address error = %v, want sim.ErrBadRef", err)
	}
}

func TestFaultBadPIDRejected(t *testing.T) {
	err := inject(t, fault.Config{Kind: fault.BadPID, Seed: 12, EveryN: 500}, VB(16<<10))
	if !errors.Is(err, sim.ErrBadRef) {
		t.Fatalf("bad-pid error = %v, want sim.ErrBadRef", err)
	}
}

func TestFaultTruncateRejected(t *testing.T) {
	err := inject(t, fault.Config{Kind: fault.Truncate, Seed: 13, EveryN: 2000}, VB(16<<10))
	if !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("truncation error = %v, want trace.ErrBadTrace", err)
	}
}

// TestFaultLegalPerturbationsAbsorbed: duplicated and reordered quanta
// are ugly but legal streams; the checked machine must absorb them with
// no invariant violations and no error.
func TestFaultLegalPerturbationsAbsorbed(t *testing.T) {
	for _, kind := range []fault.Kind{fault.DuplicateQuantum, fault.ReorderQuantum} {
		for _, sys := range []System{Base(), VB(16 << 10), VXPFrac(16<<10, 5, 32)} {
			cfg := fault.Config{Kind: kind, Seed: 14, EveryN: 50, Quantum: 64}
			if err := inject(t, cfg, sys); err != nil {
				t.Errorf("%v/%s: %v", kind, sys.Name, err)
			}
		}
	}
}

// TestTruncatedBinaryTraceRejected drives the real decoder end to end:
// a trace cut mid-record must surface ErrBadTrace from dsmnc.RunTrace.
func TestTruncatedBinaryTraceRejected(t *testing.T) {
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	var rec recorder
	b.Emit(opt.Geometry, opt.Quantum, rec.add)
	raw := rec.encode(t)
	cut := raw[:len(raw)*2/3]
	r := trace.NewReader(bytes.NewReader(cut))
	r.SetLimits(opt.Geometry.Procs(), 0)
	_, err := RunTrace(r, "fft-cut", b.SharedBytes, Base(), opt)
	if !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("cut trace error = %v, want trace.ErrBadTrace", err)
	}
}

// TestPoisonedSweepKeepGoing poisons exactly one cell of a small sweep
// with an unconstructible system: under KeepGoing the sweep completes,
// the other cells carry results, and exactly the poisoned cell is
// recorded as failed with ErrConfig.
func TestPoisonedSweepKeepGoing(t *testing.T) {
	opt := testOptions()
	opt.KeepGoing = true
	poisoned := System{Name: "poisoned", NC: NCKind(99)}
	benches := []*workload.Bench{workload.FFT(opt.Scale)}
	systems := []System{Base(), poisoned, VB(16 << 10)}
	exp, err := Sweep("poison-test", "poisoned sweep", benches, systems, opt)
	if err != nil {
		t.Fatalf("keep-going sweep failed outright: %v", err)
	}
	if len(exp.Failed) != 1 {
		t.Fatalf("failed cells = %v, want exactly the poisoned one", exp.Failed)
	}
	f, ok := exp.FailedCell(0, 1)
	if !ok || f.System != "poisoned" || f.Bench != "FFT" {
		t.Fatalf("failed cell = %+v", exp.Failed[0])
	}
	if !errors.Is(f.Err, ErrConfig) {
		t.Fatalf("poisoned cell error = %v, want ErrConfig", f.Err)
	}
	// The healthy columns still produced results.
	for _, col := range []int{0, 2} {
		if exp.Rows[0].Values[col].Total() <= 0 {
			t.Errorf("healthy column %d is empty: %+v", col, exp.Rows[0].Values[col])
		}
	}
}

// TestPoisonedSweepFailsFastWithoutKeepGoing: the same sweep without
// KeepGoing must return the poisoned cell's error.
func TestPoisonedSweepFailsFastWithoutKeepGoing(t *testing.T) {
	opt := testOptions()
	poisoned := System{Name: "poisoned", NC: NCKind(99)}
	benches := []*workload.Bench{workload.FFT(opt.Scale)}
	_, err := Sweep("poison-test", "poisoned sweep", benches,
		[]System{Base(), poisoned}, opt)
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("sweep error = %v, want ErrConfig", err)
	}
}

// TestCellTimeoutCancelsRun: an already-expired per-cell budget stops the
// simulation through context cancellation instead of hanging or
// panicking.
func TestCellTimeoutCancelsRun(t *testing.T) {
	opt := testOptions()
	opt.KeepGoing = true
	opt.CellTimeout = time.Nanosecond
	benches := []*workload.Bench{workload.FFT(opt.Scale)}
	exp, err := Sweep("timeout-test", "timeout sweep", benches, []System{Base()}, opt)
	if err != nil {
		t.Fatalf("keep-going sweep failed outright: %v", err)
	}
	f, ok := exp.FailedCell(0, 0)
	if !ok {
		t.Fatal("expired cell not recorded as failed")
	}
	if !errors.Is(f.Err, context.DeadlineExceeded) {
		t.Fatalf("timeout error = %v, want context.DeadlineExceeded", f.Err)
	}
}

// TestRunContextCancellation: cancelling mid-run returns the context
// error from the public entry point.
func TestRunContextCancellation(t *testing.T) {
	opt := testOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, workload.FFT(opt.Scale), Base(), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
}

// recorder captures an emitted stream and re-encodes it in the binary
// trace format.
type recorder struct{ refs []trace.Ref }

func (r *recorder) add(ref trace.Ref) { r.refs = append(r.refs, ref) }

func (r *recorder) encode(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, ref := range r.refs {
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
