package dsmnc

import (
	"fmt"

	"dsmnc/stats"
	"dsmnc/workload"
)

// Ablation experiments for the design choices the paper discusses but
// does not plot: the O (dirty-shared) protocol state of §3.2, the
// counter-decrement refinement of §3.4, the NC size axis of Figure 2's
// qualitative design space, and the adaptive-policy parameters of §6.2.

// AblationOState compares the base victim-cache system under MESIR
// against MOESIR (with the O state): the paper reports "very little
// benefit" for the added protocol complexity.
func AblationOState(opt Options) (Experiment, error) {
	mesir := VB(16 << 10)
	mesir.Name = "vb-MESIR"
	moesir := VB(16 << 10)
	moesir.Name = "vb-MOESIR"
	moesir.MOESI = true
	return ratioExperiment("ablate-ostate",
		"MESIR vs MOESIR (dirty-shared O state, paper §3.2)",
		[]System{mesir, moesir}, opt)
}

// AblationDecrement compares vxp with and without decrementing the
// victimization counters on false invalidations (paper §3.4: "we have
// not observed that it is significant").
func AblationDecrement(opt Options) (Experiment, error) {
	plain := VXPFrac(16<<10, 5, 32)
	plain.Name = "vxp5"
	decr := VXPFrac(16<<10, 5, 32)
	decr.Name = "vxp5-decr"
	decr.DecrementCounters = true
	ncp := NCPFrac(16<<10, 5)
	ncpDecr := NCPFrac(16<<10, 5)
	ncpDecr.Name = "ncp5-decr"
	ncpDecr.DecrementCounters = true
	return ratioExperiment("ablate-decr",
		"Relocation-counter decrement on false invalidations (paper §3.4)",
		[]System{ncp, ncpDecr, plain, decr}, opt)
}

// AblationNCSize sweeps the victim NC size: the RDC design-space axis of
// the paper's Figure 2.
func AblationNCSize(opt Options) (Experiment, error) {
	var systems []System
	for _, kb := range []int{1, 4, 16, 64, 256} {
		s := VB(kb << 10)
		s.Name = fmt.Sprintf("vb%dK", kb)
		systems = append(systems, s)
	}
	return ratioExperiment("ablate-ncsize",
		"Victim NC size sweep (design space of Figure 2)",
		systems, opt)
}

// AblationIndexWays sweeps NC associativity for the victim cache (the
// paper fixes it at 4-way; this quantifies that choice).
func AblationIndexWays(opt Options) (Experiment, error) {
	var systems []System
	for _, ways := range []int{1, 2, 4, 8} {
		s := VB(16 << 10)
		s.NCWays = ways
		s.Name = fmt.Sprintf("vb-%dway", ways)
		systems = append(systems, s)
	}
	return ratioExperiment("ablate-ncways",
		"Victim NC associativity sweep",
		systems, opt)
}

// AblationThreshold sweeps fixed relocation thresholds around the
// paper's 32 (and 64 from Figure 11) for the ncp system.
func AblationThreshold(opt Options) (Experiment, error) {
	var systems []System
	for _, thr := range []uint32{8, 16, 32, 64, 128} {
		s := NCPFrac(16<<10, 5)
		s.Adaptive = false
		s.Threshold = thr
		s.Name = fmt.Sprintf("ncp5-t%d", thr)
		systems = append(systems, s)
	}
	return ratioExperiment("ablate-threshold",
		"Fixed relocation-threshold sweep for ncp5",
		systems, opt)
}

// Ablations maps ablation ids to their drivers; cmd/dsmfig exposes them
// alongside the paper's figures.
func Ablations() map[string]func(Options) (Experiment, error) {
	return map[string]func(Options) (Experiment, error){
		"ablate-ostate":     AblationOState,
		"ablate-decr":       AblationDecrement,
		"ablate-ncsize":     AblationNCSize,
		"ablate-ncways":     AblationIndexWays,
		"ablate-threshold":  AblationThreshold,
		"ablate-hops":       AblationHops,
		"ablate-dir":        AblationDirectory,
		"ablate-migration":  AblationMigration,
		"ablate-contention": AblationContention,
	}
}

// AblationHops quantifies the paper's constant-latency simplification
// (§4: "two- and three-hop transactions have different latencies"): the
// remote read stall of the base and vb systems under the constant
// 30-cycle model versus the hop-aware 30/45 model, normalized to the
// constant-model base system.
func AblationHops(opt Options) (Experiment, error) {
	benches := workload.All(opt.Scale)
	systems := []System{Base(), VB(16 << 10)}
	results, failed, err := matrix("ablate-hops", benches, systems, opt)
	if err != nil {
		return Experiment{}, err
	}
	hop := stats.HopModel{Lat: stats.DefaultHopLatencies()}
	exp := Experiment{
		ID:      "ablate-hops",
		Title:   "Constant vs hop-aware remote latency (paper §4)",
		Metric:  "normalized stall",
		Systems: []string{"base-const", "base-hops", "vb-const", "vb-hops"},
		Failed:  failed,
	}
	for r, b := range benches {
		row := Row{Bench: b.Name}
		denom := float64(results[r][0].Stall().Total())
		for c := range systems {
			res := results[r][c]
			hop.Tech = res.Model.Tech
			constV := ratioValue(res)
			hopV := constV
			hopV.Stall = hop.RemoteReadStall(&res.Counters)
			if denom > 0 {
				constV.Norm = float64(res.Stall().Total()) / denom
				hopV.Norm = float64(hopV.Stall.Total()) / denom
			}
			row.Values = append(row.Values, constV, hopV)
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// AblationDirectory tests the paper's §3.4 scalability claim: under a
// Dir_4B limited-pointer directory, broadcast-mode entries lose
// per-cluster presence, so R-NUMA's directory counters (ncp) count every
// miss as capacity — noisy relocation evidence — while vxp's
// victim-cache counters are untouched.
func AblationDirectory(opt Options) (Experiment, error) {
	limited := func(s System, name string) System {
		s.Name = name
		s.DirPointers = 4
		return s
	}
	ncp := NCPFrac(16<<10, 5)
	vxp := VXPFrac(16<<10, 5, 32)
	vxp.Name = "vxp5"
	return ratioExperiment("ablate-dir",
		"Full-map vs Dir_4B limited-pointer directory (paper §3.4)",
		[]System{
			ncp, limited(NCPFrac(16<<10, 5), "ncp5-dir4B"),
			vxp, limited(VXPFrac(16<<10, 5, 32), "vxp5-dir4B"),
		}, opt)
}

// AblationMigration tests the paper's closing conjecture (§7): OS page
// migration/replication alone (the SGI-Origin approach), versus the
// paper's 16 KB victim NC, versus their combination — "a small, very
// fast NC could shield the page migration and replication policies from
// the noise of conflict misses".
func AblationMigration(opt Options) (Experiment, error) {
	origin := Origin()
	vb := VB(16 << 10)
	both := VB(16 << 10)
	both.Name = "vb+origin"
	both.Migration = true
	return ratioExperiment("ablate-migration",
		"Page migration/replication vs victim NC (paper §7 conjecture)",
		[]System{Base(), origin, vb, both}, opt)
}

// AblationContention answers the question the paper's §4 model leaves
// open: does contention change the system ranking? An analytic M/M/1
// correction (stats.ContentionModel) inflates bus and network latencies
// by their converged utilizations; Norm is the contention-inflated stall
// normalized to the contention-free infinite-DRAM baseline.
func AblationContention(opt Options) (Experiment, error) {
	benches := workload.All(opt.Scale)
	systems := []System{Base(), NCD(), VB(16 << 10), VBPFrac(16<<10, 5)}
	all := append([]System{InfiniteDRAM()}, systems...)
	results, failed, err := matrix("ablate-contention", benches, all, opt)
	if err != nil {
		return Experiment{}, err
	}
	for i := range failed {
		failed[i].Col-- // baseline column is not part of the experiment
	}
	exp := Experiment{
		ID:     "ablate-contention",
		Title:  "Contention-corrected remote read stalls (paper §4 simplification)",
		Metric: "normalized stall",
		Failed: failed,
	}
	for _, s := range systems {
		exp.Systems = append(exp.Systems, s.Name+"-q")
	}
	for r, b := range benches {
		row := Row{Bench: b.Name}
		base := float64(results[r][0].Stall().Total())
		for c := 1; c < len(all); c++ {
			res := results[r][c]
			cm := stats.ContentionModel{
				Lat: opt.Latencies, Tech: res.Model.Tech,
				Clusters:        opt.Geometry.Clusters,
				ProcsPerCluster: opt.Geometry.ProcsPerCluster,
			}
			q := cm.Evaluate(&res.Counters)
			v := ratioValue(res)
			v.Stall = q.Stall
			if base > 0 {
				v.Norm = float64(q.Stall.Total()) / base
			}
			row.Values = append(row.Values, v)
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}
