package dsmnc

// The sharded half of the equivalence corpus: every committed golden
// cell is replayed on the parallel engine at shard counts 2 and 4 and
// must reproduce the sequential corpus exactly — same reference count,
// field-identical counters, and byte-identical sampler series (via the
// committed SHA-256 digests). The event trace is the one instrument the
// sharded engine cannot carry (a Tracer is order-serial and forces the
// sequential fallback), so these replays attach the sampler only and
// compare the trace-independent digest fields; the full five-field
// digests stay pinned by the sequential TestDifferentialEquivalence.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"dsmnc/telemetry"
	"dsmnc/workload"
)

// forceParallelism raises GOMAXPROCS to at least 4 for the duration of
// the sweep: the engine degrades to its in-order path on a single
// execution core, and this suite must drive the actual worker crews —
// particularly under `make parallel-smoke`'s race detector — even on a
// one-core CI box.
func forceParallelism(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// goldenShardCounts is the shard axis of the sweep. {2, 4} splits the
// default 8-cluster machine two ways that both differ from sequential
// scheduling; shard counts 1 and 8 are pinned by the metamorphic suite
// in internal/sim.
var goldenShardCounts = []int{2, 4}

// runShardedCell replays one corpus cell on the parallel engine with
// the corpus sampler attached (clockless, so the series bytes are
// deterministic) and no tracer.
func runShardedCell(sys System, benchName string, shards int) (diffOutcome, error) {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleSmall
	opt.Shards = shards
	opt.Sampler = telemetry.NewSampler(diffSampleEvery, telemetry.DefaultCapacity)
	bench := workload.ByName(benchName, opt.Scale)
	if bench == nil {
		return diffOutcome{}, fmt.Errorf("unknown workload %q", benchName)
	}
	// The sweep must actually exercise the parallel engine: a silent
	// sequential fallback would make every comparison below vacuous.
	if m, err := Build(bench, sys, opt); err != nil {
		return diffOutcome{}, err
	} else if !m.Sharded() {
		return diffOutcome{}, fmt.Errorf("system %s did not attach the sharded engine", sys.Name)
	}
	res, err := Run(bench, sys, opt)
	if err != nil {
		return diffOutcome{}, err
	}
	var series bytes.Buffer
	if err := opt.Sampler.WriteJSONL(&series); err != nil {
		return diffOutcome{}, err
	}
	return diffOutcome{
		Refs:       res.Refs,
		Stats:      res.Counters,
		SamplerLen: opt.Sampler.Len(),
		SamplerSHA: shaHex(series.Bytes()),
	}, nil
}

// TestGoldenStatsSharded replays the full golden corpus at every shard
// count and diffs field-level counters against testdata/golden plus
// SHA-256 digests against testdata/difftest. It never regenerates
// anything: the sharded engine must match the corpus the sequential
// engine committed, or it does not merge.
func TestGoldenStatsSharded(t *testing.T) {
	forceParallelism(t)
	for _, shards := range goldenShardCounts {
		for _, sys := range diffSystems() {
			for _, benchName := range diffBenches(testing.Short()) {
				shards, sys, benchName := shards, sys, benchName
				t.Run(fmt.Sprintf("shards=%d/%s", shards, cellName(sys, benchName)), func(t *testing.T) {
					t.Parallel()
					got, err := runShardedCell(sys, benchName, shards)
					if err != nil {
						t.Fatal(err)
					}

					goldenPath := filepath.Join("testdata", "golden", cellName(sys, benchName)+".json")
					raw, err := os.ReadFile(goldenPath)
					if err != nil {
						t.Fatalf("no committed golden (generate with the sequential suite first): %v", err)
					}
					var want goldenCell
					if err := json.Unmarshal(raw, &want); err != nil {
						t.Fatalf("corrupt golden file %s: %v", goldenPath, err)
					}
					if got.Refs != want.Refs {
						t.Errorf("Refs drifted from sequential corpus: got %d, want %d", got.Refs, want.Refs)
					}
					diffCounters(t, got.Stats, want.Stats)

					digestPath := filepath.Join("testdata", "difftest", cellName(sys, benchName)+".json")
					raw, err = os.ReadFile(digestPath)
					if err != nil {
						t.Fatalf("no committed digest: %v", err)
					}
					var wantDigest diffDigest
					if err := json.Unmarshal(raw, &wantDigest); err != nil {
						t.Fatalf("corrupt digest file %s: %v", digestPath, err)
					}
					gotDigest, err := got.digest()
					if err != nil {
						t.Fatal(err)
					}
					if gotDigest.StatsSHA != wantDigest.StatsSHA {
						t.Errorf("stats digest drifted from sequential corpus")
					}
					if gotDigest.SamplerLen != wantDigest.SamplerLen || gotDigest.SamplerSHA != wantDigest.SamplerSHA {
						t.Errorf("sampler series drifted from sequential corpus: got %d samples sha %.12s, want %d samples sha %.12s",
							gotDigest.SamplerLen, gotDigest.SamplerSHA, wantDigest.SamplerLen, wantDigest.SamplerSHA)
					}
				})
			}
		}
	}
}
