// Package memsys defines the address geometry of the simulated machine:
// byte addresses, cache blocks, virtual-memory pages, the cluster/processor
// topology, and the first-touch page placement map that assigns every page
// a home cluster.
//
// All other packages express addresses in terms of memsys.Addr (a byte
// address), memsys.Block (a global block number) and memsys.Page (a global
// page number). The paper's geometry is fixed at 64-byte blocks and 4 KB
// pages; both are constants here because the SPLASH-2 study never varies
// them and fixed shifts keep the simulator hot path branch-free.
package memsys

import (
	"fmt"

	"dsmnc/internal/flatmap"
)

// Address geometry constants (paper §5.1: 64-byte blocks, 4 KB pages).
const (
	BlockShift    = 6               // log2 of the block size
	BlockBytes    = 1 << BlockShift // bytes per cache block
	PageShift     = 12              // log2 of the page size
	PageBytes     = 1 << PageShift  // bytes per page
	BlocksPerPage = PageBytes / BlockBytes
)

// Address-space bounds. The simulated machine exposes a 48-bit physical
// address space (the width contemporary CC-NUMA machines implement);
// addresses beyond MaxAddr cannot name real memory and are rejected at
// the simulator boundary instead of silently aliasing.
const (
	AddrSpaceBits      = 48
	MaxAddr       Addr = 1<<AddrSpaceBits - 1
)

// Addr is a byte address in the single shared address space.
type Addr uint64

// Block is a global cache-block number (Addr >> BlockShift).
type Block uint64

// Page is a global page number (Addr >> PageShift).
type Page uint64

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockShift) }

// PageOf returns the page containing a.
func PageOf(a Addr) Page { return Page(a >> PageShift) }

// PageOfBlock returns the page containing block b.
func PageOfBlock(b Block) Page { return Page(b >> (PageShift - BlockShift)) }

// BlockInPage returns the index of block b within its page (0..63).
func BlockInPage(b Block) int { return int(b) & (BlocksPerPage - 1) }

// FirstBlock returns the first block of page p.
func FirstBlock(p Page) Block { return Block(p) << (PageShift - BlockShift) }

// Base returns the first byte address of block b.
func (b Block) Base() Addr { return Addr(b) << BlockShift }

// Base returns the first byte address of page p.
func (p Page) Base() Addr { return Addr(p) << PageShift }

// FrameOf returns the pseudo-physical page frame backing virtual page p.
// Caches in real DSM nodes are physically indexed, and the OS hands out
// frames with effectively random colors; hashing the page number
// reproduces that and keeps power-of-two data-structure strides (Radix's
// bucket regions, FFT's matrix rows) from aliasing whole arrays into a
// single cache set. The hash is a fixed multiplicative mix, so runs stay
// deterministic.
func FrameOf(p Page) uint64 {
	return (uint64(p) * 0x9e3779b97f4a7c15) >> 16
}

// PhysBlock returns the pseudo-physical block number of b: the frame of
// its page concatenated with its block offset. Cache set indexing uses
// this, preserving intra-page spatial contiguity while randomizing page
// color.
func PhysBlock(b Block) uint64 {
	return FrameOf(PageOfBlock(b))<<(PageShift-BlockShift) | uint64(BlockInPage(b))
}

// Geometry describes the machine topology: Clusters bus-based SMP nodes
// with ProcsPerCluster processors each. The paper evaluates 8 clusters of
// 4 processors (32 processors total).
type Geometry struct {
	Clusters        int
	ProcsPerCluster int
}

// DefaultGeometry is the paper's 8x4 configuration.
func DefaultGeometry() Geometry { return Geometry{Clusters: 8, ProcsPerCluster: 4} }

// Procs returns the total processor count.
func (g Geometry) Procs() int { return g.Clusters * g.ProcsPerCluster }

// ClusterOf returns the cluster that processor pid belongs to.
func (g Geometry) ClusterOf(pid int) int { return pid / g.ProcsPerCluster }

// LocalProc returns pid's index within its cluster.
func (g Geometry) LocalProc(pid int) int { return pid % g.ProcsPerCluster }

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Clusters <= 0 || g.ProcsPerCluster <= 0 {
		return fmt.Errorf("memsys: invalid geometry %dx%d", g.Clusters, g.ProcsPerCluster)
	}
	return nil
}

// PlacementPolicy assigns home clusters to pages.
type PlacementPolicy interface {
	// Home returns the home cluster of page p, assigning one on first
	// use. requester is the cluster performing the access that caused
	// the lookup (used by first-touch).
	Home(p Page, requester int) int
	// HomeIfPlaced returns the home of p without assigning one.
	HomeIfPlaced(p Page) (int, bool)
}

// FirstTouch places each page on the cluster whose processor touches it
// first (paper §5.2, Marchetti et al. [17]). The SPLASH-2 programs are
// written so that first-touch is near-optimal.
//
// Placement is consulted on every applied reference, so the page→home
// assignment lives in an open-addressed table with a one-entry memo in
// front of it: consecutive references usually stay on one page, and the
// memo turns that run into a single compare.
type FirstTouch struct {
	home flatmap.Map[int32]

	lastPage Page
	lastHome int32
	hasLast  bool
}

// NewFirstTouch returns an empty first-touch placement map.
func NewFirstTouch() *FirstTouch { return &FirstTouch{} }

// Home returns (and on first use assigns) the home cluster of p.
func (ft *FirstTouch) Home(p Page, requester int) int {
	if ft.hasLast && p == ft.lastPage {
		return int(ft.lastHome)
	}
	h, created := ft.home.Put(uint64(p))
	if created {
		*h = int32(requester)
	}
	ft.lastPage, ft.lastHome, ft.hasLast = p, *h, true
	return int(*h)
}

// HomeIfPlaced returns the home of p if it has been assigned.
func (ft *FirstTouch) HomeIfPlaced(p Page) (int, bool) {
	if ft.hasLast && p == ft.lastPage {
		return int(ft.lastHome), true
	}
	if h := ft.home.Get(uint64(p)); h != nil {
		return int(*h), true
	}
	return 0, false
}

// Rehomer is implemented by placement policies that support OS page
// migration: Rehome moves page p to cluster c.
type Rehomer interface {
	Rehome(p Page, c int)
}

// Rehome migrates page p to cluster c (OS page migration).
func (ft *FirstTouch) Rehome(p Page, c int) {
	h, _ := ft.home.Put(uint64(p))
	*h = int32(c)
	if ft.hasLast && ft.lastPage == p {
		ft.lastHome = int32(c)
	}
}

// Pages returns the number of placed pages.
func (ft *FirstTouch) Pages() int { return ft.home.Len() }

// PagesOn returns how many pages are homed on cluster c.
func (ft *FirstTouch) PagesOn(c int) int {
	n := 0
	ft.home.Range(func(_ uint64, h *int32) bool {
		if int(*h) == c {
			n++
		}
		return true
	})
	return n
}

// RoundRobin places pages round-robin across clusters by page number.
// It is used by micro-benchmarks and tests that want placement to be
// independent of access order.
type RoundRobin struct {
	Clusters int
}

// Home returns p's home cluster (p mod Clusters).
func (rr RoundRobin) Home(p Page, _ int) int { return int(uint64(p) % uint64(rr.Clusters)) }

// HomeIfPlaced always succeeds: round-robin placement is total.
func (rr RoundRobin) HomeIfPlaced(p Page) (int, bool) {
	return int(uint64(p) % uint64(rr.Clusters)), true
}

// Fixed places every page on a single cluster. Useful in unit tests.
type Fixed struct {
	Cluster int
}

// Home returns the fixed home cluster.
func (f Fixed) Home(_ Page, _ int) int { return f.Cluster }

// HomeIfPlaced always succeeds.
func (f Fixed) HomeIfPlaced(_ Page) (int, bool) { return f.Cluster, true }
