package memsys

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlockBytes != 64 {
		t.Fatalf("BlockBytes = %d, want 64", BlockBytes)
	}
	if PageBytes != 4096 {
		t.Fatalf("PageBytes = %d, want 4096", PageBytes)
	}
	if BlocksPerPage != 64 {
		t.Fatalf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
}

func TestAddressMath(t *testing.T) {
	cases := []struct {
		a     Addr
		block Block
		page  Page
		inPg  int
	}{
		{0, 0, 0, 0},
		{63, 0, 0, 0},
		{64, 1, 0, 1},
		{4095, 63, 0, 63},
		{4096, 64, 1, 0},
		{4096 + 64*5 + 7, 69, 1, 5},
	}
	for _, c := range cases {
		if got := BlockOf(c.a); got != c.block {
			t.Errorf("BlockOf(%d) = %d, want %d", c.a, got, c.block)
		}
		if got := PageOf(c.a); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.a, got, c.page)
		}
		if got := PageOfBlock(c.block); got != c.page {
			t.Errorf("PageOfBlock(%d) = %d, want %d", c.block, got, c.page)
		}
		if got := BlockInPage(c.block); got != c.inPg {
			t.Errorf("BlockInPage(%d) = %d, want %d", c.block, got, c.inPg)
		}
	}
}

func TestAddressMathProperties(t *testing.T) {
	// Block and page decomposition must be consistent for any address.
	f := func(a Addr) bool {
		b := BlockOf(a)
		p := PageOf(a)
		if PageOfBlock(b) != p {
			return false
		}
		if b.Base() > a || a-b.Base() >= BlockBytes {
			return false
		}
		if p.Base() > a || a-p.Base() >= PageBytes {
			return false
		}
		// Reconstructing the block from its page and offset must agree.
		return FirstBlock(p)+Block(BlockInPage(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.Procs() != 32 {
		t.Fatalf("Procs() = %d, want 32", g.Procs())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Geometry{0, 4}).Validate(); err == nil {
		t.Fatal("Validate accepted zero clusters")
	}
	for pid := 0; pid < g.Procs(); pid++ {
		c := g.ClusterOf(pid)
		l := g.LocalProc(pid)
		if c < 0 || c >= g.Clusters || l < 0 || l >= g.ProcsPerCluster {
			t.Fatalf("pid %d: cluster %d local %d out of range", pid, c, l)
		}
		if c*g.ProcsPerCluster+l != pid {
			t.Fatalf("pid %d does not round-trip (%d,%d)", pid, c, l)
		}
	}
}

func TestFirstTouch(t *testing.T) {
	ft := NewFirstTouch()
	if _, ok := ft.HomeIfPlaced(7); ok {
		t.Fatal("unplaced page reported as placed")
	}
	if h := ft.Home(7, 3); h != 3 {
		t.Fatalf("first touch home = %d, want 3", h)
	}
	// Second toucher must not steal the page.
	if h := ft.Home(7, 5); h != 3 {
		t.Fatalf("second touch home = %d, want 3", h)
	}
	if h, ok := ft.HomeIfPlaced(7); !ok || h != 3 {
		t.Fatalf("HomeIfPlaced = (%d,%v), want (3,true)", h, ok)
	}
	if ft.Pages() != 1 {
		t.Fatalf("Pages() = %d, want 1", ft.Pages())
	}
	ft.Home(8, 3)
	ft.Home(9, 2)
	if n := ft.PagesOn(3); n != 2 {
		t.Fatalf("PagesOn(3) = %d, want 2", n)
	}
}

func TestRoundRobinAndFixed(t *testing.T) {
	rr := RoundRobin{Clusters: 8}
	seen := make(map[int]bool)
	for p := Page(0); p < 64; p++ {
		h := rr.Home(p, 99)
		if h < 0 || h >= 8 {
			t.Fatalf("round robin home %d out of range", h)
		}
		if h2, ok := rr.HomeIfPlaced(p); !ok || h2 != h {
			t.Fatalf("HomeIfPlaced disagrees with Home")
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Fatalf("round robin used %d clusters, want 8", len(seen))
	}
	fx := Fixed{Cluster: 5}
	if fx.Home(123, 0) != 5 {
		t.Fatal("fixed placement did not return its cluster")
	}
	if h, ok := fx.HomeIfPlaced(1); !ok || h != 5 {
		t.Fatal("fixed HomeIfPlaced wrong")
	}
}

func TestFrameColoring(t *testing.T) {
	// Frames are deterministic and spread: consecutive pages must not
	// all share the same low bits (the property that breaks Radix's
	// power-of-two bucket aliasing).
	if FrameOf(5) != FrameOf(5) {
		t.Fatal("FrameOf not deterministic")
	}
	colors := map[uint64]bool{}
	for p := Page(0); p < 256; p++ {
		colors[FrameOf(p)&127] = true
	}
	if len(colors) < 100 {
		t.Fatalf("only %d/128 colors used by 256 consecutive pages", len(colors))
	}
}

func TestPhysBlockPreservesOffsets(t *testing.T) {
	f := func(a Addr) bool {
		b := BlockOf(a)
		// The block offset within the page survives the frame mapping,
		// so intra-page spatial locality is intact.
		return int(PhysBlock(b)&(BlocksPerPage-1)) == BlockInPage(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Blocks of one page stay contiguous in physical space.
	p := Page(3)
	base := PhysBlock(FirstBlock(p))
	for i := 0; i < BlocksPerPage; i++ {
		if PhysBlock(FirstBlock(p)+Block(i)) != base+uint64(i) {
			t.Fatalf("block %d of page not contiguous", i)
		}
	}
}
