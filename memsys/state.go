package memsys

import (
	"dsmnc/internal/flatmap"
	"dsmnc/internal/snapshot"
)

const tagFirstTouch = 0x09

// SaveState serializes the first-touch placement map in sorted page
// order, so identical placements always produce identical bytes.
func (ft *FirstTouch) SaveState(w *snapshot.Writer) {
	w.Section(tagFirstTouch)
	pages := ft.home.Keys()
	w.U64(uint64(len(pages)))
	for _, p := range pages {
		w.U64(p)
		w.U32(uint32(*ft.home.Get(p)))
	}
}

// LoadState restores the placement map in place. clusters bounds every
// home: the simulator indexes its cluster slice with these values.
func (ft *FirstTouch) LoadState(r *snapshot.Reader, clusters int) {
	r.Section(tagFirstTouch)
	n := r.Len(1 << 40)
	var home flatmap.Map[int32]
	for i := 0; i < n; i++ {
		p := Page(r.U64())
		h := int(r.U32())
		if r.Err() != nil {
			return
		}
		if h >= clusters {
			r.Failf("page %d homed on cluster %d of %d", p, h, clusters)
			return
		}
		slot, _ := home.Put(uint64(p))
		*slot = int32(h)
	}
	if r.Err() == nil {
		ft.home = home
		ft.hasLast = false
	}
}
