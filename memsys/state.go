package memsys

import (
	"sort"

	"dsmnc/internal/snapshot"
)

const tagFirstTouch = 0x09

// SaveState serializes the first-touch placement map in sorted page
// order, so identical placements always produce identical bytes.
func (ft *FirstTouch) SaveState(w *snapshot.Writer) {
	w.Section(tagFirstTouch)
	pages := make([]Page, 0, len(ft.home))
	for p := range ft.home {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	w.U64(uint64(len(pages)))
	for _, p := range pages {
		w.U64(uint64(p))
		w.U32(uint32(ft.home[p]))
	}
}

// LoadState restores the placement map in place. clusters bounds every
// home: the simulator indexes its cluster slice with these values.
func (ft *FirstTouch) LoadState(r *snapshot.Reader, clusters int) {
	r.Section(tagFirstTouch)
	n := r.Len(1 << 40)
	home := make(map[Page]int, min(n, 1<<20))
	for i := 0; i < n; i++ {
		p := Page(r.U64())
		h := int(r.U32())
		if r.Err() != nil {
			return
		}
		if h >= clusters {
			r.Failf("page %d homed on cluster %d of %d", p, h, clusters)
			return
		}
		home[p] = h
	}
	if r.Err() == nil {
		ft.home = home
	}
}
