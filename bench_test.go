package dsmnc

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus micro-benchmarks of the simulator's hot
// path. Each figure benchmark regenerates its experiment once per
// iteration at small scale and reports throughput in simulated
// references; run a single figure with e.g.
//
//	go test -bench=BenchmarkFig9 -benchtime=1x
//
// The EXPERIMENTS.md numbers come from cmd/dsmfig at medium scale.

import (
	"testing"

	"dsmnc/telemetry"
	"dsmnc/trace"
	"dsmnc/workload"
)

func benchOptions() Options {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleSmall
	return opt
}

func benchExperiment(b *testing.B, fn func(Options) (Experiment, error)) {
	b.Helper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		exp, err := fn(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (benchmark characteristics).
func BenchmarkTable3(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if rows := Table3(opt); len(rows) != 8 {
			b.Fatal("table3 incomplete")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (associativity x victim NC size).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, Fig3) }

// BenchmarkFig4 regenerates Figure 4 (inclusion vs victim NC).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, Fig4) }

// BenchmarkFig5 regenerates Figure 5 (block vs page victim indexing).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, Fig5) }

// BenchmarkFig6 regenerates Figure 6 (adaptive vs fixed threshold).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, Fig6) }

// BenchmarkFig7 regenerates Figure 7 (page-cache size sweep).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, Fig7) }

// BenchmarkFig8 regenerates Figure 8 (victim indexing with page cache).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, Fig8) }

// BenchmarkFig9 regenerates Figure 9 (remote read stalls).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, Fig9) }

// BenchmarkFig10 regenerates Figure 10 (remote data traffic).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, Fig10) }

// BenchmarkFig11 regenerates Figure 11 (vxp vs ncp relocation counters).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, Fig11) }

// BenchmarkAblations runs the ablation suite (O state, counter
// decrement, NC size/ways, threshold sweep).
func BenchmarkAblations(b *testing.B) {
	for name, fn := range Ablations() {
		fn := fn
		b.Run(name, func(b *testing.B) { benchExperiment(b, fn) })
	}
}

// BenchmarkSimulator measures raw simulation throughput per system class
// on one representative workload, in references per second. Each system
// runs twice: on the sequential engine (the series the bench-check gate
// compares against the baseline) and on the 4-shard parallel engine (a
// separate series benchjson tags with its shard count; the ratio of the
// two is the parallel speedup recorded in docs/performance.md).
func BenchmarkSimulator(b *testing.B) {
	systems := []System{Base(), VB(16 << 10), NCD(), VBPFrac(16<<10, 5), VXPFrac(16<<10, 5, 32)}
	bench := workload.Ocean(benchOptions().Scale)
	run := func(b *testing.B, sys System, opt Options) {
		var refs int64
		for i := 0; i < b.N; i++ {
			res, err := Run(bench, sys, opt)
			if err != nil {
				b.Fatal(err)
			}
			refs += res.Refs
		}
		b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
	}
	for _, sys := range systems {
		sys := sys
		b.Run(sys.Name, func(b *testing.B) { run(b, sys, benchOptions()) })
		b.Run(sys.Name+"/shards=4", func(b *testing.B) {
			opt := benchOptions()
			opt.Shards = 4
			run(b, sys, opt)
		})
	}
}

// BenchmarkWorkloadGeneration measures trace-generation throughput alone
// (no simulation), per benchmark.
func BenchmarkWorkloadGeneration(b *testing.B) {
	opt := benchOptions()
	for _, name := range workload.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var refs int64
			for i := 0; i < b.N; i++ {
				wl := workload.ByName(name, opt.Scale)
				wl.Emit(opt.Geometry, opt.Quantum, func(trace.Ref) { refs++ })
			}
			b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkApplyHotPath measures the per-reference cost of the full
// system (L1 + bus + NC + directory) on an L1-hit-heavy stream.
func BenchmarkApplyHotPath(b *testing.B) {
	opt := benchOptions()
	machine, err := Build(workload.Sequential(1024, 1), VB(16<<10), opt)
	if err != nil {
		b.Fatal(err)
	}
	r := trace.Ref{PID: 0, Op: trace.Read, Addr: 0}
	machine.Apply(r) // warm the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine.Apply(r)
	}
}

// BenchmarkApplyHotPathSampled measures the same stream with the
// time-series sampler attached at the acceptance cadence
// (-sample-every 100000), so sampling overhead shows up as a direct
// delta against BenchmarkApplyHotPath in BENCH_baseline.json.
func BenchmarkApplyHotPathSampled(b *testing.B) {
	opt := benchOptions()
	opt.Sampler = telemetry.NewSampler(100000, telemetry.DefaultCapacity)
	machine, err := Build(workload.Sequential(1024, 1), VB(16<<10), opt)
	if err != nil {
		b.Fatal(err)
	}
	r := trace.Ref{PID: 0, Op: trace.Read, Addr: 0}
	machine.Apply(r) // warm the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine.Apply(r)
	}
}
