module dsmnc

go 1.24
