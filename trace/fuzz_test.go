package trace

import (
	"bytes"
	"errors"
	"testing"

	"dsmnc/memsys"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic and must either produce refs or report ErrBadTrace-class errors.
func FuzzReader(f *testing.F) {
	// Seed with a small valid trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 16; i++ {
		_ = w.Write(Ref{PID: int32(i % 4), Op: Op(i % 2), Addr: memsys.Addr(i * 72)})
	}
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("DSMT\x01garbage"))
	f.Add([]byte{})
	f.Add([]byte("DSMT\x7f")) // wrong version
	f.Add([]byte("XSMT\x01")) // wrong magic
	f.Add(valid[:5])          // header only
	// A single flipped byte in the record stream.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	// An overflowing record head after a valid header.
	f.Add(append([]byte("DSMT\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Once unbounded, once bound to a small machine: every decoded
		// ref must respect the limits, and errors must be typed.
		for _, bound := range []bool{false, true} {
			r := NewReader(bytes.NewReader(data))
			if bound {
				r.SetLimits(4, 1<<20)
			}
			n := 0
			for {
				ref, ok := r.Next()
				if !ok {
					break
				}
				if bound && (ref.PID >= 4 || ref.Addr > 1<<20) {
					t.Fatalf("limit-violating ref decoded: %+v", ref)
				}
				n++
				if n > 1<<20 {
					t.Fatal("unbounded refs from bounded input")
				}
			}
			if err := r.Err(); err != nil && !errors.Is(err, ErrBadTrace) {
				t.Fatalf("untyped reader error: %v", err)
			}
			// After exhaustion the reader must stay exhausted.
			if _, ok := r.Next(); ok {
				t.Fatal("reader resurrected")
			}
		}
	})
}

// FuzzCodecRoundTrip encodes arbitrary refs and decodes them back.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int16(3), uint64(4096), true)
	f.Fuzz(func(t *testing.T, pid int16, addr uint64, write bool) {
		if pid < 0 {
			pid = -pid
		}
		op := Read
		if write {
			op = Write
		}
		// Addresses beyond the architected space do not round-trip (the
		// reader rejects them); keep the input legal.
		in := Ref{PID: int32(pid), Op: op, Addr: memsys.Addr(addr) & memsys.MaxAddr}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		out, ok := r.Next()
		if !ok || out != in {
			t.Fatalf("round trip: %v -> (%v, %v)", in, out, ok)
		}
	})
}
