package trace

import (
	"bytes"
	"testing"

	"dsmnc/memsys"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic and must either produce refs or report ErrBadTrace-class errors.
func FuzzReader(f *testing.F) {
	// Seed with a small valid trace and a few corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 16; i++ {
		_ = w.Write(Ref{PID: int32(i % 4), Op: Op(i % 2), Addr: memsys.Addr(i * 72)})
	}
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("DSMT\x01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatal("unbounded refs from bounded input")
			}
		}
		// After exhaustion the reader must stay exhausted.
		if _, ok := r.Next(); ok {
			t.Fatal("reader resurrected")
		}
	})
}

// FuzzCodecRoundTrip encodes arbitrary refs and decodes them back.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int16(3), uint64(4096), true)
	f.Fuzz(func(t *testing.T, pid int16, addr uint64, write bool) {
		if pid < 0 {
			pid = -pid
		}
		op := Read
		if write {
			op = Write
		}
		in := Ref{PID: int32(pid), Op: op, Addr: memsys.Addr(addr)}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		out, ok := r.Next()
		if !ok || out != in {
			t.Fatalf("round trip: %v -> (%v, %v)", in, out, ok)
		}
	})
}
