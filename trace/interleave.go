package trace

// Interleaver merges per-processor reference streams round-robin, the way
// a trace-driven multiprocessor simulator consumes a parallel trace. Each
// turn a processor contributes up to Quantum consecutive references; the
// per-processor program order is preserved, which is all the paper's
// constant-latency model requires (it does not model contention, §4).
type Interleaver struct {
	srcs    []Source
	quantum int
	cur     int // stream currently being drained
	used    int // refs taken from cur this turn
	done    []bool
	left    int // streams not yet exhausted
}

// NewInterleaver merges srcs (indexed by processor) with the given quantum.
// A quantum below 1 is treated as 1.
func NewInterleaver(srcs []Source, quantum int) *Interleaver {
	if quantum < 1 {
		quantum = 1
	}
	return &Interleaver{
		srcs:    srcs,
		quantum: quantum,
		done:    make([]bool, len(srcs)),
		left:    len(srcs),
	}
}

// Next returns the next reference in round-robin order.
func (il *Interleaver) Next() (Ref, bool) {
	for il.left > 0 {
		if il.done[il.cur] || il.used >= il.quantum {
			il.advance()
			continue
		}
		r, ok := il.srcs[il.cur].Next()
		if !ok {
			il.done[il.cur] = true
			il.left--
			il.advance()
			continue
		}
		il.used++
		return r, true
	}
	return Ref{}, false
}

func (il *Interleaver) advance() {
	il.cur = (il.cur + 1) % len(il.srcs)
	il.used = 0
}
