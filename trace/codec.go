package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dsmnc/memsys"
)

// Binary trace format:
//
//	header:  magic "DSMT" | version u8
//	records: op+pid varint (pid<<1 | op), addr delta zig-zag varint
//	footer:  none (EOF terminates)
//
// Addresses are delta-encoded per stream because traces are strongly
// sequential; typical records are 2-4 bytes.

var traceMagic = [4]byte{'D', 'S', 'M', 'T'}

const codecVersion = 1

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer encodes references to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	wrote    int64
	buf      [2 * binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter returns a Writer that writes the trace header lazily on the
// first Write call.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes one reference.
func (tw *Writer) Write(r Ref) error {
	if !tw.started {
		if _, err := tw.w.Write(traceMagic[:]); err != nil {
			return err
		}
		if err := tw.w.WriteByte(codecVersion); err != nil {
			return err
		}
		tw.started = true
	}
	head := uint64(r.PID)<<1 | uint64(r.Op&1)
	n := binary.PutUvarint(tw.buf[:], head)
	delta := int64(uint64(r.Addr) - tw.lastAddr)
	n += binary.PutVarint(tw.buf[n:], delta)
	tw.lastAddr = uint64(r.Addr)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.wrote++
	return nil
}

// Count returns the number of references written.
func (tw *Writer) Count() int64 { return tw.wrote }

// Flush flushes buffered output. Call it once after the last Write.
func (tw *Writer) Flush() error {
	if !tw.started {
		// An empty trace still carries a header so readers can
		// distinguish it from a truncated file.
		if _, err := tw.w.Write(traceMagic[:]); err != nil {
			return err
		}
		if err := tw.w.WriteByte(codecVersion); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// countingReader tracks the byte offset of everything decoded so far, so
// every decode failure can name the exact position of the damage.
type countingReader struct {
	r   *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// Reader decodes a binary trace and implements Source. It is hardened
// against adversarial input: varint lengths are bounded, decoded PIDs and
// addresses are checked against configurable limits, and every decode
// failure wraps ErrBadTrace with the byte offset of the damage.
type Reader struct {
	r        countingReader
	lastAddr uint64
	err      error
	started  bool

	maxPIDs int         // reject PID >= maxPIDs when > 0
	maxAddr memsys.Addr // reject Addr > maxAddr
}

// NewReader returns a Reader over r. Header validation happens on the
// first Next call. By default addresses are bounded by memsys.MaxAddr and
// PIDs only by the encoding; use SetLimits to bind the reader to a
// machine geometry.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		r:       countingReader{r: bufio.NewReader(r)},
		maxAddr: memsys.MaxAddr,
	}
}

// SetLimits bounds the decoded references: PIDs must be < pids (ignored
// when pids <= 0) and addresses must not exceed maxAddr (capped at
// memsys.MaxAddr; pass 0 to keep the default). Call it before the first
// Next.
func (tr *Reader) SetLimits(pids int, maxAddr memsys.Addr) {
	tr.maxPIDs = pids
	if maxAddr == 0 || maxAddr > memsys.MaxAddr {
		maxAddr = memsys.MaxAddr
	}
	tr.maxAddr = maxAddr
}

// Err returns the first error encountered (io.EOF is not an error).
func (tr *Reader) Err() error { return tr.err }

// Offset returns the number of bytes decoded so far.
func (tr *Reader) Offset() int64 { return tr.r.off }

// Next decodes the next reference.
func (tr *Reader) Next() (Ref, bool) {
	if tr.err != nil {
		return Ref{}, false
	}
	if !tr.started {
		var hdr [5]byte
		if _, err := io.ReadFull(&tr.r, hdr[:]); err != nil {
			tr.fail(err)
			return Ref{}, false
		}
		if [4]byte(hdr[:4]) != traceMagic {
			tr.err = fmt.Errorf("%w: bad magic %q at offset 0", ErrBadTrace, hdr[:4])
			return Ref{}, false
		}
		if hdr[4] != codecVersion {
			tr.err = fmt.Errorf("%w: unsupported version %d at offset 4", ErrBadTrace, hdr[4])
			return Ref{}, false
		}
		tr.started = true
	}
	recOff := tr.r.off
	head, err := binary.ReadUvarint(&tr.r)
	if err != nil {
		if err != io.EOF {
			tr.fail(err)
		}
		return Ref{}, false
	}
	if head > uint64(1)<<32-1 {
		// head = pid<<1 | op; anything wider cannot be a valid int32 PID.
		tr.err = fmt.Errorf("%w: record head %#x overflows pid at offset %d",
			ErrBadTrace, head, recOff)
		return Ref{}, false
	}
	delta, err := binary.ReadVarint(&tr.r)
	if err != nil {
		tr.fail(err) // a record with a head but no address is truncation
		return Ref{}, false
	}
	pid := int32(head >> 1)
	if tr.maxPIDs > 0 && int(pid) >= tr.maxPIDs {
		tr.err = fmt.Errorf("%w: pid %d out of range [0,%d) at offset %d",
			ErrBadTrace, pid, tr.maxPIDs, recOff)
		return Ref{}, false
	}
	addr := tr.lastAddr + uint64(delta)
	if memsys.Addr(addr) > tr.maxAddr {
		tr.err = fmt.Errorf("%w: address %#x beyond address space (max %#x) at offset %d",
			ErrBadTrace, addr, uint64(tr.maxAddr), recOff)
		return Ref{}, false
	}
	tr.lastAddr = addr
	return Ref{
		PID:  pid,
		Op:   Op(head & 1),
		Addr: memsys.Addr(addr),
	}, true
}

func (tr *Reader) fail(err error) {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		tr.err = fmt.Errorf("%w: truncated at offset %d", ErrBadTrace, tr.r.off)
		return
	}
	// Any other decode failure (varint overflow, underlying read error)
	// still identifies the stream as bad.
	tr.err = fmt.Errorf("%w: %v at offset %d", ErrBadTrace, err, tr.r.off)
}
