package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dsmnc/memsys"
)

// Binary trace format:
//
//	header:  magic "DSMT" | version u8
//	records: op+pid varint (pid<<1 | op), addr delta zig-zag varint
//	footer:  none (EOF terminates)
//
// Addresses are delta-encoded per stream because traces are strongly
// sequential; typical records are 2-4 bytes.

var traceMagic = [4]byte{'D', 'S', 'M', 'T'}

const codecVersion = 1

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer encodes references to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	wrote    int64
	buf      [2 * binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter returns a Writer that writes the trace header lazily on the
// first Write call.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes one reference.
func (tw *Writer) Write(r Ref) error {
	if !tw.started {
		if _, err := tw.w.Write(traceMagic[:]); err != nil {
			return err
		}
		if err := tw.w.WriteByte(codecVersion); err != nil {
			return err
		}
		tw.started = true
	}
	head := uint64(r.PID)<<1 | uint64(r.Op&1)
	n := binary.PutUvarint(tw.buf[:], head)
	delta := int64(uint64(r.Addr) - tw.lastAddr)
	n += binary.PutVarint(tw.buf[n:], delta)
	tw.lastAddr = uint64(r.Addr)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.wrote++
	return nil
}

// Count returns the number of references written.
func (tw *Writer) Count() int64 { return tw.wrote }

// Flush flushes buffered output. Call it once after the last Write.
func (tw *Writer) Flush() error {
	if !tw.started {
		// An empty trace still carries a header so readers can
		// distinguish it from a truncated file.
		if _, err := tw.w.Write(traceMagic[:]); err != nil {
			return err
		}
		if err := tw.w.WriteByte(codecVersion); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace and implements Source.
type Reader struct {
	r        *bufio.Reader
	lastAddr uint64
	err      error
	started  bool
}

// NewReader returns a Reader over r. Header validation happens on the
// first Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered (io.EOF is not an error).
func (tr *Reader) Err() error { return tr.err }

// Next decodes the next reference.
func (tr *Reader) Next() (Ref, bool) {
	if tr.err != nil {
		return Ref{}, false
	}
	if !tr.started {
		var hdr [5]byte
		if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
			tr.fail(err)
			return Ref{}, false
		}
		if [4]byte(hdr[:4]) != traceMagic {
			tr.err = fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
			return Ref{}, false
		}
		if hdr[4] != codecVersion {
			tr.err = fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[4])
			return Ref{}, false
		}
		tr.started = true
	}
	head, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if err != io.EOF {
			tr.fail(err)
		}
		return Ref{}, false
	}
	delta, err := binary.ReadVarint(tr.r)
	if err != nil {
		tr.fail(err) // a record with a head but no address is truncation
		return Ref{}, false
	}
	tr.lastAddr += uint64(delta)
	return Ref{
		PID:  int32(head >> 1),
		Op:   Op(head & 1),
		Addr: memsys.Addr(tr.lastAddr),
	}, true
}

func (tr *Reader) fail(err error) {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		tr.err = fmt.Errorf("%w: truncated", ErrBadTrace)
		return
	}
	tr.err = err
}
