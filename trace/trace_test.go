package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dsmnc/memsys"
)

func mkRefs(pid int32, addrs ...uint64) []Ref {
	out := make([]Ref, len(addrs))
	for i, a := range addrs {
		op := Read
		if i%3 == 2 {
			op = Write
		}
		out[i] = Ref{PID: pid, Op: op, Addr: memsys.Addr(a)}
	}
	return out
}

func TestSliceSource(t *testing.T) {
	refs := mkRefs(1, 0, 64, 128)
	s := NewSliceSource(refs)
	for i := range refs {
		r, ok := s.Next()
		if !ok || r != refs[i] {
			t.Fatalf("ref %d: got (%v,%v), want %v", i, r, ok, refs[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded a ref")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("source resurrected after exhaustion")
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", s.Remaining())
	}
}

func TestSliceSourcePosSetPos(t *testing.T) {
	refs := mkRefs(1, 0, 64, 128, 192)
	s := NewSliceSource(refs)
	s.Next()
	if s.Pos() != 1 {
		t.Fatalf("Pos = %d, want 1", s.Pos())
	}
	s.SetPos(3)
	if r, ok := s.Next(); !ok || r != refs[3] {
		t.Fatalf("after SetPos(3): got (%v,%v), want %v", r, ok, refs[3])
	}
	s.SetPos(-5)
	if s.Pos() != 0 {
		t.Fatalf("SetPos(-5) left Pos = %d, want clamp to 0", s.Pos())
	}
	s.SetPos(99)
	if _, ok := s.Next(); ok {
		t.Fatal("SetPos past the end should exhaust the source")
	}
}

// TestSkip covers the checkpoint-resume primitive: the fast SliceSource
// path, the generic drain path, over-skipping, and Err forwarding.
func TestSkip(t *testing.T) {
	refs := mkRefs(2, 0, 64, 128, 192, 256)

	got := Collect(Skip(NewSliceSource(refs), 2), 0)
	if len(got) != 3 || got[0] != refs[2] {
		t.Fatalf("slice skip: got %v, want refs[2:]", got)
	}

	// Generic path: a bare FuncSource has no SetPos and must be drained.
	i := 0
	fn := FuncSource(func() (Ref, bool) {
		if i >= len(refs) {
			return Ref{}, false
		}
		r := refs[i]
		i++
		return r, true
	})
	got = Collect(Skip(fn, 2), 0)
	if len(got) != 3 || got[0] != refs[2] {
		t.Fatalf("func skip: got %v, want refs[2:]", got)
	}

	if got := Collect(Skip(NewSliceSource(refs), 99), 0); len(got) != 0 {
		t.Fatalf("over-skip yielded %v", got)
	}

	errSrc := &erroringSource{err: ErrBadTrace}
	sk := Skip(errSrc, 1)
	if _, ok := sk.Next(); ok {
		t.Fatal("erroring source yielded a ref")
	}
	fe, ok := sk.(interface{ Err() error })
	if !ok || fe.Err() != ErrBadTrace {
		t.Fatalf("Skip dropped the source's Err: %v, %v", ok, fe)
	}
}

// erroringSource is exhausted from the start with a sticky decode error.
type erroringSource struct{ err error }

func (s *erroringSource) Next() (Ref, bool) { return Ref{}, false }
func (s *erroringSource) Err() error        { return s.err }

func TestConcatLimitFilter(t *testing.T) {
	a := NewSliceSource(mkRefs(0, 1, 2))
	b := NewSliceSource(mkRefs(1, 3, 4, 5))
	got := Collect(Concat(a, b), -1)
	if len(got) != 5 {
		t.Fatalf("Concat yielded %d refs, want 5", len(got))
	}
	lim := Limit(NewSliceSource(mkRefs(0, 1, 2, 3, 4)), 2)
	if n := len(Collect(lim, -1)); n != 2 {
		t.Fatalf("Limit yielded %d, want 2", n)
	}
	f := Filter(NewSliceSource(mkRefs(0, 1, 2, 3, 4, 5, 6)), func(r Ref) bool {
		return r.Op == Write
	})
	for _, r := range Collect(f, -1) {
		if r.Op != Write {
			t.Fatalf("filter leaked %v", r)
		}
	}
}

func TestCounting(t *testing.T) {
	refs := []Ref{
		{PID: 0, Op: Read, Addr: 0},
		{PID: 0, Op: Write, Addr: 64},
		{PID: 0, Op: Read, Addr: 128},
	}
	c := &Counting{Src: NewSliceSource(refs)}
	Drain(c, func(Ref) {})
	if c.Reads != 2 || c.Writes != 1 || c.Total() != 3 {
		t.Fatalf("counts = %d/%d, want 2/1", c.Reads, c.Writes)
	}
}

func TestInterleaverOrderAndConservation(t *testing.T) {
	perProc := [][]Ref{
		mkRefs(0, 10, 11, 12, 13, 14),
		mkRefs(1, 20, 21),
		mkRefs(2, 30, 31, 32, 33, 34, 35, 36),
	}
	srcs := make([]Source, len(perProc))
	for i, rs := range perProc {
		srcs[i] = NewSliceSource(rs)
	}
	il := NewInterleaver(srcs, 2)
	var got []Ref
	perPID := map[int32][]Ref{}
	for {
		r, ok := il.Next()
		if !ok {
			break
		}
		got = append(got, r)
		perPID[r.PID] = append(perPID[r.PID], r)
	}
	want := 0
	for _, rs := range perProc {
		want += len(rs)
	}
	if len(got) != want {
		t.Fatalf("interleaver yielded %d refs, want %d", len(got), want)
	}
	// Per-processor program order must be preserved exactly.
	for pid, rs := range perProc {
		if !reflect.DeepEqual(perPID[int32(pid)], rs) {
			t.Fatalf("pid %d order broken:\n got %v\nwant %v", pid, perPID[int32(pid)], rs)
		}
	}
	// The first four refs with quantum 2 must be P0,P0,P1,P1.
	wantStart := []int32{0, 0, 1, 1, 2, 2}
	for i, w := range wantStart {
		if got[i].PID != w {
			t.Fatalf("ref %d from P%d, want P%d (quantum round-robin)", i, got[i].PID, w)
		}
	}
}

func TestInterleaverQuantumFloor(t *testing.T) {
	il := NewInterleaver([]Source{NewSliceSource(mkRefs(0, 1, 2, 3))}, 0)
	if n := len(Collect(il, -1)); n != 3 {
		t.Fatalf("got %d refs, want 3", n)
	}
}

func TestInterleaverProperty(t *testing.T) {
	// For random per-proc stream lengths, the interleaver conserves
	// references and preserves per-processor order.
	f := func(lens []uint8, quantum uint8) bool {
		if len(lens) == 0 {
			return true
		}
		if len(lens) > 8 {
			lens = lens[:8]
		}
		rng := rand.New(rand.NewSource(42))
		srcs := make([]Source, len(lens))
		orig := make([][]Ref, len(lens))
		total := 0
		for i, l := range lens {
			n := int(l % 50)
			rs := make([]Ref, n)
			for j := range rs {
				rs[j] = Ref{PID: int32(i), Op: Op(rng.Intn(2)), Addr: memsys.Addr(rng.Uint64())}
			}
			orig[i] = rs
			srcs[i] = NewSliceSource(rs)
			total += n
		}
		il := NewInterleaver(srcs, int(quantum%7))
		perPID := make([][]Ref, len(lens))
		n := 0
		for {
			r, ok := il.Next()
			if !ok {
				break
			}
			perPID[r.PID] = append(perPID[r.PID], r)
			n++
		}
		if n != total {
			return false
		}
		for i := range orig {
			if len(orig[i]) == 0 && len(perPID[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(orig[i], perPID[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	refs := make([]Ref, 5000)
	addr := uint64(1 << 20)
	for i := range refs {
		// Mix of sequential and jumpy addresses to exercise deltas.
		switch rng.Intn(4) {
		case 0:
			addr += 8
		case 1:
			addr += 64
		case 2:
			addr -= 128
		default:
			addr = rng.Uint64() >> 16
		}
		refs[i] = Ref{PID: int32(rng.Intn(32)), Op: Op(rng.Intn(2)), Addr: memsys.Addr(addr)}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(refs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(refs))
	}
	r := NewReader(&buf)
	got := Collect(r, -1)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatalf("round trip mismatch: got %d refs, want %d", len(got), len(refs))
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace yielded a ref")
	}
	if r.Err() != nil {
		t.Fatalf("empty trace reported error: %v", r.Err())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewBufferString("not a trace at all"))
	if _, ok := r.Next(); ok {
		t.Fatal("garbage accepted")
	}
	if r.Err() == nil {
		t.Fatal("garbage produced no error")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(Ref{PID: 3, Op: Write, Addr: memsys.Addr(i * 4096)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	trunc := full[:len(full)-1]
	r := NewReader(bytes.NewReader(trunc))
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Fatal("truncated trace read cleanly")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(pids []uint8, addrs []uint64, ops []bool) bool {
		n := len(pids)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(ops) < n {
			n = len(ops)
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			op := Read
			if ops[i] {
				op = Write
			}
			// The reader bounds addresses by memsys.MaxAddr; only
			// architecturally valid addresses round-trip.
			refs[i] = Ref{PID: int32(pids[i]), Op: op, Addr: memsys.Addr(addrs[i]) & memsys.MaxAddr}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd := NewReader(&buf)
		got := Collect(rd, -1)
		if rd.Err() != nil {
			return false
		}
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectLimits(t *testing.T) {
	src := NewSliceSource(mkRefs(0, 1, 2, 3, 4, 5))
	if got := Collect(src, 2); len(got) != 2 {
		t.Fatalf("Collect(2) = %d refs", len(got))
	}
	if got := Collect(src, -1); len(got) != 3 {
		t.Fatalf("Collect(rest) = %d refs", len(got))
	}
}

func TestFuncSourceAndDrain(t *testing.T) {
	n := 3
	src := FuncSource(func() (Ref, bool) {
		if n == 0 {
			return Ref{}, false
		}
		n--
		return Ref{PID: int32(n)}, true
	})
	var seen int64
	if got := Drain(src, func(Ref) { seen++ }); got != 3 || seen != 3 {
		t.Fatalf("Drain = %d, saw %d", got, seen)
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String")
	}
	r := Ref{PID: 3, Op: Write, Addr: 0x1000}
	if r.String() != "P3 W 0x1000" {
		t.Fatalf("Ref.String = %q", r.String())
	}
}

// --- Reader hardening: adversarial input must yield ErrBadTrace with a
// byte offset, never a panic or silent garbage. ---

// encode produces a valid binary trace of the given refs.
func encode(t *testing.T, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func wantBadTrace(t *testing.T, r *Reader) {
	t.Helper()
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("Err() = %v, want ErrBadTrace", r.Err())
	}
	if !strings.Contains(r.Err().Error(), "offset") {
		t.Fatalf("error %q names no byte offset", r.Err())
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	wantBadTrace(t, NewReader(bytes.NewReader([]byte("XSMT\x01rest"))))
}

func TestReaderRejectsBadVersion(t *testing.T) {
	wantBadTrace(t, NewReader(bytes.NewReader([]byte("DSMT\x7f"))))
}

func TestReaderRejectsOutOfRangePID(t *testing.T) {
	raw := encode(t, mkRefs(9, 0, 64, 128))
	r := NewReader(bytes.NewReader(raw))
	r.SetLimits(4, 0) // a 4-processor machine; pid 9 is impossible
	wantBadTrace(t, r)
}

func TestReaderRejectsOutOfRangeAddr(t *testing.T) {
	raw := encode(t, mkRefs(0, 1<<20))
	r := NewReader(bytes.NewReader(raw))
	r.SetLimits(0, 1<<16)
	wantBadTrace(t, r)
}

func TestReaderRejectsAddrBeyondAddressSpace(t *testing.T) {
	// Even with no explicit limits, addresses beyond the architected
	// space are rejected (the writer will happily encode them).
	raw := encode(t, []Ref{{PID: 0, Op: Read, Addr: memsys.MaxAddr + 1}})
	wantBadTrace(t, NewReader(bytes.NewReader(raw)))
}

func TestReaderRejectsOverflowingHead(t *testing.T) {
	// A record head wider than 32 bits cannot hold a valid pid<<1|op.
	raw := append([]byte("DSMT\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	wantBadTrace(t, NewReader(bytes.NewReader(raw)))
}

func TestReaderOffsetNamesDamage(t *testing.T) {
	raw := encode(t, mkRefs(1, 0, 64, 128, 192))
	cut := raw[:len(raw)-1]
	r := NewReader(bytes.NewReader(cut))
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no refs decoded before the damage")
	}
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("Err() = %v", r.Err())
	}
	if r.Offset() != int64(len(cut)) {
		t.Fatalf("Offset() = %d, want %d (all bytes consumed)", r.Offset(), len(cut))
	}
}

func TestReaderStaysDeadAfterError(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("garbage")))
	if _, ok := r.Next(); ok {
		t.Fatal("garbage decoded")
	}
	first := r.Err()
	if _, ok := r.Next(); ok {
		t.Fatal("reader resurrected")
	}
	if r.Err() != first {
		t.Fatal("error changed on re-poll")
	}
}
