// Package trace defines the memory-reference trace format that drives the
// simulator, mirroring the paper's trace-driven methodology (§5.2).
//
// A trace is a sequence of Ref values: (processor, read/write, address).
// Sources produce refs lazily so that multi-million-reference workloads
// never need to be materialized at once. The package also provides a
// round-robin interleaver that merges per-processor streams the way a
// trace-driven multiprocessor simulator consumes them, and a compact
// binary on-disk codec for storing traces.
package trace

import (
	"dsmnc/memsys"
	"fmt"
)

// Op is the kind of a memory reference.
type Op uint8

// Reference kinds. The study models data references to shared memory only;
// instruction fetches and private (stack) data are excluded, as in the
// paper, where miss ratios are expressed per shared reference.
const (
	Read Op = iota
	Write
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// Ref is one memory reference by one processor.
type Ref struct {
	PID  int32       // global processor id
	Op   Op          // Read or Write
	Addr memsys.Addr // byte address in the shared space
}

// String formats the reference for debugging.
func (r Ref) String() string {
	return fmt.Sprintf("P%d %s 0x%x", r.PID, r.Op, uint64(r.Addr))
}

// Source yields references one at a time. Next returns ok=false when the
// stream is exhausted; once exhausted a Source stays exhausted.
type Source interface {
	Next() (Ref, bool)
}

// SliceSource replays a fixed slice of references.
type SliceSource struct {
	refs []Ref
	pos  int
}

// NewSliceSource returns a Source over refs. The slice is not copied.
func NewSliceSource(refs []Ref) *SliceSource { return &SliceSource{refs: refs} }

// Next returns the next reference.
func (s *SliceSource) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Remaining returns how many references are left.
func (s *SliceSource) Remaining() int { return len(s.refs) - s.pos }

// Pos returns the number of references consumed so far — the source's
// resumable position.
func (s *SliceSource) Pos() int64 { return int64(s.pos) }

// SetPos positions the source so the next Next returns reference n.
// Out-of-range positions clamp to the stream bounds.
func (s *SliceSource) SetPos(n int64) {
	switch {
	case n < 0:
		s.pos = 0
	case n > int64(len(s.refs)):
		s.pos = len(s.refs)
	default:
		s.pos = int(n)
	}
}

// Skip returns a source that discards the first n references of src and
// then yields the rest: the resume primitive for a run restored from a
// checkpoint taken n references in. SliceSource positions are adjusted
// in O(1); other sources are drained reference by reference on the
// first Next. A source exposing Err() error keeps exposing it.
func Skip(src Source, n int64) Source {
	return &skipSource{src: src, n: n}
}

type skipSource struct {
	src Source
	n   int64
}

// Next discards the pending prefix (once), then forwards to the source.
func (s *skipSource) Next() (Ref, bool) {
	if s.n > 0 {
		if ss, ok := s.src.(*SliceSource); ok {
			ss.SetPos(ss.Pos() + s.n)
			s.n = 0
		}
		for s.n > 0 {
			s.n--
			if _, ok := s.src.Next(); !ok {
				s.n = 0
				return Ref{}, false
			}
		}
	}
	return s.src.Next()
}

// Err surfaces the underlying source's decode error, if it has one.
func (s *skipSource) Err() error {
	if fe, ok := s.src.(interface{ Err() error }); ok {
		return fe.Err()
	}
	return nil
}

// FuncSource adapts a function to the Source interface.
type FuncSource func() (Ref, bool)

// Next calls the wrapped function.
func (f FuncSource) Next() (Ref, bool) { return f() }

// Concat chains sources back to back.
func Concat(srcs ...Source) Source {
	i := 0
	return FuncSource(func() (Ref, bool) {
		for i < len(srcs) {
			if r, ok := srcs[i].Next(); ok {
				return r, true
			}
			i++
		}
		return Ref{}, false
	})
}

// Limit truncates src after n references.
func Limit(src Source, n int64) Source {
	return FuncSource(func() (Ref, bool) {
		if n <= 0 {
			return Ref{}, false
		}
		n--
		return src.Next()
	})
}

// Filter yields only references for which keep returns true.
func Filter(src Source, keep func(Ref) bool) Source {
	return FuncSource(func() (Ref, bool) {
		for {
			r, ok := src.Next()
			if !ok {
				return Ref{}, false
			}
			if keep(r) {
				return r, true
			}
		}
	})
}

// Counting wraps a source and counts what flows through it.
type Counting struct {
	Src    Source
	Reads  int64
	Writes int64
}

// Next forwards to the wrapped source, tallying reads and writes.
func (c *Counting) Next() (Ref, bool) {
	r, ok := c.Src.Next()
	if ok {
		if r.Op == Write {
			c.Writes++
		} else {
			c.Reads++
		}
	}
	return r, ok
}

// Total returns the number of references seen so far.
func (c *Counting) Total() int64 { return c.Reads + c.Writes }

// Drain consumes src fully, delivering every reference to fn.
// It returns the number of references consumed.
func Drain(src Source, fn func(Ref)) int64 {
	var n int64
	for {
		r, ok := src.Next()
		if !ok {
			return n
		}
		fn(r)
		n++
	}
}

// Collect materializes up to max references from src (max <= 0 means all).
func Collect(src Source, max int64) []Ref {
	var out []Ref
	for max <= 0 || int64(len(out)) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
