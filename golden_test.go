package dsmnc

// Golden-stats corpus: the human-readable half of the equivalence
// corpus built by difftest_test.go. For every {base, nc, vb, vp, vxp}
// x benchmark cell the full stats.Counters is committed under
// testdata/golden/, and TestGoldenStats fails with a field-level diff
// on any drift. Regenerate (only for an intentional behavior change)
// with:
//
//	go test -run TestGoldenStats -update .

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dsmnc/stats"
)

// goldenCell is the committed form of one cell: the reference count and
// the complete counter set.
type goldenCell struct {
	Refs  int64          `json:"refs"`
	Stats stats.Counters `json:"stats"`
}

func TestGoldenStats(t *testing.T) {
	for _, sys := range diffSystems() {
		for _, benchName := range diffBenches(testing.Short()) {
			sys, benchName := sys, benchName
			t.Run(cellName(sys, benchName), func(t *testing.T) {
				out := diffCellOutcome(t, sys, benchName)
				got := goldenCell{Refs: out.Refs, Stats: out.Stats}
				path := filepath.Join("testdata", "golden", cellName(sys, benchName)+".json")
				if *update {
					writeJSONFile(t, path, got)
					return
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no committed golden (run with -update to create it): %v", err)
				}
				var want goldenCell
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				if got.Refs != want.Refs {
					t.Errorf("Refs drifted: got %d, want %d", got.Refs, want.Refs)
				}
				diffCounters(t, got.Stats, want.Stats)
			})
		}
	}
}

// diffCounters reports every stats.Counters field that differs, by
// name, so a drift failure points straight at the affected event class.
// The comparison itself is stats.DiffCounters, shared with the serving
// determinism suite.
func diffCounters(t *testing.T, got, want stats.Counters) {
	t.Helper()
	for _, d := range stats.DiffCounters(got, want) {
		t.Error(d.String())
	}
}
