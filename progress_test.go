package dsmnc

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"dsmnc/telemetry"
)

// TestProgressConcurrentWriters hammers every Progress counter from
// concurrent writers while readers poll the derived views — run under
// -race this is the heartbeat's data-safety proof.
func TestProgressConcurrentWriters(t *testing.T) {
	var p Progress
	p.CellsTotal.Store(64)
	reg := telemetry.NewRegistry()
	if err := p.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}

	var hb bytes.Buffer
	var hbMu sync.Mutex
	stop := p.Heartbeat(syncWriter{w: &hb, mu: &hbMu}, time.Millisecond)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Refs.Add(1)
				if i%100 == 0 {
					p.CellsDone.Add(1)
					p.noteJournal()
				}
				if i%250 == 0 {
					p.CellsRetried.Add(1)
				}
				if i%500 == 0 {
					p.CellsFailed.Add(1)
				}
			}
		}()
	}
	readers := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-readers:
					return
				default:
				}
				p.ETA()
				p.LastJournalWrite()
				_ = reg.WriteText(discard{})
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the heartbeat tick at least once
	wg.Wait()
	close(readers)
	rg.Wait()
	stop()

	if got := p.Refs.Load(); got != 8000 {
		t.Fatalf("Refs = %d, want 8000", got)
	}
	if got := p.CellsDone.Load(); got != 80 {
		t.Fatalf("CellsDone = %d, want 80", got)
	}
	if got := p.CellsRetried.Load(); got != 32 {
		t.Fatalf("CellsRetried = %d, want 32", got)
	}
	if got := p.CellsFailed.Load(); got != 16 {
		t.Fatalf("CellsFailed = %d, want 16", got)
	}
	if got := p.JournalWrites.Load(); got != 80 {
		t.Fatalf("JournalWrites = %d, want 80", got)
	}
	if _, ok := p.LastJournalWrite(); !ok {
		t.Fatal("LastJournalWrite reported no writes")
	}

	hbMu.Lock()
	out := hb.String()
	hbMu.Unlock()
	if !strings.Contains(out, "progress:") || !strings.Contains(out, "refs/s") {
		t.Fatalf("heartbeat produced no progress line:\n%s", out)
	}
}

// TestProgressETA checks the cell-rate extrapolation.
func TestProgressETA(t *testing.T) {
	var p Progress
	if _, ok := p.ETA(); ok {
		t.Fatal("ETA with no cell accounting reported ok")
	}
	p.CellsTotal.Store(10)
	p.markStart()
	if _, ok := p.ETA(); ok {
		t.Fatal("ETA with zero done cells reported ok")
	}
	p.CellsDone.Store(5)
	time.Sleep(2 * time.Millisecond)
	eta, ok := p.ETA()
	if !ok || eta <= 0 {
		t.Fatalf("ETA = %v, %t; want positive estimate", eta, ok)
	}
	p.CellsDone.Store(10)
	eta, ok = p.ETA()
	if !ok || eta != 0 {
		t.Fatalf("ETA after completion = %v, %t; want 0, true", eta, ok)
	}
}

// TestProgressMetricsExposition checks the registered series names and
// values after some activity.
func TestProgressMetricsExposition(t *testing.T) {
	var p Progress
	reg := telemetry.NewRegistry()
	if err := p.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	p.Refs.Add(123)
	p.CellsTotal.Store(4)
	p.CellsDone.Store(2)
	p.CellsFailed.Add(1)
	p.noteJournal()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dsmnc_refs_applied_total 123",
		"dsmnc_cells_done 2",
		"dsmnc_cells_total 4",
		"dsmnc_cells_failed_total 1",
		"dsmnc_journal_writes_total 1",
		"dsmnc_cell_retries_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestProgressPerJobMetricScopes is the regression test for the
// one-sweep-per-process assumption: two concurrent jobs must be able to
// expose their own Progress on one registry under distinct job labels,
// with independent values, instead of the second registration failing
// (or both racing on the same gauges).
func TestProgressPerJobMetricScopes(t *testing.T) {
	var a, b Progress
	reg := telemetry.NewRegistry()
	if err := a.RegisterMetricsLabeled(reg, "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterMetricsLabeled(reg, "cell-b"); err != nil {
		t.Fatalf("second job's registration collided: %v", err)
	}
	// The old single-scope path still works alongside labeled scopes.
	var unscoped Progress
	if err := unscoped.RegisterMetrics(reg); err != nil {
		t.Fatalf("unlabeled registration alongside labeled ones: %v", err)
	}
	// Re-registering the same scope is still a loud failure, not a
	// silent overwrite.
	var dup Progress
	if err := dup.RegisterMetricsLabeled(reg, "cell-a"); err == nil {
		t.Fatal("duplicate job scope registered without error")
	}

	a.Refs.Add(11)
	b.Refs.Add(22)
	unscoped.Refs.Add(33)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`dsmnc_refs_applied_total{job="cell-a"} 11`,
		`dsmnc_refs_applied_total{job="cell-b"} 22`,
		"\ndsmnc_refs_applied_total 33",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
