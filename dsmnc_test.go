package dsmnc

import (
	"errors"
	"testing"

	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/workload"
)

func testOptions() Options {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleTest
	return opt
}

func mustRun(t *testing.T, b *workload.Bench, sys System, opt Options) Result {
	t.Helper()
	res, err := Run(b, sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustExp(t *testing.T, fn func(Options) (Experiment, error), opt Options) Experiment {
	t.Helper()
	exp, err := fn(opt)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opt := DefaultOptions()
	if opt.Geometry != (memsys.Geometry{Clusters: 8, ProcsPerCluster: 4}) {
		t.Fatalf("geometry %+v", opt.Geometry)
	}
	if opt.L1Bytes != 16<<10 || opt.L1Ways != 2 {
		t.Fatalf("L1 %d/%d-way", opt.L1Bytes, opt.L1Ways)
	}
	if opt.Latencies != stats.DefaultLatencies() {
		t.Fatal("latencies differ from Table 2")
	}
}

func TestSystemPresets(t *testing.T) {
	cases := []struct {
		sys  System
		tech stats.NCTech
	}{
		{Base(), stats.NCTechNone},
		{NCS(), stats.NCTechSRAM},
		{InfiniteDRAM(), stats.NCTechDRAM},
		{NCD(), stats.NCTechDRAM},
		{NC(16 << 10), stats.NCTechSRAM},
		{VB(16 << 10), stats.NCTechSRAM},
		{VP(16 << 10), stats.NCTechSRAM},
	}
	for _, c := range cases {
		if c.sys.Tech() != c.tech {
			t.Errorf("%s: tech = %v, want %v", c.sys.Name, c.sys.Tech(), c.tech)
		}
	}
	if NCD().NCBytes != 512<<10 {
		t.Fatal("NCD is not 512KB")
	}
	if s := VXPFrac(16<<10, 5, 64); s.Threshold != 64 || s.PCFraction != 5 {
		t.Fatalf("VXPFrac = %+v", s)
	}
	if s := NCPFrac(16<<10, 7); s.Name != "ncp7" || !s.Adaptive {
		t.Fatalf("NCPFrac = %+v", s)
	}
}

func TestRunProducesConsistentCounts(t *testing.T) {
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	res := mustRun(t, b, Base(), opt)
	if res.Refs == 0 || res.Counters.Refs.Total() != res.Refs {
		t.Fatalf("refs %d vs counters %d", res.Refs, res.Counters.Refs.Total())
	}
	// Every reference is satisfied somewhere.
	c := &res.Counters
	satisfied := c.L1Hits.Total() + c.C2C.Total() + c.LocalC2C.Total() +
		c.NCHits.Total() + c.PCHits.Total() + c.LocalMem.Total() + c.Remote().Total()
	if satisfied != res.Refs {
		t.Fatalf("satisfied %d != refs %d", satisfied, res.Refs)
	}
	if res.System != "base" || res.Bench != "FFT" {
		t.Fatalf("labels %s/%s", res.System, res.Bench)
	}
}

func TestRunDeterministic(t *testing.T) {
	opt := testOptions()
	b := workload.Radix(opt.Scale)
	a := mustRun(t, b, VB(16<<10), opt)
	bb := mustRun(t, b, VB(16<<10), opt)
	if a.Counters != bb.Counters {
		t.Fatal("identical runs diverged")
	}
}

// Shape check: the victim cache can never make things worse than no NC
// (paper §3.1 — inclusion is never maintained), and an infinite SRAM NC
// leaves only necessary misses.
func TestVictimNeverWorseAndNCSOnlyNecessary(t *testing.T) {
	opt := testOptions()
	for _, b := range workload.All(opt.Scale) {
		base := mustRun(t, b, Base(), opt)
		vb := mustRun(t, b, VB(16<<10), opt)
		ncs := mustRun(t, b, NCS(), opt)

		br := base.Counters.Remote().Total()
		vr := vb.Counters.Remote().Total()
		// Allow a sliver of slack: mastership/downgrade interactions can
		// shift a handful of events.
		if float64(vr) > 1.02*float64(br)+50 {
			t.Errorf("%s: vb16 remote misses %d exceed base %d", b.Name, vr, br)
		}
		if cap := ncs.Counters.RemoteCapacity().Total(); cap != 0 {
			t.Errorf("%s: infinite NC left %d capacity misses", b.Name, cap)
		}
		// NCS absorbs victim write-backs; only coherence flushes (read
		// interventions on dirty blocks) may still cross the network.
		if ncs.Counters.WritebacksHome > base.Counters.WritebacksHome {
			t.Errorf("%s: infinite NC write-backs %d exceed base %d",
				b.Name, ncs.Counters.WritebacksHome, base.Counters.WritebacksHome)
		}
	}
}

// Shape check (Figure 4): the victim cache outperforms the
// dirty-inclusion nc organization, dramatically so on Radix.
func TestVictimBeatsInclusionOnRadix(t *testing.T) {
	opt := testOptions()
	b := workload.Radix(opt.Scale)
	nc := mustRun(t, b, NC(16<<10), opt)
	vb := mustRun(t, b, VB(16<<10), opt)
	ncMiss := nc.MissRatios().Total()
	vbMiss := vb.MissRatios().Total()
	if vbMiss >= ncMiss {
		t.Fatalf("Radix: vb %.3f%% not better than nc %.3f%%", vbMiss, ncMiss)
	}
}

// Shape check (Figure 9, FFT): with mostly necessary misses, no NC at
// all beats an infinite DRAM NC.
func TestFFTBaseBeatsInfiniteDRAM(t *testing.T) {
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	base := mustRun(t, b, Base(), opt)
	inf := mustRun(t, b, InfiniteDRAM(), opt)
	if base.Stall().Total() >= inf.Stall().Total() {
		t.Fatalf("FFT: base stall %d not below infinite-DRAM stall %d",
			base.Stall().Total(), inf.Stall().Total())
	}
}

func TestPageCacheSystemsRelocate(t *testing.T) {
	// A 64 KB region streamed by every processor overflows the 16 KB
	// caches: repeated passes are pure remote capacity misses for the
	// seven non-home clusters, which must push the counters past the
	// threshold and earn page-cache hits.
	opt := testOptions()
	b := workload.RemoteStream(64<<10, 8)
	res := mustRun(t, b, NCPFrac(16<<10, 2), opt)
	if res.Counters.Relocations == 0 {
		t.Fatal("ncp never relocated a page on a thrashing remote stream")
	}
	if res.Counters.PCHits.Total() == 0 {
		t.Fatal("ncp page cache never hit")
	}
	// Page-cache hits must reduce remote misses relative to base.
	base := mustRun(t, b, Base(), opt)
	if res.Counters.Remote().Total() >= base.Counters.Remote().Total() {
		t.Fatal("page cache did not reduce remote misses")
	}
}

func TestVxpRelocates(t *testing.T) {
	opt := testOptions()
	b := workload.RemoteStream(64<<10, 8)
	// A full-size page cache (1/1 of the data set): pages relocate once
	// and then serve hits, isolating the vxp trigger path from LRM churn.
	res := mustRun(t, b, VXPFrac(16<<10, 1, 32), opt)
	if res.Counters.Relocations == 0 {
		t.Fatal("vxp never relocated")
	}
	if res.Counters.PCHits.Total() == 0 {
		t.Fatal("vxp page cache never hit")
	}
}

func TestBuildUnknownNCError(t *testing.T) {
	_, err := Build(workload.FFT(workload.ScaleTest), System{NC: NCKind(99)}, testOptions())
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("Build(unknown NC) error = %v, want ErrConfig", err)
	}
}

func TestTable3(t *testing.T) {
	opt := testOptions()
	rows := Table3(opt)
	if len(rows) != 8 {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Refs == 0 || r.OurMB <= 0 || r.PaperMB <= 0 {
			t.Errorf("row %+v incomplete", r)
		}
		if r.ReadPct <= 0 || r.ReadPct >= 100 {
			t.Errorf("%s: read%% = %v", r.Name, r.ReadPct)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if exps[id] == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestFig4ExperimentStructure(t *testing.T) {
	opt := testOptions()
	exp := mustExp(t, Fig4, opt)
	if exp.ID != "fig4" || len(exp.Systems) != 2 {
		t.Fatalf("exp = %+v", exp)
	}
	if len(exp.Rows) != 8 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	for _, row := range exp.Rows {
		if len(row.Values) != 2 {
			t.Fatalf("%s: %d values", row.Bench, len(row.Values))
		}
		for _, v := range row.Values {
			if v.Total() <= 0 {
				t.Errorf("%s: empty bar", row.Bench)
			}
		}
	}
}

func TestFig9Normalization(t *testing.T) {
	opt := testOptions()
	exp := mustExp(t, Fig9, opt)
	if len(exp.Systems) != 9 {
		t.Fatalf("fig9 systems = %v", exp.Systems)
	}
	for _, row := range exp.Rows {
		for i, v := range row.Values {
			if v.Norm <= 0 {
				t.Errorf("%s/%s: norm = %v", row.Bench, exp.Systems[i], v.Norm)
			}
		}
		// NCS must be the best or near-best system everywhere.
		ncs := row.Values[1].Norm
		if ncs > 1.05 {
			t.Errorf("%s: NCS normalized stall %.3f > 1", row.Bench, ncs)
		}
	}
}

func TestValueTotal(t *testing.T) {
	v := Value{Read: 1, Write: 2, Reloc: 3}
	if v.Total() != 6 {
		t.Fatal("Value.Total")
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 1: "1", 42: "42", 512: "512"} {
		if itoa(n) != want {
			t.Errorf("itoa(%d) = %q", n, itoa(n))
		}
	}
}

func TestFig3Structure(t *testing.T) {
	exp := mustExp(t, Fig3, testOptions())
	if len(exp.Systems) != 9 {
		t.Fatalf("fig3 systems = %v, want 3 assoc x 3 NC sizes", exp.Systems)
	}
	if exp.Systems[0] != "1w-vb0" || exp.Systems[8] != "4w-vb16" {
		t.Fatalf("fig3 labels = %v", exp.Systems)
	}
	for _, row := range exp.Rows {
		if len(row.Values) != 9 {
			t.Fatalf("%s: %d values", row.Bench, len(row.Values))
		}
		// More associativity with the same NC must not increase misses
		// much (allow small protocol-noise slack).
		v1w := row.Values[0].Total()
		v4w := row.Values[6].Total()
		if v4w > v1w*1.10+0.2 {
			t.Errorf("%s: 4-way (%.3f) much worse than direct-mapped (%.3f)", row.Bench, v4w, v1w)
		}
	}
}

func TestFig6Structure(t *testing.T) {
	exp := mustExp(t, Fig6, testOptions())
	want := []string{"ncp5-adaptive", "ncp5-fixed32", "ncp20-adaptive", "ncp20-fixed32"}
	if len(exp.Systems) != len(want) {
		t.Fatalf("fig6 systems = %v", exp.Systems)
	}
	for i, w := range want {
		if exp.Systems[i] != w {
			t.Fatalf("fig6 systems = %v", exp.Systems)
		}
	}
	// The adaptive policy never does worse than fixed on the stacked
	// total (it only suppresses relocations).
	for _, row := range exp.Rows {
		if a, f := row.Values[2].Total(), row.Values[3].Total(); a > f*1.15+0.2 {
			t.Errorf("%s: adaptive (%.3f) worse than fixed (%.3f) at 1/20", row.Bench, a, f)
		}
	}
}

func TestFig7Structure(t *testing.T) {
	exp := mustExp(t, Fig7, testOptions())
	if len(exp.Systems) != 12 {
		t.Fatalf("fig7 systems = %v", exp.Systems)
	}
	for _, row := range exp.Rows {
		// The victim NC columns must not exceed the no-NC columns at the
		// same page-cache size (the paper's Figure 7 ordering), modulo
		// small noise.
		for i := 0; i < 4; i++ {
			pcOnly := row.Values[i].Total()
			vbp := row.Values[8+i].Total()
			if vbp > pcOnly*1.10+0.2 {
				t.Errorf("%s[%d]: vbp %.3f worse than pc-only %.3f", row.Bench, i, vbp, pcOnly)
			}
		}
	}
}

func TestFig11Structure(t *testing.T) {
	exp := mustExp(t, Fig11, testOptions())
	if len(exp.Systems) != 3 {
		t.Fatalf("fig11 systems = %v", exp.Systems)
	}
	for _, row := range exp.Rows {
		for i, v := range row.Values {
			if v.Norm <= 0 {
				t.Errorf("%s/%s: norm %v", row.Bench, exp.Systems[i], v.Norm)
			}
		}
	}
}

func TestAblationOStateNeverWorseOnWritebacks(t *testing.T) {
	// The O state exists to remove downgrade write-backs; the MOESIR
	// system must never generate more network write-backs than MESIR.
	opt := testOptions()
	for _, name := range []string{"Ocean", "Radix"} {
		b := workload.ByName(name, opt.Scale)
		mesir := mustRun(t, b, VB(16<<10), opt)
		mo := VB(16 << 10)
		mo.MOESI = true
		moesir := mustRun(t, b, mo, opt)
		if moesir.Counters.DowngradeWB != 0 {
			t.Errorf("%s: MOESI counted %d downgrade write-backs", name, moesir.Counters.DowngradeWB)
		}
		// The dirty data reaches home either way — MESI at downgrade
		// time, MOESI at O-victimization time — so totals should agree
		// within protocol-timing noise (the paper's "very little
		// benefit").
		hi := float64(mesir.Counters.WritebacksHome)*1.10 + 50
		if float64(moesir.Counters.WritebacksHome) > hi {
			t.Errorf("%s: MOESI write-backs %d far above MESI %d", name,
				moesir.Counters.WritebacksHome, mesir.Counters.WritebacksHome)
		}
	}
}

func TestAlternateGeometries(t *testing.T) {
	// Nothing may assume the paper's 8x4: run a quick workload over
	// several topologies.
	for _, geo := range []memsys.Geometry{
		{Clusters: 2, ProcsPerCluster: 2},
		{Clusters: 4, ProcsPerCluster: 8},
		{Clusters: 16, ProcsPerCluster: 2},
	} {
		opt := testOptions()
		opt.Geometry = geo
		b := workload.RemoteStream(32<<10, 2)
		res := mustRun(t, b, VB(16<<10), opt)
		if res.Refs == 0 {
			t.Errorf("%+v: no refs", geo)
		}
		if len(res.PerCluster) != geo.Clusters {
			t.Errorf("%+v: PerCluster = %d", geo, len(res.PerCluster))
		}
		var sum int64
		for _, cc := range res.PerCluster {
			sum += cc.Refs.Total()
		}
		if sum != res.Refs {
			t.Errorf("%+v: per-cluster refs %d != total %d", geo, sum, res.Refs)
		}
	}
}

func TestRunTraceMatchesRun(t *testing.T) {
	// Driving the machine from a materialized trace must reproduce the
	// generator-driven run exactly.
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	direct := mustRun(t, b, VB(16<<10), opt)
	src := b.Source(opt.Geometry, opt.Quantum)
	viaTrace, err := RunTrace(src, "fft-trace", b.SharedBytes, VB(16<<10), opt)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Counters != viaTrace.Counters {
		t.Fatal("trace-driven run diverged from generator-driven run")
	}
}

func TestContentionAblationRanks(t *testing.T) {
	opt := testOptions()
	exp := mustExp(t, AblationContention, opt)
	if len(exp.Systems) != 4 {
		t.Fatalf("systems = %v", exp.Systems)
	}
	for _, row := range exp.Rows {
		for i, v := range row.Values {
			if v.Norm <= 0 {
				t.Errorf("%s/%s: norm %v", row.Bench, exp.Systems[i], v.Norm)
			}
			// Contention can only lengthen stalls: the corrected stall
			// must be >= the flat model's.
			flat := Value{Stall: v.Stall}
			_ = flat
		}
	}
}

func TestOriginSystem(t *testing.T) {
	opt := testOptions()
	b := workload.Raytrace(opt.Scale) // read-shared scene: replication territory
	res := mustRun(t, b, Origin(), opt)
	if res.Counters.Replications == 0 {
		t.Fatal("Origin never replicated the read-only scene")
	}
	if res.Counters.ReplicaHits.Total() == 0 {
		t.Fatal("replicas never served a read")
	}
	base := mustRun(t, b, Base(), opt)
	if res.Counters.Remote().Total() >= base.Counters.Remote().Total() {
		t.Fatal("replication did not reduce remote misses")
	}
}
