package dsmnc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dsmnc/internal/sim"
	"dsmnc/stats"
	"dsmnc/trace"
	"dsmnc/workload"
)

// This file regenerates every table and figure of the paper's evaluation
// (§6). Each FigN function runs the figure's systems over the eight
// benchmarks in parallel and returns an Experiment whose rows mirror the
// paper's bar groups. EXPERIMENTS.md records the measured outcomes next
// to the paper's.

// Value is one bar of a figure: the miss-ratio decomposition for
// Figures 3-8, plus the normalized metric for Figures 9-11.
type Value struct {
	Read  float64 // remote read misses per shared reference, %
	Write float64 // remote write misses per shared reference, %
	Reloc float64 // relocation overhead as equivalent misses, %

	Stall   stats.Stall   // raw remote read stall (Figures 9, 11)
	Traffic stats.Traffic // raw remote traffic (Figure 10)
	Norm    float64       // metric normalized to the figure's baseline
}

// Total returns the stacked miss-ratio bar height.
func (v Value) Total() float64 { return v.Read + v.Write + v.Reloc }

// Row is one benchmark's bar group.
type Row struct {
	Bench  string
	Values []Value
}

// CellFailure records one failed (benchmark, system) cell of a sweep:
// a configuration error, a protocol invariant violation, a timeout, or
// a recovered panic. Under Options.KeepGoing the sweep completes and
// collects these; otherwise the first one fails the experiment.
type CellFailure struct {
	Bench  string
	System string
	Row    int
	Col    int
	Err    error
	// Attempts is how many times the cell ran before the failure was
	// declared final (1 unless Options.Retries re-ran it).
	Attempts int
}

// String formats the failure for diagnostics.
func (f CellFailure) String() string {
	if f.Attempts > 1 {
		return fmt.Sprintf("%s/%s: %v (after %d attempts)", f.Bench, f.System, f.Err, f.Attempts)
	}
	return fmt.Sprintf("%s/%s: %v", f.Bench, f.System, f.Err)
}

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID      string // "fig3" ... "fig11"
	Title   string
	Metric  string   // "miss-ratio %", "normalized stall", "normalized traffic"
	Systems []string // bar labels within each group
	Rows    []Row    // one per benchmark
	// Failed lists the cells that did not complete (KeepGoing runs
	// only); their Values stay zero.
	Failed []CellFailure
}

// FailedCell reports the failure for (row, col), if any.
func (e *Experiment) FailedCell(row, col int) (CellFailure, bool) {
	for _, f := range e.Failed {
		if f.Row == row && f.Col == col {
			return f, true
		}
	}
	return CellFailure{}, false
}

// runJob is one (bench, system, options) simulation.
type runJob struct {
	bench *workload.Bench
	sys   System
	opt   Options
	row   int
	col   int
}

// ErrCellPanic marks a sweep cell whose simulation panicked; the panic
// is recovered into this sentinel so the sweep survives and the retry
// logic can treat the cell as transiently failed.
var ErrCellPanic = errors.New("dsmnc: cell panicked")

// safeRun executes one cell attempt through the exported RunCell engine
// (panic recovery, per-cell timeout), after consulting the test-only
// fault gate, so one poisoned cell cannot take down a whole sweep.
func safeRun(exp string, j runJob) (res Result, err error) {
	// RunCell recovers its own panics; this recover additionally covers
	// the fault gate, which deliberately panics in the injection tests.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrCellPanic, r)
		}
	}()
	if gate := j.opt.cellGate; gate != nil {
		if err := gate(exp, j.bench.Name, j.sys.Name); err != nil {
			return Result{}, err
		}
	}
	return RunCell(context.Background(), exp, j.bench, j.sys, j.opt)
}

// transientFailure reports whether a cell failure is worth retrying:
// timeouts and recovered panics are; configuration errors, protocol
// violations, bad references or traces, and deliberate cancellation are
// permanent and retrying them only repeats the failure.
func transientFailure(err error) bool {
	switch {
	case errors.Is(err, ErrConfig),
		errors.Is(err, sim.ErrProtocol),
		errors.Is(err, sim.ErrBadRef),
		errors.Is(err, trace.ErrBadTrace),
		errors.Is(err, context.Canceled):
		return false
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrCellPanic)
}

// Retry backoff bounds: the first retry waits RetryBackoff (or the
// default), doubling each attempt up to the cap.
const (
	defaultRetryBackoff = 250 * time.Millisecond
	maxRetryBackoff     = 30 * time.Second
)

// runWithRetries runs one cell, re-running transient failures up to
// Options.Retries extra attempts with bounded exponential backoff. It
// returns the attempt count alongside the final outcome.
func runWithRetries(exp string, j runJob) (Result, int, error) {
	backoff := j.opt.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	attempts := 0
	for {
		attempts++
		res, err := safeRun(exp, j)
		if err == nil || attempts > j.opt.Retries || !transientFailure(err) {
			return res, attempts, err
		}
		time.Sleep(backoff)
		if backoff < maxRetryBackoff {
			backoff *= 2
		}
	}
}

// runMatrix executes all jobs of experiment exp in parallel and
// collects results by (row, col). Failed cells are returned separately;
// unless the jobs ran with KeepGoing, the first failure (in row-major
// order) is returned as the error. With Options.Journal, cells the
// journal already holds are restored instead of re-run, and every
// freshly-finished cell is appended before it counts as done.
func runMatrix(exp string, jobs []runJob, rows, cols int) ([][]Result, []CellFailure, error) {
	out := make([][]Result, rows)
	for i := range out {
		out[i] = make([]Result, cols)
	}
	// A sampler or event trace is a single-run instrument: parallel cells
	// would interleave their series into nonsense. Refuse loudly.
	if len(jobs) > 1 {
		for _, j := range jobs {
			if j.opt.Sampler != nil || j.opt.EventTrace != nil {
				return out, nil, fmt.Errorf("%w: Options.Sampler/EventTrace attach to a single run, not a %d-cell sweep",
					ErrConfig, len(jobs))
			}
		}
	}
	// Resume pass: restore journaled cells, keep the rest. A record
	// computed under different options poisons the whole resume rather
	// than silently mixing incompatible results.
	todo := make([]runJob, 0, len(jobs))
	for _, j := range jobs {
		if j.opt.Journal == nil {
			todo = append(todo, j)
			continue
		}
		res, ok, err := j.opt.Journal.lookup(exp, j.bench.Name, j.sys.Name, j.opt.fingerprint())
		if err != nil {
			return out, nil, err
		}
		if ok {
			out[j.row][j.col] = res
			if p := j.opt.Progress; p != nil {
				p.CellsTotal.Add(1)
				p.CellsDone.Add(1)
			}
			continue
		}
		todo = append(todo, j)
	}
	jobs = todo
	if len(jobs) > 0 {
		if p := jobs[0].opt.Progress; p != nil {
			p.CellsTotal.Add(int64(len(jobs)))
		}
	}
	ch := make(chan runJob)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed []CellFailure
	keepGoing := true
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				res, attempts, err := runWithRetries(exp, j)
				if p := j.opt.Progress; p != nil && attempts > 1 {
					p.CellsRetried.Add(int64(attempts - 1))
				}
				if err == nil && j.opt.Journal != nil {
					// The cell is only done once it is durable: a failed
					// append degrades it to a failure so the operator
					// learns the journal is broken before trusting it.
					err = j.opt.Journal.append(journalRecord{
						Exp: exp, Bench: j.bench.Name, System: j.sys.Name,
						Fingerprint: j.opt.fingerprint(), Result: res,
					})
					if err == nil && j.opt.Progress != nil {
						j.opt.Progress.noteJournal()
					}
				}
				if p := j.opt.Progress; p != nil {
					p.CellsDone.Add(1)
				}
				if err != nil {
					if p := j.opt.Progress; p != nil {
						p.CellsFailed.Add(1)
					}
					mu.Lock()
					failed = append(failed, CellFailure{
						Bench: j.bench.Name, System: j.sys.Name,
						Row: j.row, Col: j.col, Err: err, Attempts: attempts,
					})
					if !j.opt.KeepGoing {
						keepGoing = false
					}
					mu.Unlock()
					continue
				}
				out[j.row][j.col] = res
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	sort.Slice(failed, func(i, k int) bool {
		if failed[i].Row != failed[k].Row {
			return failed[i].Row < failed[k].Row
		}
		return failed[i].Col < failed[k].Col
	})
	if len(failed) > 0 && !keepGoing {
		f := failed[0]
		return out, failed, fmt.Errorf("cell %s/%s failed: %w", f.Bench, f.System, f.Err)
	}
	return out, failed, nil
}

// matrix runs every benchmark against every system with shared options.
func matrix(exp string, benches []*workload.Bench, systems []System, opt Options) ([][]Result, []CellFailure, error) {
	var jobs []runJob
	for r, b := range benches {
		for c, s := range systems {
			jobs = append(jobs, runJob{bench: b, sys: s, opt: opt, row: r, col: c})
		}
	}
	return runMatrix(exp, jobs, len(benches), len(systems))
}

func ratioValue(res Result) Value {
	if res.Refs == 0 {
		return Value{} // failed (or empty) cell: keep the bar at zero
	}
	rt := res.MissRatios()
	return Value{
		Read: rt.ReadMissPct, Write: rt.WriteMissPct, Reloc: rt.RelocPct,
		Stall: res.Stall(), Traffic: res.Traffic(),
	}
}

// Sweep runs every benchmark in benches against every system in systems
// and collects the miss-ratio decomposition of each cell. It is the
// generic engine behind the figure drivers, exported for custom design
// sweeps. With opt.KeepGoing, failing cells are recorded in
// Experiment.Failed instead of aborting the sweep.
func Sweep(id, title string, benches []*workload.Bench, systems []System, opt Options) (Experiment, error) {
	results, failed, err := matrix(id, benches, systems, opt)
	if err != nil {
		return Experiment{}, err
	}
	exp := Experiment{ID: id, Title: title, Metric: "miss-ratio %", Failed: failed}
	for _, s := range systems {
		exp.Systems = append(exp.Systems, s.Name)
	}
	for r, b := range benches {
		row := Row{Bench: b.Name}
		for c := range systems {
			row.Values = append(row.Values, ratioValue(results[r][c]))
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

func ratioExperiment(id, title string, systems []System, opt Options) (Experiment, error) {
	return Sweep(id, title, workload.All(opt.Scale), systems, opt)
}

// Fig3 regenerates Figure 3: cluster miss ratios for processor-cache
// associativities 1/2/4 and victim NC sizes 0, 1 KB, 16 KB.
func Fig3(opt Options) (Experiment, error) {
	benches := workload.All(opt.Scale)
	assocs := []int{1, 2, 4}
	ncSizes := []int{0, 1 << 10, 16 << 10}
	labels := []string{"vb0", "vb1", "vb16"}

	var jobs []runJob
	var systems []string
	col := 0
	for _, ways := range assocs {
		for si, ncb := range ncSizes {
			o := opt
			o.L1Ways = ways
			sys := Base()
			sys.Name = labels[si]
			if ncb > 0 {
				sys = VB(ncb)
				sys.Name = labels[si]
			}
			sys.Name = itoa(ways) + "w-" + sys.Name
			systems = append(systems, sys.Name)
			for r, b := range benches {
				jobs = append(jobs, runJob{bench: b, sys: sys, opt: o, row: r, col: col})
			}
			col++
		}
	}
	results, failed, err := runMatrix("fig3", jobs, len(benches), col)
	if err != nil {
		return Experiment{}, err
	}
	exp := Experiment{
		ID:      "fig3",
		Title:   "Effects of the network victim cache on the cluster remote miss ratio",
		Metric:  "miss-ratio %",
		Systems: systems,
		Failed:  failed,
	}
	for r, b := range benches {
		row := Row{Bench: b.Name}
		for c := 0; c < col; c++ {
			row.Values = append(row.Values, ratioValue(results[r][c]))
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// Fig4 regenerates Figure 4: inclusion (nc) versus victim (vb) NCs.
func Fig4(opt Options) (Experiment, error) {
	return ratioExperiment("fig4",
		"Cluster miss ratios for different ways of integrating the NC",
		[]System{NC(16 << 10), VB(16 << 10)}, opt)
}

// Fig5 regenerates Figure 5: block- versus page-address victim indexing.
func Fig5(opt Options) (Experiment, error) {
	return ratioExperiment("fig5",
		"Cluster miss ratios for different ways of indexing the victim cache",
		[]System{VB(16 << 10), VP(16 << 10)}, opt)
}

// Fig6 regenerates Figure 6: adaptive versus fixed relocation threshold
// for ncp5. Because this reproduction's traces are far shorter than the
// paper's, the ncp5 page cache rarely completes a monitoring window; the
// 1/20 page-cache columns are added per the paper's own remark that
// "with smaller page caches, thrashing occurs in other applications as
// well" — there the adaptive policy visibly backs the thrashing off.
func Fig6(opt Options) (Experiment, error) {
	mk := func(frac int, adaptive bool) System {
		s := NCPFrac(16<<10, frac)
		if adaptive {
			s.Name += "-adaptive"
		} else {
			s.Name += "-fixed32"
			s.Adaptive = false
		}
		return s
	}
	return ratioExperiment("fig6",
		"Adaptive vs fixed (32) relocation threshold policies",
		[]System{mk(5, true), mk(5, false), mk(20, true), mk(20, false)}, opt)
}

// Fig7 regenerates Figure 7: systems with page caches (no NC, ncp, vbp)
// at page-cache sizes 0, 1/9, 1/7 and 1/5 of the data set.
func Fig7(opt Options) (Experiment, error) {
	var systems []System
	for _, frac := range []int{0, 9, 7, 5} {
		if frac == 0 {
			s := Base()
			s.Name = "pc0"
			systems = append(systems, s)
		} else {
			systems = append(systems, PCOnly(frac))
		}
	}
	for _, frac := range []int{0, 9, 7, 5} {
		if frac == 0 {
			s := NC(16 << 10)
			s.Name = "ncp0"
			systems = append(systems, s)
		} else {
			s := NCPFrac(16<<10, frac)
			systems = append(systems, s)
		}
	}
	for _, frac := range []int{0, 9, 7, 5} {
		if frac == 0 {
			s := VB(16 << 10)
			s.Name = "vbp0"
			systems = append(systems, s)
		} else {
			systems = append(systems, VBPFrac(16<<10, frac))
		}
	}
	return ratioExperiment("fig7",
		"Cluster miss ratios for systems with page caches",
		systems, opt)
}

// Fig8 regenerates Figure 8: victim indexing with a 1/5 page cache.
func Fig8(opt Options) (Experiment, error) {
	return ratioExperiment("fig8",
		"Cluster miss ratios with page cache: block vs page victim indexing",
		[]System{VBPFrac(16<<10, 5), VPPFrac(16<<10, 5)}, opt)
}

// fig9Systems are the bars of Figures 9 and 10: the 512 KB-DRAM
// comparison plus the proportional (1/5) page caches.
func fig9Systems() []System {
	const pc512 = 512 << 10
	return []System{
		Base(),
		NCS(),
		NCD(),
		NCP(16<<10, pc512),
		VBP(16<<10, pc512),
		VPP(16<<10, pc512),
		NCPFrac(16<<10, 5),
		VBPFrac(16<<10, 5),
		VPPFrac(16<<10, 5),
	}
}

// normalizedExperiment runs the systems plus the infinite-DRAM baseline
// and normalizes the chosen metric.
func normalizedExperiment(id, title, metric string, systems []System, opt Options,
	metricOf func(Result) float64) (Experiment, error) {

	benches := workload.All(opt.Scale)
	all := append([]System{InfiniteDRAM()}, systems...)
	results, failed, err := matrix(id, benches, all, opt)
	if err != nil {
		return Experiment{}, err
	}
	// The baseline occupies column 0 of the matrix but not of the
	// experiment; shift failure columns accordingly (a failed baseline
	// cell reports as column -1).
	for i := range failed {
		failed[i].Col--
	}
	exp := Experiment{ID: id, Title: title, Metric: metric, Failed: failed}
	for _, s := range systems {
		exp.Systems = append(exp.Systems, s.Name)
	}
	for r, b := range benches {
		row := Row{Bench: b.Name}
		base := metricOf(results[r][0])
		for c := 1; c < len(all); c++ {
			v := ratioValue(results[r][c])
			if base > 0 {
				v.Norm = metricOf(results[r][c]) / base
			}
			row.Values = append(row.Values, v)
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// Fig9 regenerates Figure 9: remote read stalls normalized to a system
// with an infinite DRAM NC.
func Fig9(opt Options) (Experiment, error) {
	return normalizedExperiment("fig9", "Remote read stalls", "normalized stall",
		fig9Systems(), opt,
		func(r Result) float64 { return float64(r.Stall().Total()) })
}

// Fig10 regenerates Figure 10: remote data traffic, same systems and
// normalization as Figure 9.
func Fig10(opt Options) (Experiment, error) {
	return normalizedExperiment("fig10", "Remote data traffic", "normalized traffic",
		fig9Systems(), opt,
		func(r Result) float64 { return float64(r.Traffic().Total()) })
}

// Fig11 regenerates Figure 11: directory-controlled relocation counters
// (ncp5) versus victim-cache-controlled counters (vxp5, thresholds 32
// and 64).
func Fig11(opt Options) (Experiment, error) {
	return normalizedExperiment("fig11",
		"Remote read stalls: directory vs victim-cache relocation counters",
		"normalized stall",
		[]System{
			NCPFrac(16<<10, 5),
			VXPFrac(16<<10, 5, 32),
			VXPFrac(16<<10, 5, 64),
		}, opt,
		func(r Result) float64 { return float64(r.Stall().Total()) })
}

// Table3Row is one row of the regenerated Table 3.
type Table3Row struct {
	Name    string
	Params  string
	PaperMB float64
	OurMB   float64
	Refs    int64
	ReadPct float64
}

// Table3 regenerates Table 3: the benchmark roster with shared-memory
// sizes (paper's and this reproduction's) and generated trace volumes.
func Table3(opt Options) []Table3Row {
	var rows []Table3Row
	for _, b := range workload.All(opt.Scale) {
		var reads, total int64
		b.Emit(opt.Geometry, opt.Quantum, func(r trace.Ref) {
			total++
			if r.Op == trace.Read {
				reads++
			}
		})
		rows = append(rows, Table3Row{
			Name:    b.Name,
			Params:  b.Params,
			PaperMB: b.PaperMB,
			OurMB:   float64(b.SharedBytes) / (1 << 20),
			Refs:    total,
			ReadPct: 100 * float64(reads) / float64(total),
		})
	}
	return rows
}

// Experiments maps experiment ids to their drivers.
func Experiments() map[string]func(Options) (Experiment, error) {
	return map[string]func(Options) (Experiment, error){
		"fig3":  Fig3,
		"fig4":  Fig4,
		"fig5":  Fig5,
		"fig6":  Fig6,
		"fig7":  Fig7,
		"fig8":  Fig8,
		"fig9":  Fig9,
		"fig10": Fig10,
		"fig11": Fig11,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
