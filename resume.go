package dsmnc

// Checkpoint/resume at the facade level: RestoreFor rebuilds a machine
// from a snapshot taken by sim.System.Snapshot, and runCell — the
// engine under RunContext and every sweep worker — periodically
// checkpoints in-flight cells so a killed large-scale run resumes from
// its last checkpoint instead of reference zero.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"dsmnc/internal/fsdir"
	"dsmnc/internal/sim"
	"dsmnc/internal/snapshot"
	"dsmnc/trace"
	"dsmnc/workload"
)

// ErrBadSnapshot re-exports the snapshot decoder's sentinel: any
// corrupt, truncated or configuration-mismatched snapshot fails with an
// error wrapping it, never a panic.
var ErrBadSnapshot = snapshot.ErrBadSnapshot

// RestoreFor rebuilds the machine for (sharedBytes, s, opt) — the same
// parameters BuildFor takes — and loads the snapshot read from r into
// it. The snapshot must have been taken from an identically-configured
// machine; corruption or mismatch fails with an ErrBadSnapshot-wrapped
// error, an unbuildable description with ErrConfig.
func RestoreFor(r io.Reader, sharedBytes int64, s System, opt Options) (*sim.System, error) {
	cfg, err := configFor(sharedBytes, s, opt)
	if err != nil {
		return nil, err
	}
	machine, err := sim.Restore(r, cfg)
	if err != nil {
		if errors.Is(err, snapshot.ErrBadSnapshot) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrConfig, err)
	}
	return machine, nil
}

// RunCell is the exported cell engine: it executes one (benchmark,
// system) simulation with every protection a sweep worker gets —
// panics recovered into ErrCellPanic, the Options.CellTimeout bound,
// mid-cell checkpoint/resume, and progress accounting — without
// needing a sweep around it. id scopes mid-cell checkpoints the way an
// experiment id does (pass "" when CheckpointEvery is off). The serving
// layer runs every job through it, so a served cell computes exactly
// what a direct Run of the same options computes.
func RunCell(ctx context.Context, id string, b *workload.Bench, s System, opt Options) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrCellPanic, r)
		}
	}()
	if opt.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.CellTimeout)
		defer cancel()
	}
	return runCell(ctx, id, runJob{bench: b, sys: s, opt: opt})
}

// runCell executes one (benchmark, system) simulation: restore from a
// mid-cell checkpoint when one exists, skip the already-consumed trace
// prefix, poll cancellation off the hot path, count progress, and
// re-checkpoint every Options.CheckpointEvery applied references.
func runCell(ctx context.Context, exp string, j runJob) (Result, error) {
	b, s, opt := j.bench, j.sys, j.opt
	ck := checkpointFor(exp, j)
	var machine *sim.System
	if ck != nil {
		machine = ck.restore(b.SharedBytes, s, opt)
	}
	if machine == nil {
		m, err := Build(b, s, opt)
		if err != nil {
			return Result{}, err
		}
		machine = m
	}
	skip := machine.RefsApplied()
	n := skip
	var seen, sinceCkpt int64
	var firstErr error
	sink := func(r trace.Ref) {
		if firstErr != nil {
			return
		}
		if seen++; seen <= skip {
			return // the checkpoint already consumed this prefix
		}
		if n&1023 == 0 {
			if err := ctx.Err(); err != nil {
				firstErr = err
				return
			}
		}
		if err := machine.Apply(r); err != nil {
			firstErr = err
			return
		}
		n++
		if opt.Progress != nil {
			opt.Progress.Refs.Add(1)
		}
		if ck != nil {
			if sinceCkpt++; sinceCkpt >= opt.CheckpointEvery {
				sinceCkpt = 0
				ck.save(machine)
			}
		}
	}
	if machine.Sharded() {
		// The parallel engine only fans out whole batches, so deliver
		// engine-window-sized ones: accumulate emitted refs into a
		// ParWindow buffer and flush it full. Skip, progress and
		// checkpoint bookkeeping all move to window granularity —
		// behavior is identical (ApplyBatch is bit-identical to a
		// loop of Apply) and cancellation is polled once per flush.
		buf := make([]trace.Ref, 0, sim.ParWindow)
		flush := func() {
			if firstErr != nil || len(buf) == 0 {
				return
			}
			if err := ctx.Err(); err != nil {
				firstErr = err
				return
			}
			done, err := machine.ApplyBatch(buf)
			n += int64(done)
			if opt.Progress != nil {
				opt.Progress.Refs.Add(int64(done))
			}
			buf = buf[:0]
			if err != nil {
				firstErr = err
				return
			}
			if ck != nil {
				if sinceCkpt += int64(done); sinceCkpt >= opt.CheckpointEvery {
					sinceCkpt = 0
					ck.save(machine)
				}
			}
		}
		b.EmitBatch(opt.Geometry, opt.Quantum, func(refs []trace.Ref) {
			for firstErr == nil && len(refs) > 0 {
				if seen < skip {
					take := skip - seen
					if take > int64(len(refs)) {
						take = int64(len(refs))
					}
					seen += take
					refs = refs[take:]
					continue
				}
				take := cap(buf) - len(buf)
				if take > len(refs) {
					take = len(refs)
				}
				buf = append(buf, refs[:take]...)
				seen += int64(take)
				refs = refs[take:]
				if len(buf) == cap(buf) {
					flush()
				}
			}
		})
		flush()
	} else if ck == nil && skip == 0 && opt.Progress == nil {
		// The common fresh-run case: no prefix to skip, no checkpoint
		// slot, no progress counter. Batch delivery drops the per-ref
		// closure dispatch and the per-ref branches those features
		// need; behavior is identical — ApplyBatch is exactly a loop
		// of Apply, and cancellation is still polled every 1024
		// references (each ApplyBatch run is cut at the poll points).
		b.EmitBatch(opt.Geometry, opt.Quantum, func(refs []trace.Ref) {
			if firstErr != nil {
				return
			}
			for i := 0; i < len(refs); {
				if n&1023 == 0 {
					if err := ctx.Err(); err != nil {
						firstErr = err
						return
					}
				}
				run := int(1024 - (n & 1023))
				if rem := len(refs) - i; run > rem {
					run = rem
				}
				done, err := machine.ApplyBatch(refs[i : i+run])
				n += int64(done)
				i += done
				if err != nil {
					firstErr = err
					return
				}
			}
		})
	} else {
		b.Emit(opt.Geometry, opt.Quantum, sink)
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	if ck != nil {
		ck.clear()
	}
	return finish(machine, s, b.Name, n, opt), nil
}

// cellCheckpoint is the on-disk mid-cell snapshot slot of one cell.
type cellCheckpoint struct {
	path string
}

// checkpointFor returns the checkpoint slot for a cell, or nil when
// mid-cell checkpointing is off. The file name hashes the cell's full
// identity (experiment, benchmark, system, options fingerprint) so a
// stale checkpoint from a different configuration can never be loaded
// into the wrong cell.
func checkpointFor(exp string, j runJob) *cellCheckpoint {
	if j.opt.CheckpointEvery <= 0 {
		return nil
	}
	dir := j.opt.CheckpointDir
	if dir == "" && j.opt.Journal != nil {
		dir = filepath.Dir(j.opt.Journal.Path())
	}
	if dir == "" {
		dir = os.TempDir()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", exp, j.bench.Name, j.sys.Name, j.opt.fingerprint())
	return &cellCheckpoint{path: filepath.Join(dir, fmt.Sprintf("dsmnc-%016x.ckpt", h.Sum64()))}
}

// restore loads the checkpointed machine, or returns nil to restart the
// cell from reference zero: a missing, corrupt or mismatched checkpoint
// is not an error, just lost progress.
func (c *cellCheckpoint) restore(sharedBytes int64, s System, opt Options) *sim.System {
	f, err := os.Open(c.path)
	if err != nil {
		return nil
	}
	defer f.Close()
	machine, err := RestoreFor(f, sharedBytes, s, opt)
	if err != nil {
		os.Remove(c.path)
		return nil
	}
	return machine
}

// save atomically replaces the checkpoint: write to a temp file, fsync,
// rename. Best effort — a failed write costs durability, not
// correctness, and never interrupts the cell.
func (c *cellCheckpoint) save(m *sim.System) {
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	err = m.Snapshot(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return
	}
	// The rename is only crash-durable once the directory entry is
	// synced; best effort, like the rest of the checkpoint path.
	_ = fsdir.Sync(filepath.Dir(c.path))
}

// clear removes the checkpoint once its cell has finished.
func (c *cellCheckpoint) clear() { os.Remove(c.path) }

// progressSource forwards a trace source while counting what flows
// through it into a Progress; a source exposing Err() error keeps
// exposing it.
type progressSource struct {
	src trace.Source
	p   *Progress
}

// Next forwards to the wrapped source, bumping the progress counter.
func (s progressSource) Next() (trace.Ref, bool) {
	r, ok := s.src.Next()
	if ok {
		s.p.Refs.Add(1)
	}
	return r, ok
}

// Err surfaces the underlying source's decode error, if it has one.
func (s progressSource) Err() error {
	if fe, ok := s.src.(interface{ Err() error }); ok {
		return fe.Err()
	}
	return nil
}
