GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_baseline.json
BENCH_TOLERANCE ?= 0.10

.PHONY: build test race vet fuzz check resume-smoke serve-smoke crash-smoke fleet-smoke chaos-smoke explore-smoke parallel-smoke telemetry bench bench-check cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The heavy acceptance tests (checked matrix, paper shapes) are
# -short-gated: under the race detector they exceed go test's budget,
# so the race pass runs the short suite and `test` covers the rest.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Fuzz the hardened decoders for a bounded burst each: the binary
# trace reader, the snapshot loader, the job-request decoder, the
# job-ledger loader, the status/readiness wire documents, the fleet
# wire protocol (task dispatch and result) and the design-space spec
# decoder.
fuzz:
	$(GO) test -run '^FuzzReader$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./trace
	$(GO) test -run '^FuzzSnapshot$$' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run '^FuzzEventTrace$$' -fuzz '^FuzzEventTrace$$' -fuzztime $(FUZZTIME) ./telemetry
	$(GO) test -run '^FuzzJobRequest$$' -fuzz '^FuzzJobRequest$$' -fuzztime $(FUZZTIME) ./serve
	$(GO) test -run '^FuzzLedger$$' -fuzz '^FuzzLedger$$' -fuzztime $(FUZZTIME) ./serve
	$(GO) test -run '^FuzzStatusJSON$$' -fuzz '^FuzzStatusJSON$$' -fuzztime $(FUZZTIME) ./serve
	$(GO) test -run '^FuzzWireRequest$$' -fuzz '^FuzzWireRequest$$' -fuzztime $(FUZZTIME) ./serve
	$(GO) test -run '^FuzzWireResult$$' -fuzz '^FuzzWireResult$$' -fuzztime $(FUZZTIME) ./serve
	$(GO) test -run '^FuzzExploreSpace$$' -fuzz '^FuzzExploreSpace$$' -fuzztime $(FUZZTIME) ./explore

# The checked acceptance matrix: every workload x every principal
# system organization under the coherence invariant checker.
check:
	$(GO) test -run TestCheckedMatrixHasNoViolations .

# The checkpoint/resume acceptance drills: snapshot round trips across
# the principal organizations, the interrupted fig9 sweep replayed from
# its journal, and mid-cell checkpoint recovery.
resume-smoke:
	$(GO) test -run 'TestSnapshotRoundTrip|TestInterruptedSweepResumes|TestCheckpointResumesMidCell' . ./internal/sim

# The serving acceptance drills (docs/serving.md): the scheduler soak
# under the race detector (64 submitters vs a 4-worker pool, bounded
# queue, zero leaked goroutines), the backpressure and forced-drain
# contracts, and the built-binary smoke: start dsmserved, submit the
# Figure-9 base/FFT cell over HTTP, poll to completion, diff the served
# stats against testdata/golden, SIGTERM, clean exit. The full
# served-vs-golden corpus cross-check runs in `test` (TestServedGoldenStats).
serve-smoke:
	$(GO) test -race -run 'TestServeSoak|TestBackpressure|TestDrainRejectsAndForcedDrainCancels' -count=1 ./serve
	$(GO) test -run 'TestServeSmokeBinary' -count=1 ./cmd/dsmserved

# The kill-torture gate (docs/robustness.md §5): build the real
# dsmserved binary race-instrumented, SIGKILL it at every ledger crash
# point, restart on the same ledger, and require zero lost acknowledged
# jobs, zero duplicated completions, and recovered results
# field-identical to testdata/golden.
crash-smoke:
	$(GO) test -run 'TestCrashTorture' -count=1 ./cmd/dsmserved

# The exploration gate (docs/explore.md): the engine end-to-end against
# a real scheduler (enumerate -> prune -> simulate -> frontier, with the
# re-run required byte-identical), the model-vs-simulator cross-
# validation over the committed golden corpus (pruning power, pruning
# safety, Kendall-tau rank agreement), and the built-binary e2e: POST
# /v1/explore, coalesce a duplicate spec, SIGKILL mid-exploration,
# restart on the same ledger, and require the recovered report byte-
# identical to a clean run's.
explore-smoke:
	$(GO) test -run 'TestEngineEndToEnd|TestCrossValidation' -count=1 ./explore
	$(GO) test -run 'TestExploreEndToEndBinary' -count=1 ./cmd/dsmserved

# The fleet torture gate (docs/serving.md "Running a fleet"): build the
# real dsmserved and dsmworker binaries race-instrumented, run a
# coordinator over three worker processes, SIGKILL one and blackhole
# another behind a partition proxy mid-sweep, and require zero lost
# acknowledged jobs, zero duplicate completions, the full golden corpus
# replayed through the fleet field-identical to testdata/golden, a
# slow-but-answering worker keeping its leases, and a full worker
# shedding 429 instead of growing.
fleet-smoke:
	$(GO) test -run 'TestFleetTorture' -count=1 -timeout 20m ./cmd/dsmserved

# The chaos gate (docs/robustness.md §6): soak the lease fabric under
# the race detector with seeded injection of every fault kind — crash,
# stall, slow, drop-result, late-duplicate — plus the breaker-quarantine,
# saturation-shed and golden-determinism drills, and the drain-vs-
# recovery race. Zero lost acknowledged jobs, zero duplicate
# completions, results field-identical to testdata/golden.
chaos-smoke:
	$(GO) test -race -run 'TestChaosTorture|TestDrainRacesRecovery' -count=1 ./serve

# The parallel-engine gate (docs/robustness.md §7): the sharded
# engine's metamorphic, snapshot-split, chunk-cadence and sampler
# suites under the race detector, the -short golden shard sweep (the
# reduced cell matrix, race-instrumented), and the serve/ soak with
# sharded workers. Bit-identity across the full 40-cell corpus runs
# uninstrumented in `test` (TestGoldenStatsSharded).
parallel-smoke:
	$(GO) test -race -run 'TestMetamorphicShardInvariance|TestShardInvarianceSnapshotSplit|TestSharded' -count=1 ./internal/sim
	$(GO) test -race -short -run 'TestGoldenStatsSharded' -count=1 .
	$(GO) test -race -run 'TestServeShardedSoak' -count=1 ./serve

# The telemetry gate: the sampler/trace/metrics package and the
# concurrency-sensitive Progress and end-to-end telemetry tests always
# run under the race detector (docs/observability.md).
telemetry:
	$(GO) test -race ./telemetry
	$(GO) test -race -run 'TestProgress|TestTelemetryEndToEnd' .

# Record a performance baseline: run the bench_test.go suite once and
# commit the result as BENCH_baseline.json so later PRs can show deltas
# (override BENCH_OUT to compare without clobbering the baseline).
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) . > BENCH.txt
	$(GO) run ./cmd/benchjson < BENCH.txt > $(BENCH_OUT)
	@rm -f BENCH.txt
	@echo "wrote $(BENCH_OUT)"

# Compare a fresh benchmark run against the committed baseline and fail
# if any benchmark's ns/op regressed more than BENCH_TOLERANCE (a
# fraction; 0.10 = 10%). Run on a quiet machine — it is not part of
# `make ci` because shared-runner noise would make it flap; it is the
# gate for performance-sensitive PRs (docs/performance.md).
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) . > BENCH_current.txt
	$(GO) run ./cmd/benchjson -check BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) < BENCH_current.txt
	@rm -f BENCH_current.txt

# Coverage floors for the protocol-critical packages: the directory
# implementations and the cluster engine. The floors ratchet up, never
# down (docs/performance.md).
cover:
	@set -e; \
	floor() { \
		pct=$$($(GO) test -cover $$1 | awk -F'coverage: ' '/coverage:/{print $$2}' | awk -F'%' '{print $$1}'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$1"; exit 1; fi; \
		echo "cover: $$1 $$pct% (floor $$2%)"; \
		awk -v p="$$pct" -v f="$$2" 'BEGIN{exit !(p+0 >= f+0)}' || \
			{ echo "cover: $$1 coverage $$pct% is below the $$2% floor"; exit 1; }; \
	}; \
	floor ./internal/directory 45; \
	floor ./internal/core 66; \
	floor ./serve 80; \
	floor ./explore 70

# Tier-1+ gate (ROADMAP.md): everything CI runs.
ci: vet build test race fuzz resume-smoke serve-smoke crash-smoke fleet-smoke chaos-smoke explore-smoke parallel-smoke telemetry cover
