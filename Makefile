GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_baseline.json

.PHONY: build test race vet fuzz check resume-smoke telemetry bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The heavy acceptance tests (checked matrix, paper shapes) are
# -short-gated: under the race detector they exceed go test's budget,
# so the race pass runs the short suite and `test` covers the rest.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Fuzz the hardened decoders for a bounded burst each: the binary
# trace reader and the snapshot loader.
fuzz:
	$(GO) test -run '^FuzzReader$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./trace
	$(GO) test -run '^FuzzSnapshot$$' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run '^FuzzEventTrace$$' -fuzz '^FuzzEventTrace$$' -fuzztime $(FUZZTIME) ./telemetry

# The checked acceptance matrix: every workload x every principal
# system organization under the coherence invariant checker.
check:
	$(GO) test -run TestCheckedMatrixHasNoViolations .

# The checkpoint/resume acceptance drills: snapshot round trips across
# the principal organizations, the interrupted fig9 sweep replayed from
# its journal, and mid-cell checkpoint recovery.
resume-smoke:
	$(GO) test -run 'TestSnapshotRoundTrip|TestInterruptedSweepResumes|TestCheckpointResumesMidCell' . ./internal/sim

# The telemetry gate: the sampler/trace/metrics package and the
# concurrency-sensitive Progress and end-to-end telemetry tests always
# run under the race detector (docs/observability.md).
telemetry:
	$(GO) test -race ./telemetry
	$(GO) test -race -run 'TestProgress|TestTelemetryEndToEnd' .

# Record a performance baseline: run the bench_test.go suite once and
# commit the result as BENCH_baseline.json so later PRs can show deltas
# (override BENCH_OUT to compare without clobbering the baseline).
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) . > BENCH.txt
	$(GO) run ./cmd/benchjson < BENCH.txt > $(BENCH_OUT)
	@rm -f BENCH.txt
	@echo "wrote $(BENCH_OUT)"

# Tier-1+ gate (ROADMAP.md): everything CI runs.
ci: vet build test race fuzz resume-smoke telemetry
