GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The heavy acceptance tests (checked matrix, paper shapes) are
# -short-gated: under the race detector they exceed go test's budget,
# so the race pass runs the short suite and `test` covers the rest.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Fuzz the hardened binary-trace decoder for a bounded burst.
fuzz:
	$(GO) test -run '^FuzzReader$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./trace

# The checked acceptance matrix: every workload x every principal
# system organization under the coherence invariant checker.
check:
	$(GO) test -run TestCheckedMatrixHasNoViolations .

# Tier-1+ gate (ROADMAP.md): everything CI runs.
ci: vet build test race fuzz
