GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz check resume-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The heavy acceptance tests (checked matrix, paper shapes) are
# -short-gated: under the race detector they exceed go test's budget,
# so the race pass runs the short suite and `test` covers the rest.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Fuzz the hardened decoders for a bounded burst each: the binary
# trace reader and the snapshot loader.
fuzz:
	$(GO) test -run '^FuzzReader$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./trace
	$(GO) test -run '^FuzzSnapshot$$' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/sim

# The checked acceptance matrix: every workload x every principal
# system organization under the coherence invariant checker.
check:
	$(GO) test -run TestCheckedMatrixHasNoViolations .

# The checkpoint/resume acceptance drills: snapshot round trips across
# the principal organizations, the interrupted fig9 sweep replayed from
# its journal, and mid-cell checkpoint recovery.
resume-smoke:
	$(GO) test -run 'TestSnapshotRoundTrip|TestInterruptedSweepResumes|TestCheckpointResumesMidCell' . ./internal/sim

# Tier-1+ gate (ROADMAP.md): everything CI runs.
ci: vet build test race fuzz resume-smoke
