package dsmnc

import (
	"fmt"
	"io"

	"dsmnc/internal/report"
	"dsmnc/stats"
)

// WriteTable renders the experiment as a fixed-width table: one row per
// benchmark, one column per system. Miss-ratio experiments show
// read+write+relocation stacks; normalized experiments show the
// normalized metric with the relocation share in parentheses.
func (e Experiment) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s: %s (%s)\n\n", e.ID, e.Title, e.Metric)
	headers := append([]string{"benchmark"}, e.Systems...)
	var rows [][]string
	for _, row := range e.Rows {
		cells := []string{row.Bench}
		for _, v := range row.Values {
			cells = append(cells, e.formatValue(v))
		}
		rows = append(rows, cells)
	}
	report.Table(w, headers, rows)
	fmt.Fprintln(w)
}

func (e Experiment) formatValue(v Value) string {
	if e.normalized() {
		if v.Reloc > 0 {
			return fmt.Sprintf("%.3f (r%.2f%%)", v.Norm, v.Reloc)
		}
		return fmt.Sprintf("%.3f", v.Norm)
	}
	s := fmt.Sprintf("%.3f", v.Read+v.Write)
	if v.Write > 0.0005 {
		s = fmt.Sprintf("%.3f+%.3fw", v.Read, v.Write)
	}
	if v.Reloc > 0.0005 {
		s += fmt.Sprintf("+%.3fr", v.Reloc)
	}
	return s
}

func (e Experiment) normalized() bool {
	return e.Metric == "normalized stall" || e.Metric == "normalized traffic"
}

// WriteChart renders the experiment as ASCII bar groups, one group per
// benchmark, mirroring the paper's figures. Miss-ratio bars stack read
// ('#'), write ('=') and relocation ('~') components.
func (e Experiment) WriteChart(w io.Writer, width int) {
	var groups []report.Group
	for _, row := range e.Rows {
		g := report.Group{Label: row.Bench}
		for i, v := range row.Values {
			b := report.Bar{Label: e.Systems[i]}
			if e.normalized() {
				b.Value = v.Norm
			} else {
				b.Value = v.Total()
				b.Segments = []report.Segment{
					{Rune: '#', Value: v.Read},
					{Rune: '=', Value: v.Write},
					{Rune: '~', Value: v.Reloc},
				}
			}
			g.Bars = append(g.Bars, b)
		}
		groups = append(groups, g)
	}
	title := fmt.Sprintf("%s: %s (%s)", e.ID, e.Title, e.Metric)
	report.Chart(w, title, groups, width)
}

// WriteCSV renders the experiment as CSV with one row per (benchmark,
// system) pair, carrying the full metric decomposition.
func (e Experiment) WriteCSV(w io.Writer) {
	headers := []string{
		"experiment", "benchmark", "system",
		"read_miss_pct", "write_miss_pct", "reloc_pct",
		"stall_memory", "stall_reloc",
		"traffic_read", "traffic_write", "traffic_wb",
		"normalized",
	}
	var rows [][]string
	for _, row := range e.Rows {
		for i, v := range row.Values {
			rows = append(rows, []string{
				e.ID, row.Bench, e.Systems[i],
				report.F(v.Read), report.F(v.Write), report.F(v.Reloc),
				fmt.Sprint(v.Stall.Memory), fmt.Sprint(v.Stall.Relocation),
				fmt.Sprint(v.Traffic.ReadMisses), fmt.Sprint(v.Traffic.WriteMisses),
				fmt.Sprint(v.Traffic.Writebacks),
				report.F(v.Norm),
			})
		}
	}
	report.CSV(w, headers, rows)
}

// WriteTable3 renders the regenerated Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Characteristics of the benchmarks")
	fmt.Fprintln(w)
	headers := []string{"Benchmark", "Parameters", "Shared MB (paper)", "Shared MB (here)", "References", "Reads %"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, r.Params,
			fmt.Sprintf("%.2f", r.PaperMB),
			fmt.Sprintf("%.2f", r.OurMB),
			fmt.Sprint(r.Refs),
			fmt.Sprintf("%.1f", r.ReadPct),
		})
	}
	report.Table(w, headers, cells)
	fmt.Fprintln(w)
}

// WriteTable1 renders the latency-component table (paper Table 1) under
// the given latency set.
func WriteTable1(w io.Writer, lat stats.Latencies) {
	fmt.Fprintln(w, "Table 1: Latency components for remote data references")
	fmt.Fprintln(w)
	headers := []string{"Event", "System", "Components", "Cycles"}
	var cells [][]string
	for _, r := range stats.Table1(lat) {
		cells = append(cells, []string{r.Event, r.System, r.Desc, fmt.Sprint(r.Cycles)})
	}
	report.Table(w, headers, cells)
	fmt.Fprintln(w)
}

// WriteTable2 renders the event-latency table (paper Table 2).
func WriteTable2(w io.Writer, lat stats.Latencies) {
	fmt.Fprintln(w, "Table 2: Latencies for the events in Table 1 (10ns bus cycles)")
	fmt.Fprintln(w)
	report.Table(w, []string{"Event", "Latency"}, [][]string{
		{"DRAM access", fmt.Sprint(lat.DRAMAccess)},
		{"Tag checking", fmt.Sprint(lat.TagCheck)},
		{"Cache-to-cache transfer", fmt.Sprint(lat.CacheToCache)},
		{"Remote access", fmt.Sprint(lat.RemoteAccess)},
		{"Page relocation", fmt.Sprint(lat.PageRelocation)},
	})
	fmt.Fprintln(w)
}
