package dsmnc

// The checkpoint/resume acceptance suite (docs/robustness.md §4):
// facade-level snapshot round-trips across the paper's principal
// organizations, the interrupted-sweep journal drill, retry
// classification, and mid-cell checkpointing.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsmnc/trace"
	"dsmnc/workload"
)

// resumeSystems are the organizations the tentpole contract names.
func resumeSystems() []System {
	return []System{
		Base(), NC(16 << 10), VB(16 << 10), VP(16 << 10), VXPFrac(16<<10, 5, 32),
	}
}

// TestSnapshotRoundTripSystems proves the facade-level resume contract:
// run k references, Snapshot, RestoreFor, run the rest via trace.Skip —
// bit-identical counters versus the uninterrupted run, with the
// coherence checker attached throughout.
func TestSnapshotRoundTripSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("10 checked round trips exceed the race-pass budget")
	}
	opt := testOptions()
	opt.Check = true
	for _, bname := range []string{"FFT", "Radix"} {
		b := workload.ByName(bname, opt.Scale)
		var refs []trace.Ref
		b.Emit(opt.Geometry, opt.Quantum, func(r trace.Ref) { refs = append(refs, r) })
		for _, sys := range resumeSystems() {
			t.Run(bname+"/"+sys.Name, func(t *testing.T) {
				full, err := BuildFor(b.SharedBytes, sys, opt)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := full.Run(trace.NewSliceSource(refs)); err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}

				k := int64(len(refs) / 3)
				part, err := BuildFor(b.SharedBytes, sys, opt)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := part.Run(trace.Limit(trace.NewSliceSource(refs), k)); err != nil {
					t.Fatalf("prefix run: %v", err)
				}
				var buf bytes.Buffer
				if err := part.Snapshot(&buf); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				resumed, err := RestoreFor(&buf, b.SharedBytes, sys, opt)
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				if got := resumed.RefsApplied(); got != k {
					t.Fatalf("RefsApplied = %d, want %d", got, k)
				}
				if _, err := resumed.Run(trace.Skip(trace.NewSliceSource(refs), k)); err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if resumed.Totals() != full.Totals() {
					t.Fatalf("counters diverge:\nresumed %+v\nfull    %+v",
						resumed.Totals(), full.Totals())
				}
			})
		}
	}
}

// TestRestoreForRejectsGarbage: the facade surfaces the snapshot
// sentinel, never a panic, for byte-level damage.
func TestRestoreForRejectsGarbage(t *testing.T) {
	opt := testOptions()
	b := workload.ByName("FFT", opt.Scale)
	if _, err := RestoreFor(bytes.NewReader([]byte("not a snapshot")),
		b.SharedBytes, Base(), opt); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

// TestInterruptedSweepResumes is the end-to-end crash/recovery drill:
// a journaled fig9 sweep is killed after 7 cells via the injected
// per-cell gate, then resumed from the journal; the merged experiment
// must be identical to an uninterrupted run — rows, normalization and
// Failed bookkeeping — having re-executed only the unfinished cells.
func TestInterruptedSweepResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("three fig9 passes are too heavy for -short")
	}
	opt := testOptions()
	want := mustExp(t, Fig9, opt)

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	killed := errors.New("injected mid-sweep kill")
	var starts atomic.Int64
	opt1 := opt
	opt1.Journal = j1
	opt1.cellGate = func(exp, bench, system string) error {
		if starts.Add(1) > 7 {
			return killed
		}
		return nil
	}
	if _, err := Fig9(opt1); !errors.Is(err, killed) {
		t.Fatalf("interrupted sweep error = %v, want the injected kill", err)
	}
	j1.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Completed(); got != 7 {
		t.Fatalf("journal holds %d cells after the kill, want 7", got)
	}
	total := len(workload.All(opt.Scale)) * (len(fig9Systems()) + 1)
	var reruns atomic.Int64
	opt2 := opt
	opt2.Journal = j2
	opt2.cellGate = func(exp, bench, system string) error {
		reruns.Add(1)
		return nil
	}
	got := mustExp(t, Fig9, opt2)
	if n := reruns.Load(); n != int64(total-7) {
		t.Fatalf("resume re-ran %d cells, want %d", n, total-7)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed experiment differs from the uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

// smallSweep is a cheap one-bench, two-system sweep for journal tests.
func smallSweep(t *testing.T, opt Options) Experiment {
	t.Helper()
	benches := []*workload.Bench{workload.FFT(opt.Scale)}
	exp, err := Sweep("journal-test", "journal test sweep", benches,
		[]System{Base(), VB(16 << 10)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestJournalSkipsCompletedCells: a resumed sweep restores journaled
// cells byte-exactly (JSON round trip included) and re-runs nothing.
func TestJournalSkipsCompletedCells(t *testing.T) {
	opt := testOptions()
	want := smallSweep(t, opt)

	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opt1 := opt
	opt1.Journal = j1
	opt1.Progress = &Progress{}
	smallSweep(t, opt1)
	j1.Close()
	if n := opt1.Progress.JournalWrites.Load(); n != 2 {
		t.Fatalf("journal writes = %d, want 2", n)
	}
	if _, ok := opt1.Progress.LastJournalWrite(); !ok {
		t.Fatal("no last-journal-write timestamp")
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var reruns atomic.Int64
	opt2 := opt
	opt2.Journal = j2
	opt2.Progress = &Progress{}
	opt2.cellGate = func(exp, bench, system string) error {
		reruns.Add(1)
		return nil
	}
	got := smallSweep(t, opt2)
	if n := reruns.Load(); n != 0 {
		t.Fatalf("resume re-ran %d cells, want 0", n)
	}
	if done, total := opt2.Progress.CellsDone.Load(), opt2.Progress.CellsTotal.Load(); done != 2 || total != 2 {
		t.Fatalf("progress cells %d/%d, want 2/2", done, total)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal-restored experiment differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalToleratesTornTail: an unterminated final record — the
// leftover of a crash mid-append — is dropped on resume; the intact
// records survive.
func TestJournalToleratesTornTail(t *testing.T) {
	opt := testOptions()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opt1 := opt
	opt1.Journal = j1
	smallSweep(t, opt1)
	j1.Close()

	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"exp":"journal-test","bench":"FF`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer j2.Close()
	if got := j2.Completed(); got != 2 {
		t.Fatalf("completed cells = %d, want the 2 intact records", got)
	}
	// The torn fragment must be gone so the next append lands cleanly.
	if st, err := os.Stat(path); err != nil || st.Size() != intact.Size() {
		t.Fatalf("journal not truncated back to %d bytes: %v %v", intact.Size(), st.Size(), err)
	}
}

// TestJournalRejectsCorruptRecord: terminated garbage is corruption,
// not a torn append, and resume refuses it with the sentinel.
func TestJournalRejectsCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("this is not a record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, true); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("err = %v, want ErrBadJournal", err)
	}
}

// TestJournalRejectsFingerprintMismatch: resuming under different
// result-determining options must fail loudly, not mix results.
func TestJournalRejectsFingerprintMismatch(t *testing.T) {
	opt := testOptions()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opt1 := opt
	opt1.Journal = j1
	smallSweep(t, opt1)
	j1.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt2 := opt
	opt2.Check = true // changes the fingerprint
	opt2.Journal = j2
	benches := []*workload.Bench{workload.FFT(opt2.Scale)}
	_, err = Sweep("journal-test", "journal test sweep", benches,
		[]System{Base(), VB(16 << 10)}, opt2)
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("err = %v, want ErrJournalMismatch", err)
	}
}

// gateSweep runs a one-cell sweep whose gate injects failures.
func gateSweep(t *testing.T, opt Options) (Experiment, error) {
	t.Helper()
	return Sweep("retry-test", "retry test sweep",
		[]*workload.Bench{workload.FFT(opt.Scale)}, []System{Base()}, opt)
}

// TestRetriesTransientFailure: a cell that times out twice and then
// succeeds completes the sweep when Retries covers the failures.
func TestRetriesTransientFailure(t *testing.T) {
	opt := testOptions()
	opt.Retries = 2
	opt.RetryBackoff = time.Millisecond
	var calls atomic.Int64
	opt.cellGate = func(exp, bench, system string) error {
		if calls.Add(1) <= 2 {
			return context.DeadlineExceeded
		}
		return nil
	}
	exp, err := gateSweep(t, opt)
	if err != nil {
		t.Fatalf("sweep failed despite retries: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("cell attempts = %d, want 3", n)
	}
	if exp.Rows[0].Values[0].Total() <= 0 {
		t.Fatal("retried cell produced no result")
	}
}

// TestRetriesExhaustedRecordsAttempts: a cell that never stops timing
// out fails with the attempt count on its CellFailure.
func TestRetriesExhaustedRecordsAttempts(t *testing.T) {
	opt := testOptions()
	opt.KeepGoing = true
	opt.Retries = 2
	opt.RetryBackoff = time.Millisecond
	opt.cellGate = func(exp, bench, system string) error {
		return context.DeadlineExceeded
	}
	exp, err := gateSweep(t, opt)
	if err != nil {
		t.Fatalf("keep-going sweep failed outright: %v", err)
	}
	f, ok := exp.FailedCell(0, 0)
	if !ok {
		t.Fatal("exhausted cell not recorded as failed")
	}
	if !errors.Is(f.Err, context.DeadlineExceeded) {
		t.Fatalf("failure error = %v, want DeadlineExceeded", f.Err)
	}
	if f.Attempts != 3 {
		t.Fatalf("attempts = %d, want 1 run + 2 retries", f.Attempts)
	}
	if !strings.Contains(f.String(), "3 attempts") {
		t.Fatalf("failure string omits attempts: %q", f.String())
	}
}

// TestPermanentFailureNotRetried: configuration errors repeat
// identically, so the retry budget must not touch them.
func TestPermanentFailureNotRetried(t *testing.T) {
	opt := testOptions()
	opt.KeepGoing = true
	opt.Retries = 3
	opt.RetryBackoff = time.Millisecond
	poisoned := System{Name: "poisoned", NC: NCKind(99)}
	exp, err := Sweep("retry-test", "permanent failure sweep",
		[]*workload.Bench{workload.FFT(opt.Scale)}, []System{poisoned}, opt)
	if err != nil {
		t.Fatalf("keep-going sweep failed outright: %v", err)
	}
	f, ok := exp.FailedCell(0, 0)
	if !ok {
		t.Fatal("poisoned cell not recorded as failed")
	}
	if !errors.Is(f.Err, ErrConfig) {
		t.Fatalf("failure error = %v, want ErrConfig", f.Err)
	}
	if f.Attempts != 1 {
		t.Fatalf("permanent failure ran %d times, want 1", f.Attempts)
	}
}

// TestPanickedCellRetried: a recovered panic is transient — the cell
// re-runs and the sweep completes.
func TestPanickedCellRetried(t *testing.T) {
	opt := testOptions()
	opt.Retries = 1
	opt.RetryBackoff = time.Millisecond
	var calls atomic.Int64
	opt.cellGate = func(exp, bench, system string) error {
		if calls.Add(1) == 1 {
			panic("injected cell panic")
		}
		return nil
	}
	if _, err := gateSweep(t, opt); err != nil {
		t.Fatalf("sweep failed despite panic retry: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("cell attempts = %d, want 2", n)
	}
}

// cancelAfterPolls is a context that reports cancellation once its Err
// method has been consulted more than `budget` times — a deterministic
// mid-run kill for the checkpoint tests (runCell polls Err every 1024
// applied references).
type cancelAfterPolls struct {
	context.Context
	budget atomic.Int64
}

func (c *cancelAfterPolls) Err() error {
	if c.budget.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// interruptCell runs one checkpointing cell and kills it after ~1024
// references, leaving a checkpoint file behind.
func interruptCell(t *testing.T, j runJob) {
	t.Helper()
	ctx := &cancelAfterPolls{Context: context.Background()}
	ctx.budget.Store(1)
	if _, err := runCell(ctx, "ckpt-test", j); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted cell error = %v, want context.Canceled", err)
	}
}

// checkpointFiles lists the checkpoint directory.
func checkpointFiles(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ents
}

// TestCheckpointResumesMidCell: kill a checkpointing cell mid-run, run
// it again — it must resume from the checkpoint (not reference zero),
// produce a bit-identical Result, and clean up its checkpoint file.
func TestCheckpointResumesMidCell(t *testing.T) {
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	sys := VB(16 << 10)
	want, err := Run(b, sys, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt2 := opt
	opt2.CheckpointEvery = 256
	opt2.CheckpointDir = dir
	j := runJob{bench: b, sys: sys, opt: opt2}
	interruptCell(t, j)
	if n := len(checkpointFiles(t, dir)); n != 1 {
		t.Fatalf("checkpoint files after kill = %d, want 1", n)
	}

	prog := &Progress{}
	opt2.Progress = prog
	j.opt = opt2
	got, err := runCell(context.Background(), "ckpt-test", j)
	if err != nil {
		t.Fatalf("resumed cell: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
	applied := prog.Refs.Load()
	if applied <= 0 || applied >= want.Refs {
		t.Fatalf("resume applied %d of %d refs; it should skip the checkpointed prefix", applied, want.Refs)
	}
	if n := len(checkpointFiles(t, dir)); n != 0 {
		t.Fatalf("checkpoint files after completion = %d, want 0", n)
	}
}

// TestCorruptCheckpointRestartsCell: a damaged checkpoint is discarded
// silently and the cell restarts from reference zero, still landing on
// the uninterrupted result.
func TestCorruptCheckpointRestartsCell(t *testing.T) {
	opt := testOptions()
	b := workload.FFT(opt.Scale)
	sys := VB(16 << 10)
	want, err := Run(b, sys, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt2 := opt
	opt2.CheckpointEvery = 256
	opt2.CheckpointDir = dir
	j := runJob{bench: b, sys: sys, opt: opt2}
	interruptCell(t, j)
	ents := checkpointFiles(t, dir)
	if len(ents) != 1 {
		t.Fatalf("checkpoint files after kill = %d, want 1", len(ents))
	}
	ckpt := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(ckpt, []byte("damaged beyond recognition"), 0o644); err != nil {
		t.Fatal(err)
	}

	prog := &Progress{}
	opt2.Progress = prog
	j.opt = opt2
	got, err := runCell(context.Background(), "ckpt-test", j)
	if err != nil {
		t.Fatalf("restarted cell: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted result differs from uninterrupted run")
	}
	if applied := prog.Refs.Load(); applied != want.Refs {
		t.Fatalf("restart applied %d refs, want the full %d", applied, want.Refs)
	}
	if n := len(checkpointFiles(t, dir)); n != 0 {
		t.Fatalf("checkpoint files after completion = %d, want 0", n)
	}
}

// TestProgressHeartbeat: the reporter emits the counters it was given.
func TestProgressHeartbeat(t *testing.T) {
	p := &Progress{}
	p.Refs.Add(1000)
	p.CellsTotal.Add(4)
	p.CellsDone.Add(1)
	p.noteJournal()
	var buf bytes.Buffer
	stop := p.Heartbeat(&buf, time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	stop() // waits for the reporter goroutine; buf is safe to read after
	out := buf.String()
	if out == "" {
		t.Fatal("heartbeat emitted nothing")
	}
	for _, want := range []string{"1000 refs", "cells 1/4", "last journal write"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heartbeat %q is missing %q", out, want)
		}
	}
}
