// Command dsmfig regenerates the tables and figures of "The Effectiveness
// of SRAM Network Caches in Clustered DSMs" (Moga & Dubois, HPCA 1998).
//
// Usage:
//
//	dsmfig -exp fig9 [-scale small|medium|large] [-format table|chart|csv]
//	dsmfig -exp table1|table2|table3
//	dsmfig -exp all
//	dsmfig -exp fig9 -journal fig9.jsonl            # durable sweep
//	dsmfig -exp fig9 -journal fig9.jsonl -resume    # finish a killed sweep
//
// Figures print one bar group per benchmark; see EXPERIMENTS.md for how
// each experiment maps to the paper.
//
// Exit status: 0 on success, 1 on a fatal error, 2 on usage errors, and
// 3 when a -keepgoing sweep finished but recorded failed cells (listed
// on stderr).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dsmnc"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp       = flag.String("exp", "", "experiment id: table1|table2|table3|fig3..fig11|all")
		scale     = flag.String("scale", "small", "workload scale: test|small|medium|large")
		format    = flag.String("format", "table", "output format: table|chart|csv")
		width     = flag.Int("width", 48, "chart width in characters")
		quiet     = flag.Bool("q", false, "suppress progress messages")
		keep      = flag.Bool("keepgoing", false, "record failing cells and continue instead of aborting the sweep")
		cellTO    = flag.Duration("timeout", 0, "per-cell time limit (e.g. 5m); 0 means none")
		journal   = flag.String("journal", "", "append each finished sweep cell to this JSONL write-ahead journal")
		resume    = flag.Bool("resume", false, "replay -journal and re-run only the cells it is missing")
		retries   = flag.Int("retries", 0, "retry transiently-failed cells (timeouts, panics) up to N extra times")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot in-flight cells every N applied references; 0 disables")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for mid-cell checkpoints (default: beside the journal)")
		shards    = flag.Int("shards", 0, "parallel engine shards per cell, bit-identical to sequential; 0 sequential, -1 auto")
		progress  = flag.Duration("progress", 0, "print a progress heartbeat at this interval (e.g. 10s); 0 disables")
		metrics   = flag.String("metrics", "", "serve Prometheus metrics and pprof on this address (e.g. :9090, :0 for a free port)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		return 2
	}
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "dsmfig: -resume needs -journal")
		return 2
	}

	opt := dsmnc.DefaultOptions()
	opt.KeepGoing = *keep
	opt.CellTimeout = *cellTO
	opt.Retries = *retries
	opt.CheckpointEvery = *ckptEvery
	opt.CheckpointDir = *ckptDir
	opt.Shards = *shards
	switch *scale {
	case "test":
		opt.Scale = workload.ScaleTest
	case "small":
		opt.Scale = workload.ScaleSmall
	case "medium":
		opt.Scale = workload.ScaleMedium
	case "large":
		opt.Scale = workload.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "dsmfig: unknown scale %q\n", *scale)
		return 2
	}
	if *journal != "" {
		jnl, err := dsmnc.OpenJournal(*journal, *resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmfig: %v\n", err)
			return 1
		}
		defer jnl.Close()
		opt.Journal = jnl
		if !*quiet && *resume {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d cells already journaled\n",
				jnl.Path(), jnl.Completed())
		}
	}
	if *progress > 0 || *metrics != "" {
		opt.Progress = &dsmnc.Progress{}
	}
	if *progress > 0 {
		stop := opt.Progress.Heartbeat(os.Stderr, *progress)
		defer stop()
	}
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		if err := opt.Progress.RegisterMetrics(reg); err != nil {
			fmt.Fprintf(os.Stderr, "dsmfig: %v\n", err)
			return 1
		}
		srv, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmfig: %v\n", err)
			return 1
		}
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "dsmfig: serving metrics on %s (%s)\n", srv.Addr(), srv.URL())
		}
	}

	switch *exp {
	case "table1":
		dsmnc.WriteTable1(os.Stdout, opt.Latencies)
		return 0
	case "table2":
		dsmnc.WriteTable2(os.Stdout, opt.Latencies)
		return 0
	case "table3":
		dsmnc.WriteTable3(os.Stdout, dsmnc.Table3(opt))
		return 0
	}

	drivers := dsmnc.Experiments()
	for id, fn := range dsmnc.Ablations() {
		drivers[id] = fn
	}
	var ids []string
	if *exp == "all" {
		for id := range drivers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if drivers[*exp] == nil {
			fmt.Fprintf(os.Stderr, "dsmfig: unknown experiment %q\n", *exp)
			return 2
		}
		ids = []string{*exp}
	}

	var allFailed []string
	for _, id := range ids {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s at %s scale...\n", id, opt.Scale)
		}
		start := time.Now()
		e, err := drivers[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmfig: %s: %v\n", id, err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		switch *format {
		case "chart":
			e.WriteChart(os.Stdout, *width)
		case "csv":
			e.WriteCSV(os.Stdout)
		default:
			e.WriteTable(os.Stdout)
		}
		for _, f := range e.Failed {
			allFailed = append(allFailed, fmt.Sprintf("%s: %s", id, f))
		}
	}
	if len(allFailed) > 0 {
		fmt.Fprintf(os.Stderr, "dsmfig: %d cell(s) FAILED:\n", len(allFailed))
		for _, s := range allFailed {
			fmt.Fprintf(os.Stderr, "  %s\n", s)
		}
		return 3
	}
	return 0
}
