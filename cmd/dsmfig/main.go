// Command dsmfig regenerates the tables and figures of "The Effectiveness
// of SRAM Network Caches in Clustered DSMs" (Moga & Dubois, HPCA 1998).
//
// Usage:
//
//	dsmfig -exp fig9 [-scale small|medium|large] [-format table|chart|csv]
//	dsmfig -exp table1|table2|table3
//	dsmfig -exp all
//
// Figures print one bar group per benchmark; see EXPERIMENTS.md for how
// each experiment maps to the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id: table1|table2|table3|fig3..fig11|all")
		scale  = flag.String("scale", "small", "workload scale: test|small|medium|large")
		format = flag.String("format", "table", "output format: table|chart|csv")
		width  = flag.Int("width", 48, "chart width in characters")
		quiet  = flag.Bool("q", false, "suppress progress messages")
		keep   = flag.Bool("keepgoing", false, "record failing cells and continue instead of aborting the sweep")
		cellTO = flag.Duration("timeout", 0, "per-cell time limit (e.g. 5m); 0 means none")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opt := dsmnc.DefaultOptions()
	opt.KeepGoing = *keep
	opt.CellTimeout = *cellTO
	switch *scale {
	case "test":
		opt.Scale = workload.ScaleTest
	case "small":
		opt.Scale = workload.ScaleSmall
	case "medium":
		opt.Scale = workload.ScaleMedium
	case "large":
		opt.Scale = workload.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "dsmfig: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	switch *exp {
	case "table1":
		dsmnc.WriteTable1(os.Stdout, opt.Latencies)
		return
	case "table2":
		dsmnc.WriteTable2(os.Stdout, opt.Latencies)
		return
	case "table3":
		dsmnc.WriteTable3(os.Stdout, dsmnc.Table3(opt))
		return
	}

	drivers := dsmnc.Experiments()
	for id, fn := range dsmnc.Ablations() {
		drivers[id] = fn
	}
	var ids []string
	if *exp == "all" {
		for id := range drivers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if drivers[*exp] == nil {
			fmt.Fprintf(os.Stderr, "dsmfig: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s at %s scale...\n", id, opt.Scale)
		}
		start := time.Now()
		e, err := drivers[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmfig: %s: %v\n", id, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		switch *format {
		case "chart":
			e.WriteChart(os.Stdout, *width)
		case "csv":
			e.WriteCSV(os.Stdout)
		default:
			e.WriteTable(os.Stdout)
		}
		for _, f := range e.Failed {
			fmt.Fprintf(os.Stderr, "dsmfig: %s: cell FAILED %s\n", id, f)
		}
	}
}
