// Command dsmworker is one worker node of a dsmnc fleet: a bounded
// local task pool behind the fleet wire protocol, dispatched onto by a
// dsmserved coordinator running one RemoteExecutor fault domain per
// node (docs/serving.md "Running a fleet"). The worker holds no
// durable state — the coordinator's ledger is the source of truth —
// so killing a worker loses nothing: its leases expire and the
// coordinator reassigns the work.
//
// The pool sheds instead of growing: past -slots running plus -queue
// waiting tasks, a dispatch answers 429 and the coordinator retries
// elsewhere with backoff. SIGTERM drains gracefully — intake answers
// 503 while running tasks get -drain to finish (polls keep answering
// so the coordinator collects results right up to exit), then
// stragglers are canceled.
//
// Usage:
//
//	dsmworker [-addr :8091] [-slots N] [-queue N] [-keep 256]
//	          [-drain 30s] [-q]
//
// API (the fleet wire protocol, serve/wire.go):
//
//	POST   /v1/tasks            task dispatch -> 202 admitted, 200 joined,
//	                            409 stale epoch, 412 options-fingerprint
//	                            mismatch, 429 full, 503 draining
//	GET    /v1/tasks/{id}       poll one task at ?epoch=N -> its WireResult;
//	                            404 unknown/evicted, 409 stale epoch
//	DELETE /v1/tasks/{id}       cancel one task at ?epoch=N
//	GET    /readyz              readiness + capacity account (slots/busy/queued)
//	GET    /healthz             liveness: 200 while the process serves HTTP
//	GET    /metrics             Prometheus metrics (dsmnc_serve_worker_*)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dsmnc"
	"dsmnc/serve"
	"dsmnc/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "listen address (:0 picks a free port; the chosen address is printed)")
		slots      = flag.Int("slots", 0, "concurrent task bound; 0 means NumCPU")
		queue      = flag.Int("queue", 0, "tasks admitted beyond the running set before dispatches shed with 429; 0 means 2x slots")
		keep       = flag.Int("keep", 256, "finished tasks (and results) to retain for coordinator polls before evicting the oldest")
		drainGrace = flag.Duration("drain", 30*time.Second, "how long a SIGTERM drain waits before cancelling live tasks")
		quiet      = flag.Bool("q", false, "suppress the startup and shutdown log lines")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("dsmworker: ")

	cfg := serve.WorkerConfig{
		Slots:       *slots,
		QueueDepth:  *queue,
		KeepResults: *keep,
		Options:     dsmnc.DefaultOptions(),
	}
	worker, err := serve.NewWorker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Torture-suite plumbing: DSMNC_WORKER_SLOW_MS delays every task by
	// a fixed amount (respecting cancellation) so the fleet drill can
	// prove a slow-but-reachable worker keeps its leases while a
	// partitioned one loses them.
	if spec := os.Getenv("DSMNC_WORKER_SLOW_MS"); spec != "" {
		ms, err := strconv.Atoi(spec)
		if err != nil || ms < 0 {
			log.Fatalf("DSMNC_WORKER_SLOW_MS=%q: want a non-negative integer", spec)
		}
		worker.SlowDown(time.Duration(ms) * time.Millisecond)
		log.Printf("SLOW MODE (test only): every task delayed %dms", ms)
	}

	reg := telemetry.NewRegistry()
	if err := worker.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           newHandler(worker, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if !*quiet {
		log.Printf("listening on %s (%d slots)", ln.Addr(), worker.Slots())
	}
	// The port-discovery line for scripts (make fleet-smoke): always on
	// stdout, regardless of -q.
	fmt.Printf("dsmworker listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	if !*quiet {
		log.Printf("draining (up to %s)", *drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	forced := worker.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	if forced != nil {
		log.Fatalf("drain deadline hit; live tasks were canceled: %v", forced)
	}
	if !*quiet {
		log.Print("drained cleanly")
	}
}

// newHandler binds the worker pool to the wire protocol over HTTP. Pure
// framing: every status code and body comes from the serve package's
// Worker, which is what the unit suite drives without a socket.
func newHandler(w *serve.Worker, reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	answer := func(rw http.ResponseWriter, code int, body []byte) {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(code)
		_, _ = rw.Write(body)
	}
	// epochOf parses the ?epoch=N query; the worker refuses epoch 0, so
	// a missing or garbage value routes to the same refusal.
	epochOf := func(r *http.Request) uint64 {
		n, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	mux.HandleFunc("POST /v1/tasks", func(rw http.ResponseWriter, r *http.Request) {
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		reader := http.MaxBytesReader(rw, r.Body, serve.MaxWireRequestBytes+1)
		for {
			n, err := reader.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		code, ans := w.Dispatch(body)
		answer(rw, code, ans)
	})
	mux.HandleFunc("GET /v1/tasks/{id}", func(rw http.ResponseWriter, r *http.Request) {
		code, ans := w.Poll(r.PathValue("id"), epochOf(r))
		answer(rw, code, ans)
	})
	mux.HandleFunc("DELETE /v1/tasks/{id}", func(rw http.ResponseWriter, r *http.Request) {
		code, ans := w.CancelTask(r.PathValue("id"), epochOf(r))
		answer(rw, code, ans)
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
		code, ans := w.Ready()
		answer(rw, code, ans)
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.Handle("GET /metrics", reg.Handler())
	return mux
}
