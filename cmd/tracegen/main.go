// Command tracegen materializes benchmark traces in the binary on-disk
// format of package trace, and inspects existing trace files.
//
// Usage:
//
//	tracegen -bench Radix -scale small -o radix.trc
//	tracegen -inspect radix.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"dsmnc/memsys"
	"dsmnc/trace"
	"dsmnc/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to generate")
		scale   = flag.String("scale", "small", "workload scale: test|small|medium|large")
		out     = flag.String("o", "", "output trace file")
		inspect = flag.String("inspect", "", "trace file to summarize")
		quantum = flag.Int("quantum", 4, "interleaving quantum")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	case *bench != "" && *out != "":
		if err := doGenerate(*bench, *scale, *out, *quantum); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "test":
		return workload.ScaleTest, nil
	case "small":
		return workload.ScaleSmall, nil
	case "medium":
		return workload.ScaleMedium, nil
	case "large":
		return workload.ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func doGenerate(bench, scale, out string, quantum int) error {
	sc, err := parseScale(scale)
	if err != nil {
		return err
	}
	b := workload.ByName(bench, sc)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	var werr error
	b.Emit(memsys.DefaultGeometry(), quantum, func(r trace.Ref) {
		if werr == nil {
			werr = w.Write(r)
		}
	})
	if werr != nil {
		return werr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d references, %d bytes (%.2f B/ref)\n",
		out, w.Count(), info.Size(), float64(info.Size())/float64(w.Count()))
	return nil
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	geo := memsys.DefaultGeometry()
	var reads, writes int64
	procs := map[int32]int64{}
	pageSharers := map[memsys.Page]uint64{} // cluster bitmap per page
	pageWriters := map[memsys.Page]uint64{}
	pageBlocks := map[memsys.Page]map[memsys.Block]bool{}
	for {
		ref, ok := r.Next()
		if !ok {
			break
		}
		if ref.Op == trace.Write {
			writes++
		} else {
			reads++
		}
		procs[ref.PID]++
		pg := memsys.PageOf(ref.Addr)
		c := geo.ClusterOf(int(ref.PID))
		pageSharers[pg] |= 1 << uint(c%64)
		if ref.Op == trace.Write {
			pageWriters[pg] |= 1 << uint(c%64)
		}
		m := pageBlocks[pg]
		if m == nil {
			m = make(map[memsys.Block]bool)
			pageBlocks[pg] = m
		}
		m[memsys.BlockOf(ref.Addr)] = true
	}
	if err := r.Err(); err != nil {
		return err
	}
	total := reads + writes
	fmt.Printf("%s: %d references (%.1f%% reads), %d processors, %d pages (%.2f MB footprint)\n",
		path, total, 100*float64(reads)/float64(total), len(procs), len(pageSharers),
		float64(len(pageSharers))*memsys.PageBytes/(1<<20))

	// Sharing-pattern histogram: how many clusters touch each page, and
	// the page classes that decide page-cache vs replication behaviour.
	sharerHist := map[int]int{}
	var private, readShared, writeShared int
	var blockSum int
	for pg, sharers := range pageSharers {
		n := popcount(sharers)
		sharerHist[n]++
		switch {
		case n == 1:
			private++
		case pageWriters[pg] == 0:
			readShared++
		default:
			writeShared++
		}
		blockSum += len(pageBlocks[pg])
	}
	fmt.Printf("page classes: %d cluster-private, %d read-shared, %d write-shared; mean %.1f/64 blocks touched per page\n",
		private, readShared, writeShared, float64(blockSum)/float64(len(pageSharers)))
	fmt.Print("sharers/page histogram:")
	for n := 1; n <= geo.Clusters; n++ {
		if sharerHist[n] > 0 {
			fmt.Printf(" %d:%d", n, sharerHist[n])
		}
	}
	fmt.Println()
	return nil
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
