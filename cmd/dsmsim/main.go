// Command dsmsim runs a single (workload, system) simulation and prints
// the full event account and the paper's derived metrics.
//
// Usage:
//
//	dsmsim -bench Radix -system vbp5 [-scale medium]
//	dsmsim -bench FFT -system vb -ncbytes 1024
//	dsmsim -list
//
// Systems: base, NCS, NCD, infDRAM, nc, vb, vp, ncp, vbp, vpp, pconly
// and vxp; the page-cache systems take -pcfrac (1/N of the data set) or
// -pcbytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsmnc"
	"dsmnc/memsys"
	"dsmnc/telemetry"
	"dsmnc/trace"
	"dsmnc/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "FFT", "benchmark name (see -list)")
		traceFile  = flag.String("trace", "", "drive the simulation from a binary trace file instead of -bench")
		system     = flag.String("system", "vb", "system name")
		scale      = flag.String("scale", "small", "workload scale: test|small|medium|large")
		ncBytes    = flag.Int("ncbytes", 16<<10, "network cache size in bytes")
		pcFrac     = flag.Int("pcfrac", 5, "page cache size as 1/N of the data set")
		pcBytes    = flag.Int64("pcbytes", 0, "page cache size in bytes (overrides -pcfrac)")
		threshold  = flag.Uint("threshold", 32, "initial relocation threshold")
		fixed      = flag.Bool("fixed", false, "use a fixed (non-adaptive) threshold")
		moesi      = flag.Bool("moesi", false, "enable the dirty-shared O state (paper §3.2 option)")
		decrement  = flag.Bool("decrement", false, "decrement relocation counters on false invalidations (§3.4)")
		dirPtrs    = flag.Int("dirptrs", 0, "use a Dir_iB limited-pointer directory with this many pointers")
		migrate    = flag.Bool("migrate", false, "enable OS page migration/replication (SGI-Origin style)")
		checkInv   = flag.Bool("check", false, "attach the coherence invariant checker (fails on the first protocol violation)")
		shards     = flag.Int("shards", 0, "parallel engine shards, bit-identical to sequential; 0 sequential, -1 auto (GOMAXPROCS)")
		perCluster = flag.Bool("percluster", false, "print the per-cluster event breakdown")
		progress   = flag.Duration("progress", 0, "print a progress heartbeat at this interval (e.g. 10s); 0 disables")
		list       = flag.Bool("list", false, "list benchmarks and systems")

		sampleEvery = flag.Int64("sample-every", 0, "record a time-series sample every N applied references; 0 disables")
		sampleOut   = flag.String("sample-out", "", "write the sample series here (.csv for CSV, anything else JSONL)")
		sampleCap   = flag.Int("sample-cap", telemetry.DefaultCapacity, "retain at most this many samples (oldest dropped)")
		traceOut    = flag.String("trace-out", "", "write a binary coherence event trace here (render with dsmtrace)")
		traceEvery  = flag.Int64("trace-every", 1, "keep every Nth coherence event in -trace-out")
		metricsAddr = flag.String("metrics", "", "serve Prometheus metrics and pprof on this address (e.g. :9090, :0 for a free port)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, n := range workload.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("systems: base NCS NCD infDRAM nc vb vp ncp vbp vpp pconly vxp")
		return
	}

	opt := dsmnc.DefaultOptions()
	switch *scale {
	case "test":
		opt.Scale = workload.ScaleTest
	case "small":
		opt.Scale = workload.ScaleSmall
	case "medium":
		opt.Scale = workload.ScaleMedium
	case "large":
		opt.Scale = workload.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "dsmsim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	b := workload.ByName(*bench, opt.Scale)
	if b == nil {
		fmt.Fprintf(os.Stderr, "dsmsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}

	var sys dsmnc.System
	switch *system {
	case "base":
		sys = dsmnc.Base()
	case "NCS", "ncs":
		sys = dsmnc.NCS()
	case "NCD", "ncd":
		sys = dsmnc.NCD()
	case "infDRAM", "infdram":
		sys = dsmnc.InfiniteDRAM()
	case "nc":
		sys = dsmnc.NC(*ncBytes)
	case "vb":
		sys = dsmnc.VB(*ncBytes)
	case "vp":
		sys = dsmnc.VP(*ncBytes)
	case "ncp":
		sys = dsmnc.NCPFrac(*ncBytes, *pcFrac)
	case "vbp":
		sys = dsmnc.VBPFrac(*ncBytes, *pcFrac)
	case "vpp":
		sys = dsmnc.VPPFrac(*ncBytes, *pcFrac)
	case "pconly":
		sys = dsmnc.PCOnly(*pcFrac)
	case "vxp":
		sys = dsmnc.VXPFrac(*ncBytes, *pcFrac, uint32(*threshold))
	default:
		fmt.Fprintf(os.Stderr, "dsmsim: unknown system %q\n", *system)
		os.Exit(2)
	}
	if *pcBytes > 0 && sys.PCFraction > 0 {
		sys.PCFraction = 0
		sys.PCBytes = *pcBytes
	}
	if sys.PCFraction > 0 || sys.PCBytes > 0 {
		sys.Threshold = uint32(*threshold)
		sys.Adaptive = !*fixed
	}
	sys.MOESI = *moesi
	sys.DecrementCounters = *decrement
	sys.DirPointers = *dirPtrs
	sys.Migration = *migrate
	opt.Check = *checkInv
	opt.Shards = *shards
	if *progress > 0 || *metricsAddr != "" {
		opt.Progress = &dsmnc.Progress{}
	}
	if *progress > 0 {
		stop := opt.Progress.Heartbeat(os.Stderr, *progress)
		defer stop()
	}

	if *sampleEvery > 0 || *sampleOut != "" {
		if *sampleEvery <= 0 {
			*sampleEvery = 100000
		}
		opt.Sampler = telemetry.NewSampler(*sampleEvery, *sampleCap).WithClock(time.Now)
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = telemetry.NewTracer(f, *traceEvery)
		opt.EventTrace = tracer
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		fatalIf(telemetry.RegisterRuntimeMetrics(reg))
		fatalIf(opt.Progress.RegisterMetrics(reg))
		if opt.Sampler != nil {
			fatalIf(telemetry.RegisterSamplerMetrics(reg, opt.Sampler))
		}
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dsmsim: serving metrics on %s (%s)\n", srv.Addr(), srv.URL())
	}

	var res dsmnc.Result
	if *traceFile != "" {
		var err error
		res, err = runTraceFile(*traceFile, sys, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace     : %s\n", *traceFile)
	} else {
		var err error
		res, err = dsmnc.Run(b, sys, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchmark : %s (%s), %.2f MB shared (paper: %.2f MB)\n",
			b.Name, b.Params, float64(b.SharedBytes)/(1<<20), b.PaperMB)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: event trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dsmsim: %s: kept %d of %d coherence events\n",
			*traceOut, tracer.Kept(), tracer.Seen())
	}
	if *sampleOut != "" {
		if err := writeSamples(*sampleOut, opt.Sampler); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: sample series: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dsmsim: %s: %d samples (%d dropped by the ring)\n",
			*sampleOut, opt.Sampler.Len(), opt.Sampler.Dropped())
	}
	c := &res.Counters
	fmt.Printf("system    : %s   scale: %s   refs: %d\n\n", sys.Name, opt.Scale, res.Refs)

	fmt.Printf("references      : %10d reads  %10d writes\n", c.Refs.Read, c.Refs.Write)
	fmt.Printf("L1 hits         : %10d reads  %10d writes\n", c.L1Hits.Read, c.L1Hits.Write)
	fmt.Printf("cache-to-cache  : %10d remote %10d local-home\n", c.C2C.Total(), c.LocalC2C.Total())
	fmt.Printf("NC hits         : %10d reads  %10d writes\n", c.NCHits.Read, c.NCHits.Write)
	fmt.Printf("PC hits         : %10d reads  %10d writes\n", c.PCHits.Read, c.PCHits.Write)
	fmt.Printf("local memory    : %10d\n", c.LocalMem.Total())
	fmt.Printf("remote accesses : %10d  (cold %d, coherence %d, capacity %d)\n",
		c.Remote().Total(),
		c.RemoteByClass[0].Total(), c.RemoteByClass[1].Total(), c.RemoteByClass[2].Total())
	fmt.Printf("upgrades        : %10d\n", c.Upgrades.Total())
	fmt.Printf("writebacks home : %10d   downgrades: %d\n", c.WritebacksHome, c.DowngradeWB)
	fmt.Printf("NC inserts/evts : %10d / %d   forced L1 evictions: %d\n",
		c.NCInserts, c.NCEvictions, c.NCForcedL1Evict)
	fmt.Printf("relocations     : %10d   page evictions: %d   threshold raises: %d\n\n",
		c.Relocations, c.PageEvictions, c.ThresholdRaises)

	r := res.MissRatios()
	fmt.Printf("miss ratio      : %.3f%% read + %.3f%% write + %.3f%% reloc = %.3f%%\n",
		r.ReadMissPct, r.WriteMissPct, r.RelocPct, r.Total())
	s := res.Stall()
	fmt.Printf("remote rd stall : %d cycles memory + %d cycles relocation = %d\n",
		s.Memory, s.Relocation, s.Total())
	tr := res.Traffic()
	fmt.Printf("remote traffic  : %d blocks (%d rd, %d wr, %d wb)\n",
		tr.Total(), tr.ReadMisses, tr.WriteMisses, tr.Writebacks)

	if *perCluster {
		fmt.Printf("\n%-8s %10s %10s %10s %10s %10s %10s\n",
			"cluster", "refs", "l1hits", "nchits", "pchits", "remote", "wbacks")
		for i, cc := range res.PerCluster {
			fmt.Printf("%-8d %10d %10d %10d %10d %10d %10d\n",
				i, cc.Refs.Total(), cc.L1Hits.Total(), cc.NCHits.Total(),
				cc.PCHits.Total(), cc.Remote().Total(), cc.WritebacksHome)
		}
	}
}

// fatalIf aborts on a metric-registration error (programming errors
// only: duplicate or malformed names).
func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
		os.Exit(1)
	}
}

// writeSamples dumps the recorded series, picking CSV or JSONL from the
// file extension.
func writeSamples(path string, s *telemetry.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = s.WriteCSV(f)
	} else {
		err = s.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runTraceFile drives the system from a binary trace produced by
// tracegen, sizing fractional page caches from the trace's page
// footprint (measured in a first pass).
func runTraceFile(path string, sys dsmnc.System, opt dsmnc.Options) (dsmnc.Result, error) {
	footprint := func() (int64, error) {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r := trace.NewReader(f)
		r.SetLimits(opt.Geometry.Procs(), memsys.MaxAddr)
		pages := map[memsys.Page]bool{}
		for {
			ref, ok := r.Next()
			if !ok {
				break
			}
			pages[memsys.PageOf(ref.Addr)] = true
		}
		if err := r.Err(); err != nil {
			return 0, err
		}
		return int64(len(pages)) * memsys.PageBytes, nil
	}
	bytes, err := footprint()
	if err != nil {
		return dsmnc.Result{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return dsmnc.Result{}, err
	}
	defer f.Close()
	r := trace.NewReader(f)
	r.SetLimits(opt.Geometry.Procs(), memsys.MaxAddr)
	return dsmnc.RunTrace(r, path, bytes, sys, opt)
}
