package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dsmnc
cpu: fake
BenchmarkFig9/base-8    2    100000000 ns/op    5000000 refs/s
BenchmarkFig9/vb-8      2    200000000 ns/op    2500000 refs/s
BenchmarkApplyHotPath-8 1000000    250 ns/op
PASS
`

func writeBaseline(t *testing.T, benches []benchmark) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	data, err := json.Marshal(report{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEmitJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBench), &out, "", 0.10); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Metrics["refs/s"] != 5000000 {
		t.Fatalf("refs/s = %v", rep.Benchmarks[0].Metrics["refs/s"])
	}
}

func TestCheckPasses(t *testing.T) {
	// Baseline slightly slower than the run: everything within tolerance.
	path := writeBaseline(t, []benchmark{
		{Name: "BenchmarkFig9/base-8", Metrics: map[string]float64{"ns/op": 105000000}},
		{Name: "BenchmarkFig9/vb-8", Metrics: map[string]float64{"ns/op": 195000000}},
		{Name: "BenchmarkApplyHotPath-8", Metrics: map[string]float64{"ns/op": 260}},
	})
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBench), &out, path, 0.10); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench-check: 3 benchmark(s) within 10%") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	// vb's baseline is far faster than the run: must fail and name it.
	path := writeBaseline(t, []benchmark{
		{Name: "BenchmarkFig9/base-8", Metrics: map[string]float64{"ns/op": 100000000}},
		{Name: "BenchmarkFig9/vb-8", Metrics: map[string]float64{"ns/op": 100000000}},
	})
	var out bytes.Buffer
	err := run(strings.NewReader(sampleBench), &out, path, 0.10)
	if err == nil {
		t.Fatalf("check passed despite 2x regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkFig9/vb-8") {
		t.Fatalf("regression error does not name the benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkFig9/base-8") {
		t.Fatalf("unregressed benchmark reported: %v", err)
	}
}

func TestCheckToleranceBoundary(t *testing.T) {
	// Exactly at tolerance passes (strictly-greater comparison); just
	// past it fails.
	path := writeBaseline(t, []benchmark{
		{Name: "BenchmarkApplyHotPath-8", Metrics: map[string]float64{"ns/op": 200}},
	})
	run1 := "BenchmarkApplyHotPath-8 1000 240 ns/op\n"
	var out bytes.Buffer
	if err := run(strings.NewReader(run1), &out, path, 0.20); err != nil {
		t.Fatalf("exact-tolerance run failed: %v", err)
	}
	run2 := "BenchmarkApplyHotPath-8 1000 241 ns/op\n"
	out.Reset()
	if err := run(strings.NewReader(run2), &out, path, 0.20); err == nil {
		t.Fatal("past-tolerance run passed")
	}
}

func TestCheckDisjointSets(t *testing.T) {
	// New and missing benchmarks are reported but only a fully disjoint
	// set is an error.
	path := writeBaseline(t, []benchmark{
		{Name: "BenchmarkGone-8", Metrics: map[string]float64{"ns/op": 100}},
	})
	var out bytes.Buffer
	err := run(strings.NewReader(sampleBench), &out, path, 0.10)
	if err == nil {
		t.Fatalf("disjoint check passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "no benchmarks in common") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(out.String(), "missing  BenchmarkGone-8") {
		t.Fatalf("missing baseline entry not reported:\n%s", out.String())
	}
}

const shardedBench = `goos: linux
goarch: amd64
pkg: dsmnc
cpu: fake
BenchmarkSimulator/vb-8             2    200000000 ns/op    2500000 refs/s
BenchmarkSimulator/vb/shards=4-8    2     60000000 ns/op    8300000 refs/s
PASS
`

func TestShardsDimension(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(shardedBench), &out, "", 0.10); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Shards != 0 || rep.Benchmarks[1].Shards != 4 {
		t.Fatalf("shard dimension mis-parsed: %d and %d", rep.Benchmarks[0].Shards, rep.Benchmarks[1].Shards)
	}
}

func TestCheckSkipsShardedSeries(t *testing.T) {
	// The sharded series regresses wildly; the gate must not care.
	// The sequential series is within tolerance, so the check passes
	// and gates exactly one benchmark.
	path := writeBaseline(t, []benchmark{
		{Name: "BenchmarkSimulator/vb-8", Metrics: map[string]float64{"ns/op": 195000000}},
		{Name: "BenchmarkSimulator/vb/shards=4-8", Shards: 4, Metrics: map[string]float64{"ns/op": 10000000}},
	})
	var out bytes.Buffer
	if err := run(strings.NewReader(shardedBench), &out, path, 0.10); err != nil {
		t.Fatalf("check failed on a sharded series: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench-check: 1 benchmark(s) within 10%") {
		t.Fatalf("sharded series leaked into the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Fatalf("sharded series not reported:\n%s", out.String())
	}
}
