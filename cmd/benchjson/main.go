// Command benchjson converts `go test -bench` text output on stdin to a
// stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (see `make bench`, which writes
// BENCH_baseline.json).
//
// Usage:
//
//	go test -run '^$' -bench . . | benchjson > BENCH_baseline.json
//
// Each benchmark line becomes an object with the benchmark name, the
// iteration count, and a metrics map keyed by unit (ns/op, refs/s,
// B/op, ...). The goos/goarch/pkg/cpu headers are carried through so a
// baseline records the machine it came from.
//
// Exit status: 0 on success (even when no benchmark lines were seen —
// the JSON then has an empty benchmark list), 1 on a read/write error.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkFig9-8    2    512000000 ns/op    98765 refs/s
//
// Lines that do not look like results (e.g. a bare "BenchmarkFoo" name
// echoed before its result) are skipped.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
