// Command benchjson converts `go test -bench` text output on stdin to a
// stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (see `make bench`, which writes
// BENCH_baseline.json).
//
// Usage:
//
//	go test -run '^$' -bench . . | benchjson > BENCH_baseline.json
//	go test -run '^$' -bench . . | benchjson -check BENCH_baseline.json
//
// Each benchmark line becomes an object with the benchmark name, the
// iteration count, and a metrics map keyed by unit (ns/op, refs/s,
// B/op, ...). The goos/goarch/pkg/cpu headers are carried through so a
// baseline records the machine it came from.
//
// With -check the parsed results are instead compared against a
// committed baseline: any benchmark whose ns/op exceeds the baseline by
// more than -tolerance (a fraction, default 0.10) is reported as a
// regression and the exit status is 1. Benchmarks present on only one
// side are noted but do not fail the check (baselines are recorded on a
// specific machine; the set of benchmarks may grow between PRs).
//
// Exit status: 0 on success (even when no benchmark lines were seen —
// the JSON then has an empty benchmark list), 1 on a read/write error
// or a failed -check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Shards is the parallel-engine shard count parsed from a
	// "/shards=N" segment in the benchmark name; 0 is the sequential
	// engine. Sharded series are recorded in the JSON alongside the
	// sequential ones but exempt from the -check regression gate —
	// their numbers depend on machine load in a way single-threaded
	// ns/op does not.
	Shards int `json:"shards,omitempty"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	checkPath := flag.String("check", "", "baseline JSON to compare against instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression before -check fails")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *checkPath, *tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, checkPath string, tolerance float64) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if checkPath != "" {
		return check(out, rep, checkPath, tolerance)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parse(in io.Reader) (report, error) {
	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// check compares rep's ns/op numbers against the baseline at path and
// returns an error listing every benchmark that regressed past the
// tolerance. The full comparison table is written to out either way.
func check(out io.Writer, rep report, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseNs := map[string]float64{}
	for _, b := range base.Benchmarks {
		if b.Shards > 0 || shardsOf(b.Name) > 0 {
			continue // sharded series are recorded, never gated
		}
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			baseNs[b.Name] = ns
		}
	}
	var regressed []string
	compared := 0
	for _, b := range rep.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		if b.Shards > 0 {
			fmt.Fprintf(out, "sharded  %-60s %14.0f ns/op (shards=%d, not gated)\n", b.Name, ns, b.Shards)
			continue
		}
		want, ok := baseNs[b.Name]
		if !ok {
			fmt.Fprintf(out, "new      %-60s %14.0f ns/op (not in baseline)\n", b.Name, ns)
			continue
		}
		delete(baseNs, b.Name)
		compared++
		delta := ns/want - 1
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", b.Name, want, ns, delta*100))
		}
		fmt.Fprintf(out, "%-8s %-60s %14.0f ns/op vs %14.0f (%+.1f%%)\n", verdict, b.Name, ns, want, delta*100)
	}
	missing := make([]string, 0, len(baseNs))
	for name := range baseNs {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(out, "missing  %-60s (in baseline, not in this run)\n", name)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with baseline %s", path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%:\n  %s",
			len(regressed), tolerance*100, strings.Join(regressed, "\n  "))
	}
	fmt.Fprintf(out, "bench-check: %d benchmark(s) within %.0f%% of %s\n", compared, tolerance*100, path)
	return nil
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkFig9-8    2    512000000 ns/op    98765 refs/s
//
// Lines that do not look like results (e.g. a bare "BenchmarkFoo" name
// echoed before its result) are skipped.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	b.Shards = shardsOf(b.Name)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// shardsOf extracts the shard count from a "/shards=N" name segment
// (e.g. BenchmarkSimulator/vb/shards=4-8); 0 means sequential.
func shardsOf(name string) int {
	i := strings.Index(name, "/shards=")
	if i < 0 {
		return 0
	}
	tail := name[i+len("/shards="):]
	if j := strings.IndexAny(tail, "/-"); j >= 0 {
		tail = tail[:j]
	}
	n, err := strconv.Atoi(tail)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
