// Command dsmexplore runs a design-space exploration locally: enumerate
// a declarative spec over the remote-data-cache axes, prune the
// configurations the analytic model proves dominated, simulate the
// survivors on an in-process scheduler, and print the Pareto frontier
// on the (SRAM bit cost, remote read stall) plane with predicted-vs-
// simulated provenance per point (docs/explore.md).
//
// Usage:
//
//	dsmexplore -bench FFT [-scale small] [-tech none,sram,dram]
//	           [-orgs nc,vb,vp,vxp] [-nc-kb 4,16,64] [-ways 4]
//	           [-dram-kb 512] [-pc-frac 5] [-thresholds 32]
//	           [-contention] [-workers N] [-csv] [-q]
//	dsmexplore -spec space.json       # full JSON spec from a file
//	dsmexplore -spec -                # ... or stdin
//
// The spec JSON schema is the POST /v1/explore body; -spec and the axis
// flags are mutually exclusive. -csv emits every simulated point as CSV
// on stdout instead of the table.
//
// Exit status: 0 on success, 1 on a fatal error, 2 on usage errors.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"dsmnc/explore"
	"dsmnc/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		specPath   = flag.String("spec", "", "JSON spec file ('-' for stdin); exclusive with the axis flags")
		bench      = flag.String("bench", "", "benchmark name (see workload.Names)")
		scale      = flag.String("scale", "small", "workload scale: test|small|medium|large")
		tech       = flag.String("tech", "", "comma-separated NC technologies: none,sram,dram")
		orgs       = flag.String("orgs", "", "comma-separated SRAM organizations: nc,vb,vp,ncp,vbp,vpp,vxp")
		ncKB       = flag.String("nc-kb", "", "comma-separated SRAM NC sizes in KB")
		ways       = flag.String("ways", "", "comma-separated NC associativities (powers of two)")
		dramKB     = flag.String("dram-kb", "", "comma-separated DRAM NC sizes in KB")
		pcFrac     = flag.String("pc-frac", "", "comma-separated page-cache fractions (memory/frac frames)")
		thresholds = flag.String("thresholds", "", "comma-separated relocation thresholds")
		contention = flag.Bool("contention", false, "add queueing-corrected stall per simulated point")
		workers    = flag.Int("workers", 0, "simulation worker pool size; 0 means NumCPU")
		csvOut     = flag.Bool("csv", false, "emit all simulated points as CSV instead of the table")
		quiet      = flag.Bool("q", false, "suppress progress messages on stderr")
	)
	flag.Parse()

	sp, code := buildSpace(*specPath, space(*bench, *scale, *tech, *orgs, *ncKB, *ways, *dramKB, *pcFrac, *thresholds, *contention))
	if code != 0 {
		return code
	}

	sched, err := serve.New(serve.Config{Workers: *workers, QueueDepth: explore.MaxPoints})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmexplore: %v\n", err)
		return 1
	}
	defer func() { _ = sched.Drain(context.Background()) }()

	eng := &explore.Engine{Sub: sched}
	if !*quiet {
		eng.OnProgress = func(p explore.Progress) {
			switch p.Phase {
			case "enumerated":
				fmt.Fprintf(os.Stderr, "dsmexplore: enumerated %d configurations\n", p.Enumerated)
			case "pruned":
				fmt.Fprintf(os.Stderr, "dsmexplore: pruned %d, simulating %d survivors\n", p.Pruned, p.Survivors)
			case "simulated":
				fmt.Fprintf(os.Stderr, "dsmexplore: simulated %d/%d\r", p.Simulated, p.Survivors)
			case "frontier":
				// \n closes the \r-overwritten simulation progress line.
				fmt.Fprintf(os.Stderr, "\ndsmexplore: frontier has %d points\n", p.Frontier)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := eng.Run(ctx, sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmexplore: %v\n", err)
		return 1
	}
	if *csvOut {
		return writeCSV(os.Stdout, rep)
	}
	printTable(os.Stdout, rep)
	return 0
}

// space assembles a Space from the axis flags.
func space(bench, scale, tech, orgs, ncKB, ways, dramKB, pcFrac, thresholds string, contention bool) explore.Space {
	return explore.Space{
		Bench:      bench,
		Scale:      scale,
		Tech:       splitStrs(tech),
		Orgs:       splitStrs(orgs),
		NCKB:       splitInts(ncKB),
		Ways:       splitInts(ways),
		DRAMKB:     splitInts(dramKB),
		PCFrac:     splitInts(pcFrac),
		Thresholds: splitInts(thresholds),
		Contention: contention,
	}
}

// buildSpace resolves the -spec flag against the flag-assembled space.
func buildSpace(path string, flagSpace explore.Space) (explore.Space, int) {
	if path == "" {
		if flagSpace.Bench == "" {
			fmt.Fprintln(os.Stderr, "dsmexplore: -bench or -spec is required")
			flag.Usage()
			return explore.Space{}, 2
		}
		return flagSpace, 0
	}
	if flagSpace.Bench != "" {
		fmt.Fprintln(os.Stderr, "dsmexplore: -spec and -bench are mutually exclusive")
		return explore.Space{}, 2
	}
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(io.LimitReader(os.Stdin, explore.MaxSpaceBytes+1))
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmexplore: read spec: %v\n", err)
		return explore.Space{}, 1
	}
	sp, err := explore.ParseSpace(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmexplore: %v\n", err)
		return explore.Space{}, 2
	}
	return sp, 0
}

// printTable renders the report: every simulated point, frontier marked,
// then the pruned points with their dominating survivor.
func printTable(w io.Writer, rep *explore.Report) {
	fmt.Fprintf(w, "explore %s (%s): enumerated %d, pruned %d, simulated %d\n",
		rep.Spec.Bench, rep.Spec.Scale, rep.Enumerated, rep.Pruned, rep.Simulated)
	fmt.Fprintf(w, "baseline remote read stall: %d cycles\n\n", rep.BaselineStall)

	header := fmt.Sprintf("%-24s %12s %12s %12s %7s", "config", "cost(bits)", "pred-stall", "sim-stall", "err%")
	if rep.Spec.Contention {
		header += fmt.Sprintf(" %12s", "w/queueing")
	}
	fmt.Fprintln(w, header+"  frontier")
	for _, p := range rep.Points {
		row := fmt.Sprintf("%-24s %12d %12d %12d %7.1f", p.Name, p.CostBits, p.PredStall, p.SimStall, p.PredErrPct)
		if rep.Spec.Contention {
			row += fmt.Sprintf(" %12d", p.ContentionStall)
		}
		mark := ""
		if p.OnFrontier {
			mark = "  *"
		}
		fmt.Fprintln(w, row+mark)
	}
	if len(rep.Dropped) > 0 {
		fmt.Fprintf(w, "\npruned without simulation (dominated on the predicted plane):\n")
		for _, d := range rep.Dropped {
			fmt.Fprintf(w, "%-24s %12d %12d  by %s\n", d.Name, d.CostBits, d.PredStall, d.DominatedBy)
		}
	}
	fmt.Fprintf(w, "\n%d Pareto-optimal points (*), cheapest first\n", len(rep.Frontier))
}

// writeCSV emits every simulated point, one row each.
func writeCSV(w io.Writer, rep *explore.Report) int {
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"name", "system", "nc_bytes", "nc_ways", "pc_frac", "threshold",
		"cost_bits", "pred_stall", "sim_stall", "pred_err_pct", "contention_stall", "on_frontier"})
	for _, p := range rep.Points {
		_ = cw.Write([]string{
			p.Name, p.System,
			strconv.Itoa(p.NCBytes), strconv.Itoa(p.NCWays), strconv.Itoa(p.PCFrac),
			strconv.FormatUint(uint64(p.Threshold), 10),
			strconv.FormatInt(p.CostBits, 10),
			strconv.FormatInt(p.PredStall, 10),
			strconv.FormatInt(p.SimStall, 10),
			strconv.FormatFloat(p.PredErrPct, 'f', 2, 64),
			strconv.FormatInt(p.ContentionStall, 10),
			strconv.FormatBool(p.OnFrontier),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "dsmexplore: csv: %v\n", err)
		return 1
	}
	return 0
}

// splitStrs parses a comma-separated flag into its non-empty fields.
func splitStrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// splitInts parses a comma-separated flag into ints; malformed fields
// become -1 so the spec validator rejects them with a real message.
func splitInts(s string) []int {
	var out []int
	for _, f := range splitStrs(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			v = -1
		}
		out = append(out, v)
	}
	return out
}
