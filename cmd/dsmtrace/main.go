// Command dsmtrace renders a binary coherence event trace (written by
// dsmsim -trace-out) as Chrome/Perfetto trace_event JSON, or prints a
// per-kind summary.
//
// Usage:
//
//	dsmtrace run.devt > run.json       # load run.json in ui.perfetto.dev
//	dsmtrace -summary run.devt
//	dsmtrace -cluster 3 run.devt       # keep only cluster 3's events
//
// The JSON places each event on the timeline at its reference count
// (1 applied reference = 1 µs of trace time), one process row per
// cluster and one named thread per event kind, so Perfetto's own
// aggregation tools work on the result.
//
// Exit status: 0 on success, 1 on a fatal or decode error, 2 on usage
// errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dsmnc/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		summary = flag.Bool("summary", false, "print per-kind event counts instead of JSON")
		cluster = flag.Int("cluster", -1, "keep only events from this cluster (-1 keeps all)")
		limit   = flag.Int64("limit", 0, "stop after emitting this many events; 0 means no limit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dsmtrace [-summary] [-cluster N] [-limit N] trace.devt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmtrace: %v\n", err)
		return 1
	}
	defer f.Close()
	r := telemetry.NewEventReader(bufio.NewReader(f))

	var werr error
	if *summary {
		werr = writeSummary(os.Stdout, r, *cluster, *limit)
	} else {
		out := bufio.NewWriter(os.Stdout)
		werr = writeJSON(out, r, *cluster, *limit)
		if err := out.Flush(); werr == nil {
			werr = err
		}
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "dsmtrace: %v\n", werr)
		return 1
	}
	if err := r.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dsmtrace: %s: offset %d: %v\n", flag.Arg(0), r.Offset(), err)
		return 1
	}
	return 0
}

// writeJSON emits the trace_event JSON array. Events become instant
// events ("ph":"i") scoped to their thread; process and thread name
// metadata rows are emitted lazily the first time a cluster or a
// (cluster, kind) pair appears.
func writeJSON(w io.Writer, r *telemetry.EventReader, cluster int, limit int64) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	type thread struct {
		cluster int
		kind    telemetry.EventKind
	}
	namedProc := make(map[int]bool)
	namedThread := make(map[thread]bool)
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		_, err := fmt.Fprintf(w, sep+format, args...)
		return err
	}
	var emitted int64
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		if cluster >= 0 && ev.Cluster != cluster {
			continue
		}
		if !namedProc[ev.Cluster] {
			namedProc[ev.Cluster] = true
			if err := emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"cluster %d"}}`,
				ev.Cluster, ev.Cluster); err != nil {
				return err
			}
		}
		th := thread{ev.Cluster, ev.Kind}
		if !namedThread[th] {
			namedThread[th] = true
			if err := emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
				ev.Cluster, int(ev.Kind), ev.Kind.String()); err != nil {
				return err
			}
		}
		if err := emit(`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"addr":"0x%x","arg":%d}}`,
			ev.Kind.String(), ev.Refs, ev.Cluster, int(ev.Kind), ev.Addr, ev.Arg); err != nil {
			return err
		}
		emitted++
		if limit > 0 && emitted >= limit {
			break
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// writeSummary prints per-kind and per-cluster event counts with the
// reference span the trace covers.
func writeSummary(w io.Writer, r *telemetry.EventReader, cluster int, limit int64) error {
	byKind := make(map[telemetry.EventKind]int64)
	byCluster := make(map[int]int64)
	var total, firstRefs, lastRefs int64
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		if cluster >= 0 && ev.Cluster != cluster {
			continue
		}
		if total == 0 {
			firstRefs = ev.Refs
		}
		lastRefs = ev.Refs
		byKind[ev.Kind]++
		byCluster[ev.Cluster]++
		total++
		if limit > 0 && total >= limit {
			break
		}
	}
	if _, err := fmt.Fprintf(w, "%d events over refs %d..%d\n", total, firstRefs, lastRefs); err != nil {
		return err
	}
	kinds := make([]telemetry.EventKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "  %-12s %d\n", k.String(), byKind[k]); err != nil {
			return err
		}
	}
	clusters := make([]int, 0, len(byCluster))
	for c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		if _, err := fmt.Fprintf(w, "  cluster %-4d %d\n", c, byCluster[c]); err != nil {
			return err
		}
	}
	return nil
}
