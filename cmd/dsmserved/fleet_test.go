package main

// The fleet torture gate (make fleet-smoke): build the real dsmserved
// and dsmworker binaries (race-instrumented), run a coordinator over
// three worker processes, and prove the fleet contract under fire:
//
//   - SIGKILL a worker mid-sweep and blackhole another's traffic behind
//     a partition proxy (the process stays alive — the coordinator must
//     treat unreachable as dead and slow as alive): every acknowledged
//     job still completes, nothing completes twice, and the full golden
//     corpus replayed through the fleet is field-identical to the
//     committed cells.
//   - A worker slower than the lease TTL but answering polls keeps its
//     leases: zero reassignments (slow-is-not-dead).
//   - A full worker sheds with 429 instead of growing, joins duplicate
//     dispatches onto one task, and drains cleanly on SIGTERM.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dsmnc/serve"
	"dsmnc/workload"
)

func TestFleetTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and tortures real dsmserved+dsmworker processes; skipped under -short")
	}
	dir := t.TempDir()
	servedBin := filepath.Join(dir, "dsmserved")
	workerBin := filepath.Join(dir, "dsmworker")
	for bin, pkg := range map[string]string{servedBin: ".", workerBin: "../dsmworker"} {
		build := exec.Command("go", "build", "-race", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build -race %s: %v\n%s", pkg, err, out)
		}
	}

	t.Run("kill-partition-golden", func(t *testing.T) { fleetKillPartitionGolden(t, servedBin, workerBin) })
	t.Run("slow-is-not-dead", func(t *testing.T) { fleetSlowIsNotDead(t, servedBin, workerBin) })
	t.Run("worker-sheds-and-joins", func(t *testing.T) { fleetWorkerShedsAndJoins(t, workerBin) })
}

// fleetCell pairs one golden-corpus job body with its committed file.
type fleetCell struct {
	body   string
	golden string
}

// fleetGoldenCells is the full committed corpus as job requests — the
// same five systems per bench the serve determinism gate submits
// (request defaults are exactly the corpus parameters).
func fleetGoldenCells() []fleetCell {
	var cells []fleetCell
	for _, bench := range workload.Names() {
		for _, sys := range []string{"base", "nc", "vb", "vp"} {
			cells = append(cells, fleetCell{
				body:   fmt.Sprintf(`{"bench":%q,"system":%q}`, bench, sys),
				golden: sys + "_" + bench + ".json",
			})
		}
		cells = append(cells, fleetCell{
			body:   fmt.Sprintf(`{"bench":%q,"system":"vxp","pc_frac":5}`, bench),
			golden: "vxp5-t32_" + bench + ".json",
		})
	}
	return cells
}

// fleetKillPartitionGolden is the headline drill: three workers (one
// behind a blackhole proxy), the whole golden corpus submitted, one
// worker SIGKILLed and one partitioned mid-sweep. Required outcome:
// every acknowledged job done exactly once, results identical to the
// committed corpus, reassignment metrics showing the fabric actually
// rode through both failures.
func fleetKillPartitionGolden(t *testing.T, servedBin, workerBin string) {
	// 500ms per task keeps the sweep in flight long enough for the kill
	// and the partition to land on live work.
	slow := []string{"DSMNC_WORKER_SLOW_MS=500"}
	w0 := startProc(t, "dsmworker", workerBin, slow, "-addr", "127.0.0.1:0", "-slots", "2", "-q")
	w1 := startProc(t, "dsmworker", workerBin, slow, "-addr", "127.0.0.1:0", "-slots", "2", "-q")
	w2 := startProc(t, "dsmworker", workerBin, slow, "-addr", "127.0.0.1:0", "-slots", "2", "-q")
	px := newBlackhole(t, w2.addr())

	coord := startProc(t, "dsmserved", servedBin, nil,
		"-addr", "127.0.0.1:0",
		"-fleet", strings.Join([]string{w0.addr(), w1.addr(), px.addr()}, ","),
		"-ledger", filepath.Join(t.TempDir(), "fleet.ledger"),
		"-lease", "1s", "-retries", "8", "-drain", "60s", "-q")
	waitHealthy(t, coord.base)
	if slots := metricValue(t, coord.base, "dsmnc_serve_fleet_slots"); slots != 6 {
		t.Fatalf("fleet_slots gauge %v after probing three 2-slot workers, want 6", slots)
	}

	cells := fleetGoldenCells()
	acked := make([]ackedJob, 0, len(cells))
	for _, c := range cells {
		id, ok := submit(t, coord.base, c.body)
		if !ok {
			t.Fatalf("submit %s: coordinator did not acknowledge", c.body)
		}
		acked = append(acked, ackedJob{tortureJob: tortureJob{body: c.body, golden: c.golden}, id: id})
	}
	// Idempotency across the fleet: a duplicate submission coalesces
	// onto the existing job, it does not dispatch twice.
	if again, ok := submit(t, coord.base, cells[0].body); !ok || again != acked[0].id {
		t.Fatalf("duplicate submission got job %q, want coalescing onto %q", again, acked[0].id)
	}

	// Let the sweep get going, then murder w1 outright.
	waitMetricAtLeast(t, coord.base, "dsmnc_serve_done_total", 8, 120*time.Second)
	if err := w1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitMetricAtLeast(t, coord.base, "dsmnc_serve_lease_lost_total", 1, 60*time.Second)

	// Partition w2: its process stays alive (we can still reach it
	// directly) but the coordinator's traffic blackholes. The fabric
	// must treat unreachable as dead — more leases lost — while the
	// direct probe proves the process never crashed.
	lostBefore := metricValue(t, coord.base, "dsmnc_serve_lease_lost_total")
	px.drop()
	resp, err := http.Get("http://" + w2.addr() + "/healthz")
	if err != nil {
		t.Fatalf("partitioned worker's direct liveness probe failed — it must stay alive: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned worker /healthz answered %d, want 200", resp.StatusCode)
	}
	waitMetricAtLeast(t, coord.base, "dsmnc_serve_lease_lost_total", lostBefore+1, 60*time.Second)
	px.heal()

	// Every acknowledged job must reach done and match its golden cell.
	for _, a := range acked {
		st := pollRecovered(t, coord.base, a.id)
		if st.State != serve.StateDone {
			t.Fatalf("job %s (%s) finished as %s: %s", a.id, a.body, st.State, st.Error)
		}
		diffGolden(t, coord.base, a)
	}

	// Exactly-once accounting: done counts each job once, nothing
	// failed, and the fabric really did reassign work off the dead and
	// partitioned nodes.
	if done := metricValue(t, coord.base, "dsmnc_serve_done_total"); done != float64(len(cells)) {
		t.Errorf("done_total %v, want exactly %d (duplicate or lost completions)", done, len(cells))
	}
	if failed := metricValue(t, coord.base, "dsmnc_serve_failed_total"); failed != 0 {
		t.Errorf("failed_total %v, want 0", failed)
	}
	if re := metricValue(t, coord.base, "dsmnc_serve_reassigned_total"); re < 1 {
		t.Errorf("reassigned_total %v, want >= 1 after a kill and a partition", re)
	}
	if lost := metricValue(t, coord.base, "dsmnc_serve_lease_lost_total"); lost < 2 {
		t.Errorf("lease_lost_total %v, want >= 2 (one per failure drill)", lost)
	}

	// Everything still alive drains cleanly.
	sigtermAndWait(t, coord, "coordinator")
	sigtermAndWait(t, w0, "worker w0")
	sigtermAndWait(t, w2, "worker w2")
}

// fleetSlowIsNotDead proves the lease distinction: a worker three times
// slower than the TTL, but answering status polls, keeps its leases —
// no reassignment, every job done on attempt one.
func fleetSlowIsNotDead(t *testing.T, servedBin, workerBin string) {
	w := startProc(t, "dsmworker", workerBin,
		[]string{"DSMNC_WORKER_SLOW_MS=3000"},
		"-addr", "127.0.0.1:0", "-slots", "2", "-q")
	coord := startProc(t, "dsmserved", servedBin, nil,
		"-addr", "127.0.0.1:0", "-fleet", w.addr(),
		"-lease", "1s", "-retries", "2", "-drain", "60s", "-q")
	waitHealthy(t, coord.base)

	var ids []string
	for _, body := range []string{
		`{"bench":"FFT","system":"nc"}`,
		`{"bench":"Ocean","system":"nc"}`,
	} {
		id, ok := submit(t, coord.base, body)
		if !ok {
			t.Fatalf("submit %s: not acknowledged", body)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		st := pollRecovered(t, coord.base, id)
		if st.State != serve.StateDone {
			t.Fatalf("job %s finished as %s: %s", id, st.State, st.Error)
		}
		if st.Attempt != 1 {
			t.Errorf("job %s took %d attempts; a slow-but-answering worker must keep its lease", id, st.Attempt)
		}
	}
	if lost := metricValue(t, coord.base, "dsmnc_serve_lease_lost_total"); lost != 0 {
		t.Errorf("lease_lost_total %v on a slow but reachable fleet, want 0", lost)
	}
	if re := metricValue(t, coord.base, "dsmnc_serve_reassigned_total"); re != 0 {
		t.Errorf("reassigned_total %v, want 0", re)
	}
	sigtermAndWait(t, coord, "coordinator")
	sigtermAndWait(t, w, "worker")
}

// fleetWorkerShedsAndJoins drives the worker binary's wire API raw: a
// full worker answers 429 (shed, don't grow), duplicate dispatches join
// the held task, cancels free capacity, and SIGTERM drains cleanly. The
// worker's true options fingerprint is self-calibrated from its own 412
// answer, which exercises the mismatch path on the real binary too.
func fleetWorkerShedsAndJoins(t *testing.T, workerBin string) {
	// Tasks sleep 60s: admitted work stays live until canceled, so
	// capacity arithmetic is deterministic.
	w := startProc(t, "dsmworker", workerBin,
		[]string{"DSMNC_WORKER_SLOW_MS=60000"},
		"-addr", "127.0.0.1:0", "-slots", "1", "-queue", "1", "-drain", "10s", "-q")
	req := serve.Request{Bench: "FFT", System: "nc"}

	// Calibrate: a wellformed dispatch with a wrong fingerprint is
	// refused 412, and the refusal names the fingerprint the worker
	// computed for this request.
	code, ans := postWire(t, w.base, serve.WireRequest{
		ID: "aaaaaaaaaaaaaaaa", Attempt: 1, Epoch: 1,
		Fingerprint: "0000000000000000", Request: req,
	})
	if code != 412 {
		t.Fatalf("wrong-fingerprint dispatch answered %d: %s", code, ans)
	}
	m := regexp.MustCompile(`fingerprint ([0-9a-f]{16}) does not match`).FindSubmatch(ans)
	if m == nil {
		t.Fatalf("412 body does not name the worker's fingerprint: %s", ans)
	}
	fp := string(m[1])

	dispatch := func(id string) (int, []byte) {
		return postWire(t, w.base, serve.WireRequest{
			ID: id, Attempt: 1, Epoch: 1, Fingerprint: fp, Request: req,
		})
	}
	if code, ans := dispatch("1111111111111111"); code != 202 {
		t.Fatalf("first dispatch answered %d: %s", code, ans)
	}
	if code, ans := dispatch("2222222222222222"); code != 202 {
		t.Fatalf("second dispatch answered %d: %s", code, ans)
	}
	// 1 slot + 1 queue are both taken: the third dispatch must shed.
	if code, ans := dispatch("3333333333333333"); code != 429 {
		t.Fatalf("dispatch to a full worker answered %d, want 429: %s", code, ans)
	}
	// A duplicate of a held task joins it instead of counting against
	// capacity.
	if code, ans := dispatch("1111111111111111"); code != 200 {
		t.Fatalf("duplicate dispatch answered %d, want 200 join: %s", code, ans)
	}
	// A stale-epoch poll (epoch 0 never validates) is refused.
	if st := wireGet(t, w.base, "/v1/tasks/1111111111111111?epoch=0"); st != 409 {
		t.Fatalf("stale poll answered %d, want 409", st)
	}

	// Cancel the queued task; once it settles, the shed dispatch fits.
	if st := wireDelete(t, w.base, "/v1/tasks/2222222222222222?epoch=1"); st != 200 {
		t.Fatalf("cancel answered %d", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, ans := dispatch("3333333333333333")
		if code == 202 {
			break
		}
		if code != 429 {
			t.Fatalf("re-dispatch after cancel answered %d: %s", code, ans)
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled task never freed capacity")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Drain cleanly: cancel the live tasks, then SIGTERM.
	if st := wireDelete(t, w.base, "/v1/tasks/1111111111111111?epoch=1"); st != 200 {
		t.Fatalf("cancel answered %d", st)
	}
	if st := wireDelete(t, w.base, "/v1/tasks/3333333333333333?epoch=1"); st != 200 {
		t.Fatalf("cancel answered %d", st)
	}
	if shed := metricValue(t, w.base, "dsmnc_serve_worker_shed_total"); shed < 1 {
		t.Errorf("worker shed_total %v, want >= 1", shed)
	}
	if joined := metricValue(t, w.base, "dsmnc_serve_worker_joined_total"); joined < 1 {
		t.Errorf("worker joined_total %v, want >= 1", joined)
	}
	sigtermAndWait(t, w, "worker")
}

// startProc launches a built binary (dsmserved or dsmworker — both
// print "<name> listening on ADDR" on stdout), parses its address, and
// arranges cleanup. Unlike startServed it takes extra environment, and
// does not wait for readiness — fleet drills need the process address
// before the coordinator exists.
func startProc(t *testing.T, name, bin string, extraEnv []string, args ...string) *servedProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GORACE=halt_on_error=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &servedProc{cmd: cmd, exited: make(chan error, 1)}
	go func() { p.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-p.exited
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from %s: %v", name, sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	if !strings.Contains(line, "listening on") || addr == "" {
		t.Fatalf("unexpected %s startup line %q", name, line)
	}
	p.base = "http://" + addr
	go func() {
		for sc.Scan() {
		}
	}()
	return p
}

// addr strips the scheme off a proc's base URL — the form worker
// addresses take in -fleet and in direct dials.
func (p *servedProc) addr() string { return strings.TrimPrefix(p.base, "http://") }

// sigtermAndWait asks a process to drain and requires a clean exit.
func sigtermAndWait(t *testing.T, p *servedProc, what string) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.exited:
		if err != nil {
			t.Fatalf("%s exited uncleanly after SIGTERM: %v", what, err)
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("%s did not exit within 90s of SIGTERM", what)
	}
}

// metricValue fetches one metric's current value off /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if perr != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed on %s/metrics", name, base)
	return 0
}

// waitMetricAtLeast polls a metric until it reaches min.
func waitMetricAtLeast(t *testing.T, base, name string, min float64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if v := metricValue(t, base, name); v >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %v within %s (now %v)",
				name, min, within, metricValue(t, base, name))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// postWire POSTs one encoded wire dispatch to a worker.
func postWire(t *testing.T, base string, wr serve.WireRequest) (int, []byte) {
	t.Helper()
	body, err := wr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ans, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ans
}

// wireGet hits a worker wire path and returns the status code.
func wireGet(t *testing.T, base, path string) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// wireDelete sends a worker wire cancel and returns the status code.
func wireDelete(t *testing.T, base, path string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// blackhole is a TCP partition proxy: while dropped, accepted
// connections stay open but no byte crosses in either direction — the
// worker behind it is alive and computing, the coordinator just cannot
// hear it. Healing lets held traffic flow again.
type blackhole struct {
	ln      net.Listener
	target  string
	dropped atomic.Bool
}

func newBlackhole(t *testing.T, target string) *blackhole {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &blackhole{ln: ln, target: target}
	t.Cleanup(func() {
		p.heal() // unblock any pipes still gated
		_ = ln.Close()
	})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.serve(c)
		}
	}()
	return p
}

func (p *blackhole) addr() string { return p.ln.Addr().String() }
func (p *blackhole) drop()        { p.dropped.Store(true) }
func (p *blackhole) heal()        { p.dropped.Store(false) }

func (p *blackhole) serve(c net.Conn) {
	defer c.Close()
	b, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer b.Close()
	done := make(chan struct{}, 2)
	go func() { p.pipe(b, c); done <- struct{}{} }()
	go func() { p.pipe(c, b); done <- struct{}{} }()
	<-done
}

// pipe copies one direction, gating each chunk on the partition flag: a
// blackholed chunk is held (not dropped), so a healed partition resumes
// mid-stream exactly like a real network recovering.
func (p *blackhole) pipe(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			for p.dropped.Load() {
				time.Sleep(25 * time.Millisecond)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}
