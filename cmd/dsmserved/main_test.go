package main

// Loopback acceptance for the serving API: a real scheduler behind the
// real handler on an httptest server. The contract under test is the
// ISSUE's: submissions are validated (400), shed under pressure (429 +
// Retry-After), idempotent (a resubmission coalesces), streamable, and
// a served result equals a direct dsmnc.Run of the same options.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/explore"
	"dsmnc/serve"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

func newTestServer(t *testing.T, cfg serve.Config) (*httptest.Server, *serve.Scheduler) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := s.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	runner := &explore.Runner{Engine: &explore.Engine{Sub: s}}
	if err := runner.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(s, runner, reg))
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	return ts, s
}

func postJob(t *testing.T, ts *httptest.Server, body string) (serve.Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return st, resp
}

func pollDone(t *testing.T, ts *httptest.Server, id string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeLoopbackEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})

	st, resp := postJob(t, ts, `{"bench":"FFT","system":"vb"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Bench != "FFT" || st.System != "vb" {
		t.Fatalf("submit status %+v", st)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, want 200", rresp.StatusCode)
	}
	var payload struct {
		Status serve.Status `json:"status"`
		Result dsmnc.Result `json:"result"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}

	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall
	direct, err := dsmnc.Run(workload.ByName("FFT", workload.ScaleSmall), dsmnc.VB(16<<10), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(payload.Result, direct) {
		t.Error("served result is not identical to a direct Run of the same options")
	}

	// Resubmitting the same work coalesces onto the finished job: 200,
	// same ID, no new run.
	st2, resp2 := postJob(t, ts, `{"bench":"FFT","system":"vb"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("resubmit: status %d, want 200", resp2.StatusCode)
	}
	if st2.ID != st.ID || st2.State != serve.StateDone {
		t.Errorf("resubmit coalesced onto %+v, want done job %s", st2, st.ID)
	}

	// The metrics endpoint accounts for the served work.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dsmnc_serve_submitted_total 1",
		"dsmnc_serve_deduped_total 1",
		"dsmnc_serve_done_total 1",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServeHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{"bench":"FFT"`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"bench":"FFT","system":"warp"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown system: status %d, want 400", resp.StatusCode)
	}
	resp := post(`{"bench":"FFT","system":"base","nc_bytes":1024}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid params: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("400 body carries no error: %v %+v", err, e)
	}
	for _, path := range []string{"/v1/jobs/beef", "/v1/jobs/beef/result", "/v1/jobs/beef/stream"} {
		gresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		gresp.Body.Close()
		if gresp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, gresp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/beef", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: status %d, want 404", dresp.StatusCode)
	}
}

func TestServeShedsWithRetryAfter(t *testing.T) {
	ts, s := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	// Draining is the deterministic way to make Submit shed: the HTTP
	// mapping (429 + Retry-After) is the same one a full queue takes.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, resp := postJob(t, ts, `{"bench":"FFT","system":"base"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit while draining: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	// The probes split: liveness stays green while draining (the process
	// is up; restarting it would only hurt), readiness goes red and says
	// why.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200 (liveness)", hresp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd serve.Readiness
	decodeErr := json.NewDecoder(rresp.Body).Decode(&rd)
	rresp.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if rresp.StatusCode != http.StatusServiceUnavailable || rd.Ready || rd.Reason != "draining" {
		t.Errorf("readyz while draining: status %d, body %+v; want 503 draining", rresp.StatusCode, rd)
	}
}

func TestServeHealthz(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", resp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd serve.Readiness
	decodeErr := json.NewDecoder(rresp.Body).Decode(&rd)
	rresp.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if rresp.StatusCode != http.StatusOK || !rd.Ready || rd.Reason != "ok" {
		t.Errorf("readyz on a healthy server: status %d, body %+v; want 200 ok", rresp.StatusCode, rd)
	}
	if len(rd.Executors) == 0 {
		t.Error("readyz reports no executor fault domains")
	}
}

func TestServeStream(t *testing.T) {
	ts, _ := newTestServer(t, serve.Config{})
	st, resp := postJob(t, ts, `{"bench":"FFT","system":"base","scale":"test"}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var last serve.Status
	var events int
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 || last.State != serve.StateDone {
		t.Errorf("stream delivered %d events ending in %q, want a done terminal", events, last.State)
	}
}

func TestServeStreamKeepalive(t *testing.T) {
	// With the keepalive interval shrunk, a stream held open by a slow
	// job must carry comment frames between data frames — the probe that
	// reaps dead clients on a real deployment.
	old := sseKeepalive
	sseKeepalive = 5 * time.Millisecond
	t.Cleanup(func() { sseKeepalive = old })

	ts, _ := newTestServer(t, serve.Config{})
	st, resp := postJob(t, ts, `{"bench":"Ocean","system":"vp","scale":"small"}`)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var keepalives, events int
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": keepalive"):
			keepalives++
		case strings.HasPrefix(line, "data: "):
			events++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if keepalives == 0 {
		t.Errorf("stream carried %d events but no keepalive comments", events)
	}
}

func TestServeCancelOverHTTP(t *testing.T) {
	// One worker wedged on a deliberately slow job keeps the second job
	// queued long enough to cancel it deterministically.
	ts, _ := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	blocker, resp := postJob(t, ts, `{"bench":"Ocean","system":"vp","scale":"small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit blocker: status %d", resp.StatusCode)
	}
	victim, resp := postJob(t, ts, `{"bench":"Radix","system":"vp","scale":"small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit victim: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if st.ID != victim.ID {
		t.Errorf("DELETE answered for job %s, want %s", st.ID, victim.ID)
	}
	// The victim either settled as canceled, or (if the blocker finished
	// first) is already past cancellation; a canceled end state is the
	// overwhelmingly likely one, but both are legal — what is not legal
	// is an error or a lost job.
	final := pollDone(t, ts, victim.ID)
	if final.State != serve.StateCanceled && final.State != serve.StateDone {
		t.Errorf("victim ended %s (%s)", final.State, final.Error)
	}
	if final = pollDone(t, ts, blocker.ID); final.State != serve.StateDone {
		t.Errorf("blocker ended %s: %s", final.State, final.Error)
	}
}
