package main

// Fleet wiring: -fleet host:port,... turns this coordinator's executor
// set into one RemoteExecutor fault domain per dsmworker node. The
// serve package keeps net/http at arm's length (the httpimports lint),
// so the HTTP leg of the wire protocol lives here as a WireClient the
// RemoteExecutor drives.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"dsmnc/serve"
)

// fleetProbeAttempts x fleetProbeEvery bounds how long startup waits for
// each worker's /readyz before giving up — long enough to ride out a
// worker that is still binding its socket, short enough that a typo'd
// address fails the boot in seconds.
const (
	fleetProbeAttempts = 20
	fleetProbeEvery    = 500 * time.Millisecond
)

// httpWireClient carries the fleet wire protocol to one worker over
// HTTP. Bodies are bounded by the caller (the RemoteExecutor passes
// encoded wire documents and parses answers through the strict
// decoder), so this is pure transport: method + path + bytes in,
// status + bytes out.
type httpWireClient struct {
	base   string // http://host:port, no trailing slash
	client *http.Client
}

func newHTTPWireClient(addr string) *httpWireClient {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &httpWireClient{
		base: strings.TrimSuffix(base, "/"),
		// Timeouts come from the caller's context (the RemoteExecutor
		// bounds every round trip); the transport only needs sane
		// connection reuse.
		client: &http.Client{},
	}
}

func (c *httpWireClient) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	ans, err := io.ReadAll(io.LimitReader(resp.Body, serve.MaxWireResultBytes+1))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, ans, nil
}

// buildFleet probes every worker address and returns one RemoteExecutor
// per node plus the fleet-wide slot total. A worker that never answers
// ready within the probe window fails the boot: a coordinator that
// silently started with half its fleet would run the sweep at half
// speed and nobody would know why.
func buildFleet(addrs []string) ([]serve.Executor, int, error) {
	execs := make([]serve.Executor, 0, len(addrs))
	slots := 0
	for _, addr := range addrs {
		re := serve.NewRemoteExecutor(addr, newHTTPWireClient(addr))
		var (
			rd  serve.WireReady
			err error
		)
		for i := 0; i < fleetProbeAttempts; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), fleetProbeEvery)
			rd, err = re.Probe(ctx)
			cancel()
			if err == nil && rd.Ready {
				break
			}
			time.Sleep(fleetProbeEvery)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("fleet: worker %s unreachable: %w", addr, err)
		}
		if !rd.Ready {
			return nil, 0, fmt.Errorf("fleet: worker %s not ready: %s", addr, rd.Reason)
		}
		log.Printf("fleet: worker %s ready (%d slots)", addr, rd.Slots)
		execs = append(execs, re)
		slots += rd.Slots
	}
	return execs, slots, nil
}

// parseFleet splits the -fleet flag into worker addresses, refusing
// empty entries so "host1,,host2" fails loudly instead of dropping a
// node.
func parseFleet(spec string) ([]string, error) {
	parts := strings.Split(spec, ",")
	addrs := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("fleet: empty worker address in %q", spec)
		}
		addrs = append(addrs, p)
	}
	return addrs, nil
}
