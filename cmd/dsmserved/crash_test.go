package main

// The kill-torture gate (make crash-smoke): build the real dsmserved
// binary (race-instrumented), SIGKILL it at every ledger crash point
// via the DSMNC_SERVE_CRASH hook, restart it on the same ledger, and
// require the durability contract of docs/robustness.md §5: no job the
// server acknowledged is ever lost, nothing completes twice, and every
// recovered result is field-identical to the committed golden corpus.

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/serve"
	"dsmnc/stats"
)

// tortureJob pairs a request body with its committed golden cell.
type tortureJob struct {
	body   string
	golden string
}

var tortureJobs = []tortureJob{
	{`{"bench":"FFT","system":"base","scale":"small"}`, "base_FFT.json"},
	{`{"bench":"FFT","system":"nc","scale":"small"}`, "nc_FFT.json"},
}

// ackedJob is a submission the dying server acknowledged: the contract
// says it must survive the kill.
type ackedJob struct {
	tortureJob
	id string
}

func TestCrashTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly SIGKILLs the dsmserved binary; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "dsmserved")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	// One scenario per crash point, at occurrences chosen so the kill
	// lands in every phase of a two-job run on one worker with
	// compaction after every terminal record: before anything is
	// durable, after the first acknowledgement, inside the terminal
	// appends (torn and synced), and on both sides of compaction's
	// atomic rename.
	scenarios := []struct {
		name string
		spec string
	}{
		{"before-first-write", "ledger.append.pre-write:1"},
		{"after-first-ack", "ledger.append.post-sync:1"},
		{"terminal-torn", "ledger.append.post-write:4"},
		{"all-done-durable", "ledger.append.post-sync:6"},
		{"compact-before-rename", "ledger.compact.pre-rename:1"},
		{"compact-after-rename", "ledger.compact.post-rename:1"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ledger := filepath.Join(t.TempDir(), "jobs.ledger")

			// Life 1: armed to die. Submit the torture jobs until the
			// SIGKILL lands; whatever was acknowledged is the contract.
			srv1 := startServer(t, bin, ledger, "DSMNC_SERVE_CRASH="+sc.spec)
			var acked []ackedJob
			for _, j := range tortureJobs {
				id, ok := submit(t, srv1.base, j.body)
				if !ok {
					break // the crash landed mid-request: not acknowledged
				}
				acked = append(acked, ackedJob{tortureJob: j, id: id})
			}
			select {
			case err := <-srv1.exited:
				var exitErr *exec.ExitError
				if err == nil {
					t.Fatal("server exited cleanly; the armed crash point never fired")
				} else if !errors.As(err, &exitErr) || exitErr.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
					t.Fatalf("server died of %v, want the self-inflicted SIGKILL", err)
				}
			case <-time.After(120 * time.Second):
				_ = srv1.cmd.Process.Kill()
				t.Fatal("crash point did not fire within 120s")
			}

			// Life 2: unarmed restart on the same ledger. Readiness must
			// gate on recovery, then every acknowledged job must reach
			// done with its golden result — re-run or restored, the
			// engine's determinism makes the two indistinguishable.
			srv2 := startServer(t, bin, ledger)
			waitHealthy(t, srv2.base)
			for _, a := range acked {
				st := pollRecovered(t, srv2.base, a.id)
				if st.State != serve.StateDone {
					t.Fatalf("acknowledged job %s recovered as %s: %s", a.id, st.State, st.Error)
				}
				diffGolden(t, srv2.base, a)
				// A client retry must coalesce onto the finished job, not
				// start a duplicate.
				resp, err := http.Post(srv2.base+"/v1/jobs", "application/json", strings.NewReader(a.body))
				if err != nil {
					t.Fatal(err)
				}
				var again serve.Status
				decodeErr := json.NewDecoder(resp.Body).Decode(&again)
				resp.Body.Close()
				if decodeErr != nil {
					t.Fatal(decodeErr)
				}
				if resp.StatusCode != http.StatusOK || again.ID != a.id || again.State != serve.StateDone {
					t.Fatalf("retry of %s: status %d, job %+v; want 200 coalescing onto the done job", a.id, resp.StatusCode, again)
				}
			}

			// A SIGTERM drain must still exit zero after all that.
			if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-srv2.exited:
				if err != nil {
					t.Fatalf("recovered server exited uncleanly after SIGTERM: %v", err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("recovered server did not exit within 60s of SIGTERM")
			}
		})
	}
}

// server is one dsmserved life: the process, its base URL, and its exit
// notification.
type server struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
}

// startServer launches the built binary on a free port with the given
// ledger and extra environment, and parses the listening address off
// stdout. The torture runs one worker behind a tiny queue with
// compaction after every terminal record, so every crash point is
// reachable within two jobs.
func startServer(t *testing.T, bin, ledger string, extraEnv ...string) *server {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-ledger", ledger,
		"-ledger-compact", "1", "-drain", "60s", "-q")
	cmd.Env = append(os.Environ(), "GORACE=halt_on_error=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, exited: make(chan error, 1)}
	go func() { s.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-s.exited
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from dsmserved: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	if !strings.Contains(line, "listening on") || addr == "" {
		t.Fatalf("unexpected startup line %q", line)
	}
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()
	s.base = "http://" + addr
	return s
}

// submit POSTs one job; ok is false when the server died mid-request —
// the submission was never acknowledged and carries no guarantee.
func submit(t *testing.T, base, body string) (id string, ok bool) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", false
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: unexpected status %d (%+v)", body, resp.StatusCode, st)
	}
	return st.ID, true
}

// waitHealthy polls the readiness probe until recovery finishes and the
// server answers 200 — /readyz is the probe that gates on the replay
// backlog; /healthz is liveness only and turns green immediately.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pollRecovered polls a recovered job's status to a terminal state.
func pollRecovered(t *testing.T, base, id string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decodeErr != nil {
			t.Fatal(decodeErr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status of acknowledged job %s: %d — the kill lost it", id, resp.StatusCode)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 120s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// diffGolden fetches a recovered job's result and requires it
// field-identical to the committed golden cell.
func diffGolden(t *testing.T, base string, a ackedJob) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + a.id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Result dsmnc.Result `json:"result"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&payload)
	resp.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", a.golden))
	if err != nil {
		t.Fatal(err)
	}
	var want struct {
		Refs  int64          `json:"refs"`
		Stats stats.Counters `json:"stats"`
	}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if payload.Result.Refs != want.Refs {
		t.Errorf("%s: recovered Refs %d, golden %d", a.golden, payload.Result.Refs, want.Refs)
	}
	for _, d := range stats.DiffCounters(payload.Result.Counters, want.Stats) {
		t.Errorf("%s recovered vs golden: %s", a.golden, d.String())
	}
}
