package main

// End-to-end acceptance for /v1/explore against the real binary: the
// same spec submitted twice coalesces onto one run ID, an exploration
// SIGKILLed mid-flight survives a restart on the same ledger (its cells
// are ordinary journaled jobs, so the re-posted exploration re-uses
// them), and the report it then serves is byte-identical to one from a
// completely clean server.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsmnc/explore"
)

// exploreSpec is the wire spec under test: four ScaleSmall FFT cells,
// enough simulation work for the SIGKILL to land mid-exploration.
const exploreSpec = `{"bench":"FFT","scale":"small","tech":["none","sram"],"orgs":["nc","vb","vp"],"nc_kb":[16]}`

// servedProc is one running dsmserved binary under test.
type servedProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	exited chan error
}

// startServed launches the built binary and waits for its address line.
func startServed(t *testing.T, bin string, args ...string) *servedProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-q"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &servedProc{cmd: cmd, exited: make(chan error, 1)}
	go func() { p.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-p.exited
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from dsmserved: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	if !strings.Contains(line, "listening on") || addr == "" {
		t.Fatalf("unexpected startup line %q", line)
	}
	p.base = "http://" + addr
	go func() {
		for sc.Scan() {
		}
	}()
	// Wait out any ledger replay backlog before driving the API.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("dsmserved not ready within 30s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// postExplore submits a spec and decodes the run status.
func postExplore(t *testing.T, base, spec string) (explore.RunStatus, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/explore", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st explore.RunStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode explore response: %v", err)
		}
	}
	return st, resp.StatusCode
}

// waitExplore polls a run to its terminal state.
func waitExplore(t *testing.T, base, id string) explore.RunStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/explore/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st explore.RunStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != explore.RunActive {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration still %s (%+v) after 120s", st.State, st.Progress)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchReport gets the canonical report bytes of a finished run.
func fetchReport(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/explore/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", resp.StatusCode, data)
	}
	return data
}

func TestExploreEndToEndBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the dsmserved binary; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "dsmserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	ledger := filepath.Join(t.TempDir(), "explore.ledger")

	// Server 1: submit, coalesce, then SIGKILL mid-exploration. One
	// worker serializes the cells so the kill lands with work pending.
	p1 := startServed(t, bin, "-ledger", ledger, "-workers", "1")
	st, code := postExplore(t, p1.base, exploreSpec)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("first POST: status %d (%+v)", code, st)
	}
	st2, code2 := postExplore(t, p1.base, exploreSpec)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmission did not coalesce: status %d, ID %q vs %q", code2, st2.ID, st.ID)
	}
	// A junk spec is rejected at the door.
	if _, badCode := postExplore(t, p1.base, `{"bench":"FFT","bogus":1}`); badCode != http.StatusBadRequest {
		t.Fatalf("junk spec: status %d, want 400", badCode)
	}
	// SIGKILL — no drain, no goodbye. The acknowledged cell jobs are in
	// the ledger; the in-memory exploration is gone.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p1.exited

	// Server 2: same ledger. The replayed jobs re-run under their old
	// IDs; re-posting the spec starts a fresh exploration that coalesces
	// onto them through the scheduler's idempotent fingerprints.
	p2 := startServed(t, bin, "-ledger", ledger)
	rst, rcode := postExplore(t, p2.base, exploreSpec)
	if rcode != http.StatusAccepted && rcode != http.StatusOK {
		t.Fatalf("re-POST after restart: status %d", rcode)
	}
	if rst.ID != st.ID {
		t.Fatalf("spec fingerprint changed across restart: %q vs %q", rst.ID, st.ID)
	}
	final := waitExplore(t, p2.base, rst.ID)
	if final.State != explore.RunDone || final.Error != "" {
		t.Fatalf("exploration finished %s: %s", final.State, final.Error)
	}
	if final.Progress.Phase != "frontier" {
		t.Errorf("terminal phase %q, want frontier", final.Progress.Phase)
	}
	recovered := fetchReport(t, p2.base, rst.ID)

	// The explore metrics are live on /metrics.
	mresp, err := http.Get(p2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{"dsmnc_explore_runs_total 1", "dsmnc_explore_done_total 1"} {
		if !strings.Contains(string(mbody), series) {
			t.Errorf("metrics missing %q", series)
		}
	}

	// The SSE stream of a finished run delivers its terminal status.
	sresp, err := http.Get(p2.base + "/v1/explore/" + rst.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(sbody), `"state":"done"`) {
		t.Errorf("SSE stream of a finished run lacks the terminal status: %q", sbody)
	}

	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-p2.exited; err != nil {
		t.Fatalf("dsmserved exited uncleanly after SIGTERM: %v", err)
	}

	// Server 3: clean ledger, no history. The recovered report must be
	// byte-identical to this from-scratch one.
	p3 := startServed(t, bin, "-ledger", filepath.Join(t.TempDir(), "clean.ledger"))
	cst, ccode := postExplore(t, p3.base, exploreSpec)
	if ccode != http.StatusAccepted {
		t.Fatalf("clean POST: status %d", ccode)
	}
	if fin := waitExplore(t, p3.base, cst.ID); fin.State != explore.RunDone {
		t.Fatalf("clean exploration finished %s: %s", fin.State, fin.Error)
	}
	clean := fetchReport(t, p3.base, cst.ID)
	if !bytes.Equal(recovered, clean) {
		t.Errorf("report after crash-recovery differs from the clean run:\n%s\nvs\n%s", recovered, clean)
	}
}
