package main

// The serve-smoke gate (make serve-smoke): build the real dsmserved
// binary, start it on a free port, submit the Figure-9 base/FFT cell
// over the wire, poll to completion, diff the served stats against the
// committed golden corpus, then SIGTERM the server and require a clean,
// zero-status drain.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dsmnc"
	"dsmnc/serve"
	"dsmnc/stats"
)

func TestServeSmokeBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the dsmserved binary; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "dsmserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer func() {
		// ProcessState is set once Wait has returned; only a test that
		// bailed early still owns a live server to kill.
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// The first stdout line announces the listening address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from dsmserved: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	if !strings.Contains(line, "listening on") || addr == "" {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + addr
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()

	// Both probes answer on a fresh server: liveness because the
	// process is up, readiness because there is no replay backlog and
	// no quarantined executor.
	for _, probe := range []string{"/healthz", "/readyz"} {
		presp, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("%s on a fresh server: status %d, want 200", probe, presp.StatusCode)
		}
	}

	// Submit the Figure-9 baseline cell and poll it to completion.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"FFT","system":"base","scale":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", resp.StatusCode, st)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 60s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
		gresp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(gresp.Body).Decode(&st)
		gresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.State != serve.StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	rresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Result dsmnc.Result `json:"result"`
	}
	err = json.NewDecoder(rresp.Body).Decode(&payload)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Diff against the committed golden cell.
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "base_FFT.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want struct {
		Refs  int64          `json:"refs"`
		Stats stats.Counters `json:"stats"`
	}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if payload.Result.Refs != want.Refs {
		t.Errorf("served Refs %d, golden %d", payload.Result.Refs, want.Refs)
	}
	for _, d := range stats.DiffCounters(payload.Result.Counters, want.Stats) {
		t.Error("served vs golden: " + d.String())
	}

	// SIGTERM must drain and exit zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("dsmserved exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dsmserved did not exit within 30s of SIGTERM")
	}
}
