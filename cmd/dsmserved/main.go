// Command dsmserved serves the dsmnc simulator as a service: a small
// JSON API over the serve package's bounded job scheduler. Submissions
// beyond the queue bound are shed with 429 and a Retry-After instead of
// buffered without bound, identical submissions coalesce onto one job,
// and SIGTERM drains the pool gracefully before exiting. A served cell
// runs through exactly the machinery a local run uses, so its stats are
// byte-identical to dsmsim's (docs/serving.md).
//
// Usage:
//
//	dsmserved [-addr :8080] [-workers N] [-queue 256] [-timeout 0]
//	          [-max-timeout 0] [-keep 1024] [-drain 30s] [-q]
//	          [-ledger path] [-ledger-compact N] [-watchdog 3]
//	          [-lease 15s] [-retries 2] [-chaos seed]
//	          [-fleet host:port,host:port,...]
//
// With -ledger the server is crash-safe: every acknowledged job is
// durably journaled before the client sees its ID, and a restart
// replays the ledger — finished jobs come back with their results,
// unfinished jobs re-run under the same IDs (with their reassignment
// counts intact). /readyz answers 503 ("recovering") until the replay
// backlog is re-enqueued. The kill-torture suite (make crash-smoke)
// SIGKILLs this binary at every ledger crash point and verifies nothing
// acknowledged is lost.
//
// Execution runs on the serve package's lease-based executor fabric
// (docs/robustness.md §6): -lease sets the heartbeat TTL after which a
// silent attempt is revoked and reassigned, -retries bounds the
// reassignments, and -chaos (dev/test only) adds a second executor that
// injects seeded crash/stall/slow/drop/duplicate faults so the fabric
// can be exercised end to end.
//
// With -fleet the coordinator stops running cells itself and dispatches
// them to dsmworker nodes over the fleet wire protocol, one
// RemoteExecutor fault domain per node. Jobs route to nodes by
// consistent hash of their idempotent fingerprint (any coordinator
// replica routes the same spec to the same node; a node join/leave
// reroutes only ~1/N of fingerprints), a node that goes silent past
// -lease loses its leases and the work reassigns elsewhere, and the
// fleet-wide slot total sizes both the dispatch pool (when -workers is
// unset) and the Retry-After estimate on 429s. The fleet torture suite
// (make fleet-smoke) SIGKILLs and partitions real worker processes
// under this wiring and verifies no acknowledged job is lost and the
// golden corpus replays byte-identically.
//
// API:
//
//	POST   /v1/jobs             submit a job request  -> 202 (or 200 when coalesced)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result terminal status + full result
//	GET    /v1/jobs/{id}/stream status transitions as server-sent events
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/explore             submit a design-space spec -> 202 (or 200 when coalesced)
//	GET    /v1/explore/{id}        exploration status + phase progress
//	GET    /v1/explore/{id}/result canonical frontier report (409 while running)
//	GET    /v1/explore/{id}/stream progress phases as server-sent events
//	GET    /metrics             Prometheus metrics (dsmnc_serve_*, dsmnc_explore_*)
//	GET    /healthz             liveness: 200 while the process serves HTTP
//	GET    /readyz              readiness: 200 ("ok"/"degraded") when traffic
//	                            should route here, 503 with the reason
//	                            ("recovering", "draining", "quarantined") when not
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dsmnc"
	"dsmnc/explore"
	"dsmnc/serve"
	"dsmnc/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (:0 picks a free port; the chosen address is printed)")
		workers    = flag.Int("workers", 0, "worker pool size; 0 means NumCPU")
		queue      = flag.Int("queue", 256, "queue bound; submissions beyond it get 429")
		timeout    = flag.Duration("timeout", 0, "default per-job deadline for requests without timeout_ms; 0 means none")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on request-supplied deadlines; 0 means uncapped")
		keep       = flag.Int("keep", 1024, "finished jobs (and results) to retain before evicting the oldest")
		drainGrace = flag.Duration("drain", 30*time.Second, "how long a SIGTERM drain waits before cancelling live jobs")
		ledgerPath = flag.String("ledger", "", "job ledger path; empty disables crash recovery")
		compactN   = flag.Int("ledger-compact", 0, "terminal records between ledger compactions; 0 means 2x -keep")
		watchdog   = flag.Float64("watchdog", 3, "force-fail a job once it runs this multiple of its deadline; 0 disables")
		leaseTTL   = flag.Duration("lease", 15*time.Second, "executor lease TTL: a running attempt silent this long is revoked and reassigned; 0 disables leases")
		retries    = flag.Int("retries", 2, "reassignments after lease losses before a job fails; 0 disables retries")
		shards     = flag.Int("shards", 0, "default parallel engine shards per job (requests may override); 0 sequential, -1 auto")
		fleet      = flag.String("fleet", "", "comma-separated dsmworker addresses (host:port,...); execution moves to the fleet, one fault domain per node")
		chaosSeed  = flag.Int64("chaos", 0, "DEV ONLY: add a chaos executor injecting seeded crash/stall/slow/drop/duplicate faults; 0 disables")
		quiet      = flag.Bool("q", false, "suppress the startup and shutdown log lines")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("dsmserved: ")

	// The kill-torture suite arms a crash point through the environment
	// before anything touches the ledger.
	if spec := os.Getenv("DSMNC_SERVE_CRASH"); spec != "" {
		if err := armCrashHook(spec); err != nil {
			log.Fatal(err)
		}
	}

	var ledger *serve.Ledger
	if *ledgerPath != "" {
		l, err := serve.OpenLedger(*ledgerPath)
		if err != nil {
			log.Fatal(err)
		}
		ledger = l
	}

	var progress dsmnc.Progress
	baseOpt := dsmnc.DefaultOptions()
	baseOpt.Shards = *shards
	cfg := serve.Config{
		Options:        baseOpt,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		KeepResults:    *keep,
		Ledger:         ledger,
		WatchdogFactor: *watchdog,
		CompactEvery:   *compactN,
		Progress:       &progress,
		LeaseTTL:       *leaseTTL,
		MaxRetries:     *retries,
	}
	// The flag's 0 means "off"; the Config's 0 means "default".
	if *leaseTTL == 0 {
		cfg.LeaseTTL = -1
	}
	if *retries == 0 {
		cfg.MaxRetries = -1
	}
	if *chaosSeed != 0 && *fleet != "" {
		log.Fatal("-chaos and -fleet are mutually exclusive: chaos faults belong on a local executor, not a live fleet")
	}
	if *chaosSeed != 0 {
		cfg.Executors = []serve.Executor{
			serve.Local("local"),
			serve.NewChaosExecutor(serve.Local("chaos"), serve.ChaosConfig{Seed: *chaosSeed}),
		}
		log.Printf("CHAOS MODE (dev/test only): half the dispatches land on an executor injecting seeded faults (seed %d)", *chaosSeed)
	}
	if *fleet != "" {
		addrs, err := parseFleet(*fleet)
		if err != nil {
			log.Fatal(err)
		}
		execs, slots, err := buildFleet(addrs)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Executors = execs
		// Jobs route by fingerprint hash so any coordinator replica sends
		// the same spec to the same node, and a join/leave reroutes only
		// its own share.
		cfg.HashRouting = true
		// Unless pinned, size the dispatch pool to what the fleet can
		// actually run: local goroutines beyond the remote slot total
		// would just queue on workers and be shed back.
		if *workers == 0 && slots > 0 {
			cfg.Workers = slots
		}
		log.Printf("fleet: %d workers, %d slots, hash routing on", len(execs), slots)
	}
	sched, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if ledger != nil && !*quiet {
		restored, replayed := sched.RecoveryStats()
		log.Printf("ledger %s: restored %d finished jobs, re-enqueued %d unfinished",
			*ledgerPath, restored, replayed)
	}
	reg := telemetry.NewRegistry()
	if err := sched.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}
	if err := progress.RegisterMetricsLabeled(reg, "serve"); err != nil {
		log.Fatal(err)
	}
	// Design-space explorations ride the same scheduler: every cell an
	// exploration simulates is an ordinary idempotent job, so cells are
	// coalesced with direct /v1/jobs submissions, journaled in the
	// ledger, and recovered across crashes like any other work.
	runner := &explore.Runner{Engine: &explore.Engine{Sub: sched}}
	if err := runner.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Slow-client hygiene: bound reads and idle keep-alive connections so
	// a stalled peer cannot pin a connection forever. Writes are bounded
	// too; the SSE stream exempts itself with per-write deadlines.
	srv := &http.Server{
		Handler:           newHandler(sched, runner, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if !*quiet {
		log.Printf("listening on %s", ln.Addr())
	}
	// The port-discovery line for scripts (make serve-smoke): always on
	// stdout, regardless of -q.
	fmt.Printf("dsmserved listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	if !*quiet {
		log.Printf("draining (up to %s)", *drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	forced := sched.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	if forced != nil {
		log.Fatalf("drain deadline hit; live jobs were canceled: %v", forced)
	}
	if !*quiet {
		log.Print("drained cleanly")
	}
}

// newHandler binds the scheduler and metrics registry to the HTTP API.
// It is transport glue only — every decision (validation, backpressure,
// idempotency, deadlines) lives in the serve package, which is what the
// loopback acceptance tests drive through this handler.
func newHandler(s *serve.Scheduler, runner *explore.Runner, reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes))
		if err != nil {
			writeError(w, s, fmt.Errorf("%w: %v", serve.ErrBadRequest, err))
			return
		}
		req, err := serve.ParseRequest(body)
		if err != nil {
			writeError(w, s, err)
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeError(w, s, err)
			return
		}
		// A brand-new job is accepted for later; a coalesced submission
		// reports the existing job directly.
		code := http.StatusAccepted
		if st.State != serve.StateQueued {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, st, err := s.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		if !st.State.Terminal() {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": "job not finished", "status": st,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		ch, err := s.Watch(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		rc := http.NewResponseController(w)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		keep := time.NewTicker(sseKeepalive)
		defer keep.Stop()
		// push writes one SSE frame under a fresh write deadline — the
		// stream exempts itself from the server-wide WriteTimeout one
		// bounded write at a time — and reports whether the client is
		// still reading.
		push := func(frame string, args ...any) bool {
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteWindow))
			if _, err := fmt.Fprintf(w, frame, args...); err != nil {
				return false
			}
			return rc.Flush() == nil
		}
		for {
			select {
			case st, ok := <-ch:
				if !ok {
					return // terminal status delivered
				}
				data, err := json.Marshal(st)
				if err != nil {
					return
				}
				if !push("data: %s\n\n", data) {
					return
				}
			case <-keep.C:
				// Comment frame: invisible to SSE clients, a write error
				// on a dead connection — which is how a vanished client
				// is reaped instead of pinning its subscription forever.
				if !push(": keepalive\n\n") {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/explore", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, explore.MaxSpaceBytes))
		if err != nil {
			writeExploreError(w, s, fmt.Errorf("%w: %v", explore.ErrBadSpace, err))
			return
		}
		sp, err := explore.ParseSpace(body)
		if err != nil {
			writeExploreError(w, s, err)
			return
		}
		st, fresh, err := runner.Start(sp)
		if err != nil {
			writeExploreError(w, s, err)
			return
		}
		// A brand-new exploration is accepted for later; the same spec
		// resubmitted coalesces onto the existing run.
		code := http.StatusAccepted
		if !fresh {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/explore/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := runner.Status(r.PathValue("id"))
		if err != nil {
			writeExploreError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/explore/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rep, st, err := runner.Report(r.PathValue("id"))
		if err != nil {
			writeExploreError(w, s, err)
			return
		}
		if rep == nil {
			code := http.StatusConflict
			if st.State == explore.RunFailed {
				code = http.StatusBadGateway
			}
			writeJSON(w, code, map[string]any{
				"error": "exploration not finished", "status": st,
			})
			return
		}
		// The canonical bytes, verbatim: two clients fetching the same
		// exploration compare equal byte-for-byte.
		data, err := rep.Canonical()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /v1/explore/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		ch, err := runner.Watch(r.PathValue("id"))
		if err != nil {
			writeExploreError(w, s, err)
			return
		}
		rc := http.NewResponseController(w)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		keep := time.NewTicker(sseKeepalive)
		defer keep.Stop()
		push := func(frame string, args ...any) bool {
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteWindow))
			if _, err := fmt.Fprintf(w, frame, args...); err != nil {
				return false
			}
			return rc.Flush() == nil
		}
		for {
			select {
			case st, ok := <-ch:
				if !ok {
					return // terminal status delivered
				}
				data, err := json.Marshal(st)
				if err != nil {
					return
				}
				if !push("data: %s\n\n", data) {
					return
				}
			case <-keep.C:
				if !push(": keepalive\n\n") {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and answering HTTP. A
		// draining or recovering server is alive — restarting it would
		// make things worse, not better. Routability is /readyz's job.
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: whether fresh traffic should be routed here. 503
		// while recovering (replay backlog still re-enqueueing),
		// draining, or fully quarantined; 200 with reason "degraded"
		// while serving on a partly-quarantined executor fleet. The
		// body says which, plus per-executor health.
		rd := s.Readiness()
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rd)
	})
	return mux
}

// sseKeepalive is how often /stream emits a comment frame to probe the
// client's liveness; a package variable so tests can shrink it.
var sseKeepalive = 15 * time.Second

// sseWriteWindow is the per-frame write deadline on /stream: a client
// that cannot absorb one frame in this long is dead.
const sseWriteWindow = 30 * time.Second

// writeError maps the serve package's sentinel families onto HTTP: bad
// requests 400, backpressure 429 + a Retry-After estimated from the
// queue depth and observed run latency, unknown jobs 404.
func writeError(w http.ResponseWriter, s *serve.Scheduler, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, serve.ErrBusy):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
	case errors.Is(err, serve.ErrUnknownJob):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeExploreError maps the explore package's sentinels onto HTTP: bad
// specs 400, a full runner 429 (same Retry-After estimate as job sheds),
// unknown or evicted runs 404.
func writeExploreError(w http.ResponseWriter, s *serve.Scheduler, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, explore.ErrBadSpace):
		code = http.StatusBadRequest
	case errors.Is(err, explore.ErrRunnerBusy):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
	case errors.Is(err, explore.ErrUnknownRun):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// armCrashHook parses a "point:N" crash spec — die at the Nth hit of
// the named ledger crash point — and arms the serve package's hook to
// SIGKILL this process there. Torture-suite plumbing; refuses unknown
// points so a typo cannot silently test nothing.
func armCrashHook(spec string) error {
	point, nStr, ok := strings.Cut(spec, ":")
	n := int64(1)
	if ok {
		v, err := strconv.ParseInt(nStr, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("DSMNC_SERVE_CRASH=%q: occurrence must be a positive integer", spec)
		}
		n = v
	}
	known := false
	for _, p := range serve.CrashPoints {
		if p == point {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("DSMNC_SERVE_CRASH=%q: unknown crash point (have %s)",
			spec, strings.Join(serve.CrashPoints, ", "))
	}
	var hits atomic.Int64
	serve.SetCrashHook(func(p string) {
		if p != point || hits.Add(1) != n {
			return
		}
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // SIGKILL delivery is asynchronous; never run past the crash point
	})
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is gone; nothing useful left to do.
		_ = err
	}
}
