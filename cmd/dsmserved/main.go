// Command dsmserved serves the dsmnc simulator as a service: a small
// JSON API over the serve package's bounded job scheduler. Submissions
// beyond the queue bound are shed with 429 and a Retry-After instead of
// buffered without bound, identical submissions coalesce onto one job,
// and SIGTERM drains the pool gracefully before exiting. A served cell
// runs through exactly the machinery a local run uses, so its stats are
// byte-identical to dsmsim's (docs/serving.md).
//
// Usage:
//
//	dsmserved [-addr :8080] [-workers N] [-queue 256] [-timeout 0]
//	          [-max-timeout 0] [-keep 1024] [-drain 30s] [-q]
//	          [-ledger path] [-ledger-compact N] [-watchdog 3]
//
// With -ledger the server is crash-safe: every acknowledged job is
// durably journaled before the client sees its ID, and a restart
// replays the ledger — finished jobs come back with their results,
// unfinished jobs re-run under the same IDs. /healthz answers 503
// ("recovering") until the replay backlog is re-enqueued. The
// kill-torture suite (make crash-smoke) SIGKILLs this binary at every
// ledger crash point and verifies nothing acknowledged is lost.
//
// API:
//
//	POST   /v1/jobs             submit a job request  -> 202 (or 200 when coalesced)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result terminal status + full result
//	GET    /v1/jobs/{id}/stream status transitions as server-sent events
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             Prometheus metrics (dsmnc_serve_*)
//	GET    /healthz             200 when serving, 503 while recovering or draining
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dsmnc"
	"dsmnc/serve"
	"dsmnc/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (:0 picks a free port; the chosen address is printed)")
		workers    = flag.Int("workers", 0, "worker pool size; 0 means NumCPU")
		queue      = flag.Int("queue", 256, "queue bound; submissions beyond it get 429")
		timeout    = flag.Duration("timeout", 0, "default per-job deadline for requests without timeout_ms; 0 means none")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on request-supplied deadlines; 0 means uncapped")
		keep       = flag.Int("keep", 1024, "finished jobs (and results) to retain before evicting the oldest")
		drainGrace = flag.Duration("drain", 30*time.Second, "how long a SIGTERM drain waits before cancelling live jobs")
		ledgerPath = flag.String("ledger", "", "job ledger path; empty disables crash recovery")
		compactN   = flag.Int("ledger-compact", 0, "terminal records between ledger compactions; 0 means 2x -keep")
		watchdog   = flag.Float64("watchdog", 3, "force-fail a job once it runs this multiple of its deadline; 0 disables")
		quiet      = flag.Bool("q", false, "suppress the startup and shutdown log lines")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("dsmserved: ")

	// The kill-torture suite arms a crash point through the environment
	// before anything touches the ledger.
	if spec := os.Getenv("DSMNC_SERVE_CRASH"); spec != "" {
		if err := armCrashHook(spec); err != nil {
			log.Fatal(err)
		}
	}

	var ledger *serve.Ledger
	if *ledgerPath != "" {
		l, err := serve.OpenLedger(*ledgerPath)
		if err != nil {
			log.Fatal(err)
		}
		ledger = l
	}

	var progress dsmnc.Progress
	sched, err := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		KeepResults:    *keep,
		Ledger:         ledger,
		WatchdogFactor: *watchdog,
		CompactEvery:   *compactN,
		Progress:       &progress,
	})
	if err != nil {
		log.Fatal(err)
	}
	if ledger != nil && !*quiet {
		restored, replayed := sched.RecoveryStats()
		log.Printf("ledger %s: restored %d finished jobs, re-enqueued %d unfinished",
			*ledgerPath, restored, replayed)
	}
	reg := telemetry.NewRegistry()
	if err := sched.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}
	if err := progress.RegisterMetricsLabeled(reg, "serve"); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           newHandler(sched, reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if !*quiet {
		log.Printf("listening on %s", ln.Addr())
	}
	// The port-discovery line for scripts (make serve-smoke): always on
	// stdout, regardless of -q.
	fmt.Printf("dsmserved listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	if !*quiet {
		log.Printf("draining (up to %s)", *drainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	forced := sched.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	if forced != nil {
		log.Fatalf("drain deadline hit; live jobs were canceled: %v", forced)
	}
	if !*quiet {
		log.Print("drained cleanly")
	}
}

// newHandler binds the scheduler and metrics registry to the HTTP API.
// It is transport glue only — every decision (validation, backpressure,
// idempotency, deadlines) lives in the serve package, which is what the
// loopback acceptance tests drive through this handler.
func newHandler(s *serve.Scheduler, reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes))
		if err != nil {
			writeError(w, s, fmt.Errorf("%w: %v", serve.ErrBadRequest, err))
			return
		}
		req, err := serve.ParseRequest(body)
		if err != nil {
			writeError(w, s, err)
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			writeError(w, s, err)
			return
		}
		// A brand-new job is accepted for later; a coalesced submission
		// reports the existing job directly.
		code := http.StatusAccepted
		if st.State != serve.StateQueued {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, st, err := s.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		if !st.State.Terminal() {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": "job not finished", "status": st,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		ch, err := s.Watch(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, s, errors.New("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		for {
			select {
			case st, ok := <-ch:
				if !ok {
					return // terminal status delivered
				}
				data, err := json.Marshal(st)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", data)
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, s, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !s.Recovered() {
			// Ledger replay is still re-enqueueing; readiness waits so a
			// load balancer does not route fresh traffic onto the backlog.
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeError maps the serve package's sentinel families onto HTTP: bad
// requests 400, backpressure 429 + a Retry-After estimated from the
// queue depth and observed run latency, unknown jobs 404.
func writeError(w http.ResponseWriter, s *serve.Scheduler, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, serve.ErrBusy):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
	case errors.Is(err, serve.ErrUnknownJob):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// armCrashHook parses a "point:N" crash spec — die at the Nth hit of
// the named ledger crash point — and arms the serve package's hook to
// SIGKILL this process there. Torture-suite plumbing; refuses unknown
// points so a typo cannot silently test nothing.
func armCrashHook(spec string) error {
	point, nStr, ok := strings.Cut(spec, ":")
	n := int64(1)
	if ok {
		v, err := strconv.ParseInt(nStr, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("DSMNC_SERVE_CRASH=%q: occurrence must be a positive integer", spec)
		}
		n = v
	}
	known := false
	for _, p := range serve.CrashPoints {
		if p == point {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("DSMNC_SERVE_CRASH=%q: unknown crash point (have %s)",
			spec, strings.Join(serve.CrashPoints, ", "))
	}
	var hits atomic.Int64
	serve.SetCrashHook(func(p string) {
		if p != point || hits.Add(1) != n {
			return
		}
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // SIGKILL delivery is asynchronous; never run past the crash point
	})
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is gone; nothing useful left to do.
		_ = err
	}
}
