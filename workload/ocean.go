package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Ocean models the SPLASH-2 ocean simulation (paper Table 3: 258x258,
// 15.52 MB): iterative 5-point stencil sweeps over a family of grids,
// with each processor owning a contiguous band of rows. Communication is
// the boundary rows exchanged with neighboring bands every sweep —
// a small, dense, perfectly regular remote working set that is re-read
// every iteration. This is the page cache's best case: the handful of
// boundary pages relocate once and then serve hits forever, so systems
// with page caches beat the 512 KB DRAM NC (paper §6.3).
func Ocean(scale Scale) *Bench {
	var n, grids, iters int
	switch scale {
	case ScaleTest:
		n, grids, iters = 66, 4, 2
	case ScaleSmall:
		n, grids, iters = 130, 6, 8
	case ScaleMedium:
		n, grids, iters = 194, 8, 10
	default:
		n, grids, iters = 258, 10, 10 // paper's grid size
	}
	rowBytes := int64(n) * 8
	var l layout
	grid := make([]memsys.Addr, grids)
	for g := range grid {
		grid[g] = l.region(int64(n) * rowBytes)
	}
	redBase := l.region(memsys.PageBytes) // shared reduction scalars

	b := &Bench{
		Name:        "Ocean",
		Params:      fmt.Sprintf("%d x %d", n, n),
		PaperMB:     15.52,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		rowsOf := func(p int) (lo, hi int) {
			per := n / P
			if per == 0 {
				per = 1
			}
			lo = p * per
			hi = lo + per
			if p == P-1 {
				hi = n
			}
			if lo > n {
				lo, hi = n, n
			}
			return
		}
		rowAddr := func(g, r int) memsys.Addr {
			return grid[g] + memsys.Addr(int64(r)*rowBytes)
		}

		// Init: owners first-touch their row bands of every grid.
		for p := 0; p < P; p++ {
			lo, hi := rowsOf(p)
			for g := 0; g < grids; g++ {
				for r := lo; r < hi; r++ {
					e.Write(p, rowAddr(g, r))
				}
			}
		}
		e.WriteRange(0, redBase, 64, 8)
		e.Barrier()

		// Each iteration runs two relaxation sweeps over the whole grid
		// family: both read the neighbors' boundary rows, only the
		// second writes the bands. The first boundary read after a
		// neighbor's update is a coherence miss; the repeat read — a
		// full grid-family later, long after L1 eviction — is a remote
		// *capacity* miss, the reuse that network and page caches
		// exist to capture.
		const sweeps = 2
		for it := 0; it < iters; it++ {
			for s := 0; s < sweeps; s++ {
				last := s == sweeps-1
				for g := 0; g < grids; g++ {
					for p := 0; p < P; p++ {
						lo, hi := rowsOf(p)
						if lo >= hi {
							continue
						}
						// Boundary rows of the neighboring bands (remote
						// when the neighbor band lives in another cluster).
						if lo > 0 {
							e.ReadRange(p, rowAddr(g, lo-1), rowBytes, 8)
						}
						if hi < n {
							e.ReadRange(p, rowAddr(g, hi), rowBytes, 8)
						}
						// Sweep the own band; vertical-neighbor reads
						// within the band stay in cache row-to-row and
						// are folded into the sweep.
						for r := lo; r < hi; r++ {
							e.ReadRange(p, rowAddr(g, r), rowBytes, 8)
							if last {
								e.WriteRange(p, rowAddr(g, r), rowBytes, 8)
							}
						}
					}
				}
				e.Barrier()
			}
			// Global error reduction: everyone reads and one writes.
			for p := 0; p < P; p++ {
				e.Read(p, redBase)
				e.Write(p, redBase+memsys.Addr(8*(p%8)))
			}
			e.Barrier()
		}
	}
	return b
}
