package workload

import (
	"reflect"
	"testing"

	"dsmnc/memsys"
	"dsmnc/trace"
)

var testGeo = memsys.Geometry{Clusters: 8, ProcsPerCluster: 4}

func TestEmitterInterleaving(t *testing.T) {
	var got []trace.Ref
	e := NewEmitter(2, 1, func(r trace.Ref) { got = append(got, r) })
	e.Read(0, 0)
	e.Read(0, 64)
	e.Write(1, 128)
	e.Barrier()
	if len(got) != 3 {
		t.Fatalf("emitted %d refs", len(got))
	}
	// Round-robin with quantum 1: P0, P1, P0.
	wantPIDs := []int32{0, 1, 0}
	for i, w := range wantPIDs {
		if got[i].PID != w {
			t.Fatalf("ref %d from P%d, want P%d", i, got[i].PID, w)
		}
	}
	if e.Emitted() != 3 {
		t.Fatalf("Emitted = %d", e.Emitted())
	}
}

func TestEmitterAutoFlush(t *testing.T) {
	var n int
	e := NewEmitter(2, 1, func(trace.Ref) { n++ })
	e.flushAt = 10
	for i := 0; i < 25; i++ {
		e.Read(0, memsys.Addr(i*64))
	}
	if n < 20 {
		t.Fatalf("auto-flush did not run: %d delivered", n)
	}
	e.Barrier()
	if n != 25 {
		t.Fatalf("total = %d, want 25", n)
	}
}

func TestEmitterRanges(t *testing.T) {
	var got []trace.Ref
	e := NewEmitter(1, 1, func(r trace.Ref) { got = append(got, r) })
	e.ReadRange(0, 0, 64, 8)
	e.WriteRange(0, 1024, 128, 64)
	e.Barrier()
	if len(got) != 8+2 {
		t.Fatalf("ranges emitted %d refs, want 10", len(got))
	}
	if got[8].Op != trace.Write || got[8].Addr != 1024 {
		t.Fatalf("write range wrong: %v", got[8])
	}
}

func TestLayout(t *testing.T) {
	var l layout
	a := l.region(1)
	b := l.region(memsys.PageBytes + 1)
	c := l.region(100)
	if a != 0 || b != memsys.PageBytes || c != 3*memsys.PageBytes {
		t.Fatalf("regions at %d,%d,%d", a, b, c)
	}
	if l.used() != 4*memsys.PageBytes {
		t.Fatalf("used = %d", l.used())
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Fatal("zero seed not remapped")
	}
	r := newRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	if newRNG(1).intn(0) != 0 {
		t.Fatal("intn(0) != 0")
	}
}

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, b := range All(ScaleTest) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			var reads, writes int64
			procs := map[int32]bool{}
			pages := map[memsys.Page]bool{}
			b.Emit(testGeo, 4, func(r trace.Ref) {
				if r.Op == trace.Write {
					writes++
				} else {
					reads++
				}
				procs[r.PID] = true
				pages[memsys.PageOf(r.Addr)] = true
			})
			total := reads + writes
			if total < 10_000 {
				t.Fatalf("only %d refs at test scale", total)
			}
			if total > 20_000_000 {
				t.Fatalf("%d refs at test scale is too many", total)
			}
			if len(procs) != testGeo.Procs() {
				t.Fatalf("only %d/%d processors emitted refs", len(procs), testGeo.Procs())
			}
			if writes == 0 || reads == 0 {
				t.Fatalf("degenerate mix: %d reads, %d writes", reads, writes)
			}
			// The address footprint must be within the declared region.
			if int64(len(pages))*memsys.PageBytes > b.SharedBytes {
				t.Fatalf("touched %d pages > declared %d bytes", len(pages), b.SharedBytes)
			}
			if b.SharedBytes == 0 || b.PaperMB == 0 || b.Params == "" {
				t.Fatal("metadata missing")
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range []string{"FFT", "Radix", "Barnes"} {
		run := func() []trace.Ref {
			var out []trace.Ref
			ByName(name, ScaleTest).Emit(testGeo, 4, func(r trace.Ref) { out = append(out, r) })
			return out
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s not deterministic", name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if ByName("nosuch", ScaleTest) != nil {
		t.Fatal("ByName invented a benchmark")
	}
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		if ByName(n, ScaleTest) == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
	}
	all := All(ScaleTest)
	if len(all) != 8 {
		t.Fatal("All != 8 benchmarks")
	}
}

func TestScaleString(t *testing.T) {
	for s, want := range map[Scale]string{
		ScaleTest: "test", ScaleSmall: "small", ScaleMedium: "medium", ScaleLarge: "large",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Scale(99).String() == "" {
		t.Error("unknown scale empty")
	}
}

func TestScalesGrow(t *testing.T) {
	for _, name := range Names() {
		small := ByName(name, ScaleTest).SharedBytes
		big := ByName(name, ScaleLarge).SharedBytes
		if big <= small {
			t.Errorf("%s: large (%d) not bigger than test (%d)", name, big, small)
		}
	}
}

func TestBenchSource(t *testing.T) {
	src := Sequential(1024, 1).Source(memsys.Geometry{Clusters: 2, ProcsPerCluster: 2}, 1)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("Source yielded nothing")
	}
}

func TestMicroWorkloads(t *testing.T) {
	g := memsys.Geometry{Clusters: 2, ProcsPerCluster: 2}
	for _, b := range []*Bench{
		Sequential(2048, 2),
		RemoteStream(4096, 2),
		PingPong(5),
		HotScatter(1<<16, 100),
	} {
		n := 0
		b.Emit(g, 1, func(trace.Ref) { n++ })
		if n == 0 {
			t.Errorf("%s emitted nothing", b.Name)
		}
	}
}

// Per-processor program order must survive interleaving in a real
// benchmark generation.
func TestPerProcOrderPreserved(t *testing.T) {
	b := ByName("LU", ScaleTest)
	var byProc [2][]trace.Ref
	collect := func(quantum int) {
		for i := range byProc {
			byProc[i] = nil
		}
		b.Emit(testGeo, quantum, func(r trace.Ref) {
			if r.PID < 2 {
				byProc[r.PID] = append(byProc[r.PID], r)
			}
		})
	}
	collect(1)
	p0q1 := append([]trace.Ref(nil), byProc[0]...)
	collect(8)
	if !reflect.DeepEqual(p0q1, byProc[0]) {
		t.Fatal("P0 program order depends on interleaving quantum")
	}
}
