package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Cholesky models the SPLASH-2 sparse Cholesky factorization of tk15.O
// (paper Table 3: 21.37 MB). The factor is a sequence of supernodal
// panels — contiguous runs of columns stored contiguously in memory —
// processed off a task queue. Updating a panel streams through a
// pseudo-random set of earlier (usually remote) panels with high spatial
// locality *within* each panel but an irregular sequence *across* panels.
// The large spatial locality makes the page cache effective despite the
// irregular panel order, which is why Cholesky lands with the regular
// applications in Figure 9 while showing only small victim-cache gains
// in Figure 7.
func Cholesky(scale Scale) *Bench {
	var panels int
	switch scale {
	case ScaleTest:
		panels = 64
	case ScaleSmall:
		panels = 96
	case ScaleMedium:
		panels = 128
	default:
		panels = 160
	}
	// Panel sizes decrease as the factorization proceeds, like a real
	// supernodal factor. Widths vary pseudo-randomly between 4 and 16
	// columns; heights shrink linearly.
	r := newRNG(uint64(panels) * 2654435761)
	panelBytes := make([]int64, panels)
	panelBase := make([]memsys.Addr, panels)
	var l layout
	maxH := panels * 8
	if maxH > 700 {
		maxH = 700
	}
	step := maxH / (panels + 8)
	if step < 1 {
		step = 1
	}
	for s := 0; s < panels; s++ {
		w := 4 + r.intn(13)
		h := maxH - s*step
		if h < w {
			h = w
		}
		panelBytes[s] = int64(w) * int64(h) * 8
		panelBase[s] = l.region(panelBytes[s])
	}

	b := &Bench{
		Name:        "Cholesky",
		Params:      fmt.Sprintf("tk15.O model, %d supernodes", panels),
		PaperMB:     21.37,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		// Consecutive tasks are handed to the processors of one cluster,
		// as a locality-aware task queue would: the window of source
		// panels is then re-streamed within the cluster (remote
		// capacity misses with high spatial locality — the page
		// cache's friend).
		quarter := P / 4
		if quarter < 1 {
			quarter = 1
		}
		owner := func(s int) int { return (s%4)%P + 4*((s/4)%quarter) }
		// Init: task owners first-touch their panels.
		for s := 0; s < panels; s++ {
			e.WriteRange(owner(s), panelBase[s], panelBytes[s], memsys.PageBytes)
		}
		e.Barrier()

		// Left-looking factorization off a task queue: panel s is
		// updated by a pseudo-random set of earlier panels (the
		// sparsity structure), then factorized in place.
		for s := 0; s < panels; s++ {
			p := owner(s)
			rr := newRNG(uint64(s*48271 + 11))
			nsrc := 4 + rr.intn(6)
			if nsrc > s {
				nsrc = s
			}
			// Sources come only from panels whose task super-block has
			// completed (the factorization's dataflow dependencies),
			// drawn from a recent window: supernode children cluster
			// near their parent, so the window is re-streamed many
			// times — remote capacity misses with high spatial
			// locality.
			done := s - s%P // first task of the running super-block
			if nsrc > done {
				nsrc = done
			}
			for k := 0; k < nsrc; k++ {
				src := done - 1 - rr.intn(min(done, 12))
				// Stream a prefix of the source panel (the rows below
				// the current supernode) with full spatial locality —
				// once per column sweep of the target, so the source
				// is re-read at a spacing far beyond the processor
				// cache (remote capacity misses).
				span := panelBytes[src] / 2
				if span > 32<<10 {
					span = 32 << 10
				}
				upd := panelBytes[s]
				if upd > span {
					upd = span
				}
				for sweep := 0; sweep < 3; sweep++ {
					e.ReadRange(p, panelBase[src], span, 8)
					// Accumulate into the own panel.
					e.ReadRange(p, panelBase[s], upd, 16)
					e.WriteRange(p, panelBase[s], upd, 16)
				}
			}
			// Factorize the panel in place.
			e.ReadRange(p, panelBase[s], panelBytes[s], 8)
			e.WriteRange(p, panelBase[s], panelBytes[s], 8)
			if s%P == P-1 {
				e.Barrier() // super-block retired: its panels are final
			}
		}
		e.Barrier()
	}
	return b
}
