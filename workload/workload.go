// Package workload synthesizes the reference traces that drive the
// simulator: one generator per SPLASH-2 benchmark of the paper's Table 3,
// plus micro-workloads for testing.
//
// The paper used address traces of SPARC binaries; those traces are not
// available, so each generator replays the *loop-nest address pattern* of
// its kernel — the blocked sweeps of LU, the six-step transpose of FFT,
// Ocean's stencils, Radix's permutation scatter, the octree walks of
// Barnes/FMM, Cholesky's supernodal panels, Raytrace's BVH walks — over a
// first-touch-placed shared address space. The study's conclusions hinge
// on spatial locality, working-set size and shape, read/write mix and
// sharing pattern, which is exactly what loop-nest replay reproduces
// (see DESIGN.md §2 for the substitution argument).
//
// Every generator is SPMD: it emits per-processor reference streams
// separated by barriers, and the Emitter interleaves them round-robin the
// way the paper's trace-driven simulator consumed its traces.
package workload

import (
	"fmt"
	"slices"

	"dsmnc/memsys"
	"dsmnc/trace"
)

// Scale selects how big a benchmark instance to generate.
type Scale int

// Scales. Test keeps unit tests fast; Medium is the default for figure
// regeneration; Large is closest to the paper's problem sizes.
const (
	ScaleTest Scale = iota
	ScaleSmall
	ScaleMedium
	ScaleLarge
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Bench is one benchmark instance: a named generator bound to a problem
// size.
type Bench struct {
	Name    string  // paper's benchmark name
	Params  string  // problem-size description at this scale
	PaperMB float64 // shared-memory size reported in Table 3

	// SharedBytes is the shared data-set size at this scale; the
	// harness sizes proportional page caches (1/5, 1/7, 1/9) from it.
	SharedBytes int64

	run func(e *Emitter)
}

// Emit generates the benchmark's trace for geometry g, delivering the
// interleaved references to sink. quantum is the round-robin interleaving
// grain (references per processor turn); values below 1 mean 1.
func (b *Bench) Emit(g memsys.Geometry, quantum int, sink func(trace.Ref)) {
	e := NewEmitter(g.Procs(), quantum, sink)
	b.run(e)
	e.Barrier()
}

// EmitBatch is Emit delivering each processor turn as one slice instead
// of one call per reference: the stream, flattened, is identical to what
// Emit produces, but the per-reference closure dispatch is amortized over
// the quantum. The slice is only valid during the callback — the emitter
// reuses its buffers.
func (b *Bench) EmitBatch(g memsys.Geometry, quantum int, sink func([]trace.Ref)) {
	e := NewEmitter(g.Procs(), quantum, nil)
	e.batch = sink
	b.run(e)
	e.Barrier()
}

// Source returns the benchmark's trace as a pull Source. The entire trace
// is buffered per barrier phase; prefer Emit for large runs.
func (b *Bench) Source(g memsys.Geometry, quantum int) trace.Source {
	var refs []trace.Ref
	b.Emit(g, quantum, func(r trace.Ref) { refs = append(refs, r) })
	return trace.NewSliceSource(refs)
}

// Emitter collects per-processor reference streams and interleaves them
// round-robin into a sink. Generators call Read/Write per processor and
// Barrier at synchronization points; the emitter also flushes on its own
// when the buffered phase grows too large, preserving per-processor
// program order either way.
type Emitter struct {
	bufs     [][]trace.Ref
	sink     func(trace.Ref)
	batch    func([]trace.Ref) // when non-nil, used instead of sink
	quantum  int
	buffered int
	flushAt  int
	emitted  int64
}

// DefaultFlushAt bounds phase buffering (references across all
// processors) before an automatic interleave-and-flush.
const DefaultFlushAt = 1 << 22

// NewEmitter builds an emitter for nproc processors.
func NewEmitter(nproc, quantum int, sink func(trace.Ref)) *Emitter {
	if quantum < 1 {
		quantum = 1
	}
	return &Emitter{
		bufs:    make([][]trace.Ref, nproc),
		sink:    sink,
		quantum: quantum,
		flushAt: DefaultFlushAt,
	}
}

// Procs returns the number of processor streams.
func (e *Emitter) Procs() int { return len(e.bufs) }

// Emitted returns how many references have been delivered to the sink.
func (e *Emitter) Emitted() int64 { return e.emitted }

// Read emits a read by processor pid at address a.
func (e *Emitter) Read(pid int, a memsys.Addr) {
	e.bufs[pid] = append(e.bufs[pid], trace.Ref{PID: int32(pid), Op: trace.Read, Addr: a})
	e.bump()
}

// Write emits a write by processor pid at address a.
func (e *Emitter) Write(pid int, a memsys.Addr) {
	e.bufs[pid] = append(e.bufs[pid], trace.Ref{PID: int32(pid), Op: trace.Write, Addr: a})
	e.bump()
}

// ReadRange emits sequential reads covering [a, a+bytes) at the given
// access granularity (e.g. 8 for doubles).
func (e *Emitter) ReadRange(pid int, a memsys.Addr, bytes, grain int64) {
	e.emitRange(pid, a, bytes, grain, trace.Read)
}

// WriteRange emits sequential writes covering [a, a+bytes).
func (e *Emitter) WriteRange(pid int, a memsys.Addr, bytes, grain int64) {
	e.emitRange(pid, a, bytes, grain, trace.Write)
}

// emitRange appends a whole sequential run in chunks instead of going
// through the per-reference Read/Write + bump path — ranges are the bulk
// of the SPLASH-2 kernels' references, and the chunked form removes a
// call, a flush check and an append bounds dance per reference. Flush
// points are reproduced exactly: the original flushed the moment the
// buffered count reached flushAt, so each chunk is capped at the room
// left before the threshold.
func (e *Emitter) emitRange(pid int, a memsys.Addr, bytes, grain int64, op trace.Op) {
	if grain <= 0 || bytes <= 0 {
		return
	}
	n := (bytes + grain - 1) / grain
	off := int64(0)
	for n > 0 {
		chunk := n
		if room := int64(e.flushAt - e.buffered); chunk > room {
			chunk = room
		}
		buf := e.bufs[pid]
		base := len(buf)
		need := base + int(chunk)
		if cap(buf) < need {
			buf = slices.Grow(buf, int(chunk))
		}
		buf = buf[:need]
		p32 := int32(pid)
		for i := base; i < need; i++ {
			buf[i] = trace.Ref{PID: p32, Op: op, Addr: a + memsys.Addr(off)}
			off += grain
		}
		e.bufs[pid] = buf
		e.buffered += int(chunk)
		n -= chunk
		if e.buffered >= e.flushAt {
			e.flush()
		}
	}
}

func (e *Emitter) bump() {
	e.buffered++
	if e.buffered >= e.flushAt {
		e.flush()
	}
}

// Barrier flushes all buffered streams: every processor reaches the
// barrier before any post-barrier reference is emitted.
func (e *Emitter) Barrier() { e.flush() }

func (e *Emitter) flush() {
	if e.buffered == 0 {
		return
	}
	sink, batch, quantum := e.sink, e.batch, e.quantum
	pos := make([]int, len(e.bufs))
	remaining := e.buffered
	for remaining > 0 {
		for p := range e.bufs {
			buf := e.bufs[p]
			i := pos[p]
			end := i + quantum
			if end > len(buf) {
				end = len(buf)
			}
			if i == end {
				continue
			}
			if batch != nil {
				batch(buf[i:end])
			} else {
				for j := i; j < end; j++ {
					sink(buf[j])
				}
			}
			remaining -= end - i
			pos[p] = end
		}
	}
	e.emitted += int64(e.buffered)
	for p := range e.bufs {
		e.bufs[p] = e.bufs[p][:0]
	}
	e.buffered = 0
}

// layout is a bump allocator of page-aligned regions in the shared
// address space.
type layout struct {
	next memsys.Addr
}

// region reserves bytes (rounded up to whole pages) and returns the base.
func (l *layout) region(bytes int64) memsys.Addr {
	base := l.next
	pages := (bytes + memsys.PageBytes - 1) / memsys.PageBytes
	l.next += memsys.Addr(pages) * memsys.PageBytes
	return base
}

// used returns the total bytes reserved so far.
func (l *layout) used() int64 { return int64(l.next) }

// rng is a small deterministic PRNG (xorshift64*), so generators are
// reproducible without importing math/rand state machinery per proc.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// skewPick returns an index in [0, n) with a tiered hot/cold skew
// approximating the clumped object distributions of the irregular
// SPLASH-2 applications: a quarter of picks land in the hottest 2%,
// another quarter in the hottest 10%, another in the hottest 30%, and
// the rest anywhere. The resulting per-page access counts form the
// gradient that exercises relocation thresholds and page-cache
// replacement the way full-length traces did.
func skewPick(r *rng, n int) int {
	if n <= 1 {
		return 0
	}
	pick := func(m int) int {
		if m < 1 {
			m = 1
		}
		return r.intn(m)
	}
	switch r.intn(4) {
	case 0:
		return pick(n / 50)
	case 1:
		return pick(n / 10)
	case 2:
		return pick(3 * n / 10)
	default:
		return r.intn(n)
	}
}

// All returns the paper's eight benchmarks at the given scale, in the
// order of Table 3.
func All(scale Scale) []*Bench {
	return []*Bench{
		Barnes(scale),
		Cholesky(scale),
		FFT(scale),
		FMM(scale),
		LU(scale),
		Ocean(scale),
		Radix(scale),
		Raytrace(scale),
	}
}

// ByName returns the named benchmark at the given scale, or nil.
func ByName(name string, scale Scale) *Bench {
	for _, b := range All(scale) {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names lists the benchmark names in Table 3 order.
func Names() []string {
	return []string{"Barnes", "Cholesky", "FFT", "FMM", "LU", "Ocean", "Radix", "Raytrace"}
}
