package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Radix models the SPLASH-2 radix sort (paper Table 3: 1M integers,
// 9.87 MB), the paper's extreme irregular case. Each digit pass reads
// the local key chunk sequentially, ranks it through a shared histogram,
// then scatters every key into the destination array by digit — so each
// processor writes a small sub-range of each of the 1024 bucket regions,
// touching a couple of blocks in nearly every destination page. The
// result is a huge, sparse remote working set of *write* misses, heavy
// write-back traffic, and page-cache thrashing: exactly the application
// class where the paper finds DRAM NCs still superior and the victim
// cache most valuable (Figures 4, 9, 10).
func Radix(scale Scale) *Bench {
	var keys, digits int
	switch scale {
	case ScaleTest:
		keys, digits = 32<<10, 2
	case ScaleSmall:
		keys, digits = 128<<10, 3
	case ScaleMedium:
		keys, digits = 512<<10, 3
	default:
		keys, digits = 1<<20, 3 // 1M integers, as in the paper
	}
	// The paper ran radix 1024 against full-length traces; with our
	// scaled trace volumes a 1024-bucket scatter would push the rewrite
	// distance beyond every cache, flattening the design space. 256
	// buckets keeps the per-processor write working set in the band the
	// 16 KB caches + NC actually contest, preserving the paper's Radix
	// behaviour (see DESIGN.md §2).
	const radix = 128
	const keyBytes = 8
	var l layout
	arr0 := l.region(int64(keys) * keyBytes)
	arr1 := l.region(int64(keys) * keyBytes)
	hist := l.region(int64(radix) * 8) // shared rank array (hot)
	// Per-processor histogram rows: every processor publishes its local
	// counts and then reads everyone else's for the prefix computation —
	// the rank phase's all-to-all coherence reads, a large share of
	// Radix's remote *read* stall.
	rows := l.region(int64(32) * int64(radix) * 8)

	b := &Bench{
		Name:        "Radix",
		Params:      fmt.Sprintf("%dK integers, radix %d", keys/1024, radix),
		PaperMB:     9.87,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		chunk := keys / P
		bucketKeys := keys / radix // keys per bucket region
		if bucketKeys == 0 {
			bucketKeys = 1
		}
		slot := bucketKeys / P // per-proc slot within a bucket region
		if slot == 0 {
			slot = 1
		}
		keyAddr := func(base memsys.Addr, i int) memsys.Addr {
			return base + memsys.Addr(i)*keyBytes
		}

		rowBytes := int64(radix) * 8
		rowAddr := func(p int) memsys.Addr { return rows + memsys.Addr(int64(p%32)*rowBytes) }

		// Init: owners first-touch their chunks of both arrays and
		// their histogram row.
		for p := 0; p < P; p++ {
			lo := p * chunk
			e.WriteRange(p, keyAddr(arr0, lo), int64(chunk)*keyBytes, memsys.PageBytes)
			e.WriteRange(p, keyAddr(arr1, lo), int64(chunk)*keyBytes, memsys.PageBytes)
			e.Write(p, rowAddr(p))
		}
		e.WriteRange(0, hist, int64(radix)*8, memsys.PageBytes)
		e.Barrier()

		src, dst := arr0, arr1
		for d := 0; d < digits; d++ {
			// Local histogram: stream the own chunk, then publish the
			// per-processor counts.
			for p := 0; p < P; p++ {
				lo := p * chunk
				e.ReadRange(p, keyAddr(src, lo), int64(chunk)*keyBytes, 4*keyBytes)
				e.WriteRange(p, rowAddr(p), rowBytes, 8)
			}
			e.Barrier()
			// Rank phase: every processor reads every row to compute
			// its prefix sums — all-to-all coherence reads over data
			// rewritten each digit.
			for p := 0; p < P; p++ {
				for q := 0; q < P; q++ {
					e.ReadRange(p, rowAddr(q), rowBytes, 8)
				}
				e.WriteRange(p, hist+memsys.Addr(p*radix/P*8), int64(radix/P)*8, 64)
			}
			e.Barrier()
			// Permutation: read own keys in order, write each to its
			// bucket region at the processor's slot. Destination
			// buckets are pseudo-random per key, so consecutive writes
			// land in scattered pages.
			for p := 0; p < P; p++ {
				r := newRNG(uint64(d*1000003 + p*7919 + 1))
				lo := p * chunk
				fill := make([]int, radix) // per-bucket fill within the slot
				// Each processor's slot within a bucket starts at its
				// rank prefix, which in a real sort differs per bucket;
				// a per-(proc,bucket) phase reproduces those staggered
				// offsets (lockstep offsets would alias every bucket's
				// write cursor onto the same cache sets).
				phase := make([]int, radix)
				for bkt := range phase {
					phase[bkt] = newRNG(uint64(p*104729 + bkt*31 + 7)).intn(bucketKeys)
				}
				for i := 0; i < chunk; i++ {
					e.Read(p, keyAddr(src, lo+i))
					bkt := r.intn(radix)
					// Rank lookup in the (hot) shared histogram.
					e.Read(p, hist+memsys.Addr(bkt)*8)
					off := bkt*bucketKeys + (phase[bkt]+fill[bkt]%slot)%bucketKeys
					fill[bkt]++
					e.Write(p, keyAddr(dst, off))
				}
			}
			e.Barrier()
			src, dst = dst, src
		}
	}
	return b
}
