package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// LU models the SPLASH-2 blocked dense LU factorization (paper Table 3:
// 512x512, 2.16 MB). The matrix is stored block-major (16x16 blocks of
// doubles, 2 KB each) and blocks are 2D-scattered over the processors.
// Every step factorizes the diagonal block, updates the perimeter row
// and column, then updates the interior from the perimeter. The remote
// working set of a processor — the perimeter blocks of the current step —
// is small and streams with high spatial locality, so it fits a 16 KB
// NC; page-address-indexed victim caches, by contrast, suffer conflicts
// (paper §6.5: LU is the one benchmark where vxp loses).
//
// The paper modified LU so that first touch places pages at block owners
// rather than at the initializing master; the init phase below touches
// every block from its owner, reproducing that fix.
func LU(scale Scale) *Bench {
	var nb int // blocks per dimension
	switch scale {
	case ScaleTest:
		nb = 8
	case ScaleSmall:
		nb = 12
	case ScaleMedium:
		nb = 24
	default:
		nb = 32 // 512x512, as in the paper
	}
	const bsize = 16                     // block edge, elements
	const blockBytes = bsize * bsize * 8 // 2 KB
	n := nb * bsize
	var l layout
	mat := l.region(int64(nb*nb) * blockBytes)

	b := &Bench{
		Name:        "LU",
		Params:      fmt.Sprintf("%d x %d", n, n),
		PaperMB:     2.16,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		// 2D processor grid, as square as possible.
		pr := 1
		for d := 1; d*d <= P; d++ {
			if P%d == 0 {
				pr = d
			}
		}
		pcGrid := P / pr
		owner := func(bi, bj int) int { return (bi%pr)*pcGrid + bj%pcGrid }
		blockAddr := func(bi, bj int) memsys.Addr {
			return mat + memsys.Addr((bi*nb+bj)*blockBytes)
		}

		// Init: owners touch their blocks (first-touch fix from §5.2).
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				p := owner(bi, bj)
				e.Write(p, blockAddr(bi, bj))
				e.Write(p, blockAddr(bi, bj)+blockBytes/2) // second page half
			}
		}
		e.Barrier()

		readBlock := func(p int, a memsys.Addr) { e.ReadRange(p, a, blockBytes, 8) }
		updateBlock := func(p int, a memsys.Addr) {
			e.ReadRange(p, a, blockBytes, 8)
			e.WriteRange(p, a, blockBytes, 8)
		}

		for k := 0; k < nb; k++ {
			// Factor the diagonal block.
			diag := blockAddr(k, k)
			dOwner := owner(k, k)
			updateBlock(dOwner, diag)
			e.Barrier()

			// Perimeter row and column read the diagonal block.
			for j := k + 1; j < nb; j++ {
				p := owner(k, j)
				readBlock(p, diag)
				updateBlock(p, blockAddr(k, j))
			}
			for i := k + 1; i < nb; i++ {
				p := owner(i, k)
				readBlock(p, diag)
				updateBlock(p, blockAddr(i, k))
			}
			e.Barrier()

			// Interior update: A[i][j] -= A[i][k] * A[k][j].
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					p := owner(i, j)
					readBlock(p, blockAddr(i, k))
					readBlock(p, blockAddr(k, j))
					e.WriteRange(p, blockAddr(i, j), blockBytes, 8)
				}
			}
			e.Barrier()
		}
	}
	return b
}
