package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// FFT models the SPLASH-2 six-step FFT (paper Table 3: 64K points,
// 3.54 MB). The data set is a sqrt(n) x sqrt(n) matrix of complex
// doubles (16 B); each processor owns a contiguous band of rows. The
// phases are: local column FFTs, a blocked all-to-all transpose, local
// FFTs, a transpose back, and a final local pass. Remote communication
// is the transpose: every remote block is read exactly once per
// transpose with perfect spatial locality, so necessary (cold) misses
// dominate and extra NC capacity buys little — which is why the paper
// finds FFT faster with *no* NC than with an infinite DRAM NC.
func FFT(scale Scale) *Bench {
	var m int // matrix dimension; n = m*m points
	switch scale {
	case ScaleTest:
		m = 64
	case ScaleSmall:
		m = 128
	case ScaleMedium:
		m = 256 // 64K points, as in the paper
	default:
		m = 512
	}
	const elem = 16 // complex double
	n := m * m
	var l layout
	src := l.region(int64(n) * elem)
	dst := l.region(int64(n) * elem)
	roots := l.region(int64(m) * elem)

	b := &Bench{
		Name:        "FFT",
		Params:      fmt.Sprintf("%dK points", n/1024),
		PaperMB:     3.54,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		rowsOf := func(p int) (lo, hi int) {
			per := m / P
			if per == 0 {
				per = 1
			}
			lo = p * per
			hi = lo + per
			if p == P-1 {
				hi = m
			}
			if lo > m {
				lo, hi = m, m
			}
			return
		}
		rowAddr := func(base memsys.Addr, r, c int) memsys.Addr {
			return base + memsys.Addr(r*m+c)*elem
		}

		// Init: owners first-touch their rows of both arrays and the
		// shared root table (proc 0).
		for p := 0; p < P; p++ {
			lo, hi := rowsOf(p)
			for r := lo; r < hi; r++ {
				e.Write(p, rowAddr(src, r, 0))
				e.Write(p, rowAddr(dst, r, 0))
			}
		}
		e.WriteRange(0, roots, int64(m)*elem, memsys.PageBytes)
		e.Barrier()

		localPass := func(base memsys.Addr) {
			for p := 0; p < P; p++ {
				lo, hi := rowsOf(p)
				for r := lo; r < hi; r++ {
					for c := 0; c < m; c++ {
						e.Read(p, rowAddr(base, r, c))
						if c%4 == 0 {
							e.Read(p, roots+memsys.Addr(c)*elem)
						}
						e.Write(p, rowAddr(base, r, c))
					}
				}
			}
			e.Barrier()
		}

		// Blocked transpose from -> to: each processor fills its own
		// rows of `to`, reading 64-byte patches of every other
		// processor's rows of `from` (4 complex elements per block).
		const t = 4 // patch edge: 4 elements = 64 B
		transpose := func(from, to memsys.Addr) {
			for p := 0; p < P; p++ {
				lo, hi := rowsOf(p)
				for r0 := lo; r0 < hi; r0 += t {
					for c0 := 0; c0 < m; c0 += t {
						// Read the source patch: rows c0..c0+t of
						// `from` at columns r0..r0+t — each row
						// segment is one contiguous block.
						for cr := c0; cr < c0+t && cr < m; cr++ {
							e.ReadRange(p, rowAddr(from, cr, r0), t*elem, elem)
						}
						for rr := r0; rr < r0+t && rr < hi; rr++ {
							e.WriteRange(p, rowAddr(to, rr, c0), t*elem, elem)
						}
					}
				}
			}
			e.Barrier()
		}

		localPass(src)
		transpose(src, dst)
		localPass(dst)
		transpose(dst, src)
		localPass(src)
	}
	return b
}
