package workload

// Characterization tests: each generator must exhibit the locality
// profile its SPLASH-2 original is known for — that profile is what the
// paper's conclusions key on (regular/high-spatial-locality vs
// irregular/sparse), so it is asserted here rather than hoped for.

import (
	"testing"

	"dsmnc/memsys"
	"dsmnc/trace"
)

// profile summarizes a generated trace.
type profile struct {
	refs      int64
	writeFrac float64
	pages     int
	blocks    int
	// adjTransFrac is, among per-processor *block transitions* (the
	// reference moved to a different block than the processor's
	// previous one), the fraction that moved to the adjacent next
	// block — the spatial-locality signature that separates streaming
	// kernels from record-walking ones.
	adjTransFrac float64
	// pageUse is the mean number of distinct blocks touched per touched
	// page (64 = fully dense).
	pageUse float64
}

func profileOf(b *Bench) profile {
	var p profile
	var writes int64
	lastBlock := map[int32]memsys.Block{}
	pageBlocks := map[memsys.Page]map[memsys.Block]bool{}
	var trans, adj int64
	b.Emit(testGeo, 4, func(r trace.Ref) {
		p.refs++
		if r.Op == trace.Write {
			writes++
		}
		blk := memsys.BlockOf(r.Addr)
		if lb, ok := lastBlock[r.PID]; ok && blk != lb {
			trans++
			if blk == lb+1 {
				adj++
			}
		}
		lastBlock[r.PID] = blk
		pg := memsys.PageOf(r.Addr)
		m := pageBlocks[pg]
		if m == nil {
			m = make(map[memsys.Block]bool)
			pageBlocks[pg] = m
		}
		m[blk] = true
	})
	p.writeFrac = float64(writes) / float64(p.refs)
	p.pages = len(pageBlocks)
	total := 0
	for _, m := range pageBlocks {
		total += len(m)
	}
	p.blocks = total
	p.pageUse = float64(total) / float64(p.pages)
	if trans > 0 {
		p.adjTransFrac = float64(adj) / float64(trans)
	}
	return p
}

func TestRegularAppsHaveHighSpatialLocality(t *testing.T) {
	// The paper's regular class: Cholesky, FFT, LU, Ocean. Their
	// references stream: most block transitions move to the adjacent
	// block, and touched pages are densely used. FFT's local passes
	// interleave data with twiddle-table reads, which halves its raw
	// adjacency without reducing its density, so it gets a lower bar.
	for _, name := range []string{"Cholesky", "LU", "Ocean"} {
		p := profileOf(ByName(name, ScaleTest))
		if p.adjTransFrac < 0.55 {
			t.Errorf("%s: adjacent-transition fraction %.2f < 0.55 (should stream)", name, p.adjTransFrac)
		}
		if p.pageUse < 48 {
			t.Errorf("%s: page use %.1f/64 blocks (should be dense)", name, p.pageUse)
		}
	}
	fft := profileOf(ByName("FFT", ScaleTest))
	if fft.adjTransFrac < 0.20 {
		t.Errorf("FFT: adjacent-transition fraction %.2f < 0.20", fft.adjTransFrac)
	}
	if fft.pageUse < 48 {
		t.Errorf("FFT: page use %.1f/64 blocks (should be dense)", fft.pageUse)
	}
}

func TestIrregularAppsHaveLowSpatialLocality(t *testing.T) {
	// Barnes, FMM, Raytrace: scattered record accesses dominate.
	for _, name := range []string{"Barnes", "FMM", "Raytrace"} {
		p := profileOf(ByName(name, ScaleTest))
		if p.adjTransFrac > 0.45 {
			t.Errorf("%s: adjacent-transition fraction %.2f > 0.45 (should scatter)", name, p.adjTransFrac)
		}
	}
}

func TestRadixIsWriteScatter(t *testing.T) {
	p := profileOf(ByName("Radix", ScaleTest))
	if p.writeFrac < 0.10 {
		t.Errorf("Radix write fraction %.2f too low", p.writeFrac)
	}
	// The permutation writes must scatter: per-processor *write*
	// sequences rarely continue a block run. Measure writes only.
	var writes, wruns int64
	last := map[int32]memsys.Block{}
	ByName("Radix", ScaleTest).Emit(testGeo, 4, func(r trace.Ref) {
		if r.Op != trace.Write {
			return
		}
		writes++
		blk := memsys.BlockOf(r.Addr)
		if lb, ok := last[r.PID]; ok && (blk == lb || blk == lb+1) {
			wruns++
		}
		last[r.PID] = blk
	})
	if frac := float64(wruns) / float64(writes); frac > 0.5 {
		t.Errorf("Radix write-run fraction %.2f: permutation writes not scattered", frac)
	}
}

func TestReadWriteMixes(t *testing.T) {
	// Raytrace is read-almost-only; LU/Ocean/FFT mix reads and writes;
	// nothing is write-dominated except possibly Radix phases.
	cases := map[string]struct{ lo, hi float64 }{
		"Raytrace": {0.0, 0.10},
		"Barnes":   {0.0, 0.15},
		"FMM":      {0.0, 0.15},
		"LU":       {0.25, 0.45},
		"Ocean":    {0.15, 0.45},
		"FFT":      {0.30, 0.55},
		"Radix":    {0.10, 0.35},
		"Cholesky": {0.20, 0.45},
	}
	for name, want := range cases {
		p := profileOf(ByName(name, ScaleTest))
		if p.writeFrac < want.lo || p.writeFrac > want.hi {
			t.Errorf("%s: write fraction %.3f outside [%.2f, %.2f]",
				name, p.writeFrac, want.lo, want.hi)
		}
	}
}

func TestFootprintsMatchDeclaredSize(t *testing.T) {
	// Touched footprint should be a substantial part of the declared
	// shared size (no dead regions), and never exceed it.
	for _, b := range All(ScaleTest) {
		p := profileOf(b)
		touched := int64(p.pages) * memsys.PageBytes
		if touched > b.SharedBytes {
			t.Errorf("%s: touched %d > declared %d", b.Name, touched, b.SharedBytes)
		}
		if float64(touched) < 0.4*float64(b.SharedBytes) {
			t.Errorf("%s: touched %d is under 40%% of declared %d (dead data)",
				b.Name, touched, b.SharedBytes)
		}
	}
}

func TestSharingExists(t *testing.T) {
	// Every benchmark must have blocks referenced by processors of more
	// than one cluster (otherwise there is no DSM study at all).
	for _, b := range All(ScaleTest) {
		clustersOf := map[memsys.Block]map[int]bool{}
		b.Emit(testGeo, 4, func(r trace.Ref) {
			blk := memsys.BlockOf(r.Addr)
			m := clustersOf[blk]
			if m == nil {
				m = make(map[int]bool)
				clustersOf[blk] = m
			}
			m[testGeo.ClusterOf(int(r.PID))] = true
		})
		shared := 0
		for _, m := range clustersOf {
			if len(m) > 1 {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("%s: no block is shared across clusters", b.Name)
		}
	}
}
