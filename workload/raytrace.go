package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Raytrace models the SPLASH-2 ray tracer on the car scene (paper
// Table 3: 34.86 MB, the largest data set). The scene — a BVH of nodes
// plus triangle records — is built by the master processor, so first
// touch homes it on cluster 0 and almost every scene access by the other
// clusters is remote. Each ray walks the BVH from the root: the top
// levels are hot and cache-resident, but the leaves and triangles form
// an enormous, sparse, read-only remote working set with little reuse —
// read traffic dominates (Figure 10), small NCs help modestly and page
// caches fragment, leaving the 512 KB DRAM NC ahead (Figure 9).
func Raytrace(scale Scale) *Bench {
	var nodes, tris, raysPerProc int
	switch scale {
	case ScaleTest:
		nodes, tris, raysPerProc = 4096, 4096, 256
	case ScaleSmall:
		nodes, tris, raysPerProc = 16384, 16384, 1024
	case ScaleMedium:
		nodes, tris, raysPerProc = 24576, 28672, 2600
	default:
		nodes, tris, raysPerProc = 65536, 65536, 4096
	}
	const nodeBytes = 64
	const triBytes = 128
	var l layout
	nodeBase := l.region(int64(nodes) * nodeBytes)
	triBase := l.region(int64(tris) * triBytes)
	frameBase := l.region(1 << 20) // framebuffer, tiled per processor

	b := &Bench{
		Name:        "Raytrace",
		Params:      fmt.Sprintf("car model, %dK rays", raysPerProc*32/1024),
		PaperMB:     34.86,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		nodeAddr := func(i int) memsys.Addr { return nodeBase + memsys.Addr(i)*nodeBytes }
		triAddr := func(i int) memsys.Addr { return triBase + memsys.Addr(i)*triBytes }
		tileBytes := int64(1<<20) / int64(P)

		// Scene load: the master first-touches the whole scene (the
		// SPLASH raytracer reads the model file sequentially), homing
		// it on cluster 0. Framebuffer tiles are touched by their
		// owners.
		e.WriteRange(0, nodeBase, int64(nodes)*nodeBytes, memsys.PageBytes)
		e.WriteRange(0, triBase, int64(tris)*triBytes, memsys.PageBytes)
		for p := 0; p < P; p++ {
			e.WriteRange(p, frameBase+memsys.Addr(int64(p)*tileBytes), tileBytes, memsys.PageBytes)
		}
		e.Barrier()

		// BVH level boundaries: level l spans [2^l-1, 2^(l+1)-1).
		levels := 1
		for (1 << levels) <= nodes {
			levels++
		}
		// Rays are traced in coherent packets of 8: a packet shares its
		// BVH path and candidate triangles (primary rays through
		// adjacent pixels hit the same geometry), with a small per-ray
		// deviation. Across packets the walk scatters over the whole
		// scene — the sparse, read-only remote working set that makes
		// Raytrace's read traffic dominate.
		const packet = 8
		const triPool = 1600
		const nodePool = 1200
		for p := 0; p < P; p++ {
			// The processor's image tile sees one part of the scene:
			// its rays revisit a per-processor pool of triangles and
			// deep BVH nodes (skewed toward the foreground), far apart
			// in time — remote capacity misses over a sparse, read-only
			// set spanning most scene pages.
			pr := newRNG(uint64(p*6364136223 + 29))
			tpool := make([]int, triPool)
			for i := range tpool {
				tpool[i] = skewPick(pr, tris)
			}
			npool := make([]int, nodePool)
			for i := range npool {
				npool[i] = nodes/2 + skewPick(pr, nodes/2) // deep half of the BVH
			}
			for ray := 0; ray < raysPerProc; ray++ {
				r := newRNG(uint64(p*2654435761 + ray/packet*7919 + 17))
				// Walk root to a leaf: the upper levels revisit a tiny
				// hot set, the lower levels come from the tile's pool.
				for lvl := 0; lvl < levels; lvl++ {
					lo := (1 << lvl) - 1
					hi := (1 << (lvl + 1)) - 1
					if hi > nodes {
						hi = nodes
					}
					if lo >= hi {
						break
					}
					var a memsys.Addr
					if hi <= nodes/2 {
						a = nodeAddr(lo + r.intn(hi-lo))
					} else {
						a = nodeAddr(npool[r.intn(nodePool)])
					}
					e.Read(p, a)
					e.Read(p, a+32)
				}
				// Intersect the packet's candidate triangles from the
				// tile's visible set.
				for k := 0; k < 3; k++ {
					e.ReadRange(p, triAddr(tpool[r.intn(triPool)]), triBytes, 16)
				}
				// Per-ray deviation: one extra node and triangle.
				dev := newRNG(uint64(p*31 + ray + 1))
				e.Read(p, nodeAddr(dev.intn(nodes)))
				e.Read(p, triAddr(dev.intn(tris)))
				// Shade: write the own framebuffer pixel.
				e.Write(p, frameBase+memsys.Addr(int64(p)*tileBytes+int64(ray*4)%tileBytes))
			}
		}
		e.Barrier()
	}
	return b
}
