package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Micro-workloads with analytically known behavior, used by unit and
// integration tests and as minimal examples.

// Sequential returns a workload where each processor streams
// read-then-write over its own private region of the given size,
// `passes` times. All traffic is local after first touch.
func Sequential(bytesPerProc int64, passes int) *Bench {
	b := &Bench{
		Name:   "seq",
		Params: fmt.Sprintf("%dB/proc x%d", bytesPerProc, passes),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		var l layout
		base := make([]memsys.Addr, P)
		for p := 0; p < P; p++ {
			base[p] = l.region(bytesPerProc)
		}
		b.SharedBytes = l.used()
		for p := 0; p < P; p++ {
			e.WriteRange(p, base[p], bytesPerProc, memsys.PageBytes)
		}
		e.Barrier()
		for pass := 0; pass < passes; pass++ {
			for p := 0; p < P; p++ {
				e.ReadRange(p, base[p], bytesPerProc, 8)
				e.WriteRange(p, base[p], bytesPerProc, 64)
			}
			e.Barrier()
		}
	}
	return b
}

// RemoteStream returns a workload where every processor repeatedly
// streams a region owned by processor 0 (read-only): after the cold pass,
// refetches by other clusters are pure remote capacity misses when the
// region exceeds their caches.
func RemoteStream(bytes int64, passes int) *Bench {
	b := &Bench{
		Name:        "remotestream",
		Params:      fmt.Sprintf("%dB x%d", bytes, passes),
		SharedBytes: bytes,
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		var l layout
		base := l.region(bytes)
		b.SharedBytes = l.used()
		e.WriteRange(0, base, bytes, memsys.PageBytes)
		e.Barrier()
		for pass := 0; pass < passes; pass++ {
			for p := 0; p < P; p++ {
				e.ReadRange(p, base, bytes, 64)
			}
			e.Barrier()
		}
	}
	return b
}

// PingPong returns a workload where pairs of processors in different
// clusters alternately write the same block: pure coherence misses.
func PingPong(rounds int) *Bench {
	b := &Bench{
		Name:        "pingpong",
		Params:      fmt.Sprintf("%d rounds", rounds),
		SharedBytes: memsys.PageBytes,
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		var l layout
		base := l.region(memsys.PageBytes)
		e.Write(0, base)
		e.Barrier()
		for i := 0; i < rounds; i++ {
			for p := 0; p < P; p++ {
				e.Read(p, base)
				e.Write(p, base)
				e.Barrier()
			}
		}
	}
	return b
}

// HotScatter returns a workload where each processor reads
// single pseudo-random blocks of a large region owned by processor 0:
// a sparse remote working set with minimal page utilization — the page
// cache's worst case.
func HotScatter(bytes int64, refsPerProc int) *Bench {
	b := &Bench{
		Name:        "hotscatter",
		Params:      fmt.Sprintf("%dB, %d refs/proc", bytes, refsPerProc),
		SharedBytes: bytes,
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		var l layout
		base := l.region(bytes)
		blocks := int(bytes / memsys.BlockBytes)
		e.WriteRange(0, base, bytes, memsys.PageBytes)
		e.Barrier()
		for p := 0; p < P; p++ {
			r := newRNG(uint64(p + 1))
			for i := 0; i < refsPerProc; i++ {
				e.Read(p, base+memsys.Addr(r.intn(blocks))*memsys.BlockBytes)
			}
		}
		e.Barrier()
	}
	return b
}
