package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// Barnes models the SPLASH-2 Barnes-Hut N-body simulation (paper Table 3:
// 16K bodies, 3.94 MB). Each force computation walks the octree: a hot
// set of upper-level cells shared by everyone — sized just past the
// 16 KB processor cache, matching the paper's observation that Barnes's
// miss-ratio curve has a knee near 16 KB — plus a per-body scatter of
// deep cells spread over all processors' cell regions, read a word or
// two at a time (low spatial locality, irregular). Body updates are
// local. The combination gives Barnes its paper profile: the victim NC
// helps, but small page caches thrash until the adaptive threshold backs
// them off (Figure 6).
func Barnes(scale Scale) *Bench {
	var bodies, steps int
	switch scale {
	case ScaleTest:
		bodies, steps = 2048, 1
	case ScaleSmall:
		bodies, steps = 8192, 3
	case ScaleMedium:
		bodies, steps = 16384, 3 // 16K bodies, as in the paper
	default:
		bodies, steps = 32768, 3
	}
	const bodyBytes = 128
	const cellBytes = 128
	cells := bodies / 2
	hotCells := 192 // ~24 KB of hot upper-tree cells
	if hotCells > cells/2 {
		hotCells = cells / 2
	}
	var l layout
	bodyBase := l.region(int64(bodies) * bodyBytes)
	cellBase := l.region(int64(cells) * cellBytes)

	b := &Bench{
		Name:        "Barnes",
		Params:      fmt.Sprintf("%dK bodies", bodies/1024),
		PaperMB:     3.94,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		bChunk := bodies / P
		cChunk := cells / P
		bodyAddr := func(i int) memsys.Addr { return bodyBase + memsys.Addr(i)*bodyBytes }
		cellAddr := func(i int) memsys.Addr { return cellBase + memsys.Addr(i)*cellBytes }

		// Init: owners first-touch their bodies and cell regions.
		for p := 0; p < P; p++ {
			e.WriteRange(p, bodyAddr(p*bChunk), int64(bChunk)*bodyBytes, memsys.PageBytes)
			e.WriteRange(p, cellAddr(p*cChunk), int64(cChunk)*cellBytes, memsys.PageBytes)
		}
		e.Barrier()

		for step := 0; step < steps; step++ {
			// Tree build: each processor rewrites its cell region
			// (insertion of its bodies).
			for p := 0; p < P; p++ {
				e.WriteRange(p, cellAddr(p*cChunk), int64(cChunk)*cellBytes, cellBytes)
			}
			e.Barrier()

			// Force computation: per body, walk hot upper cells plus a
			// scatter of deep cells, then update the body. Spatially
			// adjacent bodies (groups of 8) walk nearly the same deep
			// cells — the temporal locality that makes Barnes's miss
			// curve knee near the 16 KB point rather than miss on
			// every cell visit.
			const group = 8
			const deepCells = 12
			const poolSize = 500
			for p := 0; p < P; p++ {
				// The processor's bodies live in one spatial region, so
				// their tree walks revisit a shared pool of deep cells
				// (clumped by skewPick) many times per step — remote
				// capacity misses over a sparse cell set.
				pr := newRNG(uint64(step*7927 + p*97 + 5))
				pool := make([]int, poolSize)
				for i := range pool {
					pool[i] = hotCells + skewPick(pr, cells-hotCells)
				}
				jit := newRNG(uint64(step*104729 + p*31 + 5))
				for i := p * bChunk; i < (p+1)*bChunk; i++ {
					if i%group == 0 || i == p*bChunk {
						// New walk for this body group.
						jit = newRNG(uint64(step*104729 + i/group*613 + 5))
					}
					r := newRNG(jit.s) // replay the group's walk
					e.Read(p, bodyAddr(i))
					// Upper tree: a random-but-hot path.
					for lvl := 0; lvl < 8; lvl++ {
						e.Read(p, cellAddr(r.intn(hotCells)))
					}
					// Deep cells shared by the group: several fields of
					// each 128 B record (two blocks, no page locality).
					for k := 0; k < deepCells; k++ {
						a := cellAddr(pool[r.intn(poolSize)])
						for _, off := range [...]memsys.Addr{0, 16, 32, 64, 80, 96} {
							e.Read(p, a+off)
						}
					}
					// Per-body deviation from the group walk.
					a := cellAddr(hotCells + int(uint64(uint32(i)*2654435761)%uint64(cells-hotCells)))
					e.Read(p, a)
					e.Read(p, a+32)
					// Neighbor bodies in the own region.
					e.Read(p, bodyAddr(p*bChunk+r.intn(bChunk)))
					e.ReadRange(p, bodyAddr(i), bodyBytes, 32)
					e.Write(p, bodyAddr(i))
					e.Write(p, bodyAddr(i)+64)
				}
			}
			e.Barrier()

			// Position update: stream own bodies.
			for p := 0; p < P; p++ {
				lo := p * bChunk
				e.ReadRange(p, bodyAddr(lo), int64(bChunk)*bodyBytes, 32)
				e.WriteRange(p, bodyAddr(lo), int64(bChunk)*bodyBytes, 64)
			}
			e.Barrier()
		}
	}
	return b
}
