package workload

import (
	"fmt"

	"dsmnc/memsys"
)

// FMM models the SPLASH-2 fast multipole method (paper Table 3: 16K
// bodies, 29.23 MB — the second-largest data set). Its communication is
// the cell-to-cell interaction lists: for every owned cell, a processor
// reads the expansion of ~15 pseudo-random cells scattered over the whole
// (large) cell array, one block per interaction. Unlike Barnes there is
// no small hot set: the remote working set is large and sparse with
// little reuse and low page utilization, so small NCs help only
// moderately, page caches fragment, and the 512 KB DRAM NC wins
// (Figure 9) — while the victim cache still beats the inclusive nc
// organization (Figures 4, 7).
func FMM(scale Scale) *Bench {
	var bodies, cells, steps int
	switch scale {
	case ScaleTest:
		bodies, cells, steps = 2048, 4096, 1
	case ScaleSmall:
		bodies, cells, steps = 8192, 16384, 2
	case ScaleMedium:
		bodies, cells, steps = 16384, 32768, 2 // 16K bodies, as in the paper
	default:
		bodies, cells, steps = 16384, 65536, 2
	}
	const bodyBytes = 128
	const cellBytes = 128
	var l layout
	bodyBase := l.region(int64(bodies) * bodyBytes)
	cellBase := l.region(int64(cells) * cellBytes)

	b := &Bench{
		Name:        "FMM",
		Params:      fmt.Sprintf("%dK bodies", bodies/1024),
		PaperMB:     29.23,
		SharedBytes: l.used(),
	}
	b.run = func(e *Emitter) {
		P := e.Procs()
		bChunk := bodies / P
		cChunk := cells / P
		bodyAddr := func(i int) memsys.Addr { return bodyBase + memsys.Addr(i)*bodyBytes }
		cellAddr := func(i int) memsys.Addr { return cellBase + memsys.Addr(i)*cellBytes }

		// Init: owners first-touch bodies and cells.
		for p := 0; p < P; p++ {
			e.WriteRange(p, bodyAddr(p*bChunk), int64(bChunk)*bodyBytes, memsys.PageBytes)
			e.WriteRange(p, cellAddr(p*cChunk), int64(cChunk)*cellBytes, memsys.PageBytes)
		}
		e.Barrier()

		for step := 0; step < steps; step++ {
			// Upward pass: each processor builds the expansions of its
			// own cells (local streaming).
			for p := 0; p < P; p++ {
				lo := p * cChunk
				e.ReadRange(p, cellAddr(lo), int64(cChunk)*cellBytes, cellBytes)
				e.WriteRange(p, cellAddr(lo), int64(cChunk)*cellBytes, cellBytes)
			}
			e.Barrier()

			// Interaction phase: per owned cell, read the expansions of
			// ~12 cells drawn from the processor's interaction pool —
			// the union of its cells' overlapping interaction lists.
			// Pool cells are revisited many times per step at spacings
			// far beyond the processor cache, so they are remote
			// *capacity* misses; the pool itself is scattered over the
			// whole (large) cell array with 2-3 cells per page — the
			// sparse, fragmented working set that defeats small NCs
			// and page caches while a 512 KB DRAM NC swallows it
			// (paper Figure 9).
			const interactions = 12
			const poolSize = 600
			for p := 0; p < P; p++ {
				pr := newRNG(uint64(step*15485863 + p*257 + 3))
				pool := make([]int, poolSize)
				for i := range pool {
					pool[i] = skewPick(pr, cells)
				}
				r := newRNG(uint64(step*6700417 + p*11 + 1))
				for c := p * cChunk; c < (p+1)*cChunk; c++ {
					for k := 0; k < interactions; k++ {
						a := cellAddr(pool[r.intn(poolSize)])
						for _, off := range [...]memsys.Addr{0, 16, 32, 64, 96} {
							e.Read(p, a+off)
						}
					}
					// Per-cell deviation outside the pool.
					a := cellAddr(int(uint64(uint32(c)*2246822519) % uint64(cells)))
					e.Read(p, a)
					e.Read(p, a+64)
					e.ReadRange(p, cellAddr(c), cellBytes, 32)
					e.Write(p, cellAddr(c))
					e.Write(p, cellAddr(c)+64)
				}
			}
			e.Barrier()

			// Downward/body pass: bodies read their leaf cell and a
			// couple of scattered neighbors, then update locally.
			for p := 0; p < P; p++ {
				r := newRNG(uint64(step*104651 + p*13 + 7))
				for i := p * bChunk; i < (p+1)*bChunk; i++ {
					e.Read(p, bodyAddr(i))
					e.Read(p, cellAddr(r.intn(cells)))
					e.Write(p, bodyAddr(i))
				}
			}
			e.Barrier()
		}
	}
	return b
}
