package dsmnc

import (
	"bytes"
	"strings"
	"testing"

	"dsmnc/stats"
)

func sampleExperiment(norm bool) Experiment {
	e := Experiment{
		ID:      "figX",
		Title:   "sample",
		Metric:  "miss-ratio %",
		Systems: []string{"sysA", "sysB"},
		Rows: []Row{
			{Bench: "W1", Values: []Value{
				{Read: 1.5, Write: 0.5, Reloc: 0.25},
				{Read: 1.0},
			}},
		},
	}
	if norm {
		e.Metric = "normalized stall"
		e.Rows[0].Values[0].Norm = 1.25
		e.Rows[0].Values[1].Norm = 0.75
	}
	return e
}

func TestWriteTableRatio(t *testing.T) {
	var buf bytes.Buffer
	sampleExperiment(false).WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "sysA", "W1", "1.500+0.500w+0.250r", "1.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTableNormalized(t *testing.T) {
	var buf bytes.Buffer
	sampleExperiment(true).WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "1.250 (r0.25%)") {
		t.Fatalf("normalized cell with relocation share missing:\n%s", out)
	}
	if !strings.Contains(out, "0.750") {
		t.Fatalf("plain normalized cell missing:\n%s", out)
	}
}

func TestWriteChart(t *testing.T) {
	var buf bytes.Buffer
	sampleExperiment(false).WriteChart(&buf, 20)
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") || !strings.Contains(out, "~") {
		t.Fatalf("stacked segments missing:\n%s", out)
	}
	buf.Reset()
	sampleExperiment(true).WriteChart(&buf, 20)
	if !strings.Contains(buf.String(), "1.250") {
		t.Fatalf("normalized chart values missing:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	sampleExperiment(false).WriteCSV(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 cells
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "figX,W1,sysA,1.5,0.5,0.25") {
		t.Fatalf("CSV row wrong: %q", lines[1])
	}
}

func TestWriteTables12(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf, stats.DefaultLatencies())
	if !strings.Contains(buf.String(), "DRAM access + tag checking") ||
		!strings.Contains(buf.String(), "13") {
		t.Fatalf("Table 1 wrong:\n%s", buf.String())
	}
	buf.Reset()
	WriteTable2(&buf, stats.DefaultLatencies())
	for _, want := range []string{"10", "3", "1", "30", "225"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteTable3Render(t *testing.T) {
	var buf bytes.Buffer
	WriteTable3(&buf, []Table3Row{
		{Name: "FFT", Params: "64K points", PaperMB: 3.54, OurMB: 1.0, Refs: 42, ReadPct: 60.0},
	})
	out := buf.String()
	for _, want := range []string{"FFT", "64K points", "3.54", "42", "60.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	abl := Ablations()
	for _, id := range []string{"ablate-ostate", "ablate-decr", "ablate-ncsize", "ablate-ncways", "ablate-threshold"} {
		if abl[id] == nil {
			t.Errorf("ablation %s missing", id)
		}
	}
}
