package dsmnc

// The simulation stack is panic-free by contract: malformed traces,
// impossible configurations and protocol-state corruption all surface as
// wrapped sentinel errors (ErrConfig, sim.ErrProtocol, sim.ErrBadRef,
// trace.ErrBadTrace, check.ErrInvariant, telemetry.ErrBadEventTrace,
// serve.ErrBadRequest, explore.ErrBadSpace), never as panics. This test
// walks the AST of every non-test source file in the library packages
// and fails on any panic call, so a regression names its exact position.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// panicFreeDirs are the library packages the contract covers. cmd/ and
// examples/ are deliberately excluded: terminating a CLI on a fatal
// error is fine (they use log.Fatal / os.Exit, not panic, regardless).
var panicFreeDirs = []string{".", "internal", "trace", "memsys", "stats", "workload", "telemetry", "serve", "explore"}

func TestSimulationStackIsPanicFree(t *testing.T) {
	fset := token.NewFileSet()
	checked := 0
	for _, root := range panicFreeDirs {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// The "." root must not recurse into cmd/, examples/ or
				// hidden dirs; named roots recurse fully.
				if root == "." && path != "." {
					return fs.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			checked++
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					t.Errorf("%s: panic call in library code (return a wrapped sentinel error instead)",
						fset.Position(call.Pos()))
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d source files scanned; the walk is broken", checked)
	}
}
