// Package explore is the design-space exploration engine: it answers
// the question the paper poses but never runs — how should a fixed RDC
// transistor budget be split between network-cache organization, size,
// associativity, and page-cache frames?
//
// An exploration is three phases over a declarative Space spec:
//
//  1. Enumerate: the Space's axes (NC technology, size, associativity,
//     indexing organization, page-cache fraction, relocation threshold)
//     are expanded into concrete dsmnc system configurations, in a
//     canonical deterministic order.
//  2. Prune: every enumerated configuration is scored with a cheap
//     analytic miss-ratio estimator (Estimator) anchored on one
//     baseline simulation, and the paper's Equation (1) model
//     (stats.Model). Configurations strictly dominated on the
//     (predicted remote-read stall, SRAM bit-cost) plane are discarded
//     before any simulation runs, with the dominating configuration
//     recorded as provenance.
//  3. Simulate: the survivors are submitted as idempotent jobs through
//     a serve.Scheduler-shaped Submitter — inheriting backpressure,
//     ledger durability and lease retry — and the results are folded
//     into the exact Pareto frontier on the (simulated stall, bit-cost)
//     plane. Every simulated point carries both its predicted and its
//     simulated stall, so model error is visible in the output.
//
// The package is panic-free by contract (panicfree_test.go): any spec
// bytes produce either a valid Space or an ErrBadSpace-wrapped error,
// and engine failures surface as errors, never as panics.
package explore

import "errors"

// ErrBadSpace reports a malformed or out-of-bounds exploration spec:
// oversized input, invalid JSON, unknown fields or axis values,
// out-of-range sizes, or an enumeration larger than MaxPoints.
var ErrBadSpace = errors.New("explore: bad space spec")
