package explore

import (
	"context"
	"errors"
	"testing"
	"time"

	"dsmnc/telemetry"
)

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	return &Runner{Engine: &Engine{Sub: newTestScheduler(t)}}
}

func smallSpec(bench string) Space {
	return Space{Bench: bench, Scale: "test", Orgs: []string{"vb"}, NCKB: []int{16}}
}

// TestRunnerCoalesceAndReport: the same spec submitted twice lands on
// one run; the finished run serves a report; junk IDs are ErrUnknownRun.
func TestRunnerCoalesceAndReport(t *testing.T) {
	ru := newTestRunner(t)
	st, fresh, err := ru.Start(smallSpec("FFT"))
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("first Start did not begin a run")
	}
	st2, fresh2, err := ru.Start(smallSpec("FFT"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh2 || st2.ID != st.ID {
		t.Fatalf("resubmission started a new run: %v %q vs %q", fresh2, st2.ID, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := ru.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != RunDone || final.Error != "" {
		t.Fatalf("run finished %s (%s)", final.State, final.Error)
	}
	if final.Progress.Phase != "frontier" {
		t.Errorf("terminal progress phase %q", final.Progress.Phase)
	}
	rep, _, err := ru.Report(st.ID)
	if err != nil || rep == nil {
		t.Fatalf("Report: %v (report %v)", err, rep)
	}
	if rep.Fingerprint != st.ID {
		t.Errorf("report fingerprint %q != run ID %q", rep.Fingerprint, st.ID)
	}

	// Coalescing after completion still returns the cached run.
	st3, fresh3, err := ru.Start(smallSpec("FFT"))
	if err != nil || fresh3 || st3.State != RunDone {
		t.Fatalf("post-completion Start: fresh=%v state=%s err=%v", fresh3, st3.State, err)
	}

	if _, err := ru.Status("no-such-run"); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("unknown ID: %v", err)
	}
	if _, _, err := ru.Report("no-such-run"); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("unknown ID report: %v", err)
	}
	if _, err := ru.Wait(context.Background(), "no-such-run"); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("unknown ID wait: %v", err)
	}
	if _, err := ru.Watch("no-such-run"); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("unknown ID watch: %v", err)
	}
}

// TestRunnerBusyBound: MaxConcurrent caps distinct active explorations.
func TestRunnerBusyBound(t *testing.T) {
	ru := newTestRunner(t)
	ru.MaxConcurrent = 1
	st, _, err := ru.Start(smallSpec("FFT"))
	if err != nil {
		t.Fatal(err)
	}
	// A distinct spec while the first may still be active must either be
	// rejected busy or (if the first already finished) start cleanly.
	if _, _, err := ru.Start(smallSpec("LU")); err != nil && !errors.Is(err, ErrRunnerBusy) {
		t.Fatalf("second Start: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ru.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// With the first terminal, a new spec fits under the bound again.
	if _, _, err := ru.Start(smallSpec("Radix")); err != nil {
		t.Fatalf("Start after drain: %v", err)
	}
}

// TestRunnerWatchDeliversTerminal: a watcher always receives the
// terminal status before its channel closes, and watching a finished
// run yields that status immediately.
func TestRunnerWatchDeliversTerminal(t *testing.T) {
	ru := newTestRunner(t)
	st, _, err := ru.Start(smallSpec("FFT"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ru.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var last RunStatus
	sawAny := false
	for s := range ch {
		last, sawAny = s, true
	}
	if !sawAny || last.State != RunDone {
		t.Fatalf("watch ended on %+v (saw any: %v)", last, sawAny)
	}

	ch2, err := ru.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-ch2
	if !ok || s.State != RunDone {
		t.Fatalf("terminal watch first recv %+v ok=%v", s, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal watch channel not closed after the snapshot")
	}
}

// TestRunnerEviction: Keep bounds remembered terminal runs FIFO.
func TestRunnerEviction(t *testing.T) {
	ru := newTestRunner(t)
	ru.Keep = 2
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var ids []string
	for _, bench := range []string{"FFT", "LU", "Radix"} {
		st, _, err := ru.Start(smallSpec(bench))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ru.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := ru.Status(ids[0]); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("oldest run not evicted: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := ru.Status(id); err != nil {
			t.Errorf("recent run %s evicted: %v", id, err)
		}
	}
}

// TestRunnerBadSpec: a broken spec is rejected synchronously.
func TestRunnerBadSpec(t *testing.T) {
	ru := newTestRunner(t)
	if _, _, err := ru.Start(Space{Bench: "nope"}); !errors.Is(err, ErrBadSpace) {
		t.Fatalf("bad spec: %v", err)
	}
}

// TestRunnerMetrics: the dsmnc_explore_* series register and reflect a
// finished run.
func TestRunnerMetrics(t *testing.T) {
	ru := newTestRunner(t)
	reg := telemetry.NewRegistry()
	if err := ru.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	st, _, err := ru.Start(smallSpec("FFT"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ru.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if got := ru.started.Load(); got != 1 {
		t.Errorf("started %d", got)
	}
	if got := ru.finished.Load(); got != 1 {
		t.Errorf("finished %d", got)
	}
	if got := ru.enumerated.Load(); got != 2 { // base + vb-16K
		t.Errorf("enumerated %d", got)
	}
	if ru.prunedTotal.Load()+ru.simulated.Load() != ru.enumerated.Load() {
		t.Errorf("pruned %d + simulated %d != enumerated %d",
			ru.prunedTotal.Load(), ru.simulated.Load(), ru.enumerated.Load())
	}
}
