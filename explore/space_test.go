package explore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsmnc"
	"dsmnc/serve"
)

func TestParseSpaceRejectsJunk(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`[]`,
		`"bench"`,
		`{"bench":"FFT"} trailing`,
		`{"bench":"FFT"}{"bench":"FFT"}`,
		`{"bench":"FFT","bogus":1}`,
		`{"bench":"NoSuchBench"}`,
		`{}`,
		`{"bench":"FFT","scale":"huge"}`,
		`{"bench":"FFT","tech":["quantum"]}`,
		`{"bench":"FFT","orgs":["vx"]}`,
		`{"bench":"FFT","nc_kb":[0]}`,
		`{"bench":"FFT","nc_kb":[-4]}`,
		`{"bench":"FFT","nc_kb":[99999999]}`,
		`{"bench":"FFT","ways":[3]}`,
		`{"bench":"FFT","ways":[32]}`,
		`{"bench":"FFT","pc_frac":[1]}`,
		`{"bench":"FFT","pc_frac":[65]}`,
		`{"bench":"FFT","thresholds":[0]}`,
		`{"bench":"FFT","nc_kb":[` + manyInts(200) + `],"ways":[1,2,4,8,16],"orgs":["nc","vb","vp","vxp"],"thresholds":[` + manyInts(64) + `]}`,
	}
	for _, c := range cases {
		_, err := ParseSpace([]byte(c))
		if err == nil {
			t.Errorf("ParseSpace(%q) accepted", c)
			continue
		}
		if !errors.Is(err, ErrBadSpace) {
			t.Errorf("ParseSpace(%q): error %v is not ErrBadSpace", c, err)
		}
	}
	if _, err := ParseSpace([]byte(strings.Repeat(" ", MaxSpaceBytes+1))); !errors.Is(err, ErrBadSpace) {
		t.Errorf("oversized spec: error %v is not ErrBadSpace", err)
	}
}

func manyInts(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	return b.String()
}

func TestSpaceCanonicalization(t *testing.T) {
	a, err := ParseSpace([]byte(`{"bench":"FFT","tech":["sram","none","sram"],"orgs":["vp","nc","vb"],"nc_kb":[64,16,16],"ways":[4,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpace([]byte(`{"bench":"FFT","tech":["none","sram"],"orgs":["nc","vb","vp"],"nc_kb":[16,64],"ways":[1,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("reordered axes changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	pa, err := a.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pa) != len(pb) || len(pa) != 1+3*2*2 {
		t.Fatalf("enumerations disagree: %d vs %d points", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name || pa[i].Cost != pb[i].Cost {
			t.Errorf("point %d differs: %q/%d vs %q/%d", i, pa[i].Name, pa[i].Cost, pb[i].Name, pb[i].Cost)
		}
	}
}

func TestEnumerateDeterministicAndValid(t *testing.T) {
	spec := `{"bench":"Ocean","scale":"test","tech":["none","sram","dram"],` +
		`"orgs":["nc","vb","vp","ncp","vbp","vpp","vxp"],"nc_kb":[4,16],"ways":[2,4],` +
		`"dram_kb":[256,512],"pc_frac":[3,5],"thresholds":[16,64]}`
	sp, err := ParseSpace([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sp.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// 1 (none) + plain 3*2*2 + pc-orgs 3*2*2*2 + vxp 2*2*2*2 + dram 2.
	want := 1 + 12 + 24 + 16 + 2
	if len(pts) != want {
		t.Fatalf("enumerated %d points, want %d", len(pts), want)
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		if seen[pt.Name] {
			t.Errorf("duplicate point name %q", pt.Name)
		}
		seen[pt.Name] = true
		// Every enumerated request must be re-parseable: what the
		// engine submits is exactly what the serve layer accepts.
		raw := fmt.Sprintf(`{"bench":%q,"system":%q,"scale":%q`, pt.Req.Bench, pt.Req.System, pt.Req.Scale)
		if pt.Req.NCBytes > 0 {
			raw += fmt.Sprintf(`,"nc_bytes":%d`, pt.Req.NCBytes)
		}
		if pt.Req.NCWays > 0 {
			raw += fmt.Sprintf(`,"nc_ways":%d`, pt.Req.NCWays)
		}
		if pt.Req.PCFrac > 0 {
			raw += fmt.Sprintf(`,"pc_frac":%d`, pt.Req.PCFrac)
		}
		if pt.Req.Threshold > 0 {
			raw += fmt.Sprintf(`,"threshold":%d`, pt.Req.Threshold)
		}
		raw += `}`
		if _, err := serve.ParseRequest([]byte(raw)); err != nil {
			t.Errorf("point %s: enumerated request rejected by serve: %v", pt.Name, err)
		}
	}
	again, err := sp.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Name != again[i].Name || pts[i].Sys != again[i].Sys || pts[i].Req != again[i].Req {
			t.Fatalf("enumeration is not deterministic at point %d", i)
		}
	}
}

func TestCostBits(t *testing.T) {
	if c := CostBits(dsmnc.Base()); c != 0 {
		t.Errorf("base cost %d, want 0", c)
	}
	nc, vb, vp := CostBits(sramSys("nc", 16<<10, 0)), CostBits(sramSys("vb", 16<<10, 0)), CostBits(sramSys("vp", 16<<10, 0))
	if nc != vb || vb != vp {
		t.Errorf("equal-geometry SRAM organizations must cost the same: nc %d vb %d vp %d", nc, vb, vp)
	}
	if big := CostBits(sramSys("vb", 64<<10, 0)); big <= vb {
		t.Errorf("64K vb cost %d not above 16K cost %d", big, vb)
	}
	pts, err := corpusSpace("FFT").Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	var vxp, plain int64
	for _, pt := range pts {
		if strings.HasPrefix(pt.Name, "sram-vxp") {
			vxp = pt.Cost
		}
		if strings.HasPrefix(pt.Name, "sram-vp-") {
			plain = pt.Cost
		}
	}
	if vxp <= plain {
		t.Errorf("vxp cost %d must exceed plain vp cost %d (per-set counters)", vxp, plain)
	}
}

// FuzzExploreSpace: any spec bytes produce either a valid, enumerable
// space or an ErrBadSpace-wrapped error — never a panic (make fuzz).
func FuzzExploreSpace(f *testing.F) {
	f.Add([]byte(`{"bench":"FFT"}`))
	f.Add([]byte(`{"bench":"Ocean","tech":["none","sram","dram"],"orgs":["vxp"],"pc_frac":[5],"thresholds":[32]}`))
	f.Add([]byte(`{"bench":"FFT","nc_kb":[1,2,4],"ways":[1,16]}`))
	f.Add([]byte(`{"bench":"FFT",`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"bench":"FFT","nc_kb":[16384],"ways":[16]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpace(data)
		if err != nil {
			if !errors.Is(err, ErrBadSpace) {
				t.Fatalf("ParseSpace error %v is not ErrBadSpace", err)
			}
			return
		}
		pts, err := sp.Enumerate()
		if err != nil {
			if !errors.Is(err, ErrBadSpace) {
				t.Fatalf("Enumerate error %v is not ErrBadSpace", err)
			}
			return
		}
		if len(pts) == 0 || len(pts) > MaxPoints {
			t.Fatalf("accepted spec enumerated %d points", len(pts))
		}
	})
}
