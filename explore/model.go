package explore

// The analytic miss-ratio estimator behind the pruning stage. It is
// anchored on ONE simulation — the no-NC baseline — whose counters
// split the remote read misses into necessary (cold + coherence) and
// capacity classes. An NC can only convert capacity misses; the
// estimator models how many each organization converts and rebuilds a
// predicted counter set, which the paper's Equation (1) model
// (stats.Model) then turns into a predicted remote-read stall.
//
// The constants are calibrated once against the committed 40-cell
// golden corpus (see TestCrossValidation) and pinned; they are rank
// constants, not accuracy constants — the pruning contract only needs
// the *ordering* of configurations to survive, and the cross-validation
// test holds the Kendall-tau floor and the zero-frontier-loss invariant
// against exactly these values.

import (
	"fmt"
	"math"

	"dsmnc"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// Organization efficiency: the fraction of the reachable victim stream
// each organization retains, relative to the block-indexed victim cache
// (vb := 1). Allocate-on-miss (nc) wastes frames on blocks that never
// return; page-indexed (vp) suffers page-conflict evictions.
const (
	effNC   = 0.45
	effVB   = 1.0
	effVP   = 0.8
	effDRAM = 0.9 // large inclusive DRAM NC: inclusion overhead only
)

// Relocation economics. A page relocation costs Lat.PageRelocation and
// pays back Lat.RemoteAccess-Lat.DRAMAccess per subsequent capacity
// read to the page. relocChurn is how many times each page-cache frame
// turns over during a run (measured on the corpus: relocations run
// ~5-10x the frame count); the break-even miss density below which
// relocation cannot pay is relocChurn * PageRelocation / savings.
const relocChurn = 6.5

// Estimator predicts per-configuration counters from one baseline run.
type Estimator struct {
	Lat      stats.Latencies
	Geometry memsys.Geometry
	// SharedBytes is the workload's shared-data footprint at the
	// explored scale (workload.Bench.SharedBytes).
	SharedBytes int64
	// Base holds the counters of the no-NC baseline simulation.
	Base stats.Counters
}

// Prediction is the estimator's account of one configuration.
type Prediction struct {
	// Counters is the predicted counter set: the baseline with the
	// modeled fraction of capacity read misses moved into NC and PC
	// hits, and the modeled relocation count.
	Counters stats.Counters
	// Stall is Equation (1) over the predicted counters.
	Stall stats.Stall
	// NCReads, PCReads and Relocs are the moved quantities, for
	// provenance.
	NCReads, PCReads, Relocs int64
}

// Predict models one configuration. It fails on infinite reference
// organizations, which have no finite geometry to model.
func (e Estimator) Predict(sys dsmnc.System) (Prediction, error) {
	switch sys.NC {
	case dsmnc.NCInfiniteSRAM, dsmnc.NCInfiniteDRAM:
		return Prediction{}, fmt.Errorf("%w: cannot model infinite organization %q", ErrBadSpace, sys.Name)
	}
	p := Prediction{Counters: e.Base}
	capReads := e.Base.RemoteCapacity().Read

	// NC capture: organization efficiency x a saturating size curve.
	// The curve's scale is the per-cluster share of the data set — the
	// victim stream one cluster's NC competes for.
	if sys.NC != dsmnc.NCNone && capReads > 0 {
		clusters := e.Geometry.Clusters
		if clusters <= 0 {
			clusters = 1
		}
		ways := sys.NCWays
		if ways <= 0 {
			ways = 1
		}
		sEff := float64(sys.NCBytes) * (1 - 0.5/float64(ways))
		perCluster := float64(e.SharedBytes) / float64(clusters)
		h := sEff / (sEff + perCluster)
		p.NCReads = int64(math.Ceil(orgEff(sys) * h * float64(capReads)))
		if p.NCReads > capReads {
			p.NCReads = capReads
		}
	}

	// PC capture: relocation pays only above a break-even miss density
	// (capacity reads per shared page), and then converts up to the
	// post-NC capacity reads at DRAM latency, charging the churned
	// relocations.
	pcBytes := sys.PCBytes
	if sys.PCFraction > 0 {
		pcBytes = e.SharedBytes / int64(sys.PCFraction)
	}
	if pcBytes > 0 && capReads > p.NCReads {
		pages := (e.SharedBytes + memsys.PageBytes - 1) / memsys.PageBytes
		frames := pcBytes / memsys.PageBytes
		if pages > 0 && frames > 0 {
			density := float64(capReads) / float64(pages)
			thr := float64(sys.Threshold)
			savings := float64(e.Lat.RemoteAccess - e.Lat.DRAMAccess)
			if savings < 1 {
				savings = 1
			}
			breakEven := thr + relocChurn*float64(e.Lat.PageRelocation)/savings
			if density > breakEven {
				p.Relocs = int64(math.Ceil(relocChurn * float64(frames)))
				p.PCReads = int64(float64(p.Relocs) * (density - thr))
				if rest := capReads - p.NCReads; p.PCReads > rest {
					p.PCReads = rest
				}
			}
		}
	}

	// Rebuild the predicted counters: the captured capacity reads move
	// from the remote class into NC/PC hits.
	p.Counters.NCHits.Read += p.NCReads
	p.Counters.PCHits.Read += p.PCReads
	p.Counters.RemoteByClass[stats.Capacity].Read -= p.NCReads + p.PCReads
	p.Counters.Relocations += p.Relocs
	p.Stall = stats.Model{Lat: e.Lat, Tech: sys.Tech()}.RemoteReadStall(&p.Counters)
	return p, nil
}

// orgEff maps the organization to its efficiency constant.
func orgEff(sys dsmnc.System) float64 {
	switch sys.NC {
	case dsmnc.NCRelaxed:
		return effNC
	case dsmnc.NCVictimBlock:
		return effVB
	case dsmnc.NCVictimPage:
		return effVP
	case dsmnc.NCInclusiveDRAM:
		return effDRAM
	}
	return 0
}
