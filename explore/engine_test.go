package explore

import (
	"bytes"
	"context"
	"testing"

	"dsmnc/serve"
)

// newTestScheduler builds a small real scheduler for engine tests.
func newTestScheduler(t *testing.T) *serve.Scheduler {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	return s
}

// TestEngineEndToEnd drives a small exploration at ScaleTest through a
// real scheduler twice and requires: correct phase ordering, a
// non-empty frontier whose points are exactly the report's on_frontier
// points, pruning provenance naming real survivors, and byte-identical
// canonical reports across the two runs (the second coalescing onto the
// first run's finished jobs).
func TestEngineEndToEnd(t *testing.T) {
	s := newTestScheduler(t)
	spec := Space{
		Bench:      "FFT",
		Scale:      "test",
		Tech:       []string{"none", "sram", "dram"},
		Orgs:       []string{"nc", "vb", "vp", "vxp"},
		NCKB:       []int{4, 16},
		PCFrac:     []int{5},
		Thresholds: []int{32},
		Contention: true,
	}

	var phases []string
	eng := &Engine{Sub: s, OnProgress: func(p Progress) { phases = append(phases, p.Phase) }}
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	if len(phases) < 4 || phases[0] != "enumerated" || phases[1] != "pruned" ||
		phases[len(phases)-1] != "frontier" {
		t.Errorf("phase sequence %v", phases)
	}
	if rep.Enumerated != 1+3*2+2+1 { // none + {nc,vb,vp}x2 sizes + vxp x2 + dram
		t.Errorf("enumerated %d", rep.Enumerated)
	}
	if rep.Enumerated != rep.Pruned+rep.Simulated {
		t.Errorf("enumerated %d != pruned %d + simulated %d", rep.Enumerated, rep.Pruned, rep.Simulated)
	}
	if len(rep.Points) != rep.Simulated || len(rep.Frontier) == 0 {
		t.Fatalf("%d points for %d simulated, frontier %d", len(rep.Points), rep.Simulated, len(rep.Frontier))
	}
	names := map[string]bool{}
	onFrontier := 0
	for _, p := range rep.Points {
		names[p.Name] = true
		if p.OnFrontier {
			onFrontier++
		}
		if p.SimStall <= 0 && p.Name != "base" {
			t.Errorf("point %s has no simulated stall", p.Name)
		}
		if spec.Contention && p.ContentionStall < p.SimStall {
			t.Errorf("point %s: contention stall %d below flat stall %d", p.Name, p.ContentionStall, p.SimStall)
		}
	}
	if onFrontier != len(rep.Frontier) {
		t.Errorf("%d on_frontier points but %d frontier entries", onFrontier, len(rep.Frontier))
	}
	for _, d := range rep.Dropped {
		if !names[d.DominatedBy] {
			t.Errorf("dropped %s dominated by %q, which was not simulated", d.Name, d.DominatedBy)
		}
	}
	for i := 1; i < len(rep.Frontier); i++ {
		a, b := rep.Frontier[i-1], rep.Frontier[i]
		if a.CostBits > b.CostBits {
			t.Errorf("frontier not cost-ordered: %s then %s", a.Name, b.Name)
		}
	}

	bytes1, err := rep.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := (&Engine{Sub: s}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	bytes2, err := rep2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Errorf("re-running the same spec changed the report bytes:\n%s\nvs\n%s", bytes1, bytes2)
	}
}

// TestEngineBadSpec: engine failures are ErrBadSpace for spec problems.
func TestEngineBadSpec(t *testing.T) {
	eng := &Engine{Sub: newTestScheduler(t)}
	if _, err := eng.Run(context.Background(), Space{Bench: "nope"}); err == nil {
		t.Fatal("bad bench accepted")
	}
}

// TestEngineContextCancel: a dead context aborts the exploration.
func TestEngineContextCancel(t *testing.T) {
	eng := &Engine{Sub: newTestScheduler(t)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, Space{Bench: "FFT", Scale: "test"}); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}
