package explore

// The declarative exploration spec. A Space names one benchmark and the
// axes of the design space to sweep; Enumerate expands the axes into
// concrete dsmnc systems in a canonical, deterministic order, so the
// same spec always produces the same point list (and therefore the same
// job fingerprints and the same report bytes).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
	"slices"

	"dsmnc"
	"dsmnc/memsys"
	"dsmnc/serve"
	"dsmnc/workload"
)

// MaxSpaceBytes bounds what ParseSpace will even look at.
const MaxSpaceBytes = 1 << 16

// MaxPoints bounds one exploration's enumeration; a spec whose axis
// cross-product exceeds it is rejected with ErrBadSpace rather than
// silently truncated.
const MaxPoints = 4096

// Space is the declarative design-space spec. Empty axes mean the
// paper's defaults (see normalized). Axis values are deduplicated and
// canonically ordered, so specs differing only in axis order coalesce
// to the same fingerprint.
type Space struct {
	// Bench is the workload name (FFT, Ocean, ...; workload.Names).
	Bench string `json:"bench"`
	// Scale is the workload scale: test, small, medium or large;
	// empty means small.
	Scale string `json:"scale,omitempty"`
	// Tech lists the NC technologies to sweep: "none" (the no-NC
	// baseline), "sram" and/or "dram". Empty means ["none","sram"].
	Tech []string `json:"tech,omitempty"`
	// Orgs lists the SRAM NC organizations: "nc" (allocate-on-miss),
	// "vb" (block-indexed victim), "vp" (page-indexed victim), their
	// page-cache-bearing R-NUMA forms "ncp"/"vbp"/"vpp", and "vxp"
	// (page-indexed victim with per-set counters and a page cache).
	// Empty means ["nc","vb","vp"].
	Orgs []string `json:"orgs,omitempty"`
	// NCKB lists SRAM NC sizes in KB. Empty means [16] (the paper's).
	NCKB []int `json:"nc_kb,omitempty"`
	// Ways lists NC associativities (power of two, 1..16). Empty means
	// [4] (the paper's).
	Ways []int `json:"ways,omitempty"`
	// DRAMKB lists DRAM NC sizes in KB for tech "dram" (the NUMA-Q
	// style inclusive organization). Empty means [512] (the paper's).
	DRAMKB []int `json:"dram_kb,omitempty"`
	// PCFrac lists page-cache sizes as 1/frac of the workload data set,
	// applied to the page-cache-bearing orgs (ncp, vbp, vpp, vxp).
	// Empty means [5] when such an org is listed.
	PCFrac []int `json:"pc_frac,omitempty"`
	// Thresholds lists vxp relocation thresholds. Empty means [32].
	Thresholds []int `json:"thresholds,omitempty"`
	// Contention additionally scores survivors under the queueing-
	// corrected contention model (stats.ContentionModel).
	Contention bool `json:"contention,omitempty"`
	// Exhaustive skips the analytic pruning phase and simulates every
	// enumerated point — for validation runs and small hand-picked
	// sweeps where every row matters more than the saved simulations.
	Exhaustive bool `json:"exhaustive,omitempty"`
}

// Point is one enumerated configuration: the concrete dsmnc system (for
// the analytic model and the bit-cost account) together with the serve
// request that simulates it (for the scheduler).
type Point struct {
	Name string        // canonical point name, unique within the space
	Sys  dsmnc.System  // the concrete configuration
	Req  serve.Request // the job that simulates it
	Cost int64         // SRAM bit cost (CostBits)
}

// ParseSpace decodes and validates one JSON space spec. Every failure —
// oversized input, malformed JSON, unknown fields, trailing garbage,
// unknown axis values, out-of-range sizes, an oversized cross-product —
// is an ErrBadSpace-wrapped error, never a panic.
func ParseSpace(data []byte) (Space, error) {
	if len(data) > MaxSpaceBytes {
		return Space{}, fmt.Errorf("%w: spec over %d bytes", ErrBadSpace, MaxSpaceBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Space
	if err := dec.Decode(&s); err != nil {
		return Space{}, fmt.Errorf("%w: %v", ErrBadSpace, err)
	}
	if dec.More() {
		return Space{}, fmt.Errorf("%w: trailing data after the spec object", ErrBadSpace)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Space{}, fmt.Errorf("%w: trailing data after the spec object", ErrBadSpace)
	}
	return s.Normalize()
}

// techRank and orgRank pin the canonical axis order, independent of the
// order the spec listed the values in.
var techRank = map[string]int{"none": 0, "sram": 1, "dram": 2}
var orgRank = map[string]int{"nc": 0, "vb": 1, "vp": 2, "ncp": 3, "vbp": 4, "vpp": 5, "vxp": 6}

// orgHasPC reports whether the organization carries a page cache.
func orgHasPC(org string) bool {
	switch org {
	case "ncp", "vbp", "vpp", "vxp":
		return true
	}
	return false
}

// canonInts sorts, deduplicates and bounds-checks an integer axis.
func canonInts(name string, vals []int, lo, hi int) ([]int, error) {
	out := slices.Clone(vals)
	slices.Sort(out)
	out = slices.Compact(out)
	for _, v := range out {
		if v < lo || v > hi {
			return nil, fmt.Errorf("%w: %s value %d outside [%d,%d]", ErrBadSpace, name, v, lo, hi)
		}
	}
	return out, nil
}

// Normalize fills defaults, canonicalizes axis order, and validates the
// spec. The result is the canonical form: equal canonical forms mean
// equal fingerprints and equal enumerations.
func (s Space) Normalize() (Space, error) {
	if s.Scale == "" {
		s.Scale = "small"
	}
	scale, ok := scaleByName(s.Scale)
	if !ok {
		return Space{}, fmt.Errorf("%w: unknown scale %q (test|small|medium|large)", ErrBadSpace, s.Scale)
	}
	if s.Bench == "" {
		return Space{}, fmt.Errorf("%w: missing bench", ErrBadSpace)
	}
	if workload.ByName(s.Bench, scale) == nil {
		return Space{}, fmt.Errorf("%w: unknown bench %q (one of %v)", ErrBadSpace, s.Bench, workload.Names())
	}

	if len(s.Tech) == 0 {
		s.Tech = []string{"none", "sram"}
	}
	s.Tech = slices.Clone(s.Tech)
	for _, t := range s.Tech {
		if _, ok := techRank[t]; !ok {
			return Space{}, fmt.Errorf("%w: unknown tech %q (none|sram|dram)", ErrBadSpace, t)
		}
	}
	slices.SortFunc(s.Tech, func(a, b string) int { return techRank[a] - techRank[b] })
	s.Tech = slices.Compact(s.Tech)

	if len(s.Orgs) == 0 {
		s.Orgs = []string{"nc", "vb", "vp"}
	}
	s.Orgs = slices.Clone(s.Orgs)
	anyPC := false
	for _, o := range s.Orgs {
		if _, ok := orgRank[o]; !ok {
			return Space{}, fmt.Errorf("%w: unknown org %q (nc|vb|vp|ncp|vbp|vpp|vxp)", ErrBadSpace, o)
		}
		anyPC = anyPC || orgHasPC(o)
	}
	slices.SortFunc(s.Orgs, func(a, b string) int { return orgRank[a] - orgRank[b] })
	s.Orgs = slices.Compact(s.Orgs)

	var err error
	if len(s.NCKB) == 0 {
		s.NCKB = []int{16}
	}
	if s.NCKB, err = canonInts("nc_kb", s.NCKB, 1, 16<<10); err != nil {
		return Space{}, err
	}
	if len(s.Ways) == 0 {
		s.Ways = []int{4}
	}
	if s.Ways, err = canonInts("ways", s.Ways, 1, 16); err != nil {
		return Space{}, err
	}
	for _, w := range s.Ways {
		if bits.OnesCount(uint(w)) != 1 {
			return Space{}, fmt.Errorf("%w: ways %d is not a power of two", ErrBadSpace, w)
		}
	}
	if len(s.DRAMKB) == 0 {
		s.DRAMKB = []int{512}
	}
	if s.DRAMKB, err = canonInts("dram_kb", s.DRAMKB, 1, 16<<10); err != nil {
		return Space{}, err
	}
	if len(s.PCFrac) == 0 && anyPC {
		s.PCFrac = []int{5}
	}
	if s.PCFrac, err = canonInts("pc_frac", s.PCFrac, 2, 64); err != nil {
		return Space{}, err
	}
	if len(s.Thresholds) == 0 {
		s.Thresholds = []int{32}
	}
	if s.Thresholds, err = canonInts("thresholds", s.Thresholds, 1, 1<<20); err != nil {
		return Space{}, err
	}
	if n := s.countPoints(); n > MaxPoints {
		return Space{}, fmt.Errorf("%w: %d points exceed the %d-point bound", ErrBadSpace, n, MaxPoints)
	} else if n == 0 {
		return Space{}, fmt.Errorf("%w: the spec enumerates no points", ErrBadSpace)
	}
	return s, nil
}

// scaleByName maps a scale name to the workload scale.
func scaleByName(s string) (workload.Scale, bool) {
	switch s {
	case "test":
		return workload.ScaleTest, true
	case "small":
		return workload.ScaleSmall, true
	case "medium":
		return workload.ScaleMedium, true
	case "large":
		return workload.ScaleLarge, true
	}
	return 0, false
}

// countPoints sizes the enumeration without materializing it.
func (s Space) countPoints() int {
	n := 0
	for _, t := range s.Tech {
		switch t {
		case "none":
			n++
		case "dram":
			n += len(s.DRAMKB)
		case "sram":
			for _, org := range s.Orgs {
				per := len(s.NCKB) * len(s.Ways)
				if orgHasPC(org) {
					per *= len(s.PCFrac)
					if org == "vxp" {
						per *= len(s.Thresholds)
					}
				}
				n += per
			}
		}
	}
	return n
}

// Fingerprint condenses the canonical spec into a stable token; specs
// that normalize identically share it.
func (s Space) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", s)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Enumerate expands the (already normalized) spec into its concrete
// points, in canonical order: tech, then organization, then size, then
// associativity, then page-cache fraction, then threshold. It fails
// with ErrBadSpace if the spec was not normalized or a configuration
// cannot be constructed.
func (s Space) Enumerate() ([]Point, error) {
	ns, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	pts := make([]Point, 0, ns.countPoints())
	add := func(name string, sys dsmnc.System, req serve.Request) {
		req.Bench, req.Scale = ns.Bench, ns.Scale
		pts = append(pts, Point{Name: name, Sys: sys, Req: req, Cost: CostBits(sys)})
	}
	for _, t := range ns.Tech {
		switch t {
		case "none":
			add("base", dsmnc.Base(), serve.Request{System: "base"})
		case "sram":
			for _, org := range ns.Orgs {
				for _, kb := range ns.NCKB {
					for _, w := range ns.Ways {
						bytes := kb << 10
						if bytes/memsys.BlockBytes < w {
							return nil, fmt.Errorf("%w: nc_kb %d too small for %d ways", ErrBadSpace, kb, w)
						}
						base := fmt.Sprintf("sram-%s-%dK-w%d", org, kb, w)
						switch org {
						case "nc", "vb", "vp":
							sys := sramSys(org, bytes, 0)
							sys.NCWays = w
							add(base, sys, serve.Request{System: org, NCBytes: bytes, NCWays: w})
						case "ncp", "vbp", "vpp":
							for _, frac := range ns.PCFrac {
								sys := sramSys(org[:2], bytes, frac)
								sys.NCWays = w
								add(fmt.Sprintf("%s-pc%d", base, frac), sys,
									serve.Request{System: org[:2], NCBytes: bytes, NCWays: w, PCFrac: frac})
							}
						case "vxp":
							for _, frac := range ns.PCFrac {
								for _, thr := range ns.Thresholds {
									sys := dsmnc.VXPFrac(bytes, frac, uint32(thr))
									sys.NCWays = w
									add(fmt.Sprintf("%s-pc%d-t%d", base, frac, thr), sys,
										serve.Request{System: "vxp", NCBytes: bytes, NCWays: w, PCFrac: frac, Threshold: uint32(thr)})
								}
							}
						}
					}
				}
			}
		case "dram":
			for _, kb := range ns.DRAMKB {
				sys := dsmnc.NCD()
				sys.NCBytes = kb << 10
				add(fmt.Sprintf("dram-%dK", kb), sys, serve.Request{System: "NCD", NCBytes: kb << 10})
			}
		}
	}
	return pts, nil
}

// sramSys builds the plain or page-cache-bearing SRAM organization.
func sramSys(org string, bytes, pcFrac int) dsmnc.System {
	switch {
	case pcFrac > 0:
		switch org {
		case "nc":
			return dsmnc.NCPFrac(bytes, pcFrac)
		case "vb":
			return dsmnc.VBPFrac(bytes, pcFrac)
		default:
			return dsmnc.VPPFrac(bytes, pcFrac)
		}
	default:
		switch org {
		case "nc":
			return dsmnc.NC(bytes)
		case "vb":
			return dsmnc.VB(bytes)
		default:
			return dsmnc.VP(bytes)
		}
	}
}
