package explore

// The SRAM bit-cost account: the x-axis of the exploration plane. The
// cost of a configuration is the SRAM it adds to the remote-data
// controller — data and tag bits for an SRAM NC, tag bits only for a
// DRAM NC (the data array is commodity DRAM), the per-set victimization
// counters for vxp, and nothing for the page cache (its frames live in
// main memory, managed by the OS). The baseline therefore costs zero,
// and equal-geometry SRAM organizations cost the same: the plane
// isolates *organization* choices from *budget* choices.

import (
	"math"
	"math/bits"

	"dsmnc"
	"dsmnc/memsys"
)

// Per-line and per-set overhead widths. State is the MOESI/validity
// encoding; the counter width matches the 16-bit per-set victimization
// counters of the vxp organization.
const (
	costStateBits   = 3
	costCounterBits = 16
)

// CostBits returns the SRAM bit cost of a system configuration.
// Infinite reference organizations (NCS, infDRAM) are not buildable
// hardware; they cost MaxInt64/2 so they never dominate a finite point.
func CostBits(s dsmnc.System) int64 {
	switch s.NC {
	case dsmnc.NCNone:
		return 0
	case dsmnc.NCInfiniteSRAM, dsmnc.NCInfiniteDRAM:
		return math.MaxInt64 / 2
	}
	lines := int64(s.NCBytes / memsys.BlockBytes)
	ways := int64(s.NCWays)
	if ways <= 0 {
		ways = 1
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Tag width: the address bits not implied by the set index and the
	// block offset.
	tag := int64(memsys.AddrSpaceBits) - int64(bits.Len64(uint64(sets)-1)) - memsys.BlockShift
	if tag < 1 {
		tag = 1
	}
	cost := lines * (tag + costStateBits)
	if s.NC != dsmnc.NCInclusiveDRAM {
		cost += int64(s.NCBytes) * 8 // the SRAM data array itself
	}
	if s.Counters == dsmnc.CountersNCSet {
		cost += sets * costCounterBits
	}
	return cost
}
