package explore

// The standing cross-validation gate: the analytic estimator against
// the committed 40-cell golden corpus. The corpus is the enumeration of
// the paper's principal organizations ({base, nc, vb, vp, vxp5-t32} x 8
// benchmarks at ScaleSmall); the committed counters are the simulated
// truth. The test holds three invariants:
//
//  1. Pruning power: strict dominance on the (predicted stall, cost)
//     plane discards at least half of the enumerated configurations.
//  2. Pruning safety: no true Pareto point is lost — every point of the
//     frontier computed from the *simulated* stalls of ALL
//     configurations is still reachable from the pruning survivors
//     (same cost, same simulated stall).
//  3. Rank agreement: the Kendall tau-b between predicted and simulated
//     stalls over the whole corpus stays above the pinned floor.
//
// The estimator constants (orgEff, relocChurn, the capture curve) are
// calibrated against exactly this corpus; if a simulator change
// regenerates the golden files and breaks one of the invariants, the
// constants need re-calibrating — that is this test doing its job.

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmnc"
	"dsmnc/stats"
	"dsmnc/workload"
)

// tauFloor is the pinned Kendall tau-b floor for predicted-vs-simulated
// stall rank agreement over the full corpus.
const tauFloor = 0.80

// corpusSpace is the Space whose enumeration is exactly the golden
// corpus cells for one benchmark.
func corpusSpace(bench string) Space {
	return Space{
		Bench:      bench,
		Tech:       []string{"none", "sram"},
		Orgs:       []string{"nc", "vb", "vp", "vxp"},
		NCKB:       []int{16},
		Ways:       []int{4},
		PCFrac:     []int{5},
		Thresholds: []int{32},
	}
}

// goldenCell mirrors the committed corpus schema.
type goldenCell struct {
	Refs  int64          `json:"refs"`
	Stats stats.Counters `json:"stats"`
}

// loadCell reads one committed golden cell.
func loadCell(t *testing.T, sys dsmnc.System, bench string) goldenCell {
	t.Helper()
	name := strings.NewReplacer("(", "-", ")", "", "/", "-", " ", "").Replace(sys.Name)
	raw, err := os.ReadFile(filepath.Join("..", "testdata", "golden", name+"_"+bench+".json"))
	if err != nil {
		t.Fatalf("golden corpus cell: %v", err)
	}
	var c goldenCell
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatalf("golden corpus cell %s_%s: %v", name, bench, err)
	}
	return c
}

func TestCrossValidation(t *testing.T) {
	lat := stats.DefaultLatencies()
	var enumerated, discarded int
	var pred, sim []float64 // pooled, for the rank-agreement floor

	for _, bench := range workload.Names() {
		t.Run(bench, func(t *testing.T) {
			pts, err := corpusSpace(bench).Enumerate()
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != 5 {
				t.Fatalf("corpus space enumerated %d points, want 5", len(pts))
			}
			base := loadCell(t, dsmnc.Base(), bench)
			est := Estimator{
				Lat:         lat,
				Geometry:    dsmnc.DefaultOptions().Geometry,
				SharedBytes: workload.ByName(bench, workload.ScaleSmall).SharedBytes,
				Base:        base.Stats,
			}
			predStall := make([]int64, len(pts))
			simStall := make([]int64, len(pts))
			for i, pt := range pts {
				p, err := est.Predict(pt.Sys)
				if err != nil {
					t.Fatal(err)
				}
				cell := loadCell(t, pt.Sys, bench)
				m := stats.Model{Lat: lat, Tech: pt.Sys.Tech()}
				predStall[i] = p.Stall.Total()
				simStall[i] = m.RemoteReadStall(&cell.Stats).Total()
				pred = append(pred, float64(predStall[i]))
				sim = append(sim, float64(simStall[i]))
			}

			cost := func(i int) int64 { return pts[i].Cost }
			pruned := dominatedBy(len(pts), cost, func(i int) int64 { return predStall[i] })
			truth := dominatedBy(len(pts), cost, func(i int) int64 { return simStall[i] })

			enumerated += len(pts)
			kept := 0
			for i := range pts {
				if pruned[i] < 0 {
					kept++
				} else {
					discarded++
				}
			}
			t.Logf("kept %d/%d", kept, len(pts))
			for i := range pts {
				t.Logf("  %-22s cost %8d pred %10d sim %10d pruned=%v frontier=%v",
					pts[i].Name, pts[i].Cost, predStall[i], simStall[i], pruned[i] >= 0, truth[i] < 0)
			}

			// Safety: every true frontier point survives — same cost and
			// same simulated stall reachable among the kept points.
			for f := range pts {
				if truth[f] >= 0 {
					continue
				}
				covered := false
				for k := range pts {
					if pruned[k] < 0 && pts[k].Cost == pts[f].Cost && simStall[k] == simStall[f] {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("pruning lost true frontier point %s (cost %d, sim stall %d)",
						pts[f].Name, pts[f].Cost, simStall[f])
				}
			}
		})
	}

	if enumerated == 0 || discarded*2 < enumerated {
		t.Errorf("pruning discarded %d of %d enumerated configs, want >= 50%%", discarded, enumerated)
	} else {
		t.Logf("pruning discarded %d/%d (%.1f%%)", discarded, enumerated, 100*float64(discarded)/float64(enumerated))
	}

	tau := kendallTauB(pred, sim)
	t.Logf("Kendall tau-b over %d cells: %.4f (floor %.2f)", len(pred), tau, tauFloor)
	if tau < tauFloor {
		t.Errorf("model-vs-simulator rank agreement tau %.4f below the %.2f floor", tau, tauFloor)
	}
}

// kendallTauB computes the tie-corrected Kendall rank correlation.
func kendallTauB(x, y []float64) float64 {
	var conc, disc, tieX, tieY float64
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			dx, dy := x[i]-x[j], y[i]-y[j]
			switch {
			case dx == 0 && dy == 0: // tied in both: excluded
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case (dx > 0) == (dy > 0):
				conc++
			default:
				disc++
			}
		}
	}
	den := math.Sqrt((conc + disc + tieX) * (conc + disc + tieY))
	if den == 0 {
		return 0
	}
	return (conc - disc) / den
}

// TestEstimatorMonotone checks the estimator's structural guarantees on
// a synthetic baseline: capture grows with NC size and associativity,
// and the organization ordering vb >= vp >= nc holds pointwise.
func TestEstimatorMonotone(t *testing.T) {
	var base stats.Counters
	base.Refs.Read = 1 << 20
	base.RemoteByClass[stats.Capacity].Read = 100000
	base.RemoteByClass[stats.Cold].Read = 5000
	est := Estimator{
		Lat:         stats.DefaultLatencies(),
		Geometry:    dsmnc.DefaultOptions().Geometry,
		SharedBytes: 4 << 20,
		Base:        base,
	}
	stall := func(sys dsmnc.System) int64 {
		p, err := est.Predict(sys)
		if err != nil {
			t.Fatal(err)
		}
		return p.Stall.Total()
	}
	prev := int64(math.MaxInt64)
	for _, kb := range []int{4, 16, 64, 256} {
		s := stall(dsmnc.VB(kb << 10))
		if s >= prev {
			t.Errorf("vb %dK predicted stall %d did not improve on the smaller size (%d)", kb, s, prev)
		}
		prev = s
	}
	if a, b := stall(dsmnc.VB(16<<10)), stall(dsmnc.VP(16<<10)); a > b {
		t.Errorf("vb (%d) predicted worse than vp (%d)", a, b)
	}
	if a, b := stall(dsmnc.VP(16<<10)), stall(dsmnc.NC(16<<10)); a > b {
		t.Errorf("vp (%d) predicted worse than nc (%d)", a, b)
	}
	way2 := dsmnc.VB(16 << 10)
	way2.NCWays = 2
	if a, b := stall(dsmnc.VB(16<<10)), stall(way2); a > b {
		t.Errorf("4-way (%d) predicted worse than 2-way (%d)", a, b)
	}
	if _, err := est.Predict(dsmnc.NCS()); err == nil {
		t.Error("predicting an infinite organization should fail")
	}
}
