package explore

// The exploration observability surface: dsmnc_explore_* series on the
// same registry the -metrics endpoint serves (docs/observability.md).

import "dsmnc/telemetry"

// RegisterMetrics exposes the runner on a telemetry registry.
func (ru *Runner) RegisterMetrics(r *telemetry.Registry) error {
	regs := []error{
		r.Gauge("dsmnc_explore_active", "Explorations currently running.",
			func() float64 {
				ru.mu.Lock()
				defer ru.mu.Unlock()
				return float64(ru.active)
			}),
		r.Counter("dsmnc_explore_runs_total", "Explorations started (coalesced submissions not counted).",
			func() float64 { return float64(ru.started.Load()) }),
		r.Counter("dsmnc_explore_done_total", "Explorations that produced a frontier.",
			func() float64 { return float64(ru.finished.Load()) }),
		r.Counter("dsmnc_explore_failed_total", "Explorations that aborted with an error.",
			func() float64 { return float64(ru.failed.Load()) }),
		r.Counter("dsmnc_explore_enumerated_total", "Configurations enumerated across all explorations.",
			func() float64 { return float64(ru.enumerated.Load()) }),
		r.Counter("dsmnc_explore_pruned_total", "Configurations discarded by analytic dominance pruning.",
			func() float64 { return float64(ru.prunedTotal.Load()) }),
		r.Counter("dsmnc_explore_simulated_total", "Surviving configurations simulated through the scheduler.",
			func() float64 { return float64(ru.simulated.Load()) }),
	}
	for _, err := range regs {
		if err != nil {
			return err
		}
	}
	return nil
}
