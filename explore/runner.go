package explore

// The Runner hosts explorations for a serving binding: explorations are
// keyed by the canonical spec fingerprint, so submitting the same spec
// twice coalesces onto one run (mirroring the scheduler's idempotent
// job IDs one level up), finished runs are cached bounded-FIFO, and
// every run's progress is streamable. The Runner is transport-agnostic;
// cmd/dsmserved binds it to POST /v1/explore and SSE.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrUnknownRun reports an exploration ID the runner has never seen (or
// has evicted).
var ErrUnknownRun = errors.New("explore: unknown run")

// ErrRunnerBusy reports that the runner is at its concurrent-run bound.
var ErrRunnerBusy = errors.New("explore: too many concurrent explorations")

// RunState is the lifecycle of one hosted exploration.
type RunState string

// Run states.
const (
	RunActive RunState = "running"
	RunDone   RunState = "done"
	RunFailed RunState = "failed"
)

// RunStatus is the observable account of one hosted exploration.
type RunStatus struct {
	ID       string   `json:"id"`
	Bench    string   `json:"bench"`
	State    RunState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
}

// run is one hosted exploration.
type run struct {
	id     string
	bench  string
	state  RunState
	errMsg string
	prog   Progress
	report *Report
	done   chan struct{}
	// watchers receive a status snapshot per progress tick plus the
	// terminal status; slow watchers miss intermediate ticks, never the
	// terminal one (the channel is closed after it).
	watchers []chan RunStatus
}

// Runner hosts explorations over one engine.
type Runner struct {
	// Engine runs the explorations; its OnProgress is owned by the
	// runner and must not be set by the caller.
	Engine *Engine
	// MaxConcurrent bounds simultaneously active explorations; further
	// spec submissions fail with ErrRunnerBusy. 0 means 2.
	MaxConcurrent int
	// Keep bounds remembered terminal runs (FIFO eviction). 0 means 64.
	Keep int

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // terminal runs, oldest first, for eviction
	active int

	started, finished, failed atomic.Int64
	enumerated, prunedTotal   atomic.Int64
	simulated                 atomic.Int64
}

// Start begins (or coalesces onto) the exploration of a spec. The
// returned status carries the run ID — the canonical spec fingerprint.
// The bool reports whether a new run was started.
func (ru *Runner) Start(sp Space) (RunStatus, bool, error) {
	ns, err := sp.Normalize()
	if err != nil {
		return RunStatus{}, false, err
	}
	id := ns.Fingerprint()

	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.runs == nil {
		ru.runs = make(map[string]*run)
	}
	if r, ok := ru.runs[id]; ok {
		return r.statusLocked(), false, nil
	}
	maxc := ru.MaxConcurrent
	if maxc <= 0 {
		maxc = 2
	}
	if ru.active >= maxc {
		return RunStatus{}, false, fmt.Errorf("%w: %d active", ErrRunnerBusy, ru.active)
	}
	r := &run{id: id, bench: ns.Bench, state: RunActive, done: make(chan struct{})}
	ru.runs[id] = r
	ru.active++
	ru.started.Add(1)
	go ru.drive(r, ns)
	return r.statusLocked(), true, nil
}

// drive runs one exploration to its terminal state.
func (ru *Runner) drive(r *run, ns Space) {
	eng := *ru.Engine // shallow copy so OnProgress is per-run
	eng.OnProgress = func(p Progress) {
		ru.mu.Lock()
		r.prog = p
		switch p.Phase {
		case "enumerated":
			ru.enumerated.Add(int64(p.Enumerated))
		case "pruned":
			ru.prunedTotal.Add(int64(p.Pruned))
		case "simulated":
			ru.simulated.Add(1)
		}
		ru.notifyLocked(r)
		ru.mu.Unlock()
	}
	rep, err := eng.Run(context.Background(), ns)

	ru.mu.Lock()
	defer ru.mu.Unlock()
	if err != nil {
		r.state, r.errMsg = RunFailed, err.Error()
		ru.failed.Add(1)
	} else {
		r.state, r.report = RunDone, rep
		ru.finished.Add(1)
	}
	ru.active--
	ru.order = append(ru.order, r.id)
	keep := ru.Keep
	if keep <= 0 {
		keep = 64
	}
	for len(ru.order) > keep {
		delete(ru.runs, ru.order[0])
		ru.order = ru.order[1:]
	}
	ru.notifyLocked(r)
	for _, w := range r.watchers {
		close(w)
	}
	r.watchers = nil
	close(r.done)
}

// notifyLocked snapshots the run to every watcher, dropping ticks on
// full buffers except the terminal one, which always lands (the buffer
// is drained first if needed).
func (ru *Runner) notifyLocked(r *run) {
	st := r.statusLocked()
	for _, w := range r.watchers {
		if st.State != RunActive {
			for {
				select {
				case w <- st:
				default:
					select {
					case <-w: // evict the oldest buffered tick
						continue
					default:
					}
				}
				break
			}
			continue
		}
		select {
		case w <- st:
		default:
		}
	}
}

func (r *run) statusLocked() RunStatus {
	return RunStatus{ID: r.id, Bench: r.bench, State: r.state, Error: r.errMsg, Progress: r.prog}
}

// Status reports one run.
func (ru *Runner) Status(id string) (RunStatus, error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	r, ok := ru.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	return r.statusLocked(), nil
}

// Report returns a finished run's report; an active run returns the
// status and no report.
func (ru *Runner) Report(id string) (*Report, RunStatus, error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	r, ok := ru.runs[id]
	if !ok {
		return nil, RunStatus{}, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	return r.report, r.statusLocked(), nil
}

// Wait blocks until the run is terminal (or the context dies).
func (ru *Runner) Wait(ctx context.Context, id string) (RunStatus, error) {
	ru.mu.Lock()
	r, ok := ru.runs[id]
	ru.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return r.statusLocked(), nil
}

// Watch streams status snapshots: the current one immediately, then one
// per progress tick, then the terminal status, then close. Terminal
// runs get their final status and an immediate close.
func (ru *Runner) Watch(id string) (<-chan RunStatus, error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	r, ok := ru.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	ch := make(chan RunStatus, 16)
	ch <- r.statusLocked()
	if r.state != RunActive {
		close(ch)
		return ch, nil
	}
	r.watchers = append(r.watchers, ch)
	return ch, nil
}
