package explore

// The three-phase exploration engine: enumerate -> prune -> simulate ->
// frontier. Simulation goes through a serve.Scheduler-shaped Submitter,
// so an exploration inherits the serving fabric's backpressure (ErrBusy
// submissions are retried with backoff), idempotent job coalescing
// (re-running the same spec re-uses finished cells), ledger durability
// and lease retries. The report is canonical: the same spec against the
// same simulator produces byte-identical report bytes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"dsmnc"
	"dsmnc/memsys"
	"dsmnc/serve"
	"dsmnc/stats"
	"dsmnc/workload"
)

// Submitter is the slice of the scheduler the engine needs; a
// *serve.Scheduler satisfies it.
type Submitter interface {
	Submit(req serve.Request) (serve.Status, error)
	Wait(ctx context.Context, id string) (serve.Status, error)
	Result(id string) (dsmnc.Result, serve.Status, error)
}

// Progress is one engine progress tick, in phase order: enumerated ->
// pruned -> simulated (one tick per finished cell) -> frontier.
type Progress struct {
	Phase      string `json:"phase"` // enumerated|pruned|simulated|frontier
	Enumerated int    `json:"enumerated"`
	Pruned     int    `json:"pruned"`
	Survivors  int    `json:"survivors"`
	Simulated  int    `json:"simulated"`
	Frontier   int    `json:"frontier,omitempty"`
}

// Engine runs explorations against a Submitter.
type Engine struct {
	Sub Submitter
	// Lat and Geometry parameterize the analytic model; zero values
	// mean the paper's defaults. They must match the machine options
	// the Submitter's scheduler simulates with, or the predicted-vs-
	// simulated provenance will show systematic error.
	Lat      stats.Latencies
	Geometry memsys.Geometry
	// OnProgress, when set, observes every phase tick.
	OnProgress func(Progress)
	// BusyBackoff is the initial retry delay when the scheduler sheds a
	// submission with ErrBusy; it doubles up to 64x. 0 means 50ms.
	BusyBackoff time.Duration
}

// Report is the canonical outcome of one exploration.
type Report struct {
	Spec        Space  `json:"spec"` // normalized form
	Fingerprint string `json:"fingerprint"`
	Enumerated  int    `json:"enumerated"`
	Pruned      int    `json:"pruned"`
	Simulated   int    `json:"simulated"`
	// BaselineStall anchors the report: Equation (1) over the no-NC
	// baseline simulation every prediction started from.
	BaselineStall int64 `json:"baseline_stall"`
	// Points are the pruning survivors in enumeration order, each with
	// predicted and simulated stall (model error as provenance).
	Points []ReportPoint `json:"points"`
	// Dropped are the pruned points with the dominating survivor.
	Dropped []DroppedPoint `json:"dropped"`
	// Frontier are the Pareto-optimal points on the simulated
	// (stall, cost) plane, cheapest first.
	Frontier []ReportPoint `json:"frontier"`
}

// ReportPoint is one simulated configuration with provenance.
type ReportPoint struct {
	Name      string `json:"name"`
	System    string `json:"system"`
	NCBytes   int    `json:"nc_bytes,omitempty"`
	NCWays    int    `json:"nc_ways,omitempty"`
	PCFrac    int    `json:"pc_frac,omitempty"`
	Threshold uint32 `json:"threshold,omitempty"`
	CostBits  int64  `json:"cost_bits"`
	// PredStall is the analytic model's stall; SimStall the simulator's.
	// PredErrPct = 100*(pred-sim)/sim is the visible model error.
	PredStall  int64   `json:"pred_stall"`
	SimStall   int64   `json:"sim_stall"`
	PredErrPct float64 `json:"pred_err_pct"`
	// TrafficBlocks and Relocations carry the simulated cell's remote
	// block traffic and page relocation count, so report consumers can
	// render the paper's companion axes without re-running anything.
	TrafficBlocks int64 `json:"traffic_blocks"`
	Relocations   int64 `json:"relocations"`
	// ContentionStall is the queueing-corrected stall, present when the
	// spec asked for contention scoring.
	ContentionStall int64 `json:"contention_stall,omitempty"`
	OnFrontier      bool  `json:"on_frontier"`
}

// DroppedPoint records why a configuration was pruned unsimulated.
type DroppedPoint struct {
	Name        string `json:"name"`
	CostBits    int64  `json:"cost_bits"`
	PredStall   int64  `json:"pred_stall"`
	DominatedBy string `json:"dominated_by"`
}

// Canonical renders the report deterministically: the same spec and the
// same simulator produce byte-identical output.
func (r *Report) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("explore: marshal report: %w", err)
	}
	return append(b, '\n'), nil
}

// Run executes one exploration. The spec may be raw (Run normalizes
// it); any spec problem is an ErrBadSpace-wrapped error. Scheduler
// failures (a failed or canceled cell, a draining scheduler, a dead
// context) abort the exploration with the underlying error.
func (e *Engine) Run(ctx context.Context, sp Space) (*Report, error) {
	ns, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	scale, _ := scaleByName(ns.Scale)
	bench := workload.ByName(ns.Bench, scale)
	if bench == nil {
		return nil, fmt.Errorf("%w: unknown bench %q", ErrBadSpace, ns.Bench)
	}
	pts, err := ns.Enumerate()
	if err != nil {
		return nil, err
	}
	prog := Progress{Phase: "enumerated", Enumerated: len(pts)}
	e.tick(prog)

	// Phase 0: the baseline anchor. One no-NC cell, simulated through
	// the scheduler like everything else; if the spec itself contains
	// the "none" point the idempotent job ID makes this the same job.
	baseRes, err := e.runCell(ctx, serve.Request{Bench: ns.Bench, System: "base", Scale: ns.Scale})
	if err != nil {
		return nil, fmt.Errorf("explore: baseline cell: %w", err)
	}
	est := Estimator{
		Lat:         e.lat(),
		Geometry:    e.geometry(),
		SharedBytes: bench.SharedBytes,
		Base:        baseRes.Counters,
	}
	baseStall := stats.Model{Lat: est.Lat, Tech: stats.NCTechNone}.RemoteReadStall(&baseRes.Counters)

	// Phase 1: analytic pruning on the (predicted stall, cost) plane.
	preds := make([]Prediction, len(pts))
	for i, pt := range pts {
		if preds[i], err = est.Predict(pt.Sys); err != nil {
			return nil, err
		}
	}
	dom := dominatedBy(len(pts),
		func(i int) int64 { return pts[i].Cost },
		func(i int) int64 { return preds[i].Stall.Total() })
	var kept []int
	var dropped []DroppedPoint
	for i := range pts {
		if ns.Exhaustive || dom[i] < 0 {
			kept = append(kept, i)
			continue
		}
		dropped = append(dropped, DroppedPoint{
			Name:        pts[i].Name,
			CostBits:    pts[i].Cost,
			PredStall:   preds[i].Stall.Total(),
			DominatedBy: pts[dom[i]].Name,
		})
	}
	prog.Phase, prog.Pruned, prog.Survivors = "pruned", len(dropped), len(kept)
	e.tick(prog)

	// Phase 2: simulate the survivors through the scheduler. Submit
	// everything first (the queue absorbs what it can; ErrBusy sheds
	// are retried with backoff), then collect in enumeration order.
	ids := make([]string, len(kept))
	for n, i := range kept {
		st, err := e.submit(ctx, pts[i].Req)
		if err != nil {
			return nil, fmt.Errorf("explore: submit %s: %w", pts[i].Name, err)
		}
		ids[n] = st.ID
	}
	results := make([]dsmnc.Result, len(kept))
	for n, i := range kept {
		res, err := e.collect(ctx, ids[n])
		if err != nil {
			return nil, fmt.Errorf("explore: cell %s: %w", pts[i].Name, err)
		}
		results[n] = res
		prog.Phase, prog.Simulated = "simulated", n+1
		e.tick(prog)
	}

	// Phase 3: the exact frontier on the simulated plane.
	model := func(n int) stats.Model {
		return stats.Model{Lat: est.Lat, Tech: pts[kept[n]].Sys.Tech()}
	}
	simStall := make([]int64, len(kept))
	for n := range kept {
		simStall[n] = model(n).RemoteReadStall(&results[n].Counters).Total()
	}
	front := dominatedBy(len(kept),
		func(n int) int64 { return pts[kept[n]].Cost },
		func(n int) int64 { return simStall[n] })

	rep := &Report{
		Spec:          ns,
		Fingerprint:   ns.Fingerprint(),
		Enumerated:    len(pts),
		Pruned:        len(dropped),
		Simulated:     len(kept),
		BaselineStall: baseStall.Total(),
		Dropped:       dropped,
	}
	for n, i := range kept {
		pt := pts[i]
		rp := ReportPoint{
			Name:       pt.Name,
			System:     pt.Req.System,
			NCBytes:    pt.Req.NCBytes,
			NCWays:     pt.Req.NCWays,
			PCFrac:     pt.Req.PCFrac,
			Threshold:  pt.Req.Threshold,
			CostBits:   pt.Cost,
			PredStall:  preds[i].Stall.Total(),
			SimStall:   simStall[n],
			OnFrontier: front[n] < 0,
		}
		rp.TrafficBlocks = model(n).RemoteTraffic(&results[n].Counters).Total()
		rp.Relocations = results[n].Counters.Relocations
		if rp.SimStall != 0 {
			rp.PredErrPct = 100 * float64(rp.PredStall-rp.SimStall) / float64(rp.SimStall)
		}
		if ns.Contention {
			cm := stats.ContentionModel{
				Lat:             est.Lat,
				Tech:            pt.Sys.Tech(),
				Clusters:        est.Geometry.Clusters,
				ProcsPerCluster: est.Geometry.ProcsPerCluster,
			}
			rp.ContentionStall = cm.Evaluate(&results[n].Counters).Stall.Total()
		}
		rep.Points = append(rep.Points, rp)
		if rp.OnFrontier {
			rep.Frontier = append(rep.Frontier, rp)
		}
	}
	// Frontier listed cheapest-first, stall as tiebreak.
	sortFrontier(rep.Frontier)
	prog.Phase, prog.Frontier = "frontier", len(rep.Frontier)
	e.tick(prog)
	return rep, nil
}

// sortFrontier orders frontier points by (cost, stall, name).
func sortFrontier(f []ReportPoint) {
	for i := 1; i < len(f); i++ { // insertion sort: frontiers are tiny
		for j := i; j > 0; j-- {
			a, b := f[j-1], f[j]
			if a.CostBits < b.CostBits ||
				(a.CostBits == b.CostBits && (a.SimStall < b.SimStall ||
					(a.SimStall == b.SimStall && a.Name <= b.Name))) {
				break
			}
			f[j-1], f[j] = b, a
		}
	}
}

// runCell submits one request and waits for its result.
func (e *Engine) runCell(ctx context.Context, req serve.Request) (dsmnc.Result, error) {
	st, err := e.submit(ctx, req)
	if err != nil {
		return dsmnc.Result{}, err
	}
	return e.collect(ctx, st.ID)
}

// submit pushes one request through scheduler backpressure: ErrBusy
// sheds are retried with doubling backoff while the context lives.
func (e *Engine) submit(ctx context.Context, req serve.Request) (serve.Status, error) {
	backoff := e.BusyBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for try := 0; ; try++ {
		st, err := e.Sub.Submit(req)
		if err == nil || !errors.Is(err, serve.ErrBusy) || errors.Is(err, serve.ErrDraining) {
			return st, err
		}
		delay := backoff << min(try, 6)
		select {
		case <-ctx.Done():
			return serve.Status{}, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// collect waits a job out and fetches its result.
func (e *Engine) collect(ctx context.Context, id string) (dsmnc.Result, error) {
	st, err := e.Sub.Wait(ctx, id)
	if err != nil {
		return dsmnc.Result{}, err
	}
	if st.State != serve.StateDone {
		return dsmnc.Result{}, fmt.Errorf("job %s finished %s: %s", id, st.State, st.Error)
	}
	res, _, err := e.Sub.Result(id)
	return res, err
}

func (e *Engine) tick(p Progress) {
	if e.OnProgress != nil {
		e.OnProgress(p)
	}
}

func (e *Engine) lat() stats.Latencies {
	if e.Lat == (stats.Latencies{}) {
		return stats.DefaultLatencies()
	}
	return e.Lat
}

func (e *Engine) geometry() memsys.Geometry {
	if e.Geometry == (memsys.Geometry{}) {
		return memsys.DefaultGeometry()
	}
	return e.Geometry
}
