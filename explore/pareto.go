package explore

// Exact Pareto machinery on the (stall, bit-cost) plane, used twice:
// the pruning stage discards points strictly dominated under the
// *predicted* stall, and the final frontier keeps the non-dominated
// points under the *simulated* stall. Dominance is strict: q dominates
// p when q is no worse on both axes and strictly better on at least
// one. Exact ties on both axes survive — two organizations that the
// model cannot separate are both worth simulating, and two simulated
// points at the same (cost, stall) are both on the frontier.

import "sort"

// dominatedBy returns, for each point, the index of a dominating point
// (-1 if none). Ties are resolved deterministically: the witness is the
// first dominating point in (cost, stall, index) order.
func dominatedBy(n int, cost func(int) int64, stall func(int) int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if cost(ia) != cost(ib) {
			return cost(ia) < cost(ib)
		}
		if stall(ia) != stall(ib) {
			return stall(ia) < stall(ib)
		}
		return ia < ib
	})

	dom := make([]int, n)
	for i := range dom {
		dom[i] = -1
	}
	// bestCheaper: the minimum-stall point over all strictly cheaper
	// cost tiers seen so far.
	bestCheaper := -1
	for i := 0; i < len(order); {
		// One equal-cost tier at a time.
		j := i
		for j < len(order) && cost(order[j]) == cost(order[i]) {
			j++
		}
		tierMin := order[i] // sorted: first of the tier has minimal stall
		for _, idx := range order[i:j] {
			switch {
			case bestCheaper >= 0 && stall(bestCheaper) <= stall(idx):
				dom[idx] = bestCheaper
			case stall(tierMin) < stall(idx):
				dom[idx] = tierMin
			}
		}
		if bestCheaper < 0 || stall(tierMin) < stall(bestCheaper) {
			bestCheaper = tierMin
		}
		i = j
	}
	return dom
}
