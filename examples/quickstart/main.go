// Quickstart: simulate one workload on three remote-data-cache designs
// and compare the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions() // 8 clusters x 4 procs, 16 KB 2-way L1s
	opt.Scale = workload.ScaleSmall

	bench := workload.Ocean(opt.Scale)
	fmt.Printf("workload: %s (%s), %.2f MB shared\n\n",
		bench.Name, bench.Params, float64(bench.SharedBytes)/(1<<20))

	systems := []dsmnc.System{
		dsmnc.Base(),             // no remote data cache at all
		dsmnc.NCD(),              // 512 KB DRAM network cache, full inclusion
		dsmnc.VB(16 << 10),       // the paper's 16 KB SRAM network victim cache
		dsmnc.VBPFrac(16<<10, 5), // victim cache + page cache (1/5 of data set)
	}

	fmt.Printf("%-8s %12s %14s %14s %8s\n",
		"system", "miss-ratio%", "rd-stall(cyc)", "traffic(blk)", "relocs")
	for _, sys := range systems {
		res, err := dsmnc.Run(bench, sys, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %14d %14d %8d\n",
			res.System,
			res.MissRatios().Total(),
			res.Stall().Total(),
			res.Traffic().Total(),
			res.Counters.Relocations)
	}

	fmt.Println("\nOcean is a regular, high-spatial-locality workload: the victim")
	fmt.Println("cache with a page cache should approach (or beat) the 512 KB DRAM")
	fmt.Println("NC while using 16 KB of SRAM plus ordinary main memory.")
}
