// adaptive-threshold: reproduce the paper's Figure 6 experiment — the
// adaptive relocation-threshold policy versus a fixed threshold of 32 —
// on a workload that thrashes a small page cache.
//
// The adaptive policy (paper §6.2) tracks per-frame hit counters; when a
// monitoring window of frame reuses fails to amortize the relocation
// cost (break-even 12 hits), the node's threshold rises by 8 and the
// page cache backs off.
//
//	go run ./examples/adaptive-threshold
package main

import (
	"fmt"
	"log"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall

	for _, name := range []string{"Barnes", "Radix"} {
		bench := workload.ByName(name, opt.Scale)

		adaptive := dsmnc.NCPFrac(16<<10, 5)
		adaptive.Name = "adaptive"

		fixed := dsmnc.NCPFrac(16<<10, 5)
		fixed.Name = "fixed32"
		fixed.Adaptive = false

		fmt.Printf("%s (%s), page cache = 1/5 of data set\n", bench.Name, bench.Params)
		fmt.Printf("  %-9s %12s %12s %12s %14s\n",
			"policy", "relocations", "pageEvicts", "thrRaises", "miss+reloc %")
		for _, sys := range []dsmnc.System{fixed, adaptive} {
			res, err := dsmnc.Run(bench, sys, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s %12d %12d %12d %14.3f\n",
				res.System,
				res.Counters.Relocations,
				res.Counters.PageEvictions,
				res.Counters.ThresholdRaises,
				res.MissRatios().Total())
		}
		fmt.Println()
	}
	fmt.Println("The adaptive policy should cut relocations (and the 225-cycle")
	fmt.Println("overhead each one costs) whenever the fixed policy thrashes.")
}
