// radix-traffic: reproduce the paper's Radix story (Figures 4 and 10).
//
// Radix sort scatters writes across a huge, sparse destination array.
// Under the nc organization (inclusion kept for dirty blocks) the small
// NC throttles how much dirty remote data the cluster can hold and
// amplifies write-back traffic; the network victim cache removes that
// ceiling. This example measures both organizations plus the base
// system and prints the write/write-back traffic decomposition.
//
//	go run ./examples/radix-traffic
package main

import (
	"fmt"
	"log"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall
	bench := workload.Radix(opt.Scale)

	fmt.Printf("workload: %s (%s)\n\n", bench.Name, bench.Params)
	fmt.Printf("%-6s %10s %10s %10s %10s %12s\n",
		"system", "rd-miss", "wr-miss", "writeback", "total", "miss-ratio%")

	show := func(sys dsmnc.System) dsmnc.Result {
		res, err := dsmnc.Run(bench, sys, opt)
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Traffic()
		fmt.Printf("%-6s %10d %10d %10d %10d %12.3f\n",
			res.System, tr.ReadMisses, tr.WriteMisses, tr.Writebacks, tr.Total(),
			res.MissRatios().Total())
		return res
	}

	show(dsmnc.Base())
	ncRes := show(dsmnc.NC(16 << 10))
	vbRes := show(dsmnc.VB(16 << 10))

	ncT := ncRes.Traffic().Total()
	vbT := vbRes.Traffic().Total()
	fmt.Printf("\nvictim cache vs dirty-inclusion nc: %.1f%% less traffic\n",
		100*(1-float64(vbT)/float64(ncT)))
	fmt.Println("(paper §6.1.2: maintaining any inclusion in a small NC is")
	fmt.Println("\"something to avoid\" — the NC becomes the ceiling on dirty")
	fmt.Println("remote data and write-back traffic explodes)")
}
