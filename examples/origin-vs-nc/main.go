// origin-vs-nc: test the paper's closing conjecture (§7).
//
// The SGI Origin dropped the network cache entirely, betting on OS page
// migration and replication. The paper closes by noting that "a small,
// very fast NC could shield the page migration and replication policies
// from the noise of conflict misses". This example runs four machines —
// bare, Origin-style, victim-NC, and the combination — over the paper's
// benchmarks and reports stalls and OS page-operation counts.
//
//	go run ./examples/origin-vs-nc [benchmark ...]
package main

import (
	"fmt"
	"log"
	"os"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall

	names := workload.Names()
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}

	systems := []dsmnc.System{
		dsmnc.Base(),
		dsmnc.Origin(),
		dsmnc.VB(16 << 10),
		combined(),
	}

	for _, name := range names {
		bench := workload.ByName(name, opt.Scale)
		if bench == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("%s (%s)\n", bench.Name, bench.Params)
		fmt.Printf("  %-10s %14s %10s %10s %12s %12s\n",
			"system", "rd-stall(cyc)", "migrations", "replicas", "replicaHits", "miss+ovh %")
		for _, sys := range systems {
			res, err := dsmnc.Run(bench, sys, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s %14d %10d %10d %12d %12.3f\n",
				res.System,
				res.Stall().Total(),
				res.Counters.Migrations,
				res.Counters.Replications,
				res.Counters.ReplicaHits.Total(),
				res.MissRatios().Total())
		}
		fmt.Println()
	}
	fmt.Println("If the conjecture holds, vb+origin beats both parents: the NC")
	fmt.Println("absorbs the conflict misses that would otherwise trigger (and")
	fmt.Println("waste) OS page operations.")
}

func combined() dsmnc.System {
	s := dsmnc.VB(16 << 10)
	s.Name = "vb+origin"
	s.Migration = true
	return s
}
