// design-space: sweep the remote-data-cache design space for one
// workload — NC organization x NC size x page-cache size — and print the
// frontier the paper's Figure 2 sketches qualitatively: remote read
// stall as a function of how the RDC budget is spent.
//
//	go run ./examples/design-space [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"dsmnc"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall

	name := "FMM"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := workload.ByName(name, opt.Scale)
	if bench == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (one of %v)\n", name, workload.Names())
		os.Exit(2)
	}

	fmt.Printf("design space for %s (%s), %.2f MB shared\n\n",
		bench.Name, bench.Params, float64(bench.SharedBytes)/(1<<20))

	baseline, err := dsmnc.Run(bench, dsmnc.InfiniteDRAM(), opt)
	if err != nil {
		log.Fatal(err)
	}
	norm := float64(baseline.Stall().Total())

	var systems []dsmnc.System
	// Pure SRAM NCs of growing size.
	for _, kb := range []int{1, 4, 16, 64} {
		systems = append(systems, named(dsmnc.VB(kb<<10), fmt.Sprintf("vb%dK", kb)))
	}
	// DRAM NC.
	systems = append(systems, dsmnc.NCD())
	// 16 KB victim NC with growing page caches.
	for _, frac := range []int{9, 7, 5, 3} {
		systems = append(systems, dsmnc.VBPFrac(16<<10, frac))
	}
	systems = append(systems, dsmnc.NCS())

	fmt.Printf("%-8s %16s %16s %10s\n", "system", "stall(norm)", "traffic(blk)", "relocs")
	for _, sys := range systems {
		res, err := dsmnc.Run(bench, sys, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %16.3f %16d %10d\n",
			res.System,
			float64(res.Stall().Total())/norm,
			res.Traffic().Total(),
			res.Counters.Relocations)
	}
	fmt.Println("\nstall normalized to an infinite DRAM NC (as in the paper's Fig. 9)")
}

func named(s dsmnc.System, name string) dsmnc.System {
	s.Name = name
	return s
}
