// design-space: sweep the remote-data-cache design space for one
// workload — NC organization x NC size x page-cache size — and print the
// frontier the paper's Figure 2 sketches qualitatively: remote read
// stall as a function of how the RDC budget is spent.
//
// The sweep itself is the explore package's: the systems are declared
// as two exploration specs (marked exhaustive so every row simulates),
// run through the engine on an in-process scheduler, and read back out
// of the canonical reports. The two infinite reference systems (the
// infDRAM normalization anchor and the NCS upper bound) are outside any
// finite design space, so they run directly.
//
//	go run ./examples/design-space [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"dsmnc"
	"dsmnc/explore"
	"dsmnc/serve"
	"dsmnc/workload"
)

func main() {
	opt := dsmnc.DefaultOptions()
	opt.Scale = workload.ScaleSmall

	name := "FMM"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := workload.ByName(name, opt.Scale)
	if bench == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (one of %v)\n", name, workload.Names())
		os.Exit(2)
	}

	fmt.Printf("design space for %s (%s), %.2f MB shared\n\n",
		bench.Name, bench.Params, float64(bench.SharedBytes)/(1<<20))

	baseline, err := dsmnc.Run(bench, dsmnc.InfiniteDRAM(), opt)
	if err != nil {
		log.Fatal(err)
	}
	norm := float64(baseline.Stall().Total())

	sched, err := serve.New(serve.Config{QueueDepth: explore.MaxPoints})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sched.Drain(context.Background()) }()
	eng := &explore.Engine{Sub: sched}

	// Pure SRAM victim NCs of growing size, plus the DRAM NC.
	sizes, err := eng.Run(context.Background(), explore.Space{
		Bench: name, Tech: []string{"sram", "dram"}, Orgs: []string{"vb"},
		NCKB: []int{1, 4, 16, 64}, Exhaustive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A 16 KB victim NC with growing page caches.
	pcs, err := eng.Run(context.Background(), explore.Space{
		Bench: name, Tech: []string{"sram"}, Orgs: []string{"vbp"},
		NCKB: []int{16}, PCFrac: []int{3, 5, 7, 9}, Exhaustive: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %16s %16s %10s\n", "system", "stall(norm)", "traffic(blk)", "relocs")
	for _, kb := range []int{1, 4, 16, 64} {
		row(sizes, fmt.Sprintf("sram-vb-%dK-w4", kb), fmt.Sprintf("vb%dK", kb), norm)
	}
	row(sizes, "dram-512K", "NCD", norm)
	for _, frac := range []int{9, 7, 5, 3} { // growing page caches
		row(pcs, fmt.Sprintf("sram-vbp-16K-w4-pc%d", frac), fmt.Sprintf("vbp%d", frac), norm)
	}
	ncs, err := dsmnc.Run(bench, dsmnc.NCS(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %16.3f %16d %10d\n",
		"NCS", float64(ncs.Stall().Total())/norm, ncs.Traffic().Total(), ncs.Counters.Relocations)
	fmt.Println("\nstall normalized to an infinite DRAM NC (as in the paper's Fig. 9)")
}

// row prints one simulated report point under its table label.
func row(rep *explore.Report, point, label string, norm float64) {
	for _, p := range rep.Points {
		if p.Name == point {
			fmt.Printf("%-8s %16.3f %16d %10d\n",
				label, float64(p.SimStall)/norm, p.TrafficBlocks, p.Relocations)
			return
		}
	}
	log.Fatalf("report is missing point %s", point)
}
