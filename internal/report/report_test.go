package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("rule wrong: %q", lines[1])
	}
	// Columns align: "value" starts at the same offset in every row.
	col := strings.Index(lines[0], "value")
	if lines[2][col:col+1] != "1" && !strings.HasPrefix(lines[2][col:], "1") {
		t.Fatalf("misaligned row: %q", lines[2])
	}
	// A row with more cells than headers must not panic.
	Table(&buf, []string{"x"}, [][]string{{"a", "extra"}})
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	CSV(&buf, []string{"a", "b"}, [][]string{
		{"plain", "with,comma"},
		{"with\"quote", "x"},
	})
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestChart(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "demo", []Group{
		{Label: "g1", Bars: []Bar{
			{Label: "a", Value: 2},
			{Label: "bb", Value: 1, Segments: []Segment{{Rune: '#', Value: 0.5}, {Rune: '=', Value: 0.5}}},
		}},
	}, 10)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "g1") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	// The max bar spans the full width.
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Fatalf("max bar not scaled to width:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Fatalf("segments not rendered:\n%s", out)
	}
	// Zero values must not divide by zero.
	Chart(&buf, "zeros", []Group{{Label: "g", Bars: []Bar{{Label: "z", Value: 0}}}}, 0)
}

func TestF(t *testing.T) {
	for v, want := range map[float64]string{
		1.5:     "1.5",
		2.0:     "2",
		0.125:   "0.125",
		3.14159: "3.142",
	} {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}
