// Package report renders simulation results as fixed-width text tables,
// ASCII bar charts and CSV. It is deliberately generic — headers, rows
// and bar groups — so the figure drivers in the root package stay free
// of formatting concerns.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes a fixed-width text table with a header rule.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i], cell)
			} else {
				fmt.Fprint(w, cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range rows {
		writeRow(row)
	}
}

// CSV writes rows as comma-separated values with a header line. Cells
// containing commas or quotes are quoted.
func CSV(w io.Writer, headers []string, rows [][]string) {
	writeLine := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, cell)
		}
		fmt.Fprintln(w)
	}
	writeLine(headers)
	for _, row := range rows {
		writeLine(row)
	}
}

// Bar is one bar of a chart, optionally stacked into segments.
type Bar struct {
	Label    string
	Value    float64
	Segments []Segment // optional decomposition; Values must sum to Value
}

// Segment is one stacked component of a bar.
type Segment struct {
	Rune  rune
	Value float64
}

// Group is one labeled group of bars (one benchmark's bars in a figure).
type Group struct {
	Label string
	Bars  []Bar
}

// Chart writes an ASCII horizontal bar chart. Bars are scaled so the
// longest one spans width characters. Stacked segments render with their
// own fill runes.
func Chart(w io.Writer, title string, groups []Group, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "%s\n\n", title)
	max := 0.0
	labelW := 0
	for _, g := range groups {
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
			if len(b.Label) > labelW {
				labelW = len(b.Label)
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	for _, g := range groups {
		fmt.Fprintf(w, "%s\n", g.Label)
		for _, b := range g.Bars {
			fmt.Fprintf(w, "  %-*s |", labelW, b.Label)
			if len(b.Segments) == 0 {
				n := int(b.Value / max * float64(width))
				fmt.Fprint(w, strings.Repeat("#", n))
			} else {
				for _, s := range b.Segments {
					n := int(s.Value / max * float64(width))
					fmt.Fprint(w, strings.Repeat(string(s.Rune), n))
				}
			}
			fmt.Fprintf(w, " %.3f\n", b.Value)
		}
	}
	fmt.Fprintln(w)
}

// F formats a float compactly (three decimals, trimmed).
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
