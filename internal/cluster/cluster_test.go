package cluster

import (
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/internal/core"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// fakeHome is a scripted HomeService for unit-testing the cluster in
// isolation: every page is homed on cluster `homeAt`, fetches answer with
// a fixed class, and all calls are recorded.
type fakeHome struct {
	homeAt     int
	class      stats.MissClass
	capCount   uint32
	exclusive  bool
	sole       bool
	fetches    []memsys.Block
	upgrades   []memsys.Block
	writebacks []memsys.Block
	resets     []memsys.Page
}

func (f *fakeHome) Fetch(c int, b memsys.Block, write bool) FetchReply {
	f.fetches = append(f.fetches, b)
	return FetchReply{Class: f.class, CapacityCount: f.capCount}
}
func (f *fakeHome) Upgrade(c int, b memsys.Block)      { f.upgrades = append(f.upgrades, b) }
func (f *fakeHome) WriteBack(c int, b memsys.Block)    { f.writebacks = append(f.writebacks, b) }
func (f *fakeHome) IsExclusive(int, memsys.Block) bool { return f.exclusive }
func (f *fakeHome) SoleSharer(int, memsys.Block) bool  { return f.sole }
func (f *fakeHome) HomeOf(memsys.Page) int             { return f.homeAt }
func (f *fakeHome) ResetRelocationCounter(p memsys.Page, c int) {
	f.resets = append(f.resets, p)
}

// mustNew builds a cluster or panics (test files only).
func mustNew(cfg Config) *Cluster {
	cl, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return cl
}

// mustPC builds a page cache or panics (test files only).
func mustPC(frames int, pol *pagecache.Policy) *pagecache.PageCache {
	pc, err := pagecache.New(frames, pol)
	if err != nil {
		panic(err)
	}
	return pc
}

// mustVictim builds a victim NC or panics (test files only).
func mustVictim(cfg core.VictimConfig) *core.VictimNC {
	nc, err := core.NewVictim(cfg)
	if err != nil {
		panic(err)
	}
	return nc
}

// newTestCluster builds cluster 0 with 2 processors and a tiny L1
// (2 sets x 2 ways).
func newTestCluster(h *fakeHome, nc core.NC, pc *pagecache.PageCache, mode CounterMode) *Cluster {
	cfg := Config{
		ID:    0,
		Procs: 2,
		L1:    cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		NC:    nc,
		PC:    pc,
		Home:  h,
	}
	cfg.Counters = mode
	return mustNew(cfg)
}

func addr(page, blk int) memsys.Addr {
	return memsys.Addr(page)*memsys.PageBytes + memsys.Addr(blk)*memsys.BlockBytes
}

func TestNewValidation(t *testing.T) {
	h := &fakeHome{}
	mustErr := func(cfg Config) {
		t.Helper()
		if _, err := New(cfg); err == nil {
			t.Fatal("New did not fail")
		}
	}
	// NC-set counters without a set-counter NC.
	mustErr(Config{
		ID: 0, Procs: 1,
		L1:       cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		NC:       core.NoNC{},
		PC:       mustPC(1, pagecache.NewFixedPolicy(1)),
		Counters: CountersNCSet,
		Home:     h,
	})
	// Counters without a page cache.
	mustErr(Config{
		ID: 0, Procs: 1,
		L1:       cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		Counters: CountersDirectory,
		Home:     h,
	})
	// A nil NC defaults to NoNC.
	cl := mustNew(Config{
		ID: 3, Procs: 1,
		L1:   cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		Home: h,
	})
	if cl.ID() != 3 || cl.NC() == nil {
		t.Fatal("defaults not applied")
	}
}

func TestRemoteReadFillsRemoteMaster(t *testing.T) {
	h := &fakeHome{homeAt: 9} // everything remote
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	cl.Access(0, addr(0, 0), false, 9)
	ln := cl.Bus().Probe(0, memsys.BlockOf(addr(0, 0)))
	if ln == nil || ln.State != cache.RemoteMaster {
		t.Fatalf("remote clean fill state = %v, want R (MESIR §3.2)", ln)
	}
	if cl.C.RemoteByClass[stats.Cold].Read != 1 {
		t.Fatal("remote fetch not counted")
	}
}

func TestLocalReadFillsExclusiveWhenSole(t *testing.T) {
	h := &fakeHome{homeAt: 0, sole: true}
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	cl.Access(0, addr(0, 0), false, 0)
	if st := cl.Bus().Probe(0, memsys.BlockOf(addr(0, 0))).State; st != cache.Exclusive {
		t.Fatalf("sole local fill state = %v, want E", st)
	}
	// Write hit on E consults the directory (silent E->M would let the
	// system state drift) but counts no remote traffic.
	cl.Access(0, addr(0, 0), true, 0)
	if len(h.upgrades) != 1 {
		t.Fatal("E->M did not notify home")
	}
	if cl.C.Upgrades.Total() != 0 {
		t.Fatal("local upgrade counted as remote traffic")
	}
	if st := cl.Bus().Probe(0, memsys.BlockOf(addr(0, 0))).State; st != cache.Modified {
		t.Fatal("E->M failed")
	}
}

func TestWriteHitOnRemoteMasterUpgrades(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	cl.Access(0, addr(0, 0), false, 9) // R
	cl.Access(0, addr(0, 0), true, 9)  // upgrade
	if len(h.upgrades) != 1 {
		t.Fatal("no directory upgrade")
	}
	if cl.C.Upgrades.Write != 1 {
		t.Fatal("remote upgrade traffic not counted")
	}
	// Exclusive clusters skip the directory.
	h.exclusive = true
	cl.Access(1, addr(1, 0), false, 9)
	cl.Access(1, addr(1, 0), true, 9)
	if len(h.upgrades) != 1 {
		t.Fatal("exclusive cluster consulted the directory anyway")
	}
}

func TestMOESIDowngradeKeepsDirtyInOwner(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	cfg := Config{
		ID: 0, Procs: 2,
		L1:    cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		NC:    mustVictim(core.VictimConfig{Bytes: 4 * memsys.BlockBytes, Ways: 4}),
		Home:  h,
		MOESI: true,
	}
	cl := mustNew(cfg)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	cl.Access(0, a, true, 9)  // P0: M
	cl.Access(1, a, false, 9) // P1 reads: P0 -> O, no capture
	if st := cl.Bus().Probe(0, b).State; st != cache.Owned {
		t.Fatalf("supplier state = %v, want O", st)
	}
	if cl.C.DowngradeWB != 0 {
		t.Fatal("MOESI still generated a downgrade write-back")
	}
	if cl.NC().Contains(b) {
		t.Fatal("MOESI polluted the victim cache")
	}
	// O->M write hit invalidates the sibling Shared copy locally.
	cl.Access(0, a, true, 9)
	if st := cl.Bus().Probe(0, b).State; st != cache.Modified {
		t.Fatal("O->M failed")
	}
	if cl.Bus().Probe(1, b) != nil {
		t.Fatal("sibling copy survived O->M")
	}
	// O->M needs no directory transaction: the cluster already holds
	// system-level ownership (the O data never left).
	if len(h.upgrades) != 0 {
		t.Fatal("O->M consulted the directory")
	}
}

func TestMESIDowngradeCapturedOrWrittenBack(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	a := addr(0, 0)
	cl.Access(0, a, true, 9)
	cl.Access(1, a, false, 9)
	if cl.C.DowngradeWB != 1 {
		t.Fatal("downgrade not recorded")
	}
	if cl.C.WritebacksHome != 1 {
		t.Fatal("downgrade write-back did not cross the network (no NC)")
	}
}

func TestVictimChainFallsThroughToPC(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	pc := mustPC(2, pagecache.NewFixedPolicy(1000))
	cl := newTestCluster(h, core.NoNC{}, pc, CountersDirectory)
	// Map page 0 by hand, then let a dirty victim land in it.
	pc.Relocate(0)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	cl.Access(0, a, true, 9) // M
	// Conflict-evict: blocks 0, 2, 4 of page 0 share L1 set 0.
	cl.Access(0, addr(0, 2), false, 9)
	cl.Access(0, addr(0, 4), false, 9)
	if !pc.Lookup(b).Dirty {
		t.Fatal("dirty victim did not deposit into the page cache")
	}
	if cl.C.WritebacksHome != 0 {
		t.Fatal("deposited victim crossed the network anyway")
	}
}

func TestFlushDirtyDowngradesToR(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	cl.Access(0, a, true, 9)
	cl.FlushDirty(b)
	if st := cl.Bus().Probe(0, b).State; st != cache.RemoteMaster {
		t.Fatalf("flushed state = %v, want R (keeps replacement mastership)", st)
	}
	if cl.C.WritebacksHome != 1 {
		t.Fatal("flush did not write back")
	}
	// A second flush finds nothing dirty: no extra write-back.
	cl.FlushDirty(b)
	if cl.C.WritebacksHome != 1 {
		t.Fatal("stale flush wrote back again")
	}
}

func TestInvalidateBlockReportsFalseInvalidation(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	cl := newTestCluster(h, core.NoNC{}, nil, CountersNone)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	cl.Access(0, a, false, 9)
	if !cl.InvalidateBlock(b) {
		t.Fatal("real invalidation reported no copy")
	}
	if cl.InvalidateBlock(b) {
		t.Fatal("false invalidation reported a copy")
	}
}

func TestDecrementCountersOnFalseInval(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	nc := mustVictim(core.VictimConfig{
		Bytes: 4 * memsys.BlockBytes, Ways: 4,
		Indexing: cache.ByPage, SetCounters: true,
	})
	pc := mustPC(2, pagecache.NewFixedPolicy(1000))
	cfg := Config{
		ID: 0, Procs: 2,
		L1:                cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		NC:                nc,
		PC:                pc,
		Counters:          CountersNCSet,
		Home:              h,
		DecrementCounters: true,
	}
	cl := mustNew(cfg)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	// Victimize b into the NC: set counter 1.
	cl.Access(0, a, false, 9)
	cl.Access(0, addr(0, 2), false, 9)
	cl.Access(0, addr(0, 4), false, 9)
	set := -1
	for s := 0; s < 4; s++ {
		if nc.SetCounter(s) > 0 {
			set = s
			break
		}
	}
	if set < 0 {
		t.Fatal("no victimization counted")
	}
	before := nc.SetCounter(set)
	// Evict everything so the cluster truly does not hold b, then send a
	// false invalidation.
	cl.Bus().InvalidateAll(b)
	nc.Invalidate(b)
	cl.InvalidateBlock(b)
	if nc.SetCounter(set) != before-1 {
		t.Fatalf("counter = %d, want %d (decrement on false invalidation)",
			nc.SetCounter(set), before-1)
	}
}

func TestRelocationFlushesAndResets(t *testing.T) {
	h := &fakeHome{homeAt: 9, class: stats.Capacity, capCount: 100}
	pc := mustPC(1, pagecache.NewFixedPolicy(32))
	cl := newTestCluster(h, core.NoNC{}, pc, CountersDirectory)
	// First remote fetch triggers relocation (capCount 100 > 32).
	cl.Access(0, addr(0, 0), false, 9)
	if cl.C.Relocations != 1 {
		t.Fatalf("relocations = %d", cl.C.Relocations)
	}
	if len(h.resets) == 0 || h.resets[0] != 0 {
		t.Fatal("relocation did not reset the directory counter")
	}
	if !pc.IsMapped(0) {
		t.Fatal("page not mapped")
	}
	// Relocating a second page evicts the first (1 frame), flushing it.
	cl.Access(0, addr(1, 0), false, 9)
	if cl.C.PageEvictions != 1 {
		t.Fatalf("page evictions = %d", cl.C.PageEvictions)
	}
	if pc.IsMapped(0) || !pc.IsMapped(1) {
		t.Fatal("LRM replacement wrong")
	}
}

func TestHasBlockAndHasDirty(t *testing.T) {
	h := &fakeHome{homeAt: 9}
	pc := mustPC(1, pagecache.NewFixedPolicy(1000))
	cl := newTestCluster(h, core.NoNC{}, pc, CountersDirectory)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	if cl.HasBlock(b) || cl.HasDirty(b) {
		t.Fatal("empty cluster holds a block")
	}
	cl.Access(0, a, true, 9)
	if !cl.HasBlock(b) || !cl.HasDirty(b) {
		t.Fatal("written block not found")
	}
	// Move the dirty copy to the PC and check visibility there.
	pc.Relocate(0)
	cl.Access(0, addr(0, 2), false, 9)
	cl.Access(0, addr(0, 4), false, 9)
	if cl.Bus().HasBlock(b) {
		t.Fatal("block still in L1")
	}
	if !cl.HasBlock(b) || !cl.HasDirty(b) {
		t.Fatal("PC-resident dirty block invisible")
	}
}
