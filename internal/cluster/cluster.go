// Package cluster implements the node controller of one DSM cluster: the
// pseudo-processor (PP) of Figure 1 that glues the processor caches on
// the snooping bus, the network cache, the page cache and the system
// directory together, and the full per-reference MESIR algorithm.
//
// The cluster talks to the rest of the machine only through the
// HomeService interface, which package sim implements on top of the
// directory; this keeps every inter-cluster action (fetch, upgrade,
// invalidation, dirty flush) explicit and countable.
package cluster

import (
	"fmt"

	"dsmnc/internal/bus"
	"dsmnc/internal/cache"
	"dsmnc/internal/core"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/telemetry"
)

// CounterMode selects what drives page relocation.
type CounterMode uint8

// Counter modes.
const (
	// CountersNone disables page relocation (no page cache, or an NC-only
	// system).
	CountersNone CounterMode = iota
	// CountersDirectory uses R-NUMA's per-(page,cluster) capacity-miss
	// counters maintained by the directory (ncp/vbp/vpp).
	CountersDirectory
	// CountersNCSet uses the per-set victimization counters integrated
	// into the network victim cache (vxp, paper §3.4).
	CountersNCSet
)

// FetchReply is what the home directory answers to a remote fetch.
type FetchReply struct {
	Class stats.MissClass
	// CapacityCount is the post-increment R-NUMA relocation counter for
	// (page, cluster); zero unless directory counters are enabled and
	// the miss was capacity.
	CapacityCount uint32
	// RemoteDirty means the data had to be retrieved from a remote
	// cluster's dirty copy: even a local-home fetch then pays a network
	// round trip.
	RemoteDirty bool
}

// HomeService is the cluster's view of the rest of the machine: the home
// directories and the network. Package sim implements it.
type HomeService interface {
	// Fetch performs a block fetch at the home directory, applying all
	// system-level coherence actions (invalidations, dirty flushes) to
	// the other clusters.
	Fetch(cluster int, b memsys.Block, write bool) FetchReply
	// Upgrade acquires system-level write ownership for a block the
	// cluster already holds clean.
	Upgrade(cluster int, b memsys.Block)
	// WriteBack delivers the dirty copy of b to home memory.
	WriteBack(cluster int, b memsys.Block)
	// IsExclusive reports whether the cluster already holds system-level
	// ownership of b (a write needs no directory transaction).
	IsExclusive(cluster int, b memsys.Block) bool
	// SoleSharer reports whether the cluster is the only one with a
	// presence bit on b (local fills may enter Exclusive).
	SoleSharer(cluster int, b memsys.Block) bool
	// HomeOf returns the home cluster of page p (already placed).
	HomeOf(p memsys.Page) int
	// ResetRelocationCounter clears the directory relocation counter of
	// (p, cluster) after a relocation or page eviction.
	ResetRelocationCounter(p memsys.Page, cluster int)
}

// Config assembles one cluster.
type Config struct {
	ID       int
	Procs    int
	L1       cache.Config
	NC       core.NC              // use core.NoNC{} for none
	PC       *pagecache.PageCache // nil for none
	Counters CounterMode
	Home     HomeService
	// MOESI enables the dirty-shared O state (paper §3.2's rejected
	// option, kept for ablation): intra-cluster reads of Modified
	// lines no longer generate write-backs.
	MOESI bool
	// DecrementCounters enables the §3.4 refinement: a late
	// invalidation of a block the cluster no longer holds decrements
	// the relocation counter that its earlier victimization bumped.
	DecrementCounters bool
	// Trace, when non-nil, receives a structured event for every
	// coherence action the cluster takes (fills, victimizations,
	// invalidations, relocations, write-backs). The simulation is
	// bit-identical with and without it.
	Trace *telemetry.Tracer
}

// Cluster is one SMP node of the DSM.
type Cluster struct {
	id    int
	bus   *bus.Bus
	nc    core.NC
	scnc  core.SetCounterNC // non-nil when Counters == CountersNCSet
	pc    *pagecache.PageCache
	mode  CounterMode
	home  HomeService
	moesi bool
	decr  bool
	tr    *telemetry.Tracer

	// C is the cluster's event account.
	C stats.Counters
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	b, err := bus.New(cfg.Procs, cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	cl := &Cluster{
		id:    cfg.ID,
		bus:   b,
		nc:    cfg.NC,
		pc:    cfg.PC,
		mode:  cfg.Counters,
		home:  cfg.Home,
		moesi: cfg.MOESI,
		decr:  cfg.DecrementCounters,
		tr:    cfg.Trace,
	}
	cl.bus.SetMOESI(cfg.MOESI)
	if cl.nc == nil {
		cl.nc = core.NoNC{}
	}
	if cfg.Counters == CountersNCSet {
		sc, ok := cl.nc.(core.SetCounterNC)
		if !ok {
			return nil, fmt.Errorf("cluster: CountersNCSet requires a set-counter NC (vxp victim cache)")
		}
		cl.scnc = sc
	}
	if cfg.Counters != CountersNone && cl.pc == nil {
		return nil, fmt.Errorf("cluster: relocation counters configured without a page cache")
	}
	return cl, nil
}

// emit forwards one coherence event to the attached tracer, if any.
func (cl *Cluster) emit(kind telemetry.EventKind, addr uint64, arg uint8) {
	if cl.tr != nil {
		cl.tr.Emit(kind, cl.id, addr, arg)
	}
}

// ID returns the cluster id.
func (cl *Cluster) ID() int { return cl.id }

// SetHome swaps the cluster's network attachment. The sharded engine
// interposes a per-shard proxy (serializing directory access) for the
// duration of a windowed batch and restores the direct service after;
// nothing else may change the attachment mid-run.
func (cl *Cluster) SetHome(h HomeService) { cl.home = h }

// Bus exposes the snooping bus (testing).
func (cl *Cluster) Bus() *bus.Bus { return cl.bus }

// NC exposes the network cache (testing).
func (cl *Cluster) NC() core.NC { return cl.nc }

// PC exposes the page cache (testing), possibly nil.
func (cl *Cluster) PC() *pagecache.PageCache { return cl.pc }

// NCOccupancy reports the network cache's used and total frames.
func (cl *Cluster) NCOccupancy() (used, frames int) { return cl.nc.Occupancy() }

// PCOccupancy reports the page cache's mapped and total frames (0, 0
// without a page cache).
func (cl *Cluster) PCOccupancy() (used, frames int) {
	if cl.pc == nil {
		return 0, 0
	}
	return cl.pc.Mapped(), cl.pc.Frames()
}

// Access processes one memory reference by local processor p (0-based
// within the cluster) to addr; home is the block's home cluster.
func (cl *Cluster) Access(p int, addr memsys.Addr, write bool, home int) {
	cl.C.Refs.Inc(write)
	b := memsys.BlockOf(addr)
	local := home == cl.id

	// Processor cache hit path.
	if ln := cl.bus.Probe(p, b); ln != nil {
		cl.bus.TouchLine(p, ln)
		cl.C.L1Hits.Inc(write)
		if !write {
			return
		}
		switch ln.State {
		case cache.Modified:
			// Nothing to do.
		case cache.Owned:
			// O→M: invalidate the sibling Shared copies; the cluster
			// already holds system-level ownership.
			cl.bus.SnoopWrite(p, b)
			ln.State = cache.Modified
		case cache.Exclusive:
			// Local clean exclusive: take ownership. The directory is
			// consulted so system state stays consistent, but this is
			// a local-home transaction (E blocks are local-home only).
			cl.home.Upgrade(cl.id, b)
			ln.State = cache.Modified
		default: // Shared or RemoteMaster: bus upgrade.
			cl.writeUpgrade(p, b, local)
			ln.State = cache.Modified
		}
		return
	}

	// Bus transaction: snoop the sibling caches.
	if write {
		if res := cl.bus.SnoopWrite(p, b); res.Supplier >= 0 {
			if local {
				cl.C.LocalC2C.Inc(true)
			} else {
				cl.C.C2C.Inc(true)
			}
			// Sibling copies are gone; NC/PC copies are superseded by
			// the new Modified line (dirty data transfers with
			// ownership, no write-back).
			cl.nc.Invalidate(b)
			if cl.pc != nil {
				cl.pc.Invalidate(b)
			}
			if !local {
				cl.ncAnchorDirty(b)
			}
			cl.acquireOwnership(b, local)
			cl.fill(p, b, cache.Modified, false)
			return
		}
	} else {
		if res := cl.bus.SnoopRead(p, b); res.Supplier >= 0 {
			if res.State == cache.Modified && !cl.moesi {
				// MESI: the downgraded line's data must go somewhere;
				// under MOESI the supplier keeps it in state O.
				cl.captureDowngrade(b, local)
			}
			if local {
				cl.C.LocalC2C.Inc(false)
			} else {
				cl.C.C2C.Inc(false)
			}
			cl.fill(p, b, cache.Shared, false)
			return
		}
	}

	// Network cache snoop (remote blocks only: caching local blocks in
	// the NC is pointless, paper §3.2).
	if !local {
		if pr := cl.nc.Probe(b, write); pr.Hit {
			cl.C.NCHits.Inc(write)
			if write {
				if cl.pc != nil {
					cl.pc.Invalidate(b)
				}
				cl.acquireOwnership(b, false)
				cl.fill(p, b, cache.Modified, false)
				return
			}
			st := cache.Shared
			if pr.Freed {
				// Victim cache: the block moved out of the NC; the
				// requester resumes mastership (and dirtiness).
				st = cache.RemoteMaster
				if pr.Dirty {
					st = cache.Modified
				}
			}
			cl.fill(p, b, st, false)
			return
		}
	}

	// Page cache lookup.
	if !local && cl.pc != nil {
		if pst := cl.pc.Lookup(b); pst.Mapped && pst.Valid {
			cl.C.PCHits.Inc(write)
			cl.pc.RecordHit(b)
			if write {
				cl.pc.Invalidate(b) // the Modified line supersedes the frame copy
				cl.ncAnchorDirty(b)
				cl.acquireOwnership(b, false)
				cl.fill(p, b, cache.Modified, false)
				return
			}
			// The frame keeps the copy; the line joins as Shared so its
			// own replacement is silent (the data is still backed
			// locally).
			cl.fill(p, b, cache.Shared, false)
			return
		}
	}

	if local {
		cl.localFetch(p, b, write)
		return
	}
	cl.remoteFetch(p, b, write)
}

// writeUpgrade performs the bus upgrade transaction for a write hit on a
// Shared or RemoteMaster line.
func (cl *Cluster) writeUpgrade(p int, b memsys.Block, local bool) {
	cl.bus.SnoopWrite(p, b) // invalidate sibling copies
	cl.nc.Invalidate(b)
	if cl.pc != nil {
		cl.pc.Invalidate(b)
	}
	if !local {
		cl.ncAnchorDirty(b)
	}
	cl.acquireOwnership(b, local)
}

// ncAnchorDirty re-establishes the NC frame for a remote block the
// cluster is about to hold Modified. Allocate-on-miss NCs (nc, NCD, the
// infinite references) keep a Modified frame as the dirty-inclusion
// anchor — without it, a write upgrade that invalidated the old frame
// would leave the cluster's only dirty copy invisible to the NC's
// inclusion machinery. Victim caches allocate nothing here (OnFill is a
// no-op), preserving their never-worse-than-no-NC property.
func (cl *Cluster) ncAnchorDirty(b memsys.Block) {
	for _, ev := range cl.nc.OnFill(b, true) {
		cl.handleNCEviction(ev)
	}
}

// acquireOwnership obtains system-level write ownership if the cluster
// does not already have it, counting the network transaction for
// remote-home blocks.
func (cl *Cluster) acquireOwnership(b memsys.Block, local bool) {
	if cl.home.IsExclusive(cl.id, b) {
		return
	}
	cl.home.Upgrade(cl.id, b)
	if !local {
		cl.C.Upgrades.Inc(true)
	}
	var arg uint8
	if local {
		arg = 1
	}
	cl.emit(telemetry.EvUpgrade, uint64(b), arg)
}

// localFetch satisfies a miss whose home is this cluster from local
// memory. A block dirty in a remote cluster is retrieved over the
// network, but following the paper's model (§4: "cache misses to remote
// data, i.e. where the home node is not the local node") the miss still
// counts as local; the retrieval is tracked separately and its
// write-back appears in the owner's traffic.
func (cl *Cluster) localFetch(p int, b memsys.Block, write bool) {
	reply := cl.home.Fetch(cl.id, b, write)
	cl.C.LocalMem.Inc(write)
	if reply.RemoteDirty {
		cl.C.LocalDirtyFetch++
	}
	st := cache.Shared
	switch {
	case write:
		st = cache.Modified
	case cl.home.SoleSharer(cl.id, b):
		st = cache.Exclusive
	}
	cl.fill(p, b, st, false)
}

// remoteFetch performs the full network access for a remote miss,
// including page-cache installation and relocation triggering.
func (cl *Cluster) remoteFetch(p int, b memsys.Block, write bool) {
	reply := cl.home.Fetch(cl.id, b, write)
	cl.C.RemoteByClass[reply.Class].Inc(write)
	if reply.RemoteDirty {
		cl.C.Remote3Hop.Inc(write) // dirty intervention: a three-hop access
	}
	arg := uint8(reply.Class) & 3
	if reply.RemoteDirty {
		arg |= 1 << 6
	}
	if write {
		arg |= 1 << 7
	}
	cl.emit(telemetry.EvRemoteMiss, uint64(b), arg)

	pcBacked := false
	if cl.pc != nil {
		page := memsys.PageOfBlock(b)
		if cl.mode == CountersDirectory && reply.Class == stats.Capacity &&
			!cl.pc.IsMapped(page) &&
			reply.CapacityCount > cl.pc.Policy().Threshold() {
			cl.relocate(page)
		}
		if !write && cl.pc.IsMapped(page) {
			// The fetched data lands in the frame (the frame is the
			// block's local physical backing in Simple COMA).
			cl.pc.Install(b, false)
			pcBacked = true
		}
	}

	st := cache.Modified
	if !write {
		if pcBacked {
			st = cache.Shared // the frame holds the master local copy
		} else {
			st = cache.RemoteMaster // first clean copy in the node (MESIR)
		}
	}
	cl.fill(p, b, st, true)
}

// fill inserts the block into processor p's cache, handles the displaced
// victim, and informs allocate-on-miss NCs about remote fills.
func (cl *Cluster) fill(p int, b memsys.Block, st cache.State, remoteFill bool) {
	if remoteFill {
		for _, ev := range cl.nc.OnFill(b, st == cache.Modified) {
			cl.handleNCEviction(ev)
		}
	}
	cl.emit(telemetry.EvFill, uint64(b), uint8(st))
	victim := cl.bus.Fill(p, b, st)
	if victim.State.Valid() {
		cl.handleL1Victim(p, victim)
	}
}

// handleL1Victim processes a line displaced from processor p's cache.
func (cl *Cluster) handleL1Victim(p int, victim cache.Line) {
	b := victim.Block
	switch victim.State {
	case cache.Shared, cache.Exclusive:
		// Silent replacement: Shared copies are never masters;
		// Exclusive copies are clean local data.
		return
	case cache.RemoteMaster:
		// MESIR replacement transaction (paper §3.2): a Shared sibling
		// assumes mastership, otherwise the victim cache accepts the
		// last clean copy in the node.
		if cl.bus.TransferMastership(p, b) {
			cl.C.MastershipXfer++
			return
		}
		if res := cl.nc.AcceptVictim(b, false); res.Accepted {
			cl.afterVictimAccept(b, false, res)
			return
		}
		if cl.pc != nil {
			cl.pc.Deposit(b, false)
		}
	case cache.Modified, cache.Owned:
		if cl.home.HomeOf(memsys.PageOfBlock(b)) == cl.id {
			// Local dirty victim: write to local memory, no traffic.
			cl.home.WriteBack(cl.id, b)
			return
		}
		if res := cl.nc.AcceptVictim(b, true); res.Accepted {
			cl.afterVictimAccept(b, true, res)
			return
		}
		if cl.pc != nil && cl.pc.Deposit(b, true) {
			return // the dirty data stays in the cluster
		}
		cl.writebackHome(b)
	}
}

// captureDowngrade handles the write-back generated when a Modified line
// is downgraded to Shared by an intra-cluster read. For remote blocks
// the victim NC captures it (polluting itself while the caches still
// hold copies — paper §3.2 keeps this, having found an O state not worth
// its cost); without an NC or page cache the block updates remote memory.
func (cl *Cluster) captureDowngrade(b memsys.Block, local bool) {
	cl.C.DowngradeWB++
	if local {
		cl.home.WriteBack(cl.id, b)
		return
	}
	if res := cl.nc.AcceptVictim(b, true); res.Accepted {
		cl.afterVictimAccept(b, true, res)
		return
	}
	if cl.pc != nil && cl.pc.Deposit(b, true) {
		return
	}
	cl.writebackHome(b)
}

// afterVictimAccept finishes an NC insert: the insert is counted and
// traced, write-through NCs get the dirty data forwarded home, recycled
// frames are handled and, in vxp mode, the set's victimization counter
// is checked against the relocation threshold.
func (cl *Cluster) afterVictimAccept(b memsys.Block, dirty bool, res core.VictimResult) {
	cl.C.NCInserts++
	var arg uint8
	if dirty {
		arg |= 1
	}
	if res.WriteThrough {
		arg |= 2
	}
	cl.emit(telemetry.EvVictimize, uint64(b), arg)
	if res.WriteThrough {
		cl.writebackHome(b)
	}
	for _, ev := range res.Evictions {
		cl.handleNCEviction(ev)
	}
	if cl.mode != CountersNCSet || res.SetCounter == 0 {
		return
	}
	if res.SetCounter <= cl.pc.Policy().Threshold() {
		return
	}
	if page, ok := cl.scnc.PredominantPage(res.Set); ok {
		cl.relocate(page)
	}
	cl.scnc.ResetSetCounter(res.Set)
}

// handleNCEviction processes a frame the NC recycled.
func (cl *Cluster) handleNCEviction(ev core.Eviction) {
	cl.C.NCEvictions++
	b := ev.Block
	dirty := ev.Dirty
	var arg uint8
	if ev.Dirty {
		arg |= 1
	}
	if ev.ForceL1Invalidate {
		arg |= 2
	}
	cl.emit(telemetry.EvNCEvict, uint64(b), arg)
	if ev.ForceL1Invalidate {
		copies, hadDirty := cl.bus.InvalidateAll(b)
		cl.C.NCForcedL1Evict += int64(copies)
		if hadDirty {
			dirty = true // a cache held newer data; that is what goes home
		}
	}
	if dirty {
		if cl.pc != nil && cl.pc.Deposit(b, true) {
			return
		}
		cl.writebackHome(b)
		return
	}
	if cl.pc != nil {
		cl.pc.Deposit(b, false)
	}
}

// writebackHome sends a dirty block over the network to its home.
func (cl *Cluster) writebackHome(b memsys.Block) {
	cl.C.WritebacksHome++
	cl.emit(telemetry.EvWriteback, uint64(b), 0)
	cl.home.WriteBack(cl.id, b)
}

// relocate maps a remote page into the page cache (paper §3.3), flushing
// the least-recently-missed page if a frame must be recycled. Relocating
// an already-mapped page only resets its counter.
func (cl *Cluster) relocate(page memsys.Page) {
	if cl.pc == nil {
		return
	}
	if cl.pc.IsMapped(page) {
		cl.home.ResetRelocationCounter(page, cl.id)
		return
	}
	ev, raised := cl.pc.Relocate(page)
	cl.C.Relocations++
	if raised {
		cl.C.ThresholdRaises++
	}
	var arg uint8
	if raised {
		arg = 1
	}
	cl.emit(telemetry.EvRelocate, uint64(page), arg)
	if ev != nil {
		cl.C.PageEvictions++
		cl.emit(telemetry.EvPageEvict, uint64(ev.Page), 0)
		cl.flushEvictedPage(ev)
	}
	cl.home.ResetRelocationCounter(page, cl.id)
}

// flushEvictedPage removes every trace of an evicted page from the
// cluster: processor-cache and NC copies are evicted (dirty ones written
// home), the frame's dirty blocks are written home, and the page's
// relocation counter restarts. These forced evictions are the source of
// the "future misses caused by page re-mappings" of §6.3.
func (cl *Cluster) flushEvictedPage(ev *pagecache.Evicted) {
	for _, b := range cl.bus.EvictPage(ev.Page) {
		cl.writebackHome(b)
	}
	for _, b := range cl.nc.EvictPage(ev.Page) {
		cl.writebackHome(b)
	}
	for _, b := range ev.Dirty {
		cl.C.PCFlushedDirty++
		cl.writebackHome(b)
	}
	cl.home.ResetRelocationCounter(ev.Page, cl.id)
}

// FlushPage removes every copy of page p from the cluster (an OS
// page-level shootdown: replica collapse or migration), writing dirty
// blocks home. It counts as a replica flush in the event account.
func (cl *Cluster) FlushPage(p memsys.Page) {
	for _, b := range cl.bus.EvictPage(p) {
		cl.writebackHome(b)
	}
	for _, b := range cl.nc.EvictPage(p) {
		cl.writebackHome(b)
	}
	if cl.pc != nil && cl.pc.IsMapped(p) {
		if ev := cl.pc.Unmap(p); ev != nil {
			for _, b := range ev.Dirty {
				cl.writebackHome(b)
			}
		}
	}
	cl.C.ReplicaFlushes++
}

// InvalidateBlock applies a system-level invalidation (a remote cluster
// is writing b): every local copy dies. It reports whether the cluster
// actually held a copy — a false invalidation means the block was
// victimized earlier, and under the §3.4 counter-decrement refinement
// the relocation count it contributed can be corrected (the next miss
// will be coherence, not capacity).
func (cl *Cluster) InvalidateBlock(b memsys.Block) (hadCopy bool) {
	copies, _ := cl.bus.InvalidateAll(b)
	hadCopy = copies > 0
	if cl.nc.Contains(b) {
		hadCopy = true
	}
	cl.nc.Invalidate(b)
	if cl.pc != nil {
		if cl.pc.Lookup(b).Valid {
			hadCopy = true
		}
		cl.pc.Invalidate(b)
	}
	if !hadCopy && cl.decr && cl.mode == CountersNCSet {
		cl.scnc.DecrementSetCounterFor(b)
	}
	var arg uint8
	if hadCopy {
		arg = 1
	}
	cl.emit(telemetry.EvInvalidate, uint64(b), arg)
	return hadCopy
}

// FlushDirty applies a read intervention: a remote cluster is reading b,
// which this cluster holds dirty. The copy is downgraded to clean and
// the dirty data crosses the network to home. A remote-home copy keeps
// MESIR mastership (R) so the last clean copy can still be victimized
// into the network cache later.
func (cl *Cluster) FlushDirty(b memsys.Block) {
	to := cache.RemoteMaster
	if cl.home.HomeOf(memsys.PageOfBlock(b)) == cl.id {
		to = cache.Shared
	}
	// Every structure holding dirty data is downgraded: the processor
	// caches, the NC anchor AND the page-cache frame may each carry a
	// dirty mark for the same block, and leaving any of them dirty after
	// the data went home would fake a second dirty owner.
	dirty := cl.bus.DowngradeDirty(b, to)
	if cl.nc.Downgrade(b) {
		dirty = true
	}
	if cl.pc != nil && cl.pc.Clean(b) {
		dirty = true
	}
	var arg uint8
	if dirty {
		arg = 1
	}
	cl.emit(telemetry.EvFlushDirty, uint64(b), arg)
	if !dirty {
		return // already clean (stale intervention); nothing crosses the net
	}
	cl.writebackHome(b)
}

// HasBlock reports whether any structure in the cluster holds b (testing
// and coherence cross-checks).
func (cl *Cluster) HasBlock(b memsys.Block) bool {
	if cl.bus.HasBlock(b) || cl.nc.Contains(b) {
		return true
	}
	if cl.pc != nil {
		if st := cl.pc.Lookup(b); st.Valid {
			return true
		}
	}
	return false
}

// HasDirty reports whether the cluster holds the dirty copy of b in any
// structure: a processor cache, the network cache or a page-cache frame.
func (cl *Cluster) HasDirty(b memsys.Block) bool {
	if cl.bus.HasDirty(b) {
		return true
	}
	if cl.nc.ContainsDirty(b) {
		return true
	}
	if cl.pc != nil && cl.pc.Lookup(b).Dirty {
		return true
	}
	return false
}
