package cluster

import (
	"dsmnc/internal/core"
	"dsmnc/internal/snapshot"
)

const tagCluster = 0x0B

// SaveState serializes the cluster's mutable state: the processor
// caches on the bus, the network cache, the page cache (when present)
// and the event account. Wiring (home service, counter mode, MOESI) is
// configuration, re-derived at restore.
func (cl *Cluster) SaveState(w *snapshot.Writer) error {
	w.Section(tagCluster)
	w.U32(uint32(cl.id))
	cl.bus.SaveState(w)
	if err := core.SaveNC(w, cl.nc); err != nil {
		return err
	}
	w.Bool(cl.pc != nil)
	if cl.pc != nil {
		cl.pc.SaveState(w)
	}
	cl.C.SaveState(w)
	return nil
}

// LoadState restores the cluster in place. The snapshot must have been
// taken from an identically-configured cluster; structural mismatches
// are recorded on r as decode failures.
func (cl *Cluster) LoadState(r *snapshot.Reader) error {
	r.Section(tagCluster)
	id := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if id != cl.id {
		r.Failf("snapshot cluster id %d, restoring into %d", id, cl.id)
		return nil
	}
	cl.bus.LoadState(r)
	if err := core.LoadNC(r, cl.nc); err != nil {
		return err
	}
	hasPC := r.Bool()
	if r.Err() != nil {
		return nil
	}
	if hasPC != (cl.pc != nil) {
		r.Failf("snapshot page cache %t, configured %t", hasPC, cl.pc != nil)
		return nil
	}
	if cl.pc != nil {
		cl.pc.LoadState(r)
	}
	cl.C.LoadState(r)
	return nil
}
