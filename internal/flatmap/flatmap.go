// Package flatmap provides the open-addressed hash tables the simulator
// hot path runs on: a generic uint64-keyed map with inline value
// storage (directory entries, page homes, page-cache frames) and a
// uint64→uint32 counter table (the R-NUMA relocation counters). Both
// support deletion via backward-shift compaction, so probe chains never
// accumulate tombstones.
//
// Both tables use power-of-two capacities, Fibonacci hashing and linear
// probing, and store key+1 so the zero word marks an empty slot. Every
// key the simulator uses — block numbers (≤ 2^42 under the 48-bit
// address space), page numbers (≤ 2^36) and page<<8|cluster counter
// keys (≤ 2^44) — is far below 2^64-1, so the +1 shift cannot wrap.
//
// Values live inline in the slot array. That is the point: replacing
// map[Block]*entry with Map[entry] removes the per-miss pointer
// allocation and the runtime map-assist calls from the Apply hot path.
// The returned *V pointers alias the slot array and are invalidated by
// the next Put (which may grow the table); callers use them immediately
// and never retain them across inserts.
package flatmap

import (
	"math/bits"
	"sort"
)

// fib is the 64-bit Fibonacci hashing multiplier (2^64 / φ).
const fib = 0x9e3779b97f4a7c15

// minCap is the smallest slot-array size; small enough that idle tables
// (e.g. counters on a counterless system) stay cheap, large enough that
// warm tables grow only a handful of times.
const minCap = 64

// Map is an open-addressed map from uint64 keys to inline values. The
// zero value is an empty map ready for use.
type Map[V any] struct {
	keys  []uint64 // key+1; 0 marks an empty slot
	vals  []V
	live  int
	shift uint // 64 - log2(len(keys))
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.live }

// Get returns a pointer to the value stored under k, or nil. The
// pointer is valid until the next Put.
func (m *Map[V]) Get(k uint64) *V {
	if m.live == 0 {
		return nil
	}
	kk := k + 1
	mask := uint64(len(m.keys) - 1)
	for i := (kk * fib) >> m.shift; ; i = (i + 1) & mask {
		switch m.keys[i] {
		case kk:
			return &m.vals[i]
		case 0:
			return nil
		}
	}
}

// Put returns a pointer to the value slot for k, inserting a zero value
// (and reporting created=true) if the key was absent. The pointer is
// valid until the next Put.
func (m *Map[V]) Put(k uint64) (v *V, created bool) {
	if 4*(m.live+1) > 3*len(m.keys) {
		m.grow()
	}
	kk := k + 1
	mask := uint64(len(m.keys) - 1)
	for i := (kk * fib) >> m.shift; ; i = (i + 1) & mask {
		switch m.keys[i] {
		case kk:
			return &m.vals[i], false
		case 0:
			m.keys[i] = kk
			m.live++
			return &m.vals[i], true
		}
	}
}

func (m *Map[V]) grow() {
	newCap := minCap
	if len(m.keys) > 0 {
		newCap = 2 * len(m.keys)
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, newCap)
	m.vals = make([]V, newCap)
	m.shift = uint(64 - bits.TrailingZeros(uint(newCap)))
	mask := uint64(newCap - 1)
	for j, kk := range oldKeys {
		if kk == 0 {
			continue
		}
		for i := (kk * fib) >> m.shift; ; i = (i + 1) & mask {
			if m.keys[i] == 0 {
				m.keys[i] = kk
				m.vals[i] = oldVals[j]
				break
			}
		}
	}
}

// Del removes k if present. Like Put, it invalidates previously
// returned value pointers (backward-shift compaction moves entries).
func (m *Map[V]) Del(k uint64) {
	if m.live == 0 {
		return
	}
	kk := k + 1
	mask := uint64(len(m.keys) - 1)
	for i := (kk * fib) >> m.shift; ; i = (i + 1) & mask {
		switch m.keys[i] {
		case kk:
			m.remove(i, mask)
			return
		case 0:
			return
		}
	}
}

// remove empties slot i and backward-shifts the probe chain behind it
// (same scheme as Counter.remove), zeroing the vacated value so inline
// values never pin garbage.
func (m *Map[V]) remove(i, mask uint64) {
	m.live--
	j := i
	for {
		j = (j + 1) & mask
		kj := m.keys[j]
		if kj == 0 {
			break
		}
		home := (kj * fib) >> m.shift
		if (j-home)&mask >= (j-i)&mask {
			m.keys[i] = kj
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	var zero V
	m.keys[i] = 0
	m.vals[i] = zero
}

// Keys returns the live keys in ascending order (snapshot
// serialization: identical contents must yield identical bytes).
func (m *Map[V]) Keys() []uint64 {
	out := make([]uint64, 0, m.live)
	for _, kk := range m.keys {
		if kk != 0 {
			out = append(out, kk-1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls fn for every live entry in unspecified order; fn
// returning false stops the walk. fn must not Put into the map.
func (m *Map[V]) Range(fn func(k uint64, v *V) bool) {
	for i, kk := range m.keys {
		if kk != 0 && !fn(kk-1, &m.vals[i]) {
			return
		}
	}
}

// Counter is an open-addressed uint64→uint32 counter table supporting
// deletion (linear probing with backward-shift removal, so probe chains
// never accumulate tombstones). A counter never stores zero: Dec
// deletes at one, matching the R-NUMA semantics where an absent
// (page, cluster) pair and a zero count are the same thing. The zero
// value is an empty table ready for use.
type Counter struct {
	keys  []uint64 // key+1; 0 marks an empty slot
	vals  []uint32
	live  int
	shift uint
}

// Len returns the number of live counters.
func (c *Counter) Len() int { return c.live }

// Get returns the counter for k (zero when absent).
func (c *Counter) Get(k uint64) uint32 {
	if c.live == 0 {
		return 0
	}
	kk := k + 1
	mask := uint64(len(c.keys) - 1)
	for i := (kk * fib) >> c.shift; ; i = (i + 1) & mask {
		switch c.keys[i] {
		case kk:
			return c.vals[i]
		case 0:
			return 0
		}
	}
}

// Incr adds one to the counter for k, inserting it at one, and returns
// the post-increment value.
func (c *Counter) Incr(k uint64) uint32 {
	return c.add(k, 1)
}

// Set stores v under k. Setting zero deletes the key.
func (c *Counter) Set(k uint64, v uint32) {
	if v == 0 {
		c.Del(k)
		return
	}
	p, _ := c.slot(k)
	*p = v
}

func (c *Counter) add(k uint64, d uint32) uint32 {
	p, _ := c.slot(k)
	*p += d
	return *p
}

// slot returns the value slot for k, inserting a zero-valued entry if
// absent.
func (c *Counter) slot(k uint64) (v *uint32, created bool) {
	if 4*(c.live+1) > 3*len(c.keys) {
		c.grow()
	}
	kk := k + 1
	mask := uint64(len(c.keys) - 1)
	for i := (kk * fib) >> c.shift; ; i = (i + 1) & mask {
		switch c.keys[i] {
		case kk:
			return &c.vals[i], false
		case 0:
			c.keys[i] = kk
			c.live++
			return &c.vals[i], true
		}
	}
}

func (c *Counter) grow() {
	newCap := minCap
	if len(c.keys) > 0 {
		newCap = 2 * len(c.keys)
	}
	oldKeys, oldVals := c.keys, c.vals
	c.keys = make([]uint64, newCap)
	c.vals = make([]uint32, newCap)
	c.shift = uint(64 - bits.TrailingZeros(uint(newCap)))
	mask := uint64(newCap - 1)
	for j, kk := range oldKeys {
		if kk == 0 {
			continue
		}
		for i := (kk * fib) >> c.shift; ; i = (i + 1) & mask {
			if c.keys[i] == 0 {
				c.keys[i] = kk
				c.vals[i] = oldVals[j]
				break
			}
		}
	}
}

// Dec subtracts one from the counter for k: a counter at one is
// deleted, an absent counter is left absent (never wraps below zero).
func (c *Counter) Dec(k uint64) {
	if c.live == 0 {
		return
	}
	kk := k + 1
	mask := uint64(len(c.keys) - 1)
	for i := (kk * fib) >> c.shift; ; i = (i + 1) & mask {
		switch c.keys[i] {
		case kk:
			if c.vals[i] > 1 {
				c.vals[i]--
			} else {
				c.remove(i, mask)
			}
			return
		case 0:
			return
		}
	}
}

// Del removes the counter for k if present.
func (c *Counter) Del(k uint64) {
	if c.live == 0 {
		return
	}
	kk := k + 1
	mask := uint64(len(c.keys) - 1)
	for i := (kk * fib) >> c.shift; ; i = (i + 1) & mask {
		switch c.keys[i] {
		case kk:
			c.remove(i, mask)
			return
		case 0:
			return
		}
	}
}

// remove empties slot i and backward-shifts the probe chain behind it,
// so lookups never need tombstones: every remaining key stays reachable
// from its home slot by linear probing.
func (c *Counter) remove(i, mask uint64) {
	c.live--
	j := i
	for {
		j = (j + 1) & mask
		kj := c.keys[j]
		if kj == 0 {
			break
		}
		home := (kj * fib) >> c.shift
		// kj may move into the hole at i only if its home slot lies
		// cyclically at or before i (otherwise the move would place it
		// ahead of its own probe chain).
		if (j-home)&mask >= (j-i)&mask {
			c.keys[i] = kj
			c.vals[i] = c.vals[j]
			i = j
		}
	}
	c.keys[i] = 0
	c.vals[i] = 0
}

// Keys returns the live keys in ascending order.
func (c *Counter) Keys() []uint64 {
	out := make([]uint64, 0, c.live)
	for _, kk := range c.keys {
		if kk != 0 {
			out = append(out, kk-1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls fn for every live counter in unspecified order; fn
// returning false stops the walk. fn must not mutate the table.
func (c *Counter) Range(fn func(k uint64, v uint32) bool) {
	for i, kk := range c.keys {
		if kk != 0 && !fn(kk-1, c.vals[i]) {
			return
		}
	}
}
