package flatmap

import (
	"sort"
	"testing"
)

// lcg is the deterministic generator used across the repo's tests.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// TestMapDifferential drives Map and a builtin map with the same
// operation stream and requires identical contents throughout. The key
// range is kept small so slots collide, probe chains wrap and the table
// grows several times.
func TestMapDifferential(t *testing.T) {
	var m Map[int64]
	ref := map[uint64]int64{}
	g := lcg(1)
	for op := 0; op < 200_000; op++ {
		k := g.next() % 5000
		switch g.next() % 4 {
		case 0:
			// Lookup.
			p := m.Get(k)
			rv, ok := ref[k]
			if (p != nil) != ok {
				t.Fatalf("op %d: Get(%d) presence %v, want %v", op, k, p != nil, ok)
			}
			if ok && *p != rv {
				t.Fatalf("op %d: Get(%d) = %d, want %d", op, k, *p, rv)
			}
			continue
		case 1:
			// Delete (backward-shift compaction).
			m.Del(k)
			delete(ref, k)
		default:
			v := int64(g.next() % 1000)
			p, created := m.Put(k)
			_, existed := ref[k]
			if created == existed {
				t.Fatalf("op %d: Put(%d) created=%v but ref presence %v", op, k, created, existed)
			}
			*p = v
			ref[k] = v
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	keys := m.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys not ascending")
	}
	if len(keys) != len(ref) {
		t.Fatalf("Keys returned %d keys, want %d", len(keys), len(ref))
	}
	for _, k := range keys {
		if *m.Get(k) != ref[k] {
			t.Fatalf("key %d: %d != %d", k, *m.Get(k), ref[k])
		}
	}
	n := 0
	m.Range(func(k uint64, v *int64) bool {
		if ref[k] != *v {
			t.Fatalf("Range key %d: %d != %d", k, *v, ref[k])
		}
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", n, len(ref))
	}
}

// TestCounterDifferential exercises the deletable counter table —
// including the backward-shift removal that keeps probe chains intact —
// against a builtin map.
func TestCounterDifferential(t *testing.T) {
	var c Counter
	ref := map[uint64]uint32{}
	g := lcg(7)
	for op := 0; op < 300_000; op++ {
		k := g.next() % 900 // dense: heavy collisions and chain wraps
		switch g.next() % 5 {
		case 0, 1:
			got := c.Incr(k)
			ref[k]++
			if got != ref[k] {
				t.Fatalf("op %d: Incr(%d) = %d, want %d", op, k, got, ref[k])
			}
		case 2:
			c.Dec(k)
			switch ref[k] {
			case 0:
			case 1:
				delete(ref, k)
			default:
				ref[k]--
			}
		case 3:
			c.Del(k)
			delete(ref, k)
		case 4:
			if got, want := c.Get(k), ref[k]; got != want {
				t.Fatalf("op %d: Get(%d) = %d, want %d", op, k, got, want)
			}
		}
		if c.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, c.Len(), len(ref))
		}
	}
	for k, v := range ref {
		if got := c.Get(k); got != v {
			t.Fatalf("final key %d: %d != %d", k, got, v)
		}
	}
	keys := c.Keys()
	if len(keys) != len(ref) || !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("Keys: %d keys (want %d), sorted=%v", len(keys), len(ref),
			sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }))
	}
	n := 0
	c.Range(func(k uint64, v uint32) bool {
		if ref[k] != v {
			t.Fatalf("Range key %d: %d != %d", k, v, ref[k])
		}
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("Range visited %d counters, want %d", n, len(ref))
	}
}

// TestCounterSetZeroDeletes pins the invariant that the table never
// stores a zero count.
func TestCounterSetZeroDeletes(t *testing.T) {
	var c Counter
	c.Set(42, 7)
	if c.Get(42) != 7 || c.Len() != 1 {
		t.Fatalf("Set: got %d len %d", c.Get(42), c.Len())
	}
	c.Set(42, 0)
	if c.Get(42) != 0 || c.Len() != 0 {
		t.Fatalf("Set(0) did not delete: got %d len %d", c.Get(42), c.Len())
	}
	c.Dec(99) // absent: must not wrap or insert
	if c.Len() != 0 {
		t.Fatal("Dec on absent key inserted something")
	}
}
