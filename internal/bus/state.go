package bus

import "dsmnc/internal/snapshot"

const tagBus = 0x03

// SaveState serializes every processor cache on the bus. The MOESI flag
// is configuration, re-derived at restore, so only tag state is written.
func (b *Bus) SaveState(w *snapshot.Writer) {
	w.Section(tagBus)
	w.U32(uint32(len(b.caches)))
	for _, c := range b.caches {
		c.SaveState(w)
	}
}

// LoadState restores every processor cache in place.
func (b *Bus) LoadState(r *snapshot.Reader) {
	r.Section(tagBus)
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	if n != len(b.caches) {
		r.Failf("bus has %d caches in snapshot, %d configured", n, len(b.caches))
		return
	}
	for _, c := range b.caches {
		c.LoadState(r)
		if r.Err() != nil {
			return
		}
	}
}
