package bus

import (
	"testing"
	"testing/quick"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
)

func newBus() *Bus {
	b, err := New(4, cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2})
	if err != nil {
		panic(err)
	}
	return b
}

func TestProbeAndFill(t *testing.T) {
	b := newBus()
	if b.Procs() != 4 {
		t.Fatal("Procs")
	}
	if b.Probe(0, 5) != nil {
		t.Fatal("empty bus probe hit")
	}
	b.Fill(0, 5, cache.Exclusive)
	ln := b.Probe(0, 5)
	if ln == nil || ln.State != cache.Exclusive {
		t.Fatalf("probe = %v", ln)
	}
	if b.Probe(1, 5) != nil {
		t.Fatal("fill leaked into sibling cache")
	}
	if !b.HasBlock(5) || b.HasDirty(5) {
		t.Fatal("HasBlock/HasDirty wrong")
	}
}

func TestSnoopReadDowngradesModified(t *testing.T) {
	b := newBus()
	b.Fill(1, 7, cache.Modified)
	res := b.SnoopRead(0, 7)
	if res.Supplier != 1 || res.State != cache.Modified {
		t.Fatalf("snoop = %+v", res)
	}
	if b.Probe(1, 7).State != cache.Shared {
		t.Fatal("modified supplier not downgraded to Shared")
	}
}

func TestSnoopReadKeepsRMastership(t *testing.T) {
	b := newBus()
	b.Fill(2, 7, cache.RemoteMaster)
	res := b.SnoopRead(0, 7)
	if res.Supplier != 2 || res.State != cache.RemoteMaster {
		t.Fatalf("snoop = %+v", res)
	}
	if b.Probe(2, 7).State != cache.RemoteMaster {
		t.Fatal("R supplier lost mastership on a read snoop")
	}
}

func TestSnoopReadMiss(t *testing.T) {
	b := newBus()
	b.Fill(0, 7, cache.Modified) // requester's own copy must not answer
	if res := b.SnoopRead(0, 7); res.Supplier != -1 {
		t.Fatalf("snoop answered from requester: %+v", res)
	}
}

func TestSnoopWriteInvalidatesEveryone(t *testing.T) {
	b := newBus()
	b.Fill(1, 9, cache.Shared)
	b.Fill(2, 9, cache.RemoteMaster)
	b.Fill(3, 9, cache.Shared)
	res := b.SnoopWrite(0, 9)
	if res.Supplier == -1 {
		t.Fatal("no supplier")
	}
	for p := 1; p < 4; p++ {
		if b.Probe(p, 9) != nil {
			t.Fatalf("P%d still holds the block after SnoopWrite", p)
		}
	}
}

func TestSnoopWritePrefersModified(t *testing.T) {
	b := newBus()
	b.Fill(1, 9, cache.Shared)
	b.Fill(3, 9, cache.Modified)
	res := b.SnoopWrite(0, 9)
	if res.Supplier != 3 || res.State != cache.Modified {
		t.Fatalf("snoop = %+v, want modified supplier 3", res)
	}
}

func TestInvalidateAll(t *testing.T) {
	b := newBus()
	b.Fill(0, 4, cache.Shared)
	b.Fill(1, 4, cache.Modified)
	copies, dirty := b.InvalidateAll(4)
	if copies != 2 || !dirty {
		t.Fatalf("InvalidateAll = (%d,%v)", copies, dirty)
	}
	if b.HasBlock(4) {
		t.Fatal("block survived InvalidateAll")
	}
	if c, d := b.InvalidateAll(4); c != 0 || d {
		t.Fatal("second InvalidateAll found copies")
	}
}

func TestExtractAndDowngradeDirty(t *testing.T) {
	b := newBus()
	if b.ExtractDirty(3) || b.DowngradeDirty(3, cache.Shared) {
		t.Fatal("found dirty in empty bus")
	}
	b.Fill(2, 3, cache.Modified)
	if !b.DowngradeDirty(3, cache.RemoteMaster) {
		t.Fatal("DowngradeDirty missed")
	}
	if b.Probe(2, 3).State != cache.RemoteMaster {
		t.Fatal("not downgraded to the requested state")
	}
	b.Fill(1, 6, cache.Modified)
	if !b.ExtractDirty(6) {
		t.Fatal("ExtractDirty missed")
	}
	if b.HasBlock(6) {
		t.Fatal("extracted block still present")
	}
}

func TestTransferMastership(t *testing.T) {
	b := newBus()
	b.Fill(0, 8, cache.RemoteMaster)
	b.Fill(2, 8, cache.Shared)
	if !b.TransferMastership(0, 8) {
		t.Fatal("no sibling took mastership")
	}
	if b.Probe(2, 8).State != cache.RemoteMaster {
		t.Fatal("sibling not promoted to R")
	}
	// Without any Shared sibling, the transfer fails.
	b.Fill(1, 16, cache.RemoteMaster)
	if b.TransferMastership(1, 16) {
		t.Fatal("mastership transferred with no sharer")
	}
}

func TestEvictPage(t *testing.T) {
	b := newBus()
	p := memsys.Page(1)
	first := memsys.FirstBlock(p)
	b.Fill(0, first, cache.Modified)
	b.Fill(1, first+1, cache.Shared)
	b.Fill(2, first+2, cache.Modified)
	b.Fill(3, memsys.FirstBlock(2), cache.Modified) // other page
	dirty := b.EvictPage(p)
	if len(dirty) != 2 {
		t.Fatalf("EvictPage dirty = %v, want 2 blocks", dirty)
	}
	if b.HasBlock(first) || b.HasBlock(first+1) {
		t.Fatal("page blocks survived")
	}
	if !b.HasBlock(memsys.FirstBlock(2)) {
		t.Fatal("unrelated page evicted")
	}
}

// Property: after any sequence of snoops, at most one cache holds blk in
// M, and M never coexists with other valid copies on the same bus.
func TestBusSingleWriterInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := newBus()
		for _, op := range ops {
			p := int(op % 4)
			blk := memsys.Block((op >> 2) % 8)
			switch (op >> 5) % 4 {
			case 0:
				// Write: bus invalidation then fill M.
				b.SnoopWrite(p, blk)
				b.Fill(p, blk, cache.Modified)
			case 1:
				// Read: join as Shared.
				b.SnoopRead(p, blk)
				b.Fill(p, blk, cache.Shared)
			case 2:
				b.InvalidateAll(blk)
			case 3:
				b.Cache(p).Evict(blk)
			}
			// Invariant check over all blocks.
			for blk := memsys.Block(0); blk < 8; blk++ {
				m, valid := 0, 0
				for q := 0; q < 4; q++ {
					if ln := b.Probe(q, blk); ln != nil {
						valid++
						if ln.State.Dirty() {
							m++
						}
					}
				}
				if m > 1 || (m == 1 && valid > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMOESISnoopRead(t *testing.T) {
	b := newBus()
	b.SetMOESI(true)
	if !b.MOESI() {
		t.Fatal("flag")
	}
	b.Fill(1, 7, cache.Modified)
	res := b.SnoopRead(0, 7)
	if res.Supplier != 1 || res.State != cache.Modified {
		t.Fatalf("snoop = %+v", res)
	}
	if st := b.Probe(1, 7).State; st != cache.Owned {
		t.Fatalf("supplier state = %v, want O under MOESI", st)
	}
	// The Owned copy still answers DowngradeDirty and ExtractDirty.
	if !b.HasDirty(7) {
		t.Fatal("O not dirty")
	}
	if !b.DowngradeDirty(7, cache.RemoteMaster) {
		t.Fatal("DowngradeDirty missed O")
	}
	if st := b.Probe(1, 7).State; st != cache.RemoteMaster {
		t.Fatalf("state = %v after downgrade", st)
	}
}

func TestSnoopWriteConsumesOwned(t *testing.T) {
	b := newBus()
	b.SetMOESI(true)
	b.Fill(2, 5, cache.Owned)
	b.Fill(3, 5, cache.Shared)
	res := b.SnoopWrite(0, 5)
	if res.Supplier != 2 || res.State != cache.Owned {
		t.Fatalf("snoop = %+v, want owned supplier", res)
	}
	if b.HasBlock(5) {
		t.Fatal("copies survived")
	}
}
