// Package bus models the intra-cluster snooping bus: the per-processor
// caches of one SMP node and the MESIR transactions among them
// (paper §3.2). MESIR is MESI plus an R state ("remote master"): the
// cache responsible for a clean remote block, which generates a
// replacement transaction when victimized so the network victim cache
// can capture the last clean copy in the node — something plain MESI
// cannot do, because clean replacements never reach the bus.
//
// The bus knows nothing about the directory, the network cache or the
// page cache; package cluster composes them.
package bus

import (
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
)

// Bus is the snooping bus of one cluster with its processor caches.
type Bus struct {
	caches []*cache.SetAssoc
	moesi  bool
}

// New builds a bus with n processor caches of the given configuration.
func New(n int, cfg cache.Config) (*Bus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bus: invalid processor count %d", n)
	}
	b := &Bus{caches: make([]*cache.SetAssoc, n)}
	for i := range b.caches {
		c, err := cache.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("bus: processor cache: %w", err)
		}
		b.caches[i] = c
	}
	return b, nil
}

// SetMOESI enables the O state: a Modified supplier of a read snoop
// downgrades to Owned and keeps the dirty data instead of generating a
// write-back (the protocol option of paper §3.2).
func (b *Bus) SetMOESI(on bool) { b.moesi = on }

// MOESI reports whether the O state is enabled.
func (b *Bus) MOESI() bool { return b.moesi }

// Procs returns the number of processor caches on the bus.
func (b *Bus) Procs() int { return len(b.caches) }

// Cache returns processor p's cache (testing and page flushes).
func (b *Bus) Cache(p int) *cache.SetAssoc { return b.caches[p] }

// Probe looks up blk in processor p's own cache without a bus
// transaction. The returned line may be mutated by the caller (state
// transitions on hits).
func (b *Bus) Probe(p int, blk memsys.Block) *cache.Line {
	return b.caches[p].Lookup(blk)
}

// Touch refreshes LRU recency of blk in p's cache.
func (b *Bus) Touch(p int, blk memsys.Block) { b.caches[p].Touch(blk) }

// TouchLine refreshes LRU recency of a line Probe already located in
// p's cache, without a second tag lookup.
func (b *Bus) TouchLine(p int, ln *cache.Line) { b.caches[p].TouchLine(ln) }

// SnoopResult describes what sibling caches answered to a bus request.
type SnoopResult struct {
	Supplier int         // cache that supplied the data, or -1
	State    cache.State // supplier's state at the time of the snoop
}

// SnoopRead services a read request from processor p on the bus. If a
// sibling holds the block it supplies it cache-to-cache; a Modified
// sibling is downgraded to Shared (the caller must arrange the write-back
// of the dirty data); an Exclusive sibling downgrades to Shared; an R
// sibling keeps mastership. The requester's fill state is always Shared.
func (b *Bus) SnoopRead(p int, blk memsys.Block) SnoopResult {
	for i, c := range b.caches {
		if i == p {
			continue
		}
		ln := c.Lookup(blk)
		if ln == nil {
			continue
		}
		st := ln.State
		switch st {
		case cache.Modified:
			if b.moesi {
				ln.State = cache.Owned // keep the dirty data, no write-back
			} else {
				ln.State = cache.Shared
			}
		case cache.Exclusive:
			ln.State = cache.Shared
		}
		return SnoopResult{Supplier: i, State: st}
	}
	return SnoopResult{Supplier: -1}
}

// SnoopWrite services a read-exclusive request from processor p: every
// sibling copy is invalidated. It reports the supplier (if any) and
// whether a Modified copy was consumed (its dirty data transfers with
// ownership — no write-back is needed).
func (b *Bus) SnoopWrite(p int, blk memsys.Block) SnoopResult {
	res := SnoopResult{Supplier: -1}
	for i, c := range b.caches {
		if i == p {
			continue
		}
		ln := c.Lookup(blk)
		if ln == nil {
			continue
		}
		if res.Supplier == -1 || ln.State == cache.Modified {
			res = SnoopResult{Supplier: i, State: ln.State}
		}
		c.Evict(blk)
	}
	return res
}

// InvalidateAll removes blk from every cache on the bus (system-level
// invalidation). It reports how many copies existed and whether any was
// Modified (whose data dies with the invalidation, as the new writer
// supersedes it).
func (b *Bus) InvalidateAll(blk memsys.Block) (copies int, hadDirty bool) {
	for _, c := range b.caches {
		if ln := c.Evict(blk); ln.State.Valid() {
			copies++
			if ln.State.Dirty() {
				hadDirty = true
			}
		}
	}
	return copies, hadDirty
}

// ExtractDirty finds a Modified copy of blk, removes it, and reports
// whether one existed. It is used when an inclusive NC evicts a dirty
// frame and must pull the freshest data out of the processor caches.
func (b *Bus) ExtractDirty(blk memsys.Block) bool {
	for _, c := range b.caches {
		if ln := c.Lookup(blk); ln != nil && ln.State.Dirty() {
			c.Evict(blk)
			return true
		}
	}
	return false
}

// DowngradeDirty finds a Modified copy of blk and downgrades it to the
// given clean state, reporting whether one existed (remote read
// intervention). Remote-home blocks downgrade to RemoteMaster — the
// downgraded copy is the last clean copy in the node and keeps the MESIR
// replacement-mastership; local-home blocks downgrade to Shared.
func (b *Bus) DowngradeDirty(blk memsys.Block, to cache.State) bool {
	for _, c := range b.caches {
		if ln := c.Lookup(blk); ln != nil && ln.State.Dirty() {
			ln.State = to
			return true
		}
	}
	return false
}

// TransferMastership implements the R-state replacement transaction: when
// processor p victimizes an R block, a sibling holding it Shared assumes
// mastership (S→R) and no victim needs to leave the caches. It reports
// whether a sibling took over.
func (b *Bus) TransferMastership(p int, blk memsys.Block) bool {
	for i, c := range b.caches {
		if i == p {
			continue
		}
		if ln := c.Lookup(blk); ln != nil && ln.State == cache.Shared {
			ln.State = cache.RemoteMaster
			return true
		}
	}
	return false
}

// Fill inserts blk into processor p's cache, returning the victim line.
func (b *Bus) Fill(p int, blk memsys.Block, st cache.State) cache.Line {
	return b.caches[p].Fill(blk, st)
}

// HasBlock reports whether any cache on the bus holds blk.
func (b *Bus) HasBlock(blk memsys.Block) bool {
	for _, c := range b.caches {
		if c.Lookup(blk) != nil {
			return true
		}
	}
	return false
}

// HasDirty reports whether any cache holds blk Modified.
func (b *Bus) HasDirty(blk memsys.Block) bool {
	for _, c := range b.caches {
		if ln := c.Lookup(blk); ln != nil && ln.State.Dirty() {
			return true
		}
	}
	return false
}

// EvictPage removes every block of page pg from every cache, returning
// the dirty blocks that must be written back (page re-mapping flush).
func (b *Bus) EvictPage(pg memsys.Page) []memsys.Block {
	var dirty []memsys.Block
	for _, c := range b.caches {
		for _, ln := range c.EvictPage(pg) {
			if ln.State.Dirty() {
				dirty = append(dirty, ln.Block)
			}
		}
	}
	return dirty
}

// Holders returns how many caches hold blk (testing).
func (b *Bus) Holders(blk memsys.Block) int {
	n := 0
	for _, c := range b.caches {
		if c.Lookup(blk) != nil {
			n++
		}
	}
	return n
}
