package migration

import (
	"sort"

	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

const tagMigration = 0x08

// SaveState serializes the migration engine: per-page reference
// counters, writer and replica bit-masks (sorted by page, counters
// sorted by cluster) and the policy's event accounts. Thresholds are
// configuration, re-derived at restore.
func (e *Engine) SaveState(w *snapshot.Writer) {
	w.Section(tagMigration)
	pages := make([]memsys.Page, 0, len(e.pages))
	for p := range e.pages {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	w.U64(uint64(len(pages)))
	for _, p := range pages {
		st := e.pages[p]
		w.U64(uint64(p))
		w.U64(st.writers)
		w.U64(st.replicas)
		cs := make([]int, 0, len(st.counts))
		for c := range st.counts {
			cs = append(cs, c)
		}
		sort.Ints(cs)
		w.U32(uint32(len(cs)))
		for _, c := range cs {
			w.U32(uint32(c))
			w.U32(st.counts[c])
		}
	}
	w.I64(e.migrations)
	w.I64(e.replications)
	w.I64(e.collapses)
	w.I64(e.replicaHits)
}

// LoadState restores the engine in place. clusters bounds every
// cluster-valued field: the simulator indexes its cluster slice with
// replica and writer bits, so out-of-range state must be rejected here.
func (e *Engine) LoadState(r *snapshot.Reader, clusters int) {
	r.Section(tagMigration)
	var mask uint64
	if clusters >= 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<uint(clusters) - 1
	}
	n := r.Len(1 << 40)
	pages := make(map[memsys.Page]*pageState)
	for i := 0; i < n; i++ {
		p := memsys.Page(r.U64())
		writers := r.U64()
		replicas := r.U64()
		nc := int(r.U32())
		if r.Err() != nil {
			return
		}
		if writers&^mask != 0 || replicas&^mask != 0 {
			r.Failf("writer/replica bits beyond %d clusters for page %d", clusters, p)
			return
		}
		if nc > clusters {
			r.Failf("page %d counts %d clusters of %d", p, nc, clusters)
			return
		}
		st := &pageState{counts: make(map[int]uint32, nc), writers: writers, replicas: replicas}
		for j := 0; j < nc; j++ {
			c := int(r.U32())
			v := r.U32()
			if r.Err() != nil {
				return
			}
			if c >= clusters {
				r.Failf("miss counter names cluster %d of %d", c, clusters)
				return
			}
			st.counts[c] = v
		}
		pages[p] = st
	}
	migrations := r.I64()
	replications := r.I64()
	collapses := r.I64()
	replicaHits := r.I64()
	if r.Err() != nil {
		return
	}
	e.pages = pages
	e.migrations = migrations
	e.replications = replications
	e.collapses = collapses
	e.replicaHits = replicaHits
}
