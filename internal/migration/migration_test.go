package migration

import "testing"

func TestDefaultsApplied(t *testing.T) {
	e := NewEngine(Config{})
	if e.cfg.ReplicateThreshold != 32 || e.cfg.MigrateThreshold != 64 {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
}

func TestReplicationOfReadOnlyPage(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 3, MigrateThreshold: 100})
	if e.HasReplica(1, 7) {
		t.Fatal("phantom replica")
	}
	for i := 0; i < 2; i++ {
		if a := e.OnRemoteMiss(1, 7, false); a != None {
			t.Fatalf("miss %d: action %v", i, a)
		}
	}
	if a := e.OnRemoteMiss(1, 7, false); a != Replicate {
		t.Fatalf("third miss: %v, want Replicate", a)
	}
	if !e.HasReplica(1, 7) {
		t.Fatal("replica not granted")
	}
	if e.Replications() != 1 {
		t.Fatal("replication not counted")
	}
	// Already replicated: no second grant.
	for i := 0; i < 5; i++ {
		if a := e.OnRemoteMiss(1, 7, false); a == Replicate {
			t.Fatal("double replication")
		}
	}
	// An independent cluster earns its own replica.
	for i := 0; i < 3; i++ {
		e.OnRemoteMiss(2, 7, false)
	}
	if !e.HasReplica(2, 7) {
		t.Fatal("second cluster not replicated")
	}
}

func TestWritesBlockReplication(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 2, MigrateThreshold: 100})
	e.OnRemoteMiss(1, 3, true) // remote write: page is not read-only
	for i := 0; i < 10; i++ {
		if a := e.OnRemoteMiss(1, 3, false); a == Replicate {
			t.Fatal("replicated a written page")
		}
	}
}

func TestMigrationOfDominantWriter(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 100, MigrateThreshold: 4})
	var act Action
	for i := 0; i < 4; i++ {
		act = e.OnRemoteMiss(2, 9, true)
	}
	if act != Migrate {
		t.Fatalf("action = %v, want Migrate", act)
	}
	if e.Migrations() != 1 {
		t.Fatal("migration not counted")
	}
	// Counts reset after the move: the next miss starts over.
	if a := e.OnRemoteMiss(2, 9, true); a != None {
		t.Fatalf("post-migration action %v", a)
	}
}

func TestNoMigrationWithCompetingTraffic(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 100, MigrateThreshold: 4})
	// Cluster 3 keeps pace with cluster 2: neither ever dominates 2:1,
	// so the page must stay put.
	for i := 0; i < 10; i++ {
		if a := e.OnRemoteMiss(3, 9, false); a == Migrate {
			t.Fatal("reader migrated the page")
		}
		if a := e.OnRemoteMiss(2, 9, true); a == Migrate {
			t.Fatal("migrated despite competing traffic")
		}
	}
}

func TestNoMigrationWithMultipleWriters(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 100, MigrateThreshold: 2})
	e.OnRemoteMiss(1, 5, true)
	e.OnRemoteMiss(2, 5, true)
	for i := 0; i < 6; i++ {
		if a := e.OnRemoteMiss(1, 5, true); a == Migrate {
			t.Fatal("migrated a multi-writer page")
		}
	}
}

func TestCollapseReplicas(t *testing.T) {
	e := NewEngine(Config{ReplicateThreshold: 1, MigrateThreshold: 100})
	e.OnRemoteMiss(1, 4, false)
	e.OnRemoteMiss(5, 4, false)
	if !e.HasReplica(1, 4) || !e.HasReplica(5, 4) {
		t.Fatal("replicas missing")
	}
	got := e.CollapseReplicas(4)
	if len(got) != 2 {
		t.Fatalf("collapsed %v", got)
	}
	if e.HasReplica(1, 4) || e.HasReplica(5, 4) {
		t.Fatal("replicas survived collapse")
	}
	if e.Collapses() != 1 {
		t.Fatal("collapse not counted")
	}
	if e.CollapseReplicas(4) != nil {
		t.Fatal("double collapse returned clusters")
	}
	if e.CollapseReplicas(99) != nil {
		t.Fatal("unknown page collapse returned clusters")
	}
}

func TestReplicaHitCounter(t *testing.T) {
	e := NewEngine(Config{})
	e.RecordReplicaHit()
	e.RecordReplicaHit()
	if e.ReplicaHits() != 2 {
		t.Fatal("replica hits")
	}
}
