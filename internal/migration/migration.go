// Package migration implements OS-level page migration and replication,
// the SGI-Origin alternative to network caches that the paper contrasts
// in §1 and §7 ("the SGI Origin ... relies exclusively on page migration
// and replication"). The paper closes with the conjecture that "a small,
// very fast NC could shield the page migration and replication policies
// from the noise of conflict misses"; together with the simulator's NC
// organizations this package lets that conjecture be tested.
//
// The model follows the Origin's per-page reference counters: the home
// node counts remote misses per (page, cluster). When a cluster's count
// crosses a threshold the OS acts:
//
//   - a page that has seen remote writes migrates to the dominant writer
//     (re-homing it) — if a single cluster is responsible for the traffic;
//   - a read-only page is replicated: the cluster receives a local
//     read-only copy, and any later write collapses all replicas first
//     (TLB shootdown), exactly like the Origin's directory-backed
//     replication.
//
// Both actions carry the paper's 225-cycle OS overhead plus a whole-page
// copy over the network.
package migration

import (
	"dsmnc/memsys"
)

// Config tunes the policy.
type Config struct {
	// ReplicateThreshold is the remote-miss count at which a read-only
	// page is replicated to the missing cluster.
	ReplicateThreshold uint32
	// MigrateThreshold is the count at which a written page migrates to
	// the cluster generating the traffic.
	MigrateThreshold uint32
}

// DefaultConfig mirrors the relocation thresholds of the page-cache
// systems so migration and page caching are compared fairly.
func DefaultConfig() Config {
	return Config{ReplicateThreshold: 32, MigrateThreshold: 64}
}

// Action is what the policy decided for one remote miss.
type Action uint8

// Actions.
const (
	None Action = iota
	Replicate
	Migrate
)

type pageState struct {
	counts   map[int]uint32 // remote misses per cluster
	writers  uint64         // clusters that ever wrote the page
	replicas uint64         // clusters holding read-only copies
}

// Engine is the machine-wide migration/replication policy state,
// logically distributed to the home nodes.
type Engine struct {
	cfg   Config
	pages map[memsys.Page]*pageState

	migrations   int64
	replications int64
	collapses    int64
	replicaHits  int64
}

// NewEngine builds an engine with cfg.
func NewEngine(cfg Config) *Engine {
	if cfg.ReplicateThreshold == 0 {
		cfg.ReplicateThreshold = DefaultConfig().ReplicateThreshold
	}
	if cfg.MigrateThreshold == 0 {
		cfg.MigrateThreshold = DefaultConfig().MigrateThreshold
	}
	return &Engine{cfg: cfg, pages: make(map[memsys.Page]*pageState)}
}

func (e *Engine) stateOf(p memsys.Page) *pageState {
	st := e.pages[p]
	if st == nil {
		st = &pageState{counts: make(map[int]uint32)}
		e.pages[p] = st
	}
	return st
}

// HasReplica reports whether cluster c holds a read-only copy of p.
func (e *Engine) HasReplica(c int, p memsys.Page) bool {
	if st := e.pages[p]; st != nil {
		return st.replicas&(1<<uint(c)) != 0
	}
	return false
}

// RecordReplicaHit counts a read served from a local replica.
func (e *Engine) RecordReplicaHit() { e.replicaHits++ }

// OnRemoteMiss informs the policy of a remote miss on page p by cluster
// c (write=true for write fetches and upgrades). It returns the action
// the OS takes; the simulator applies it (re-homing, replica grant).
func (e *Engine) OnRemoteMiss(c int, p memsys.Page, write bool) Action {
	st := e.stateOf(p)
	if write {
		st.writers |= 1 << uint(c)
	}
	st.counts[c]++
	n := st.counts[c]
	if st.writers == 0 {
		if n >= e.cfg.ReplicateThreshold && !e.HasReplica(c, p) {
			st.replicas |= 1 << uint(c)
			st.counts[c] = 0
			e.replications++
			return Replicate
		}
		return None
	}
	// Written pages can only migrate, and only when one cluster
	// dominates: its count must exceed the threshold while every other
	// cluster stays below half of it.
	if n < e.cfg.MigrateThreshold || st.writers != 1<<uint(c) {
		return None
	}
	for oc, v := range st.counts {
		if oc != c && v > n/2 {
			return None
		}
	}
	st.counts = map[int]uint32{}
	e.migrations++
	return Migrate
}

// CollapseReplicas clears all replicas of p (a write is about to
// complete), returning the clusters whose copies must be shot down.
func (e *Engine) CollapseReplicas(p memsys.Page) []int {
	st := e.pages[p]
	if st == nil || st.replicas == 0 {
		return nil
	}
	var out []int
	for c := 0; st.replicas != 0 && c < 64; c++ {
		if st.replicas&(1<<uint(c)) != 0 {
			out = append(out, c)
			st.replicas &^= 1 << uint(c)
		}
	}
	e.collapses++
	return out
}

// Migrations returns the number of pages migrated.
func (e *Engine) Migrations() int64 { return e.migrations }

// Replications returns the number of replicas granted.
func (e *Engine) Replications() int64 { return e.replications }

// Collapses returns the number of replica shoot-downs.
func (e *Engine) Collapses() int64 { return e.collapses }

// ReplicaHits returns the reads served from local replicas.
func (e *Engine) ReplicaHits() int64 { return e.replicaHits }
