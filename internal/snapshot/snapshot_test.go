package snapshot

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// encode writes a fixed mix of primitives and returns the bytes.
func encode(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(0x11)
	w.U8(7)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Bool(true)
	w.Bool(false)
	w.U64(3) // a count
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	b := encode(t)
	r := NewReader(bytes.NewReader(b))
	r.Section(0x11)
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Errorf("Bool = true, want false")
	}
	if got := r.Len(10); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncationAtEveryPrefix(t *testing.T) {
	b := encode(t)
	for n := 0; n < len(b); n++ {
		r := NewReader(bytes.NewReader(b[:n]))
		drain(r)
		if err := r.Finish(); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrBadSnapshot", n, len(b), err)
		}
	}
}

func TestBitFlipFailsChecksum(t *testing.T) {
	b := encode(t)
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x80
		r := NewReader(bytes.NewReader(mut))
		drain(r)
		if err := r.Finish(); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("flip at %d: err = %v, want ErrBadSnapshot", i, err)
		}
	}
}

// drain mirrors the encode schema so the checksum is actually computed
// over the whole body before Finish.
func drain(r *Reader) {
	r.Section(0x11)
	r.U8()
	r.U16()
	r.U32()
	r.U64()
	r.I64()
	r.Bool()
	r.Bool()
	r.Len(10)
}

func TestBadMagicAndVersion(t *testing.T) {
	r := NewReader(strings.NewReader("NOPE\x01\x00"))
	if err := r.Err(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: err = %v", err)
	}
	r = NewReader(strings.NewReader(magic + "\x63\x00"))
	if err := r.Err(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad version: err = %v", err)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version error lacks detail: %v", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	b := encode(t)
	r := NewReader(bytes.NewReader(b))
	r.Section(0x22) // stream holds 0x11
	if err := r.Err(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("section mismatch: err = %v", err)
	}
}

func TestBoolStrictAndLenBounds(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(2) // not a boolean
	w.U64(1 << 40)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Bool()
	if err := r.Err(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("loose bool accepted: %v", err)
	}

	r = NewReader(bytes.NewReader(buf.Bytes()))
	r.U8()
	r.Len(1 << 20) // stream says 2^40
	if err := r.Err(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("oversized count accepted: %v", err)
	}
}

func TestTrailingDataRejected(t *testing.T) {
	b := append(encode(t), 0x00)
	r := NewReader(bytes.NewReader(b))
	drain(r)
	if err := r.Finish(); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestErrorsCarryOffset(t *testing.T) {
	b := encode(t)
	r := NewReader(bytes.NewReader(b[:7])) // cut inside the first section
	drain(r)
	err := r.Finish()
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks offset tag: %v", err)
	}
}

func TestStickyFailure(t *testing.T) {
	r := NewReader(strings.NewReader("NOPE\x01\x00"))
	first := r.Err()
	r.U64()
	r.Section(9)
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}
