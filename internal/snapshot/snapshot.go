// Package snapshot is the versioned, checksummed binary codec that
// checkpoint/resume is built on. It serializes the complete state of a
// simulated machine — cache tag arrays with LRU order, network-cache
// frames and vxp set counters, directory entries and R-NUMA relocation
// counters, page-cache frames and adaptive-threshold state, migration
// state, the per-cluster event account and the trace position — so that
// a run can be parked on disk and resumed bit-identically.
//
// The format is deliberately dumb: a magic/version header, a flat
// sequence of fixed-width little-endian primitives punctuated by
// one-byte section tags (so a reader that drifts out of sync fails fast
// instead of silently misinterpreting bytes), and a trailing CRC-32 of
// everything before it. Map-backed structures are written in sorted key
// order, so the same machine state always produces the same bytes.
//
// Corrupt, truncated or mismatched input lands on the ErrBadSnapshot
// sentinel, tagged with the byte offset of the first inconsistency —
// the same discipline as trace.ErrBadTrace — and never on a panic: the
// package is covered by the repository's AST-enforced panic-free
// contract.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// ErrBadSnapshot is the sentinel wrapped by every decode failure:
// truncation, checksum mismatch, section-tag drift, or state that fails
// validation against the configuration being restored into.
var ErrBadSnapshot = errors.New("snapshot: malformed snapshot")

// Format constants.
const (
	magic = "DSNP" // DSM network-cache snapshot
	// version 2 appended the optional telemetry-sampler state to the
	// machine section; version-1 snapshots are refused rather than
	// mis-read past their final cluster.
	version = 2
	endMark = 0xED // closes the section stream, ahead of the CRC
)

// Writer encodes a snapshot. Encoding errors (from the underlying
// io.Writer) are sticky; check Close.
type Writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	off int64
	err error
	buf [8]byte
}

// NewWriter starts a snapshot on w, emitting the magic/version header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	sw.write([]byte(magic))
	sw.U16(version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
	w.off += int64(len(p))
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool writes a strict 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Section writes a section tag, a cheap synchronization point: the
// reader verifies it before decoding the section body.
func (w *Writer) Section(tag uint8) { w.U8(tag) }

// Err returns the sticky encoding error, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the end marker and the CRC-32 trailer and flushes. It
// returns the first error encountered during encoding.
func (w *Writer) Close() error {
	w.U8(endMark)
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32() // the trailer itself is not hashed
	binary.LittleEndian.PutUint32(w.buf[:4], sum)
	if _, err := w.w.Write(w.buf[:4]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes a snapshot. Decode errors are sticky: after the first
// failure every primitive returns a zero value and Err/Finish report
// the offset-tagged ErrBadSnapshot.
type Reader struct {
	r   *bufio.Reader
	crc hash.Hash32
	off int64
	err error
	buf [8]byte
}

// NewReader opens a snapshot stream, consuming and validating the
// magic/version header. Header problems surface from Err and from
// every subsequent read.
func NewReader(r io.Reader) *Reader {
	sr := &Reader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var hdr [len(magic)]byte
	if !sr.read(hdr[:]) {
		return sr
	}
	if string(hdr[:]) != magic {
		sr.off = 0
		sr.Failf("bad magic %q", hdr[:])
		return sr
	}
	if v := sr.U16(); sr.err == nil && v != version {
		sr.Failf("unsupported version %d (want %d)", v, version)
	}
	return sr
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.Failf("truncated (%v)", err)
		return false
	}
	r.crc.Write(p)
	r.off += int64(len(p))
	return true
}

// Failf records a decode failure at the current offset, wrapping
// ErrBadSnapshot. State loaders use it to reject values that do not fit
// the configuration being restored into. Only the first failure sticks.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d",
			ErrBadSnapshot, fmt.Sprintf(format, args...), r.off)
	}
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int64 { return r.off }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.read(r.buf[:2]) {
		return 0
	}
	return binary.LittleEndian.Uint16(r.buf[:2])
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a strict boolean: any byte other than 0 or 1 is a decode
// failure (a drifted reader would otherwise coerce garbage to true).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("invalid boolean")
		return false
	}
}

// Len reads an element count and bounds it: counts above max (or the
// int range) are rejected so attacker-controlled headers cannot drive
// huge allocations. Loaders must still bail out of their fill loops
// when Err becomes non-nil, which caps work at the actual stream size.
func (r *Reader) Len(max int64) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if int64(n) < 0 || int64(n) > max {
		r.Failf("count %d out of range [0,%d]", n, max)
		return 0
	}
	return int(n)
}

// Section consumes a section tag and verifies it is the expected one.
func (r *Reader) Section(tag uint8) {
	got := r.U8()
	if r.err == nil && got != tag {
		r.Failf("section tag %#x, want %#x", got, tag)
	}
}

// Finish consumes the end marker and the CRC-32 trailer, verifies the
// checksum, and requires the stream to end there. It returns the sticky
// decode error, so callers can funnel every failure through one check.
func (r *Reader) Finish() error {
	if got := r.U8(); r.err == nil && got != endMark {
		r.Failf("end marker %#x, want %#x", got, endMark)
	}
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32() // hash of everything before the trailer
	if _, err := io.ReadFull(r.r, r.buf[:4]); err != nil {
		r.Failf("truncated checksum (%v)", err)
		return r.err
	}
	if got := binary.LittleEndian.Uint32(r.buf[:4]); got != want {
		r.Failf("checksum mismatch: stored %#x, computed %#x", got, want)
		return r.err
	}
	r.off += 4
	if _, err := r.r.ReadByte(); err != io.EOF {
		r.Failf("trailing data after checksum")
	}
	return r.err
}
