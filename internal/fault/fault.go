// Package fault is the fault-injection harness for the simulator's
// robustness tests: a trace.Source wrapper that corrupts an otherwise
// well-formed reference stream in controlled, deterministically seeded
// ways. Each corruption class maps to a failure the hardened stack must
// reject with a typed error (never a panic):
//
//	BitFlipAddr      — a flipped high address bit pushes the reference
//	                   beyond the machine's address space; sim.Apply must
//	                   reject it with sim.ErrBadRef.
//	BadPID           — a processor ID at or beyond the machine's total;
//	                   rejected with sim.ErrBadRef.
//	Truncate         — the stream ends mid-flight with a decode error, as
//	                   a cut-short trace file would; surfaced through
//	                   Err() wrapping trace.ErrBadTrace.
//	DuplicateQuantum — a scheduling quantum is replayed verbatim. The
//	                   stream stays legal: the machine must absorb it
//	                   without invariant violations.
//	ReorderQuantum   — two adjacent quanta swap places. Also legal, also
//	                   absorbed; results stay deterministic under a fixed
//	                   seed.
//
// The injector is itself a trace.Source, so it slots between any
// workload and sim.System.Run without either side knowing.
package fault

import (
	"fmt"
	"math/rand"

	"dsmnc/memsys"
	"dsmnc/trace"
)

// Kind selects the corruption class.
type Kind uint8

// Corruption classes.
const (
	// None passes the stream through untouched.
	None Kind = iota
	// BitFlipAddr flips an address bit above memsys.AddrSpaceBits.
	BitFlipAddr
	// BadPID replaces the PID with one at or beyond the machine total.
	BadPID
	// Truncate cuts the stream short with a trace.ErrBadTrace decode
	// error reported via Err().
	Truncate
	// DuplicateQuantum replays a whole quantum of references.
	DuplicateQuantum
	// ReorderQuantum swaps two adjacent quanta.
	ReorderQuantum
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BitFlipAddr:
		return "bitflip-addr"
	case BadPID:
		return "bad-pid"
	case Truncate:
		return "truncate"
	case DuplicateQuantum:
		return "duplicate-quantum"
	case ReorderQuantum:
		return "reorder-quantum"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Config parameterizes an Injector. The zero value of optional fields
// picks sensible defaults.
type Config struct {
	Kind Kind
	// Seed drives the injection PRNG; runs with equal seeds inject at
	// identical points.
	Seed int64
	// EveryN sets the expected gap between injections (default 997
	// records). Each record (or quantum, for the quantum kinds) is
	// corrupted with probability 1/EveryN.
	EveryN int
	// Quantum is the records-per-quantum granularity for the
	// DuplicateQuantum and ReorderQuantum kinds (default 64).
	Quantum int
	// MaxPIDs is the machine's total processor count; BadPID injects
	// PIDs >= MaxPIDs. Defaults to 1<<20, beyond any geometry.
	MaxPIDs int
}

// Injector is a corrupting trace.Source wrapper.
type Injector struct {
	src       trace.Source
	cfg       Config
	rng       *rand.Rand
	buf       []trace.Ref
	err       error
	done      bool
	delivered int64
	injected  int64
}

// Wrap builds an injector around src.
func Wrap(src trace.Source, cfg Config) *Injector {
	if cfg.EveryN <= 0 {
		cfg.EveryN = 997
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.MaxPIDs <= 0 {
		cfg.MaxPIDs = 1 << 20
	}
	return &Injector{
		src: src,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Injected returns how many corruptions have been applied.
func (in *Injector) Injected() int64 { return in.injected }

// Delivered returns how many references have been handed out.
func (in *Injector) Delivered() int64 { return in.delivered }

// Err returns the stream's terminal error: the injected truncation
// error, or the wrapped source's own Err() when it has one.
func (in *Injector) Err() error {
	if in.err != nil {
		return in.err
	}
	if fe, ok := in.src.(interface{ Err() error }); ok {
		return fe.Err()
	}
	return nil
}

// roll reports whether this record (or quantum) gets corrupted.
func (in *Injector) roll() bool { return in.rng.Intn(in.cfg.EveryN) == 0 }

// Next produces the next — possibly corrupted — reference.
func (in *Injector) Next() (trace.Ref, bool) {
	for {
		if len(in.buf) > 0 {
			r := in.buf[0]
			in.buf = in.buf[1:]
			in.delivered++
			return r, true
		}
		if in.done {
			return trace.Ref{}, false
		}
		switch in.cfg.Kind {
		case DuplicateQuantum, ReorderQuantum:
			in.refillQuanta()
		default:
			r, ok := in.src.Next()
			if !ok {
				in.done = true
				return trace.Ref{}, false
			}
			if in.cfg.Kind == Truncate && in.roll() {
				in.done = true
				in.injected++
				in.err = fmt.Errorf("%w: stream truncated after %d records (injected)",
					trace.ErrBadTrace, in.delivered)
				return trace.Ref{}, false
			}
			if in.roll() {
				r = in.corrupt(r)
			}
			in.delivered++
			return r, true
		}
	}
}

// corrupt applies the per-record corruption classes.
func (in *Injector) corrupt(r trace.Ref) trace.Ref {
	switch in.cfg.Kind {
	case BitFlipAddr:
		// Flip a bit above the architected address space: the result is
		// guaranteed out of range, so detection is deterministic.
		bit := memsys.AddrSpaceBits + in.rng.Intn(63-memsys.AddrSpaceBits)
		r.Addr ^= memsys.Addr(1) << uint(bit)
		in.injected++
	case BadPID:
		r.PID = int32(in.cfg.MaxPIDs + in.rng.Intn(8))
		in.injected++
	}
	return r
}

// refillQuanta reads one quantum (two for reorders) and queues it,
// duplicated or swapped when the dice say so.
func (in *Injector) refillQuanta() {
	a := in.readQuantum()
	if len(a) == 0 {
		in.done = true
		return
	}
	inject := in.roll()
	switch {
	case in.cfg.Kind == DuplicateQuantum && inject:
		in.injected++
		in.buf = append(in.buf, a...)
		in.buf = append(in.buf, a...)
	case in.cfg.Kind == ReorderQuantum && inject:
		b := in.readQuantum()
		in.injected++
		in.buf = append(in.buf, b...)
		in.buf = append(in.buf, a...)
	default:
		in.buf = append(in.buf, a...)
	}
}

// readQuantum pulls up to cfg.Quantum records from the source.
func (in *Injector) readQuantum() []trace.Ref {
	q := make([]trace.Ref, 0, in.cfg.Quantum)
	for len(q) < in.cfg.Quantum {
		r, ok := in.src.Next()
		if !ok {
			break
		}
		q = append(q, r)
	}
	return q
}
