package fault_test

import (
	"bytes"
	"errors"
	"testing"

	"dsmnc/internal/fault"
	"dsmnc/memsys"
	"dsmnc/trace"
)

// refs builds a small well-formed stream: PIDs cycle 0..3, addresses walk
// block-aligned through page 0.
func refs(n int) []trace.Ref {
	out := make([]trace.Ref, n)
	for i := range out {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		out[i] = trace.Ref{
			PID:  int32(i % 4),
			Op:   op,
			Addr: memsys.Addr(i) * memsys.BlockBytes,
		}
	}
	return out
}

func drain(in *fault.Injector) []trace.Ref {
	var out []trace.Ref
	for {
		r, ok := in.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestPassThrough(t *testing.T) {
	src := refs(100)
	in := fault.Wrap(trace.NewSliceSource(src), fault.Config{Kind: fault.None})
	got := drain(in)
	if len(got) != len(src) {
		t.Fatalf("delivered %d of %d refs", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("ref %d altered: %+v != %+v", i, got[i], src[i])
		}
	}
	if in.Err() != nil || in.Injected() != 0 {
		t.Fatalf("pass-through err=%v injected=%d", in.Err(), in.Injected())
	}
}

func TestBitFlipAddrAlwaysOutOfRange(t *testing.T) {
	in := fault.Wrap(trace.NewSliceSource(refs(64)), fault.Config{
		Kind: fault.BitFlipAddr, Seed: 1, EveryN: 1,
	})
	got := drain(in)
	if len(got) != 64 {
		t.Fatalf("delivered %d refs", len(got))
	}
	for i, r := range got {
		if r.Addr <= memsys.MaxAddr {
			t.Fatalf("ref %d: flipped address %#x still in range", i, uint64(r.Addr))
		}
	}
	if in.Injected() != 64 {
		t.Fatalf("injected = %d, want 64", in.Injected())
	}
}

func TestBadPIDAlwaysOutOfRange(t *testing.T) {
	in := fault.Wrap(trace.NewSliceSource(refs(64)), fault.Config{
		Kind: fault.BadPID, Seed: 2, EveryN: 1, MaxPIDs: 8,
	})
	for i, r := range drain(in) {
		if int(r.PID) < 8 {
			t.Fatalf("ref %d: pid %d within the machine", i, r.PID)
		}
	}
}

func TestTruncateReportsTypedError(t *testing.T) {
	in := fault.Wrap(trace.NewSliceSource(refs(1000)), fault.Config{
		Kind: fault.Truncate, Seed: 3, EveryN: 10,
	})
	got := drain(in)
	if len(got) >= 1000 {
		t.Fatal("stream never truncated")
	}
	if !errors.Is(in.Err(), trace.ErrBadTrace) {
		t.Fatalf("Err() = %v, want ErrBadTrace", in.Err())
	}
	// The stream stays dead.
	if _, ok := in.Next(); ok {
		t.Fatal("truncated stream resurrected")
	}
}

func TestDuplicateQuantumStaysLegal(t *testing.T) {
	src := refs(64)
	in := fault.Wrap(trace.NewSliceSource(src), fault.Config{
		Kind: fault.DuplicateQuantum, Seed: 4, EveryN: 1, Quantum: 8,
	})
	got := drain(in)
	if len(got) != 2*len(src) {
		t.Fatalf("delivered %d refs, want every quantum doubled (%d)", len(got), 2*len(src))
	}
	// Every corrupted stream element is still a verbatim source record.
	for i, r := range got {
		q := (i / 16) * 8 // doubled quanta of 8
		if r != src[q+i%16%8] {
			t.Fatalf("ref %d is not a replay of the source", i)
		}
	}
	if in.Err() != nil {
		t.Fatal(in.Err())
	}
}

func TestReorderQuantumSwapsAdjacent(t *testing.T) {
	src := refs(8)
	in := fault.Wrap(trace.NewSliceSource(src), fault.Config{
		Kind: fault.ReorderQuantum, Seed: 5, EveryN: 1, Quantum: 2,
	})
	got := drain(in)
	want := []trace.Ref{src[2], src[3], src[0], src[1], src[6], src[7], src[4], src[5]}
	if len(got) != len(want) {
		t.Fatalf("delivered %d refs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	mk := func(seed int64) []trace.Ref {
		in := fault.Wrap(trace.NewSliceSource(refs(500)), fault.Config{
			Kind: fault.BitFlipAddr, Seed: seed, EveryN: 7,
		})
		return drain(in)
	}
	a, b := mk(42), mk(42)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ref %d", i)
		}
	}
}

func TestErrPropagatesFromWrappedSource(t *testing.T) {
	// A truncated binary trace under a None injector: the reader's decode
	// error must flow through Err().
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, r := range refs(16) {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	in := fault.Wrap(trace.NewReader(bytes.NewReader(cut)), fault.Config{Kind: fault.None})
	drain(in)
	if !errors.Is(in.Err(), trace.ErrBadTrace) {
		t.Fatalf("Err() = %v, want the reader's ErrBadTrace", in.Err())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []fault.Kind{
		fault.None, fault.BitFlipAddr, fault.BadPID,
		fault.Truncate, fault.DuplicateQuantum, fault.ReorderQuantum,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if fault.Kind(99).String() == "" {
		t.Fatal("unknown kind unnamed")
	}
}
