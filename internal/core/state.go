package core

import (
	"fmt"

	"dsmnc/internal/snapshot"
)

// NC organization tags, written ahead of each NC's state so a restore
// into a differently-configured system fails loudly instead of
// misreading bytes.
const (
	tagNC = 0x04

	ncKindNone      = 1
	ncKindVictim    = 2
	ncKindRelaxed   = 3
	ncKindInclusive = 4
	ncKindInfinite  = 5
)

func ncKindOf(nc NC) (uint8, error) {
	switch nc.(type) {
	case NoNC:
		return ncKindNone, nil
	case *VictimNC:
		return ncKindVictim, nil
	case *RelaxedNC:
		return ncKindRelaxed, nil
	case *InclusiveNC:
		return ncKindInclusive, nil
	case *InfiniteNC:
		return ncKindInfinite, nil
	}
	return 0, fmt.Errorf("core: NC type %T is not snapshotable", nc)
}

// SaveNC serializes any of the five NC organizations. An NC type
// outside the set is a configuration error, not a stream error.
func SaveNC(w *snapshot.Writer, nc NC) error {
	kind, err := ncKindOf(nc)
	if err != nil {
		return err
	}
	w.Section(tagNC)
	w.U8(kind)
	switch n := nc.(type) {
	case *VictimNC:
		n.tags.SaveState(w)
		w.Bool(n.counters != nil)
		if n.counters != nil {
			w.U32(uint32(len(n.counters)))
			for _, v := range n.counters {
				w.U32(v)
			}
		}
	case *RelaxedNC:
		n.tags.SaveState(w)
	case *InclusiveNC:
		n.tags.SaveState(w)
	case *InfiniteNC:
		n.lines.SaveState(w)
	}
	return nil
}

// LoadNC restores nc in place from the snapshot. The recorded
// organization must match nc's type; a mismatch is recorded on r as a
// decode failure. An NC type outside the snapshotable set is returned
// as a plain configuration error.
func LoadNC(r *snapshot.Reader, nc NC) error {
	want, err := ncKindOf(nc)
	if err != nil {
		return err
	}
	r.Section(tagNC)
	kind := r.U8()
	if r.Err() != nil {
		return nil
	}
	if kind != want {
		r.Failf("snapshot NC organization %d, configured %d", kind, want)
		return nil
	}
	switch n := nc.(type) {
	case *VictimNC:
		n.tags.LoadState(r)
		hasCounters := r.Bool()
		if r.Err() != nil {
			return nil
		}
		if hasCounters != (n.counters != nil) {
			r.Failf("snapshot vxp counters %t, configured %t", hasCounters, n.counters != nil)
			return nil
		}
		if n.counters != nil {
			cn := int(r.U32())
			if r.Err() != nil {
				return nil
			}
			if cn != len(n.counters) {
				r.Failf("snapshot has %d set counters, cache has %d sets", cn, len(n.counters))
				return nil
			}
			for i := range n.counters {
				n.counters[i] = r.U32()
				if r.Err() != nil {
					return nil
				}
			}
		}
	case *RelaxedNC:
		n.tags.LoadState(r)
	case *InclusiveNC:
		n.tags.LoadState(r)
	case *InfiniteNC:
		n.lines.LoadState(r)
	}
	return nil
}
