package core

import (
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// blockInSet returns distinct blocks that map to the same set of a
// 4-set block-indexed cache: b, b+4, b+8 ...
func conflicting(base memsys.Block, sets, n int) []memsys.Block {
	out := make([]memsys.Block, n)
	for i := range out {
		out[i] = base + memsys.Block(i*sets)
	}
	return out
}

func TestNoNC(t *testing.T) {
	var n NoNC
	if n.Tech() != stats.NCTechNone {
		t.Fatal("NoNC tech")
	}
	if n.Probe(1, false).Hit {
		t.Fatal("NoNC hit")
	}
	if n.OnFill(1, false) != nil {
		t.Fatal("NoNC OnFill evicted")
	}
	if r := n.AcceptVictim(1, true); r.Accepted {
		t.Fatal("NoNC accepted a victim")
	}
	if n.Invalidate(1) || n.Contains(1) || n.EvictPage(0) != nil {
		t.Fatal("NoNC has state")
	}
}

func newSmallVictim(idx cache.Indexing, counters bool) *VictimNC {
	// 4 sets x 4 ways = 1 KB.
	v, err := NewVictim(VictimConfig{
		Bytes: 16 * memsys.BlockBytes, Ways: 4, Indexing: idx, SetCounters: counters,
	})
	if err != nil {
		panic(err)
	}
	return v
}

// mustRelaxed / mustInclusive are test-file-only constructors.
func mustRelaxed(bytes, ways int) *RelaxedNC {
	n, err := NewRelaxed(bytes, ways)
	if err != nil {
		panic(err)
	}
	return n
}

func mustInclusive(bytes, ways int) *InclusiveNC {
	n, err := NewInclusive(bytes, ways)
	if err != nil {
		panic(err)
	}
	return n
}

func TestVictimBasics(t *testing.T) {
	v := newSmallVictim(cache.ByBlock, false)
	if v.Tech() != stats.NCTechSRAM {
		t.Fatal("victim NC tech")
	}
	// Victims are accepted; fills are not allocated.
	if evs := v.OnFill(3, false); evs != nil {
		t.Fatal("victim NC allocated on fill")
	}
	if v.Contains(3) {
		t.Fatal("OnFill allocated")
	}
	r := v.AcceptVictim(3, false)
	if !r.Accepted || !v.Contains(3) {
		t.Fatal("victim not accepted")
	}
	// A probe hit frees the frame (exclusive two-level caching).
	pr := v.Probe(3, false)
	if !pr.Hit || pr.Dirty {
		t.Fatalf("probe = %+v", pr)
	}
	if v.Contains(3) {
		t.Fatal("probe hit did not free the victim frame")
	}
	// Dirty victims report dirty on probe.
	v.AcceptVictim(5, true)
	if pr := v.Probe(5, true); !pr.Hit || !pr.Dirty {
		t.Fatalf("dirty probe = %+v", pr)
	}
}

func TestVictimEvictionChain(t *testing.T) {
	v := newSmallVictim(cache.ByBlock, false)
	blocks := conflicting(0, 4, 5) // 5 conflicting victims into 4 ways
	for i, b := range blocks[:4] {
		r := v.AcceptVictim(b, i == 0) // first is dirty
		if len(r.Evictions) != 0 {
			t.Fatalf("premature eviction at %d", i)
		}
	}
	r := v.AcceptVictim(blocks[4], false)
	if len(r.Evictions) != 1 {
		t.Fatalf("expected 1 eviction, got %d", len(r.Evictions))
	}
	ev := r.Evictions[0]
	if ev.Block != blocks[0] || !ev.Dirty {
		t.Fatalf("eviction = %+v, want dirty block %d", ev, blocks[0])
	}
	if ev.ForceL1Invalidate {
		t.Fatal("victim cache must never force L1 invalidations (no inclusion)")
	}
}

func TestVictimInvalidateAndEvictPage(t *testing.T) {
	v := newSmallVictim(cache.ByPage, false)
	p := memsys.Page(2)
	first := memsys.FirstBlock(p)
	v.AcceptVictim(first, true)
	v.AcceptVictim(first+1, false)
	if !v.Invalidate(first) {
		t.Fatal("Invalidate lost dirty status")
	}
	v.AcceptVictim(first+2, true)
	dirty := v.EvictPage(p)
	if len(dirty) != 1 || dirty[0] != first+2 {
		t.Fatalf("EvictPage dirty = %v", dirty)
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d after page flush", v.Count())
	}
}

func TestVictimPageIndexingGroupsPages(t *testing.T) {
	v := newSmallVictim(cache.ByPage, true)
	p := memsys.Page(1)
	first := memsys.FirstBlock(p)
	// Five blocks of one page go to one 4-way set: the fifth evicts.
	var last VictimResult
	for i := 0; i < 5; i++ {
		last = v.AcceptVictim(first+memsys.Block(i), false)
	}
	if len(last.Evictions) != 1 {
		t.Fatal("page-indexed set did not overflow at 5 blocks")
	}
	if last.SetCounter != 5 {
		t.Fatalf("SetCounter = %d, want 5", last.SetCounter)
	}
	pp, ok := v.PredominantPage(last.Set)
	if !ok || pp != p {
		t.Fatalf("PredominantPage = (%d,%v), want (%d,true)", pp, ok, p)
	}
	v.ResetSetCounter(last.Set)
	if v.SetCounter(last.Set) != 0 {
		t.Fatal("ResetSetCounter did not reset")
	}
}

func TestVictimPredominantPageMajority(t *testing.T) {
	v := newSmallVictim(cache.ByPage, true)
	// Find two pages that collide in the 4-set page-indexed cache
	// (set placement follows pseudo-physical frame color).
	pa := memsys.Page(1)
	setA := v.AcceptVictim(memsys.FirstBlock(pa), false).Set
	var pb memsys.Page
	for q := memsys.Page(2); q < 64; q++ {
		r := v.AcceptVictim(memsys.FirstBlock(q)+1, false)
		if r.Set == setA {
			pb = q
			break
		}
		v.Invalidate(memsys.FirstBlock(q) + 1) // no collision: clean up
	}
	if pb == 0 {
		t.Fatal("no colliding page found")
	}
	v.AcceptVictim(memsys.FirstBlock(pb)+2, false)
	// pb holds two frames of the set versus pa's one.
	pp, ok := v.PredominantPage(setA)
	if !ok || pp != pb {
		t.Fatalf("PredominantPage = (%d,%v), want (%d,true)", pp, ok, pb)
	}
	// An empty set has no predominant page.
	for s := 0; s < 4; s++ {
		if v.SetCounter(s) > 0 {
			continue
		}
		if _, ok := v.PredominantPage(s); ok && s != setA {
			t.Fatalf("set %d: untouched set returned a predominant page", s)
		}
	}
	if v.SetCounter(-1) != 0 || v.SetCounter(99) != 0 {
		t.Fatal("out-of-range SetCounter")
	}
}

func TestRelaxedAllocatesOnFill(t *testing.T) {
	n := mustRelaxed(16*memsys.BlockBytes, 4)
	if n.Tech() != stats.NCTechSRAM {
		t.Fatal("tech")
	}
	n.OnFill(3, false)
	if !n.Contains(3) {
		t.Fatal("relaxed NC did not allocate on fill")
	}
	// Read probe keeps the frame.
	if pr := n.Probe(3, false); !pr.Hit {
		t.Fatal("probe miss")
	}
	if !n.Contains(3) {
		t.Fatal("read probe freed the frame (victim semantics in relaxed NC)")
	}
	// Clean victims of blocks the NC lost are declined.
	if r := n.AcceptVictim(99, false); r.Accepted {
		t.Fatal("relaxed NC accepted an unallocated clean victim")
	}
	// Dirty victims are always captured.
	if r := n.AcceptVictim(99, true); !r.Accepted || !n.Contains(99) {
		t.Fatal("relaxed NC dropped a dirty write-back")
	}
}

func TestRelaxedCleanEvictionLeavesL1Alone(t *testing.T) {
	n := mustRelaxed(16*memsys.BlockBytes, 4)
	blocks := conflicting(0, 4, 5)
	for _, b := range blocks[:4] {
		n.OnFill(b, false)
	}
	evs := n.OnFill(blocks[4], false) // evicts a clean frame
	if len(evs) != 0 {
		t.Fatalf("clean eviction produced actions %+v (inclusion is relaxed for clean blocks)", evs)
	}
}

func TestRelaxedDirtyInclusion(t *testing.T) {
	n := mustRelaxed(16*memsys.BlockBytes, 4)
	blocks := conflicting(0, 4, 5)
	n.OnFill(blocks[0], false)
	n.Probe(blocks[0], true) // write: frame becomes the dirty anchor
	for _, b := range blocks[1:4] {
		n.OnFill(b, false)
	}
	evs := n.OnFill(blocks[4], false)
	if len(evs) != 1 {
		t.Fatalf("dirty eviction missing: %+v", evs)
	}
	if !evs[0].Dirty || !evs[0].ForceL1Invalidate || evs[0].Block != blocks[0] {
		t.Fatalf("dirty inclusion eviction = %+v", evs[0])
	}
}

func TestInclusiveForcesL1OnEveryEviction(t *testing.T) {
	n := mustInclusive(16*memsys.BlockBytes, 4)
	if n.Tech() != stats.NCTechDRAM {
		t.Fatal("NCD must be DRAM")
	}
	blocks := conflicting(0, 4, 5)
	for _, b := range blocks[:4] {
		n.OnFill(b, false)
	}
	evs := n.OnFill(blocks[4], false)
	if len(evs) != 1 || !evs[0].ForceL1Invalidate {
		t.Fatalf("full inclusion not enforced: %+v", evs)
	}
	if evs[0].Dirty {
		t.Fatal("clean frame reported dirty")
	}
	// Dirty anchor path.
	n.Probe(blocks[4], true)
	evs = n.OnFill(blocks[1], false)
	_ = evs
	if r := n.AcceptVictim(blocks[4], true); !r.Accepted {
		t.Fatal("write-back refused")
	}
}

func TestRelaxedAndInclusivePageFlush(t *testing.T) {
	for _, n := range []NC{mustRelaxed(16*memsys.BlockBytes, 4), mustInclusive(16*memsys.BlockBytes, 4)} {
		p := memsys.Page(0)
		first := memsys.FirstBlock(p)
		n.OnFill(first, false)
		n.AcceptVictim(first+1, true)
		dirty := n.EvictPage(p)
		if len(dirty) != 1 || dirty[0] != first+1 {
			t.Fatalf("%T: EvictPage dirty = %v", n, dirty)
		}
		if n.Contains(first) {
			t.Fatalf("%T: page flush left blocks", n)
		}
	}
}

func TestInfiniteNCAbsorbsEverything(t *testing.T) {
	n := NewInfinite(stats.NCTechDRAM)
	if n.Tech() != stats.NCTechDRAM {
		t.Fatal("tech")
	}
	for i := memsys.Block(0); i < 10000; i++ {
		n.OnFill(i, false)
	}
	if n.Count() != 10000 {
		t.Fatalf("Count = %d", n.Count())
	}
	for i := memsys.Block(0); i < 10000; i++ {
		if !n.Probe(i, false).Hit {
			t.Fatalf("infinite NC missed block %d", i)
		}
	}
	// Dirty victims are written through: the NC keeps a clean copy and
	// tells the cluster to send the data home.
	r := n.AcceptVictim(5, true)
	if !r.Accepted || !r.WriteThrough {
		t.Fatalf("dirty victim result = %+v, want write-through accept", r)
	}
	if pr := n.Probe(5, false); !pr.Hit || pr.Dirty {
		t.Fatalf("probe = %+v, want clean hit", pr)
	}
	if r := n.AcceptVictim(6, false); r.WriteThrough {
		t.Fatal("clean victim marked write-through")
	}
	// A write fill is the dirty anchor until the L1 copy comes back.
	n.OnFill(7, true)
	if pr := n.Probe(7, false); !pr.Dirty {
		t.Fatal("write fill not recorded dirty")
	}
	if !n.Invalidate(7) {
		t.Fatal("Invalidate lost dirty status")
	}
	p := memsys.Page(0)
	n.OnFill(memsys.FirstBlock(p)+2, true)
	if dirty := n.EvictPage(p); len(dirty) != 1 {
		t.Fatalf("EvictPage dirty = %v", dirty)
	}
}

// Interface conformance.
var (
	_ NC           = NoNC{}
	_ NC           = (*VictimNC)(nil)
	_ NC           = (*RelaxedNC)(nil)
	_ NC           = (*InclusiveNC)(nil)
	_ NC           = (*InfiniteNC)(nil)
	_ SetCounterNC = (*VictimNC)(nil)
)

func TestWriteFillCreatesDirtyAnchor(t *testing.T) {
	// A write fill allocates the frame as the dirty-inclusion anchor:
	// evicting it must extract the block from the processor caches and
	// write it back (paper §6.1.2's Radix effect).
	for _, n := range []NC{mustRelaxed(16*memsys.BlockBytes, 4), mustInclusive(16*memsys.BlockBytes, 4)} {
		blocks := conflicting(0, 4, 5)
		n.OnFill(blocks[0], true) // write fill
		for _, b := range blocks[1:4] {
			n.OnFill(b, false)
		}
		evs := n.OnFill(blocks[4], false)
		if len(evs) != 1 || !evs[0].Dirty || !evs[0].ForceL1Invalidate {
			t.Fatalf("%T: write-fill anchor eviction = %+v", n, evs)
		}
	}
	// The infinite NC records write fills as dirty without evicting.
	inf := NewInfinite(stats.NCTechSRAM)
	inf.OnFill(7, true)
	if pr := inf.Probe(7, false); !pr.Hit || !pr.Dirty {
		t.Fatalf("infinite write fill probe = %+v", pr)
	}
}

func TestDowngradeAcrossOrganizations(t *testing.T) {
	// Every NC must turn a dirty frame clean on a read intervention and
	// report whether it had one.
	ncs := map[string]NC{
		"victim":    newSmallVictim(cache.ByBlock, false),
		"relaxed":   mustRelaxed(16*memsys.BlockBytes, 4),
		"inclusive": mustInclusive(16*memsys.BlockBytes, 4),
		"infinite":  NewInfinite(stats.NCTechSRAM),
	}
	for name, n := range ncs {
		if n.Downgrade(1) {
			t.Errorf("%s: downgraded a missing block", name)
		}
		n.AcceptVictim(1, true)
		if name == "infinite" {
			// Write-through: the infinite NC never holds dirty victims;
			// use a write fill as its dirty anchor instead.
			n.OnFill(1, true)
		}
		if !n.Downgrade(1) {
			t.Errorf("%s: dirty frame not downgraded", name)
			continue
		}
		if n.Downgrade(1) {
			t.Errorf("%s: clean frame downgraded again", name)
		}
		if pr := n.Probe(1, false); pr.Hit && pr.Dirty {
			t.Errorf("%s: frame still dirty after downgrade", name)
		}
	}
	if (NoNC{}).Downgrade(1) {
		t.Error("NoNC downgraded")
	}
}

func TestRelaxedAndInclusiveInvalidateCount(t *testing.T) {
	rel := mustRelaxed(16*memsys.BlockBytes, 4)
	rel.OnFill(3, false)
	rel.AcceptVictim(7, true)
	if rel.Count() != 2 {
		t.Fatalf("relaxed Count = %d", rel.Count())
	}
	if rel.Invalidate(3) {
		t.Fatal("clean invalidate reported dirty")
	}
	if !rel.Invalidate(7) {
		t.Fatal("dirty invalidate lost status")
	}
	inc := mustInclusive(16*memsys.BlockBytes, 4)
	inc.OnFill(3, true)
	if inc.Count() != 1 {
		t.Fatalf("inclusive Count = %d", inc.Count())
	}
	if !inc.Invalidate(3) {
		t.Fatal("inclusive dirty invalidate lost status")
	}
}

func TestVictimDecrementWithoutCounters(t *testing.T) {
	v := newSmallVictim(cache.ByBlock, false) // counters disabled
	v.DecrementSetCounterFor(3)               // must not panic
	vc := newSmallVictim(cache.ByPage, true)
	vc.AcceptVictim(memsys.FirstBlock(1), false)
	set := vc.AcceptVictim(memsys.FirstBlock(1)+1, false).Set
	vc.DecrementSetCounterFor(memsys.FirstBlock(1))
	if vc.SetCounter(set) != 1 {
		t.Fatalf("SetCounter = %d, want 1", vc.SetCounter(set))
	}
	vc.DecrementSetCounterFor(memsys.FirstBlock(1))
	vc.DecrementSetCounterFor(memsys.FirstBlock(1)) // at zero: no-op
	if vc.SetCounter(set) != 0 {
		t.Fatal("counter went negative")
	}
}

func TestInfiniteContains(t *testing.T) {
	n := NewInfinite(stats.NCTechSRAM)
	if n.Contains(9) {
		t.Fatal("phantom block")
	}
	n.OnFill(9, false)
	if !n.Contains(9) {
		t.Fatal("filled block missing")
	}
}

// TestVictimPredominantPageTieBreak pins the tie-break rule the scratch
// rewrite must preserve: with an even split, the first page to reach the
// winning count in line order wins.
func TestVictimPredominantPageTieBreak(t *testing.T) {
	v := newSmallVictim(cache.ByPage, true)
	pa := memsys.Page(1)
	setA := v.AcceptVictim(memsys.FirstBlock(pa), false).Set
	var pb memsys.Page
	for q := memsys.Page(2); q < 64; q++ {
		r := v.AcceptVictim(memsys.FirstBlock(q)+1, false)
		if r.Set == setA {
			pb = q
			break
		}
		v.Invalidate(memsys.FirstBlock(q) + 1)
	}
	if pb == 0 {
		t.Fatal("no colliding page found")
	}
	// Two frames each: pa occupies ways 0 and 2, pb ways 1 and 3.
	v.AcceptVictim(memsys.FirstBlock(pa)+2, false)
	v.AcceptVictim(memsys.FirstBlock(pb)+3, false)
	pp, ok := v.PredominantPage(setA)
	if !ok || pp != pa {
		t.Fatalf("PredominantPage tie = (%d,%v), want first-in-line-order (%d,true)", pp, ok, pa)
	}
}

// BenchmarkPredominantPage measures the per-call cost of the relocation
// candidate scan; the scratch-slice rewrite must report 0 allocs/op
// (the original built a map per call).
func BenchmarkPredominantPage(b *testing.B) {
	v := newSmallVictim(cache.ByPage, true)
	pa, pb := memsys.Page(1), memsys.Page(5)
	set := v.AcceptVictim(memsys.FirstBlock(pa), false).Set
	for i := 1; i < 4; i++ {
		p := pa
		if i%2 == 1 {
			p = pb
		}
		v.AcceptVictim(memsys.FirstBlock(p)+memsys.Block(i), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := v.PredominantPage(set); !ok {
			b.Fatal("empty set")
		}
	}
}
