package core

import (
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// VictimNC is the paper's network victim cache (§3.1, §3.4): frames are
// allocated only when a processor cache victimizes a remote block, never
// on the fill path, so the NC holds exactly the lines with the best
// chance of incurring a later capacity miss. Inclusion is never
// maintained, so NC conflicts can never degrade the processor caches and
// the system can never perform worse than one without an NC.
//
// With page-address indexing (vp) every set doubles as intermediate
// storage for the blocks of a remote page, and an optional per-set
// victimization counter turns the cache into the page-relocation engine
// of the vxp system.
type VictimNC struct {
	tags     *cache.SetAssoc
	counters []uint32 // per-set victimization counters (nil unless vxp)
	evBuf    []Eviction

	// Scratch for PredominantPage: a set holds at most Ways lines, so
	// per-page counting is a short linear scan over parallel slices —
	// no per-call map (or anything else) is allocated on the
	// relocation-candidate path.
	lineBuf  []cache.Line
	pageBuf  []memsys.Page
	countBuf []int
}

// VictimConfig sizes a VictimNC.
type VictimConfig struct {
	Bytes    int
	Ways     int
	Indexing cache.Indexing
	// SetCounters enables the per-set victimization counters of vxp.
	SetCounters bool
}

// NewVictim builds a network victim cache.
func NewVictim(cfg VictimConfig) (*VictimNC, error) {
	tags, err := cache.New(cache.Config{Bytes: cfg.Bytes, Ways: cfg.Ways, Indexing: cfg.Indexing})
	if err != nil {
		return nil, fmt.Errorf("core: victim NC: %w", err)
	}
	v := &VictimNC{tags: tags}
	if cfg.SetCounters {
		v.counters = make([]uint32, v.tags.Sets())
	}
	return v, nil
}

// Tech returns NCTechSRAM: the victim cache is built in the processor-
// cache technology and snoops at bus speed.
func (v *VictimNC) Tech() stats.NCTech { return stats.NCTechSRAM }

// Probe looks up b; on a hit the frame is freed — the block moves to the
// requesting processor cache (exclusive two-level caching, paper §7).
func (v *VictimNC) Probe(b memsys.Block, write bool) ProbeResult {
	ln := v.tags.Lookup(b)
	if ln == nil {
		return ProbeResult{}
	}
	dirty := ln.State.Dirty()
	v.tags.Evict(b)
	return ProbeResult{Hit: true, Dirty: dirty, Freed: true}
}

// OnFill does nothing: the victim cache never allocates on the fill path.
func (v *VictimNC) OnFill(memsys.Block, bool) []Eviction { return nil }

// AcceptVictim places the victimized block in the cache, bumping the
// set's victimization counter when vxp counters are enabled.
func (v *VictimNC) AcceptVictim(b memsys.Block, dirty bool) VictimResult {
	st := cache.Shared
	if dirty {
		st = cache.Modified
	}
	set := v.tags.SetOf(b)
	victim := v.tags.Fill(b, st)
	res := VictimResult{Accepted: true, Set: set}
	v.evBuf = v.evBuf[:0]
	if victim.State.Valid() {
		v.evBuf = append(v.evBuf, Eviction{Block: victim.Block, Dirty: victim.State.Dirty()})
		res.Evictions = v.evBuf
	}
	if v.counters != nil {
		v.counters[set]++
		res.SetCounter = v.counters[set]
	}
	return res
}

// Invalidate removes b, reporting whether the frame was dirty.
func (v *VictimNC) Invalidate(b memsys.Block) bool {
	return v.tags.Evict(b).State.Dirty()
}

// EvictPage flushes page p, returning its dirty blocks.
func (v *VictimNC) EvictPage(p memsys.Page) []memsys.Block {
	var dirty []memsys.Block
	for _, ln := range v.tags.EvictPage(p) {
		if ln.State.Dirty() {
			dirty = append(dirty, ln.Block)
		}
	}
	return dirty
}

// Contains reports whether b is present.
func (v *VictimNC) Contains(b memsys.Block) bool { return v.tags.Lookup(b) != nil }

// ContainsDirty reports whether b is present in a dirty frame.
func (v *VictimNC) ContainsDirty(b memsys.Block) bool {
	ln := v.tags.Lookup(b)
	return ln != nil && ln.State.Dirty()
}

// Count returns the number of valid frames (testing).
func (v *VictimNC) Count() int { return v.tags.Count() }

// Occupancy reports used and total frames.
func (v *VictimNC) Occupancy() (used, frames int) {
	return v.tags.Count(), v.tags.Sets() * v.tags.Ways()
}

// PredominantPage returns the page owning the most frames of set s: the
// implicit relocation candidate indicated by the set's address tags.
// Ties keep the first page to reach the winning count in line order,
// exactly as the original map-based count did (strictly-greater
// comparison in a single pass).
func (v *VictimNC) PredominantPage(s int) (memsys.Page, bool) {
	v.lineBuf = v.tags.AppendSetLines(v.lineBuf[:0], s)
	lines := v.lineBuf
	if len(lines) == 0 {
		return 0, false
	}
	v.pageBuf = v.pageBuf[:0]
	v.countBuf = v.countBuf[:0]
	var best memsys.Page
	bestN := 0
	for _, ln := range lines {
		p := memsys.PageOfBlock(ln.Block)
		n := 1
		found := false
		for i, q := range v.pageBuf {
			if q == p {
				v.countBuf[i]++
				n = v.countBuf[i]
				found = true
				break
			}
		}
		if !found {
			v.pageBuf = append(v.pageBuf, p)
			v.countBuf = append(v.countBuf, 1)
		}
		if n > bestN {
			best, bestN = p, n
		}
	}
	return best, true
}

// ResetSetCounter zeroes set s's victimization counter.
func (v *VictimNC) ResetSetCounter(s int) {
	if v.counters != nil && s >= 0 && s < len(v.counters) {
		v.counters[s] = 0
	}
}

// SetCounter returns set s's victimization counter.
func (v *VictimNC) SetCounter(s int) uint32 {
	if v.counters == nil || s < 0 || s >= len(v.counters) {
		return 0
	}
	return v.counters[s]
}

// Downgrade marks a dirty frame of b clean, reporting whether one existed.
func (v *VictimNC) Downgrade(b memsys.Block) bool {
	if ln := v.tags.Lookup(b); ln != nil && ln.State.Dirty() {
		ln.State = cache.Shared
		return true
	}
	return false
}

// DecrementSetCounterFor undoes one victimization count of block b's set
// (the §3.4 counter-decrement refinement): a late invalidation means the
// next miss to b will be coherence, not capacity, so the count is
// corrected.
func (v *VictimNC) DecrementSetCounterFor(b memsys.Block) {
	if v.counters == nil {
		return
	}
	if s := v.tags.SetOf(b); v.counters[s] > 0 {
		v.counters[s]--
	}
}
