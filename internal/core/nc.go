// Package core implements the paper's primary contribution: the network
// cache (NC) organizations for clustered DSMs, in particular the network
// *victim* cache for remote data (§3.1-3.4) and its integration of the
// page-relocation counters (vxp).
//
// Five organizations are provided behind a single interface:
//
//	NoNC         — the base system (and the SGI-Origin philosophy)
//	VictimNC     — allocate only on victimization; block- or page-indexed
//	               (vb / vp); optional per-set victimization counters (vxp)
//	RelaxedNC    — allocate on miss, inclusion relaxed for clean blocks,
//	               kept for dirty blocks (nc; Fletcher et al. / R-NUMA)
//	InclusiveNC  — large DRAM NC with full inclusion (NCD; NUMA-Q style)
//	InfiniteNC   — unbounded NC in SRAM or DRAM flavour (NCS and the
//	               normalization baseline of Figures 9-11)
//
// The cluster (package cluster) drives the interface; the NC never talks
// to the directory itself, which is what makes the vxp counters scalable
// (paper §3.4).
package core

import (
	"dsmnc/memsys"
	"dsmnc/stats"
)

// Eviction describes a frame the NC recycled and what the cluster must do
// about it.
type Eviction struct {
	Block memsys.Block
	// Dirty means the NC frame held the only up-to-date copy in the
	// cluster; the cluster must write it to the page cache or home.
	Dirty bool
	// ForceL1Invalidate means inclusion requires the processor caches
	// to drop their copies of the block (full inclusion, or dirty
	// inclusion in the relaxed NC).
	ForceL1Invalidate bool
}

// VictimResult reports the outcome of offering a victim to the NC.
type VictimResult struct {
	Accepted  bool
	Evictions []Eviction // frames recycled to make room (reused buffer)
	// Set is the NC set the victim was placed in (-1 if not accepted).
	Set int
	// SetCounter is the post-increment per-set victimization counter
	// (vxp, paper §3.4); zero when counters are disabled.
	SetCounter uint32
	// WriteThrough means the NC kept only a clean copy of a dirty
	// victim: the cluster must still send the dirty data home. The
	// infinite reference NC behaves this way so that its unbounded
	// capacity does not turn it into a machine-wide dirty sink.
	WriteThrough bool
}

// ProbeResult reports the outcome of a bus snoop on the NC.
type ProbeResult struct {
	Hit   bool
	Dirty bool // the NC copy was the cluster's only up-to-date copy
	// Freed means the frame was released by the hit (victim caches move
	// the block to the requesting cache), so the requester must assume
	// mastership of the block.
	Freed bool
}

// NC is a network cache as seen by the cluster bus.
type NC interface {
	// Tech reports the latency class of the organization.
	Tech() stats.NCTech

	// Probe snoops the NC for a bus read (write=false) or
	// read-exclusive (write=true) of remote block b. Victim caches
	// free the frame on any hit (the block moves to the requesting
	// cache); allocate-on-miss caches free it only on writes.
	Probe(b memsys.Block, write bool) ProbeResult

	// OnFill informs the NC that a remote fill of b is entering a
	// processor cache. Allocate-on-miss organizations allocate here;
	// write fills allocate the frame as the dirty-inclusion anchor,
	// which is what makes a small inclusive NC "a limiting factor for
	// the amount of dirty remote data the cluster can hold" (§6.1.2).
	OnFill(b memsys.Block, write bool) []Eviction

	// AcceptVictim offers the NC a block victimized by a processor
	// cache (an R-state replacement, an M write-back, or an M→S
	// downgrade capture).
	AcceptVictim(b memsys.Block, dirty bool) VictimResult

	// Invalidate removes b (system-level invalidation or page flush of
	// a single block). It reports whether the frame was dirty — the
	// data dies with the invalidation, as in any invalidation protocol.
	Invalidate(b memsys.Block) bool

	// Downgrade marks a dirty copy of b clean (remote read
	// intervention: the data was written back to home but the frame
	// keeps serving local reads). It reports whether a dirty copy was
	// found.
	Downgrade(b memsys.Block) bool

	// EvictPage removes every block of p (page relocation re-mapping),
	// returning the dirty blocks that must be flushed.
	EvictPage(p memsys.Page) []memsys.Block

	// Contains reports whether b is present (testing and stats).
	Contains(b memsys.Block) bool

	// ContainsDirty reports whether b is present AND the frame holds the
	// cluster's up-to-date data. The coherence invariant checker uses it
	// to verify dirty inclusion and single-dirty-owner machine-wide.
	ContainsDirty(b memsys.Block) bool

	// Occupancy reports how many frames hold a block and how many exist
	// in total, for telemetry. frames is 0 for unbounded organizations
	// (the infinite reference NCs) and organizations with no storage.
	Occupancy() (used, frames int)
}

// SetCounterNC is implemented by NCs that integrate the page-relocation
// counters into their sets (the vxp organization).
type SetCounterNC interface {
	NC
	// PredominantPage returns the page with the most frames in set s —
	// the implicit relocation candidate (paper §3.4).
	PredominantPage(s int) (memsys.Page, bool)
	// ResetSetCounter zeroes the victimization counter of set s after
	// a relocation has been triggered from it.
	ResetSetCounter(s int)
	// SetCounter returns the current counter of set s.
	SetCounter(s int) uint32
	// DecrementSetCounterFor applies the §3.4 correction: a late
	// invalidation of block b, no longer held by the cluster, undoes
	// the victimization count its earlier eviction contributed.
	DecrementSetCounterFor(b memsys.Block)
}

// NoNC is the base system: no network cache at all.
type NoNC struct{}

// Tech returns NCTechNone.
func (NoNC) Tech() stats.NCTech { return stats.NCTechNone }

// Probe always misses.
func (NoNC) Probe(memsys.Block, bool) ProbeResult { return ProbeResult{} }

// OnFill does nothing.
func (NoNC) OnFill(memsys.Block, bool) []Eviction { return nil }

// AcceptVictim declines every victim.
func (NoNC) AcceptVictim(memsys.Block, bool) VictimResult { return VictimResult{Set: -1} }

// Invalidate does nothing.
func (NoNC) Invalidate(memsys.Block) bool { return false }

// Downgrade does nothing.
func (NoNC) Downgrade(memsys.Block) bool { return false }

// EvictPage does nothing.
func (NoNC) EvictPage(memsys.Page) []memsys.Block { return nil }

// Contains is always false.
func (NoNC) Contains(memsys.Block) bool { return false }

// ContainsDirty is always false.
func (NoNC) ContainsDirty(memsys.Block) bool { return false }

// Occupancy reports no storage.
func (NoNC) Occupancy() (used, frames int) { return 0, 0 }
