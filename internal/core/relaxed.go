package core

import (
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// RelaxedNC is the nc organization of the paper: a small SRAM network
// cache that allocates a frame at the time of the cache miss (like a
// conventional next level) but relaxes inclusion for clean blocks —
// a clean NC victimization leaves the processor caches alone (Fletcher
// et al. [4], R-NUMA [3]). Inclusion is kept for dirty blocks: evicting
// a dirty frame extracts the block from the processor caches and writes
// it back, which is what makes the NC "a limiting factor for the amount
// of dirty remote data the cluster can hold" in Figure 4's Radix result.
type RelaxedNC struct {
	tags  *cache.SetAssoc
	evBuf []Eviction
}

// NewRelaxed builds an nc-style network cache.
func NewRelaxed(bytes, ways int) (*RelaxedNC, error) {
	tags, err := cache.New(cache.Config{Bytes: bytes, Ways: ways})
	if err != nil {
		return nil, fmt.Errorf("core: relaxed NC: %w", err)
	}
	return &RelaxedNC{tags: tags}, nil
}

// Tech returns NCTechSRAM.
func (n *RelaxedNC) Tech() stats.NCTech { return stats.NCTechSRAM }

// Probe snoops the NC. Read hits keep the frame (the NC is a copy-back
// level, not a victim cache); write hits mark the frame Modified so it
// anchors the dirty-inclusion property while a processor cache holds M.
func (n *RelaxedNC) Probe(b memsys.Block, write bool) ProbeResult {
	ln := n.tags.Lookup(b)
	if ln == nil {
		return ProbeResult{}
	}
	dirty := ln.State.Dirty()
	n.tags.Touch(b)
	if write {
		ln.State = cache.Modified
	}
	return ProbeResult{Hit: true, Dirty: dirty}
}

// OnFill allocates a frame for the incoming remote block; a write fill
// becomes the dirty-inclusion anchor. A recycled dirty frame carries the
// dirty-inclusion obligation: the cluster must extract the block from
// the processor caches and write it back. A recycled clean frame
// requires nothing (relaxed inclusion).
func (n *RelaxedNC) OnFill(b memsys.Block, write bool) []Eviction {
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	victim := n.tags.Fill(b, st)
	n.evBuf = n.evBuf[:0]
	if victim.State.Valid() && victim.State.Dirty() {
		n.evBuf = append(n.evBuf, Eviction{
			Block:             victim.Block,
			Dirty:             true,
			ForceL1Invalidate: true,
		})
		return n.evBuf
	}
	return nil
}

// AcceptVictim captures dirty write-backs (allocating if the clean frame
// was victimized earlier); clean victims are not allocated — this is not
// a victim cache — but a surviving frame keeps serving the block.
func (n *RelaxedNC) AcceptVictim(b memsys.Block, dirty bool) VictimResult {
	if dirty {
		victim := n.tags.Fill(b, cache.Modified)
		res := VictimResult{Accepted: true, Set: n.tags.SetOf(b)}
		n.evBuf = n.evBuf[:0]
		if victim.State.Valid() {
			n.evBuf = append(n.evBuf, Eviction{
				Block:             victim.Block,
				Dirty:             victim.State.Dirty(),
				ForceL1Invalidate: victim.State.Dirty(),
			})
			res.Evictions = n.evBuf
		}
		return res
	}
	if ln := n.tags.Lookup(b); ln != nil {
		n.tags.Touch(b)
		return VictimResult{Accepted: true, Set: n.tags.SetOf(b)}
	}
	return VictimResult{Set: -1}
}

// Invalidate removes b, reporting whether the frame was dirty.
func (n *RelaxedNC) Invalidate(b memsys.Block) bool {
	return n.tags.Evict(b).State.Dirty()
}

// EvictPage flushes page p, returning its dirty blocks.
func (n *RelaxedNC) EvictPage(p memsys.Page) []memsys.Block {
	var dirty []memsys.Block
	for _, ln := range n.tags.EvictPage(p) {
		if ln.State.Dirty() {
			dirty = append(dirty, ln.Block)
		}
	}
	return dirty
}

// Contains reports whether b is present.
func (n *RelaxedNC) Contains(b memsys.Block) bool { return n.tags.Lookup(b) != nil }

// ContainsDirty reports whether b is present in a dirty frame.
func (n *RelaxedNC) ContainsDirty(b memsys.Block) bool {
	ln := n.tags.Lookup(b)
	return ln != nil && ln.State.Dirty()
}

// Count returns the number of valid frames (testing).
func (n *RelaxedNC) Count() int { return n.tags.Count() }

// Occupancy reports used and total frames.
func (n *RelaxedNC) Occupancy() (used, frames int) {
	return n.tags.Count(), n.tags.Sets() * n.tags.Ways()
}

// Downgrade marks a dirty frame of b clean, reporting whether one existed.
func (n *RelaxedNC) Downgrade(b memsys.Block) bool {
	if ln := n.tags.Lookup(b); ln != nil && ln.State.Dirty() {
		ln.State = cache.Shared
		return true
	}
	return false
}
