package core

import (
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// InclusiveNC models the large DRAM network cache with full inclusion
// (NCD; Sequent NUMA-Q style, paper §3.1). Every remote block cached by a
// processor must have an NC frame, so every NC eviction force-invalidates
// the processor caches; and being DRAM, it adds a tag-check penalty to
// every cache miss to remote data (Table 1).
type InclusiveNC struct {
	tags  *cache.SetAssoc
	evBuf []Eviction
}

// NewInclusive builds an NCD-style network cache.
func NewInclusive(bytes, ways int) (*InclusiveNC, error) {
	tags, err := cache.New(cache.Config{Bytes: bytes, Ways: ways})
	if err != nil {
		return nil, fmt.Errorf("core: inclusive NC: %w", err)
	}
	return &InclusiveNC{tags: tags}, nil
}

// Tech returns NCTechDRAM.
func (n *InclusiveNC) Tech() stats.NCTech { return stats.NCTechDRAM }

// Probe snoops the NC; hits keep the frame (inclusion), write hits mark
// it Modified as the dirty-inclusion anchor.
func (n *InclusiveNC) Probe(b memsys.Block, write bool) ProbeResult {
	ln := n.tags.Lookup(b)
	if ln == nil {
		return ProbeResult{}
	}
	dirty := ln.State.Dirty()
	n.tags.Touch(b)
	if write {
		ln.State = cache.Modified
	}
	return ProbeResult{Hit: true, Dirty: dirty}
}

// OnFill allocates a frame for the incoming block (write fills as the
// dirty anchor); the recycled frame's block is force-invalidated in the
// processor caches (full inclusion).
func (n *InclusiveNC) OnFill(b memsys.Block, write bool) []Eviction {
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	victim := n.tags.Fill(b, st)
	n.evBuf = n.evBuf[:0]
	if victim.State.Valid() {
		n.evBuf = append(n.evBuf, Eviction{
			Block:             victim.Block,
			Dirty:             victim.State.Dirty(),
			ForceL1Invalidate: true,
		})
		return n.evBuf
	}
	return nil
}

// AcceptVictim records write-backs in the (inclusive) frame. Under full
// inclusion the frame normally exists; if it was lost it is re-allocated
// for dirty data so the write-back is not dropped.
func (n *InclusiveNC) AcceptVictim(b memsys.Block, dirty bool) VictimResult {
	if dirty {
		victim := n.tags.Fill(b, cache.Modified)
		res := VictimResult{Accepted: true, Set: n.tags.SetOf(b)}
		n.evBuf = n.evBuf[:0]
		if victim.State.Valid() {
			n.evBuf = append(n.evBuf, Eviction{
				Block:             victim.Block,
				Dirty:             victim.State.Dirty(),
				ForceL1Invalidate: true,
			})
			res.Evictions = n.evBuf
		}
		return res
	}
	if ln := n.tags.Lookup(b); ln != nil {
		n.tags.Touch(b)
		return VictimResult{Accepted: true, Set: n.tags.SetOf(b)}
	}
	return VictimResult{Set: -1}
}

// Invalidate removes b, reporting whether the frame was dirty.
func (n *InclusiveNC) Invalidate(b memsys.Block) bool {
	return n.tags.Evict(b).State.Dirty()
}

// EvictPage flushes page p, returning its dirty blocks.
func (n *InclusiveNC) EvictPage(p memsys.Page) []memsys.Block {
	var dirty []memsys.Block
	for _, ln := range n.tags.EvictPage(p) {
		if ln.State.Dirty() {
			dirty = append(dirty, ln.Block)
		}
	}
	return dirty
}

// Contains reports whether b is present.
func (n *InclusiveNC) Contains(b memsys.Block) bool { return n.tags.Lookup(b) != nil }

// ContainsDirty reports whether b is present in a dirty frame.
func (n *InclusiveNC) ContainsDirty(b memsys.Block) bool {
	ln := n.tags.Lookup(b)
	return ln != nil && ln.State.Dirty()
}

// Count returns the number of valid frames (testing).
func (n *InclusiveNC) Count() int { return n.tags.Count() }

// Occupancy reports used and total frames.
func (n *InclusiveNC) Occupancy() (used, frames int) {
	return n.tags.Count(), n.tags.Sets() * n.tags.Ways()
}

// Downgrade marks a dirty frame of b clean, reporting whether one existed.
func (n *InclusiveNC) Downgrade(b memsys.Block) bool {
	if ln := n.tags.Lookup(b); ln != nil && ln.State.Dirty() {
		ln.State = cache.Shared
		return true
	}
	return false
}
