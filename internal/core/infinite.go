package core

import (
	"dsmnc/internal/cache"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// InfiniteNC is the unbounded network cache used as a reference point:
// NCS (infinite, fast SRAM) and the infinite DRAM NC that Figures 9-11
// normalize against. With it the directory handles only necessary
// misses, and dirty victims are absorbed forever (no write-back traffic).
type InfiniteNC struct {
	tech  stats.NCTech
	lines *cache.Infinite
}

// NewInfinite builds an infinite NC of the given technology (NCTechSRAM
// or NCTechDRAM).
func NewInfinite(tech stats.NCTech) *InfiniteNC {
	return &InfiniteNC{tech: tech, lines: cache.NewInfinite()}
}

// Tech returns the configured technology.
func (n *InfiniteNC) Tech() stats.NCTech { return n.tech }

// Probe snoops the NC; the frame always survives (capacity is infinite),
// write hits become the Modified anchor.
func (n *InfiniteNC) Probe(b memsys.Block, write bool) ProbeResult {
	st, ok := n.lines.Lookup(b)
	if !ok {
		return ProbeResult{}
	}
	dirty := st.Dirty()
	if write {
		n.lines.Fill(b, cache.Modified)
	}
	return ProbeResult{Hit: true, Dirty: dirty}
}

// OnFill allocates the block; nothing is ever evicted.
func (n *InfiniteNC) OnFill(b memsys.Block, write bool) []Eviction {
	if write {
		n.lines.Fill(b, cache.Modified)
		return nil
	}
	if st, ok := n.lines.Lookup(b); !ok || !st.Dirty() {
		n.lines.Fill(b, cache.Shared)
	}
	return nil
}

// AcceptVictim absorbs every victim. Dirty victims are written through:
// the NC keeps a clean copy and the cluster sends the data home, so the
// reference system never hoards other clusters' dirty blocks (which
// would turn their owners' later local reads into three-hop coherence
// fetches and distort the normalization baseline).
func (n *InfiniteNC) AcceptVictim(b memsys.Block, dirty bool) VictimResult {
	n.lines.Fill(b, cache.Shared)
	return VictimResult{Accepted: true, Set: 0, WriteThrough: dirty}
}

// Invalidate removes b, reporting whether it was dirty.
func (n *InfiniteNC) Invalidate(b memsys.Block) bool {
	return n.lines.Evict(b).Dirty()
}

// EvictPage flushes page p, returning its dirty blocks.
func (n *InfiniteNC) EvictPage(p memsys.Page) []memsys.Block {
	var dirty []memsys.Block
	n.lines.EvictPage(p, func(b memsys.Block, st cache.State) {
		if st.Dirty() {
			dirty = append(dirty, b)
		}
	})
	return dirty
}

// Contains reports whether b is present.
func (n *InfiniteNC) Contains(b memsys.Block) bool {
	_, ok := n.lines.Lookup(b)
	return ok
}

// ContainsDirty reports whether b is present and dirty. The infinite NC
// writes dirty victims through, so this is normally false.
func (n *InfiniteNC) ContainsDirty(b memsys.Block) bool {
	st, ok := n.lines.Lookup(b)
	return ok && st.Dirty()
}

// Count returns the number of cached blocks (testing).
func (n *InfiniteNC) Count() int { return n.lines.Count() }

// Occupancy reports the cached-block count; frames is 0 because the
// cache is unbounded.
func (n *InfiniteNC) Occupancy() (used, frames int) { return n.lines.Count(), 0 }

// Downgrade marks a dirty frame of b clean, reporting whether one existed.
func (n *InfiniteNC) Downgrade(b memsys.Block) bool {
	if st, ok := n.lines.Lookup(b); ok && st.Dirty() {
		n.lines.Fill(b, cache.Shared)
		return true
	}
	return false
}
