// Package fsdir holds the directory-durability discipline shared by the
// crash-safe on-disk structures (the sweep journal, mid-cell
// checkpoints, the serve job ledger): creating or renaming a file is
// only durable once the parent directory's entry for it is synced too.
// Without it, a machine crash after fsync(file) can still lose the file
// itself — the data blocks are on disk but the name pointing at them is
// not.
package fsdir

import "os"

// Sync fsyncs the directory at path, making previously created or
// renamed entries inside it durable against a machine crash.
func Sync(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
