package directory

import (
	"fmt"

	"dsmnc/memsys"
	"dsmnc/stats"
)

// LimitedDirectory is a Dir_iB limited-pointer directory: each entry
// records at most Pointers sharer clusters; when the pointers overflow,
// a broadcast bit is set and subsequent invalidations go to every
// cluster (NUMA-Q-class machines avoid full maps the same way, via SCI
// lists).
//
// It exists to test the paper's §3.4 claim quantitatively: R-NUMA's
// directory-resident relocation counters need to know *which* cluster is
// missing, so under pointer overflow they stop counting (the hardware no
// longer sees the requester's presence), while vxp's victim-cache
// counters are untouched. Miss classification for the *measurement*
// model stays oracle-accurate (the simulator always knows the truth);
// only the hardware-visible behaviours — invalidation targets, counter
// increments — degrade.
type LimitedDirectory struct {
	clusters int
	pointers int
	blocks   map[memsys.Block]*lentry

	countersOn bool
	counters   map[uint64]uint32

	invalBuf  []int
	invalMsg  int64
	overflows int64
	noisy     int64 // counter bumps for misses that were not capacity
}

type lentry struct {
	ptrs  []int8 // sharer pointers, up to the directory's limit
	bcast bool   // pointers overflowed: invalidations broadcast
	dirty int8

	// Oracle state for measurement-model classification only (the
	// hardware does not have it).
	sticky  uint64
	touched uint64
}

// NewLimited builds a Dir_iB directory with the given pointer count.
func NewLimited(clusters, pointers int) (*LimitedDirectory, error) {
	if clusters <= 0 || clusters > 64 {
		return nil, fmt.Errorf("directory: unsupported cluster count %d", clusters)
	}
	if pointers <= 0 || pointers >= clusters {
		return nil, fmt.Errorf("directory: pointer count %d must be in [1, clusters)", pointers)
	}
	return &LimitedDirectory{
		clusters: clusters,
		pointers: pointers,
		blocks:   make(map[memsys.Block]*lentry),
	}, nil
}

// EnableCounters turns on the R-NUMA relocation counters (which will
// undercount under pointer overflow — the point of the experiment).
func (d *LimitedDirectory) EnableCounters() {
	d.countersOn = true
	if d.counters == nil {
		d.counters = make(map[uint64]uint32)
	}
}

func (d *LimitedDirectory) entryOf(b memsys.Block) *lentry {
	e := d.blocks[b]
	if e == nil {
		e = &lentry{dirty: NoOwner}
		d.blocks[b] = e
	}
	return e
}

func (e *lentry) hasPtr(c int) bool {
	for _, p := range e.ptrs {
		if int(p) == c {
			return true
		}
	}
	return false
}

// Access processes a fetch request (see Directory.Access). Classification
// uses the oracle sticky bits so the measured miss classes match the
// full-map runs; the hardware-visible counter increment requires the
// requester's pointer to still be present.
func (d *LimitedDirectory) Access(c int, b memsys.Block, write, countCapacity bool) AccessResult {
	e := d.entryOf(b)
	bit := uint64(1) << uint(c)

	var res AccessResult
	res.FlushOwner = NoOwner
	// Oracle classification: the *measurement* model always knows the
	// truth, so miss classes match the full-map runs.
	switch {
	case e.sticky&bit != 0:
		res.Class = stats.Capacity
	case e.touched&bit != 0:
		res.Class = stats.Coherence
	default:
		res.Class = stats.Cold
	}
	// Hardware counting: a precise pointer hit is a true capacity miss;
	// under broadcast the directory has lost per-cluster presence and
	// must count *every* miss (it cannot tell capacity from cold or
	// coherence) — R-NUMA's relocation evidence turns to noise, which is
	// exactly why the paper calls the scheme full-map-only (§3.4).
	if d.countersOn && countCapacity {
		if e.hasPtr(c) || e.bcast {
			k := counterKey(memsys.PageOfBlock(b), c)
			d.counters[k]++
			res.CapacityCount = d.counters[k]
			if res.Class != stats.Capacity {
				d.noisy++
			}
		}
	}

	if e.dirty != NoOwner && int(e.dirty) != c {
		res.FlushOwner = int(e.dirty)
		e.dirty = NoOwner
	}
	if write {
		d.invalBuf = d.invalBuf[:0]
		if e.bcast {
			// Broadcast: every other cluster gets an invalidation.
			for oc := 0; oc < d.clusters; oc++ {
				if oc != c {
					d.invalBuf = append(d.invalBuf, oc)
				}
			}
		} else {
			for _, p := range e.ptrs {
				if int(p) != c {
					d.invalBuf = append(d.invalBuf, int(p))
				}
			}
			// The oracle may know of sharers the pointers forgot; the
			// hardware cannot — but overflow always sets bcast before a
			// pointer is lost, so no stale copy survives.
		}
		res.Invalidate = d.invalBuf
		d.invalMsg += int64(len(d.invalBuf))
		e.ptrs = append(e.ptrs[:0], int8(c))
		e.bcast = false
		e.sticky = bit
		e.dirty = int8(c)
	} else {
		if !e.hasPtr(c) && !e.bcast {
			if len(e.ptrs) < d.pointers {
				e.ptrs = append(e.ptrs, int8(c))
			} else {
				e.bcast = true
				d.overflows++
			}
		}
		e.sticky |= bit
	}
	e.touched |= bit
	return res
}

// Upgrade grants write ownership (never counting capacity).
func (d *LimitedDirectory) Upgrade(c int, b memsys.Block) []int {
	res := d.Access(c, b, true, false)
	return res.Invalidate
}

// WriteBack records a dirty block arriving home; like R-NUMA, the
// presence record survives.
func (d *LimitedDirectory) WriteBack(c int, b memsys.Block) {
	if e := d.blocks[b]; e != nil && int(e.dirty) == c {
		e.dirty = NoOwner
	}
}

// DirtyOwner returns the dirty cluster or NoOwner.
func (d *LimitedDirectory) DirtyOwner(b memsys.Block) int {
	if e := d.blocks[b]; e != nil {
		return int(e.dirty)
	}
	return NoOwner
}

// IsExclusive reports whether c owns b.
func (d *LimitedDirectory) IsExclusive(c int, b memsys.Block) bool {
	return d.DirtyOwner(b) == c
}

// SoleSharer uses the hardware view: a single pointer and no broadcast.
func (d *LimitedDirectory) SoleSharer(c int, b memsys.Block) bool {
	e := d.blocks[b]
	if e == nil {
		return true
	}
	return !e.bcast && len(e.ptrs) == 1 && int(e.ptrs[0]) == c
}

// Counter returns the hardware relocation counter for (p, c).
func (d *LimitedDirectory) Counter(p memsys.Page, c int) uint32 {
	return d.counters[counterKey(p, c)]
}

// ResetCounter clears the counter for (p, c).
func (d *LimitedDirectory) ResetCounter(p memsys.Page, c int) {
	delete(d.counters, counterKey(p, c))
}

// DecrementCounter undoes one capacity count (§3.4 refinement).
func (d *LimitedDirectory) DecrementCounter(p memsys.Page, c int) {
	k := counterKey(p, c)
	switch v := d.counters[k]; {
	case v > 1:
		d.counters[k] = v - 1
	case v == 1:
		delete(d.counters, k)
	}
}

// Presence reports whether the hardware directory still sees cluster c as
// a possible sharer of b: either a precise pointer or broadcast mode.
// This is the conservative superset the invariant checker validates
// against actual cached copies.
func (d *LimitedDirectory) Presence(c int, b memsys.Block) bool {
	e := d.blocks[b]
	if e == nil {
		return false
	}
	return e.bcast || e.hasPtr(c)
}

// PointerCount returns how many sharer pointers entry b holds (0 for an
// unmaterialized entry).
func (d *LimitedDirectory) PointerCount(b memsys.Block) int {
	if e := d.blocks[b]; e != nil {
		return len(e.ptrs)
	}
	return 0
}

// Broadcast reports whether entry b has fallen back to broadcast mode.
func (d *LimitedDirectory) Broadcast(b memsys.Block) bool {
	e := d.blocks[b]
	return e != nil && e.bcast
}

// PointerLimit returns the configured maximum pointers per entry.
func (d *LimitedDirectory) PointerLimit() int { return d.pointers }

// InvalMessages returns cumulative invalidation messages (broadcasts
// inflate this).
func (d *LimitedDirectory) InvalMessages() int64 { return d.invalMsg }

// Overflows returns how many entries fell back to broadcast mode.
func (d *LimitedDirectory) Overflows() int64 { return d.overflows }

// NoisyCounts returns counter bumps for misses that were not capacity —
// the relocation-evidence noise broadcast mode introduces.
func (d *LimitedDirectory) NoisyCounts() int64 { return d.noisy }
