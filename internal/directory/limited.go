package directory

import (
	"fmt"
	"math/bits"

	"dsmnc/internal/flatmap"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// LimitedDirectory is a Dir_iB limited-pointer directory: each entry
// records at most Pointers sharer clusters; when the pointers overflow,
// a broadcast bit is set and subsequent invalidations go to every
// cluster (NUMA-Q-class machines avoid full maps the same way, via SCI
// lists).
//
// It exists to test the paper's §3.4 claim quantitatively: R-NUMA's
// directory-resident relocation counters need to know *which* cluster is
// missing, so under pointer overflow they stop counting (the hardware no
// longer sees the requester's presence), while vxp's victim-cache
// counters are untouched. Miss classification for the *measurement*
// model stays oracle-accurate (the simulator always knows the truth);
// only the hardware-visible behaviours — invalidation targets, counter
// increments — degrade.
type LimitedDirectory struct {
	clusters int
	pointers int
	blocks   flatmap.Map[lentry]

	countersOn bool
	counters   flatmap.Counter

	invalBuf  []int
	invalMsg  int64
	overflows int64
	noisy     int64 // counter bumps for misses that were not capacity
}

type lentry struct {
	// ptrMask holds the hardware sharer pointers as a cluster bitset
	// (popcount bounded by the directory's pointer limit). A bitset
	// loses the pointers' arrival order, so invalidations and snapshot
	// bytes enumerate sharers in ascending cluster order — the same
	// order the full-map directory uses.
	ptrMask uint64
	bcast   bool // pointers overflowed: invalidations broadcast
	dirty   int8

	// Oracle state for measurement-model classification only (the
	// hardware does not have it).
	sticky  uint64
	touched uint64
}

// NewLimited builds a Dir_iB directory with the given pointer count.
func NewLimited(clusters, pointers int) (*LimitedDirectory, error) {
	if clusters <= 0 || clusters > 64 {
		return nil, fmt.Errorf("directory: unsupported cluster count %d", clusters)
	}
	if pointers <= 0 || pointers >= clusters {
		return nil, fmt.Errorf("directory: pointer count %d must be in [1, clusters)", pointers)
	}
	return &LimitedDirectory{
		clusters: clusters,
		pointers: pointers,
	}, nil
}

// EnableCounters turns on the R-NUMA relocation counters (which will
// undercount under pointer overflow — the point of the experiment).
func (d *LimitedDirectory) EnableCounters() {
	d.countersOn = true
}

func (d *LimitedDirectory) entryOf(b memsys.Block) *lentry {
	e, created := d.blocks.Put(uint64(b))
	if created {
		e.dirty = NoOwner
	}
	return e
}

func (e *lentry) hasPtr(c int) bool {
	return e.ptrMask&(1<<uint(c)) != 0
}

func (e *lentry) ptrCount() int {
	return bits.OnesCount64(e.ptrMask)
}

// Access processes a fetch request (see Directory.Access). Classification
// uses the oracle sticky bits so the measured miss classes match the
// full-map runs; the hardware-visible counter increment requires the
// requester's pointer to still be present.
func (d *LimitedDirectory) Access(c int, b memsys.Block, write, countCapacity bool) AccessResult {
	e := d.entryOf(b)
	bit := uint64(1) << uint(c)

	var res AccessResult
	res.FlushOwner = NoOwner
	// Oracle classification: the *measurement* model always knows the
	// truth, so miss classes match the full-map runs.
	switch {
	case e.sticky&bit != 0:
		res.Class = stats.Capacity
	case e.touched&bit != 0:
		res.Class = stats.Coherence
	default:
		res.Class = stats.Cold
	}
	// Hardware counting: a precise pointer hit is a true capacity miss;
	// under broadcast the directory has lost per-cluster presence and
	// must count *every* miss (it cannot tell capacity from cold or
	// coherence) — R-NUMA's relocation evidence turns to noise, which is
	// exactly why the paper calls the scheme full-map-only (§3.4).
	if d.countersOn && countCapacity {
		if e.hasPtr(c) || e.bcast {
			res.CapacityCount = d.counters.Incr(counterKey(memsys.PageOfBlock(b), c))
			if res.Class != stats.Capacity {
				d.noisy++
			}
		}
	}

	if e.dirty != NoOwner && int(e.dirty) != c {
		res.FlushOwner = int(e.dirty)
		e.dirty = NoOwner
	}
	if write {
		d.invalBuf = d.invalBuf[:0]
		if e.bcast {
			// Broadcast: every other cluster gets an invalidation.
			for oc := 0; oc < d.clusters; oc++ {
				if oc != c {
					d.invalBuf = append(d.invalBuf, oc)
				}
			}
		} else {
			for others := e.ptrMask &^ bit; others != 0; others &= others - 1 {
				d.invalBuf = append(d.invalBuf, bits.TrailingZeros64(others))
			}
			// The oracle may know of sharers the pointers forgot; the
			// hardware cannot — but overflow always sets bcast before a
			// pointer is lost, so no stale copy survives.
		}
		res.Invalidate = d.invalBuf
		d.invalMsg += int64(len(d.invalBuf))
		e.ptrMask = bit
		e.bcast = false
		e.sticky = bit
		e.dirty = int8(c)
	} else {
		if !e.hasPtr(c) && !e.bcast {
			if e.ptrCount() < d.pointers {
				e.ptrMask |= bit
			} else {
				e.bcast = true
				d.overflows++
			}
		}
		e.sticky |= bit
	}
	e.touched |= bit
	return res
}

// Upgrade grants write ownership (never counting capacity).
func (d *LimitedDirectory) Upgrade(c int, b memsys.Block) []int {
	res := d.Access(c, b, true, false)
	return res.Invalidate
}

// WriteBack records a dirty block arriving home; like R-NUMA, the
// presence record survives.
func (d *LimitedDirectory) WriteBack(c int, b memsys.Block) {
	if e := d.blocks.Get(uint64(b)); e != nil && int(e.dirty) == c {
		e.dirty = NoOwner
	}
}

// DirtyOwner returns the dirty cluster or NoOwner.
func (d *LimitedDirectory) DirtyOwner(b memsys.Block) int {
	if e := d.blocks.Get(uint64(b)); e != nil {
		return int(e.dirty)
	}
	return NoOwner
}

// IsExclusive reports whether c owns b.
func (d *LimitedDirectory) IsExclusive(c int, b memsys.Block) bool {
	return d.DirtyOwner(b) == c
}

// SoleSharer uses the hardware view: a single pointer and no broadcast.
func (d *LimitedDirectory) SoleSharer(c int, b memsys.Block) bool {
	e := d.blocks.Get(uint64(b))
	if e == nil {
		return true
	}
	return !e.bcast && e.ptrMask == uint64(1)<<uint(c)
}

// Counter returns the hardware relocation counter for (p, c).
func (d *LimitedDirectory) Counter(p memsys.Page, c int) uint32 {
	return d.counters.Get(counterKey(p, c))
}

// ResetCounter clears the counter for (p, c).
func (d *LimitedDirectory) ResetCounter(p memsys.Page, c int) {
	d.counters.Del(counterKey(p, c))
}

// DecrementCounter undoes one capacity count (§3.4 refinement).
func (d *LimitedDirectory) DecrementCounter(p memsys.Page, c int) {
	d.counters.Dec(counterKey(p, c))
}

// Presence reports whether the hardware directory still sees cluster c as
// a possible sharer of b: either a precise pointer or broadcast mode.
// This is the conservative superset the invariant checker validates
// against actual cached copies.
func (d *LimitedDirectory) Presence(c int, b memsys.Block) bool {
	e := d.blocks.Get(uint64(b))
	if e == nil {
		return false
	}
	return e.bcast || e.hasPtr(c)
}

// PointerCount returns how many sharer pointers entry b holds (0 for an
// unmaterialized entry).
func (d *LimitedDirectory) PointerCount(b memsys.Block) int {
	if e := d.blocks.Get(uint64(b)); e != nil {
		return e.ptrCount()
	}
	return 0
}

// Broadcast reports whether entry b has fallen back to broadcast mode.
func (d *LimitedDirectory) Broadcast(b memsys.Block) bool {
	e := d.blocks.Get(uint64(b))
	return e != nil && e.bcast
}

// PointerLimit returns the configured maximum pointers per entry.
func (d *LimitedDirectory) PointerLimit() int { return d.pointers }

// InvalMessages returns cumulative invalidation messages (broadcasts
// inflate this).
func (d *LimitedDirectory) InvalMessages() int64 { return d.invalMsg }

// Overflows returns how many entries fell back to broadcast mode.
func (d *LimitedDirectory) Overflows() int64 { return d.overflows }

// NoisyCounts returns counter bumps for misses that were not capacity —
// the relocation-evidence noise broadcast mode introduces.
func (d *LimitedDirectory) NoisyCounts() int64 { return d.noisy }
