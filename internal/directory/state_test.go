package directory

import (
	"bytes"
	"testing"

	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

// exercise drives a deterministic mix of reads, writes, upgrades and
// write-backs through p so the directory holds a non-trivial mix of
// shared, dirty and invalidated entries plus relocation counters.
func exercise(p Protocol) {
	for i := 0; i < 200; i++ {
		b := memsys.Block(i % 37)
		c := i % 7
		p.Access(c, b, i%5 == 0, true)
	}
	p.WriteBack(3, memsys.Block(5))
	p.Upgrade(2, memsys.Block(11))
}

// snapshotBytes serializes p through SaveProtocol and returns the
// finished stream.
func snapshotBytes(t *testing.T, p Protocol) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	if err := SaveProtocol(w, p); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadFrom restores a stream into p via LoadProtocol, returning any
// stream error.
func loadFrom(t *testing.T, p Protocol, data []byte) error {
	t.Helper()
	r := snapshot.NewReader(bytes.NewReader(data))
	if err := LoadProtocol(r, p); err != nil {
		return err
	}
	return r.Finish()
}

func TestFullDirectoryStateRoundTrip(t *testing.T) {
	src := mustNew(8)
	src.EnableCounters()
	exercise(src)
	data := snapshotBytes(t, src)

	dst := mustNew(8)
	dst.EnableCounters()
	if err := loadFrom(t, dst, data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := dst.Blocks(), src.Blocks(); got != want {
		t.Fatalf("restored %d blocks, want %d", got, want)
	}
	if got, want := dst.InvalMessages(), src.InvalMessages(); got != want {
		t.Fatalf("restored %d invalidation messages, want %d", got, want)
	}
	// A second snapshot of the restored directory must be bit-identical:
	// the strongest whole-state comparison available.
	if !bytes.Equal(snapshotBytes(t, dst), data) {
		t.Fatal("re-snapshot of restored directory differs")
	}
}

func TestLimitedDirectoryStateRoundTrip(t *testing.T) {
	src := mustNewLimited(16, 4)
	src.EnableCounters()
	exercise(src)
	// Force an overflow so broadcast bits are exercised.
	b := memsys.Block(500)
	for c := 0; c < 8; c++ {
		src.Access(c, b, false, true)
	}
	if !src.Broadcast(b) {
		t.Fatal("no broadcast entry after pointer overflow")
	}
	data := snapshotBytes(t, src)

	dst := mustNewLimited(16, 4)
	dst.EnableCounters()
	if err := loadFrom(t, dst, data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := dst.Overflows(), src.Overflows(); got != want {
		t.Fatalf("restored %d overflows, want %d", got, want)
	}
	if !dst.Broadcast(b) {
		t.Fatal("broadcast bit lost in round trip")
	}
	if got, want := dst.PointerCount(memsys.Block(1)), src.PointerCount(memsys.Block(1)); got != want {
		t.Fatalf("restored pointer count %d, want %d", got, want)
	}
	if dst.PointerLimit() != 4 {
		t.Fatalf("PointerLimit = %d", dst.PointerLimit())
	}
	for c := 0; c < 16; c++ {
		if dst.Presence(c, b) != src.Presence(c, b) {
			t.Fatalf("presence of cluster %d diverged", c)
		}
	}
	if !bytes.Equal(snapshotBytes(t, dst), data) {
		t.Fatal("re-snapshot of restored directory differs")
	}
}

func TestStateGeometryMismatchRejected(t *testing.T) {
	src := mustNew(8)
	exercise(src)
	data := snapshotBytes(t, src)
	if err := loadFrom(t, mustNew(4), data); err == nil {
		t.Fatal("4-cluster directory accepted an 8-cluster snapshot")
	}

	lsrc := mustNewLimited(8, 4)
	exercise(lsrc)
	ldata := snapshotBytes(t, lsrc)
	if err := loadFrom(t, mustNewLimited(8, 2), ldata); err == nil {
		t.Fatal("2-pointer directory accepted a 4-pointer snapshot")
	}
	// Cross-implementation streams fail on the section tag.
	if err := loadFrom(t, mustNewLimited(8, 4), data); err == nil {
		t.Fatal("limited directory accepted a full-map snapshot")
	}
	if err := loadFrom(t, mustNew(8), ldata); err == nil {
		t.Fatal("full-map directory accepted a limited snapshot")
	}
}

func TestStateCounterToggleMismatchRejected(t *testing.T) {
	src := mustNew(8)
	src.EnableCounters()
	exercise(src)
	data := snapshotBytes(t, src)
	if err := loadFrom(t, mustNew(8), data); err == nil {
		t.Fatal("counter-less directory accepted a countered snapshot")
	}
}
