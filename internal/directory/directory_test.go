package directory

import (
	"testing"
	"testing/quick"

	"dsmnc/memsys"
	"dsmnc/stats"
)

// mustNew builds a full-map directory or panics (test files only).
func mustNew(clusters int) *Directory {
	d, err := New(clusters)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) did not fail", n)
		}
	}
	if d, err := New(64); err != nil || d == nil {
		t.Fatalf("New(64) failed: %v", err)
	}
}

func TestColdThenCapacity(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(100)
	if r := d.Access(1, b, false, true); r.Class != stats.Cold {
		t.Fatalf("first access class = %v, want cold", r.Class)
	}
	// Re-access after a silent replacement: sticky bit still set.
	if r := d.Access(1, b, false, true); r.Class != stats.Capacity {
		t.Fatalf("re-access class = %v, want capacity", r.Class)
	}
}

func TestCoherenceAfterInvalidation(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(7)
	d.Access(1, b, false, true)
	// Cluster 2 writes: cluster 1 must be invalidated.
	r := d.Access(2, b, true, true)
	if len(r.Invalidate) != 1 || r.Invalidate[0] != 1 {
		t.Fatalf("Invalidate = %v, want [1]", r.Invalidate)
	}
	if d.DirtyOwner(b) != 2 {
		t.Fatalf("DirtyOwner = %d, want 2", d.DirtyOwner(b))
	}
	// Cluster 1 refetches: its bit was cleared by the invalidation, so
	// the miss is coherence, not capacity — and the dirty owner must
	// flush.
	r = d.Access(1, b, false, true)
	if r.Class != stats.Coherence {
		t.Fatalf("class = %v, want coherence", r.Class)
	}
	if r.FlushOwner != 2 {
		t.Fatalf("FlushOwner = %d, want 2", r.FlushOwner)
	}
	if d.DirtyOwner(b) != NoOwner {
		t.Fatal("dirty owner survived a read fetch")
	}
}

func TestWriteBackKeepsSticky(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(3)
	d.Access(4, b, true, true)
	if !d.IsExclusive(4, b) {
		t.Fatal("writer not exclusive")
	}
	d.WriteBack(4, b)
	if d.DirtyOwner(b) != NoOwner {
		t.Fatal("write-back did not clear owner")
	}
	if !d.Sticky(4, b) {
		t.Fatal("write-back cleared the sticky bit (R-NUMA keeps it)")
	}
	// The next miss from 4 is therefore capacity.
	if r := d.Access(4, b, false, true); r.Class != stats.Capacity {
		t.Fatalf("post-writeback class = %v, want capacity", r.Class)
	}
	// A write-back from a non-owner must be ignored.
	d.Access(5, b, true, true)
	d.WriteBack(4, b)
	if d.DirtyOwner(b) != 5 {
		t.Fatal("stale write-back clobbered the owner")
	}
}

func TestWriteInvalidatesAllSharers(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(9)
	for c := 0; c < 5; c++ {
		d.Access(c, b, false, true)
	}
	if n := d.StickyCount(b); n != 5 {
		t.Fatalf("StickyCount = %d, want 5", n)
	}
	r := d.Access(6, b, true, true)
	if len(r.Invalidate) != 5 {
		t.Fatalf("Invalidate = %v, want 5 clusters", r.Invalidate)
	}
	if n := d.StickyCount(b); n != 1 {
		t.Fatalf("post-write StickyCount = %d, want 1", n)
	}
	if !d.SoleSharer(6, b) {
		t.Fatal("writer not sole sharer")
	}
}

func TestUpgrade(t *testing.T) {
	d := mustNew(4)
	b := memsys.Block(11)
	d.Access(0, b, false, true)
	d.Access(1, b, false, true)
	inval := d.Upgrade(0, b)
	if len(inval) != 1 || inval[0] != 1 {
		t.Fatalf("Upgrade invalidations = %v, want [1]", inval)
	}
	if !d.IsExclusive(0, b) {
		t.Fatal("upgrade did not grant exclusivity")
	}
}

func TestSoleSharerUnknownBlock(t *testing.T) {
	d := mustNew(4)
	if !d.SoleSharer(2, 999) {
		t.Fatal("unknown block must report sole sharer")
	}
	if d.Sticky(0, 999) || d.DirtyOwner(999) != NoOwner || d.StickyCount(999) != 0 {
		t.Fatal("unknown block has state")
	}
}

func TestCapacityCounters(t *testing.T) {
	d := mustNew(8)
	d.EnableCounters()
	b := memsys.FirstBlock(5)   // page 5
	d.Access(2, b, false, true) // cold: no count
	if d.Counter(5, 2) != 0 {
		t.Fatal("cold miss bumped counter")
	}
	for i := 1; i <= 3; i++ {
		r := d.Access(2, b, false, true)
		if r.Class != stats.Capacity {
			t.Fatalf("access %d class = %v", i, r.Class)
		}
		if r.CapacityCount != uint32(i) {
			t.Fatalf("CapacityCount = %d, want %d", r.CapacityCount, i)
		}
	}
	// Other blocks of the same page share the counter.
	d.Access(2, b+1, false, true) // cold for that block
	d.Access(2, b+1, false, true) // capacity
	if d.Counter(5, 2) != 4 {
		t.Fatalf("page counter = %d, want 4", d.Counter(5, 2))
	}
	// Per-cluster isolation.
	if d.Counter(5, 3) != 0 {
		t.Fatal("counter leaked across clusters")
	}
	if d.CounterEntries() != 1 {
		t.Fatalf("CounterEntries = %d, want 1", d.CounterEntries())
	}
	d.ResetCounter(5, 2)
	if d.Counter(5, 2) != 0 || d.CounterEntries() != 0 {
		t.Fatal("ResetCounter did not clear")
	}
}

func TestCountersOffByDefault(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(1)
	d.Access(0, b, false, true)
	if r := d.Access(0, b, false, true); r.CapacityCount != 0 {
		t.Fatal("counters counted while disabled")
	}
}

// Property: sticky bits are monotone under reads (never lost except by a
// write from another cluster), and there is at most one dirty owner.
func TestDirectoryInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		d := mustNew(8)
		type key struct{ b memsys.Block }
		dirtyOf := map[memsys.Block]int{}
		for _, op := range ops {
			c := int(op % 8)
			b := memsys.Block((op >> 3) % 16)
			write := op&0x8000 != 0
			d.Access(c, b, write, true)
			if write {
				dirtyOf[b] = c
			} else if owner, ok := dirtyOf[b]; ok && owner != c {
				// A read fetch flushes a *different* dirty owner;
				// a read by the owner itself keeps its ownership.
				delete(dirtyOf, b)
			}
			// Dirty owner matches shadow.
			want, ok := dirtyOf[b]
			got := d.DirtyOwner(b)
			if ok && got != want {
				return false
			}
			if !ok && got != NoOwner {
				return false
			}
			// Requester's sticky bit is always set after access.
			if !d.Sticky(c, b) {
				return false
			}
			// After a write, exactly one sticky cluster.
			if write && d.StickyCount(b) != 1 {
				return false
			}
		}
		_ = key{}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalMessagesCounted(t *testing.T) {
	d := mustNew(8)
	b := memsys.Block(1)
	for c := 0; c < 4; c++ {
		d.Access(c, b, false, true)
	}
	d.Access(5, b, true, true) // invalidates 4 sharers
	if d.InvalMessages() != 4 {
		t.Fatalf("InvalMessages = %d, want 4", d.InvalMessages())
	}
	if d.Blocks() != 1 {
		t.Fatalf("Blocks = %d", d.Blocks())
	}
}

func TestDecrementCounterFullMap(t *testing.T) {
	d := mustNew(8)
	d.EnableCounters()
	b := memsys.FirstBlock(3)
	d.Access(2, b, false, true)
	d.Access(2, b, false, true) // capacity: count 1
	d.Access(2, b, false, true) // count 2
	d.DecrementCounter(3, 2)
	if d.Counter(3, 2) != 1 {
		t.Fatalf("Counter = %d, want 1", d.Counter(3, 2))
	}
	d.DecrementCounter(3, 2)
	if d.Counter(3, 2) != 0 || d.CounterEntries() != 0 {
		t.Fatal("decrement to zero did not delete the entry")
	}
	d.DecrementCounter(3, 2) // below zero: no-op
	if d.Counter(3, 2) != 0 {
		t.Fatal("negative counter")
	}
}
