package directory

import (
	"testing"

	"dsmnc/memsys"
	"dsmnc/stats"
)

// mustNewLimited builds a Dir_iB directory or panics (test files only).
func mustNewLimited(clusters, pointers int) *LimitedDirectory {
	d, err := NewLimited(clusters, pointers)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewLimitedValidation(t *testing.T) {
	for _, c := range []struct{ clusters, ptrs int }{
		{0, 1}, {65, 4}, {8, 0}, {8, 8}, {8, 9},
	} {
		if _, err := NewLimited(c.clusters, c.ptrs); err == nil {
			t.Errorf("NewLimited(%d,%d) did not fail", c.clusters, c.ptrs)
		}
	}
	if d, err := NewLimited(8, 4); err != nil || d == nil {
		t.Fatalf("valid construction failed: %v", err)
	}
}

func TestLimitedClassificationMatchesOracle(t *testing.T) {
	d := mustNewLimited(8, 2)
	b := memsys.Block(5)
	if r := d.Access(1, b, false, true); r.Class != stats.Cold {
		t.Fatalf("first access = %v", r.Class)
	}
	if r := d.Access(1, b, false, true); r.Class != stats.Capacity {
		t.Fatalf("re-access = %v", r.Class)
	}
	d.Access(2, b, true, true)
	if r := d.Access(1, b, false, true); r.Class != stats.Coherence {
		t.Fatalf("post-inval = %v (oracle classification must survive)", r.Class)
	}
}

func TestLimitedPointerOverflowBroadcasts(t *testing.T) {
	d := mustNewLimited(8, 2)
	b := memsys.Block(3)
	d.Access(0, b, false, true)
	d.Access(1, b, false, true)
	if d.Overflows() != 0 {
		t.Fatal("premature overflow")
	}
	d.Access(2, b, false, true) // third sharer: overflow
	if d.Overflows() != 1 {
		t.Fatalf("overflows = %d", d.Overflows())
	}
	// A write must now broadcast to all 7 other clusters, not just the
	// 2 recorded pointers.
	r := d.Access(3, b, true, true)
	if len(r.Invalidate) != 7 {
		t.Fatalf("broadcast invalidations = %d, want 7", len(r.Invalidate))
	}
	if d.InvalMessages() != 7 {
		t.Fatalf("InvalMessages = %d", d.InvalMessages())
	}
	// The write resets to precise mode.
	r = d.Access(4, b, true, true)
	if len(r.Invalidate) != 1 || r.Invalidate[0] != 3 {
		t.Fatalf("post-reset invalidations = %v", r.Invalidate)
	}
}

func TestLimitedCountersPreciseUnderPointers(t *testing.T) {
	d := mustNewLimited(8, 2)
	d.EnableCounters()
	b := memsys.FirstBlock(4)
	d.Access(1, b, false, true) // cold, pointer recorded
	r := d.Access(1, b, false, true)
	if r.CapacityCount != 1 {
		t.Fatalf("precise capacity count = %d", r.CapacityCount)
	}
	if d.NoisyCounts() != 0 {
		t.Fatal("precise mode produced noise")
	}
	if d.Counter(4, 1) != 1 {
		t.Fatal("Counter lookup")
	}
	d.ResetCounter(4, 1)
	if d.Counter(4, 1) != 0 {
		t.Fatal("ResetCounter")
	}
}

func TestLimitedCountersNoisyUnderBroadcast(t *testing.T) {
	d := mustNewLimited(8, 2)
	d.EnableCounters()
	b := memsys.FirstBlock(9)
	for c := 0; c < 3; c++ { // overflow into bcast
		d.Access(c, b, false, true)
	}
	// A *cold* miss by cluster 5 now bumps the counter anyway: the
	// hardware cannot tell (relocation-evidence noise).
	r := d.Access(5, b, false, true)
	if r.Class != stats.Cold {
		t.Fatalf("class = %v", r.Class)
	}
	if r.CapacityCount != 1 {
		t.Fatalf("broadcast count = %d, want 1 (noisy)", r.CapacityCount)
	}
	if d.NoisyCounts() != 1 {
		t.Fatalf("NoisyCounts = %d", d.NoisyCounts())
	}
}

func TestLimitedDirtyOwnerAndWriteBack(t *testing.T) {
	d := mustNewLimited(8, 2)
	b := memsys.Block(7)
	d.Access(3, b, true, true)
	if !d.IsExclusive(3, b) || d.DirtyOwner(b) != 3 {
		t.Fatal("ownership")
	}
	d.WriteBack(3, b)
	if d.DirtyOwner(b) != NoOwner {
		t.Fatal("write-back")
	}
	d.WriteBack(3, b) // idempotent
	// Read fetch from a dirty owner flushes it.
	d.Access(2, b, true, true)
	r := d.Access(4, b, false, true)
	if r.FlushOwner != 2 {
		t.Fatalf("FlushOwner = %d", r.FlushOwner)
	}
}

func TestLimitedSoleSharer(t *testing.T) {
	d := mustNewLimited(8, 2)
	b := memsys.Block(11)
	if !d.SoleSharer(0, b) {
		t.Fatal("unknown block not sole")
	}
	d.Access(0, b, false, true)
	if !d.SoleSharer(0, b) || d.SoleSharer(1, b) {
		t.Fatal("single pointer")
	}
	d.Access(1, b, false, true)
	if d.SoleSharer(0, b) {
		t.Fatal("two pointers still sole")
	}
}

func TestLimitedDecrement(t *testing.T) {
	d := mustNewLimited(8, 2)
	d.EnableCounters()
	b := memsys.FirstBlock(2)
	d.Access(1, b, false, true)
	d.Access(1, b, false, true) // count 1
	d.Access(1, b, false, true) // count 2
	d.DecrementCounter(2, 1)
	if d.Counter(2, 1) != 1 {
		t.Fatal("decrement")
	}
	d.DecrementCounter(2, 1)
	if d.Counter(2, 1) != 0 {
		t.Fatal("decrement to zero")
	}
	d.DecrementCounter(2, 1) // below zero: no-op
	if d.Counter(2, 1) != 0 {
		t.Fatal("negative counter")
	}
}

func TestLimitedUpgradeNeverCounts(t *testing.T) {
	d := mustNewLimited(8, 2)
	d.EnableCounters()
	b := memsys.FirstBlock(6)
	d.Access(1, b, false, true)
	d.Upgrade(1, b)
	if d.Counter(6, 1) != 0 {
		t.Fatal("upgrade bumped the relocation counter")
	}
}
