package directory

import "dsmnc/memsys"

// Protocol is the system-level coherence engine as the simulator sees
// it. Two implementations exist: the full-map Directory (the paper's
// baseline, which R-NUMA's relocation counters require) and the
// limited-pointer LimitedDirectory (Dir_iB), under which the
// victim-cache-resident counters of vxp keep working while the
// directory-resident ones degrade — the paper's §3.4 scalability
// argument.
type Protocol interface {
	// Access processes a block fetch (see Directory.Access).
	Access(c int, b memsys.Block, write, countCapacity bool) AccessResult
	// Upgrade grants write ownership, returning the clusters to
	// invalidate.
	Upgrade(c int, b memsys.Block) []int
	// WriteBack records a dirty block arriving home.
	WriteBack(c int, b memsys.Block)
	// DirtyOwner returns the cluster holding the modified copy.
	DirtyOwner(b memsys.Block) int
	// IsExclusive reports whether c owns b.
	IsExclusive(c int, b memsys.Block) bool
	// SoleSharer reports whether c is the only recorded sharer.
	SoleSharer(c int, b memsys.Block) bool
	// EnableCounters turns on the R-NUMA relocation counters.
	EnableCounters()
	// Counter, ResetCounter and DecrementCounter manage the R-NUMA
	// per-(page, cluster) relocation counters.
	Counter(p memsys.Page, c int) uint32
	ResetCounter(p memsys.Page, c int)
	DecrementCounter(p memsys.Page, c int)
	// InvalMessages returns the cumulative invalidation messages sent —
	// the metric a limited directory pays broadcasts in.
	InvalMessages() int64
}

var (
	_ Protocol = (*Directory)(nil)
	_ Protocol = (*LimitedDirectory)(nil)
)
