// Package directory implements the system-level coherence directory of
// the clustered DSM: one full-map entry per block at its home node,
// tracking a sticky presence bit per cluster and the dirty owner.
//
// The presence bits follow R-NUMA's non-notifying discipline (paper §3.4):
// they are set when a cluster fetches a block, survive silent clean
// replacements AND dirty write-backs, and are cleared only by
// invalidations. A request from a cluster whose bit is still set is
// therefore a capacity miss; a request with the bit clear is a necessary
// (cold or coherence) miss. This is exactly the classification R-NUMA's
// page-relocation counters rely on.
//
// The directory also hosts the R-NUMA per-(page, cluster) capacity-miss
// counters that drive page relocation in the ncp/vbp/vpp systems. The
// paper's vxp system replaces them with counters in the network victim
// cache (package core); both styles share the threshold policies in
// package pagecache.
package directory

import (
	"fmt"

	"dsmnc/internal/flatmap"
	"dsmnc/memsys"
	"dsmnc/stats"
)

// NoOwner marks a block with no dirty cluster.
const NoOwner = -1

type entry struct {
	sticky  uint64 // presence bits, one per cluster (conservative)
	touched uint64 // clusters that have ever fetched the block
	dirty   int8   // cluster holding the modified copy, or NoOwner
}

// Directory is the full-map, block-grain system directory. The simulator
// owns one Directory for the whole machine; entries are logically
// distributed to home nodes but a single store suffices functionally.
// Entries live inline in an open-addressed table (internal/flatmap):
// materializing one on a cold miss is a slot write, not an allocation.
type Directory struct {
	clusters int
	blocks   flatmap.Map[entry]

	// R-NUMA capacity-miss counters, keyed by page<<8|cluster. Only
	// maintained when countersOn; the table grows with the set of
	// (page, cluster) pairs that actually miss — the very memory
	// overhead the paper criticizes in §3.4.
	countersOn bool
	counters   flatmap.Counter

	invalBuf []int // scratch for AccessResult.Invalidate
	invalMsg int64 // invalidation messages sent
}

// New returns a directory for the given number of clusters (max 64).
func New(clusters int) (*Directory, error) {
	if clusters <= 0 || clusters > 64 {
		return nil, fmt.Errorf("directory: unsupported cluster count %d", clusters)
	}
	return &Directory{clusters: clusters}, nil
}

// EnableCounters turns on the R-NUMA per-(page,cluster) capacity-miss
// counters.
func (d *Directory) EnableCounters() {
	d.countersOn = true
}

func (d *Directory) entryOf(b memsys.Block) *entry {
	e, created := d.blocks.Put(uint64(b))
	if created {
		e.dirty = NoOwner
	}
	return e
}

// AccessResult tells the simulator what a directory access implies.
type AccessResult struct {
	Class stats.MissClass
	// FlushOwner is the cluster that must supply (and write back) its
	// dirty copy before the request completes, or NoOwner.
	FlushOwner int
	// Invalidate lists the clusters whose copies must be invalidated
	// (write requests only). The slice is reused across calls.
	Invalidate []int
	// CapacityCount is the post-increment value of the R-NUMA counter
	// for (page of block, cluster), or 0 when counters are off or the
	// miss was necessary.
	CapacityCount uint32
}

// Access processes a fetch request for block b from cluster c, which does
// not currently hold the block. It classifies the miss, updates presence
// and ownership, and reports the coherence actions the simulator must
// apply to other clusters. countCapacity selects whether a capacity miss
// bumps the R-NUMA relocation counter: true for remote data fetches,
// false for local fetches and ownership upgrades (R-NUMA counts only
// capacity *misses to remote data*).
func (d *Directory) Access(c int, b memsys.Block, write, countCapacity bool) AccessResult {
	e := d.entryOf(b)
	bit := uint64(1) << uint(c)

	var res AccessResult
	res.FlushOwner = NoOwner
	switch {
	case e.sticky&bit != 0:
		res.Class = stats.Capacity
		if d.countersOn && countCapacity {
			res.CapacityCount = d.counters.Incr(counterKey(memsys.PageOfBlock(b), c))
		}
	case e.touched&bit != 0:
		res.Class = stats.Coherence
	default:
		res.Class = stats.Cold
	}

	if e.dirty != NoOwner && int(e.dirty) != c {
		// Remote owner supplies the data; its copy is downgraded
		// (read) or invalidated (write) and the block written back.
		res.FlushOwner = int(e.dirty)
		e.dirty = NoOwner
	}
	if write {
		d.invalBuf = d.invalBuf[:0]
		others := e.sticky &^ bit
		for oc := 0; others != 0 && oc < d.clusters; oc++ {
			if others&(1<<uint(oc)) != 0 {
				d.invalBuf = append(d.invalBuf, oc)
				others &^= 1 << uint(oc)
			}
		}
		res.Invalidate = d.invalBuf
		d.invalMsg += int64(len(d.invalBuf))
		e.sticky = bit // invalidations clear everyone else's bits
		e.dirty = int8(c)
	} else {
		e.sticky |= bit
	}
	e.touched |= bit
	return res
}

// Upgrade processes a write-ownership request from cluster c, which holds
// a clean copy of b. It returns the clusters to invalidate. The caller
// must only invoke it when c is not already the dirty owner. Upgrades
// never bump the capacity counters: the data was present in the cluster.
func (d *Directory) Upgrade(c int, b memsys.Block) []int {
	res := d.Access(c, b, true, false)
	return res.Invalidate
}

// WriteBack records that cluster c wrote the dirty copy of b back to
// home. Sticky bits are deliberately left set (R-NUMA keeps presence bits
// on after a dirty write-back so a later re-fetch classifies as capacity).
func (d *Directory) WriteBack(c int, b memsys.Block) {
	e := d.blocks.Get(uint64(b))
	if e != nil && int(e.dirty) == c {
		e.dirty = NoOwner
	}
}

// DirtyOwner returns the cluster holding the modified copy of b, or
// NoOwner.
func (d *Directory) DirtyOwner(b memsys.Block) int {
	if e := d.blocks.Get(uint64(b)); e != nil {
		return int(e.dirty)
	}
	return NoOwner
}

// IsExclusive reports whether cluster c is the dirty owner of b, i.e. a
// write by c needs no directory transaction.
func (d *Directory) IsExclusive(c int, b memsys.Block) bool {
	return d.DirtyOwner(b) == c
}

// Sticky reports whether cluster c's presence bit for b is set.
func (d *Directory) Sticky(c int, b memsys.Block) bool {
	if e := d.blocks.Get(uint64(b)); e != nil {
		return e.sticky&(1<<uint(c)) != 0
	}
	return false
}

// StickyCount returns how many clusters have their presence bit set.
func (d *Directory) StickyCount(b memsys.Block) int {
	if e := d.blocks.Get(uint64(b)); e != nil {
		n := 0
		for s := e.sticky; s != 0; s &= s - 1 {
			n++
		}
		return n
	}
	return 0
}

// SoleSharer reports whether c is the only cluster with a presence bit on
// b. Fresh local fills use it to pick Exclusive over Shared.
func (d *Directory) SoleSharer(c int, b memsys.Block) bool {
	if e := d.blocks.Get(uint64(b)); e != nil {
		return e.sticky == uint64(1)<<uint(c)
	}
	return true
}

// Blocks returns the number of directory entries materialized.
func (d *Directory) Blocks() int { return d.blocks.Len() }

// InvalMessages returns the cumulative invalidation messages sent.
func (d *Directory) InvalMessages() int64 { return d.invalMsg }

func counterKey(p memsys.Page, c int) uint64 {
	return uint64(p)<<8 | uint64(c)
}

// Counter returns the current R-NUMA capacity counter for (p, c).
func (d *Directory) Counter(p memsys.Page, c int) uint32 {
	return d.counters.Get(counterKey(p, c))
}

// ResetCounter zeroes the R-NUMA counter for (p, c); called when the page
// is relocated into (or evicted from) cluster c's page cache.
func (d *Directory) ResetCounter(p memsys.Page, c int) {
	d.counters.Del(counterKey(p, c))
}

// CounterEntries returns the number of live (page, cluster) counters —
// the memory-overhead metric the paper's §3.4 scalability argument is
// about.
func (d *Directory) CounterEntries() int { return d.counters.Len() }

// DecrementCounter undoes one capacity count for (p, c): the §3.4
// counter-decrement refinement applied to directory-controlled counters
// when an invalidation reaches a cluster that no longer holds the block.
func (d *Directory) DecrementCounter(p memsys.Page, c int) {
	d.counters.Dec(counterKey(p, c))
}
