package directory

import (
	"fmt"
	"math/bits"

	"dsmnc/internal/flatmap"
	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

// Snapshot section tags.
const (
	tagDirFull    = 0x05
	tagDirLimited = 0x06
)

// clusterMask returns the presence-bit mask for n clusters (n in
// [1,64], enforced by the constructors).
func clusterMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

func saveCounters(w *snapshot.Writer, counters *flatmap.Counter) {
	keys := counters.Keys()
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.U32(counters.Get(k))
	}
}

func loadCounters(r *snapshot.Reader, clusters int) flatmap.Counter {
	n := r.Len(1 << 40)
	var m flatmap.Counter
	for i := 0; i < n; i++ {
		k := r.U64()
		v := r.U32()
		if r.Err() != nil {
			return flatmap.Counter{}
		}
		if int(k&0xff) >= clusters {
			r.Failf("relocation counter names cluster %d of %d", k&0xff, clusters)
			return flatmap.Counter{}
		}
		if v == 0 {
			r.Failf("zero-valued relocation counter entry")
			return flatmap.Counter{}
		}
		m.Set(k, v)
	}
	return m
}

// SaveState serializes the full-map directory: every materialized
// entry (sorted), the R-NUMA relocation counters, and the invalidation
// message account.
func (d *Directory) SaveState(w *snapshot.Writer) {
	w.Section(tagDirFull)
	w.U32(uint32(d.clusters))
	w.Bool(d.countersOn)
	w.U64(uint64(d.blocks.Len()))
	for _, k := range d.blocks.Keys() {
		e := d.blocks.Get(k)
		w.U64(k)
		w.U64(e.sticky)
		w.U64(e.touched)
		w.I64(int64(e.dirty))
	}
	saveCounters(w, &d.counters)
	w.I64(d.invalMsg)
}

// LoadState restores the directory in place, validating every entry
// against the configured cluster count so a corrupt snapshot cannot
// smuggle in out-of-range owners or presence bits.
func (d *Directory) LoadState(r *snapshot.Reader) {
	r.Section(tagDirFull)
	clusters := int(r.U32())
	countersOn := r.Bool()
	if r.Err() != nil {
		return
	}
	if clusters != d.clusters {
		r.Failf("directory spans %d clusters in snapshot, %d configured", clusters, d.clusters)
		return
	}
	if countersOn != d.countersOn {
		r.Failf("snapshot relocation counters %t, configured %t", countersOn, d.countersOn)
		return
	}
	mask := clusterMask(d.clusters)
	n := r.Len(1 << 40)
	var blocks flatmap.Map[entry]
	for i := 0; i < n; i++ {
		b := memsys.Block(r.U64())
		sticky := r.U64()
		touched := r.U64()
		dirty := r.I64()
		if r.Err() != nil {
			return
		}
		if sticky&^mask != 0 || touched&^mask != 0 {
			r.Failf("presence bits beyond %d clusters for block %d", d.clusters, b)
			return
		}
		if dirty != NoOwner && (dirty < 0 || dirty >= int64(d.clusters)) {
			r.Failf("dirty owner %d out of range for block %d", dirty, b)
			return
		}
		e, _ := blocks.Put(uint64(b))
		*e = entry{sticky: sticky, touched: touched, dirty: int8(dirty)}
	}
	counters := loadCounters(r, d.clusters)
	invalMsg := r.I64()
	if r.Err() != nil {
		return
	}
	d.blocks = blocks
	if d.countersOn {
		d.counters = counters
	}
	d.invalMsg = invalMsg
}

// SaveState serializes the limited-pointer directory: entries with
// their hardware pointers (in ascending cluster order — the bitset
// representation has no arrival order) and broadcast bits plus the
// oracle sticky state, the relocation counters, and the overflow/noise
// accounts.
func (d *LimitedDirectory) SaveState(w *snapshot.Writer) {
	w.Section(tagDirLimited)
	w.U32(uint32(d.clusters))
	w.U32(uint32(d.pointers))
	w.Bool(d.countersOn)
	w.U64(uint64(d.blocks.Len()))
	for _, k := range d.blocks.Keys() {
		e := d.blocks.Get(k)
		w.U64(k)
		w.U8(uint8(e.ptrCount()))
		for m := e.ptrMask; m != 0; m &= m - 1 {
			w.U8(uint8(bits.TrailingZeros64(m)))
		}
		w.Bool(e.bcast)
		w.I64(int64(e.dirty))
		w.U64(e.sticky)
		w.U64(e.touched)
	}
	saveCounters(w, &d.counters)
	w.I64(d.invalMsg)
	w.I64(d.overflows)
	w.I64(d.noisy)
}

// LoadState restores the limited directory in place, enforcing the
// configured pointer limit and cluster range on every entry.
func (d *LimitedDirectory) LoadState(r *snapshot.Reader) {
	r.Section(tagDirLimited)
	clusters := int(r.U32())
	pointers := int(r.U32())
	countersOn := r.Bool()
	if r.Err() != nil {
		return
	}
	if clusters != d.clusters || pointers != d.pointers {
		r.Failf("Dir_iB geometry mismatch: snapshot %d clusters/%d pointers, config %d/%d",
			clusters, pointers, d.clusters, d.pointers)
		return
	}
	if countersOn != d.countersOn {
		r.Failf("snapshot relocation counters %t, configured %t", countersOn, d.countersOn)
		return
	}
	mask := clusterMask(d.clusters)
	n := r.Len(1 << 40)
	var blocks flatmap.Map[lentry]
	for i := 0; i < n; i++ {
		b := memsys.Block(r.U64())
		np := int(r.U8())
		if r.Err() != nil {
			return
		}
		if np > d.pointers {
			r.Failf("entry for block %d holds %d pointers, limit %d", b, np, d.pointers)
			return
		}
		var e lentry
		for j := 0; j < np; j++ {
			p := int(r.U8())
			if r.Err() != nil {
				return
			}
			if p >= d.clusters {
				r.Failf("sharer pointer %d out of range for block %d", p, b)
				return
			}
			e.ptrMask |= uint64(1) << uint(p)
		}
		e.bcast = r.Bool()
		dirty := r.I64()
		e.sticky = r.U64()
		e.touched = r.U64()
		if r.Err() != nil {
			return
		}
		if dirty != NoOwner && (dirty < 0 || dirty >= int64(d.clusters)) {
			r.Failf("dirty owner %d out of range for block %d", dirty, b)
			return
		}
		e.dirty = int8(dirty)
		if e.sticky&^mask != 0 || e.touched&^mask != 0 {
			r.Failf("presence bits beyond %d clusters for block %d", d.clusters, b)
			return
		}
		slot, _ := blocks.Put(uint64(b))
		*slot = e
	}
	counters := loadCounters(r, d.clusters)
	invalMsg := r.I64()
	overflows := r.I64()
	noisy := r.I64()
	if r.Err() != nil {
		return
	}
	d.blocks = blocks
	if d.countersOn {
		d.counters = counters
	}
	d.invalMsg = invalMsg
	d.overflows = overflows
	d.noisy = noisy
}

// SaveProtocol serializes either directory implementation. An unknown
// implementation is a configuration error, not a stream error.
func SaveProtocol(w *snapshot.Writer, p Protocol) error {
	switch d := p.(type) {
	case *Directory:
		d.SaveState(w)
	case *LimitedDirectory:
		d.SaveState(w)
	default:
		return fmt.Errorf("directory: protocol type %T is not snapshotable", p)
	}
	return nil
}

// LoadProtocol restores either directory implementation in place. A
// snapshot written by the other implementation fails on its section tag.
func LoadProtocol(r *snapshot.Reader, p Protocol) error {
	switch d := p.(type) {
	case *Directory:
		d.LoadState(r)
	case *LimitedDirectory:
		d.LoadState(r)
	default:
		return fmt.Errorf("directory: protocol type %T is not snapshotable", p)
	}
	return nil
}
