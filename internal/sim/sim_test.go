package sim

import (
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/trace"
)

// Test geometry: 2 clusters x 2 processors, tiny caches so evictions are
// easy to provoke. L1: 2 sets x 2 ways = 256 B.
func testConfig() Config {
	return Config{
		Geometry: memsys.Geometry{Clusters: 2, ProcsPerCluster: 2},
		L1:       cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
	}
}

func mustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func read(pid int, a memsys.Addr) trace.Ref {
	return trace.Ref{PID: int32(pid), Op: trace.Read, Addr: a}
}

func write(pid int, a memsys.Addr) trace.Ref {
	return trace.Ref{PID: int32(pid), Op: trace.Write, Addr: a}
}

// addr builds a byte address from (page, block-in-page).
func addr(page, blk int) memsys.Addr {
	return memsys.Addr(page)*memsys.PageBytes + memsys.Addr(blk)*memsys.BlockBytes
}

func TestFirstTouchPlacement(t *testing.T) {
	s := mustNew(testConfig())
	// P0 (cluster 0) touches page 0; P2 (cluster 1) touches page 1.
	s.Apply(read(0, addr(0, 0)))
	s.Apply(read(2, addr(1, 0)))
	if s.HomeOf(0) != 0 || s.HomeOf(1) != 1 {
		t.Fatalf("homes = %d,%d want 0,1", s.HomeOf(0), s.HomeOf(1))
	}
	tot := s.Totals()
	if tot.LocalMem.Read != 2 {
		t.Fatalf("LocalMem = %+v, want 2 local reads", tot.LocalMem)
	}
	if tot.Remote().Total() != 0 {
		t.Fatal("local first touches counted as remote")
	}
}

func TestRemoteColdMiss(t *testing.T) {
	s := mustNew(testConfig())
	s.Apply(read(0, addr(0, 0))) // places page 0 on cluster 0
	s.Apply(read(2, addr(0, 0))) // cluster 1: remote cold miss
	tot := s.Totals()
	if tot.RemoteByClass[stats.Cold].Read != 1 {
		t.Fatalf("remote cold reads = %d, want 1", tot.RemoteByClass[stats.Cold].Read)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	s := mustNew(testConfig())
	s.Apply(read(0, addr(0, 0)))
	s.Apply(read(0, addr(0, 0)))
	tot := s.Totals()
	if tot.L1Hits.Read != 1 {
		t.Fatalf("L1 hits = %d, want 1", tot.L1Hits.Read)
	}
}

func TestIntraClusterSharing(t *testing.T) {
	s := mustNew(testConfig())
	s.Apply(read(2, addr(0, 0))) // P2 places page 0 on cluster 1... wait, requester cluster
	s.Apply(read(3, addr(0, 0))) // sibling P3: cache-to-cache, same cluster
	tot := s.Totals()
	if tot.LocalC2C.Read != 1 {
		t.Fatalf("LocalC2C = %+v, want 1 read", tot.LocalC2C)
	}
}

func TestRemoteC2CAfterRemoteFill(t *testing.T) {
	s := mustNew(testConfig())
	s.Apply(read(0, addr(0, 0))) // home cluster 0
	s.Apply(read(2, addr(0, 0))) // cluster 1 fetches remotely (R state)
	s.Apply(read(3, addr(0, 0))) // sibling gets it cache-to-cache
	tot := s.Totals()
	if tot.C2C.Read != 1 {
		t.Fatalf("C2C = %+v, want 1 read", tot.C2C)
	}
	// The R master kept mastership; the sibling holds Shared.
	cl := s.Cluster(1)
	b := memsys.BlockOf(addr(0, 0))
	if !cl.Bus().HasBlock(b) {
		t.Fatal("block lost")
	}
}

func TestWriteInvalidatesRemoteSharers(t *testing.T) {
	s := mustNew(testConfig())
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	s.Apply(read(0, a))  // home cluster 0
	s.Apply(read(2, a))  // cluster 1 shares
	s.Apply(write(0, a)) // home cluster writes: cluster 1 invalidated
	if s.Cluster(1).HasBlock(b) {
		t.Fatal("remote sharer survived invalidation")
	}
	if s.Directory().DirtyOwner(b) != 0 {
		t.Fatalf("dirty owner = %d, want 0", s.Directory().DirtyOwner(b))
	}
	// Cluster 1 re-reads: coherence miss (necessary), and cluster 0
	// must flush its dirty copy.
	s.Apply(read(2, a))
	tot := s.Totals()
	if tot.RemoteByClass[stats.Coherence].Read != 1 {
		t.Fatalf("coherence reads = %d, want 1", tot.RemoteByClass[stats.Coherence].Read)
	}
	if tot.WritebacksHome != 1 {
		t.Fatalf("writebacks = %d, want 1 (read intervention flush)", tot.WritebacksHome)
	}
	if err := s.CheckCoherence([]memsys.Block{b}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityMissClassification(t *testing.T) {
	s := mustNew(testConfig())
	a := addr(0, 0)
	s.Apply(read(0, a)) // home cluster 0
	s.Apply(read(2, a)) // cluster 1: cold
	// Evict it from P2's cache: blocks 0 and 2 of page 0 plus 0 of page 1
	// map to set 0 (2 ways): fill two more conflicting lines.
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	s.Apply(read(2, a)) // refetch: capacity (sticky bit still set)
	tot := s.Totals()
	if tot.RemoteByClass[stats.Capacity].Read != 1 {
		t.Fatalf("capacity reads = %d, want 1; counters %+v", tot.RemoteByClass[stats.Capacity].Read, tot.RemoteByClass)
	}
}

func TestMESIRVictimGoesToVictimNC(t *testing.T) {
	cfg := testConfig()
	cfg.NewNC = func() (core.NC, error) {
		return core.NewVictim(core.VictimConfig{Bytes: 4 * memsys.BlockBytes, Ways: 4})
	}
	s := mustNew(cfg)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	s.Apply(read(0, a)) // home 0
	s.Apply(read(2, a)) // cluster 1 holds R
	// Conflict-evict from P2's L1 set 0.
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	cl := s.Cluster(1)
	if cl.Bus().HasBlock(b) {
		t.Fatal("block still in L1 (conflict eviction expected)")
	}
	if !cl.NC().Contains(b) {
		t.Fatal("R victim not captured by the victim NC")
	}
	// Refetch hits the NC, not the network.
	before := cl.C.Remote().Read
	s.Apply(read(2, a))
	if cl.C.NCHits.Read != 1 {
		t.Fatalf("NC hits = %d, want 1", cl.C.NCHits.Read)
	}
	if cl.C.Remote().Read != before {
		t.Fatal("NC hit went remote anyway")
	}
	if cl.NC().Contains(b) {
		t.Fatal("victim NC kept the frame after a hit")
	}
}

func TestMastershipTransferAvoidsNC(t *testing.T) {
	cfg := testConfig()
	cfg.NewNC = func() (core.NC, error) {
		return core.NewVictim(core.VictimConfig{Bytes: 4 * memsys.BlockBytes, Ways: 4})
	}
	s := mustNew(cfg)
	a := addr(0, 0)
	s.Apply(read(0, a)) // home 0
	s.Apply(read(2, a)) // P2: R
	s.Apply(read(3, a)) // P3: S (c2c)
	// Evict from P2: P3 should take mastership, NC stays empty.
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	cl := s.Cluster(1)
	if cl.C.MastershipXfer != 1 {
		t.Fatalf("mastership transfers = %d, want 1", cl.C.MastershipXfer)
	}
	if cl.NC().Contains(memsys.BlockOf(a)) {
		t.Fatal("NC captured a block that had a Shared sibling")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	s := mustNew(testConfig()) // no NC, no PC
	a := addr(0, 0)
	s.Apply(read(0, a))  // home 0
	s.Apply(write(2, a)) // cluster 1 dirty
	// Conflict-evict the dirty line.
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	tot := s.Totals()
	if tot.WritebacksHome != 1 {
		t.Fatalf("writebacks = %d, want 1", tot.WritebacksHome)
	}
	if s.Directory().DirtyOwner(memsys.BlockOf(a)) != directoryNoOwner() {
		t.Fatal("write-back did not clear ownership")
	}
}

func TestDowngradeCapturedByVictimNC(t *testing.T) {
	cfg := testConfig()
	cfg.NewNC = func() (core.NC, error) {
		return core.NewVictim(core.VictimConfig{Bytes: 4 * memsys.BlockBytes, Ways: 4})
	}
	s := mustNew(cfg)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	s.Apply(read(0, a))  // home 0
	s.Apply(write(2, a)) // cluster 1 M
	s.Apply(read(3, a))  // sibling read: M->S downgrade, NC captures
	cl := s.Cluster(1)
	if cl.C.DowngradeWB != 1 {
		t.Fatalf("downgrades = %d, want 1", cl.C.DowngradeWB)
	}
	if !cl.NC().Contains(b) {
		t.Fatal("downgrade write-back not captured by NC (pollution expected)")
	}
	if cl.C.WritebacksHome != 0 {
		t.Fatal("captured downgrade still crossed the network")
	}
	// Without an NC the downgrade must update remote memory.
	s2 := mustNew(testConfig())
	s2.Apply(read(0, a))
	s2.Apply(write(2, a))
	s2.Apply(read(3, a))
	if s2.Totals().WritebacksHome != 1 {
		t.Fatalf("no-NC downgrade writebacks = %d, want 1", s2.Totals().WritebacksHome)
	}
}

func TestUpgradeCountsTraffic(t *testing.T) {
	s := mustNew(testConfig())
	a := addr(0, 0)
	s.Apply(read(0, a))  // home 0
	s.Apply(read(2, a))  // cluster 1 shares (R)
	s.Apply(write(2, a)) // write hit on R: upgrade, remote transaction
	cl := s.Cluster(1)
	if cl.C.Upgrades.Write != 1 {
		t.Fatalf("upgrades = %+v, want 1 write", cl.C.Upgrades)
	}
	// A second write hits M: no more upgrades.
	s.Apply(write(2, a))
	if cl.C.Upgrades.Write != 1 {
		t.Fatal("M write hit re-upgraded")
	}
	// Home cluster 0 was invalidated.
	if s.Cluster(0).HasBlock(memsys.BlockOf(a)) {
		t.Fatal("home cluster copy survived remote upgrade")
	}
}

func TestPageCacheHitPath(t *testing.T) {
	cfg := testConfig()
	cfg.NewPC = func() (*pagecache.PageCache, error) {
		return pagecache.New(2, pagecache.NewFixedPolicy(0)) // threshold 0: relocate on 1st capacity miss
	}
	cfg.Counters = cluster.CountersDirectory
	s := mustNew(cfg)
	a := addr(0, 0)
	b := memsys.BlockOf(a)
	s.Apply(read(0, a)) // home 0
	s.Apply(read(2, a)) // cluster 1: cold
	// Conflict-evict, then refetch: capacity miss count 1 > 0 threshold
	// => relocation, and the block installs into the PC.
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	s.Apply(read(2, a))
	cl := s.Cluster(1)
	if cl.C.Relocations != 1 {
		t.Fatalf("relocations = %d, want 1", cl.C.Relocations)
	}
	if !cl.PC().IsMapped(0) {
		t.Fatal("page 0 not mapped after relocation")
	}
	if st := cl.PC().Lookup(b); !st.Valid {
		t.Fatal("triggering block not installed in PC")
	}
	// Evict from L1 again and refetch: now a PC hit, no network. (The
	// conflicting refetches may themselves hit the PC: clean victims of
	// a mapped page are deposited into their frame.)
	s.Apply(read(2, addr(0, 2)))
	s.Apply(read(2, addr(0, 4)))
	remoteBefore := cl.C.Remote().Read
	pcBefore := cl.C.PCHits.Read
	s.Apply(read(2, a))
	if cl.C.PCHits.Read != pcBefore+1 {
		t.Fatalf("PC hits = %d, want %d", cl.C.PCHits.Read, pcBefore+1)
	}
	if cl.C.Remote().Read != remoteBefore {
		t.Fatal("PC hit went remote")
	}
}

func TestPageEvictionFlushesCluster(t *testing.T) {
	cfg := testConfig()
	cfg.NewPC = func() (*pagecache.PageCache, error) {
		return pagecache.New(1, pagecache.NewFixedPolicy(0))
	}
	cfg.Counters = cluster.CountersDirectory
	s := mustNew(cfg)
	// Home everything on cluster 0 via P0 first touch.
	for pg := 0; pg < 3; pg++ {
		s.Apply(read(0, addr(pg, 0)))
	}
	// Cluster 1: force relocation of page 0 (cold, evict, capacity).
	relocatePage := func(pg int) {
		s.Apply(read(2, addr(pg, 0)))
		s.Apply(read(2, addr(pg, 2)))
		s.Apply(read(2, addr(pg, 4)))
		s.Apply(read(2, addr(pg, 0)))
	}
	relocatePage(0)
	cl := s.Cluster(1)
	if !cl.PC().IsMapped(0) {
		t.Fatal("page 0 not mapped")
	}
	// Dirty a block of page 0 so the flush has something to write back.
	s.Apply(write(2, addr(0, 1)))
	wbBefore := cl.C.WritebacksHome
	relocatePage(1) // only 1 frame: page 0 evicted
	if !cl.PC().IsMapped(1) || cl.PC().IsMapped(0) {
		t.Fatal("LRM eviction did not replace page 0 with page 1")
	}
	if cl.C.PageEvictions != 1 {
		t.Fatalf("page evictions = %d, want 1", cl.C.PageEvictions)
	}
	if cl.C.WritebacksHome <= wbBefore {
		t.Fatal("evicting a page with dirty blocks produced no write-back")
	}
	// The dirty L1 copy of page 0 block 1 must be gone from the cluster.
	if cl.Bus().HasBlock(memsys.BlockOf(addr(0, 1))) {
		t.Fatal("page flush left an L1 copy")
	}
}

func TestVxpRelocation(t *testing.T) {
	cfg := testConfig()
	cfg.NewNC = func() (core.NC, error) {
		return core.NewVictim(core.VictimConfig{
			Bytes: 4 * memsys.BlockBytes, Ways: 4,
			Indexing: cache.ByPage, SetCounters: true,
		})
	}
	cfg.NewPC = func() (*pagecache.PageCache, error) {
		return pagecache.New(2, pagecache.NewFixedPolicy(2)) // relocate on 3rd victimization
	}
	cfg.Counters = cluster.CountersNCSet
	s := mustNew(cfg)
	// Home page 0 on cluster 0; cluster 1 victimizes its blocks
	// repeatedly: the NC set counter climbs past the threshold and the
	// predominant page (page 0) relocates.
	s.Apply(read(0, addr(0, 0)))
	// Each round: fetch three conflicting blocks of page 0 into P2's
	// 2-way L1 set 0 -> victimizations into the (page-indexed) NC.
	for round := 0; round < 3; round++ {
		s.Apply(read(2, addr(0, 0)))
		s.Apply(read(2, addr(0, 2)))
		s.Apply(read(2, addr(0, 4)))
	}
	cl := s.Cluster(1)
	if cl.C.Relocations == 0 {
		t.Fatal("vxp counters never triggered a relocation")
	}
	if !cl.PC().IsMapped(0) {
		t.Fatal("predominant page not relocated")
	}
}

func TestRunAndInterleaver(t *testing.T) {
	s := mustNew(testConfig())
	refs := []trace.Ref{
		read(0, addr(0, 0)), write(1, addr(0, 0)),
		read(2, addr(1, 0)), read(3, addr(1, 0)),
	}
	n, err := s.Run(trace.NewSliceSource(refs))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Run = %d refs", n)
	}
	tot := s.Totals()
	if tot.Refs.Total() != 4 || tot.Refs.Write != 1 {
		t.Fatalf("Refs = %+v", tot.Refs)
	}
}

func directoryNoOwner() int { return -1 }
