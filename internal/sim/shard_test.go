package sim

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/telemetry"
	"dsmnc/trace"
)

// shardConfigs are the five principal organization shapes of the
// shard-invariance suite, on an eight-cluster machine so shard counts
// up to 8 genuinely subdivide. The invariant checker is off: it is one
// of the documented sequential-fallback triggers.
func shardConfigs() map[string]func() Config {
	base := func() Config {
		return Config{
			Geometry: memsys.Geometry{Clusters: 8, ProcsPerCluster: 2},
			L1:       cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		}
	}
	ncBytes := 8 * memsys.BlockBytes
	return map[string]func() Config{
		"base": base,
		"nc": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) { return core.NewRelaxed(ncBytes, 2) }
			return cfg
		},
		"vb": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{Bytes: ncBytes, Ways: 2})
			}
			return cfg
		},
		"vp": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{Bytes: ncBytes, Ways: 4, Indexing: cache.ByPage})
			}
			return cfg
		},
		"vxp": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{
					Bytes: ncBytes, Ways: 4, Indexing: cache.ByPage, SetCounters: true,
				})
			}
			cfg.NewPC = func() (*pagecache.PageCache, error) {
				return pagecache.New(3, pagecache.NewAdaptivePolicy(2))
			}
			cfg.Counters = cluster.CountersNCSet
			cfg.DecrementCounters = true
			return cfg
		},
	}
}

// forceParallelism raises GOMAXPROCS to at least 4 for the duration of
// a test: the engine degrades to its in-order path on a single
// execution core (see runWindow), and these suites must drive the
// actual worker crews — particularly under the race detector — even on
// a one-core CI box.
func forceParallelism(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// applyWindows drives refs through m in window-sized batches (the way
// the facade delivers them) and fails the test on any error.
func applyWindows(t *testing.T, m *System, refs []trace.Ref) {
	t.Helper()
	for i := 0; i < len(refs); i += ParWindow {
		end := i + ParWindow
		if end > len(refs) {
			end = len(refs)
		}
		if _, err := m.ApplyBatch(refs[i:end]); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
	}
}

// TestMetamorphicShardInvariance proves the headline property: for
// every organization shape, the machine fingerprint after a synthetic
// shared-traffic trace is identical at every shard count — including
// the sharded engine with one shard — to the sequential engine's.
func TestMetamorphicShardInvariance(t *testing.T) {
	forceParallelism(t)
	refs := synthTrace(16, 48, 60000, 99)
	for name, mk := range shardConfigs() {
		t.Run(name, func(t *testing.T) {
			seq, err := New(mk())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			applyWindows(t, seq, refs)
			want, err := seq.Fingerprint()
			if err != nil {
				t.Fatalf("Fingerprint: %v", err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				cfg := mk()
				cfg.Shards = shards
				m, err := New(cfg)
				if err != nil {
					t.Fatalf("New(shards=%d): %v", shards, err)
				}
				if !m.Sharded() {
					t.Fatalf("shards=%d: engine not attached", shards)
				}
				applyWindows(t, m, refs)
				got, err := m.Fingerprint()
				if err != nil {
					t.Fatalf("Fingerprint(shards=%d): %v", shards, err)
				}
				if got != want {
					t.Fatalf("shards=%d: fingerprint diverged from sequential", shards)
				}
			}
		})
	}
}

// TestShardInvarianceSnapshotSplit is the cross-engine checkpoint
// property: run under N shards to a seeded random split point, snapshot,
// restore under M shards, and continue — the final machine must be
// bit-identical to the one-shot sequential run. This also exercises the
// restore path's conservative touch-table rebuild (pages placed before
// the engine attached are treated as contested).
func TestShardInvarianceSnapshotSplit(t *testing.T) {
	forceParallelism(t)
	refs := synthTrace(16, 48, 50000, 41)
	pairs := [][2]int{{0, 4}, {4, 0}, {1, 8}, {2, 8}, {8, 2}, {4, 1}}
	for name, mk := range shardConfigs() {
		t.Run(name, func(t *testing.T) {
			seq, err := New(mk())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			applyWindows(t, seq, refs)
			want := fingerprintOf(t, seq)
			for pi, pair := range pairs {
				k := splitPoints(len(refs), 1, uint64(1000*pi+7))[1]
				cfgA := mk()
				cfgA.Shards = pair[0]
				a, err := New(cfgA)
				if err != nil {
					t.Fatalf("pair %v: New: %v", pair, err)
				}
				applyWindows(t, a, refs[:k])
				var buf bytes.Buffer
				if err := a.Snapshot(&buf); err != nil {
					t.Fatalf("pair %v: Snapshot at %d: %v", pair, k, err)
				}
				cfgB := mk()
				cfgB.Shards = pair[1]
				b, err := Restore(&buf, cfgB)
				if err != nil {
					t.Fatalf("pair %v: Restore: %v", pair, err)
				}
				if (pair[1] > 0) != b.Sharded() {
					t.Fatalf("pair %v: restored Sharded()=%v", pair, b.Sharded())
				}
				applyWindows(t, b, refs[k:])
				if got := fingerprintOf(t, b); got != want {
					t.Fatalf("pair %v split %d: fingerprint diverged", pair, k)
				}
			}
		})
	}
}

// TestShardedChunkCadence pins the chunk-boundary contract: however a
// consumer slices the stream into ApplyBatch calls — including sizes
// that straddle the engine's window barrier — the machine state,
// applied count, and sampler cadence match per-ref Apply exactly.
func TestShardedChunkCadence(t *testing.T) {
	forceParallelism(t)
	refs := synthTrace(16, 48, 2*ParWindow+300, 13)
	mk := shardConfigs()["nc"]
	// Reference: sequential, one ref at a time, sampling at a prime
	// interval so chunk edges and sample edges interleave.
	ref := mk()
	refSampler := telemetry.NewSampler(997, 0)
	ref.Sampler = refSampler
	seq, err := New(ref)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	applyAll(t, seq, refs)
	want := fingerprintOf(t, seq)
	wantSamples := refSampler.Samples()
	for _, chunk := range []int{1, 7, ParWindow - 1, ParWindow, ParWindow + 1} {
		cfg := mk()
		sampler := telemetry.NewSampler(997, 0)
		cfg.Sampler = sampler
		cfg.Shards = 4
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("chunk %d: New: %v", chunk, err)
		}
		var applied int
		for i := 0; i < len(refs); i += chunk {
			end := i + chunk
			if end > len(refs) {
				end = len(refs)
			}
			n, err := m.ApplyBatch(refs[i:end])
			applied += n
			if err != nil {
				t.Fatalf("chunk %d: ApplyBatch at %d: %v", chunk, i, err)
			}
		}
		if applied != len(refs) {
			t.Fatalf("chunk %d: applied %d of %d", chunk, applied, len(refs))
		}
		if got := fingerprintOf(t, m); got != want {
			t.Fatalf("chunk %d: fingerprint diverged from per-ref Apply", chunk)
		}
		got := sampler.Samples()
		if len(got) != len(wantSamples) {
			t.Fatalf("chunk %d: %d samples vs %d per-ref", chunk, len(got), len(wantSamples))
		}
		for i := range got {
			if got[i] != wantSamples[i] {
				t.Fatalf("chunk %d: sample %d diverged", chunk, i)
			}
		}
	}
}

// TestShardedErrorPosition pins the truncation contract: a malformed
// reference mid-stream surfaces from the sharded ApplyBatch with the
// same applied count and error as the sequential engine, and the state
// built from the valid prefix is identical.
func TestShardedErrorPosition(t *testing.T) {
	forceParallelism(t)
	refs := synthTrace(16, 48, ParWindow+500, 23)
	for _, bad := range []int{3, ParWindow - 1, ParWindow + 100} {
		refs := append([]trace.Ref(nil), refs...)
		refs[bad].PID = 9999 // invalid processor
		seq, err := New(shardConfigs()["base"]())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		seqN, seqErr := seq.ApplyBatch(refs)
		if seqErr == nil {
			t.Fatalf("bad=%d: sequential ApplyBatch accepted invalid ref", bad)
		}
		cfg := shardConfigs()["base"]()
		cfg.Shards = 4
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		n, batchErr := m.ApplyBatch(refs)
		if batchErr == nil {
			t.Fatalf("bad=%d: sharded ApplyBatch accepted invalid ref", bad)
		}
		if n != seqN || batchErr.Error() != seqErr.Error() {
			t.Fatalf("bad=%d: sharded (%d, %v) vs sequential (%d, %v)",
				bad, n, batchErr, seqN, seqErr)
		}
		if fingerprintOf(t, m) != fingerprintOf(t, seq) {
			t.Fatalf("bad=%d: prefix state diverged", bad)
		}
	}
}

// TestShardedFallback pins the eligibility rules: order-serial
// configurations silently ignore Shards and run sequentially.
func TestShardedFallback(t *testing.T) {
	mk := shardConfigs()["base"]
	cases := map[string]func(*Config){
		"check":     func(c *Config) { c.Check = true },
		"tracer":    func(c *Config) { c.Tracer = telemetry.NewTracer(io.Discard, 0) },
		"placement": func(c *Config) { c.Placement = memsys.RoundRobin{} },
	}
	for name, mut := range cases {
		cfg := mk()
		cfg.Shards = 4
		mut(&cfg)
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		if m.Sharded() {
			t.Fatalf("%s: expected sequential fallback, got sharded engine", name)
		}
	}
	cfg := mk()
	cfg.Shards = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !m.Sharded() || m.ShardCount() != 4 {
		t.Fatalf("eligible config: Sharded()=%v ShardCount()=%d", m.Sharded(), m.ShardCount())
	}
}

// TestShardedSamplerInvariance proves sample positions act as exact
// fences: the recorded series is identical between the sequential and
// sharded engines.
func TestShardedSamplerInvariance(t *testing.T) {
	forceParallelism(t)
	refs := synthTrace(16, 48, 40000, 7)
	mk := shardConfigs()["vxp"]
	run := func(shards int) (*telemetry.Sampler, [32]byte) {
		cfg := mk()
		sampler := telemetry.NewSampler(1000, 0)
		cfg.Sampler = sampler
		cfg.Shards = shards
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		applyWindows(t, m, refs)
		fp, err := m.Fingerprint()
		if err != nil {
			t.Fatalf("Fingerprint: %v", err)
		}
		return sampler, fp
	}
	seqS, seqFP := run(0)
	for _, shards := range []int{1, 2, 4, 8} {
		s, fp := run(shards)
		if fp != seqFP {
			t.Fatalf("shards=%d: fingerprint diverged", shards)
		}
		a, b := seqS.Samples(), s.Samples()
		if len(a) != len(b) {
			t.Fatalf("shards=%d: %d samples vs %d sequential", shards, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: sample %d diverged: %+v vs %+v", shards, i, b[i], a[i])
			}
		}
	}
}
