// Package sim assembles the whole clustered DSM: the clusters of package
// cluster, the system directory of package directory, and the page
// placement map. It implements cluster.HomeService — the "network" — and
// drives reference traces through the machine, producing the event
// counters that the paper's performance model (package stats) evaluates.
package sim

import (
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/memsys"
	"dsmnc/internal/migration"
	"dsmnc/internal/pagecache"
	"dsmnc/trace"
	"dsmnc/stats"
)

// Config describes one system under evaluation.
type Config struct {
	Geometry memsys.Geometry
	L1       cache.Config

	// NewNC builds one cluster's network cache; nil means no NC.
	NewNC func() core.NC
	// NewPC builds one cluster's page cache; nil means no page cache.
	NewPC func() *pagecache.PageCache
	// Counters selects the relocation trigger (requires a page cache
	// unless CountersNone).
	Counters cluster.CounterMode

	// Placement assigns pages to homes; nil means first-touch.
	Placement memsys.PlacementPolicy

	// NewDirectory builds the system coherence engine; nil means the
	// full-map directory. Use directory.NewLimited for the Dir_iB
	// scalability experiments.
	NewDirectory func(clusters int) directory.Protocol

	// Migration, when non-nil, enables SGI-Origin-style OS page
	// migration and replication with the given thresholds. Requires a
	// placement policy that supports re-homing (first-touch does).
	Migration *migration.Config

	// MOESI enables the dirty-shared O state (paper §3.2's option).
	MOESI bool
	// DecrementCounters enables the §3.4 counter-decrement refinement
	// for both directory and NC-set relocation counters.
	DecrementCounters bool
}

// System is one simulated machine.
type System struct {
	geo      memsys.Geometry
	dir      directory.Protocol
	place    memsys.PlacementPolicy
	clusters []*cluster.Cluster
	decrDir  bool // decrement directory counters on false invalidations
	mig      *migration.Engine
}

// New builds a system from cfg.
func New(cfg Config) *System {
	if err := cfg.Geometry.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		geo:   cfg.Geometry,
		place: cfg.Placement,
	}
	if cfg.NewDirectory != nil {
		s.dir = cfg.NewDirectory(cfg.Geometry.Clusters)
	} else {
		s.dir = directory.New(cfg.Geometry.Clusters)
	}
	if s.place == nil {
		s.place = memsys.NewFirstTouch()
	}
	if cfg.Migration != nil {
		s.mig = migration.NewEngine(*cfg.Migration)
	}
	if cfg.Counters == cluster.CountersDirectory {
		s.dir.EnableCounters()
		s.decrDir = cfg.DecrementCounters
	}
	s.clusters = make([]*cluster.Cluster, cfg.Geometry.Clusters)
	for i := range s.clusters {
		var nc core.NC = core.NoNC{}
		if cfg.NewNC != nil {
			nc = cfg.NewNC()
		}
		var pc *pagecache.PageCache
		if cfg.NewPC != nil {
			pc = cfg.NewPC()
		}
		s.clusters[i] = cluster.New(cluster.Config{
			ID:                i,
			Procs:             cfg.Geometry.ProcsPerCluster,
			L1:                cfg.L1,
			NC:                nc,
			PC:                pc,
			Counters:          cfg.Counters,
			Home:              s,
			MOESI:             cfg.MOESI,
			DecrementCounters: cfg.DecrementCounters,
		})
	}
	return s
}

// Geometry returns the machine topology.
func (s *System) Geometry() memsys.Geometry { return s.geo }

// Cluster returns cluster i.
func (s *System) Cluster(i int) *cluster.Cluster { return s.clusters[i] }

// Directory exposes the system coherence engine (testing and reporting).
func (s *System) Directory() directory.Protocol { return s.dir }

// Apply drives one reference through the machine.
func (s *System) Apply(r trace.Ref) {
	pid := int(r.PID)
	c := s.geo.ClusterOf(pid)
	page := memsys.PageOf(r.Addr)
	home := s.place.Home(page, c)
	write := r.Op == trace.Write
	if s.mig != nil {
		if write {
			// A write to a replicated page collapses every replica
			// first (OS shootdown), as the Origin does.
			for _, rc := range s.mig.CollapseReplicas(page) {
				s.clusters[rc].FlushPage(page)
			}
		} else if home != c && s.mig.HasReplica(c, page) {
			// Reads of a replicated page are served from the local
			// copy.
			s.mig.RecordReplicaHit()
			s.clusters[c].C.ReplicaHits.Inc(false)
			home = c
		}
	}
	s.clusters[c].Access(s.geo.LocalProc(pid), r.Addr, write, home)
}

// Run drains src through the machine, returning the reference count.
func (s *System) Run(src trace.Source) int64 {
	var n int64
	for {
		r, ok := src.Next()
		if !ok {
			return n
		}
		s.Apply(r)
		n++
	}
}

// Totals aggregates the per-cluster event counters.
func (s *System) Totals() stats.Counters {
	var t stats.Counters
	for _, cl := range s.clusters {
		t.Add(&cl.C)
	}
	return t
}

// --- cluster.HomeService ---

// Fetch performs a block fetch at b's home directory on behalf of a
// cluster, applying invalidations and dirty flushes to the other
// clusters. Capacity counting is suppressed for local fetches: R-NUMA's
// relocation counters track capacity misses to remote data only.
func (s *System) Fetch(c int, b memsys.Block, write bool) cluster.FetchReply {
	home := s.HomeOf(memsys.PageOfBlock(b))
	res := s.dir.Access(c, b, write, c != home)
	if s.mig != nil && c != home {
		page := memsys.PageOfBlock(b)
		switch s.mig.OnRemoteMiss(c, page, write) {
		case migration.Replicate:
			s.clusters[c].C.Replications++
		case migration.Migrate:
			if rh, ok := s.place.(memsys.Rehomer); ok {
				rh.Rehome(page, c)
				s.clusters[c].C.Migrations++
			}
		}
	}
	remoteDirty := false
	if write {
		for _, oc := range res.Invalidate {
			if oc == res.FlushOwner {
				remoteDirty = true
			}
			s.invalidate(oc, b)
		}
	} else if res.FlushOwner != directory.NoOwner {
		remoteDirty = true
		s.clusters[res.FlushOwner].FlushDirty(b)
	}
	return cluster.FetchReply{
		Class:         res.Class,
		CapacityCount: res.CapacityCount,
		RemoteDirty:   remoteDirty,
	}
}

// Upgrade grants system-level write ownership, invalidating every other
// sharer.
func (s *System) Upgrade(c int, b memsys.Block) {
	for _, oc := range s.dir.Upgrade(c, b) {
		s.invalidate(oc, b)
	}
}

// invalidate applies a system-level invalidation to cluster oc; a false
// invalidation (the cluster had already victimized the block) optionally
// decrements the R-NUMA relocation counter (§3.4).
func (s *System) invalidate(oc int, b memsys.Block) {
	if !s.clusters[oc].InvalidateBlock(b) && s.decrDir {
		s.dir.DecrementCounter(memsys.PageOfBlock(b), oc)
	}
}

// WriteBack delivers a dirty block to home memory.
func (s *System) WriteBack(c int, b memsys.Block) { s.dir.WriteBack(c, b) }

// IsExclusive reports whether cluster c owns b system-wide.
func (s *System) IsExclusive(c int, b memsys.Block) bool { return s.dir.IsExclusive(c, b) }

// SoleSharer reports whether cluster c is the only presence-bit holder.
func (s *System) SoleSharer(c int, b memsys.Block) bool { return s.dir.SoleSharer(c, b) }

// HomeOf returns the home cluster of an already-placed page.
func (s *System) HomeOf(p memsys.Page) int {
	h, ok := s.place.HomeIfPlaced(p)
	if !ok {
		panic(fmt.Sprintf("sim: page %d referenced before placement", p))
	}
	return h
}

// ResetRelocationCounter clears the R-NUMA counter for (p, c).
func (s *System) ResetRelocationCounter(p memsys.Page, c int) {
	s.dir.ResetCounter(p, c)
}

// CheckCoherence verifies global protocol invariants for the given block
// set; tests call it after runs. It returns an error describing the first
// violation found.
func (s *System) CheckCoherence(blocks []memsys.Block) error {
	for _, b := range blocks {
		owner := s.dir.DirtyOwner(b)
		if owner != directory.NoOwner {
			if !s.clusters[owner].HasBlock(b) {
				return fmt.Errorf("block %d: directory says cluster %d is dirty owner but it holds no copy", b, owner)
			}
			// No other cluster may hold a dirty copy.
			for i, cl := range s.clusters {
				if i != owner && cl.HasDirty(b) {
					return fmt.Errorf("block %d: cluster %d dirty while owner is %d", b, i, owner)
				}
			}
		}
		// Freshness: a valid copy anywhere implies no *other* cluster
		// owns newer (dirty) data — otherwise a local hit would read
		// stale bytes.
		for i, cl := range s.clusters {
			if owner != directory.NoOwner && i != owner && cl.HasBlock(b) {
				return fmt.Errorf("block %d: cluster %d holds a stale copy while cluster %d is dirty",
					b, i, owner)
			}
		}
	}
	return nil
}
