// Package sim assembles the whole clustered DSM: the clusters of package
// cluster, the system directory of package directory, and the page
// placement map. It implements cluster.HomeService — the "network" — and
// drives reference traces through the machine, producing the event
// counters that the paper's performance model (package stats) evaluates.
package sim

import (
	"context"
	"errors"
	"fmt"

	"dsmnc/internal/cache"
	"dsmnc/internal/check"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/internal/migration"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/telemetry"
	"dsmnc/trace"
)

// Sentinel errors. Use errors.Is to classify failures from Apply/Run.
var (
	// ErrProtocol marks an internal protocol invariant violation — the
	// simulator's own state went inconsistent. It wraps the structured
	// *check.CheckError when the invariant checker caught it.
	ErrProtocol = errors.New("sim: protocol invariant violated")
	// ErrBadRef marks a malformed input reference (out-of-range PID,
	// address beyond the machine's address space, unknown op).
	ErrBadRef = errors.New("sim: malformed reference")
)

// Config describes one system under evaluation.
type Config struct {
	Geometry memsys.Geometry
	L1       cache.Config

	// NewNC builds one cluster's network cache; nil means no NC.
	NewNC func() (core.NC, error)
	// NewPC builds one cluster's page cache; nil means no page cache.
	NewPC func() (*pagecache.PageCache, error)
	// Counters selects the relocation trigger (requires a page cache
	// unless CountersNone).
	Counters cluster.CounterMode

	// Placement assigns pages to homes; nil means first-touch.
	Placement memsys.PlacementPolicy

	// NewDirectory builds the system coherence engine; nil means the
	// full-map directory. Use directory.NewLimited for the Dir_iB
	// scalability experiments.
	NewDirectory func(clusters int) (directory.Protocol, error)

	// Migration, when non-nil, enables SGI-Origin-style OS page
	// migration and replication with the given thresholds. Requires a
	// placement policy that supports re-homing (first-touch does).
	Migration *migration.Config

	// MOESI enables the dirty-shared O state (paper §3.2's option).
	MOESI bool
	// DecrementCounters enables the §3.4 counter-decrement refinement
	// for both directory and NC-set relocation counters.
	DecrementCounters bool

	// Check attaches the coherence invariant checker (internal/check):
	// after every applied reference the machine-wide invariants for the
	// touched block are validated, and the first violation surfaces as
	// an ErrProtocol-wrapped *check.CheckError from Apply/Run. Roughly
	// doubles per-reference cost; meant for tests and checked sweeps.
	Check bool

	// Shards enables the deterministic sharded engine: the clusters
	// are split into min(Shards, Clusters, 8) contiguous shards that
	// execute windowed batches concurrently, bit-identical to the
	// sequential engine (see shard.go). 0 leaves the sequential engine
	// untouched. Configurations whose per-reference work is order-
	// serial (Tracer, Migration, Check, a non-full-map directory, a
	// non-first-touch placement) ignore the setting and run
	// sequentially.
	Shards int

	// Sampler, when non-nil, records a machine-wide time-series sample
	// every Sampler.Every() applied references (and participates in
	// snapshots, so a resumed cell continues its series). The
	// simulation itself is bit-identical with and without it.
	Sampler *telemetry.Sampler
	// Tracer, when non-nil, receives a structured coherence event for
	// every fill, victimization, invalidation, relocation and
	// write-back, stamped with the applied-reference clock.
	Tracer *telemetry.Tracer
}

// System is one simulated machine.
type System struct {
	geo      memsys.Geometry
	dir      directory.Protocol
	dirFull  *directory.Directory // non-nil when dir is the full-map directory: direct calls skip the interface dispatch on every miss
	place    memsys.PlacementPolicy
	ft       *memsys.FirstTouch // non-nil when place is first-touch: direct calls skip the interface dispatch on every reference
	clusters []*cluster.Cluster
	decrDir  bool // decrement directory counters on false invalidations
	mig      *migration.Engine
	checker  *check.Checker
	applied  int64      // references successfully applied (the trace position)
	err      error      // sticky: first internal failure, surfaced by Apply
	par      *parEngine // non-nil when the sharded engine is attached

	// pidCluster/pidLocal precompute the Geometry.ClusterOf/LocalProc
	// divisions for every processor id — Apply decodes a pid with two
	// indexed loads instead of a div and a mod.
	pidCluster []int32
	pidLocal   []int32

	sampler     *telemetry.Sampler
	tracer      *telemetry.Tracer
	sampleEvery int64 // cached Sampler.Every(); 0 disables sampling
	nextSample  int64 // applied count that triggers the next sample
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		geo:     cfg.Geometry,
		place:   cfg.Placement,
		sampler: cfg.Sampler,
		tracer:  cfg.Tracer,
	}
	if s.sampler != nil {
		s.sampleEvery = s.sampler.Every()
		s.nextSample = s.sampleEvery
	}
	if cfg.NewDirectory != nil {
		d, err := cfg.NewDirectory(cfg.Geometry.Clusters)
		if err != nil {
			return nil, err
		}
		s.dir = d
	} else {
		d, err := directory.New(cfg.Geometry.Clusters)
		if err != nil {
			return nil, err
		}
		s.dir = d
	}
	s.dirFull, _ = s.dir.(*directory.Directory)
	if s.place == nil {
		s.place = memsys.NewFirstTouch()
	}
	s.ft, _ = s.place.(*memsys.FirstTouch)
	procs := cfg.Geometry.Procs()
	s.pidCluster = make([]int32, procs)
	s.pidLocal = make([]int32, procs)
	for pid := 0; pid < procs; pid++ {
		s.pidCluster[pid] = int32(cfg.Geometry.ClusterOf(pid))
		s.pidLocal[pid] = int32(cfg.Geometry.LocalProc(pid))
	}
	if cfg.Migration != nil {
		s.mig = migration.NewEngine(*cfg.Migration)
	}
	if cfg.Counters == cluster.CountersDirectory {
		s.dir.EnableCounters()
		s.decrDir = cfg.DecrementCounters
	}
	s.clusters = make([]*cluster.Cluster, cfg.Geometry.Clusters)
	for i := range s.clusters {
		var nc core.NC = core.NoNC{}
		if cfg.NewNC != nil {
			n, err := cfg.NewNC()
			if err != nil {
				return nil, err
			}
			nc = n
		}
		var pc *pagecache.PageCache
		if cfg.NewPC != nil {
			p, err := cfg.NewPC()
			if err != nil {
				return nil, err
			}
			pc = p
		}
		cl, err := cluster.New(cluster.Config{
			ID:                i,
			Procs:             cfg.Geometry.ProcsPerCluster,
			L1:                cfg.L1,
			NC:                nc,
			PC:                pc,
			Counters:          cfg.Counters,
			Home:              s,
			MOESI:             cfg.MOESI,
			DecrementCounters: cfg.DecrementCounters,
			Trace:             cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		s.clusters[i] = cl
	}
	if cfg.Check {
		s.checker = check.New(check.Config{
			Geometry: cfg.Geometry,
			Dir:      s.dir,
			Clusters: s.clusters,
			Home:     s.place.HomeIfPlaced,
		})
	}
	if cfg.Shards > 0 && s.tracer == nil && s.mig == nil && s.checker == nil &&
		s.dirFull != nil && s.ft != nil {
		s.par = newParEngine(s, cfg.Shards)
	}
	return s, nil
}

// Sharded reports whether the deterministic sharded engine is attached
// (Config.Shards > 0 on an eligible configuration). Results are
// bit-identical either way; batch delivery is what gains concurrency.
func (s *System) Sharded() bool { return s.par != nil }

// ShardCount returns the effective shard count: 1 when the machine
// runs sequentially.
func (s *System) ShardCount() int {
	if s.par == nil {
		return 1
	}
	return s.par.Shards()
}

// Geometry returns the machine topology.
func (s *System) Geometry() memsys.Geometry { return s.geo }

// Cluster returns cluster i.
func (s *System) Cluster(i int) *cluster.Cluster { return s.clusters[i] }

// Directory exposes the system coherence engine (testing and reporting).
func (s *System) Directory() directory.Protocol { return s.dir }

// Checker exposes the invariant checker, or nil when Config.Check was
// off.
func (s *System) Checker() *check.Checker { return s.checker }

// Err returns the machine's sticky internal error: the first protocol
// failure recorded during a reference. Once set, every later Apply
// returns it.
func (s *System) Err() error { return s.err }

// Apply drives one reference through the machine. It rejects malformed
// references (ErrBadRef) before touching any state, surfaces internal
// protocol failures (ErrProtocol), and — when the invariant checker is
// attached — validates the touched block's machine-wide invariants
// afterwards.
func (s *System) Apply(r trace.Ref) error {
	if s.err != nil {
		return s.err
	}
	pid := int(r.PID)
	if pid < 0 || pid >= len(s.pidCluster) {
		return fmt.Errorf("%w: pid %d out of range [0,%d)", ErrBadRef, r.PID, s.geo.Procs())
	}
	if r.Addr > memsys.MaxAddr {
		return fmt.Errorf("%w: address %#x beyond %d-bit address space", ErrBadRef, uint64(r.Addr), memsys.AddrSpaceBits)
	}
	if r.Op != trace.Read && r.Op != trace.Write {
		return fmt.Errorf("%w: unknown op %d", ErrBadRef, r.Op)
	}
	c := int(s.pidCluster[pid])
	page := memsys.PageOf(r.Addr)
	var home int
	if s.par != nil {
		// The sharded engine's touch table must see every reference,
		// however it is delivered, or a later window would
		// misclassify a block as shard-private.
		home, _ = s.par.resolve(page, memsys.BlockOf(r.Addr), c)
	} else if s.ft != nil {
		home = s.ft.Home(page, c)
	} else {
		home = s.place.Home(page, c)
	}
	write := r.Op == trace.Write
	if s.tracer != nil {
		s.tracer.Tick(s.applied)
	}
	if s.mig != nil {
		if write {
			// A write to a replicated page collapses every replica
			// first (OS shootdown), as the Origin does.
			for _, rc := range s.mig.CollapseReplicas(page) {
				s.clusters[rc].FlushPage(page)
			}
		} else if home != c && s.mig.HasReplica(c, page) {
			// Reads of a replicated page are served from the local
			// copy.
			s.mig.RecordReplicaHit()
			s.clusters[c].C.ReplicaHits.Inc(false)
			home = c
		}
	}
	s.clusters[c].Access(int(s.pidLocal[pid]), r.Addr, write, home)
	if s.err != nil {
		return s.err
	}
	if s.checker != nil {
		if cerr := s.checker.CheckRef(r); cerr != nil {
			s.err = fmt.Errorf("%w: %w", ErrProtocol, cerr)
			return s.err
		}
	}
	s.applied++
	if s.sampleEvery > 0 && s.applied >= s.nextSample {
		s.nextSample += s.sampleEvery
		s.sampler.Record(s.sampleNow())
	}
	return nil
}

// ApplyBatch drives a run of references through the machine, returning
// how many applied and the first error. It is exactly a loop of Apply —
// same validation, same sticky-error behavior, same counters — but when
// no tracer, migration engine, checker or sampler is attached, the
// per-reference nil checks for those hooks are hoisted out of the loop.
func (s *System) ApplyBatch(refs []trace.Ref) (int, error) {
	if s.par != nil {
		if len(refs) >= parMinBatch {
			return s.par.applyBatch(refs)
		}
		// Small batches run sequentially through Apply, which keeps
		// the engine's touch table exact.
		for i := range refs {
			if err := s.Apply(refs[i]); err != nil {
				return i, err
			}
		}
		return len(refs), nil
	}
	if s.tracer != nil || s.mig != nil || s.checker != nil || s.sampleEvery > 0 || s.ft == nil {
		for i := range refs {
			if err := s.Apply(refs[i]); err != nil {
				return i, err
			}
		}
		return len(refs), nil
	}
	if s.err != nil {
		return 0, s.err
	}
	ft, pidCluster, pidLocal, clusters := s.ft, s.pidCluster, s.pidLocal, s.clusters
	// Local (page → home) memo: without a migration engine a placed
	// page's home never changes, so consecutive same-page references
	// (the common case under quantum interleaving) skip the placement
	// lookup entirely. haveLast starts false so the first reference
	// always consults FirstTouch.
	var (
		lastPage memsys.Page
		lastHome int
		haveLast bool
	)
	for i := range refs {
		r := refs[i]
		pid := int(r.PID)
		if pid < 0 || pid >= len(pidCluster) || r.Addr > memsys.MaxAddr ||
			(r.Op != trace.Read && r.Op != trace.Write) {
			return i, s.Apply(r) // rejects with the exact Apply error
		}
		c := int(pidCluster[pid])
		page := memsys.PageOf(r.Addr)
		if !haveLast || page != lastPage {
			lastHome = ft.Home(page, c)
			lastPage, haveLast = page, true
		}
		clusters[c].Access(int(pidLocal[pid]), r.Addr, r.Op == trace.Write, lastHome)
		if s.err != nil {
			return i, s.err
		}
		s.applied++
	}
	return len(refs), nil
}

// sampleNow reads the machine into one raw telemetry sample: the
// aggregated event counters plus the NC/PC occupancy of every cluster.
func (s *System) sampleNow() telemetry.Sample {
	t := s.Totals()
	smp := telemetry.Sample{
		Refs:           s.applied,
		Reads:          t.Refs.Read,
		Writes:         t.Refs.Write,
		L1Hits:         t.L1Hits.Total(),
		NCHits:         t.NCHits.Total(),
		PCHits:         t.PCHits.Total(),
		RemoteMisses:   t.Remote().Total(),
		RemoteCapacity: t.RemoteCapacity().Total(),
		NCInserts:      t.NCInserts,
		NCEvictions:    t.NCEvictions,
		Relocations:    t.Relocations,
		PageEvictions:  t.PageEvictions,
		WritebacksHome: t.WritebacksHome,
	}
	for _, cl := range s.clusters {
		used, frames := cl.NCOccupancy()
		smp.NCUsed += int64(used)
		smp.NCFrames += int64(frames)
		used, frames = cl.PCOccupancy()
		smp.PCUsed += int64(used)
		smp.PCFrames += int64(frames)
	}
	return smp
}

// FlushSample records one final sample at the current position, so the
// series always ends with the machine's exact end-of-run counters. It
// is a no-op without a sampler or when the last interval sample already
// sits at the current position.
func (s *System) FlushSample() {
	if s.sampler == nil {
		return
	}
	if last, ok := s.sampler.Latest(); ok && last.Refs == s.applied {
		return
	}
	s.sampler.Record(s.sampleNow())
}

// RefsApplied returns how many references have been successfully
// applied — the machine's position in its trace, which checkpoint
// resume uses to skip the already-consumed prefix.
func (s *System) RefsApplied() int64 { return s.applied }

// Run drains src through the machine, returning the reference count and
// the first error: a malformed or invariant-violating reference, or the
// source's own decode error (sources exposing Err() error, like
// trace.Reader, are consulted once the stream ends).
func (s *System) Run(src trace.Source) (int64, error) {
	return s.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation: ctx is polled every 1024
// references (every window under the sharded engine), so runaway cells
// in a sweep can be timed out.
func (s *System) RunContext(ctx context.Context, src trace.Source) (int64, error) {
	if s.par != nil {
		return s.runContextWindowed(ctx, src)
	}
	done := ctx.Done()
	var n int64
	for {
		if done != nil && n&1023 == 0 {
			select {
			case <-done:
				return n, ctx.Err()
			default:
			}
		}
		r, ok := src.Next()
		if !ok {
			if fe, ok := src.(interface{ Err() error }); ok {
				if err := fe.Err(); err != nil {
					return n, err
				}
			}
			return n, nil
		}
		if err := s.Apply(r); err != nil {
			return n, err
		}
		n++
	}
}

// runContextWindowed drains a source through the sharded engine:
// references accumulate into a window-sized buffer and flush through
// ApplyBatch, which schedules them across the shards. Cancellation is
// polled once per window.
func (s *System) runContextWindowed(ctx context.Context, src trace.Source) (int64, error) {
	done := ctx.Done()
	buf := make([]trace.Ref, 0, ParWindow)
	var n int64
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		applied, err := s.ApplyBatch(buf)
		n += int64(applied)
		buf = buf[:0]
		return err
	}
	for {
		r, ok := src.Next()
		if !ok {
			if err := flush(); err != nil {
				return n, err
			}
			if fe, ok := src.(interface{ Err() error }); ok {
				if err := fe.Err(); err != nil {
					return n, err
				}
			}
			return n, nil
		}
		buf = append(buf, r)
		if len(buf) == cap(buf) {
			if err := flush(); err != nil {
				return n, err
			}
			if done != nil {
				select {
				case <-done:
					return n, ctx.Err()
				default:
				}
			}
		}
	}
}

// Totals aggregates the per-cluster event counters.
func (s *System) Totals() stats.Counters {
	var t stats.Counters
	for _, cl := range s.clusters {
		t.Add(&cl.C)
	}
	return t
}

// --- cluster.HomeService ---

// Fetch performs a block fetch at b's home directory on behalf of a
// cluster, applying invalidations and dirty flushes to the other
// clusters. Capacity counting is suppressed for local fetches: R-NUMA's
// relocation counters track capacity misses to remote data only.
func (s *System) Fetch(c int, b memsys.Block, write bool) cluster.FetchReply {
	home := s.HomeOf(memsys.PageOfBlock(b))
	var res directory.AccessResult
	if d := s.dirFull; d != nil {
		res = d.Access(c, b, write, c != home)
	} else {
		res = s.dir.Access(c, b, write, c != home)
	}
	if s.mig != nil && c != home {
		page := memsys.PageOfBlock(b)
		switch s.mig.OnRemoteMiss(c, page, write) {
		case migration.Replicate:
			s.clusters[c].C.Replications++
		case migration.Migrate:
			if rh, ok := s.place.(memsys.Rehomer); ok {
				rh.Rehome(page, c)
				s.clusters[c].C.Migrations++
			}
		}
	}
	remoteDirty := false
	if write {
		for _, oc := range res.Invalidate {
			if oc == res.FlushOwner {
				remoteDirty = true
			}
			s.invalidate(oc, b)
		}
	} else if res.FlushOwner != directory.NoOwner {
		remoteDirty = true
		s.clusters[res.FlushOwner].FlushDirty(b)
	}
	return cluster.FetchReply{
		Class:         res.Class,
		CapacityCount: res.CapacityCount,
		RemoteDirty:   remoteDirty,
	}
}

// Upgrade grants system-level write ownership, invalidating every other
// sharer.
func (s *System) Upgrade(c int, b memsys.Block) {
	for _, oc := range s.dir.Upgrade(c, b) {
		s.invalidate(oc, b)
	}
}

// invalidate applies a system-level invalidation to cluster oc; a false
// invalidation (the cluster had already victimized the block) optionally
// decrements the R-NUMA relocation counter (§3.4).
func (s *System) invalidate(oc int, b memsys.Block) {
	if !s.clusters[oc].InvalidateBlock(b) && s.decrDir {
		s.dir.DecrementCounter(memsys.PageOfBlock(b), oc)
	}
}

// WriteBack delivers a dirty block to home memory.
func (s *System) WriteBack(c int, b memsys.Block) {
	if d := s.dirFull; d != nil {
		d.WriteBack(c, b)
		return
	}
	s.dir.WriteBack(c, b)
}

// IsExclusive reports whether cluster c owns b system-wide.
func (s *System) IsExclusive(c int, b memsys.Block) bool {
	if d := s.dirFull; d != nil {
		return d.IsExclusive(c, b)
	}
	return s.dir.IsExclusive(c, b)
}

// SoleSharer reports whether cluster c is the only presence-bit holder.
func (s *System) SoleSharer(c int, b memsys.Block) bool {
	if d := s.dirFull; d != nil {
		return d.SoleSharer(c, b)
	}
	return s.dir.SoleSharer(c, b)
}

// HomeOf returns the home cluster of an already-placed page. A page
// referenced before placement is a protocol failure; it is recorded in
// the machine's sticky error (surfaced by the enclosing Apply) and home
// 0 is returned so the access can limp to the end of the reference.
func (s *System) HomeOf(p memsys.Page) int {
	var (
		h  int
		ok bool
	)
	if s.ft != nil {
		h, ok = s.ft.HomeIfPlaced(p)
	} else {
		h, ok = s.place.HomeIfPlaced(p)
	}
	if !ok {
		s.fail(fmt.Errorf("%w: page %d referenced before placement", ErrProtocol, p))
		return 0
	}
	return h
}

// fail records the machine's first internal error.
func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// ResetRelocationCounter clears the R-NUMA counter for (p, c).
func (s *System) ResetRelocationCounter(p memsys.Page, c int) {
	s.dir.ResetCounter(p, c)
}

// CheckCoherence verifies global protocol invariants for the given block
// set; tests call it after runs. It returns an error describing the first
// violation found.
func (s *System) CheckCoherence(blocks []memsys.Block) error {
	for _, b := range blocks {
		owner := s.dir.DirtyOwner(b)
		if owner != directory.NoOwner {
			if !s.clusters[owner].HasBlock(b) {
				return fmt.Errorf("block %d: directory says cluster %d is dirty owner but it holds no copy", b, owner)
			}
			// No other cluster may hold a dirty copy.
			for i, cl := range s.clusters {
				if i != owner && cl.HasDirty(b) {
					return fmt.Errorf("block %d: cluster %d dirty while owner is %d", b, i, owner)
				}
			}
		}
		// Freshness: a valid copy anywhere implies no *other* cluster
		// owns newer (dirty) data — otherwise a local hit would read
		// stale bytes.
		for i, cl := range s.clusters {
			if owner != directory.NoOwner && i != owner && cl.HasBlock(b) {
				return fmt.Errorf("block %d: cluster %d holds a stale copy while cluster %d is dirty",
					b, i, owner)
			}
		}
	}
	return nil
}
