package sim

// Deterministic sharded execution: the clusters are split into
// contiguous shards and the reference stream is consumed window by
// window. A serial scan classifies every reference by the set of shards
// that have ever touched its block — a reference whose block (and its
// first-touch page placement) is private to the issuing shard commutes
// with every concurrently-running reference of the other shards, so the
// window decomposes into parallel segments separated by inline "fence"
// runs executed by the coordinator in exact trace order with all shards
// quiesced. Directory and counter storage is serialized under one
// mutex; everything a parallel segment does either touches state owned
// by exactly one shard or commutes (bitmask ORs, per-slot counter
// updates, unique-dirty-owner write-backs), so the machine state after
// every fence — and therefore the final snapshot — is bit-identical to
// the sequential engine at every shard count, including 1.
//
// Configurations whose per-reference work is inherently order-serial
// fall back to the sequential engine at construction time: an attached
// event tracer (global 1-in-K stride), the invariant checker, the
// migration engine, a limited (non-full-map) directory, and non-first-
// touch placement. The time-series sampler is supported exactly: sample
// positions become fences.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsmnc/internal/cluster"
	"dsmnc/internal/directory"
	"dsmnc/internal/flatmap"
	"dsmnc/memsys"
	"dsmnc/trace"
)

const (
	// ParWindow is the scheduling window: how many references are
	// scanned, classified and executed as one parallel unit. Exported
	// for callers that batch their own delivery (the facade's cell
	// engine accumulates EmitBatch turns up to this size).
	ParWindow = 8192
	// parMinBatch is the smallest ApplyBatch slice worth scheduling;
	// below it the sequential loop (which keeps the touch table
	// up to date through Apply) is faster than a window setup.
	parMinBatch = 256
	// parMinSeg is the shortest parallel segment worth a barrier;
	// shorter runs of shard-local references are folded into the
	// surrounding inline fence run.
	parMinSeg = 24
	// parMaxShards bounds the shard count: per-block touch masks are
	// one byte wide, and past eight ways the windows of the paper's
	// eight-cluster machine stop subdividing usefully anyway.
	parMaxShards = 8
	// parSpinBudget is how many load attempts a barrier wait spins
	// (yielding every 16th) before parking on the condvar; see
	// waitFor.
	parSpinBudget = 256
)

// pageTouch is the engine's transient record of one page: its home
// (memoized so parallel phases never consult the placement map's
// mutable memo) and the per-block masks of shards that have touched
// each block. The table is rebuilt conservatively after a restore —
// pages placed before the engine attached report every block as
// contested — so it never appears in snapshots and a machine's
// fingerprint stays independent of the shard count.
type pageTouch struct {
	home   int32
	blocks [memsys.BlocksPerPage]uint8
}

// parSeg is one entry of a window's schedule: the parallel part spans
// [prev.end, parEnd) and is executed concurrently by the shards; the
// fence part [parEnd, end) is executed inline by the coordinator in
// trace order with every shard quiesced. sample marks a segment whose
// end is a sampler position.
type parSeg struct {
	parEnd int32
	end    int32
	sample bool
}

// padded keeps each worker's arrival counter on its own cache line so
// the barrier spin of one shard does not bounce the others' lines.
type padded struct {
	v atomic.Int32
	_ [64 - 8]byte
}

// parEngine is the sharded execution engine attached to a System when
// Config.Shards > 0 and the configuration is eligible.
type parEngine struct {
	s       *System
	shards  int
	shardOf []int8 // cluster -> shard (contiguous split)

	dirMu sync.Mutex   // serializes directory + counter storage
	homes []*shardHome // per-shard network proxies

	pages    flatmap.Map[pageTouch]
	lastPage memsys.Page
	lastPT   *pageTouch
	hasLast  bool

	// Window scratch, reused across windows.
	home      []int32
	shard     []int8
	segs      []parSeg
	samplePos []int32

	phase   atomic.Int32
	aborted atomic.Bool
	arrived []padded

	// The park half of the adaptive barrier (see waitFor/post):
	// parkers counts waiters that gave up spinning and block on
	// parkCond; posters only take the mutex when one exists.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	parkers  atomic.Int32
}

// newParEngine builds the engine for s with min(want, clusters,
// parMaxShards) shards.
func newParEngine(s *System, want int) *parEngine {
	n := s.geo.Clusters
	if want > n {
		want = n
	}
	if want > parMaxShards {
		want = parMaxShards
	}
	if want < 1 {
		want = 1
	}
	e := &parEngine{
		s:       s,
		shards:  want,
		shardOf: make([]int8, n),
		home:    make([]int32, ParWindow),
		shard:   make([]int8, ParWindow),
		arrived: make([]padded, want),
	}
	e.parkCond = sync.NewCond(&e.parkMu)
	for c := 0; c < n; c++ {
		e.shardOf[c] = int8(c * want / n)
	}
	e.homes = make([]*shardHome, want)
	for i := range e.homes {
		e.homes[i] = &shardHome{s: s, e: e}
	}
	return e
}

// Shards reports the engine's effective shard count.
func (e *parEngine) Shards() int { return e.shards }

// resolve returns the home cluster of the page under p — placing it
// first-touch exactly as the sequential engine would — and records that
// cluster c's shard touched block b. local reports whether the block
// has only ever been touched by that shard (the page placement
// included: a page placed before the engine attached is contested on
// every block).
func (e *parEngine) resolve(p memsys.Page, b memsys.Block, c int) (home int, local bool) {
	var pt *pageTouch
	if e.hasLast && p == e.lastPage {
		pt = e.lastPT
	} else {
		pt = e.pages.Get(uint64(p))
		if pt == nil {
			pt = e.newPage(p, c)
		}
		e.lastPage, e.lastPT, e.hasLast = p, pt, true
	}
	bit := uint8(1) << uint8(e.shardOf[c])
	bi := int(b) & (memsys.BlocksPerPage - 1)
	m := pt.blocks[bi] | bit
	pt.blocks[bi] = m
	return int(pt.home), m == bit
}

// newPage enters p into the touch table. A page the placement map
// already knows predates the engine (a restored snapshot, or references
// applied while sharding was below the batch threshold... those flow
// through resolve too, so in practice: a restore); its touch history is
// unknown, so every block is conservatively marked contested.
func (e *parEngine) newPage(p memsys.Page, c int) *pageTouch {
	var home int32
	contested := false
	if h, ok := e.s.ft.HomeIfPlaced(p); ok {
		home, contested = int32(h), true
	} else {
		home = int32(e.s.ft.Home(p, c))
	}
	pt, _ := e.pages.Put(uint64(p))
	pt.home = home
	if contested {
		for i := range pt.blocks {
			pt.blocks[i] = 0xFF
		}
	} else {
		for i := range pt.blocks {
			pt.blocks[i] = 0
		}
	}
	return pt
}

// scan validates and classifies the window prefix, filling the per-ref
// home/shard scratch and the segment schedule. It returns how many
// references are schedulable: n < len(refs) means refs[n] is malformed
// (the caller reproduces the exact Apply error after running the valid
// prefix, exactly like the sequential batch loop).
func (e *parEngine) scan(refs []trace.Ref) int {
	s := e.s
	n := 0
	e.samplePos = e.samplePos[:0]
	ns := s.nextSample
	for ; n < len(refs); n++ {
		r := refs[n]
		pid := int(r.PID)
		if pid < 0 || pid >= len(s.pidCluster) || r.Addr > memsys.MaxAddr ||
			(r.Op != trace.Read && r.Op != trace.Write) {
			break
		}
		c := int(s.pidCluster[pid])
		home, local := e.resolve(memsys.PageOf(r.Addr), memsys.BlockOf(r.Addr), c)
		e.home[n] = int32(home)
		if local {
			e.shard[n] = e.shardOf[c]
		} else {
			e.shard[n] = -1
		}
		if s.sampleEvery > 0 && s.applied+int64(n)+1 >= ns {
			e.samplePos = append(e.samplePos, int32(n+1))
			ns += s.sampleEvery
		}
	}
	e.buildSchedule(int32(n))
	return n
}

// buildSchedule cuts the scanned prefix into alternating parallel and
// fence runs, folding parallel runs shorter than parMinSeg into the
// surrounding inline run and forcing a boundary at every sampler
// position.
func (e *parEngine) buildSchedule(n int32) {
	e.segs = e.segs[:0]
	shard := e.shard
	var i int32
	si := 0
	for i < n {
		limit, sample := n, false
		if si < len(e.samplePos) {
			limit, sample = e.samplePos[si], true
			si++
		}
		for i < limit {
			ps := i
			for i < limit && shard[i] >= 0 {
				i++
			}
			pe := i
			for i < limit && shard[i] < 0 {
				i++
			}
			fe := i
			if pe-ps < parMinSeg {
				// Too short to pay a barrier for: execute inline.
				for k := ps; k < pe; k++ {
					shard[k] = -1
				}
				if m := len(e.segs) - 1; m >= 0 && e.segs[m].end == ps && !e.segs[m].sample {
					e.segs[m].end = fe
					continue
				}
				e.segs = append(e.segs, parSeg{parEnd: ps, end: fe})
				continue
			}
			e.segs = append(e.segs, parSeg{parEnd: pe, end: fe})
		}
		if sample {
			// The boundary at `limit` is a sampler position; the
			// alternation above never runs past it, so the last
			// segment (or an empty one appended here) ends exactly
			// there and carries the flag.
			if m := len(e.segs) - 1; m >= 0 && e.segs[m].end == limit && !e.segs[m].sample {
				e.segs[m].sample = true
			} else {
				e.segs = append(e.segs, parSeg{parEnd: limit, end: limit, sample: true})
			}
		}
	}
}

// applyBatch is the sharded ApplyBatch: window by window, scan then
// execute. The contract matches the sequential loop exactly for
// malformed input and sticky errors; an internal protocol failure
// during a parallel segment (impossible for a machine that was
// consistent — kept for defense) poisons the machine via the usual
// sticky error with a best-effort applied count.
func (e *parEngine) applyBatch(refs []trace.Ref) (int, error) {
	s := e.s
	if s.err != nil {
		return 0, s.err
	}
	e.attach()
	defer e.detach()
	applied := 0
	for applied < len(refs) {
		w := refs[applied:]
		if len(w) > ParWindow {
			w = w[:ParWindow]
		}
		n := e.scan(w)
		if n > 0 {
			done, err := e.runWindow(w[:n])
			applied += done
			if err != nil {
				return applied, err
			}
		}
		if n < len(w) {
			// w[n] is malformed; Apply rejects it with the exact
			// sequential error before touching any state.
			return applied, s.Apply(w[n])
		}
	}
	return applied, nil
}

// attach routes every cluster's network traffic through its shard's
// proxy; detach restores the direct service.
func (e *parEngine) attach() {
	for c, cl := range e.s.clusters {
		cl.SetHome(e.homes[e.shardOf[c]])
	}
}

func (e *parEngine) detach() {
	for _, cl := range e.s.clusters {
		cl.SetHome(e.s)
	}
}

// applyRef drives one scanned reference through its cluster. The
// validation, placement and sampling work of Apply has already been
// done by the scan; what remains is exactly the per-reference machine
// access.
func (e *parEngine) applyRef(refs []trace.Ref, i int32) {
	s := e.s
	r := refs[i]
	pid := int(r.PID)
	c := int(s.pidCluster[pid])
	s.clusters[c].Access(int(s.pidLocal[pid]), r.Addr, r.Op == trace.Write, int(e.home[i]))
}

// runWindow executes one scanned window: the coordinator (the calling
// goroutine, which doubles as shard 0) and one worker goroutine per
// further shard phase through the schedule with spin barriers. Windows
// whose parallel share is too small skip the goroutines entirely and
// run inline — same results, no barrier cost.
func (e *parEngine) runWindow(refs []trace.Ref) (int, error) {
	s := e.s
	var par int32
	for i := range e.segs {
		start := int32(0)
		if i > 0 {
			start = e.segs[i-1].end
		}
		par += e.segs[i].parEnd - start
	}
	// Concurrency is pure scheduling here — results are bit-identical
	// either way — so fall back to the in-order path whenever fan-out
	// cannot pay: a single shard, a mostly-fenced window, or a single
	// execution core (where spin barriers only burn the quantum).
	if e.shards == 1 || int(par) < len(refs)/4 || par < parMinSeg ||
		runtime.GOMAXPROCS(0) == 1 {
		return e.runInline(refs)
	}

	e.phase.Store(0)
	e.aborted.Store(false)
	for w := range e.arrived {
		e.arrived[w].v.Store(0)
	}
	for _, h := range e.homes {
		h.err, h.errAt = nil, 0
	}
	nseg := int32(len(e.segs))
	for w := 1; w < e.shards; w++ {
		go e.worker(refs, int8(w))
	}

	for k := int32(0); k < nseg; k++ {
		seg := e.segs[k]
		start := int32(0)
		if k > 0 {
			start = e.segs[k-1].end
		}
		// The coordinator is shard 0's worker for the parallel part.
		if !e.aborted.Load() {
			for i := start; i < seg.parEnd; i++ {
				if e.shard[i] == 0 {
					e.applyRef(refs, i)
					if e.homes[0].err != nil {
						e.homes[0].noteErr(i)
						break
					}
				}
			}
		}
		e.arrived[0].v.Store(k + 1)
		for w := 1; w < e.shards; w++ {
			e.waitFor(&e.arrived[w].v, k+1)
		}
		// All shards quiesced: the fence run executes in trace order.
		if !e.aborted.Load() {
			for i := seg.parEnd; i < seg.end; i++ {
				e.applyRef(refs, i)
				if s.err != nil || e.aborted.Load() {
					if s.err != nil && e.homes[0].err == nil {
						e.homes[0].err, e.homes[0].errAt = s.err, i
						e.aborted.Store(true)
					}
					break
				}
			}
		}
		if seg.sample && !e.aborted.Load() {
			s.applied += int64(seg.end - start)
			s.nextSample += s.sampleEvery
			s.sampler.Record(s.sampleNow())
		} else if !e.aborted.Load() {
			s.applied += int64(seg.end - start)
		}
		e.post(&e.phase, k+1)
	}
	if e.aborted.Load() {
		return e.mergeErr(len(refs))
	}
	return len(refs), nil
}

// runInline executes a scanned window on the coordinator alone, in
// trace order — the degenerate schedule. Sampler fences reduce to
// ordinary positions.
func (e *parEngine) runInline(refs []trace.Ref) (int, error) {
	s := e.s
	var i int32
	for k := range e.segs {
		seg := e.segs[k]
		start := int32(0)
		if k > 0 {
			start = e.segs[k-1].end
		}
		for i = start; i < seg.end; i++ {
			e.applyRef(refs, i)
			if s.err != nil {
				return int(i), s.err
			}
			for _, h := range e.homes {
				if h.err != nil {
					s.fail(h.err)
					return int(i), s.err
				}
			}
		}
		s.applied += int64(seg.end - start)
		if seg.sample {
			s.nextSample += s.sampleEvery
			s.sampler.Record(s.sampleNow())
		}
	}
	return len(refs), nil
}

// worker is the goroutine of one non-coordinator shard: per segment,
// wait for the coordinator's release, apply this shard's references of
// the parallel part, and report arrival. On abort it keeps arriving
// (without applying) so the barriers drain.
func (e *parEngine) worker(refs []trace.Ref, me int8) {
	h := e.homes[me]
	nseg := int32(len(e.segs))
	for k := int32(0); k < nseg; k++ {
		e.waitFor(&e.phase, k)
		seg := e.segs[k]
		start := int32(0)
		if k > 0 {
			start = e.segs[k-1].end
		}
		if !e.aborted.Load() {
			for i := start; i < seg.parEnd; i++ {
				if e.shard[i] == me {
					e.applyRef(refs, i)
					if h.err != nil {
						h.noteErr(i)
						break
					}
				}
			}
		}
		e.post(&e.arrived[me].v, k+1)
	}
}

// mergeErr picks the earliest shard failure, poisons the machine, and
// reports a best-effort applied count (references at and after the
// failure position may or may not have applied — the machine is
// inconsistent either way, and Snapshot refuses it).
func (e *parEngine) mergeErr(n int) (int, error) {
	at := int32(n)
	var err error
	for _, h := range e.homes {
		if h.err != nil && (err == nil || h.errAt < at) {
			err, at = h.err, h.errAt
		}
	}
	if err == nil {
		err = fmt.Errorf("%w: sharded window aborted without a recorded cause", ErrProtocol)
	}
	e.s.fail(err)
	return int(at), e.s.err
}

// waitFor blocks until v reaches at least want. The barrier is
// adaptive: a bounded spin first, which is the whole wait on a machine
// with a core per shard (segment handoffs resolve in microseconds, and
// parking would cost more than the work being waited for), then a
// condvar park, so an oversubscribed scheduler — more shards than
// cores, the race-gate configuration — pays one futex sleep instead of
// a yield storm.
func (e *parEngine) waitFor(v *atomic.Int32, want int32) {
	for i := 0; i < parSpinBudget; i++ {
		if v.Load() >= want {
			return
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	e.parkers.Add(1)
	e.parkMu.Lock()
	for v.Load() < want {
		e.parkCond.Wait()
	}
	e.parkMu.Unlock()
	e.parkers.Add(-1)
}

// post publishes a new barrier value and wakes parked waiters. The
// broadcast happens under the park mutex: a waiter that saw the old
// value decided to park while holding it, so taking it here means the
// waiter is either fully parked (and gets the broadcast) or re-checks
// v after we stored it — no lost wakeups.
func (e *parEngine) post(v *atomic.Int32, val int32) {
	v.Store(val)
	if e.parkers.Load() > 0 {
		e.parkMu.Lock()
		e.parkCond.Broadcast()
		e.parkMu.Unlock()
	}
}

// shardHome is one shard's view of the network: cluster.HomeService
// with every directory and counter touch serialized under the engine's
// mutex, and the invalidation fan-out list copied out of the
// directory's shared scratch before use. It is used by exactly one
// goroutine at a time (its shard's), so the error slot and scratch
// need no locks of their own.
type shardHome struct {
	s     *System
	e     *parEngine
	inval []int
	err   error
	errAt int32
}

// noteErr pins the window position of the shard's first failure and
// raises the abort flag.
func (h *shardHome) noteErr(i int32) {
	h.errAt = i
	h.e.aborted.Store(true)
}

// fail records the shard's first internal error.
func (h *shardHome) fail(err error) {
	if h.err == nil {
		h.err = err
		h.e.aborted.Store(true)
	}
}

// homeOf resolves a placed page's home without touching the placement
// memo (reads may race only with other reads during a parallel
// segment: the scan placed every page the window references, and a
// victim's page was placed when it was fetched).
func (h *shardHome) homeOf(p memsys.Page) int {
	if hm, ok := h.s.ft.HomeIfPlaced(p); ok {
		return hm
	}
	h.fail(fmt.Errorf("%w: page %d referenced before placement", ErrProtocol, p))
	return 0
}

// HomeOf implements cluster.HomeService.
func (h *shardHome) HomeOf(p memsys.Page) int { return h.homeOf(p) }

// Fetch mirrors System.Fetch (the migration engine is never attached in
// sharded mode) with the directory access under the lock and the
// invalidation list copied before the fan-out runs against clusters.
func (h *shardHome) Fetch(c int, b memsys.Block, write bool) cluster.FetchReply {
	home := h.homeOf(memsys.PageOfBlock(b))
	h.e.dirMu.Lock()
	res := h.s.dirFull.Access(c, b, write, c != home)
	h.inval = append(h.inval[:0], res.Invalidate...)
	h.e.dirMu.Unlock()
	remoteDirty := false
	if write {
		for _, oc := range h.inval {
			if oc == res.FlushOwner {
				remoteDirty = true
			}
			h.invalidate(oc, b)
		}
	} else if res.FlushOwner != directory.NoOwner {
		remoteDirty = true
		h.s.clusters[res.FlushOwner].FlushDirty(b)
	}
	return cluster.FetchReply{
		Class:         res.Class,
		CapacityCount: res.CapacityCount,
		RemoteDirty:   remoteDirty,
	}
}

// Upgrade mirrors System.Upgrade with the same copy-then-fan-out shape.
func (h *shardHome) Upgrade(c int, b memsys.Block) {
	h.e.dirMu.Lock()
	h.inval = append(h.inval[:0], h.s.dirFull.Upgrade(c, b)...)
	h.e.dirMu.Unlock()
	for _, oc := range h.inval {
		h.invalidate(oc, b)
	}
}

// invalidate mirrors System.invalidate; the counter decrement of a
// false invalidation is a directory touch and goes under the lock.
func (h *shardHome) invalidate(oc int, b memsys.Block) {
	if !h.s.clusters[oc].InvalidateBlock(b) && h.s.decrDir {
		h.e.dirMu.Lock()
		h.s.dirFull.DecrementCounter(memsys.PageOfBlock(b), oc)
		h.e.dirMu.Unlock()
	}
}

// WriteBack implements cluster.HomeService.
func (h *shardHome) WriteBack(c int, b memsys.Block) {
	h.e.dirMu.Lock()
	h.s.dirFull.WriteBack(c, b)
	h.e.dirMu.Unlock()
}

// IsExclusive implements cluster.HomeService.
func (h *shardHome) IsExclusive(c int, b memsys.Block) bool {
	h.e.dirMu.Lock()
	v := h.s.dirFull.IsExclusive(c, b)
	h.e.dirMu.Unlock()
	return v
}

// SoleSharer implements cluster.HomeService.
func (h *shardHome) SoleSharer(c int, b memsys.Block) bool {
	h.e.dirMu.Lock()
	v := h.s.dirFull.SoleSharer(c, b)
	h.e.dirMu.Unlock()
	return v
}

// ResetRelocationCounter implements cluster.HomeService.
func (h *shardHome) ResetRelocationCounter(p memsys.Page, c int) {
	h.e.dirMu.Lock()
	h.s.dirFull.ResetCounter(p, c)
	h.e.dirMu.Unlock()
}
