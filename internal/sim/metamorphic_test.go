package sim

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"dsmnc/trace"
)

// The metamorphic properties of a deterministic machine: how a trace is
// delivered must not change where it ends up.
//
//  1. Applying a trace in one shot and applying it with a
//     Snapshot/Restore round-trip wedged at any reference k must yield
//     bit-identical machines (checkpoint transparency).
//  2. Applying references one at a time and applying them in batches of
//     any size must yield bit-identical machines (ApplyBatch is exactly
//     a loop of Apply).
//
// Both are checked with System.Fingerprint — the SHA-256 of the complete
// snapshot — plus the aggregated counters for a readable failure mode.

// splitPoints derives deterministic pseudo-random split positions in
// (0, n), always including the edges 1 and n-1.
func splitPoints(n, count int, seed uint64) []int {
	pts := map[int]bool{1: true, n - 1: true}
	x := seed
	for len(pts) < count+2 {
		x = x*6364136223846793005 + 1442695040888963407
		k := 1 + int((x>>33)%uint64(n-1))
		pts[k] = true
	}
	out := make([]int, 0, len(pts))
	for k := range pts {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// applyAll drives refs through m one at a time, failing the test on any
// error.
func applyAll(t *testing.T, m *System, refs []trace.Ref) {
	t.Helper()
	for i, r := range refs {
		if err := m.Apply(r); err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
	}
}

// fingerprintOf is Fingerprint with test plumbing.
func fingerprintOf(t *testing.T, m *System) [32]byte {
	t.Helper()
	fp, err := m.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// TestMetamorphicSnapshotSplit checks property 1 over every snapshotable
// system shape and a set of seeded random split points: run the whole
// trace one-shot, then re-run it with Snapshot → Restore at reference k,
// and require identical fingerprints and counters.
func TestMetamorphicSnapshotSplit(t *testing.T) {
	const n = 3000
	refs := synthTrace(4, 24, n, 0xfeed)
	for name, mk := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			oneShot, err := New(mk())
			if err != nil {
				t.Fatal(err)
			}
			applyAll(t, oneShot, refs)
			wantFP := fingerprintOf(t, oneShot)
			wantTotals := oneShot.Totals()

			for _, k := range splitPoints(n, 4, uint64(len(name))*0x9e3779b97f4a7c15) {
				head, err := New(mk())
				if err != nil {
					t.Fatal(err)
				}
				applyAll(t, head, refs[:k])
				var buf bytes.Buffer
				if err := head.Snapshot(&buf); err != nil {
					t.Fatalf("split %d: snapshot: %v", k, err)
				}
				tail, err := Restore(&buf, mk())
				if err != nil {
					t.Fatalf("split %d: restore: %v", k, err)
				}
				if got := tail.RefsApplied(); got != int64(k) {
					t.Fatalf("split %d: restored position %d", k, got)
				}
				applyAll(t, tail, refs[k:])
				if got := fingerprintOf(t, tail); got != wantFP {
					gotTotals := tail.Totals()
					if !reflect.DeepEqual(gotTotals, wantTotals) {
						t.Fatalf("split %d: counters diverged:\none-shot %+v\nresumed  %+v", k, wantTotals, gotTotals)
					}
					t.Fatalf("split %d: fingerprints differ with identical counters (non-counter state diverged)", k)
				}
			}
		})
	}
}

// TestMetamorphicApplyBatch checks property 2: delivering the trace in
// batches of assorted sizes (including sizes that straddle the internal
// fast path's poll boundaries) lands the machine in the same state as
// one-at-a-time delivery. Check is left off so the batched run exercises
// the hoisted fast loop.
func TestMetamorphicApplyBatch(t *testing.T) {
	const n = 3000
	refs := synthTrace(4, 24, n, 0xbeef)
	for name, mk := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := mk()
			cfg.Check = false
			single, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			applyAll(t, single, refs)
			wantFP := fingerprintOf(t, single)

			for _, size := range []int{1, 3, 7, 64, 1023, 1024, n} {
				cfg := mk()
				cfg.Check = false
				batched, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i += size {
					end := i + size
					if end > n {
						end = n
					}
					done, err := batched.ApplyBatch(refs[i:end])
					if err != nil {
						t.Fatalf("size %d: batch at %d: %v", size, i, err)
					}
					if done != end-i {
						t.Fatalf("size %d: batch at %d applied %d of %d", size, i, done, end-i)
					}
				}
				if got := batched.RefsApplied(); got != int64(n) {
					t.Fatalf("size %d: applied %d refs", size, got)
				}
				if got := fingerprintOf(t, batched); got != wantFP {
					t.Fatalf("size %d: fingerprint diverged from one-at-a-time delivery", size)
				}
			}
		})
	}
}
