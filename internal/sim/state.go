// Checkpoint/restore of a whole simulated machine. Snapshot serializes
// every piece of mutable state — caches, network caches, directory,
// page caches, migration engine, placement map, event counters and the
// trace position — through internal/snapshot; Restore rebuilds a
// machine from the same Config and loads the state back in place, so a
// resumed run is bit-identical to an uninterrupted one.

package sim

import (
	"crypto/sha256"
	"fmt"
	"io"

	"dsmnc/internal/directory"
	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

// Machine-level snapshot section tag and placement-policy kinds.
const (
	tagMachine = 0x0C

	placeFirstTouch = 1
	placeRoundRobin = 2
	placeFixed      = 3
)

// Snapshot serializes the machine's complete state to w. A machine with
// a sticky internal error refuses to snapshot (resuming a corrupted run
// would launder the corruption); the error is returned.
func (s *System) Snapshot(w io.Writer) error {
	if s.err != nil {
		return s.err
	}
	sw := snapshot.NewWriter(w)
	sw.Section(tagMachine)
	sw.U32(uint32(s.geo.Clusters))
	sw.U32(uint32(s.geo.ProcsPerCluster))
	sw.I64(s.applied)
	if err := s.savePlacement(sw); err != nil {
		return err
	}
	if err := directory.SaveProtocol(sw, s.dir); err != nil {
		return err
	}
	sw.Bool(s.mig != nil)
	if s.mig != nil {
		s.mig.SaveState(sw)
	}
	for _, cl := range s.clusters {
		if err := cl.SaveState(sw); err != nil {
			return err
		}
	}
	sw.Bool(s.sampler != nil)
	if s.sampler != nil {
		s.sampler.SaveState(sw)
		sw.I64(s.nextSample)
	}
	return sw.Close()
}

// Fingerprint returns the SHA-256 digest of the machine's complete
// snapshot. Two machines in identical observable state produce the same
// fingerprint, which turns whole-machine equivalence checks (the
// metamorphic tests' one-shot vs checkpoint-resumed runs) into a single
// comparison. Like Snapshot, it refuses a machine carrying a sticky
// internal error.
func (s *System) Fingerprint() ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := s.Snapshot(h); err != nil {
		return [sha256.Size]byte{}, err
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d, nil
}

// Restore builds a machine from cfg and loads the snapshot read from r
// into it. cfg must describe the same system the snapshot was taken
// from (same geometry, cache sizes, NC organization, directory kind,
// policies); any mismatch, corruption or truncation yields an
// ErrBadSnapshot-wrapped error and no machine.
func Restore(r io.Reader, cfg Config) (*System, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sr := snapshot.NewReader(r)
	sr.Section(tagMachine)
	clusters := int(sr.U32())
	procs := int(sr.U32())
	applied := sr.I64()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if clusters != s.geo.Clusters || procs != s.geo.ProcsPerCluster {
		sr.Failf("snapshot geometry %dx%d, config %dx%d",
			clusters, procs, s.geo.Clusters, s.geo.ProcsPerCluster)
		return nil, sr.Err()
	}
	if applied < 0 {
		sr.Failf("negative reference count %d", applied)
		return nil, sr.Err()
	}
	if err := s.loadPlacement(sr); err != nil {
		return nil, err
	}
	if err := directory.LoadProtocol(sr, s.dir); err != nil {
		return nil, err
	}
	hasMig := sr.Bool()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if hasMig != (s.mig != nil) {
		sr.Failf("snapshot migration engine %t, configured %t", hasMig, s.mig != nil)
		return nil, sr.Err()
	}
	if s.mig != nil {
		s.mig.LoadState(sr, s.geo.Clusters)
	}
	for _, cl := range s.clusters {
		if err := cl.LoadState(sr); err != nil {
			return nil, err
		}
		if err := sr.Err(); err != nil {
			return nil, err
		}
	}
	hasSampler := sr.Bool()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if hasSampler != (s.sampler != nil) {
		sr.Failf("snapshot sampler %t, configured %t", hasSampler, s.sampler != nil)
		return nil, sr.Err()
	}
	if s.sampler != nil {
		s.sampler.LoadState(sr)
		nextSample := sr.I64()
		if err := sr.Err(); err != nil {
			return nil, err
		}
		if nextSample < applied {
			sr.Failf("next sample %d already behind reference count %d", nextSample, applied)
			return nil, sr.Err()
		}
		s.nextSample = nextSample
	}
	if err := sr.Finish(); err != nil {
		return nil, err
	}
	s.applied = applied
	return s, nil
}

// savePlacement serializes the placement policy. Stateless policies
// write only their kind tag; an unknown policy type cannot be resumed
// and is a configuration error.
func (s *System) savePlacement(w *snapshot.Writer) error {
	switch p := s.place.(type) {
	case *memsys.FirstTouch:
		w.U8(placeFirstTouch)
		p.SaveState(w)
	case memsys.RoundRobin:
		w.U8(placeRoundRobin)
	case memsys.Fixed:
		w.U8(placeFixed)
	default:
		return fmt.Errorf("sim: placement policy %T is not snapshotable", s.place)
	}
	return nil
}

func (s *System) loadPlacement(r *snapshot.Reader) error {
	var want uint8
	switch s.place.(type) {
	case *memsys.FirstTouch:
		want = placeFirstTouch
	case memsys.RoundRobin:
		want = placeRoundRobin
	case memsys.Fixed:
		want = placeFixed
	default:
		return fmt.Errorf("sim: placement policy %T is not snapshotable", s.place)
	}
	kind := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if kind != want {
		r.Failf("snapshot placement kind %d, configured %d", kind, want)
		return r.Err()
	}
	if ft, ok := s.place.(*memsys.FirstTouch); ok {
		ft.LoadState(r, s.geo.Clusters)
	}
	return r.Err()
}
