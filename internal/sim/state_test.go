package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/internal/migration"
	"dsmnc/internal/pagecache"
	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
	"dsmnc/telemetry"
	"dsmnc/trace"
)

// synthTrace generates a deterministic pseudo-random shared-reference
// stream: enough pages and processors to exercise sharing, invalidation,
// victimization and relocation against tiny caches.
func synthTrace(procs, pages, n int, seed uint64) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		pid := int32((x >> 33) % uint64(procs))
		page := (x >> 21) % uint64(pages)
		blk := (x >> 10) % uint64(memsys.BlocksPerPage)
		op := trace.Read
		if x&3 == 0 {
			op = trace.Write
		}
		a := memsys.Addr(page)*memsys.PageBytes + memsys.Addr(blk)*memsys.BlockBytes
		refs = append(refs, trace.Ref{PID: pid, Op: op, Addr: a})
	}
	return refs
}

// snapshotConfigs covers every snapshotable shape: each NC
// organization, both directory kinds, page caches under both counter
// styles, and the migration engine.
func snapshotConfigs() map[string]func() Config {
	base := func() Config {
		return Config{
			Geometry: memsys.Geometry{Clusters: 2, ProcsPerCluster: 2},
			L1:       cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
			Check:    true,
		}
	}
	ncBytes := 8 * memsys.BlockBytes
	return map[string]func() Config{
		"base": base,
		"vb": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{Bytes: ncBytes, Ways: 2})
			}
			return cfg
		},
		"vp": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{Bytes: ncBytes, Ways: 4, Indexing: cache.ByPage})
			}
			return cfg
		},
		"vxp": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{
					Bytes: ncBytes, Ways: 4, Indexing: cache.ByPage, SetCounters: true,
				})
			}
			cfg.NewPC = func() (*pagecache.PageCache, error) {
				return pagecache.New(3, pagecache.NewAdaptivePolicy(2))
			}
			cfg.Counters = cluster.CountersNCSet
			cfg.DecrementCounters = true
			return cfg
		},
		"ncp": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) { return core.NewRelaxed(ncBytes, 2) }
			cfg.NewPC = func() (*pagecache.PageCache, error) {
				return pagecache.New(3, pagecache.NewFixedPolicy(2))
			}
			cfg.Counters = cluster.CountersDirectory
			return cfg
		},
		"ncd": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) { return core.NewInclusive(ncBytes, 2) }
			return cfg
		},
		"ncs": func() Config {
			cfg := base()
			cfg.NewNC = func() (core.NC, error) { return core.NewInfinite(0), nil }
			return cfg
		},
		"limited-dir": func() Config {
			cfg := base()
			cfg.NewDirectory = func(clusters int) (directory.Protocol, error) {
				return directory.NewLimited(clusters, 1)
			}
			return cfg
		},
		"origin": func() Config {
			cfg := base()
			cfg.Migration = &migration.Config{ReplicateThreshold: 4, MigrateThreshold: 8}
			return cfg
		},
	}
}

// TestSnapshotRoundTripEquivalence is the tentpole guarantee: run k
// refs, snapshot, restore, run the rest — and land on bit-identical
// counters AND a bit-identical re-snapshot versus the uninterrupted
// run, for every system shape.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	refs := synthTrace(4, 24, 4000, 17)
	for name, mk := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			full := mustNew(mk())
			for i, r := range refs {
				if err := full.Apply(r); err != nil {
					t.Fatalf("full run ref %d: %v", i, err)
				}
			}
			var want bytes.Buffer
			if err := full.Snapshot(&want); err != nil {
				t.Fatalf("full snapshot: %v", err)
			}

			for _, k := range []int{0, 1, 1337, len(refs)} {
				part := mustNew(mk())
				for _, r := range refs[:k] {
					if err := part.Apply(r); err != nil {
						t.Fatalf("k=%d prefix: %v", k, err)
					}
				}
				var mid bytes.Buffer
				if err := part.Snapshot(&mid); err != nil {
					t.Fatalf("k=%d snapshot: %v", k, err)
				}
				resumed, err := Restore(bytes.NewReader(mid.Bytes()), mk())
				if err != nil {
					t.Fatalf("k=%d restore: %v", k, err)
				}
				if got := resumed.RefsApplied(); got != int64(k) {
					t.Fatalf("k=%d: RefsApplied = %d", k, got)
				}
				for _, r := range refs[k:] {
					if err := resumed.Apply(r); err != nil {
						t.Fatalf("k=%d resumed run: %v", k, err)
					}
				}
				if resumed.Totals() != full.Totals() {
					t.Fatalf("k=%d: counters diverge:\nresumed %+v\nfull    %+v",
						k, resumed.Totals(), full.Totals())
				}
				var got bytes.Buffer
				if err := resumed.Snapshot(&got); err != nil {
					t.Fatalf("k=%d re-snapshot: %v", k, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("k=%d: machine state diverges from uninterrupted run (snapshot bytes differ)", k)
				}
			}
		})
	}
}

// machineSnapshot runs a small workload on a vxp-flavoured machine and
// returns its snapshot bytes plus the config that produced them.
func machineSnapshot(t testing.TB) ([]byte, func() Config) {
	t.Helper()
	mk := snapshotConfigs()["vxp"]
	s := mustNew(mk())
	for _, r := range synthTrace(4, 16, 1200, 5) {
		if err := s.Apply(r); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes(), mk
}

func TestRestoreRejectsCorruption(t *testing.T) {
	raw, mk := machineSnapshot(t)

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, 4, 6, 20, len(raw) / 2, len(raw) - 1} {
			if _, err := Restore(bytes.NewReader(raw[:n]), mk()); !errors.Is(err, snapshot.ErrBadSnapshot) {
				t.Fatalf("prefix %d: err = %v, want ErrBadSnapshot", n, err)
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		step := len(raw)/64 + 1
		for i := 0; i < len(raw); i += step {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 0x40
			if _, err := Restore(bytes.NewReader(mut), mk()); !errors.Is(err, snapshot.ErrBadSnapshot) {
				t.Fatalf("flip at %d: err = %v, want ErrBadSnapshot", i, err)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0xAA)
		if _, err := Restore(bytes.NewReader(mut), mk()); !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
}

// TestRestoreRejectsConfigMismatch: a snapshot restored into a
// different system organization must fail with the sentinel, never
// silently misread state.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	raw, _ := machineSnapshot(t)
	cfgs := snapshotConfigs()
	for _, other := range []string{"base", "vb", "ncp", "ncd", "ncs", "limited-dir", "origin"} {
		if _, err := Restore(bytes.NewReader(raw), cfgs[other]()); !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("restore vxp snapshot into %s: err = %v, want ErrBadSnapshot", other, err)
		}
	}
	mk := cfgs["vxp"]
	big := mk()
	big.Geometry = memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	if _, err := Restore(bytes.NewReader(raw), big); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("restore into larger geometry: err = %v, want ErrBadSnapshot", err)
	}
}

// TestSnapshotRefusedWhileBroken: a machine with a sticky protocol
// error must not checkpoint.
func TestSnapshotRefusedWhileBroken(t *testing.T) {
	s := mustNew(testConfig())
	s.fail(fmt.Errorf("%w: induced", ErrProtocol))
	if err := s.Snapshot(&bytes.Buffer{}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Snapshot on broken machine: err = %v, want ErrProtocol", err)
	}
}

// FuzzSnapshot mirrors trace.FuzzReader for the snapshot decoder:
// arbitrary bytes must land on ErrBadSnapshot (or restore a machine
// that is actually coherent), and never panic.
func FuzzSnapshot(f *testing.F) {
	raw, mk := machineSnapshot(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:7])
	f.Add([]byte{})
	f.Add([]byte("DSNP\x01\x00"))
	f.Add([]byte("DSNT\x01\x00\x0c"))
	for _, i := range []int{5, 10, len(raw) / 3, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		f.Add(mut)
	}
	probe := synthTrace(4, 16, 64, 9)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Restore(bytes.NewReader(data), mk())
		if err != nil {
			if !errors.Is(err, snapshot.ErrBadSnapshot) {
				t.Fatalf("non-sentinel restore error: %v", err)
			}
			return
		}
		// A restore that passed the checksum must be a working, coherent
		// machine: drive it (checker attached) and sweep the invariants.
		for _, r := range probe {
			if err := s.Apply(r); err != nil {
				t.Fatalf("restored machine broken on first contact: %v", err)
			}
		}
	})
}

// TestSamplerSnapshotRoundTrip checks the telemetry tentpole: a
// mid-cell checkpoint taken *between* samples restores a bit-identical
// time series across NC organizations — same retained samples, same
// later samples, same re-snapshot bytes — and the final flushed sample
// reproduces the machine's exact end-of-run counters.
func TestSamplerSnapshotRoundTrip(t *testing.T) {
	const every = 257 // coprime with the checkpoint position: k=1337 falls between samples
	refs := synthTrace(4, 24, 4000, 23)
	cfgs := snapshotConfigs()
	for _, name := range []string{"base", "ncp", "vb", "vp", "vxp"} {
		mk := cfgs[name]
		t.Run(name, func(t *testing.T) {
			withSampler := func() Config {
				cfg := mk()
				cfg.Sampler = telemetry.NewSampler(every, 64)
				return cfg
			}
			fullCfg := withSampler()
			full := mustNew(fullCfg)
			for i, r := range refs {
				if err := full.Apply(r); err != nil {
					t.Fatalf("full run ref %d: %v", i, err)
				}
			}
			full.FlushSample()
			var want bytes.Buffer
			if err := full.Snapshot(&want); err != nil {
				t.Fatalf("full snapshot: %v", err)
			}

			const k = 1337
			partCfg := withSampler()
			part := mustNew(partCfg)
			for _, r := range refs[:k] {
				if err := part.Apply(r); err != nil {
					t.Fatalf("prefix: %v", err)
				}
			}
			var mid bytes.Buffer
			if err := part.Snapshot(&mid); err != nil {
				t.Fatalf("mid snapshot: %v", err)
			}

			// Restore into a FRESH sampler: the series must come back
			// from the snapshot alone.
			resumedCfg := withSampler()
			resumed, err := Restore(bytes.NewReader(mid.Bytes()), resumedCfg)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if !reflect.DeepEqual(resumedCfg.Sampler.Samples(), partCfg.Sampler.Samples()) {
				t.Fatalf("restored series differs from checkpointed series")
			}
			for _, r := range refs[k:] {
				if err := resumed.Apply(r); err != nil {
					t.Fatalf("resumed run: %v", err)
				}
			}
			resumed.FlushSample()
			if !reflect.DeepEqual(resumedCfg.Sampler.Samples(), fullCfg.Sampler.Samples()) {
				t.Fatalf("resumed series diverges from uninterrupted series:\nresumed %+v\nfull    %+v",
					resumedCfg.Sampler.Samples(), fullCfg.Sampler.Samples())
			}
			var got bytes.Buffer
			if err := resumed.Snapshot(&got); err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("machine+sampler state diverges from uninterrupted run")
			}

			// The flushed final sample must equal the end-of-run stats
			// exactly (the -sample-out acceptance criterion).
			last, ok := fullCfg.Sampler.Latest()
			if !ok {
				t.Fatal("no samples recorded")
			}
			tot := full.Totals()
			if last.Refs != full.RefsApplied() ||
				last.Reads != tot.Refs.Read || last.Writes != tot.Refs.Write ||
				last.L1Hits != tot.L1Hits.Total() || last.NCHits != tot.NCHits.Total() ||
				last.RemoteMisses != tot.Remote().Total() ||
				last.NCInserts != tot.NCInserts || last.Relocations != tot.Relocations ||
				last.WritebacksHome != tot.WritebacksHome {
				t.Fatalf("final sample does not equal end-of-run counters:\nsample %+v\ntotals %+v", last, tot)
			}
		})
	}
}

// TestRestoreRejectsSamplerMismatch: a snapshot taken with a sampler
// cannot restore into a machine without one (and vice versa) — the
// series would silently vanish.
func TestRestoreRejectsSamplerMismatch(t *testing.T) {
	mk := snapshotConfigs()["base"]
	cfg := mk()
	cfg.Sampler = telemetry.NewSampler(100, 8)
	s := mustNew(cfg)
	for _, r := range synthTrace(4, 16, 500, 3) {
		if err := s.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes()), mk()); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("restore without sampler: err = %v, want ErrBadSnapshot", err)
	}
	noSampler := mustNew(mk())
	var plain bytes.Buffer
	if err := noSampler.Snapshot(&plain); err != nil {
		t.Fatal(err)
	}
	withCfg := mk()
	withCfg.Sampler = telemetry.NewSampler(100, 8)
	if _, err := Restore(bytes.NewReader(plain.Bytes()), withCfg); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("restore with unexpected sampler: err = %v, want ErrBadSnapshot", err)
	}
}
