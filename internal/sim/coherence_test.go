package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsmnc/internal/cache"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/migration"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/stats"
	"dsmnc/trace"
)

// systemsUnderTest builds one instance of every system organization on a
// tiny machine, for cross-cutting invariant checks.
func systemsUnderTest() map[string]*System {
	geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	l1 := cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2}
	mk := func(nc func() (core.NC, error), pc bool, mode cluster.CounterMode) *System {
		cfg := Config{Geometry: geo, L1: l1, NewNC: nc, Counters: mode}
		if pc {
			cfg.NewPC = func() (*pagecache.PageCache, error) {
				return pagecache.New(4, pagecache.NewAdaptivePolicy(4))
			}
		}
		return mustNew(cfg)
	}
	victim := func(idx cache.Indexing, counters bool) func() (core.NC, error) {
		return func() (core.NC, error) {
			return core.NewVictim(core.VictimConfig{
				Bytes: 8 * memsys.BlockBytes, Ways: 4, Indexing: idx, SetCounters: counters,
			})
		}
	}
	return map[string]*System{
		"base": mk(nil, false, cluster.CountersNone),
		"nc":   mk(func() (core.NC, error) { return core.NewRelaxed(8*memsys.BlockBytes, 4) }, false, cluster.CountersNone),
		"vb":   mk(victim(cache.ByBlock, false), false, cluster.CountersNone),
		"vp":   mk(victim(cache.ByPage, false), false, cluster.CountersNone),
		"NCD":  mk(func() (core.NC, error) { return core.NewInclusive(32*memsys.BlockBytes, 4) }, false, cluster.CountersNone),
		"NCS":  mk(func() (core.NC, error) { return core.NewInfinite(stats.NCTechSRAM), nil }, false, cluster.CountersNone),
		"vbp":  mk(victim(cache.ByBlock, false), true, cluster.CountersDirectory),
		"vxp":  mk(victim(cache.ByPage, true), true, cluster.CountersNCSet),
	}
}

// randomTrace produces a mixed read/write trace over a handful of pages
// so that sharing, invalidations, victimizations and relocations all
// occur.
func randomTrace(seed int64, n int, procs int) []trace.Ref {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, n)
	for i := range refs {
		page := rng.Intn(8)
		blk := rng.Intn(16)
		op := trace.Read
		if rng.Intn(4) == 0 {
			op = trace.Write
		}
		refs[i] = trace.Ref{
			PID:  int32(rng.Intn(procs)),
			Op:   op,
			Addr: memsys.Addr(page)*memsys.PageBytes + memsys.Addr(blk)*memsys.BlockBytes,
		}
	}
	return refs
}

// TestCoherenceUnderRandomTraffic drives random sharing traffic through
// every organization and checks the global single-writer invariant and
// event conservation afterwards.
func TestCoherenceUnderRandomTraffic(t *testing.T) {
	var blocks []memsys.Block
	for page := 0; page < 8; page++ {
		for blk := 0; blk < 16; blk++ {
			blocks = append(blocks, memsys.FirstBlock(memsys.Page(page))+memsys.Block(blk))
		}
	}
	for name, s := range systemsUnderTest() {
		refs := randomTrace(99, 20000, s.Geometry().Procs())
		for _, r := range refs {
			s.Apply(r)
		}
		if err := s.CheckCoherence(blocks); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		tot := s.Totals()
		satisfied := tot.L1Hits.Total() + tot.C2C.Total() + tot.LocalC2C.Total() +
			tot.NCHits.Total() + tot.PCHits.Total() + tot.LocalMem.Total() + tot.Remote().Total()
		if satisfied != tot.Refs.Total() {
			t.Errorf("%s: %d refs but %d satisfied", name, tot.Refs.Total(), satisfied)
		}
		if tot.Refs.Total() != int64(len(refs)) {
			t.Errorf("%s: lost references", name)
		}
	}
}

// TestDirtyOwnerAlwaysHoldsData is a property test: after any random
// trace, whoever the directory says owns a dirty block can actually
// produce it.
func TestDirtyOwnerAlwaysHoldsData(t *testing.T) {
	f := func(seed int64, nOps uint16) bool {
		s := systemsUnderTest()["vxp"]
		// Fresh system per run.
		geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
		s = mustNew(Config{
			Geometry: geo,
			L1:       cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2},
			NewNC: func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{
					Bytes: 8 * memsys.BlockBytes, Ways: 4,
					Indexing: cache.ByPage, SetCounters: true,
				})
			},
			NewPC: func() (*pagecache.PageCache, error) {
				return pagecache.New(3, pagecache.NewAdaptivePolicy(4))
			},
			Counters: cluster.CountersNCSet,
		})
		n := int(nOps%2000) + 100
		for _, r := range randomTrace(seed, n, geo.Procs()) {
			s.Apply(r)
		}
		for page := 0; page < 8; page++ {
			for blk := 0; blk < 16; blk++ {
				b := memsys.FirstBlock(memsys.Page(page)) + memsys.Block(blk)
				if err := s.CheckCoherence([]memsys.Block{b}); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMOESISystemCoherence runs the random traffic under the O-state
// protocol option.
func TestMOESISystemCoherence(t *testing.T) {
	geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	s := mustNew(Config{
		Geometry: geo,
		L1:       cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2},
		NewNC: func() (core.NC, error) {
			return core.NewVictim(core.VictimConfig{Bytes: 8 * memsys.BlockBytes, Ways: 4})
		},
		MOESI: true,
	})
	for _, r := range randomTrace(7, 20000, geo.Procs()) {
		s.Apply(r)
	}
	var blocks []memsys.Block
	for page := 0; page < 8; page++ {
		for blk := 0; blk < 16; blk++ {
			blocks = append(blocks, memsys.FirstBlock(memsys.Page(page))+memsys.Block(blk))
		}
	}
	if err := s.CheckCoherence(blocks); err != nil {
		t.Fatal(err)
	}
	// MOESI must reduce (or match) downgrade write-back traffic versus
	// MESI on identical input.
	mesi := mustNew(Config{
		Geometry: geo,
		L1:       cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2},
		NewNC: func() (core.NC, error) {
			return core.NewVictim(core.VictimConfig{Bytes: 8 * memsys.BlockBytes, Ways: 4})
		},
	})
	for _, r := range randomTrace(7, 20000, geo.Procs()) {
		mesi.Apply(r)
	}
	mo, me := s.Totals(), mesi.Totals()
	if mo.DowngradeWB != 0 {
		t.Errorf("MOESI recorded %d downgrade write-backs, want 0", mo.DowngradeWB)
	}
	if me.DowngradeWB == 0 {
		t.Log("random trace produced no downgrades; MESI comparison vacuous")
	}
}

// TestDecrementedSystemCoherence runs random traffic with the §3.4
// counter-decrement refinement enabled in both counter modes.
func TestDecrementedSystemCoherence(t *testing.T) {
	geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	for _, mode := range []cluster.CounterMode{cluster.CountersDirectory, cluster.CountersNCSet} {
		idx := cache.ByBlock
		if mode == cluster.CountersNCSet {
			idx = cache.ByPage
		}
		s := mustNew(Config{
			Geometry: geo,
			L1:       cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2},
			NewNC: func() (core.NC, error) {
				return core.NewVictim(core.VictimConfig{
					Bytes: 8 * memsys.BlockBytes, Ways: 4,
					Indexing: idx, SetCounters: mode == cluster.CountersNCSet,
				})
			},
			NewPC: func() (*pagecache.PageCache, error) {
				return pagecache.New(4, pagecache.NewFixedPolicy(8))
			},
			Counters:          mode,
			DecrementCounters: true,
		})
		for _, r := range randomTrace(13, 15000, geo.Procs()) {
			s.Apply(r)
		}
		tot := s.Totals()
		if tot.Refs.Total() != 15000 {
			t.Errorf("mode %d: lost refs", mode)
		}
	}
}

// TestMigrationSystemCoherence drives the random traffic through an
// Origin-style migration/replication system and checks that replicated
// reads stay coherent with later writes.
func TestMigrationSystemCoherence(t *testing.T) {
	geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	mc := migration.Config{ReplicateThreshold: 4, MigrateThreshold: 8}
	s := mustNew(Config{
		Geometry:  geo,
		L1:        cache.Config{Bytes: 8 * memsys.BlockBytes, Ways: 2},
		Migration: &mc,
	})
	for _, r := range randomTrace(21, 25000, geo.Procs()) {
		s.Apply(r)
	}
	var blocks []memsys.Block
	for page := 0; page < 8; page++ {
		for blk := 0; blk < 16; blk++ {
			blocks = append(blocks, memsys.FirstBlock(memsys.Page(page))+memsys.Block(blk))
		}
	}
	if err := s.CheckCoherence(blocks); err != nil {
		t.Fatal(err)
	}
	tot := s.Totals()
	satisfied := tot.L1Hits.Total() + tot.C2C.Total() + tot.LocalC2C.Total() +
		tot.NCHits.Total() + tot.PCHits.Total() + tot.LocalMem.Total() + tot.Remote().Total()
	if satisfied != tot.Refs.Total() {
		t.Fatalf("conservation broken: %d refs, %d satisfied", tot.Refs.Total(), satisfied)
	}
}

// TestReplicationServesLocalReads checks the full replica life cycle:
// grant after repeated remote reads, local service, collapse on write.
func TestReplicationServesLocalReads(t *testing.T) {
	geo := memsys.Geometry{Clusters: 2, ProcsPerCluster: 2}
	mc := migration.Config{ReplicateThreshold: 3, MigrateThreshold: 1000}
	s := mustNew(Config{
		Geometry:  geo,
		L1:        cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		Migration: &mc,
	})
	a := func(blk int) memsys.Addr { return memsys.Addr(blk) * memsys.BlockBytes }
	s.Apply(trace.Ref{PID: 0, Op: trace.Write, Addr: a(0)}) // home page 0 on cluster 0... write
	// Cluster 1 reads different blocks of page 0 repeatedly (each a
	// remote miss) until the page replicates.
	for i := 0; i < 4; i++ {
		s.Apply(trace.Ref{PID: 2, Op: trace.Read, Addr: a(i + 1)})
	}
	cl1 := s.Cluster(1)
	remoteBefore := cl1.C.Remote().Read
	// A fresh block of the replicated page must now be served locally.
	s.Apply(trace.Ref{PID: 2, Op: trace.Read, Addr: a(10)})
	if cl1.C.Remote().Read != remoteBefore {
		t.Fatal("replicated page read went remote")
	}
	if cl1.C.ReplicaHits.Read == 0 {
		t.Fatal("replica hit not counted")
	}
	// A write by the home cluster collapses the replica; cluster 1 reads
	// go remote again (until the next grant).
	s.Apply(trace.Ref{PID: 0, Op: trace.Write, Addr: a(10)})
	if cl1.C.ReplicaFlushes == 0 {
		t.Fatal("collapse did not flush the replica holder")
	}
	remoteBefore = cl1.C.Remote().Read
	hitsBefore := cl1.C.ReplicaHits.Read
	s.Apply(trace.Ref{PID: 2, Op: trace.Read, Addr: a(11)})
	if cl1.C.ReplicaHits.Read != hitsBefore {
		t.Fatal("collapsed replica still serving reads")
	}
	if cl1.C.Remote().Read == remoteBefore {
		t.Fatal("post-collapse read did not go remote")
	}
}
