package pagecache

import (
	"testing"
	"testing/quick"

	"dsmnc/memsys"
)

// mustNew builds a page cache or panics (test files only).
func mustNew(frames int, pol *Policy) *PageCache {
	pc, err := New(frames, pol)
	if err != nil {
		panic(err)
	}
	return pc
}

func newPC(frames int) *PageCache { return mustNew(frames, NewFixedPolicy(32)) }

func blockOf(p memsys.Page, i int) memsys.Block {
	return memsys.FirstBlock(p) + memsys.Block(i)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, NewFixedPolicy(1)); err == nil {
		t.Error("New accepted zero frames")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("New accepted a nil policy")
	}
}

func TestLookupInstallInvalidate(t *testing.T) {
	pc := newPC(2)
	b := blockOf(5, 3)
	if st := pc.Lookup(b); st.Mapped || st.Valid || st.Dirty {
		t.Fatalf("empty PC state = %+v", st)
	}
	// Install into an unmapped page is a no-op.
	pc.Install(b, false)
	if st := pc.Lookup(b); st.Mapped {
		t.Fatal("install mapped a page")
	}
	pc.Relocate(5)
	if st := pc.Lookup(b); !st.Mapped || st.Valid {
		t.Fatalf("mapped page state = %+v (blocks start invalid)", st)
	}
	pc.Install(b, false)
	if st := pc.Lookup(b); !st.Valid || st.Dirty {
		t.Fatalf("installed state = %+v", st)
	}
	pc.Install(b, true)
	if st := pc.Lookup(b); !st.Dirty {
		t.Fatal("dirty install not recorded")
	}
	// A clean reinstall clears dirty (fresh copy fetched from home).
	pc.Install(b, false)
	if st := pc.Lookup(b); st.Dirty {
		t.Fatal("clean reinstall left dirty bit")
	}
	if !pc.WriteDirty(b) {
		t.Fatal("WriteDirty refused mapped block")
	}
	if dirty := pc.Invalidate(b); !dirty {
		t.Fatal("Invalidate lost dirty status")
	}
	if st := pc.Lookup(b); st.Valid {
		t.Fatal("invalidated block still valid")
	}
	if pc.Invalidate(blockOf(99, 0)) {
		t.Fatal("Invalidate of unmapped block reported dirty")
	}
	if pc.WriteDirty(blockOf(99, 0)) {
		t.Fatal("WriteDirty accepted unmapped block")
	}
}

func TestRelocateIdempotent(t *testing.T) {
	pc := newPC(2)
	pc.Relocate(1)
	pc.Install(blockOf(1, 0), true)
	ev, raised := pc.Relocate(1)
	if ev != nil || raised {
		t.Fatal("re-relocating a mapped page did something")
	}
	if st := pc.Lookup(blockOf(1, 0)); !st.Valid {
		t.Fatal("re-relocation cleared the frame")
	}
}

func TestLRMReplacement(t *testing.T) {
	pc := newPC(2)
	pc.Relocate(1)
	pc.Relocate(2)
	// Page 1 misses again (install refreshes recency); page 2 only hits.
	pc.Install(blockOf(2, 0), false)
	pc.Install(blockOf(1, 0), false)
	pc.RecordHit(blockOf(2, 0)) // hits must NOT refresh LRM recency
	pc.RecordHit(blockOf(2, 0))
	ev, _ := pc.Relocate(3)
	if ev == nil || ev.Page != 2 {
		t.Fatalf("evicted %+v, want page 2 (least recently missed)", ev)
	}
	if ev.Hits != 2 {
		t.Fatalf("evicted hits = %d, want 2", ev.Hits)
	}
	if pc.Mapped() != 2 {
		t.Fatalf("Mapped = %d, want 2", pc.Mapped())
	}
}

func TestEvictionFlushesDirtyBlocks(t *testing.T) {
	pc := newPC(1)
	pc.Relocate(4)
	pc.Install(blockOf(4, 1), true)
	pc.WriteDirty(blockOf(4, 7))
	pc.Install(blockOf(4, 9), false)
	ev, _ := pc.Relocate(5)
	if ev == nil || ev.Page != 4 {
		t.Fatalf("evicted %+v", ev)
	}
	if len(ev.Dirty) != 2 {
		t.Fatalf("dirty flush = %v, want blocks 1 and 7 of page 4", ev.Dirty)
	}
	want := map[memsys.Block]bool{blockOf(4, 1): true, blockOf(4, 7): true}
	for _, b := range ev.Dirty {
		if !want[b] {
			t.Fatalf("unexpected dirty block %d", b)
		}
	}
}

func TestUnmap(t *testing.T) {
	pc := newPC(2)
	pc.Relocate(3)
	pc.WriteDirty(blockOf(3, 2))
	ev := pc.Unmap(3)
	if ev == nil || ev.Page != 3 || len(ev.Dirty) != 1 {
		t.Fatalf("Unmap = %+v", ev)
	}
	if pc.Unmap(3) != nil {
		t.Fatal("double unmap returned a record")
	}
	if pc.Mapped() != 0 {
		t.Fatal("Unmap left the page mapped")
	}
}

func TestMappedPages(t *testing.T) {
	pc := newPC(3)
	pc.Relocate(7)
	pc.Relocate(9)
	got := pc.MappedPages()
	if len(got) != 2 {
		t.Fatalf("MappedPages = %v", got)
	}
}

func TestFixedPolicyNeverRaises(t *testing.T) {
	pc := mustNew(1, NewFixedPolicy(32))
	for p := memsys.Page(0); p < 100; p++ {
		if _, raised := pc.Relocate(p); raised {
			t.Fatal("fixed policy raised the threshold")
		}
	}
	if pc.Policy().Threshold() != 32 {
		t.Fatal("fixed threshold drifted")
	}
	if pc.Policy().Adaptive() {
		t.Fatal("fixed policy claims adaptive")
	}
	if pc.Policy().Reuses() != 99 {
		t.Fatalf("Reuses = %d, want 99", pc.Policy().Reuses())
	}
}

func TestAdaptivePolicyRaisesOnThrashing(t *testing.T) {
	// 4 frames, window = 8 reuses. Relocate pages that never hit: every
	// reuse contributes -breakEven, so after one window the threshold
	// must rise by the step.
	pol := NewAdaptivePolicy(32)
	pc := mustNew(4, pol)
	page := memsys.Page(0)
	for i := 0; i < 4+8; i++ { // fill 4, then 8 thrashing reuses
		pc.Relocate(page)
		page++
	}
	if pol.Threshold() != 32+8 {
		t.Fatalf("threshold = %d, want 40 after one thrashing window", pol.Threshold())
	}
	if pol.Raises() != 1 {
		t.Fatalf("Raises = %d, want 1", pol.Raises())
	}
	// Keep thrashing: threshold keeps climbing window by window.
	for i := 0; i < 16; i++ {
		pc.Relocate(page)
		page++
	}
	if pol.Threshold() != 32+8*3 {
		t.Fatalf("threshold = %d, want 56 after three windows", pol.Threshold())
	}
}

func TestAdaptivePolicyQuietWhenPagesEarnKeep(t *testing.T) {
	pol := NewAdaptivePolicy(32)
	pc := mustNew(2, pol)
	page := memsys.Page(0)
	pc.Relocate(page)
	page++
	pc.Relocate(page)
	page++
	for i := 0; i < 40; i++ {
		// Before each reuse, give the victim more hits than break-even.
		victimPage := page - 2
		for h := 0; h < DefaultBreakEven+5; h++ {
			pc.RecordHit(blockOf(victimPage, 0))
		}
		pc.Relocate(page)
		page++
	}
	if pol.Threshold() != 32 {
		t.Fatalf("threshold = %d, want 32 (no thrashing)", pol.Threshold())
	}
	if pol.Raises() != 0 {
		t.Fatal("policy raised without thrashing")
	}
}

func TestAdaptiveRaiseResetsHitCounters(t *testing.T) {
	pol := NewAdaptivePolicyTuned(32, 8, DefaultBreakEven, 1) // window = frames = 2
	pc := mustNew(2, pol)
	pc.Relocate(1)
	pc.Relocate(2)
	pc.RecordHit(blockOf(2, 0)) // some hits on the surviving page
	pc.RecordHit(blockOf(2, 0))
	// Two zero-hit reuses trigger a raise (window=2).
	pc.Relocate(3)
	_, raised := pc.Relocate(4)
	if !raised && pol.Raises() == 0 {
		t.Fatal("no raise")
	}
	// After the raise all hit counters are reset: evicting what remains
	// must report zero hits.
	ev := pc.Unmap(2)
	if ev != nil && ev.Hits != 0 {
		t.Fatalf("hits = %d after reset, want 0", ev.Hits)
	}
}

func TestPolicyTunedParameters(t *testing.T) {
	pol := NewAdaptivePolicyTuned(64, 16, 3, 1)
	pc := mustNew(1, pol)
	if pol.Threshold() != 64 {
		t.Fatal("initial threshold")
	}
	pc.Relocate(1)
	pc.Relocate(2) // one reuse = one window; 0 hits < breakEven 3
	if pol.Threshold() != 80 {
		t.Fatalf("threshold = %d, want 80", pol.Threshold())
	}
}

// Property: the page cache never maps more pages than frames, dirty
// implies valid, and every evicted dirty list matches what was written.
func TestPageCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		pc := mustNew(3, NewFixedPolicy(32))
		shadowDirty := map[memsys.Block]bool{}
		mapped := map[memsys.Page]bool{}
		for _, op := range ops {
			p := memsys.Page(op % 8)
			blk := blockOf(p, int(op>>3)%64)
			switch op % 5 {
			case 0:
				ev, _ := pc.Relocate(p)
				if ev != nil {
					delete(mapped, ev.Page)
					for _, b := range ev.Dirty {
						if !shadowDirty[b] {
							return false // flushed a block never dirtied
						}
						delete(shadowDirty, b)
					}
					// Any remaining shadow-dirty blocks of the page were
					// not flushed: error.
					for b := range shadowDirty {
						if memsys.PageOfBlock(b) == ev.Page {
							return false
						}
					}
				}
				mapped[p] = true
			case 1:
				if mapped[p] {
					pc.Install(blk, false)
					delete(shadowDirty, blk)
				} else {
					pc.Install(blk, false)
				}
			case 2:
				if pc.WriteDirty(blk) {
					shadowDirty[blk] = true
				}
			case 3:
				if pc.Invalidate(blk) != shadowDirty[blk] {
					return false
				}
				delete(shadowDirty, blk)
			case 4:
				pc.RecordHit(blk)
			}
			if pc.Mapped() > 3 {
				return false
			}
			// Dirty implies valid for a sampled block.
			st := pc.Lookup(blk)
			if st.Dirty && !st.Valid {
				return false
			}
			if st.Dirty != shadowDirty[blk] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestResize(t *testing.T) {
	pc := mustNew(4, NewFixedPolicy(32))
	for p := memsys.Page(0); p < 4; p++ {
		pc.Relocate(p)
	}
	pc.Install(blockOf(3, 0), false) // page 3 most recently missed
	pc.WriteDirty(blockOf(0, 1))
	// Shrink to 2 frames: the two least-recently-missed pages go,
	// flushing dirty blocks.
	evicted := pc.Resize(2)
	if len(evicted) != 2 {
		t.Fatalf("Resize evicted %d pages, want 2", len(evicted))
	}
	if pc.Frames() != 2 || pc.Mapped() != 2 {
		t.Fatalf("frames=%d mapped=%d", pc.Frames(), pc.Mapped())
	}
	if !pc.IsMapped(3) {
		t.Fatal("most recently missed page evicted")
	}
	var dirtyFlushed int
	for _, ev := range evicted {
		dirtyFlushed += len(ev.Dirty)
	}
	if dirtyFlushed != 1 {
		t.Fatalf("dirty blocks flushed = %d, want 1", dirtyFlushed)
	}
	// Growing never evicts.
	if evs := pc.Resize(8); len(evs) != 0 {
		t.Fatal("grow evicted pages")
	}
	if pc.Frames() != 8 {
		t.Fatal("grow did not take")
	}
	// Minimum of one frame.
	pc.Resize(0)
	if pc.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", pc.Frames())
	}
	if pc.Mapped() > 1 {
		t.Fatal("shrink to 1 left extra pages")
	}
}

func TestClean(t *testing.T) {
	pc := newPC(2)
	if pc.Clean(blockOf(1, 0)) {
		t.Fatal("cleaned an unmapped block")
	}
	pc.Relocate(1)
	pc.Install(blockOf(1, 0), false)
	if pc.Clean(blockOf(1, 0)) {
		t.Fatal("cleaned an already-clean block")
	}
	pc.WriteDirty(blockOf(1, 0))
	if !pc.Clean(blockOf(1, 0)) {
		t.Fatal("Clean missed the dirty block")
	}
	st := pc.Lookup(blockOf(1, 0))
	if !st.Valid || st.Dirty {
		t.Fatalf("post-clean state = %+v", st)
	}
}
