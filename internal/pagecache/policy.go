package pagecache

// Policy is a page-relocation threshold policy (paper §6.2). The fixed
// policy holds one threshold for the whole run. The adaptive policy is
// per node: the threshold starts at an initial value and is incremented
// by a step whenever thrashing is detected in the page cache.
//
// Thrashing detection: every page-cache frame carries a saturating hit
// counter (hardware). When a frame is reused, the hit count minus the
// break-even count (the minimum hits that offset one relocation) is
// accumulated into a thrashing indicator. If the indicator is negative
// after a monitoring window's worth of frame reuses, the threshold is
// raised and all hit counters reset.
type Policy struct {
	adaptive  bool
	threshold uint32
	step      uint32
	breakEven int
	// windowFactor: the monitoring window is windowFactor x frames.
	windowFactor int
	window       int

	reuses      int
	thrash      int64
	raises      int64
	reusesTotal int64
}

// Paper parameter values (§6.2).
const (
	DefaultThreshold    = 32
	DefaultStep         = 8
	DefaultBreakEven    = 12
	DefaultWindowFactor = 2
)

// NewFixedPolicy returns a policy with a constant threshold.
func NewFixedPolicy(threshold uint32) *Policy {
	return &Policy{threshold: threshold}
}

// NewAdaptivePolicy returns the paper's adaptive policy with the given
// initial threshold (32 or 64 in the evaluation) and the paper's step,
// break-even count and window factor.
func NewAdaptivePolicy(initial uint32) *Policy {
	return &Policy{
		adaptive:     true,
		threshold:    initial,
		step:         DefaultStep,
		breakEven:    DefaultBreakEven,
		windowFactor: DefaultWindowFactor,
	}
}

// NewAdaptivePolicyTuned returns an adaptive policy with explicit
// parameters, for ablation studies.
func NewAdaptivePolicyTuned(initial, step uint32, breakEven, windowFactor int) *Policy {
	return &Policy{
		adaptive:     true,
		threshold:    initial,
		step:         step,
		breakEven:    breakEven,
		windowFactor: windowFactor,
	}
}

// bindFrames fixes the monitoring window once the page-cache size is
// known (window = windowFactor x frames).
func (p *Policy) bindFrames(frames int) {
	if p.adaptive {
		p.window = p.windowFactor * frames
		if p.window < 1 {
			p.window = 1
		}
	}
}

// Threshold returns the current relocation threshold.
func (p *Policy) Threshold() uint32 { return p.threshold }

// Adaptive reports whether the policy adapts.
func (p *Policy) Adaptive() bool { return p.adaptive }

// Raises returns how many times the threshold has been raised.
func (p *Policy) Raises() int64 { return p.raises }

// Reuses returns the total number of frame reuses observed.
func (p *Policy) Reuses() int64 { return p.reusesTotal }

// frameReused feeds one frame-reuse event (with the evicted frame's hit
// count) into the thrashing detector. It returns true when the threshold
// was raised, in which case it has already reset the cache's hit
// counters.
func (p *Policy) frameReused(hits int, pc *PageCache) bool {
	p.reusesTotal++
	if !p.adaptive {
		return false
	}
	p.thrash += int64(hits - p.breakEven)
	p.reuses++
	if p.reuses < p.window {
		return false
	}
	raised := false
	if p.thrash < 0 {
		p.threshold += p.step
		p.raises++
		pc.resetAllHitCounters()
		raised = true
	}
	p.reuses = 0
	p.thrash = 0
	return raised
}
