package pagecache

import (
	"dsmnc/internal/flatmap"
	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

const tagPageCache = 0x07

// SaveState serializes the page cache: the LRM clock, every mapped
// frame (sorted by page) with its valid/dirty masks, recency and hit
// counter, and the policy's mutable state. Capacity and policy
// parameters are configuration, re-derived at restore.
func (pc *PageCache) SaveState(w *snapshot.Writer) {
	w.Section(tagPageCache)
	w.U32(uint32(pc.frames))
	w.U64(pc.clock)
	pages := pc.byPage.Keys() // ascending, same byte order as before
	w.U32(uint32(len(pages)))
	for _, p := range pages {
		f := pc.byPage.Get(p)
		w.U64(p)
		w.U64(f.valid)
		w.U64(f.dirty)
		w.U64(f.lastMiss)
		w.U16(f.hits)
	}
	pc.policy.saveState(w)
}

// LoadState restores the page cache in place, enforcing the frame bound
// and the dirty-implies-valid bit invariant the checker relies on.
func (pc *PageCache) LoadState(r *snapshot.Reader) {
	r.Section(tagPageCache)
	frames := int(r.U32())
	clock := r.U64()
	mapped := int(r.U32())
	if r.Err() != nil {
		return
	}
	if frames != pc.frames {
		r.Failf("page cache has %d frames in snapshot, %d configured", frames, pc.frames)
		return
	}
	if mapped > pc.frames {
		r.Failf("snapshot maps %d pages in %d frames", mapped, pc.frames)
		return
	}
	var byPage flatmap.Map[frame]
	for i := 0; i < mapped; i++ {
		p := memsys.Page(r.U64())
		valid := r.U64()
		dirty := r.U64()
		lastMiss := r.U64()
		hits := r.U16()
		if r.Err() != nil {
			return
		}
		if dirty&^valid != 0 {
			r.Failf("page %d: dirty bits %#x not covered by valid bits %#x", p, dirty, valid)
			return
		}
		f, created := byPage.Put(uint64(p))
		if !created {
			r.Failf("page %d mapped twice", p)
			return
		}
		*f = frame{page: p, valid: valid, dirty: dirty, lastMiss: lastMiss, hits: hits}
	}
	pc.policy.loadState(r)
	if r.Err() != nil {
		return
	}
	pc.clock = clock
	pc.byPage = byPage
}

// saveState writes the policy's mutable state: the (possibly raised)
// threshold and the thrashing-detector accumulators. Adaptivity, step,
// break-even and window are construction parameters.
func (p *Policy) saveState(w *snapshot.Writer) {
	w.U32(p.threshold)
	w.I64(int64(p.reuses))
	w.I64(p.thrash)
	w.I64(p.raises)
	w.I64(p.reusesTotal)
}

func (p *Policy) loadState(r *snapshot.Reader) {
	threshold := r.U32()
	reuses := r.I64()
	thrash := r.I64()
	raises := r.I64()
	reusesTotal := r.I64()
	if r.Err() != nil {
		return
	}
	if reuses < 0 || raises < 0 || reusesTotal < 0 {
		r.Failf("negative policy accumulator")
		return
	}
	p.threshold = threshold
	p.reuses = int(reuses)
	p.thrash = thrash
	p.raises = raises
	p.reusesTotal = reusesTotal
}
