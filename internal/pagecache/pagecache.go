// Package pagecache implements the main-memory page cache for remote data
// (Simple COMA [21] / R-NUMA [3], paper §3.3): remote pages replicated
// under local aliases at page granularity, with coherence kept at block
// granularity. It also implements the relocation-threshold policies,
// including the paper's adaptive policy (§6.2) that raises a node's
// threshold whenever the page cache thrashes.
//
// The package models mechanism only — which pages are mapped, which
// blocks of them are valid or dirty, and which page to replace (least
// recently missed). What *triggers* a relocation lives elsewhere: the
// R-NUMA capacity-miss counters in package directory, or the per-set
// victimization counters of the network victim cache in package core.
package pagecache

import (
	"fmt"
	"math/bits"

	"dsmnc/internal/flatmap"
	"dsmnc/memsys"
)

// frame is one page-cache frame.
type frame struct {
	page     memsys.Page
	valid    uint64 // per-block valid bits
	dirty    uint64 // per-block dirty bits (implies valid)
	lastMiss uint64 // recency of the last installing miss (LRM)
	hits     uint16 // saturating per-frame hit counter (adaptive policy)
}

const hitSaturation = 0xffff

// BlockState is the page cache's view of one block of a mapped page.
type BlockState struct {
	Mapped bool // the block's page has a frame
	Valid  bool // the block holds data
	Dirty  bool // the frame holds the only up-to-date copy in the cluster
}

// Evicted describes a page flushed out of the cache on replacement.
type Evicted struct {
	Page  memsys.Page
	Dirty []memsys.Block // blocks that must be written back to home
	Hits  int            // hits the frame collected during its lifetime
}

// PageCache is one cluster's page cache. Frames live inline in an
// open-addressed table keyed by page number: the per-reference state
// probes (Lookup/Invalidate on the remote-access path) are a single
// linear-probe scan with no pointer chase or runtime map assist. Frame
// pointers obtained from the table are used immediately and never
// retained across a Relocate/Unmap (which may move entries).
type PageCache struct {
	frames   int
	byPage   flatmap.Map[frame]
	clock    uint64 // advances on installing misses (LRM recency)
	policy   *Policy
	dirtyBuf []memsys.Block
}

// New builds a page cache with the given number of page frames and
// relocation-threshold policy. frames must be positive; policy must not
// be nil (use NewFixedPolicy for the trivial one).
func New(frames int, policy *Policy) (*PageCache, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("pagecache: invalid frame count %d", frames)
	}
	if policy == nil {
		return nil, fmt.Errorf("pagecache: nil policy")
	}
	policy.bindFrames(frames)
	return &PageCache{
		frames: frames,
		policy: policy,
	}, nil
}

// Frames returns the capacity in pages.
func (pc *PageCache) Frames() int { return pc.frames }

// Mapped returns how many frames are in use.
func (pc *PageCache) Mapped() int { return pc.byPage.Len() }

// Policy returns the relocation-threshold policy.
func (pc *PageCache) Policy() *Policy { return pc.policy }

// Lookup returns the state of block b in the cache.
func (pc *PageCache) Lookup(b memsys.Block) BlockState {
	f := pc.byPage.Get(uint64(memsys.PageOfBlock(b)))
	if f == nil {
		return BlockState{}
	}
	bit := uint64(1) << uint(memsys.BlockInPage(b))
	return BlockState{
		Mapped: true,
		Valid:  f.valid&bit != 0,
		Dirty:  f.dirty&bit != 0,
	}
}

// RecordHit notes that a processor miss was satisfied by block b's frame,
// feeding the adaptive policy's per-frame hit counters. LRM recency is
// deliberately NOT updated: replacement is least-recently-*missed*, so a
// page that hits forever but stops missing ages out.
func (pc *PageCache) RecordHit(b memsys.Block) {
	if f := pc.byPage.Get(uint64(memsys.PageOfBlock(b))); f != nil && f.hits < hitSaturation {
		f.hits++
	}
}

// Install records that a remote fetch deposited block b (dirty if the
// fetch was for a write that will complete in the frame) into its mapped
// page, and refreshes the page's LRM recency. Installing into an
// unmapped page is a no-op.
func (pc *PageCache) Install(b memsys.Block, dirty bool) {
	f := pc.byPage.Get(uint64(memsys.PageOfBlock(b)))
	if f == nil {
		return
	}
	bit := uint64(1) << uint(memsys.BlockInPage(b))
	f.valid |= bit
	if dirty {
		f.dirty |= bit
	} else {
		f.dirty &^= bit
	}
	pc.clock++
	f.lastMiss = pc.clock
}

// WriteDirty captures a local write-back of block b into its frame: the
// dirty data stays in the cluster instead of crossing the network.
// It reports whether the frame accepted the block.
func (pc *PageCache) WriteDirty(b memsys.Block) bool { return pc.Deposit(b, true) }

// Deposit stores a victimized block into its frame without refreshing the
// page's LRM recency (a victimization is not a miss). Dirty deposits keep
// the cluster's only copy local; clean deposits let the frame keep
// serving a block the NC just dropped. It reports whether the page was
// mapped.
func (pc *PageCache) Deposit(b memsys.Block, dirty bool) bool {
	f := pc.byPage.Get(uint64(memsys.PageOfBlock(b)))
	if f == nil {
		return false
	}
	bit := uint64(1) << uint(memsys.BlockInPage(b))
	f.valid |= bit
	if dirty {
		f.dirty |= bit
	}
	return true
}

// Invalidate drops block b (system-level invalidation), reporting whether
// the frame copy was dirty.
func (pc *PageCache) Invalidate(b memsys.Block) bool {
	f := pc.byPage.Get(uint64(memsys.PageOfBlock(b)))
	if f == nil {
		return false
	}
	bit := uint64(1) << uint(memsys.BlockInPage(b))
	dirty := f.dirty&bit != 0
	f.valid &^= bit
	f.dirty &^= bit
	return dirty
}

// Clean marks a dirty copy of block b clean (remote read intervention:
// the data went home but the frame keeps serving reads). It reports
// whether a dirty copy was found.
func (pc *PageCache) Clean(b memsys.Block) bool {
	f := pc.byPage.Get(uint64(memsys.PageOfBlock(b)))
	if f == nil {
		return false
	}
	bit := uint64(1) << uint(memsys.BlockInPage(b))
	if f.dirty&bit == 0 {
		return false
	}
	f.dirty &^= bit
	return true
}

// Bits returns page p's per-block valid and dirty masks, and whether the
// page is mapped at all. The invariant checker uses it to verify that
// dirty bits never outrun valid bits.
func (pc *PageCache) Bits(p memsys.Page) (valid, dirty uint64, ok bool) {
	f := pc.byPage.Get(uint64(p))
	if f == nil {
		return 0, 0, false
	}
	return f.valid, f.dirty, true
}

// IsMapped reports whether page p has a frame.
func (pc *PageCache) IsMapped(p memsys.Page) bool {
	return pc.byPage.Get(uint64(p)) != nil
}

// Relocate maps page p into the cache, evicting the least-recently-missed
// page if all frames are busy. It returns the evicted page (if any) and
// whether the adaptive policy raised the threshold as a result of the
// reuse. Relocating an already-mapped page is a no-op.
func (pc *PageCache) Relocate(p memsys.Page) (ev *Evicted, raised bool) {
	if pc.byPage.Get(uint64(p)) != nil {
		return nil, false
	}
	if pc.byPage.Len() >= pc.frames {
		ev = pc.flush(pc.lrmVictim())
		raised = pc.policy.frameReused(ev.Hits, pc)
	}
	pc.clock++
	f, _ := pc.byPage.Put(uint64(p))
	*f = frame{page: p, lastMiss: pc.clock}
	return ev, raised
}

// Unmap removes page p without replacement pressure (used by tests and by
// dynamic PC resizing), returning its flush record.
func (pc *PageCache) Unmap(p memsys.Page) *Evicted {
	f := pc.byPage.Get(uint64(p))
	if f == nil {
		return nil
	}
	return pc.flush(f)
}

// lrmVictim picks the frame whose last installing miss is oldest. LRM
// recencies are unique (the clock advances on every install), so the
// minimum is unambiguous regardless of table order.
func (pc *PageCache) lrmVictim() *frame {
	var victim *frame
	pc.byPage.Range(func(_ uint64, f *frame) bool {
		if victim == nil || f.lastMiss < victim.lastMiss {
			victim = f
		}
		return true
	})
	return victim
}

// flush extracts a frame's dirty blocks and unmaps the page. The frame's
// fields are read before the Del, whose compaction may overwrite them.
func (pc *PageCache) flush(f *frame) *Evicted {
	page, dirtyMask, hits := f.page, f.dirty, f.hits
	pc.dirtyBuf = pc.dirtyBuf[:0]
	first := memsys.FirstBlock(page)
	for d := dirtyMask; d != 0; d &= d - 1 {
		i := bits.TrailingZeros64(d)
		pc.dirtyBuf = append(pc.dirtyBuf, first+memsys.Block(i))
	}
	ev := &Evicted{Page: page, Hits: int(hits)}
	if len(pc.dirtyBuf) > 0 {
		ev.Dirty = append([]memsys.Block(nil), pc.dirtyBuf...)
	}
	pc.byPage.Del(uint64(page))
	return ev
}

// Resize changes the page-cache capacity to frames, evicting
// least-recently-missed pages if it shrinks below the mapped count. The
// paper names dynamic adjustability as the page cache's decisive
// advantage over fixed network caches ("the page cache size can be
// adjusted dynamically, whereas the NC size is configurable at best",
// §8); this is that mechanism. Evicted pages are returned for the
// caller to flush.
func (pc *PageCache) Resize(frames int) []*Evicted {
	if frames < 1 {
		frames = 1
	}
	var evicted []*Evicted
	for pc.byPage.Len() > frames {
		ev := pc.flush(pc.lrmVictim())
		pc.policy.frameReused(ev.Hits, pc)
		evicted = append(evicted, ev)
	}
	pc.frames = frames
	pc.policy.bindFrames(frames)
	return evicted
}

// MappedPages returns the mapped pages in ascending order (testing and
// reporting).
func (pc *PageCache) MappedPages() []memsys.Page {
	keys := pc.byPage.Keys()
	out := make([]memsys.Page, len(keys))
	for i, k := range keys {
		out[i] = memsys.Page(k)
	}
	return out
}

// resetAllHitCounters supports the adaptive policy: when the threshold is
// raised, all per-frame hit counters restart (paper §6.2).
func (pc *PageCache) resetAllHitCounters() {
	pc.byPage.Range(func(_ uint64, f *frame) bool {
		f.hits = 0
		return true
	})
}
