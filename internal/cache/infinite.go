package cache

import "dsmnc/memsys"

// Infinite is a cache with unbounded capacity, used for the NCS and
// infinite-DRAM-NC reference systems in Figures 9-11: with it, the
// directory sees only necessary misses.
type Infinite struct {
	lines map[memsys.Block]State
}

// NewInfinite returns an empty infinite cache.
func NewInfinite() *Infinite {
	return &Infinite{lines: make(map[memsys.Block]State)}
}

// Lookup returns the state of b and whether it is present.
func (c *Infinite) Lookup(b memsys.Block) (State, bool) {
	st, ok := c.lines[b]
	return st, ok
}

// Fill inserts or updates b. Nothing is ever evicted.
func (c *Infinite) Fill(b memsys.Block, st State) {
	if st == Invalid {
		delete(c.lines, b)
		return
	}
	c.lines[b] = st
}

// Evict removes b, returning its former state.
func (c *Infinite) Evict(b memsys.Block) State {
	st := c.lines[b]
	delete(c.lines, b)
	return st
}

// EvictPage removes all blocks of p, returning the removed (block, state)
// pairs via fn.
func (c *Infinite) EvictPage(p memsys.Page, fn func(memsys.Block, State)) {
	first := memsys.FirstBlock(p)
	for i := 0; i < memsys.BlocksPerPage; i++ {
		b := first + memsys.Block(i)
		if st, ok := c.lines[b]; ok {
			delete(c.lines, b)
			if fn != nil {
				fn(b, st)
			}
		}
	}
}

// Count returns the number of cached blocks.
func (c *Infinite) Count() int { return len(c.lines) }
