package cache

import (
	"sort"

	"dsmnc/internal/snapshot"
	"dsmnc/memsys"
)

// Snapshot section tags.
const (
	tagSetAssoc = 0x01
	tagInfinite = 0x02
)

// SaveState serializes the cache: geometry (for cross-checking at
// restore), the LRU clock, and every line positionally — invalid lines
// included. Free-slot positions matter: Fill prefers the first free way
// and SetLines reports valid lines in array order, which feeds the vxp
// predominant-page tie-break, so bit-identical resume requires the
// exact array layout, not just the valid set.
func (c *SetAssoc) SaveState(w *snapshot.Writer) {
	w.Section(tagSetAssoc)
	w.U32(uint32(c.sets))
	w.U32(uint32(c.ways))
	w.U8(uint8(c.indexing))
	w.U64(c.tick)
	for _, ln := range c.lines {
		w.U64(uint64(ln.Block))
		w.U8(uint8(ln.State))
		w.U64(ln.lru)
	}
}

// LoadState restores the cache in place. The snapshot's geometry must
// match the configured one; a mismatch (or an out-of-range state byte)
// is a decode failure recorded on r.
func (c *SetAssoc) LoadState(r *snapshot.Reader) {
	r.Section(tagSetAssoc)
	sets := int(r.U32())
	ways := int(r.U32())
	idx := Indexing(r.U8())
	tick := r.U64()
	if r.Err() != nil {
		return
	}
	if sets != c.sets || ways != c.ways || idx != c.indexing {
		r.Failf("cache geometry mismatch: snapshot %dx%d idx=%d, config %dx%d idx=%d",
			sets, ways, idx, c.sets, c.ways, c.indexing)
		return
	}
	c.tick = tick
	for i := range c.lines {
		b := memsys.Block(r.U64())
		st := State(r.U8())
		lru := r.U64()
		if r.Err() != nil {
			return
		}
		if st > Owned {
			r.Failf("invalid cache state %d", st)
			return
		}
		c.lines[i] = Line{Block: b, State: st, lru: lru}
	}
}

// SaveState serializes the infinite cache in sorted block order, so the
// same contents always produce the same bytes.
func (c *Infinite) SaveState(w *snapshot.Writer) {
	w.Section(tagInfinite)
	blocks := make([]memsys.Block, 0, len(c.lines))
	for b := range c.lines {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	w.U64(uint64(len(blocks)))
	for _, b := range blocks {
		w.U64(uint64(b))
		w.U8(uint8(c.lines[b]))
	}
}

// LoadState replaces the infinite cache's contents from the snapshot.
func (c *Infinite) LoadState(r *snapshot.Reader) {
	r.Section(tagInfinite)
	n := r.Len(1 << 40)
	lines := make(map[memsys.Block]State)
	for i := 0; i < n; i++ {
		b := memsys.Block(r.U64())
		st := State(r.U8())
		if r.Err() != nil {
			return
		}
		if st == Invalid || st > Owned {
			r.Failf("invalid cache state %d for block %d", st, b)
			return
		}
		lines[b] = st
	}
	if r.Err() == nil {
		c.lines = lines
	}
}
