package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsmnc/memsys"
)

// mustNew builds a cache or panics; test-file-only convenience.
func mustNew(cfg Config) *SetAssoc {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func small() *SetAssoc {
	// 4 sets x 2 ways = 512 bytes.
	return mustNew(Config{Bytes: 8 * memsys.BlockBytes, Ways: 2})
}

func TestNewValidation(t *testing.T) {
	mustErr := func(cfg Config) {
		t.Helper()
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) did not fail", cfg)
		}
	}
	mustErr(Config{Bytes: 0, Ways: 2})
	mustErr(Config{Bytes: 64, Ways: 0})
	mustErr(Config{Bytes: 3 * 64, Ways: 2}) // not divisible
	mustErr(Config{Bytes: 6 * 64, Ways: 2}) // 3 sets, not pow2
	c, err := New(Config{Bytes: 16 * 1024, Ways: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Sets() != 64 || c.Ways() != 4 || c.Bytes() != 16*1024 {
		t.Fatalf("16KB/4w: sets=%d ways=%d bytes=%d", c.Sets(), c.Ways(), c.Bytes())
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", RemoteMaster: "R",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state produced empty string")
	}
	if Invalid.Valid() || !Modified.Valid() || !Modified.Dirty() || Shared.Dirty() {
		t.Error("state predicates wrong")
	}
}

func TestFillLookupEvict(t *testing.T) {
	c := small()
	if c.Lookup(5) != nil {
		t.Fatal("empty cache claims a hit")
	}
	v := c.Fill(5, Shared)
	if v.State.Valid() {
		t.Fatal("fill into empty set produced a victim")
	}
	ln := c.Lookup(5)
	if ln == nil || ln.State != Shared {
		t.Fatalf("Lookup(5) = %v", ln)
	}
	// Refill updates state in place without a victim.
	if v := c.Fill(5, Modified); v.State.Valid() {
		t.Fatal("refill produced a victim")
	}
	if c.Lookup(5).State != Modified {
		t.Fatal("refill did not update state")
	}
	old := c.Evict(5)
	if old.State != Modified || old.Block != 5 {
		t.Fatalf("Evict returned %v", old)
	}
	if c.Lookup(5) != nil {
		t.Fatal("evicted block still present")
	}
	if c.Evict(5).State.Valid() {
		t.Fatal("double evict returned valid line")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 4 sets, 2 ways; blocks 0,4,8,12 share set 0
	c.Fill(0, Shared)
	c.Fill(4, Shared)
	c.Touch(0) // 4 is now LRU
	v := c.Fill(8, Shared)
	if v.Block != 4 {
		t.Fatalf("victim = block %d, want 4 (LRU)", v.Block)
	}
	if c.Lookup(0) == nil || c.Lookup(8) == nil {
		t.Fatal("survivors missing")
	}
	// Lookup must not perturb recency: probe 0 via Lookup, then fill —
	// victim must still follow the Touch/Fill order (0 is MRU via the
	// earlier Touch... make 8 MRU first).
	c.Touch(8)
	c.Lookup(0) // probe only
	v = c.Fill(12, Shared)
	if v.Block != 0 {
		t.Fatalf("victim = block %d, want 0 (Lookup must not touch LRU)", v.Block)
	}
}

func TestIndexingSchemes(t *testing.T) {
	cb := mustNew(Config{Bytes: 8 * memsys.BlockBytes, Ways: 2, Indexing: ByBlock})
	cp := mustNew(Config{Bytes: 8 * memsys.BlockBytes, Ways: 2, Indexing: ByPage})
	// Two blocks in the same page: different sets by block, same by page.
	b0, b1 := memsys.Block(0), memsys.Block(1)
	if cb.SetOf(b0) == cb.SetOf(b1) {
		t.Fatal("block indexing mapped consecutive blocks to one set")
	}
	if cp.SetOf(b0) != cp.SetOf(b1) {
		t.Fatal("page indexing split a page across sets")
	}
	// Blocks of different pages map to different sets by page (4 sets).
	p0 := memsys.FirstBlock(0)
	p1 := memsys.FirstBlock(1)
	if cp.SetOf(p0) == cp.SetOf(p1) {
		t.Fatal("page indexing mapped pages 0 and 1 to one set")
	}
}

func TestEvictPage(t *testing.T) {
	for _, idx := range []Indexing{ByBlock, ByPage} {
		c := mustNew(Config{Bytes: 64 * memsys.BlockBytes, Ways: 4, Indexing: idx})
		p := memsys.Page(3)
		first := memsys.FirstBlock(p)
		c.Fill(first, Modified)
		c.Fill(first+1, Shared)
		c.Fill(memsys.FirstBlock(9), Shared) // different page
		got := c.EvictPage(p)
		if len(got) != 2 {
			t.Fatalf("indexing %d: EvictPage removed %d lines, want 2", idx, len(got))
		}
		if c.Lookup(first) != nil || c.Lookup(first+1) != nil {
			t.Fatalf("indexing %d: page blocks survived EvictPage", idx)
		}
		if c.Lookup(memsys.FirstBlock(9)) == nil {
			t.Fatalf("indexing %d: EvictPage removed an unrelated page", idx)
		}
	}
}

func TestSetLines(t *testing.T) {
	c := small()
	c.Fill(0, Shared)
	c.Fill(4, Modified)
	s := c.SetOf(0)
	lines := c.SetLines(s)
	if len(lines) != 2 {
		t.Fatalf("SetLines = %d lines, want 2", len(lines))
	}
	if c.SetLines(-1) != nil || c.SetLines(c.Sets()) != nil {
		t.Fatal("out-of-range SetLines returned lines")
	}
}

func TestRangeCountClear(t *testing.T) {
	c := small()
	c.Fill(1, Shared)
	c.Fill(2, Modified)
	c.Fill(3, RemoteMaster)
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	n := 0
	c.Range(func(Line) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range early stop visited %d, want 2", n)
	}
	c.Clear()
	if c.Count() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

// Property: a set-associative cache never holds more than ways blocks per
// set, never holds duplicates, and Lookup after Fill always hits until an
// eviction of that block.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := mustNew(Config{Bytes: 16 * memsys.BlockBytes, Ways: 2})
		shadow := make(map[memsys.Block]bool)
		for _, op := range ops {
			b := memsys.Block(op % 64)
			switch op % 3 {
			case 0:
				v := c.Fill(b, Shared)
				if v.State.Valid() {
					delete(shadow, v.Block)
				}
				shadow[b] = true
			case 1:
				c.Evict(b)
				delete(shadow, b)
			case 2:
				c.Touch(b)
			}
			// No duplicates; per-set occupancy bound.
			perSet := make(map[int]int)
			seen := make(map[memsys.Block]bool)
			bad := false
			c.Range(func(ln Line) bool {
				if seen[ln.Block] {
					bad = true
					return false
				}
				seen[ln.Block] = true
				perSet[c.SetOf(ln.Block)]++
				return true
			})
			if bad {
				return false
			}
			for _, n := range perSet {
				if n > c.Ways() {
					return false
				}
			}
			// Shadow agreement.
			for b := range shadow {
				if c.Lookup(b) == nil {
					return false
				}
			}
			if c.Count() != len(shadow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestInfinite(t *testing.T) {
	c := NewInfinite()
	rng := rand.New(rand.NewSource(1))
	blocks := make([]memsys.Block, 10000)
	for i := range blocks {
		blocks[i] = memsys.Block(rng.Uint64() >> 8)
		c.Fill(blocks[i], Shared)
	}
	for _, b := range blocks {
		if _, ok := c.Lookup(b); !ok {
			t.Fatalf("infinite cache lost block %d", b)
		}
	}
	c.Fill(blocks[0], Modified)
	if st, _ := c.Lookup(blocks[0]); st != Modified {
		t.Fatal("state update lost")
	}
	c.Fill(blocks[0], Invalid) // filling Invalid removes
	if _, ok := c.Lookup(blocks[0]); ok {
		t.Fatal("Invalid fill did not remove block")
	}
	st := c.Evict(blocks[1])
	if st != Shared {
		t.Fatalf("Evict returned %v, want Shared", st)
	}
	if _, ok := c.Lookup(blocks[1]); ok {
		t.Fatal("evicted block still present")
	}
}

func TestInfiniteEvictPage(t *testing.T) {
	c := NewInfinite()
	p := memsys.Page(5)
	first := memsys.FirstBlock(p)
	c.Fill(first, Modified)
	c.Fill(first+63, Shared)
	c.Fill(memsys.FirstBlock(6), Shared)
	var removed int
	c.EvictPage(p, func(b memsys.Block, st State) { removed++ })
	if removed != 2 {
		t.Fatalf("EvictPage removed %d, want 2", removed)
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d, want 1", c.Count())
	}
	c.EvictPage(6, nil) // nil fn must not panic
	if c.Count() != 0 {
		t.Fatal("EvictPage(nil fn) did not remove")
	}
}
