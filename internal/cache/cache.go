// Package cache implements the set-associative tag stores used throughout
// the simulated memory hierarchy: the per-processor caches and the SRAM /
// DRAM network caches. It is a functional model — tags, states and LRU
// order, no data — which is exactly what a trace-driven coherence study
// needs.
//
// Two indexing schemes are provided (paper §3.3/§6.1.3): the conventional
// one using the low bits of the block address, and the page-address scheme
// used by the vp/vpp/vxp victim caches, where all blocks of a page map to
// the same set.
package cache

import (
	"fmt"
	"math/bits"

	"dsmnc/memsys"
)

// State is a MESIR coherence state (paper §3.2). The R state marks the
// master copy of a clean remote block: the cache responsible for
// victimizing it to the network cache when replaced.
type State uint8

// MESIR states, plus the optional O state of the MOESI extension the
// paper evaluated (and found not worth its cost, §3.2): Owned marks a
// dirty-shared line whose holder supplies data without updating memory.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	RemoteMaster // R: clean remote block, replacement master
	Owned        // O: dirty-shared master (MOESI option)
)

// String returns the one-letter protocol name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case RemoteMaster:
		return "R"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state's data must be written back when the
// line leaves the cluster (Modified, or Owned under the MOESI option).
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Indexing selects how a block maps to a set.
type Indexing uint8

// Indexing schemes.
const (
	// ByBlock indexes sets with the LSBs of the block address (vb).
	ByBlock Indexing = iota
	// ByPage indexes sets with the LSBs of the page address (vp), so
	// every block of a page falls in the same set and each set acts as
	// intermediate storage for blocks of a remote page (paper §3.3).
	ByPage
)

// Line is one cache frame.
type Line struct {
	Block memsys.Block // full block number doubles as the tag
	State State
	lru   uint64 // higher is more recent
}

// Config sizes a cache.
type Config struct {
	Bytes    int      // total capacity in bytes
	Ways     int      // associativity
	Indexing Indexing // set index scheme
}

// SetAssoc is a set-associative cache with true-LRU replacement.
type SetAssoc struct {
	lines    []Line // sets*ways, set-major
	ways     int
	sets     int
	setMask  uint64
	indexing Indexing
	tick     uint64

	// last memoizes the line returned by the previous successful
	// Lookup/Fill. References cluster on a block (word-level streams),
	// so most lookups re-find the line the previous one did; the memo
	// turns those into a single tag compare. It is only ever a hint: a
	// hit requires the memoized line to still hold the requested block
	// in a valid state, which re-verifies it against every possible
	// intervening eviction, invalidation or replacement. The lines
	// array never reallocates, so the pointer itself cannot dangle.
	// It starts pointing at a shared always-Invalid sentinel so the
	// check needs no nil test (keeping Lookup within the inline budget).
	last *Line
}

// noLine is the initial memo target: permanently Invalid, never written
// (the memo only ever returns lines that pass the validity check, and
// TouchLine/Fill only receive lines inside a cache's own array).
var noLine = &Line{}

// New builds a cache from cfg. A malformed configuration (non-power-of-two
// set count, zero ways) is a configuration error, reported rather than
// panicking so sweep drivers can flag the cell and move on.
func New(cfg Config) (*SetAssoc, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid ways %d", cfg.Ways)
	}
	blocks := cfg.Bytes / memsys.BlockBytes
	if blocks <= 0 || blocks%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d bytes not divisible into %d ways", cfg.Bytes, cfg.Ways)
	}
	sets := blocks / cfg.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return &SetAssoc{
		lines:    make([]Line, sets*cfg.Ways),
		ways:     cfg.Ways,
		sets:     sets,
		setMask:  uint64(sets - 1),
		indexing: cfg.Indexing,
		last:     noLine,
	}, nil
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Bytes returns the capacity in bytes.
func (c *SetAssoc) Bytes() int { return len(c.lines) * memsys.BlockBytes }

// SetOf returns the set index block b maps to. Indexing uses
// pseudo-physical addresses (memsys.PhysBlock): the caches of a DSM node
// are physically indexed, so page color — not virtual page number —
// decides conflicts.
func (c *SetAssoc) SetOf(b memsys.Block) int {
	if c.indexing == ByPage {
		return int(memsys.FrameOf(memsys.PageOfBlock(b)) & c.setMask)
	}
	return int(memsys.PhysBlock(b) & c.setMask)
}

func (c *SetAssoc) set(b memsys.Block) []Line {
	i := c.SetOf(b) * c.ways
	return c.lines[i : i+c.ways]
}

// Lookup returns the line holding b, or nil. It does not touch LRU state;
// use Touch for that, so that probes (snoops) don't perturb recency.
// The memo check is kept loop-free so Lookup inlines into its callers
// and the common re-reference costs three compares, not a call.
func (c *SetAssoc) Lookup(b memsys.Block) *Line {
	if ln := c.last; ln.Block == b && ln.State != Invalid {
		return ln
	}
	return c.lookupScan(b)
}

// lookupScan is the slow half of Lookup: the set scan.
func (c *SetAssoc) lookupScan(b memsys.Block) *Line {
	base := c.SetOf(b) * c.ways
	lines := c.lines[base : base+c.ways]
	for i := range lines {
		if lines[i].Block == b && lines[i].State != Invalid {
			c.last = &lines[i]
			return &lines[i]
		}
	}
	return nil
}

// Touch marks b most recently used. It is a no-op if b is absent.
func (c *SetAssoc) Touch(b memsys.Block) {
	if ln := c.Lookup(b); ln != nil {
		c.TouchLine(ln)
	}
}

// TouchLine marks a line already located by Lookup most recently used,
// skipping the second set scan Touch would pay. ln must be a pointer
// returned by this cache's Lookup.
func (c *SetAssoc) TouchLine(ln *Line) {
	c.tick++
	ln.lru = c.tick
}

// Fill inserts b with the given state, replacing the LRU line of the set
// if no way is free. It returns the victim line (State Invalid if a free
// way was used). Fill marks the new line most recently used. Filling a
// block that is already present just updates its state.
func (c *SetAssoc) Fill(b memsys.Block, st State) (victim Line) {
	c.tick++
	set := c.set(b)
	var free, lru *Line
	for i := range set {
		ln := &set[i]
		if ln.State.Valid() && ln.Block == b {
			ln.State = st
			ln.lru = c.tick
			return Line{}
		}
		if !ln.State.Valid() {
			if free == nil {
				free = ln
			}
			continue
		}
		if lru == nil || ln.lru < lru.lru {
			lru = ln
		}
	}
	target := free
	if target == nil {
		target = lru
		victim = *target
	}
	*target = Line{Block: b, State: st, lru: c.tick}
	c.last = target
	return victim
}

// Evict removes b and returns the line it held (State Invalid if absent).
func (c *SetAssoc) Evict(b memsys.Block) Line {
	if ln := c.Lookup(b); ln != nil {
		old := *ln
		*ln = Line{}
		return old
	}
	return Line{}
}

// SetLines returns a snapshot of the valid lines in set s, LRU-order not
// guaranteed. The victim-cache relocation machinery uses it to find the
// predominant page tag of a set (paper §3.4).
func (c *SetAssoc) SetLines(s int) []Line {
	return c.AppendSetLines(nil, s)
}

// AppendSetLines appends the valid lines of set s to dst and returns the
// extended slice: the allocation-free form of SetLines for callers on
// the relocation hot path that keep a scratch buffer.
func (c *SetAssoc) AppendSetLines(dst []Line, s int) []Line {
	if s < 0 || s >= c.sets {
		return dst
	}
	for _, ln := range c.lines[s*c.ways : (s+1)*c.ways] {
		if ln.State.Valid() {
			dst = append(dst, ln)
		}
	}
	return dst
}

// EvictPage removes every block of page p, returning the removed lines.
// Page relocation in and out of the page cache flushes the cluster this
// way (paper §6.3: "blocks must be evicted from the cluster due to the
// page re-mappings").
func (c *SetAssoc) EvictPage(p memsys.Page) []Line {
	var out []Line
	if c.indexing == ByPage {
		// All blocks of p live in one set.
		s := int(memsys.FrameOf(p) & c.setMask)
		for i := s * c.ways; i < (s+1)*c.ways; i++ {
			ln := &c.lines[i]
			if ln.State.Valid() && memsys.PageOfBlock(ln.Block) == p {
				out = append(out, *ln)
				*ln = Line{}
			}
		}
		return out
	}
	first := memsys.FirstBlock(p)
	for i := 0; i < memsys.BlocksPerPage; i++ {
		if ln := c.Evict(first + memsys.Block(i)); ln.State.Valid() {
			out = append(out, ln)
		}
	}
	return out
}

// Range calls fn for every valid line; fn returning false stops the walk.
func (c *SetAssoc) Range(fn func(Line) bool) {
	for _, ln := range c.lines {
		if ln.State.Valid() && !fn(ln) {
			return
		}
	}
}

// Count returns the number of valid lines.
func (c *SetAssoc) Count() int {
	n := 0
	for _, ln := range c.lines {
		if ln.State.Valid() {
			n++
		}
	}
	return n
}

// Clear invalidates every line.
func (c *SetAssoc) Clear() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
}
