package check_test

// Each test assembles a tiny two-cluster machine, drives its layers into
// a deliberately inconsistent shape that the real protocol can never
// produce, and asserts that the checker reports exactly that violation
// class. The mirror tests drive the corresponding *legal* shapes and
// assert silence, so the invariants are neither vacuous nor over-strict.

import (
	"errors"
	"testing"

	"dsmnc/internal/cache"
	"dsmnc/internal/check"
	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/internal/pagecache"
	"dsmnc/memsys"
	"dsmnc/trace"
)

// machine is a hand-assembled two-cluster machine whose layers the tests
// corrupt directly, bypassing the protocol.
type machine struct {
	dir      directory.Protocol
	clusters []*cluster.Cluster
	ck       *check.Checker
}

// newMachine builds two clusters of two processors each. ncFor supplies
// each cluster's NC (nil for none); page homes all resolve to cluster 0.
func newMachine(t *testing.T, ncFor func() core.NC) *machine {
	t.Helper()
	geo := memsys.Geometry{Clusters: 2, ProcsPerCluster: 2}
	d, err := directory.New(geo.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	return newMachineDir(t, geo, d, ncFor)
}

func newMachineDir(t *testing.T, geo memsys.Geometry, d directory.Protocol, ncFor func() core.NC) *machine {
	t.Helper()
	var clusters []*cluster.Cluster
	for i := 0; i < geo.Clusters; i++ {
		var nc core.NC
		if ncFor != nil {
			nc = ncFor()
		}
		cl, err := cluster.New(cluster.Config{
			ID:    i,
			Procs: geo.ProcsPerCluster,
			L1:    cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
			NC:    nc,
		})
		if err != nil {
			t.Fatal(err)
		}
		clusters = append(clusters, cl)
	}
	return &machine{
		dir:      d,
		clusters: clusters,
		ck: check.New(check.Config{
			Geometry: geo,
			Dir:      d,
			Clusters: clusters,
			Home:     func(memsys.Page) (int, bool) { return 0, true },
		}),
	}
}

func mustVictimNC() core.NC {
	v, err := core.NewVictim(core.VictimConfig{Bytes: 4 * memsys.BlockBytes, Ways: 4})
	if err != nil {
		panic(err)
	}
	return v
}

func mustRelaxedNC() core.NC {
	n, err := core.NewRelaxed(4*memsys.BlockBytes, 4)
	if err != nil {
		panic(err)
	}
	return n
}

func mustInclusiveNC() core.NC {
	n, err := core.NewInclusive(4*memsys.BlockBytes, 4)
	if err != nil {
		panic(err)
	}
	return n
}

// wantViolation asserts err is a *check.CheckError of the given kind
// wrapping check.ErrInvariant, carrying a non-empty state dump.
func wantViolation(t *testing.T, err error, kind check.Kind) *check.CheckError {
	t.Helper()
	if err == nil {
		t.Fatalf("corrupted state passed the checker, want %v violation", kind)
	}
	if !errors.Is(err, check.ErrInvariant) {
		t.Fatalf("error %v does not wrap ErrInvariant", err)
	}
	var ce *check.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CheckError", err)
	}
	if ce.Kind != kind {
		t.Fatalf("violation kind = %v, want %v\n%v", ce.Kind, kind, ce)
	}
	if ce.Dump == "" {
		t.Fatal("violation carries no state dump")
	}
	return ce
}

func TestCleanMachinePasses(t *testing.T) {
	m := newMachine(t, mustVictimNC)
	b := memsys.Block(3)
	// A legal shape: cluster 0 fetched for write, the directory knows.
	m.dir.Access(0, b, true, false)
	m.clusters[0].Bus().Fill(0, b, cache.Modified)
	if err := m.ck.CheckBlock(b); err != nil {
		t.Fatalf("legal state flagged: %v", err)
	}
	if m.ck.Checks() == 0 {
		t.Fatal("check counter never advanced")
	}
}

func TestTwoDirtyClusters(t *testing.T) {
	m := newMachine(t, nil)
	b := memsys.Block(3)
	m.dir.Access(0, b, true, false)
	m.clusters[0].Bus().Fill(0, b, cache.Modified)
	m.clusters[1].Bus().Fill(0, b, cache.Modified) // corruption
	ce := wantViolation(t, m.ck.CheckBlock(b), check.KindDirtyOwner)
	if ce.Block != b {
		t.Fatalf("violation block = %d, want %d", ce.Block, b)
	}
}

func TestDirtyWithoutDirectoryOwner(t *testing.T) {
	m := newMachine(t, nil)
	b := memsys.Block(5)
	// Dirty data appears in cluster 1 with no directory transaction.
	m.clusters[1].Bus().Fill(1, b, cache.Modified)
	ce := wantViolation(t, m.ck.CheckBlock(b), check.KindDirtyOwner)
	if ce.Cluster != 1 {
		t.Fatalf("violation cluster = %d, want 1", ce.Cluster)
	}
}

func TestOwnerHoldsNoCopy(t *testing.T) {
	m := newMachine(t, nil)
	b := memsys.Block(7)
	// The directory records a dirty owner that never filled its cache.
	m.dir.Access(1, b, true, false)
	wantViolation(t, m.ck.CheckBlock(b), check.KindDirtyOwner)
}

func TestStaleCopyBesideOwner(t *testing.T) {
	m := newMachine(t, nil)
	b := memsys.Block(2)
	m.dir.Access(0, b, true, false)
	m.clusters[0].Bus().Fill(0, b, cache.Modified)
	m.clusters[1].Bus().Fill(0, b, cache.Shared) // missed invalidation
	wantViolation(t, m.ck.CheckBlock(b), check.KindStaleCopy)
}

func TestCopyWithoutPresence(t *testing.T) {
	m := newMachine(t, nil)
	b := memsys.Block(9)
	// A clean copy the directory never heard about.
	m.clusters[1].Bus().Fill(0, b, cache.Shared)
	wantViolation(t, m.ck.CheckBlock(b), check.KindPresence)
}

func TestVictimExclusivityViolated(t *testing.T) {
	m := newMachine(t, mustVictimNC)
	b := memsys.Block(4)
	m.dir.Access(1, b, true, false)
	m.clusters[1].Bus().Fill(0, b, cache.Modified)
	m.clusters[1].NC().AcceptVictim(b, false) // stale NC frame under dirty L1
	wantViolation(t, m.ck.CheckBlock(b), check.KindExclusivity)
}

func TestVictimDowngradeCaptureIsLegal(t *testing.T) {
	// The legal overlap (paper §3.2): the NC holds the dirty master while
	// processor caches keep clean Shared copies.
	m := newMachine(t, mustVictimNC)
	b := memsys.Block(4)
	m.dir.Access(1, b, true, false)
	m.clusters[1].Bus().Fill(0, b, cache.Shared)
	m.clusters[1].NC().AcceptVictim(b, true)
	if err := m.ck.CheckBlock(b); err != nil {
		t.Fatalf("downgrade-capture shape flagged: %v", err)
	}
	// Its aftermath: a remote read intervention cleaned the NC frame in
	// place; the clean overlap persists legally.
	m.clusters[1].NC().Downgrade(b)
	m.dir.WriteBack(1, b)
	m.dir.Access(1, b, false, false)
	if err := m.ck.CheckBlock(b); err != nil {
		t.Fatalf("cleaned-capture shape flagged: %v", err)
	}
}

func TestRelaxedDirtyInclusionViolated(t *testing.T) {
	m := newMachine(t, mustRelaxedNC)
	b := memsys.Block(6) // page 0 homes on cluster 0; cluster 1 is remote
	m.dir.Access(1, b, true, false)
	m.clusters[1].Bus().Fill(0, b, cache.Modified) // no NC anchor
	wantViolation(t, m.ck.CheckBlock(b), check.KindInclusion)
}

func TestInclusiveFullInclusionViolated(t *testing.T) {
	m := newMachine(t, mustInclusiveNC)
	b := memsys.Block(8)
	m.dir.Access(1, b, false, false)
	m.clusters[1].Bus().Fill(0, b, cache.RemoteMaster) // no NC frame
	wantViolation(t, m.ck.CheckBlock(b), check.KindInclusion)
}

func TestInclusionHoldsWithAnchor(t *testing.T) {
	m := newMachine(t, mustRelaxedNC)
	b := memsys.Block(6)
	m.dir.Access(1, b, true, false)
	m.clusters[1].NC().OnFill(b, true) // dirty anchor, as a real miss makes
	m.clusters[1].Bus().Fill(0, b, cache.Modified)
	if err := m.ck.CheckBlock(b); err != nil {
		t.Fatalf("anchored dirty block flagged: %v", err)
	}
}

func TestLocalBlocksExemptFromInclusion(t *testing.T) {
	// Cluster 0 is home for every page: its dirty L1 lines need no NC
	// anchor.
	m := newMachine(t, mustRelaxedNC)
	b := memsys.Block(1)
	m.dir.Access(0, b, true, false)
	m.clusters[0].Bus().Fill(0, b, cache.Modified)
	if err := m.ck.CheckBlock(b); err != nil {
		t.Fatalf("local dirty block flagged: %v", err)
	}
}

// TestLimitedDirectoryPointerBound stresses a Dir_2B entry from every
// cluster of a wider machine: overflow must flip to broadcast rather than
// ever exceeding the pointer limit.
func TestLimitedDirectoryPointerBound(t *testing.T) {
	geo := memsys.Geometry{Clusters: 4, ProcsPerCluster: 2}
	ld, err := directory.NewLimited(geo.Clusters, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachineDir(t, geo, ld, nil)
	b := memsys.Block(11)
	for c := 0; c < geo.Clusters; c++ {
		ld.Access(c, b, false, false)
		m.clusters[c].Bus().Fill(0, b, cache.Shared)
		if err := m.ck.CheckBlock(b); err != nil {
			t.Fatalf("after sharer %d: %v", c, err)
		}
	}
	if !ld.Broadcast(b) {
		t.Fatal("four sharers on a Dir_2B entry did not force broadcast")
	}
}

func TestCheckRefCoversPageCaches(t *testing.T) {
	// CheckRef validates the referenced block and the page caches; a
	// legally exercised page cache stays silent.
	geo := memsys.Geometry{Clusters: 2, ProcsPerCluster: 2}
	d, err := directory.New(geo.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := pagecache.New(2, pagecache.NewFixedPolicy(0))
	if err != nil {
		t.Fatal(err)
	}
	cl0, err := cluster.New(cluster.Config{
		ID: 0, Procs: 2,
		L1: cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl1, err := cluster.New(cluster.Config{
		ID: 1, Procs: 2,
		L1: cache.Config{Bytes: 4 * memsys.BlockBytes, Ways: 2},
		NC: nil, PC: pc, Counters: cluster.CountersDirectory,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = cl0
	ck := check.New(check.Config{
		Geometry: geo, Dir: d,
		Clusters: []*cluster.Cluster{cl0, cl1},
		Home:     func(memsys.Page) (int, bool) { return 0, true },
	})
	// Map three pages into two frames (the third evicts one), depositing
	// dirty and clean blocks along the way.
	for pg := 0; pg < 3; pg++ {
		pc.Relocate(memsys.Page(pg))
		first := memsys.FirstBlock(memsys.Page(pg))
		dirty := pg%2 == 0
		d.Access(1, first, dirty, false) // the fetch that fills the frame
		pc.Install(first, dirty)
		pc.Deposit(first+1, false)
		pc.Invalidate(first + 1)
		r := trace.Ref{PID: 2, Op: trace.Read, Addr: first.Base()}
		if err := ck.CheckRef(r); err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
	}
	if pc.Mapped() > pc.Frames() {
		t.Fatal("page cache overflowed its frames")
	}
}

func TestCheckAllScansEveryBlock(t *testing.T) {
	m := newMachine(t, nil)
	good, bad := memsys.Block(1), memsys.Block(2)
	m.dir.Access(0, good, false, false)
	m.clusters[0].Bus().Fill(0, good, cache.Shared)
	m.clusters[1].Bus().Fill(0, bad, cache.Modified) // unowned dirty data
	if err := m.ck.CheckAll([]memsys.Block{good}); err != nil {
		t.Fatalf("good block flagged: %v", err)
	}
	if err := m.ck.CheckAll([]memsys.Block{good, bad}); err == nil {
		t.Fatal("CheckAll missed the corrupted block")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []check.Kind{
		check.KindDirtyOwner, check.KindStaleCopy, check.KindPresence,
		check.KindPointer, check.KindExclusivity, check.KindInclusion,
		check.KindPageCache,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if check.Kind(200).String() == "" {
		t.Fatal("unknown kind has no name")
	}
}
