// Package check is the runtime coherence-invariant checker: a shadow
// oracle that validates cross-layer protocol state after every applied
// reference (Murphi-style invariant checking applied to the simulator
// itself). It is attached to sim.System behind sim.Config.Check and is
// the standing correctness oracle for protocol changes.
//
// The invariants, all per block:
//
//  1. Single dirty owner machine-wide: at most one cluster holds dirty
//     data (in a processor cache, the NC or a page-cache frame), and
//     when one does, the directory names exactly that cluster.
//  2. A directory-recorded dirty owner actually holds a copy, and no
//     other cluster holds any (stale) copy while it does.
//  3. Directory presence bits are a superset of the clusters actually
//     caching the block (full-map sticky bits, or pointers/broadcast
//     for the limited directory).
//  4. Limited-directory pointer consistency: an entry never carries
//     more pointers than its Dir_iB limit.
//  5. Victim-cache exclusivity: a victim NC frame never coexists with a
//     dirty L1 copy of the same block (the frame would be stale). Clean
//     overlap is legal: the paper's §3.2 downgrade capture parks the
//     dirty master in the NC beside clean Shared L1 copies, and a later
//     remote read intervention may clean the NC frame in place.
//  6. Dirty inclusion for allocate-on-miss NCs (nc, NCD, infinite): a
//     remote block dirty in a processor cache has a dirty NC anchor;
//     NCD additionally keeps full inclusion.
//  7. Page-cache frame bounds (mapped pages never exceed frames) and
//     bit consistency (dirty bits imply valid bits).
//
// Violations are reported as structured *CheckError values wrapping
// ErrInvariant, carrying the offending block, cluster and a protocol
// state dump.
package check

import (
	"errors"
	"fmt"
	"strings"

	"dsmnc/internal/cluster"
	"dsmnc/internal/core"
	"dsmnc/internal/directory"
	"dsmnc/memsys"
	"dsmnc/trace"
)

// ErrInvariant is the sentinel all checker findings wrap.
var ErrInvariant = errors.New("check: coherence invariant violated")

// Kind classifies a violation.
type Kind uint8

// Violation kinds.
const (
	// KindDirtyOwner: multiple clusters dirty, or dirty data whose
	// cluster the directory does not name as owner, or an owner with no
	// copy.
	KindDirtyOwner Kind = iota
	// KindStaleCopy: a cluster holds a copy while another owns the block
	// dirty.
	KindStaleCopy
	// KindPresence: a cluster caches the block without a presence record
	// at the directory.
	KindPresence
	// KindPointer: a limited-directory entry exceeds its pointer limit.
	KindPointer
	// KindExclusivity: victim-cache exclusivity violated (an NC frame
	// beside a dirty L1 copy of the same block).
	KindExclusivity
	// KindInclusion: dirty (or full) inclusion violated for an
	// allocate-on-miss NC.
	KindInclusion
	// KindPageCache: page-cache frame bounds or bit consistency violated.
	KindPageCache
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDirtyOwner:
		return "dirty-owner"
	case KindStaleCopy:
		return "stale-copy"
	case KindPresence:
		return "presence"
	case KindPointer:
		return "pointer"
	case KindExclusivity:
		return "exclusivity"
	case KindInclusion:
		return "inclusion"
	case KindPageCache:
		return "pagecache"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// CheckError is one invariant violation.
type CheckError struct {
	Kind    Kind
	Block   memsys.Block
	Cluster int // offending cluster, or -1 when machine-wide
	Detail  string
	Dump    string // protocol state dump for the block
}

// Error formats the violation with its state dump.
func (e *CheckError) Error() string {
	return fmt.Sprintf("%v [%s] block %d cluster %d: %s\n%s",
		ErrInvariant, e.Kind, e.Block, e.Cluster, e.Detail, e.Dump)
}

// Unwrap makes errors.Is(err, ErrInvariant) true.
func (e *CheckError) Unwrap() error { return ErrInvariant }

// Config wires the checker to the machine under test.
type Config struct {
	Geometry memsys.Geometry
	Dir      directory.Protocol
	Clusters []*cluster.Cluster
	// Home returns the home cluster of p if the page has been placed.
	Home func(p memsys.Page) (int, bool)
}

// Checker validates the machine's cross-layer invariants.
type Checker struct {
	geo      memsys.Geometry
	dir      directory.Protocol
	clusters []*cluster.Cluster
	home     func(memsys.Page) (int, bool)
	checks   int64
}

// New builds a checker over the given machine state.
func New(cfg Config) *Checker {
	home := cfg.Home
	if home == nil {
		home = func(memsys.Page) (int, bool) { return 0, false }
	}
	return &Checker{
		geo:      cfg.Geometry,
		dir:      cfg.Dir,
		clusters: cfg.Clusters,
		home:     home,
	}
}

// Checks returns how many block checks have run.
func (c *Checker) Checks() int64 { return c.checks }

// CheckRef validates every invariant touched by reference r: the
// referenced block's coherence state plus the accessing page's page-cache
// bookkeeping in every cluster.
func (c *Checker) CheckRef(r trace.Ref) error {
	b := memsys.BlockOf(r.Addr)
	if err := c.CheckBlock(b); err != nil {
		return err
	}
	return c.checkPageCaches(memsys.PageOf(r.Addr))
}

// CheckAll validates every invariant for each block in blocks.
func (c *Checker) CheckAll(blocks []memsys.Block) error {
	for _, b := range blocks {
		if err := c.CheckBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// CheckBlock validates block b's machine-wide coherence invariants.
func (c *Checker) CheckBlock(b memsys.Block) error {
	c.checks++
	owner := c.dir.DirtyOwner(b)

	// (1) at most one cluster dirty, and the directory names it.
	dirtyAt := -1
	for i, cl := range c.clusters {
		if !cl.HasDirty(b) {
			continue
		}
		if dirtyAt >= 0 {
			return c.fail(KindDirtyOwner, b, i,
				fmt.Sprintf("dirty in clusters %d and %d", dirtyAt, i))
		}
		dirtyAt = i
	}
	if dirtyAt >= 0 && owner != dirtyAt {
		return c.fail(KindDirtyOwner, b, dirtyAt,
			fmt.Sprintf("cluster %d holds dirty data but directory owner is %d", dirtyAt, owner))
	}

	// (2) a recorded owner holds a copy; nobody else holds any.
	if owner != directory.NoOwner {
		if owner < 0 || owner >= len(c.clusters) {
			return c.fail(KindDirtyOwner, b, owner, "directory owner out of range")
		}
		if !c.clusters[owner].HasBlock(b) {
			return c.fail(KindDirtyOwner, b, owner,
				fmt.Sprintf("directory names cluster %d dirty owner but it holds no copy", owner))
		}
		for i, cl := range c.clusters {
			if i != owner && cl.HasBlock(b) {
				return c.fail(KindStaleCopy, b, i,
					fmt.Sprintf("cluster %d holds a copy while cluster %d is dirty owner", i, owner))
			}
		}
	}

	// (3) presence superset of copies.
	for i, cl := range c.clusters {
		if cl.HasBlock(b) && !c.presence(i, b) {
			return c.fail(KindPresence, b, i,
				fmt.Sprintf("cluster %d caches the block with no directory presence record", i))
		}
	}

	// (4) limited-directory pointer consistency.
	if ld, ok := c.dir.(*directory.LimitedDirectory); ok {
		if n := ld.PointerCount(b); n > ld.PointerLimit() {
			return c.fail(KindPointer, b, -1,
				fmt.Sprintf("entry holds %d pointers, limit is %d", n, ld.PointerLimit()))
		}
	}

	// (5)+(6) NC-organization invariants.
	home, homeKnown := c.home(memsys.PageOfBlock(b))
	for i, cl := range c.clusters {
		remote := homeKnown && home != i
		switch nc := cl.NC().(type) {
		case *core.VictimNC:
			// L1/NC overlap is legal only while the NC is the cluster's
			// master copy: the §3.2 downgrade capture (NC dirty, L1s
			// clean Shared) and its aftermath once a remote read
			// intervention cleans the NC frame. A dirty L1 copy beside
			// any NC frame means the frame is stale.
			if nc.Contains(b) && cl.Bus().HasDirty(b) {
				return c.fail(KindExclusivity, b, i,
					"victim NC holds a stale frame under a dirty L1 copy")
			}
		case *core.RelaxedNC:
			if remote && cl.Bus().HasDirty(b) && !nc.ContainsDirty(b) {
				return c.fail(KindInclusion, b, i,
					"remote block dirty in L1 with no dirty NC anchor (relaxed NC)")
			}
		case *core.InclusiveNC:
			if remote && cl.Bus().HasBlock(b) && !nc.Contains(b) {
				return c.fail(KindInclusion, b, i,
					"remote block in L1 without an NC frame (full inclusion)")
			}
			if remote && cl.Bus().HasDirty(b) && !nc.ContainsDirty(b) {
				return c.fail(KindInclusion, b, i,
					"remote block dirty in L1 with no dirty NC anchor (inclusive NC)")
			}
		case *core.InfiniteNC:
			if remote && cl.Bus().HasDirty(b) && !nc.ContainsDirty(b) {
				return c.fail(KindInclusion, b, i,
					"remote block dirty in L1 with no dirty NC anchor (infinite NC)")
			}
		}
	}
	return nil
}

// checkPageCaches validates page-cache frame bounds and bit consistency
// for page p in every cluster.
func (c *Checker) checkPageCaches(p memsys.Page) error {
	for i, cl := range c.clusters {
		pc := cl.PC()
		if pc == nil {
			continue
		}
		if pc.Mapped() > pc.Frames() {
			return c.fail(KindPageCache, memsys.FirstBlock(p), i,
				fmt.Sprintf("page cache maps %d pages in %d frames", pc.Mapped(), pc.Frames()))
		}
		if valid, dirty, ok := pc.Bits(p); ok && dirty&^valid != 0 {
			return c.fail(KindPageCache, memsys.FirstBlock(p), i,
				fmt.Sprintf("page %d: dirty bits %#x not covered by valid bits %#x", p, dirty, valid))
		}
	}
	return nil
}

// presence reports whether the directory still records cluster i as a
// possible sharer of b. Unknown directory implementations are skipped
// (reported as present).
func (c *Checker) presence(i int, b memsys.Block) bool {
	switch d := c.dir.(type) {
	case *directory.Directory:
		return d.Sticky(i, b)
	case *directory.LimitedDirectory:
		return d.Presence(i, b)
	}
	return true
}

func (c *Checker) fail(kind Kind, b memsys.Block, cl int, detail string) error {
	return &CheckError{
		Kind:    kind,
		Block:   b,
		Cluster: cl,
		Detail:  detail,
		Dump:    c.dump(b),
	}
}

// dump renders the full protocol state for block b across the machine.
func (c *Checker) dump(b memsys.Block) string {
	var sb strings.Builder
	p := memsys.PageOfBlock(b)
	fmt.Fprintf(&sb, "block %d page %d addr %#x owner=%d",
		b, p, uint64(b.Base()), c.dir.DirtyOwner(b))
	if home, ok := c.home(p); ok {
		fmt.Fprintf(&sb, " home=%d", home)
	} else {
		sb.WriteString(" home=unplaced")
	}
	for i, cl := range c.clusters {
		nc := cl.NC()
		fmt.Fprintf(&sb, "\n  cluster %d: presence=%t l1copies=%d l1dirty=%t nc=%t ncdirty=%t",
			i, c.presence(i, b), cl.Bus().Holders(b), cl.Bus().HasDirty(b),
			nc.Contains(b), nc.ContainsDirty(b))
		if pc := cl.PC(); pc != nil {
			st := pc.Lookup(b)
			fmt.Fprintf(&sb, " pc={mapped:%t valid:%t dirty:%t}", st.Mapped, st.Valid, st.Dirty)
		}
	}
	return sb.String()
}
