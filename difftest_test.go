package dsmnc

// The differential-equivalence harness: the proof layer for hot-path
// work. Every {base, nc, vb, vp, vxp} x workload cell is run with the
// time-series sampler and the coherence event trace attached, and its
// complete observable outcome — the full stats.Counters, the sampler
// series bytes and the event-trace bytes — is reduced to digests and
// compared against the committed corpus in testdata/difftest/. Any
// engine change that alters a single counter, sample or traced event
// anywhere in the corpus fails here, which is what lets the simulator
// internals be rebuilt for speed with confidence ("byte-identical or it
// doesn't merge").
//
// Regenerate the corpus (only when an intentional behavior change is
// being made) with:
//
//	go test -run 'TestGoldenStats|TestDifferentialEquivalence' -update .
//
// The sibling golden_test.go holds the readable half of the corpus: the
// full per-cell counters with a field-level diff on drift.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dsmnc/stats"
	"dsmnc/telemetry"
	"dsmnc/workload"
)

// update regenerates the committed corpora (testdata/golden and
// testdata/difftest) instead of comparing against them.
var update = flag.Bool("update", false, "rewrite the golden-stats and difftest corpora from the current engine")

// Corpus parameters. The sampler interval and trace stride are chosen
// so every cell retains a multi-sample series and a multi-event trace
// at ScaleSmall without the corpus run taking longer than a few
// seconds.
const (
	diffSampleEvery = 25_000
	diffTraceEvery  = 499
)

// diffSystems returns the five principal organizations of the paper's
// design space, sized as in bench_test.go.
func diffSystems() []System {
	return []System{
		Base(),
		NC(16 << 10),
		VB(16 << 10),
		VP(16 << 10),
		VXPFrac(16<<10, 5, 32),
	}
}

// diffBenches returns the workload axis of the corpus. The -short run
// (the race gate) keeps two representative workloads so the full
// equivalence property is still exercised under the race detector
// without exceeding its budget.
func diffBenches(short bool) []string {
	if short {
		return []string{"FFT", "Ocean"}
	}
	return workload.Names()
}

// cellName returns the file-safe name of a corpus cell.
func cellName(sys System, bench string) string {
	r := strings.NewReplacer("(", "-", ")", "", "/", "-", " ", "")
	return r.Replace(sys.Name) + "_" + bench
}

// diffOutcome is the complete observable result of one cell: the
// reference count, the aggregated event counters, and digests of the
// sampler series and the event-trace stream.
type diffOutcome struct {
	Refs        int64          `json:"refs"`
	Stats       stats.Counters `json:"stats"`
	SamplerLen  int            `json:"sampler_len"`
	SamplerSHA  string         `json:"sampler_sha256"`
	TraceEvents int64          `json:"trace_events"`
	TraceSHA    string         `json:"trace_sha256"`
}

// digest is the compact committed form of an outcome: everything
// reduced to lengths and hashes (the readable counters live in
// testdata/golden/).
type diffDigest struct {
	Refs        int64  `json:"refs"`
	StatsSHA    string `json:"stats_sha256"`
	SamplerLen  int    `json:"sampler_len"`
	SamplerSHA  string `json:"sampler_sha256"`
	TraceEvents int64  `json:"trace_events"`
	TraceSHA    string `json:"trace_sha256"`
}

func (o diffOutcome) digest() (diffDigest, error) {
	statsJSON, err := json.Marshal(o.Stats)
	if err != nil {
		return diffDigest{}, err
	}
	return diffDigest{
		Refs:        o.Refs,
		StatsSHA:    shaHex(statsJSON),
		SamplerLen:  o.SamplerLen,
		SamplerSHA:  o.SamplerSHA,
		TraceEvents: o.TraceEvents,
		TraceSHA:    o.TraceSHA,
	}, nil
}

func shaHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// runDiffCell simulates one cell with the full telemetry stack attached
// (clockless, so every byte of the series is deterministic) and returns
// its observable outcome.
func runDiffCell(sys System, benchName string) (diffOutcome, error) {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleSmall
	opt.Sampler = telemetry.NewSampler(diffSampleEvery, telemetry.DefaultCapacity)
	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf, diffTraceEvery)
	opt.EventTrace = tracer

	bench := workload.ByName(benchName, opt.Scale)
	if bench == nil {
		return diffOutcome{}, fmt.Errorf("unknown workload %q", benchName)
	}
	res, err := Run(bench, sys, opt)
	if err != nil {
		return diffOutcome{}, err
	}
	if err := tracer.Close(); err != nil {
		return diffOutcome{}, err
	}
	var series bytes.Buffer
	if err := opt.Sampler.WriteJSONL(&series); err != nil {
		return diffOutcome{}, err
	}
	return diffOutcome{
		Refs:        res.Refs,
		Stats:       res.Counters,
		SamplerLen:  opt.Sampler.Len(),
		SamplerSHA:  shaHex(series.Bytes()),
		TraceEvents: tracer.Kept(),
		TraceSHA:    shaHex(traceBuf.Bytes()),
	}, nil
}

// The corpus cells are simulated once per test binary and shared
// between TestGoldenStats and TestDifferentialEquivalence.
var (
	diffCacheMu sync.Mutex
	diffCache   = map[string]diffOutcome{}
)

func diffCellOutcome(t *testing.T, sys System, benchName string) diffOutcome {
	t.Helper()
	key := cellName(sys, benchName)
	diffCacheMu.Lock()
	out, ok := diffCache[key]
	diffCacheMu.Unlock()
	if ok {
		return out
	}
	out, err := runDiffCell(sys, benchName)
	if err != nil {
		t.Fatalf("cell %s: %v", key, err)
	}
	diffCacheMu.Lock()
	diffCache[key] = out
	diffCacheMu.Unlock()
	return out
}

// TestDifferentialEquivalence is the equivalence gate: every corpus
// cell must reproduce the committed digests exactly — same reference
// count, byte-identical counters, byte-identical sampler series,
// byte-identical event trace.
func TestDifferentialEquivalence(t *testing.T) {
	for _, sys := range diffSystems() {
		for _, benchName := range diffBenches(testing.Short()) {
			sys, benchName := sys, benchName
			t.Run(cellName(sys, benchName), func(t *testing.T) {
				out := diffCellOutcome(t, sys, benchName)
				got, err := out.digest()
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", "difftest", cellName(sys, benchName)+".json")
				if *update {
					writeJSONFile(t, path, got)
					return
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no committed digest (run with -update to create it): %v", err)
				}
				var want diffDigest
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("corrupt digest file %s: %v", path, err)
				}
				if got != want {
					t.Errorf("observable behavior drifted from the committed corpus:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

func writeJSONFile(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
