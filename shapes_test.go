package dsmnc

// The repository's headline validation: the paper's conclusions, asserted
// as orderings over a small-scale run of the real experiment drivers.
// These are the claims EXPERIMENTS.md documents; if a workload or
// protocol change breaks one, this test names it. Skipped under -short
// (several minutes of simulation).

import (
	"testing"

	"dsmnc/workload"
)

func shapeOptions() Options {
	opt := DefaultOptions()
	opt.Scale = workload.ScaleSmall
	return opt
}

func benchIndex(exp Experiment, name string) int {
	for i, row := range exp.Rows {
		if row.Bench == name {
			return i
		}
	}
	return -1
}

func sysIndex(exp Experiment, name string) int {
	for i, s := range exp.Systems {
		if s == name {
			return i
		}
	}
	return -1
}

func norm(t *testing.T, exp Experiment, bench, sys string) float64 {
	t.Helper()
	r, c := benchIndex(exp, bench), sysIndex(exp, sys)
	if r < 0 || c < 0 {
		t.Fatalf("missing %s/%s in %s", bench, sys, exp.ID)
	}
	return exp.Rows[r].Values[c].Norm
}

// TestPaperShapesFig9 asserts the stall conclusions of §6.3 at small
// scale.
func TestPaperShapesFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes of simulation; run without -short")
	}
	exp := mustExp(t, Fig9, shapeOptions())

	// (a) FFT: no NC at all beats an infinite DRAM NC.
	if v := norm(t, exp, "FFT", "base"); v >= 1 {
		t.Errorf("FFT base = %.3f, want < 1 (necessary misses dominate)", v)
	}
	// (b) Regular class: the victim-cache page system beats NCD.
	for _, bench := range []string{"Cholesky", "FFT", "LU", "Ocean"} {
		vbp := norm(t, exp, bench, "vbp")
		ncd := norm(t, exp, bench, "NCD")
		if vbp >= ncd*1.02 {
			t.Errorf("%s: vbp %.3f not below NCD %.3f (regular class)", bench, vbp, ncd)
		}
	}
	// Irregular class: NCD beats the R-NUMA (ncp) page system.
	for _, bench := range []string{"FMM", "Radix", "Raytrace"} {
		ncp := norm(t, exp, bench, "ncp")
		ncd := norm(t, exp, bench, "NCD")
		if ncd >= ncp {
			t.Errorf("%s: NCD %.3f not below ncp %.3f (irregular class)", bench, ncd, ncp)
		}
	}
	// Barnes sides with the page caches despite being irregular (small
	// data set).
	if vbp, ncd := norm(t, exp, "Barnes", "vbp"), norm(t, exp, "Barnes", "NCD"); vbp >= ncd {
		t.Errorf("Barnes: vbp %.3f not below NCD %.3f", vbp, ncd)
	}
	// (c) vbp <= ncp for every benchmark.
	for _, row := range exp.Rows {
		vbp := norm(t, exp, row.Bench, "vbp")
		ncp := norm(t, exp, row.Bench, "ncp")
		if vbp > ncp*1.01 {
			t.Errorf("%s: vbp %.3f above ncp %.3f", row.Bench, vbp, ncp)
		}
	}
	// (d) LU is the page-indexing loss.
	if vpp, vbp := norm(t, exp, "LU", "vpp"), norm(t, exp, "LU", "vbp"); vpp <= vbp {
		t.Errorf("LU: vpp %.3f not above vbp %.3f (page-index conflicts)", vpp, vbp)
	}
	// NCS bounds everything from below (small protocol slack allowed).
	for _, row := range exp.Rows {
		ncs := norm(t, exp, row.Bench, "NCS")
		for i, v := range row.Values {
			if v.Norm < ncs*0.98 {
				t.Errorf("%s: %s (%.3f) beats NCS (%.3f)", row.Bench, exp.Systems[i], v.Norm, ncs)
			}
		}
	}
}

// TestPaperShapesFig10 asserts the traffic conclusions of §6.4.
func TestPaperShapesFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes of simulation; run without -short")
	}
	exp := mustExp(t, Fig10, shapeOptions())
	// The victim cache cuts Radix traffic dramatically versus ncp.
	radixNcp := norm(t, exp, "Radix", "ncp")
	radixVbp := norm(t, exp, "Radix", "vbp")
	if radixVbp > radixNcp*0.7 {
		t.Errorf("Radix traffic: vbp %.3f not well below ncp %.3f", radixVbp, radixNcp)
	}
	// NCD is the Radix traffic winner among finite systems.
	if ncd := norm(t, exp, "Radix", "NCD"); ncd > radixVbp {
		t.Errorf("Radix traffic: NCD %.3f above vbp %.3f", ncd, radixVbp)
	}
	// FFT traffic is insensitive to everything (±5%).
	for i := range exp.Systems {
		v := exp.Rows[benchIndex(exp, "FFT")].Values[i].Norm
		if v < 0.95 || v > 1.10 {
			t.Errorf("FFT traffic under %s = %.3f, want ~1", exp.Systems[i], v)
		}
	}
}

// TestPaperShapesFig11 asserts the vxp conclusions of §6.5.
func TestPaperShapesFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes of simulation; run without -short")
	}
	exp := mustExp(t, Fig11, shapeOptions())
	// LU is the vxp loss (same mechanism as vpp).
	lu := benchIndex(exp, "LU")
	if exp.Rows[lu].Values[1].Norm <= exp.Rows[lu].Values[0].Norm {
		t.Errorf("LU: vxp %.3f not above ncp %.3f", exp.Rows[lu].Values[1].Norm, exp.Rows[lu].Values[0].Norm)
	}
	// Radix improves markedly at threshold 64 vs 32.
	rx := benchIndex(exp, "Radix")
	t32, t64 := exp.Rows[rx].Values[1].Norm, exp.Rows[rx].Values[2].Norm
	if t64 >= t32 {
		t.Errorf("Radix: vxp t64 %.3f not below t32 %.3f", t64, t32)
	}
	// Cholesky: vxp performs at least as well as ncp (counter sharing
	// does not hurt).
	ch := benchIndex(exp, "Cholesky")
	if exp.Rows[ch].Values[1].Norm > exp.Rows[ch].Values[0].Norm*1.05 {
		t.Errorf("Cholesky: vxp %.3f well above ncp %.3f",
			exp.Rows[ch].Values[1].Norm, exp.Rows[ch].Values[0].Norm)
	}
}
