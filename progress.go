package dsmnc

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dsmnc/telemetry"
)

// Progress is a concurrency-safe live account of a run or sweep,
// shared through Options.Progress: the simulation workers bump it, and
// Heartbeat (or any caller polling the counters) reports it. The zero
// value is ready to use.
type Progress struct {
	// Refs counts references applied across all in-flight cells
	// (skipped checkpoint prefixes and journal-restored cells do not
	// count — only simulation actually performed).
	Refs atomic.Int64
	// CellsDone and CellsTotal track sweep completion; journal-restored
	// cells count as done the moment they are skipped.
	CellsDone  atomic.Int64
	CellsTotal atomic.Int64
	// CellsFailed counts cells whose final outcome (after any retries)
	// was an error; CellsRetried counts the extra attempts spent on
	// transiently-failing cells, whatever their final outcome.
	CellsFailed  atomic.Int64
	CellsRetried atomic.Int64
	// JournalWrites counts durable cell records appended so far.
	JournalWrites atomic.Int64

	lastJournal atomic.Int64 // unix nanoseconds of the last append
	startNanos  atomic.Int64 // unix nanoseconds of the first observation
}

// markStart records the observation start time once; Heartbeat and
// RegisterMetrics call it so rates have a basis.
func (p *Progress) markStart() {
	p.startNanos.CompareAndSwap(0, time.Now().UnixNano())
}

// elapsed returns the time since the first observation, 0 before one.
func (p *Progress) elapsed() time.Duration {
	ns := p.startNanos.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns))
}

// noteJournal records a successful journal append.
func (p *Progress) noteJournal() {
	p.JournalWrites.Add(1)
	p.lastJournal.Store(time.Now().UnixNano())
}

// LastJournalWrite returns when the last journal record was written,
// and whether one has been written at all.
func (p *Progress) LastJournalWrite() (time.Time, bool) {
	ns := p.lastJournal.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// ETA estimates the remaining sweep time from the cell completion rate
// so far. ok is false until at least one cell finished (no basis), or
// when there is no cell accounting at all.
func (p *Progress) ETA() (time.Duration, bool) {
	total := p.CellsTotal.Load()
	done := p.CellsDone.Load()
	el := p.elapsed()
	if total <= 0 || done <= 0 || el <= 0 {
		return 0, false
	}
	remaining := total - done
	if remaining <= 0 {
		return 0, true
	}
	perCell := el / time.Duration(done)
	return perCell * time.Duration(remaining), true
}

// RegisterMetrics exposes the progress counters on a telemetry registry
// as the dsmnc_* series scraped from the -metrics endpoint: references
// applied, cell completion and failure counts, retry volume, journal
// writes and journal lag. It registers unlabeled series, so it fits a
// process with one sweep; a process tracking several concurrent jobs
// (the serving layer) must scope each Progress with
// RegisterMetricsLabeled or the registrations collide.
func (p *Progress) RegisterMetrics(r *telemetry.Registry) error {
	return p.RegisterMetricsLabeled(r, "")
}

// RegisterMetricsLabeled is RegisterMetrics with every series carrying
// a job label, giving each Progress its own metric scope: two
// concurrent jobs registered under different labels coexist on one
// registry instead of fighting over (or failing to register) the same
// gauges. An empty job registers unlabeled series.
func (p *Progress) RegisterMetricsLabeled(r *telemetry.Registry, job string) error {
	p.markStart()
	var labels telemetry.Labels
	if job != "" {
		labels = telemetry.Labels{"job": job}
	}
	counter := func(name, help string, fn func() float64) error {
		return r.CounterWith(name, help, labels, fn)
	}
	gauge := func(name, help string, fn func() float64) error {
		return r.GaugeWith(name, help, labels, fn)
	}
	regs := []error{
		counter("dsmnc_refs_applied_total", "References applied across all in-flight cells.",
			func() float64 { return float64(p.Refs.Load()) }),
		gauge("dsmnc_cells_done", "Sweep cells completed (including journal-restored ones).",
			func() float64 { return float64(p.CellsDone.Load()) }),
		gauge("dsmnc_cells_total", "Sweep cells scheduled.",
			func() float64 { return float64(p.CellsTotal.Load()) }),
		counter("dsmnc_cells_failed_total", "Cells whose final outcome was an error.",
			func() float64 { return float64(p.CellsFailed.Load()) }),
		counter("dsmnc_cell_retries_total", "Extra attempts spent on transiently-failing cells.",
			func() float64 { return float64(p.CellsRetried.Load()) }),
		counter("dsmnc_journal_writes_total", "Durable journal records appended.",
			func() float64 { return float64(p.JournalWrites.Load()) }),
		gauge("dsmnc_journal_lag_seconds", "Seconds since the last journal append (0 before the first).",
			func() float64 {
				t, ok := p.LastJournalWrite()
				if !ok {
					return 0
				}
				return time.Since(t).Seconds()
			}),
		gauge("dsmnc_refs_per_second", "Average reference throughput since observation started.",
			func() float64 {
				el := p.elapsed().Seconds()
				if el <= 0 {
					return 0
				}
				return float64(p.Refs.Load()) / el
			}),
	}
	for _, err := range regs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Heartbeat prints a one-line status to w at the given interval —
// references applied, reference rate, cells done/total with an ETA,
// time since the last journal write — until the returned stop function
// is called. stop prints one final status line (so every observed run
// ends with its up-to-date totals, even one shorter than the interval)
// and blocks until the reporter has exited, so w is safe to reuse
// afterwards.
func (p *Progress) Heartbeat(w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	p.markStart()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		last := p.Refs.Load()
		lastT := time.Now()
		report := func(now time.Time) {
			refs := p.Refs.Load()
			rate := 0.0
			if dt := now.Sub(lastT).Seconds(); dt > 0 {
				rate = float64(refs-last) / dt
			}
			last, lastT = refs, now
			line := fmt.Sprintf("progress: %d refs (%.0f refs/s)", refs, rate)
			if total := p.CellsTotal.Load(); total > 0 {
				line += fmt.Sprintf(", cells %d/%d", p.CellsDone.Load(), total)
				if failed := p.CellsFailed.Load(); failed > 0 {
					line += fmt.Sprintf(" (%d failed)", failed)
				}
				if eta, ok := p.ETA(); ok && eta > 0 {
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
			}
			if t, ok := p.LastJournalWrite(); ok {
				line += fmt.Sprintf(", last journal write %s ago",
					time.Since(t).Round(time.Second))
			}
			fmt.Fprintln(w, line)
		}
		for {
			select {
			case <-done:
				report(time.Now())
				return
			case now := <-tick.C:
				report(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
