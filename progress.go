package dsmnc

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a concurrency-safe live account of a run or sweep,
// shared through Options.Progress: the simulation workers bump it, and
// Heartbeat (or any caller polling the counters) reports it. The zero
// value is ready to use.
type Progress struct {
	// Refs counts references applied across all in-flight cells
	// (skipped checkpoint prefixes and journal-restored cells do not
	// count — only simulation actually performed).
	Refs atomic.Int64
	// CellsDone and CellsTotal track sweep completion; journal-restored
	// cells count as done the moment they are skipped.
	CellsDone  atomic.Int64
	CellsTotal atomic.Int64
	// JournalWrites counts durable cell records appended so far.
	JournalWrites atomic.Int64

	lastJournal atomic.Int64 // unix nanoseconds of the last append
}

// noteJournal records a successful journal append.
func (p *Progress) noteJournal() {
	p.JournalWrites.Add(1)
	p.lastJournal.Store(time.Now().UnixNano())
}

// LastJournalWrite returns when the last journal record was written,
// and whether one has been written at all.
func (p *Progress) LastJournalWrite() (time.Time, bool) {
	ns := p.lastJournal.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Heartbeat prints a one-line status to w at the given interval —
// references applied, reference rate, cells done/total, time since the
// last journal write — until the returned stop function is called.
// stop blocks until the reporter has exited, so w is safe to reuse
// afterwards.
func (p *Progress) Heartbeat(w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		last := p.Refs.Load()
		lastT := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				refs := p.Refs.Load()
				rate := float64(refs-last) / now.Sub(lastT).Seconds()
				last, lastT = refs, now
				line := fmt.Sprintf("progress: %d refs (%.0f refs/s)", refs, rate)
				if total := p.CellsTotal.Load(); total > 0 {
					line += fmt.Sprintf(", cells %d/%d", p.CellsDone.Load(), total)
				}
				if t, ok := p.LastJournalWrite(); ok {
					line += fmt.Sprintf(", last journal write %s ago",
						time.Since(t).Round(time.Second))
				}
				fmt.Fprintln(w, line)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
