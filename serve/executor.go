package serve

// The executor fabric: execution sits behind a transport-shaped
// Executor interface, and every attempt runs under a lease the executor
// must heartbeat-renew. A lease that expires without renewal — worker
// crash, stall, dropped result — is revoked by the scheduler's monitor
// and the job is reassigned with a bounded retry budget, exponential
// backoff and deterministic seeded jitter, the same transient/permanent
// split the sweep retries use (ErrLeaseLost is transient; engine and
// config errors are permanent). Executors are fault domains: a circuit
// breaker quarantines one after K consecutive lease losses and the
// scheduler keeps serving on the healthy remainder, reporting
// "degraded" through Readiness until the quarantine lifts.
//
// The in-process implementation is Local(): it runs the cell engine on
// the scheduler's own worker pool, heartbeating from a sidecar ticker
// so a live computation of any length keeps its lease. A remote
// transport (ROADMAP item 1) implements the same three-method surface —
// Execute with a lease to renew and a context that means "the
// scheduler gave up on you" — and inherits failure detection, retries
// and the chaos proof without touching the scheduler.

import (
	"context"
	"math/rand"
	"time"

	"dsmnc"
)

// Task is one attempt of one job as an executor sees it: the job's
// idempotent identity, which attempt this is (1-based; it grows only
// when a lease is lost and the job reassigned), and the canonical
// request a remote executor would recompile. For local executors the
// task also carries the compiled inputs.
type Task struct {
	ID      string  `json:"id"`
	Attempt int     `json:"attempt"`
	Request Request `json:"request"`
	// Fingerprint is the coordinator's options fingerprint for this
	// job — the identity half a remote worker verifies by recompiling
	// Request against its own base options.
	Fingerprint string `json:"fingerprint"`

	// job is the local fast path: the scheduler's own record with the
	// compiled bench/system/options. A remote transport serializes
	// Request instead and leaves it nil.
	job *job
}

// Executor is one execution fault domain. Execute runs one attempt of
// one task to completion and returns its result. The context is the
// attempt's lease context: it is canceled when the lease is revoked
// (the scheduler gave up on this attempt and is reassigning or failing
// the job) or when the job itself is canceled — Execute should abandon
// work and return promptly. While working, the executor must renew the
// lease via lease.Heartbeat() more often than lease.TTL(), or the
// scheduler will revoke the lease and reassign the job to another
// executor. A transient infrastructure failure (lost worker, dropped
// connection) should be returned as an ErrLeaseLost-wrapped error so
// the scheduler reassigns; any other error is permanent and fails the
// job.
type Executor interface {
	// Name identifies the fault domain in statuses, readiness and logs.
	Name() string
	Execute(ctx context.Context, task *Task, lease *Lease) (dsmnc.Result, error)
}

// schedulerBound is implemented by executors that need the owning
// scheduler (the local pool executor); New binds them before the
// workers start.
type schedulerBound interface {
	bind(s *Scheduler)
}

// Lease is the scheduler's grant of one attempt of one job to one
// executor. Heartbeat renews it; the scheduler's monitor revokes a
// lease whose last renewal is older than the TTL.
type Lease struct {
	s     *Scheduler
	j     *job
	epoch uint64
}

// TTL returns how long the lease may go without a heartbeat before the
// scheduler revokes it; 0 means leases are disabled and the attempt
// runs unleased (the watchdog is then the only supervisor).
func (l *Lease) TTL() time.Duration { return l.s.cfg.LeaseTTL }

// Heartbeat renews the lease. It returns false once the lease is no
// longer current — revoked, reassigned, or the job settled — at which
// point the executor should abandon the attempt (its context is
// canceled at the same moment).
func (l *Lease) Heartbeat() bool {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if l.j.state != StateRunning || l.j.epoch != l.epoch {
		return false
	}
	l.j.lastBeat = time.Now()
	return true
}

// heartbeatEvery is the renewal cadence local executors use: a quarter
// of the TTL, so three beats can be lost to scheduling noise before the
// lease actually expires.
func (l *Lease) heartbeatEvery() time.Duration {
	ttl := l.TTL()
	if ttl <= 0 {
		return 0
	}
	every := ttl / 4
	if every < time.Millisecond {
		every = time.Millisecond
	}
	return every
}

// Local returns the in-process executor: it runs the cell engine on the
// calling worker goroutine's slot, with a sidecar ticker renewing the
// lease for as long as the engine is genuinely computing. The name
// labels the fault domain in statuses and readiness.
func Local(name string) Executor {
	return &localExecutor{name: name}
}

// localExecutor wraps today's goroutine pool as a fault domain.
type localExecutor struct {
	name string
	s    *Scheduler
}

func (e *localExecutor) bind(s *Scheduler) { e.s = s }

func (e *localExecutor) Name() string { return e.name }

// Execute runs the engine in a goroutine and heartbeats until it
// returns. It waits for the engine unconditionally — a wedged engine
// holds this pool slot exactly as it did pre-fabric, and the watchdog
// (not the lease) is the mechanism that settles its job.
func (e *localExecutor) Execute(ctx context.Context, t *Task, lease *Lease) (dsmnc.Result, error) {
	type outcome struct {
		res dsmnc.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.s.runFn(ctx, t.job)
		done <- outcome{res, err}
	}()
	every := lease.heartbeatEvery()
	if every <= 0 {
		o := <-done
		return o.res, o.err
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case o := <-done:
			return o.res, o.err
		case <-tick.C:
			lease.Heartbeat()
		}
	}
}

// execState is the scheduler's health record for one executor: the
// circuit breaker's consecutive-loss count, the quarantine window, and
// lifetime counters. Guarded by the scheduler's mu.
type execState struct {
	exec        Executor
	name        string
	consecutive int       // lease losses since the last delivered outcome
	quarantined bool      // circuit open
	until       time.Time // quarantine expiry; after it the executor gets a probe
	lost        int64     // lifetime lease losses
	delivered   int64     // lifetime delivered outcomes (any terminal kind)
}

// healthyLocked reports whether the executor should receive work: not
// quarantined, or quarantined long enough that it has earned a
// half-open probe.
func (es *execState) healthyLocked(now time.Time) bool {
	return !es.quarantined || now.After(es.until)
}

// noteDeliveredLocked records a completed round trip: whatever the
// outcome, the executor answered, so the breaker's consecutive-loss
// count resets and an open circuit closes.
func (es *execState) noteDeliveredLocked() {
	es.delivered++
	es.consecutive = 0
	es.quarantined = false
	es.until = time.Time{}
}

// noteLostLocked records a lease loss and trips the breaker at K
// consecutive losses (re-arming the window if a half-open probe fails
// again). It reports whether this loss newly opened (or re-armed) the
// quarantine.
func (es *execState) noteLostLocked(k int, quarantineFor time.Duration, now time.Time) bool {
	es.lost++
	es.consecutive++
	if k <= 0 || es.consecutive < k {
		return false
	}
	es.quarantined = true
	es.until = now.Add(quarantineFor)
	return true
}

// pickExecutorLocked chooses the fault domain for a dispatch: healthy
// executors first, preferring one other than the domain that just lost
// the job's lease (avoid = j.lastExec). Candidates are walked in
// routing order — the job ID's consistent-hash ring walk under hash
// routing (so duplicate submissions land on the same node and a
// join/leave moves only ~1/N of the fingerprints), round-robin
// otherwise. When every executor is quarantined the scheduler still
// serves — availability over purity — on the one whose quarantine
// expires soonest.
func (s *Scheduler) pickExecutorLocked(j *job) *execState {
	now := time.Now()
	avoid := j.lastExec
	n := len(s.execs)
	var candidates []*execState
	if s.ring != nil {
		for _, name := range s.ring.order(j.id) {
			candidates = append(candidates, s.execByName[name])
		}
	} else {
		candidates = make([]*execState, 0, n)
		for i := 0; i < n; i++ {
			candidates = append(candidates, s.execs[(s.rrNext+i)%n])
		}
	}
	pick := func(allowAvoid bool) *execState {
		for i, es := range candidates {
			if !es.healthyLocked(now) {
				continue
			}
			if !allowAvoid && n > 1 && es.name == avoid {
				continue
			}
			if s.ring == nil {
				s.rrNext = (s.rrNext + i + 1) % n
			}
			return es
		}
		return nil
	}
	if es := pick(false); es != nil {
		return es
	}
	if es := pick(true); es != nil {
		return es
	}
	best := s.execs[0]
	for _, es := range s.execs[1:] {
		if es.until.Before(best.until) {
			best = es
		}
	}
	return best
}

// slotsReporter is implemented by executors that know their node's
// slot capacity (RemoteExecutor, from its readiness probe); the
// scheduler sums these into the fleet-wide capacity behind RetryAfter.
type slotsReporter interface {
	Slots() int
}

// fleetSlots sums the probed slot capacity of every slot-reporting
// executor; 0 when no executor reports (an all-local fleet, or probes
// that have not answered yet).
func (s *Scheduler) fleetSlots() int {
	total := 0
	for _, es := range s.execs {
		if sr, ok := es.exec.(slotsReporter); ok {
			if n := sr.Slots(); n > 0 {
				total += n
			}
		}
	}
	return total
}

// retryDelay computes the backoff before a reassigned job re-enters the
// queue: exponential in the number of lease losses, jittered over
// [d/2, d] by the scheduler's seeded RNG (full determinism under a
// fixed RetrySeed), capped at maxDelay.
func retryDelay(base, maxDelay time.Duration, losses int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < losses && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// ExecutorHealth is one fault domain's account in Readiness.
type ExecutorHealth struct {
	Name            string    `json:"name"`
	Quarantined     bool      `json:"quarantined"`
	QuarantineUntil time.Time `json:"quarantine_until,omitzero"`
	ConsecutiveLost int       `json:"consecutive_lost,omitempty"`
	LeasesLost      int64     `json:"leases_lost,omitempty"`
	Delivered       int64     `json:"delivered,omitempty"`
}

// Readiness is the scheduler's readiness account, the substance behind
// an HTTP /readyz: Ready says whether fresh traffic should be routed
// here, Reason says why not (or how well) — "ok", "degraded" (serving,
// but at least one executor is quarantined), "recovering" (ledger
// replay still re-enqueueing), "draining", or "quarantined" (every
// executor's circuit is open).
type Readiness struct {
	Ready     bool             `json:"ready"`
	Reason    string           `json:"reason"`
	Executors []ExecutorHealth `json:"executors,omitempty"`
}

// Readiness reports whether the scheduler should receive fresh traffic
// and the health of each executor fault domain. Liveness is not its
// business: a draining or recovering scheduler is alive but not ready.
func (s *Scheduler) Readiness() Readiness {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	r := Readiness{Executors: make([]ExecutorHealth, 0, len(s.execs))}
	healthy := 0
	quarantined := 0
	for _, es := range s.execs {
		if es.healthyLocked(now) {
			healthy++
		}
		if es.quarantined {
			quarantined++
		}
		r.Executors = append(r.Executors, ExecutorHealth{
			Name:            es.name,
			Quarantined:     es.quarantined,
			QuarantineUntil: es.until,
			ConsecutiveLost: es.consecutive,
			LeasesLost:      es.lost,
			Delivered:       es.delivered,
		})
	}
	switch {
	case s.draining:
		r.Reason = "draining"
	case !s.recovered.Load():
		r.Reason = "recovering"
	case healthy == 0:
		r.Reason = "quarantined"
	case quarantined > 0:
		r.Ready, r.Reason = true, "degraded"
	default:
		r.Ready, r.Reason = true, "ok"
	}
	return r
}
