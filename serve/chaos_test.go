package serve

// The chaos gate (make chaos-smoke, run race-instrumented): soak the
// scheduler under sustained seeded fault injection — all five kinds —
// and require the fabric's contract: zero lost acknowledged jobs, zero
// duplicate completions, the breaker quarantining a rotten executor
// while the rest keep serving, a shed (never a hang) when the pool is
// saturated, and served results field-identical to the golden corpus
// even when every cell may be crashed, stalled or duplicated en route.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"dsmnc/stats"
)

func TestChaosTorture(t *testing.T) {
	t.Run("soak", testChaosSoak)
	t.Run("quarantine", testChaosQuarantine)
	t.Run("availability", testChaosAvailability)
	t.Run("golden", testChaosGolden)
}

// testChaosSoak: 120 jobs through two chaos-wrapped executors at 60%
// injection with the breaker off, so every fault kind lands repeatedly.
// Every job must complete exactly once; every revoked attempt's late
// return must be discarded.
func testChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	fr := newFakeRunner(nil, 0)
	chaosA := NewChaosExecutor(Local("chaos-0"), ChaosConfig{Seed: 1, Rate: 0.6})
	chaosB := NewChaosExecutor(Local("chaos-1"), ChaosConfig{Seed: 2, Rate: 0.6})
	s := mustScheduler(t, Config{
		Workers: 4, QueueDepth: 256, KeepResults: 1 << 16,
		LeaseTTL: 40 * time.Millisecond, LeaseTick: 5 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetrySeed: 7,
		MaxRetries: 12, QuarantineAfter: -1,
		Executors: []Executor{chaosA, chaosB},
		runFn:     fr.run,
	})

	const jobs = 120
	ids := make([]string, 0, jobs)
	for n := 0; n < jobs; n++ {
		st, err := s.Submit(req(n))
		if err != nil {
			t.Fatalf("submit %d: %v", n, err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s finished %s (%s) — an acknowledged job was lost to injection", id, st.State, st.Error)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Exactly-once: the completion counter equals the job count — no
	// duplicate completion slipped past the epoch guard.
	if got := s.completed.Load(); got != jobs {
		t.Errorf("completed = %d, want exactly %d", got, jobs)
	}
	if got := s.failed.Load() + s.canceled.Load(); got != 0 {
		t.Errorf("%d jobs failed or canceled under injection, want 0", got)
	}
	// The harness must actually have exercised every fault kind.
	injected := map[ChaosKind]int64{}
	for _, c := range []*ChaosExecutor{chaosA, chaosB} {
		for k, n := range c.Injected() {
			injected[k] += n
		}
	}
	for k := ChaosKind(0); k < chaosKinds; k++ {
		if injected[k] == 0 {
			t.Errorf("fault kind %s was never injected; the soak proves less than it claims", k)
		}
	}
	if got := s.leaseLost.Load(); got == 0 {
		t.Error("no lease was ever lost under 60% injection")
	}
	if got := s.reassigned.Load(); got == 0 {
		t.Error("no job was ever reassigned under 60% injection")
	}
	if got := s.staleResults.Load(); got == 0 {
		t.Error("no late return was ever discarded; the dup/crash kinds did not exercise the epoch guard")
	}
	t.Logf("soak: %d jobs, %v injected, %d leases lost, %d reassignments, %d stale returns discarded",
		jobs, injected, s.leaseLost.Load(), s.reassigned.Load(), s.staleResults.Load())
	checkNoGoroutineLeak(t, before)
}

// testChaosQuarantine: an executor that crashes every attempt trips the
// breaker after two consecutive losses; the scheduler keeps completing
// jobs on the clean domain and reports itself degraded-but-ready.
func testChaosQuarantine(t *testing.T) {
	fr := newFakeRunner(nil, 0)
	rotten := NewChaosExecutor(Local("rotten"), ChaosConfig{
		Seed: 5, Rate: 1, Kinds: []ChaosKind{ChaosCrash},
	})
	s := mustScheduler(t, Config{
		Workers: 2, LeaseTTL: 30 * time.Millisecond, LeaseTick: 5 * time.Millisecond,
		RetryBackoff: -1, MaxRetries: 5,
		QuarantineAfter: 2, QuarantineFor: time.Hour,
		Executors: []Executor{rotten, Local("clean")},
		runFn:     fr.run,
	})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	submitAll := func(lo, hi int) {
		t.Helper()
		for n := lo; n < hi; n++ {
			st, err := s.Submit(req(n))
			if err != nil {
				t.Fatalf("submit %d: %v", n, err)
			}
			if st, err := s.Wait(ctx, st.ID); err != nil || st.State != StateDone {
				t.Fatalf("job %d under a rotten executor: %v / %v, want done on the clean one", n, st, err)
			}
		}
	}
	submitAll(0, 8)
	if got := s.quarantined.Load(); got < 1 {
		t.Fatalf("breaker never tripped: quarantined = %d", got)
	}
	rd := s.Readiness()
	if !rd.Ready || rd.Reason != "degraded" {
		t.Errorf("readiness = %v %q, want ready and degraded", rd.Ready, rd.Reason)
	}
	var rottenHealth *ExecutorHealth
	for i := range rd.Executors {
		if rd.Executors[i].Name == "rotten" {
			rottenHealth = &rd.Executors[i]
		}
	}
	if rottenHealth == nil || !rottenHealth.Quarantined || rottenHealth.LeasesLost < 2 {
		t.Errorf("rotten executor's account %+v does not show the quarantine", rottenHealth)
	}
	// Post-quarantine traffic routes straight to the clean domain.
	lostBefore := s.leaseLost.Load()
	submitAll(8, 16)
	if got := s.leaseLost.Load(); got != lostBefore {
		t.Errorf("quarantined executor still lost %d leases on fresh traffic", got-lostBefore)
	}
}

// testChaosAvailability: with one executor quarantined and the pool
// saturated, submissions shed promptly with ErrBusy (the HTTP binding's
// 429 + Retry-After) — degraded means slower, never a hang.
func testChaosAvailability(t *testing.T) {
	gate := make(chan struct{})
	fr := newFakeRunner(gate, 0)
	rotten := NewChaosExecutor(Local("rotten"), ChaosConfig{
		Seed: 9, Rate: 1, Kinds: []ChaosKind{ChaosCrash},
	})
	s := mustScheduler(t, Config{
		Workers: 1, QueueDepth: 1,
		LeaseTTL: 30 * time.Millisecond, LeaseTick: 5 * time.Millisecond,
		RetryBackoff: -1, MaxRetries: 3,
		QuarantineAfter: 1, QuarantineFor: time.Hour,
		Executors: []Executor{rotten, Local("clean")},
		runFn:     fr.run,
	})
	defer func() {
		close(gate)
		if err := s.Drain(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	// Job A's first attempt crashes on the rotten executor (quarantining
	// it), then its reassignment occupies the lone worker against the
	// gate.
	a, err := s.Submit(req(0))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.quarantined.Load() >= 1 && st.State == StateRunning && st.Executor == "clean" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the clean executor: %+v, %d trips", st, s.quarantined.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Submit(req(1)); err != nil { // fills the 1-deep queue
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Submit(req(2)); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated submit: err = %v, want ErrBusy", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shed took %v; a full queue must answer immediately", elapsed)
	}
	if ra := s.RetryAfter(); ra < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", ra)
	}
	rd := s.Readiness()
	if !rd.Ready || rd.Reason != "degraded" {
		t.Errorf("readiness while saturated = %v %q, want ready and degraded", rd.Ready, rd.Reason)
	}
}

// testChaosGolden: the determinism contract under injection — four
// golden corpus cells run through the real engine behind chaos-wrapped
// executors, and every served result must remain field-identical to the
// committed golden file. Reassignment re-runs the simulation; the
// engine's determinism makes the retry invisible.
func testChaosGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real engine under injection; skipped under -short")
	}
	s := mustScheduler(t, Config{
		Workers: 4, QueueDepth: 16,
		LeaseTTL: 150 * time.Millisecond, LeaseTick: 5 * time.Millisecond,
		RetryBackoff: time.Millisecond, RetrySeed: 11,
		MaxRetries: 8, QuarantineAfter: -1,
		Executors: []Executor{
			NewChaosExecutor(Local("chaos-0"), ChaosConfig{Seed: 11, Rate: 0.4}),
			NewChaosExecutor(Local("chaos-1"), ChaosConfig{Seed: 12, Rate: 0.4}),
		},
	})
	defer s.Drain(context.Background())

	var ids []string
	for _, bench := range []string{"FFT", "Ocean"} {
		for _, sys := range []string{"base", "nc"} {
			st, err := s.Submit(Request{Bench: bench, System: sys})
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sys, err)
			}
			ids = append(ids, st.ID)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s/%s finished %s: %s", st.System, st.Bench, st.State, st.Error)
		}
		res, _, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(goldenFile(st))
		if err != nil {
			t.Fatalf("no committed golden for chaos cell: %v", err)
		}
		var want goldenCell
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("corrupt golden file: %v", err)
		}
		if res.Refs != want.Refs {
			t.Errorf("%s/%s: Refs %d under injection, golden %d", st.System, st.Bench, res.Refs, want.Refs)
		}
		for _, d := range stats.DiffCounters(res.Counters, want.Stats) {
			t.Errorf("%s/%s under injection vs golden: %s", st.System, st.Bench, d.String())
		}
	}
}
