package serve

// Consistent-hash routing for the fleet: jobs land on executor fault
// domains by their idempotent job ID, so duplicate submissions dedup
// onto the same worker, a worker joining or leaving moves only ~1/N of
// the fingerprints, and two coordinator replicas configured with the
// same worker set route identically — the ring is canonical in the
// executor names alone, independent of registration order.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the virtual-node count per executor: enough that the
// load split between domains stays within a few percent of even.
const ringReplicas = 128

// ringPoint is one virtual node: an executor name at a hash position.
type ringPoint struct {
	hash uint64
	name string
}

// ring is the consistent-hash ring over executor names.
type ring struct {
	points []ringPoint
	names  []string // distinct executor names, sorted
}

// hashKey hashes a routing key (a job ID) or a virtual-node label onto
// the ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// newRing builds the ring for a set of executor names. The ring is a
// pure function of the name set: duplicates collapse, order is
// irrelevant, and the same names always produce the same ring — the
// property that lets any coordinator replica route a spec's cells
// identically.
func newRing(names []string) *ring {
	seen := map[string]bool{}
	r := &ring{}
	for _, name := range names {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	r.points = make([]ringPoint, 0, len(r.names)*ringReplicas)
	for _, name := range r.names {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, i)), name: name})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		return r.points[i].name < r.points[k].name
	})
	return r
}

// order returns the distinct executor names in ring-walk order starting
// at the key's successor: the first entry is the key's home, the rest
// are the fallback order a dispatch walks when domains are unhealthy or
// just lost this job's lease. Every name appears exactly once.
func (r *ring) order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(key)
	})
	out := make([]string, 0, len(r.names))
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

// pick returns the key's home executor name.
func (r *ring) pick(key string) string {
	o := r.order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
